// Telemetry integration tests: the span tree and counters a full
// analysis records are deterministic, the nil-recorder path is
// output-equivalent to the instrumented one, and the provenance log
// explains every classified variable.
package beyondiv

import (
	"bytes"
	"strings"
	"testing"

	"beyondiv/internal/depend"
	"beyondiv/internal/obs"
	"beyondiv/internal/paper"
)

const quickstartProgram = `
j = 0
L1: for i = 1 to n {
    j = j + i
    a[j] = a[j - 1]
}
`

// TestTelemetryGolden pins the deterministic recording of the
// quickstart program: one span per pipeline phase, nested, plus the
// counter registry. Timings are suppressed (NewWithClock(nil, nil))
// so the output is exact.
func TestTelemetryGolden(t *testing.T) {
	rec := obs.NewWithClock(nil, nil)
	if _, err := AnalyzeWith(quickstartProgram, Options{Obs: rec}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	want := `== phases ==
analyze
  scan
  parse
  cfgbuild
  ssa
    dom
    place-phis
    rename
    cleanup
  loops
  sccp
  iv
    loop L1
  depend
== counters ==
cfg.blocks                                          6
cfg.values                                         21
depend.accesses                                     2
depend.pairs.tested                                 2
depend.test.assumed.dependent                       2
iv.matrix.solves                                    2
iv.scr.linear                                       1
iv.scr.polynomial                                   1
iv.tripcounts.derived                               1
loops.found                                         1
parse.stmts                                         2
scan.tokens                                        33
sccp.constants                                      4
ssa.phis                                            2
ssa.values                                         13
`
	if got := buf.String(); got != want {
		t.Errorf("telemetry recording drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNilRecorderEquivalence: running with a recorder must not change
// any analysis result. Every corpus program's classification and
// dependence reports must be byte-identical with and without telemetry.
func TestNilRecorderEquivalence(t *testing.T) {
	for _, p := range paper.Corpus {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			plain, err := Analyze(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.New()
			instr, err := AnalyzeWith(p.Source, Options{Obs: rec})
			if err != nil {
				t.Fatal(err)
			}
			if a, b := plain.ClassificationReport(), instr.ClassificationReport(); a != b {
				t.Errorf("classification report differs with telemetry on:\n--- plain ---\n%s--- instrumented ---\n%s", a, b)
			}
			if a, b := plain.DependenceReport(), instr.DependenceReport(); a != b {
				t.Errorf("dependence report differs with telemetry on:\n--- plain ---\n%s--- instrumented ---\n%s", a, b)
			}
			// The instrumented run must actually have recorded spans.
			if len(rec.Spans()) == 0 {
				t.Error("instrumented run recorded no spans")
			}
		})
	}
}

// TestExplainCoverage: every named classified variable of every corpus
// program has a provenance chain that names the rule that produced its
// classification.
func TestExplainCoverage(t *testing.T) {
	for _, p := range paper.Corpus {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			prog, err := AnalyzeWith(p.Source, Options{SkipDependences: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range prog.Loops.InnerToOuter() {
				for v := range prog.IV.LoopClassifications(l) {
					if v.Name == "" {
						continue
					}
					out := prog.IV.Explain(l, v)
					if out == "" {
						t.Errorf("%s/%s: empty explanation", l.Label, v)
						continue
					}
					if !strings.Contains(out, "rule:") {
						t.Errorf("%s/%s: explanation names no rule:\n%s", l.Label, v, out)
					}
				}
			}
		})
	}
}

// TestExplainDeps: every dependence edge of the §6 example programs has
// a provenance rendering naming its decision procedure's rule.
func TestExplainDeps(t *testing.T) {
	for _, id := range []string{"E12", "E13", "E14", "E15"} {
		p := paper.ByID(id)
		if p == nil {
			t.Fatalf("no corpus entry %s", id)
		}
		t.Run(id, func(t *testing.T) {
			prog, err := Analyze(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range prog.Deps.Deps {
				out := prog.ExplainDep(d)
				if !strings.Contains(out, "rule:") {
					t.Errorf("dependence %s: no rule in provenance:\n%s", d, out)
				}
			}
		})
	}
}

// TestExplainVarFacade: the string-keyed facade resolves both base
// names and exact SSA names.
func TestExplainVarFacade(t *testing.T) {
	prog, err := AnalyzeWith(quickstartProgram, Options{SkipDependences: true})
	if err != nil {
		t.Fatal(err)
	}
	byBase := prog.Explain("j")
	if byBase == "" || !strings.Contains(byBase, "rule:") {
		t.Fatalf("Explain(j) = %q", byBase)
	}
	if prog.Explain("definitely-not-a-var") != "" {
		t.Error("Explain of unknown variable should be empty")
	}
}

// TestDecisionLogCoverage: the recorder's decision log holds one event
// per SCR classification, so the counters and the log agree.
func TestDecisionLogCoverage(t *testing.T) {
	rec := obs.New()
	if _, err := AnalyzeWith(quickstartProgram, Options{Obs: rec}); err != nil {
		t.Fatal(err)
	}
	scrs := rec.CounterTotal("iv.scr.")
	var ivDecisions int64
	for _, d := range rec.Decisions() {
		if !strings.Contains(d.Subject, "->") && !strings.Contains(d.Subject, " vs ") {
			ivDecisions++
		}
	}
	if ivDecisions < scrs {
		t.Errorf("iv decisions %d < SCR counter total %d: classifications missing from the log", ivDecisions, scrs)
	}
}

// TestDependOptionsObs: the dependence tester alone also records.
func TestDependOptionsObs(t *testing.T) {
	prog, err := AnalyzeWith(quickstartProgram, Options{SkipDependences: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	depend.Analyze(prog.IV, depend.Options{Obs: rec})
	if rec.Counter("depend.pairs.tested") == 0 {
		t.Error("dependence run recorded no tested pairs")
	}
}
