// Command ivclass classifies every scalar of a mini-language program:
// the paper's unified induction-variable analysis, printed per loop in
// tuple notation.
//
// Usage:
//
//	ivclass [-ssa] [-nested] [-json] [-stats] [-trace file]
//	        [-jsonl file] [-explain var] [file]
//
// With no file, the program is read from standard input; a .go file
// from examples/ has its embedded program extracted. -explain prints
// the provenance chain (paper rule, SCR, feeding classifications) that
// classified the named variable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/ir"
)

var (
	dumpSSA = flag.Bool("ssa", false, "also dump the SSA form")
	nested  = flag.Bool("nested", false, "print nested tuples for multiloop IVs (outer-to-inner substitution)")
	asJSON  = flag.Bool("json", false, "emit the report as JSON")
)

func main() {
	var tel cliutil.Telemetry
	tel.RegisterFlags()
	flag.Parse()
	src, err := cliutil.ReadProgram(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := tel.Start(); err != nil {
		fatal(err)
	}
	prog, err := beyondiv.AnalyzeWith(src, beyondiv.Options{
		SkipDependences: true,
		Obs:             tel.Recorder(),
	})
	if err != nil {
		fatal(err)
	}
	if *dumpSSA {
		fmt.Print(prog.SSA.Func)
		fmt.Println()
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(prog.IV.ReportData()); err != nil {
			fatal(err)
		}
	case *nested:
		// Nested rendering.
		for _, l := range prog.Loops.InnerToOuter() {
			fmt.Printf("loop %s (depth %d) trip=%s\n", l.Label, l.Depth, prog.IV.TripCount(l))
			m := prog.IV.LoopClassifications(l)
			vals := make([]*ir.Value, 0, len(m))
			for v := range m {
				if v.Name != "" {
					vals = append(vals, v)
				}
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i].ID < vals[j].ID })
			for _, v := range vals {
				fmt.Printf("  %s = %s\n", v, prog.IV.NestedString(m[v]))
			}
		}
	default:
		fmt.Print(prog.ClassificationReport())
	}
	if tel.Explain != "" {
		if out := prog.Explain(tel.Explain); out != "" {
			fmt.Println()
			fmt.Print(out)
		} else {
			fmt.Printf("\nno classified variable matches %q\n", tel.Explain)
		}
	}
	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliutil.Fatal("ivclass", err) }
