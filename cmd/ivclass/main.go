// Command ivclass classifies every scalar of a mini-language program:
// the paper's unified induction-variable analysis, printed per loop in
// tuple notation.
//
// Usage:
//
//	ivclass [-ssa] [-nested] [-json] [-jobs n] [-parallel n]
//	        [-cache-dir dir] [-watch] [-stats] [-trace file]
//	        [-jsonl file] [-explain var] [-debug-addr addr] [file|dir ...]
//
// With no arguments, one program is read from standard input; each
// argument may be a program file, an examples-style .go file (the
// embedded program is extracted), or a directory walked recursively
// for such .go files. Multiple programs are analyzed as one batch —
// concurrently with -jobs > 1 — and reported in input order under
// per-file headers; one failing input does not stop the rest.
// -parallel additionally splits each analysis across workers (0, the
// default, uses one per CPU, divided across the -jobs workers when
// batching so the two tiers compose instead of oversubscribing);
// results are identical at every width. -explain prints the provenance
// chain (paper rule, SCR, feeding classifications) that classified the
// named variable.
//
// -cache-dir persists analysis artifacts in a content-addressed store:
// re-running over an unchanged (or merely reformatted, or α-renamed)
// corpus answers from disk without re-analyzing, even across
// processes. -watch keeps the command running, polling the inputs and
// re-analyzing only programs whose content changed — with -cache-dir,
// a restarted watch starts warm.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/ir"
)

var (
	dumpSSA = flag.Bool("ssa", false, "also dump the SSA form")
	nested  = flag.Bool("nested", false, "print nested tuples for multiloop IVs (outer-to-inner substitution)")
	asJSON  = flag.Bool("json", false, "emit the report as JSON")
	jobs    = flag.Int("jobs", 1, "analyze inputs concurrently on `n` workers (0 = one per CPU)")
	tel     cliutil.Telemetry
	cache   cliutil.CacheFlags
	watch   cliutil.WatchFlags
	par     cliutil.ParallelFlag
)

func main() {
	tel.RegisterObsFlags()
	cache.Register()
	watch.Register()
	par.Register()
	flag.Parse()
	if err := tel.Start(); err != nil {
		fatal(err)
	}
	opts := beyondiv.Options{
		SkipDependences: true,
		Jobs:            *jobs,
	}
	tel.Apply(&opts)
	par.Apply(&opts)
	// -ssa and -nested walk the live SSA graph, which a decoded disk
	// artifact does not carry: keep the store warm but analyze live.
	cache.Apply(&opts, *dumpSSA || *nested)
	if watch.Watch {
		if err := watchLoop(opts); err != nil {
			fatal(err)
		}
		if err := tel.Finish(os.Stderr); err != nil {
			fatal(err)
		}
		return
	}
	srcs, err := cliutil.ReadPrograms(flag.Args())
	if err != nil {
		fatal(err)
	}
	results := cliutil.AnalyzeSources(srcs, opts)
	exit := 0
	for i, r := range results {
		if len(srcs) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("==== %s ====\n", srcs[i].Path)
		}
		if r.Err != nil {
			if c := cliutil.Report("ivclass", fmt.Errorf("%s: %w", srcs[i].Path, r.Err)); c > exit {
				exit = c
			}
			continue
		}
		render(r.Program)
	}
	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// watchLoop re-analyzes the argument corpus as it changes, rendering
// each changed program under its file header.
func watchLoop(opts beyondiv.Options) error {
	return cliutil.Watch(flag.Args(), opts, cliutil.WatchConfig{Interval: watch.Interval},
		func(src cliutil.Source, prog *beyondiv.Program, err error) {
			fmt.Printf("==== %s ====\n", src.Path)
			if err != nil {
				cliutil.Report("ivclass", fmt.Errorf("%s: %w", src.Path, err))
				return
			}
			render(prog)
		})
}

func render(prog *beyondiv.Program) {
	if *dumpSSA {
		fmt.Print(prog.SSA.Func)
		fmt.Println()
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(prog.ReportData()); err != nil {
			fatal(err)
		}
	case *nested:
		// Nested rendering.
		for _, l := range prog.Loops.InnerToOuter() {
			fmt.Printf("loop %s (depth %d) trip=%s\n", l.Label, l.Depth, prog.IV.TripCount(l))
			m := prog.IV.LoopClassifications(l)
			vals := make([]*ir.Value, 0, len(m))
			for v := range m {
				if v.Name != "" {
					vals = append(vals, v)
				}
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i].ID < vals[j].ID })
			for _, v := range vals {
				fmt.Printf("  %s = %s\n", v, prog.IV.NestedString(m[v]))
			}
		}
	default:
		fmt.Print(prog.ClassificationReport())
	}
	if tel.Explain != "" {
		if out := prog.Explain(tel.Explain); out != "" {
			fmt.Println()
			fmt.Print(out)
		} else {
			fmt.Printf("\nno classified variable matches %q\n", tel.Explain)
		}
	}
}

func fatal(err error) { cliutil.Fatal("ivclass", err) }
