// Command ivclass classifies every scalar of a mini-language program:
// the paper's unified induction-variable analysis, printed per loop in
// tuple notation.
//
// Usage:
//
//	ivclass [-ssa] [-nested] [-json] [file]
//
// With no file, the program is read from standard input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"beyondiv"
	"beyondiv/internal/ir"
)

var (
	dumpSSA = flag.Bool("ssa", false, "also dump the SSA form")
	nested  = flag.Bool("nested", false, "print nested tuples for multiloop IVs (outer-to-inner substitution)")
	asJSON  = flag.Bool("json", false, "emit the report as JSON")
)

func main() {
	flag.Parse()
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivclass:", err)
		os.Exit(1)
	}
	prog, err := beyondiv.AnalyzeWith(src, beyondiv.Options{SkipDependences: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivclass:", err)
		os.Exit(1)
	}
	if *dumpSSA {
		fmt.Print(prog.SSA.Func)
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(prog.IV.ReportData()); err != nil {
			fmt.Fprintln(os.Stderr, "ivclass:", err)
			os.Exit(1)
		}
		return
	}
	if !*nested {
		fmt.Print(prog.ClassificationReport())
		return
	}
	// Nested rendering.
	for _, l := range prog.Loops.InnerToOuter() {
		fmt.Printf("loop %s (depth %d) trip=%s\n", l.Label, l.Depth, prog.IV.TripCount(l))
		m := prog.IV.LoopClassifications(l)
		vals := make([]*ir.Value, 0, len(m))
		for v := range m {
			if v.Name != "" {
				vals = append(vals, v)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].ID < vals[j].ID })
		for _, v := range vals {
			fmt.Printf("  %s = %s\n", v, prog.IV.NestedString(m[v]))
		}
	}
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
