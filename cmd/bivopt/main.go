// Command bivopt is the "compiler driver" view of the library: it runs
// the full analysis over a program and reports, per loop, everything an
// optimizer would act on —
//
//   - the §3–§4 classification of every scalar,
//   - §5.2 trip counts,
//   - wrap-around variables that loop peeling would fix (§4.1),
//   - strength-reduction candidates (§1) and, with -apply, the rewrite
//     itself (verified against the interpreter),
//   - §6 dependences, parallelizability, interchange legality and
//     distribution π-blocks for every loop pair/nest.
//
// Usage:
//
//	bivopt [-apply] [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"beyondiv"
	"beyondiv/internal/depend"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/ssa"
	"beyondiv/internal/xform"
)

var apply = flag.Bool("apply", false, "apply strength reduction and re-verify behaviour")

func main() {
	flag.Parse()
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := beyondiv.Analyze(src)
	if err != nil {
		fatal(err)
	}

	fmt.Println("== classification ==")
	fmt.Print(prog.ClassificationReport())

	fmt.Println("\n== dependences ==")
	fmt.Print(prog.DependenceReport())

	fmt.Println("\n== per-loop opportunities ==")
	for _, l := range prog.Loops.InnerToOuter() {
		fmt.Printf("%s:\n", l.Label)

		// Wrap-arounds that peeling would turn into IVs.
		for v, c := range prog.IV.LoopClassifications(l) {
			if c.Kind == iv.WrapAround && v.Name != "" {
				fmt.Printf("  peel candidate: %s is a wrap-around of order %d (§4.1)\n", v.Name, c.Order)
			}
		}

		// Parallelization.
		if ok, blocking := depend.Parallelizable(prog.Deps, l); ok {
			fmt.Printf("  parallelizable: yes\n")
		} else {
			fmt.Printf("  parallelizable: no (%d carried dependences)\n", len(blocking))
		}

		// Distribution.
		if blocks := depend.PiBlocks(prog.Deps, l); len(blocks) > 1 {
			fmt.Printf("  distributes into %d π-blocks\n", len(blocks))
		}

		// Interchange with the direct parent.
		for _, inner := range l.Children {
			if ok, _ := depend.InterchangeLegal(prog.Deps, l, inner); ok {
				fmt.Printf("  interchange %s<->%s: legal\n", l.Label, inner.Label)
			} else if dists, okD := depend.DistanceVectors2(prog.Deps, l, inner); okD {
				if tm, okT := depend.FindSkewedInterchange(dists, 8); okT {
					fmt.Printf("  interchange %s<->%s: illegal, but unimodular %s repairs it\n",
						l.Label, inner.Label, tm)
				} else {
					fmt.Printf("  interchange %s<->%s: illegal\n", l.Label, inner.Label)
				}
			} else {
				fmt.Printf("  interchange %s<->%s: illegal\n", l.Label, inner.Label)
			}
		}
	}

	if !*apply {
		return
	}
	fmt.Println("\n== strength reduction ==")
	before := countMuls(prog.SSA)
	n := xform.ReduceStrength(prog.IV)
	if errs := ssa.Verify(prog.SSA); len(errs) != 0 {
		fatal(fmt.Errorf("SSA verification failed after rewrite: %v", errs[0]))
	}
	after := countMuls(prog.SSA)
	fmt.Printf("rewrote %d multiplications; dynamic multiplies %d -> %d (n=16 probe)\n",
		n, before, after)
}

func countMuls(info *ssa.Info) int {
	muls := 0
	_, err := interp.RunSSAHooked(info, interp.Config{
		Params:   map[string]int64{"n": 16, "m": 16},
		MaxSteps: 500_000,
	}, interp.Hooks{OnEval: func(v *ir.Value, val int64) {
		if v.Op == ir.OpMul {
			muls++
		}
	}})
	if err != nil {
		return -1
	}
	return muls
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bivopt:", err)
	os.Exit(1)
}
