// Command bivopt is the "compiler driver" view of the library: it runs
// the full analysis over programs and reports, per loop, everything an
// optimizer would act on —
//
//   - the §3–§4 classification of every scalar,
//   - §5.2 trip counts,
//   - wrap-around variables that loop peeling would fix (§4.1),
//   - strength-reduction candidates (§1) and, with -apply, the whole
//     transformation pipeline — normalize, peel, strength reduction,
//     induction-variable substitution, dead-code sweep — run through
//     the engine with clone-on-transform, fixed-point re-analysis and
//     interpreter translation validation after every pass,
//   - §6 dependences, parallelizability, interchange legality and
//     distribution π-blocks for every loop pair/nest.
//
// Usage:
//
//	bivopt [-apply] [-passes list] [-jobs n] [-parallel n]
//	       [-no-validate] [-cache-dir dir] [-stats] [-trace file]
//	       [-jsonl file] [-explain var] [-debug-addr addr]
//	       [-cpuprofile file] [-memprofile file] [file|dir ...]
//
// With no arguments, one program is read from standard input; each
// argument may be a mini-language program, an examples-style .go file
// (the embedded program is extracted), or a directory walked
// recursively for such files. Multiple programs run as one batch —
// concurrently with -jobs > 1 — and report in input order under
// per-file headers; one failing input does not stop the rest.
// -parallel additionally splits each analysis across workers (0, the
// default, uses one per CPU, divided across the -jobs workers when
// batching); results are identical at every width. -passes
// selects and orders the -apply pipeline (comma-separated; default
// "normalize,peel,strength,ivsub,dce"). -stats prints phase timings and
// pipeline counters to standard error; -trace writes a Chrome
// trace-event file; -explain prints the provenance chain that
// classified a variable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/depend"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/ssa"
	"beyondiv/internal/xform"
)

var (
	apply      = flag.Bool("apply", false, "run the transformation pipeline and report before/after")
	passesFlag = flag.String("passes", "", "comma-separated -apply pipeline (default: "+strings.Join(xform.PassNames(), ",")+")")
	jobs       = flag.Int("jobs", 1, "process inputs concurrently on `n` workers (0 = one per CPU)")
	noValidate = flag.Bool("no-validate", false, "skip interpreter translation validation of -apply rewrites")
	tel        cliutil.Telemetry
	cache      cliutil.CacheFlags
	par        cliutil.ParallelFlag
)

func main() {
	tel.RegisterObsFlags()
	cache.Register()
	par.Register()
	flag.Parse()
	srcs, err := cliutil.ReadPrograms(flag.Args())
	if err != nil {
		fatal(err)
	}
	if err := tel.Start(); err != nil {
		fatal(err)
	}
	opts := beyondiv.Options{
		Jobs:           *jobs,
		Passes:         passList(*passesFlag),
		SkipValidation: *noValidate,
	}
	tel.Apply(&opts)
	par.Apply(&opts)
	// Every bivopt view walks live analysis objects (loop nest, SSA,
	// dependence graph), which a decoded disk artifact does not carry:
	// the store is write-only here, warming it for readers that render
	// reports.
	cache.Apply(&opts, true)

	exit := 0
	report := func(i int, prog *beyondiv.Program, err error) bool {
		if len(srcs) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("==== %s ====\n", srcs[i].Path)
		}
		if err != nil {
			if c := cliutil.Report("bivopt", fmt.Errorf("%s: %w", srcs[i].Path, err)); c > exit {
				exit = c
			}
			return false
		}
		render(prog)
		return true
	}

	if *apply {
		for i, r := range cliutil.OptimizeSources(srcs, opts) {
			if report(i, resultProgram(r.Result), r.Err) {
				renderApplied(r.Result)
			}
		}
	} else {
		for i, r := range cliutil.AnalyzeSources(srcs, opts) {
			report(i, r.Program, r.Err)
		}
	}

	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

func passList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func resultProgram(r *beyondiv.OptimizeResult) *beyondiv.Program {
	if r == nil {
		return nil
	}
	return r.Original
}

// render prints the analysis view of one program (pre-transformation
// when -apply is on: the opportunities listed are the ones the pipeline
// then acts on).
func render(prog *beyondiv.Program) {
	fmt.Println("== classification ==")
	fmt.Print(prog.ClassificationReport())

	fmt.Println("\n== dependences ==")
	fmt.Print(prog.DependenceReport())

	if tel.Explain != "" {
		fmt.Printf("\n== explain %s ==\n", tel.Explain)
		if out := prog.Explain(tel.Explain); out != "" {
			fmt.Print(out)
		} else {
			fmt.Printf("no classified variable matches %q\n", tel.Explain)
		}
	}

	fmt.Println("\n== per-loop opportunities ==")
	for _, l := range prog.Loops.InnerToOuter() {
		fmt.Printf("%s:\n", l.Label)

		// Wrap-arounds that peeling would turn into IVs.
		for v, c := range prog.IV.LoopClassifications(l) {
			if c.Kind == iv.WrapAround && v.Name != "" {
				fmt.Printf("  peel candidate: %s is a wrap-around of order %d (§4.1)\n", v.Name, c.Order)
			}
		}

		// Parallelization.
		if ok, blocking := depend.Parallelizable(prog.Deps, l); ok {
			fmt.Printf("  parallelizable: yes\n")
		} else {
			fmt.Printf("  parallelizable: no (%d carried dependences)\n", len(blocking))
		}

		// Distribution.
		if blocks := depend.PiBlocks(prog.Deps, l); len(blocks) > 1 {
			fmt.Printf("  distributes into %d π-blocks\n", len(blocks))
		}

		// Interchange with the direct parent.
		for _, inner := range l.Children {
			if ok, _ := depend.InterchangeLegal(prog.Deps, l, inner); ok {
				fmt.Printf("  interchange %s<->%s: legal\n", l.Label, inner.Label)
			} else if dists, okD := depend.DistanceVectors2(prog.Deps, l, inner); okD {
				if tm, okT := depend.FindSkewedInterchange(dists, 8); okT {
					fmt.Printf("  interchange %s<->%s: illegal, but unimodular %s repairs it\n",
						l.Label, inner.Label, tm)
				} else {
					fmt.Printf("  interchange %s<->%s: illegal\n", l.Label, inner.Label)
				}
			} else {
				fmt.Printf("  interchange %s<->%s: illegal\n", l.Label, inner.Label)
			}
		}
	}
}

// renderApplied prints what the -apply pipeline did: per-pass rewrite
// stats per fixed-point round, the dynamic multiplication probe before
// and after, and the classification of the transformed program (where
// strength-reduced recurrences reappear as fresh linear IVs).
func renderApplied(r *beyondiv.OptimizeResult) {
	fmt.Println("\n== transformation pipeline ==")
	if len(r.Stats) == 0 {
		fmt.Println("no rewrites applied (pipeline at fixed point immediately)")
		return
	}
	for _, s := range r.Stats {
		fmt.Printf("round %d: %-11s %d rewrites\n", s.Round, s.Name, s.Rewrites)
	}
	fmt.Printf("%d rewrites in %d rounds; %d translation validations passed\n",
		r.Rewrites, r.Rounds, r.Validations)
	if len(r.ParallelLoops) > 0 {
		how := "chunked execution validated against sequential"
		if r.Validations == 0 {
			how = "validation skipped: marks trusted"
		}
		fmt.Printf("marked parallel: %s (%s)\n", strings.Join(r.ParallelLoops, ", "), how)
	}

	before := countMuls(r.Original.SSA)
	after := countMuls(r.Program.SSA)
	fmt.Printf("dynamic multiplies %d -> %d (n=16 probe)\n", before, after)

	fmt.Println("\n== classification (transformed) ==")
	fmt.Print(r.Program.ClassificationReport())
}

// countMuls executes the program on a fixed probe input and counts the
// multiplications evaluated — the dynamic effect of strength reduction.
func countMuls(info *ssa.Info) int {
	muls := 0
	_, err := interp.RunSSAHooked(info, interp.Config{
		Params:   map[string]int64{"n": 16, "m": 16},
		MaxSteps: 500_000,
	}, interp.Hooks{OnEval: func(v *ir.Value, val int64) {
		if v.Op == ir.OpMul {
			muls++
		}
	}})
	if err != nil {
		return -1
	}
	return muls
}

func fatal(err error) { cliutil.Fatal("bivopt", err) }
