// Command bivopt is the "compiler driver" view of the library: it runs
// the full analysis over a program and reports, per loop, everything an
// optimizer would act on —
//
//   - the §3–§4 classification of every scalar,
//   - §5.2 trip counts,
//   - wrap-around variables that loop peeling would fix (§4.1),
//   - strength-reduction candidates (§1) and, with -apply, the rewrite
//     itself (verified against the interpreter),
//   - §6 dependences, parallelizability, interchange legality and
//     distribution π-blocks for every loop pair/nest.
//
// Usage:
//
//	bivopt [-apply] [-stats] [-trace file] [-jsonl file] [-explain var]
//	       [-cpuprofile file] [-memprofile file] [file]
//
// The file may be a mini-language program, or one of the examples'
// main.go files (the embedded program is extracted). -stats prints
// phase timings and pipeline counters to standard error; -trace writes
// a Chrome trace-event file; -explain prints the provenance chain that
// classified a variable.
package main

import (
	"flag"
	"fmt"
	"os"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/depend"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/ssa"
	"beyondiv/internal/xform"
)

var apply = flag.Bool("apply", false, "apply strength reduction and re-verify behaviour")

func main() {
	var tel cliutil.Telemetry
	tel.RegisterFlags()
	flag.Parse()
	src, err := cliutil.ReadProgram(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := tel.Start(); err != nil {
		fatal(err)
	}
	prog, err := beyondiv.AnalyzeWith(src, beyondiv.Options{Obs: tel.Recorder()})
	if err != nil {
		fatal(err)
	}

	fmt.Println("== classification ==")
	fmt.Print(prog.ClassificationReport())

	fmt.Println("\n== dependences ==")
	fmt.Print(prog.DependenceReport())

	if tel.Explain != "" {
		fmt.Printf("\n== explain %s ==\n", tel.Explain)
		if out := prog.Explain(tel.Explain); out != "" {
			fmt.Print(out)
		} else {
			fmt.Printf("no classified variable matches %q\n", tel.Explain)
		}
	}

	fmt.Println("\n== per-loop opportunities ==")
	for _, l := range prog.Loops.InnerToOuter() {
		fmt.Printf("%s:\n", l.Label)

		// Wrap-arounds that peeling would turn into IVs.
		for v, c := range prog.IV.LoopClassifications(l) {
			if c.Kind == iv.WrapAround && v.Name != "" {
				fmt.Printf("  peel candidate: %s is a wrap-around of order %d (§4.1)\n", v.Name, c.Order)
			}
		}

		// Parallelization.
		if ok, blocking := depend.Parallelizable(prog.Deps, l); ok {
			fmt.Printf("  parallelizable: yes\n")
		} else {
			fmt.Printf("  parallelizable: no (%d carried dependences)\n", len(blocking))
		}

		// Distribution.
		if blocks := depend.PiBlocks(prog.Deps, l); len(blocks) > 1 {
			fmt.Printf("  distributes into %d π-blocks\n", len(blocks))
		}

		// Interchange with the direct parent.
		for _, inner := range l.Children {
			if ok, _ := depend.InterchangeLegal(prog.Deps, l, inner); ok {
				fmt.Printf("  interchange %s<->%s: legal\n", l.Label, inner.Label)
			} else if dists, okD := depend.DistanceVectors2(prog.Deps, l, inner); okD {
				if tm, okT := depend.FindSkewedInterchange(dists, 8); okT {
					fmt.Printf("  interchange %s<->%s: illegal, but unimodular %s repairs it\n",
						l.Label, inner.Label, tm)
				} else {
					fmt.Printf("  interchange %s<->%s: illegal\n", l.Label, inner.Label)
				}
			} else {
				fmt.Printf("  interchange %s<->%s: illegal\n", l.Label, inner.Label)
			}
		}
	}

	if *apply {
		fmt.Println("\n== strength reduction ==")
		before := countMuls(prog.SSA)
		n := xform.ReduceStrength(prog.IV)
		if errs := ssa.Verify(prog.SSA); len(errs) != 0 {
			fatal(fmt.Errorf("SSA verification failed after rewrite: %v", errs[0]))
		}
		after := countMuls(prog.SSA)
		fmt.Printf("rewrote %d multiplications; dynamic multiplies %d -> %d (n=16 probe)\n",
			n, before, after)
	}

	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
}

func countMuls(info *ssa.Info) int {
	muls := 0
	_, err := interp.RunSSAHooked(info, interp.Config{
		Params:   map[string]int64{"n": 16, "m": 16},
		MaxSteps: 500_000,
	}, interp.Hooks{OnEval: func(v *ir.Value, val int64) {
		if v.Op == ir.OpMul {
			muls++
		}
	}})
	if err != nil {
		return -1
	}
	return muls
}

func fatal(err error) { cliutil.Fatal("bivopt", err) }
