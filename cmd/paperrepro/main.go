// Command paperrepro regenerates every figure and table of "Beyond
// Induction Variables" (Wolfe, PLDI 1992) from this implementation:
// the classification of each example loop (Figures 1–10, L1–L24), the
// §4.3 closed-form table with its Vandermonde matrices, the §5.2 trip
// counts, and the §6 dependence examples. Expected values (from the
// paper, re-derived where the scan is unreadable — see DESIGN.md) are
// printed alongside the computed ones.
//
// Usage:
//
//	paperrepro [-id E6] [-q] [-stats] [-trace file] [-jsonl file]
//	           [-cpuprofile file] [-memprofile file] [-debug-addr addr]
//
// With -stats or -trace, one recorder is shared across the whole
// corpus, so the counters aggregate every experiment's pipeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"beyondiv/internal/cliutil"
	"beyondiv/internal/depend"
	"beyondiv/internal/iv"
	"beyondiv/internal/matrix"
	"beyondiv/internal/paper"
	"beyondiv/internal/rational"
)

var (
	only  = flag.String("id", "", "run a single experiment id (e.g. E6)")
	quiet = flag.Bool("q", false, "suppress program sources")
	tel   cliutil.Telemetry
)

func main() {
	tel.RegisterObsFlags()
	flag.Parse()
	if err := tel.Start(); err != nil {
		cliutil.Fatal("paperrepro", err)
	}
	failures := 0
	type row struct {
		id, name string
		checks   int
		bad      int
	}
	var rows []row
	for _, p := range paper.Corpus {
		if *only != "" && p.ID != *only {
			continue
		}
		bad := runProgram(&p)
		failures += bad
		rows = append(rows, row{p.ID, p.Name, len(p.Expect) + len(p.TripCounts), bad})
	}
	if *only == "" || *only == "E7" {
		runMatrixExample()
	}
	if *only == "" || *only == "E13" || *only == "E14" || *only == "E15" || *only == "E12" {
		runDependenceExamples()
	}
	if len(rows) > 1 {
		fmt.Println("==== summary ====")
		for _, r := range rows {
			status := "ok"
			if r.bad > 0 {
				status = fmt.Sprintf("%d MISMATCHES", r.bad)
			}
			fmt.Printf("  %-5s %-62s %2d checks  %s\n", r.id, r.name, r.checks, status)
		}
	}
	if err := tel.Finish(os.Stderr); err != nil {
		cliutil.Fatal("paperrepro", err)
	}
	if failures > 0 {
		fmt.Printf("\n%d MISMATCHES\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall expectations reproduced")
}

func runProgram(p *paper.Program) int {
	fmt.Printf("==== %s: %s ====\n", p.ID, p.Name)
	if !*quiet {
		fmt.Println(indent(strings.TrimRight(p.Source, "\n")))
	}
	a, err := iv.AnalyzeProgramWith(p.Source, ivOptions())
	if err != nil {
		fmt.Println("ERROR:", err)
		return 1
	}
	bad := 0
	for _, e := range p.Expect {
		l := a.LoopByLabel(e.Loop)
		v := a.ValueByName(e.Value)
		if l == nil || v == nil {
			fmt.Printf("  %-6s MISSING value %s/%s\n", "??", e.Loop, e.Value)
			bad++
			continue
		}
		var got string
		if e.Nested {
			got = a.NestedString(a.ClassOf(l, v))
		} else {
			got = a.ClassOf(l, v).String()
		}
		ok := got == e.Want || (e.PrefixOnly && strings.HasPrefix(got, e.Want))
		mark := "ok"
		if !ok {
			mark = "MISMATCH"
			bad++
		}
		fmt.Printf("  %-4s = %-42s [paper: %s] %s\n", e.Value, got, e.Want, mark)
	}
	for label, want := range p.TripCounts {
		l := a.LoopByLabel(label)
		if l == nil {
			bad++
			continue
		}
		got := a.TripCount(l).String()
		mark := "ok"
		if got != want {
			mark = "MISMATCH"
			bad++
		}
		fmt.Printf("  trip(%s) = %-37s [paper: %s] %s\n", label, got, want, mark)
	}
	if p.Notes != "" {
		fmt.Printf("  note: %s\n", p.Notes)
	}
	fmt.Println()
	return bad
}

// runMatrixExample reproduces §4.3's worked matrices: the 4×4
// Vandermonde system for the cubic k of L14 and the geometric system
// for m = 3m + 2i + 1.
func runMatrixExample() {
	fmt.Println("==== E7: §4.3 worked matrix inversions ====")
	a := matrix.Vandermonde(3)
	fmt.Println("A (cubic k, first four values 4, 9, 17, 29):")
	fmt.Print(indent(strings.TrimRight(a.String(), "\n")))
	inv, err := a.Inverse()
	if err != nil {
		fmt.Println("ERROR:", err)
		return
	}
	fmt.Println("\nA^-1:")
	fmt.Print(indent(strings.TrimRight(inv.String(), "\n")))
	coeffs, _ := a.Solve(rats(4, 9, 17, 29))
	fmt.Printf("\ncoefficients: %v   [paper: 4 23/6 1 1/6 — k(h) = (h^3+6h^2+23h+24)/6]\n", coeffs)

	g := matrix.GeometricVandermonde(4, 3)
	fmt.Println("\ngeometric system (m = 3m+2i+1 from 0; values 0, 3, 14, 49):")
	fmt.Print(indent(strings.TrimRight(g.String(), "\n")))
	mc, _ := g.Solve(rats(0, 3, 14, 49))
	fmt.Printf("coefficients: %v   [re-derived: m(h) = 2*3^h - h - 2, no quadratic term]\n\n", mc)
}

func runDependenceExamples() {
	fmt.Println("==== E13/E14/E15/E12: §6 dependence testing ====")
	show := func(title, src string) {
		fmt.Printf("-- %s --\n", title)
		if !*quiet {
			fmt.Println(indent(strings.TrimRight(src, "\n")))
		}
		a, err := iv.AnalyzeProgramWith(src, ivOptions())
		if err != nil {
			fmt.Println("ERROR:", err)
			return
		}
		r := depend.Analyze(a, depend.Options{Obs: tel.Recorder()})
		fmt.Print(indent(strings.TrimRight(r.Report(), "\n")))
		fmt.Println()
	}
	show("L21: induction expressions", paper.ByID("E13").Source)
	show("L22: periodic = translates to distance mod 2", paper.ByID("E14").Source)
	show("L23/L24: normalization study (triangular)", paper.ByID("E15").Source)
	show("Figure 10: monotonic directions", paper.ByID("E12").Source)
}

// ivOptions threads the shared observability backends into the
// classifier-only entry point this command drives the corpus through.
func ivOptions() iv.Options {
	return iv.Options{
		Obs:     tel.Recorder(),
		Metrics: tel.Registry(),
		Flight:  tel.Flight(),
	}
}

func rats(vs ...int64) []rational.Rat {
	out := make([]rational.Rat, len(vs))
	for i, v := range vs {
		out[i] = rational.FromInt(v)
	}
	return out
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
