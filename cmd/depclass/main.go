// Command depclass runs the §6 data dependence analysis over a
// mini-language program and prints every dependence with its direction
// vector, wrap-around flags, and periodic distance constraints.
//
// Usage:
//
//	depclass [-input] [-classes] [-dot] [-pi] [-why] [-stats]
//	         [-trace file] [-jsonl file] [-explain var] [file]
//
// With no file, the program is read from standard input; a .go file
// from examples/ has its embedded program extracted. -why prints each
// dependence's provenance: the paper rule behind its decision procedure
// and the classification chains of both subscripts.
package main

import (
	"flag"
	"fmt"
	"os"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/depend"
)

var (
	withInput   = flag.Bool("input", false, "also report read-read (input) dependences")
	withClasses = flag.Bool("classes", false, "also print the classification report")
	asDOT       = flag.Bool("dot", false, "emit the dependence graph in Graphviz DOT syntax")
	piBlocks    = flag.Bool("pi", false, "print each loop's π-blocks (loop distribution partition)")
	why         = flag.Bool("why", false, "print the provenance of every dependence edge")
)

func main() {
	var tel cliutil.Telemetry
	tel.RegisterFlags()
	flag.Parse()
	src, err := cliutil.ReadProgram(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := tel.Start(); err != nil {
		fatal(err)
	}
	prog, err := beyondiv.AnalyzeWith(src, beyondiv.Options{
		Dependences: depend.Options{IncludeInput: *withInput},
		Obs:         tel.Recorder(),
	})
	if err != nil {
		fatal(err)
	}
	if *asDOT {
		fmt.Print(prog.Deps.DOT())
		if err := tel.Finish(os.Stderr); err != nil {
			fatal(err)
		}
		return
	}
	if *withClasses {
		fmt.Print(prog.ClassificationReport())
		fmt.Println()
	}
	fmt.Print(prog.DependenceReport())
	if *why {
		fmt.Println()
		fmt.Print(prog.ExplainAllDeps())
	}
	if tel.Explain != "" {
		if out := prog.Explain(tel.Explain); out != "" {
			fmt.Println()
			fmt.Print(out)
		} else {
			fmt.Printf("\nno classified variable matches %q\n", tel.Explain)
		}
	}
	if *piBlocks {
		for _, l := range prog.Loops.InnerToOuter() {
			blocks := depend.PiBlocks(prog.Deps, l)
			if blocks == nil {
				continue
			}
			fmt.Printf("\nπ-blocks of %s (distribution order):\n", l.Label)
			for i, b := range blocks {
				shape := "acyclic (vectorizable)"
				if b.Cyclic {
					shape = "cyclic (stays a loop)"
				}
				fmt.Printf("  block %d [%s]:", i+1, shape)
				for _, st := range b.Stores {
					fmt.Printf(" %s[%s]", st.Var, st.Args[0])
				}
				fmt.Println()
			}
		}
	}
	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliutil.Fatal("depclass", err) }
