// Command depclass runs the §6 data dependence analysis over a
// mini-language program and prints every dependence with its direction
// vector, wrap-around flags, and periodic distance constraints.
//
// Usage:
//
//	depclass [-input] [-classes] [-dot] [-pi] [-why] [-jobs n]
//	         [-parallel n] [-cache-dir dir] [-watch] [-stats]
//	         [-trace file] [-jsonl file] [-explain var]
//	         [-debug-addr addr] [file|dir ...]
//
// With no arguments, one program is read from standard input; each
// argument may be a program file, an examples-style .go file (the
// embedded program is extracted), or a directory walked recursively
// for such .go files. Multiple programs are analyzed as one batch —
// concurrently with -jobs > 1 — and reported in input order under
// per-file headers; one failing input does not stop the rest.
// -parallel additionally splits each analysis across workers (0, the
// default, uses one per CPU, divided across the -jobs workers when
// batching); results are identical at every width. -why
// prints each dependence's provenance: the paper rule behind its
// decision procedure and the classification chains of both subscripts.
//
// -cache-dir persists analysis artifacts in a content-addressed store:
// re-running over an unchanged (or merely reformatted, or α-renamed)
// corpus answers from disk without re-analyzing, even across
// processes. -watch keeps the command running, polling the inputs and
// re-analyzing only programs whose content changed — with -cache-dir,
// a restarted watch starts warm.
package main

import (
	"flag"
	"fmt"
	"os"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/depend"
)

var (
	withInput   = flag.Bool("input", false, "also report read-read (input) dependences")
	withClasses = flag.Bool("classes", false, "also print the classification report")
	asDOT       = flag.Bool("dot", false, "emit the dependence graph in Graphviz DOT syntax")
	piBlocks    = flag.Bool("pi", false, "print each loop's π-blocks (loop distribution partition)")
	why         = flag.Bool("why", false, "print the provenance of every dependence edge")
	jobs        = flag.Int("jobs", 1, "analyze inputs concurrently on `n` workers (0 = one per CPU)")
	tel         cliutil.Telemetry
	cache       cliutil.CacheFlags
	watch       cliutil.WatchFlags
	par         cliutil.ParallelFlag
)

func main() {
	tel.RegisterObsFlags()
	cache.Register()
	watch.Register()
	par.Register()
	flag.Parse()
	if err := tel.Start(); err != nil {
		fatal(err)
	}
	opts := beyondiv.Options{
		Dependences: depend.Options{IncludeInput: *withInput},
		Jobs:        *jobs,
	}
	tel.Apply(&opts)
	par.Apply(&opts)
	// -dot and -pi walk the live dependence graph objects, which a
	// decoded disk artifact does not carry: keep the store warm but
	// analyze live.
	cache.Apply(&opts, *asDOT || *piBlocks)
	if watch.Watch {
		if err := watchLoop(opts); err != nil {
			fatal(err)
		}
		if err := tel.Finish(os.Stderr); err != nil {
			fatal(err)
		}
		return
	}
	srcs, err := cliutil.ReadPrograms(flag.Args())
	if err != nil {
		fatal(err)
	}
	results := cliutil.AnalyzeSources(srcs, opts)
	exit := 0
	for i, r := range results {
		if len(srcs) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("==== %s ====\n", srcs[i].Path)
		}
		if r.Err != nil {
			if c := cliutil.Report("depclass", fmt.Errorf("%s: %w", srcs[i].Path, r.Err)); c > exit {
				exit = c
			}
			continue
		}
		render(r.Program)
	}
	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// watchLoop re-analyzes the argument corpus as it changes, rendering
// each changed program under its file header.
func watchLoop(opts beyondiv.Options) error {
	return cliutil.Watch(flag.Args(), opts, cliutil.WatchConfig{Interval: watch.Interval},
		func(src cliutil.Source, prog *beyondiv.Program, err error) {
			fmt.Printf("==== %s ====\n", src.Path)
			if err != nil {
				cliutil.Report("depclass", fmt.Errorf("%s: %w", src.Path, err))
				return
			}
			render(prog)
		})
}

func render(prog *beyondiv.Program) {
	if *asDOT {
		fmt.Print(prog.Deps.DOT())
		return
	}
	if *withClasses {
		fmt.Print(prog.ClassificationReport())
		fmt.Println()
	}
	fmt.Print(prog.DependenceReport())
	if *why {
		fmt.Println()
		fmt.Print(prog.ExplainAllDeps())
	}
	if tel.Explain != "" {
		if out := prog.Explain(tel.Explain); out != "" {
			fmt.Println()
			fmt.Print(out)
		} else {
			fmt.Printf("\nno classified variable matches %q\n", tel.Explain)
		}
	}
	if *piBlocks {
		for _, l := range prog.Loops.InnerToOuter() {
			blocks := depend.PiBlocks(prog.Deps, l)
			if blocks == nil {
				continue
			}
			fmt.Printf("\nπ-blocks of %s (distribution order):\n", l.Label)
			for i, b := range blocks {
				shape := "acyclic (vectorizable)"
				if b.Cyclic {
					shape = "cyclic (stays a loop)"
				}
				fmt.Printf("  block %d [%s]:", i+1, shape)
				for _, st := range b.Stores {
					fmt.Printf(" %s[%s]", st.Var, st.Args[0])
				}
				fmt.Println()
			}
		}
	}
}

func fatal(err error) { cliutil.Fatal("depclass", err) }
