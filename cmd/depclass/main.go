// Command depclass runs the §6 data dependence analysis over a
// mini-language program and prints every dependence with its direction
// vector, wrap-around flags, and periodic distance constraints.
//
// Usage:
//
//	depclass [-input] [-classes] [-dot] [-pi] [file]
//
// With no file, the program is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"beyondiv"
	"beyondiv/internal/depend"
)

var (
	withInput   = flag.Bool("input", false, "also report read-read (input) dependences")
	withClasses = flag.Bool("classes", false, "also print the classification report")
	asDOT       = flag.Bool("dot", false, "emit the dependence graph in Graphviz DOT syntax")
	piBlocks    = flag.Bool("pi", false, "print each loop's π-blocks (loop distribution partition)")
)

func main() {
	flag.Parse()
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "depclass:", err)
		os.Exit(1)
	}
	prog, err := beyondiv.AnalyzeWith(src, beyondiv.Options{
		Dependences: depend.Options{IncludeInput: *withInput},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "depclass:", err)
		os.Exit(1)
	}
	if *asDOT {
		fmt.Print(prog.Deps.DOT())
		return
	}
	if *withClasses {
		fmt.Print(prog.ClassificationReport())
		fmt.Println()
	}
	fmt.Print(prog.DependenceReport())
	if *piBlocks {
		for _, l := range prog.Loops.InnerToOuter() {
			blocks := depend.PiBlocks(prog.Deps, l)
			if blocks == nil {
				continue
			}
			fmt.Printf("\nπ-blocks of %s (distribution order):\n", l.Label)
			for i, b := range blocks {
				shape := "acyclic (vectorizable)"
				if b.Cyclic {
					shape = "cyclic (stays a loop)"
				}
				fmt.Printf("  block %d [%s]:", i+1, shape)
				for _, st := range b.Stores {
					fmt.Printf(" %s[%s]", st.Var, st.Args[0])
				}
				fmt.Println()
			}
		}
	}
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
