// Command bivload drives the analysis pipeline under sustained load:
// it analyzes a corpus of programs in a loop for a fixed duration,
// publishing process-lifetime metrics and a flight recorder of recent
// runs as it goes. It exists to exercise the observability stack the
// way a long-running service would — point -debug-addr at a port,
// curl /metrics for per-phase p50/p99 latencies while the load runs,
// /lastruns for the most recent analyses — and doubles as a quick
// steady-state throughput probe.
//
// Usage:
//
//	bivload [-d duration] [-jobs n] [-parallel n] [-cache n]
//	        [-cache-dir dir] [-inject phase] [-hold] [-debug-addr addr]
//	        [-stats] [-trace file] [file|dir ...]
//	bivload -addr host:port [-d duration] [-conc n] [-seed n]
//	        [-inject phase] [-bench-json file]
//
// With -addr, bivload becomes the chaos client for a running bivd
// instead of driving the pipeline in-process: -conc workers send a
// mixed stream of hot (cacheable) and cold programs, parse errors,
// guard-tripping inputs, 1ms-deadline requests, slow-loris bodies,
// mid-request hangups and — with -inject — server-side contained
// faults, then report latency percentiles, throughput, shed rate and
// the full error taxonomy (optionally as JSON to -bench-json). The
// run fails (exit 1) if the server became unreachable or returned any
// unexplained 5xx — a 500 whose body does not attribute the failure.
//
// With no arguments, one program is read from standard input; each
// argument may be a program file, an examples-style .go file (the
// embedded program is extracted), or a directory walked recursively
// for such files. Every iteration analyzes the whole corpus as one
// batch over -jobs workers; -parallel additionally splits each
// analysis across workers (0, the default, uses one per CPU, divided
// across the -jobs workers so the two tiers compose instead of
// oversubscribing). -cache gives the analyzer a result cache
// of that capacity, turning steady state into cache hits (useful for
// watching the hit counters move). -inject makes one extra analysis
// per iteration fail with a contained fault in the named phase, so
// /lastruns always has a failed run to look at. -hold keeps the
// debug server (and the process) alive after the load finishes, until
// interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/serve"
)

var (
	duration = flag.Duration("d", 5*time.Second, "how long to sustain the load")
	jobs     = flag.Int("jobs", 0, "analyze each batch on `n` workers (0 = one per CPU)")
	cacheN   = flag.Int("cache", 0, "result-cache capacity (0 = no cache)")
	inject   = flag.String("inject", "", "fault one extra run per iteration in `phase` (e.g. sccp), exercising contained-fault capture")
	hold     = flag.Bool("hold", false, "keep serving -debug-addr after the load finishes, until interrupted")
	addr     = flag.String("addr", "", "chaos-test a running bivd at `host:port` over HTTP instead of loading in-process")
	conc     = flag.Int("conc", 8, "client workers in -addr mode")
	seed     = flag.Int64("seed", 1, "traffic-mix seed in -addr mode")
	benchOut = flag.String("bench-json", "", "write the -addr mode report as JSON to `file` (e.g. BENCH_serve.json)")
	tel      cliutil.Telemetry
	cache    cliutil.CacheFlags
	par      cliutil.ParallelFlag
)

func main() {
	tel.RegisterObsFlags()
	cache.Register()
	par.Register()
	cliutil.ParseFlags("bivload")
	if *addr != "" {
		chaos()
		return
	}
	srcs, err := cliutil.ReadPrograms(flag.Args())
	if err != nil {
		fatal(err)
	}
	if err := tel.Start(); err != nil {
		fatal(err)
	}

	opts := beyondiv.Options{Jobs: *jobs, CacheEntries: *cacheN}
	tel.Apply(&opts)
	par.Apply(&opts)
	cache.Apply(&opts, false)
	// The summary below reads the registry, so run with one even when
	// no debug server asked for it.
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}
	an := beyondiv.NewAnalyzer(opts)

	var faulty *beyondiv.Analyzer
	if *inject != "" {
		fopts := opts
		// Faults must not be masked by the in-memory cache or the disk
		// store (a decoded hit would never reach the injected phase).
		fopts.CacheEntries, fopts.Cache, fopts.CacheDir = 0, nil, ""
		fopts.Limits.Inject = guard.PanicIn(*inject)
		faulty = beyondiv.NewAnalyzer(fopts)
	}

	texts := make([]string, len(srcs))
	for i, s := range srcs {
		texts[i] = s.Text
	}

	start := time.Now()
	iterations, runs, errs := 0, 0, 0
	for time.Since(start) < *duration {
		for _, r := range an.AnalyzeAll(texts) {
			runs++
			if r.Err != nil {
				errs++
			}
		}
		if faulty != nil {
			if _, err := faulty.Analyze(texts[0]); err != nil {
				errs++
			}
			runs++
		}
		iterations++
	}
	elapsed := time.Since(start)

	fmt.Printf("%d iterations over %d programs in %s: %d analyses (%.0f/s), %d errors\n",
		iterations, len(srcs), elapsed.Round(time.Millisecond), runs,
		float64(runs)/elapsed.Seconds(), errs)
	snap := reg.Snapshot()
	if h, ok := snap.Hists["phase.analyze"]; ok && h.Count > 0 {
		fmt.Printf("analyze latency p50 %s  p90 %s  p99 %s\n",
			time.Duration(h.P50), time.Duration(h.P90), time.Duration(h.P99))
	}
	if hits := snap.Counters["engine.cache.hit"]; hits > 0 {
		fmt.Printf("cache: %d hits, %d misses\n", hits, snap.Counters["engine.cache.miss"])
	}

	if *hold && tel.DebugURL() != "" {
		fmt.Fprintf(os.Stderr, "holding; debug server at %s (interrupt to exit)\n", tel.DebugURL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliutil.Fatal("bivload", err) }

// chaos is -addr mode: drive a running bivd with the serve package's
// chaos mix and report how it held up.
func chaos() {
	if args := flag.Args(); len(args) != 0 {
		fmt.Fprintf(os.Stderr, "bivload: -addr mode takes no positional arguments (got %q)\n", args)
		os.Exit(1)
	}
	report, err := serve.RunLoad(serve.LoadConfig{
		Addr:        *addr,
		Duration:    *duration,
		Concurrency: *conc,
		Inject:      *inject,
		Seed:        *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d requests in %dms (%.0f/s): %d ok, %d shed (%.1f%%), %d client errors\n",
		report.Requests, report.DurationMS, report.Throughput,
		report.OK, report.Shed, 100*report.ShedRate, report.ClientErrs)
	fmt.Printf("latency p50 %dus  p99 %dus\n", report.P50US, report.P99US)
	fmt.Printf("by status: %v\nby kind:   %v\nby class:  %v\n",
		report.ByStatus, report.ByKind, report.ByClass)
	if *benchOut != "" {
		if err := report.WriteFile(*benchOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bivload: report written to %s\n", *benchOut)
	}
	if report.Unexplained > 0 {
		fmt.Fprintf(os.Stderr, "bivload: %d unexplained 5xx responses (no error kind attributed)\n", report.Unexplained)
		os.Exit(1)
	}
}
