// Command bivload drives the analysis pipeline under sustained load:
// it analyzes a corpus of programs in a loop for a fixed duration,
// publishing process-lifetime metrics and a flight recorder of recent
// runs as it goes. It exists to exercise the observability stack the
// way a long-running service would — point -debug-addr at a port,
// curl /metrics for per-phase p50/p99 latencies while the load runs,
// /lastruns for the most recent analyses — and doubles as a quick
// steady-state throughput probe.
//
// Usage:
//
//	bivload [-d duration] [-jobs n] [-cache n] [-inject phase] [-hold]
//	        [-debug-addr addr] [-stats] [-trace file] [file|dir ...]
//
// With no arguments, one program is read from standard input; each
// argument may be a program file, an examples-style .go file (the
// embedded program is extracted), or a directory walked recursively
// for such files. Every iteration analyzes the whole corpus as one
// batch over -jobs workers. -cache gives the analyzer a result cache
// of that capacity, turning steady state into cache hits (useful for
// watching the hit counters move). -inject makes one extra analysis
// per iteration fail with a contained fault in the named phase, so
// /lastruns always has a failed run to look at. -hold keeps the
// debug server (and the process) alive after the load finishes, until
// interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs/metrics"
)

var (
	duration = flag.Duration("d", 5*time.Second, "how long to sustain the load")
	jobs     = flag.Int("jobs", 0, "analyze each batch on `n` workers (0 = one per CPU)")
	cacheN   = flag.Int("cache", 0, "result-cache capacity (0 = no cache)")
	inject   = flag.String("inject", "", "fault one extra run per iteration in `phase` (e.g. sccp), exercising contained-fault capture")
	hold     = flag.Bool("hold", false, "keep serving -debug-addr after the load finishes, until interrupted")
	tel      cliutil.Telemetry
)

func main() {
	tel.RegisterObsFlags()
	flag.Parse()
	srcs, err := cliutil.ReadPrograms(flag.Args())
	if err != nil {
		fatal(err)
	}
	if err := tel.Start(); err != nil {
		fatal(err)
	}

	opts := beyondiv.Options{Jobs: *jobs, CacheEntries: *cacheN}
	tel.Apply(&opts)
	// The summary below reads the registry, so run with one even when
	// no debug server asked for it.
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
	}
	an := beyondiv.NewAnalyzer(opts)

	var faulty *beyondiv.Analyzer
	if *inject != "" {
		fopts := opts
		fopts.CacheEntries, fopts.Cache = 0, nil // faults must not be masked by the cache
		fopts.Limits.Inject = guard.PanicIn(*inject)
		faulty = beyondiv.NewAnalyzer(fopts)
	}

	texts := make([]string, len(srcs))
	for i, s := range srcs {
		texts[i] = s.Text
	}

	start := time.Now()
	iterations, runs, errs := 0, 0, 0
	for time.Since(start) < *duration {
		for _, r := range an.AnalyzeAll(texts) {
			runs++
			if r.Err != nil {
				errs++
			}
		}
		if faulty != nil {
			if _, err := faulty.Analyze(texts[0]); err != nil {
				errs++
			}
			runs++
		}
		iterations++
	}
	elapsed := time.Since(start)

	fmt.Printf("%d iterations over %d programs in %s: %d analyses (%.0f/s), %d errors\n",
		iterations, len(srcs), elapsed.Round(time.Millisecond), runs,
		float64(runs)/elapsed.Seconds(), errs)
	snap := reg.Snapshot()
	if h, ok := snap.Hists["phase.analyze"]; ok && h.Count > 0 {
		fmt.Printf("analyze latency p50 %s  p90 %s  p99 %s\n",
			time.Duration(h.P50), time.Duration(h.P90), time.Duration(h.P99))
	}
	if hits := snap.Counters["engine.cache.hit"]; hits > 0 {
		fmt.Printf("cache: %d hits, %d misses\n", hits, snap.Counters["engine.cache.miss"])
	}

	if *hold && tel.DebugURL() != "" {
		fmt.Fprintf(os.Stderr, "holding; debug server at %s (interrupt to exit)\n", tel.DebugURL())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	if err := tel.Finish(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliutil.Fatal("bivload", err) }
