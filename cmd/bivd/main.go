// Command bivd is the analysis daemon: the Beyond Induction Variables
// pipeline served over HTTP/JSON, built to stay up under hostile or
// merely excessive traffic. One port carries the /v1 API and the full
// debug surface (/metrics, /healthz, /lastruns, /debug/pprof).
//
// Usage:
//
//	bivd [-addr host:port] [-workers n] [-queue n] [-jobs n]
//	     [-parallel n] [-cache n] [-cache-dir dir] [-cache-max-bytes n]
//	     [-timeout d] [-max-timeout d] [-read-timeout d]
//	     [-drain-timeout d] [-poison n] [-inject]
//
// Endpoints (all POST, JSON bodies):
//
//	/v1/analyze   {"source": "...", "timeout_ms": 500}
//	/v1/optimize  {"source": "..."}
//	/v1/explain   {"source": "...", "var": "j", "deps": true}
//	/v1/batch     {"sources": ["...", ...]}
//
// Robustness model: -workers requests analyze concurrently, -queue more
// may wait, and everything beyond that is shed immediately with 429 +
// Retry-After. Every request runs under a deadline (-timeout unless the
// body asks, capped at -max-timeout) threaded into the engine's
// cooperative cancellation, so a hung client or an expensive input
// cannot pin a worker. -parallel sets the intra-run fan-out width — how
// many workers one analysis may split its independent loops and
// dependence pairs across — and caps the request bodies' "parallel"
// field the same way -max-timeout caps timeout_ms. It defaults to 1: a
// daemon already runs -workers × -jobs analyses concurrently, and
// splitting each of those further oversubscribes the machine; raise it
// only on big machines serving few, large requests. -cache-dir adds a
// persistent artifact store
// under the in-memory cache: a restarted daemon answers repeat (or
// reformatted, or α-renamed) sources from disk without re-analysis,
// and the engine.store.* counters on /metrics show the tier working.
// Analyzer panics are contained per-request into
// structured 500s with phase attribution, and the faulting source's
// hash is poisoned (-poison entries) so replayed crashers are refused
// from cache. SIGTERM/SIGINT flips /healthz to draining, stops
// admission, waits up to -drain-timeout for in-flight work, flushes a
// final metrics summary to stderr, and exits 0 on a clean drain
// (1 otherwise).
//
// -inject enables the request bodies' "inject" field (a named phase
// panics server-side, contained) for the chaos harness; leave it off in
// real deployments.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beyondiv"
	"beyondiv/internal/cliutil"
	"beyondiv/internal/obs/debugserv"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/serve"
)

var (
	addr         = flag.String("addr", "localhost:7070", "listen address for the API and debug surface")
	workers      = flag.Int("workers", 4, "requests analyzed concurrently (admission slots)")
	queue        = flag.Int("queue", 0, "requests allowed to wait for a slot (0 = 4x workers); beyond this, shed with 429")
	jobs         = flag.Int("jobs", 2, "worker pool size inside one /v1/batch request")
	parallel     = flag.Int("parallel", 1, "intra-run fan-out width per analysis, and cap on the bodies' \"parallel\" field (0 = one per CPU)")
	cacheN       = flag.Int("cache", 1024, "result-cache capacity shared by all requests (0 = no cache)")
	cacheDir     = flag.String("cache-dir", "", "persist analysis artifacts in a content-addressed store under `dir`, surviving restarts")
	cacheMax     = flag.Int64("cache-max-bytes", 0, "size budget of -cache-dir in `bytes` (0 = 256 MiB)")
	timeout      = flag.Duration("timeout", 10*time.Second, "per-request deadline when the body names none")
	maxTimeout   = flag.Duration("max-timeout", 60*time.Second, "cap on body-requested timeout_ms")
	readTimeout  = flag.Duration("read-timeout", 10*time.Second, "deadline for one request to arrive in full (slow-loris defense)")
	drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight requests")
	poisonN      = flag.Int("poison", 128, "poison-cache entries (faulting sources refused on replay; negative = off)")
	inject       = flag.Bool("inject", false, "honor the request bodies' \"inject\" fault-injection field (chaos testing only)")
)

func main() {
	cliutil.ParseFlags("bivd")
	if args := flag.Args(); len(args) != 0 {
		fmt.Fprintf(os.Stderr, "bivd: unexpected arguments %q (the daemon takes no positional arguments)\n", args)
		os.Exit(1)
	}

	reg := metrics.NewRegistry()
	fl := metrics.NewFlight(64, 16)
	srv := serve.New(serve.Config{
		Options: beyondiv.Options{
			Jobs:          *jobs,
			Parallel:      *parallel,
			CacheEntries:  *cacheN,
			CacheDir:      *cacheDir,
			CacheMaxBytes: *cacheMax,
			Metrics:       reg,
			Flight:        fl,
		},
		MaxInFlight:    *workers,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PoisonCapacity: *poisonN,
		AllowInject:    *inject,
	})

	ds, err := debugserv.ServeWith(*addr, reg, fl, debugserv.Options{
		Health:      srv.Health,
		Routes:      srv.Register,
		ReadTimeout: *readTimeout,
	})
	if err != nil {
		cliutil.Fatal("bivd", err)
	}
	fmt.Fprintf(os.Stderr, "bivd listening on http://%s (%d workers, queue %d)\n",
		ds.Addr(), *workers, max(*queue, 4**workers))

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "bivd: %s; draining (up to %s)\n", sig, *drainTimeout)

	// Drain order: stop admitting (healthz flips to draining, queued
	// waiters get 503), wait for in-flight analyses, then let the HTTP
	// layer finish writing responses before the listener dies.
	clean := srv.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = ds.Shutdown(ctx)
	flush(reg)
	if !clean {
		fmt.Fprintf(os.Stderr, "bivd: drain deadline expired with requests still in flight\n")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "bivd: drained clean")
}

// flush writes the final request accounting to stderr — the process is
// exiting, so this is the last chance to see what it served.
func flush(reg *metrics.Registry) {
	snap := reg.Snapshot()
	c := snap.Counters
	fmt.Fprintf(os.Stderr, "bivd: served %d requests: %d ok, %d shed, %d faults, %d cancelled/deadline, %d rejected draining\n",
		c["serve.req"], c["serve.ok"], c["serve.shed"], c["serve.err.fault"],
		c["serve.err.canceled"]+c["serve.err.deadline"], c["serve.rejected.draining"])
	for _, ep := range []string{"analyze", "optimize", "explain", "batch"} {
		if h, ok := snap.Hists["serve.latency."+ep]; ok && h.Count > 0 {
			fmt.Fprintf(os.Stderr, "bivd: %s latency p50 %s  p99 %s  (%d requests)\n",
				ep, time.Duration(h.P50), time.Duration(h.P99), h.Count)
		}
	}
}
