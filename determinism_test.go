package beyondiv

import (
	"testing"

	"beyondiv/internal/paper"
	"beyondiv/internal/progen"
)

// TestDeterministicReports: analyzing the same program repeatedly must
// render byte-identical reports — map iteration order must never leak
// into classifications, dependence lists, or π-blocks.
func TestDeterministicReports(t *testing.T) {
	srcs := []string{
		progen.MixedClasses(4),
		progen.NestedLoops(3),
		progen.DepWorkload(7),
	}
	for _, p := range paper.Corpus {
		srcs = append(srcs, p.Source)
	}
	for _, src := range srcs {
		var firstCls, firstDeps string
		for round := 0; round < 3; round++ {
			prog, err := Analyze(src)
			if err != nil {
				t.Fatalf("%v\n%s", err, src)
			}
			cls := prog.ClassificationReport()
			deps := prog.DependenceReport()
			if round == 0 {
				firstCls, firstDeps = cls, deps
				continue
			}
			if cls != firstCls {
				t.Fatalf("classification report differs between runs for:\n%s\n--- first ---\n%s\n--- now ---\n%s", src, firstCls, cls)
			}
			if deps != firstDeps {
				t.Fatalf("dependence report differs between runs for:\n%s\n--- first ---\n%s\n--- now ---\n%s", src, firstDeps, deps)
			}
		}
	}
}

// TestDeterministicDOTAndJSON: machine-readable outputs are stable too.
func TestDeterministicDOTAndJSON(t *testing.T) {
	src := progen.DepWorkload(11)
	var firstDot string
	for round := 0; round < 3; round++ {
		prog, err := Analyze(src)
		if err != nil {
			t.Fatal(err)
		}
		dot := prog.Deps.DOT()
		if round == 0 {
			firstDot = dot
			continue
		}
		if dot != firstDot {
			t.Fatalf("DOT output differs between runs:\n%s", src)
		}
	}
}
