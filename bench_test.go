// Benchmarks regenerating the paper's performance claims, one per
// experiment id of DESIGN.md. Shape expectations (EXPERIMENTS.md holds
// measured numbers):
//
//	E16 BenchmarkScaling/*            — ns/statement flat as programs grow
//	                                    (§7: "linear in the size of the SSA
//	                                    graph, not iterative")
//	E17 BenchmarkUnifiedVsClassical/* — the one-pass SSA classifier vs the
//	                                    iterative classical matcher with its
//	                                    ad hoc recognizers
//	E1/E6/E8 BenchmarkClassify*       — per-class classification costs
//	E13–E15 BenchmarkDependence*      — dependence testing costs
//	E19 BenchmarkStrengthReduce       — transformation cost
package beyondiv

import (
	"fmt"
	"testing"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/classical"
	"beyondiv/internal/depend"
	"beyondiv/internal/engine"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/paper"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
	"beyondiv/internal/xform"
)

// pipeline runs everything up to (not including) classification, so
// classifier benchmarks measure just the paper's algorithm.
type pipelineState struct {
	info   *ssa.Info
	forest *loops.Forest
	consts *sccp.Result
}

func buildPipeline(b *testing.B, src string) *pipelineState {
	b.Helper()
	st, err := engine.New(engine.Config{Passes: engine.Frontend()}).Analyze(src)
	if err != nil {
		b.Fatal(err)
	}
	return &pipelineState{info: st.SSA, forest: st.Forest, consts: st.Consts}
}

// countSSAValues sizes the SSA graph for per-node reporting.
func countSSAValues(info *ssa.Info) int {
	n := 0
	for _, blk := range info.Func.Blocks {
		n += len(blk.Values)
	}
	return n
}

// E16: classification time per SSA-graph node must stay flat as the
// loop body grows — the paper's linearity claim.
func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		b.Run(fmt.Sprintf("stmts=%d", n), func(b *testing.B) {
			st := buildPipeline(b, progen.StraightLineLoop(n))
			nodes := countSSAValues(st.info)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iv.Analyze(st.info, st.forest, st.consts)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nodes), "ns/ssa-node")
		})
	}
}

// E16b: the same sweep over mutually-defined chains (single large SCR).
func BenchmarkScalingMutualChain(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			st := buildPipeline(b, progen.MutualChain(n))
			nodes := countSSAValues(st.info)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iv.Analyze(st.info, st.forest, st.consts)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nodes), "ns/ssa-node")
		})
	}
}

// E17: unified one-pass classification vs the classical iterative
// matcher plus ad hoc recognizer passes, on identical inputs. Both
// sides run their whole front end so the comparison is end to end, as
// a compiler would experience it.
func BenchmarkUnifiedVsClassical(b *testing.B) {
	workloads := map[string]string{
		"paperCorpus": corpusSource(),
		"mixed×10":    progen.MixedClasses(10),
		"mixed×50":    progen.MixedClasses(50),
		"straight1k":  progen.StraightLineLoop(1000),
	}
	for name, src := range workloads {
		file, err := parse.File(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("unified/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := cfgbuild.Build(file)
				info := ssa.Build(res.Func)
				forest := loops.Analyze(res.Func, info.Dom)
				iv.Analyze(info, forest, sccp.Run(info))
			}
		})
		b.Run("classical/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				classical.Analyze(cfgbuild.Build(file))
			}
		})
	}
}

func corpusSource() string {
	out := ""
	for _, p := range paper.Corpus {
		out += p.Source + "\n"
	}
	return out
}

// classifyBench measures classification alone on one corpus entry,
// reporting the SCR population from one instrumented run (untimed).
func classifyBench(b *testing.B, id string) {
	b.Helper()
	p := paper.ByID(id)
	if p == nil {
		b.Fatalf("no corpus entry %s", id)
	}
	st := buildPipeline(b, p.Source)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv.Analyze(st.info, st.forest, st.consts)
	}
	b.StopTimer()
	rec := obs.New()
	iv.AnalyzeWithOptions(st.info, st.forest, st.consts, iv.Options{Obs: rec})
	b.ReportMetric(float64(rec.CounterTotal("iv.scr.")), "scrs/op")
}

// E1: linear families (Figure 1).
func BenchmarkClassifyLinear(b *testing.B) { classifyBench(b, "E2") }

// E3: conditional equal-increment families (Figure 3).
func BenchmarkClassifyConditionalLinear(b *testing.B) { classifyBench(b, "E3") }

// E4: wrap-around chains (Figure 4).
func BenchmarkClassifyWrapAround(b *testing.B) { classifyBench(b, "E4") }

// E5: periodic rotations (Figure 5).
func BenchmarkClassifyPeriodic(b *testing.B) { classifyBench(b, "E5c") }

// E6/E7: polynomial and geometric closed forms via matrix inversion
// (§4.3, loop L14) — the most expensive classification path.
func BenchmarkClassifyClosedForms(b *testing.B) { classifyBench(b, "E6") }

// E8: monotonic regions (Figure 6).
func BenchmarkClassifyMonotonic(b *testing.B) { classifyBench(b, "E8b") }

// E10: nested loops with exit values (Figures 7/8).
func BenchmarkClassifyNested(b *testing.B) { classifyBench(b, "E10") }

// E11: the triangular quadratic nest (Figure 9).
func BenchmarkClassifyTriangular(b *testing.B) { classifyBench(b, "E11") }

// E9: trip-count computation across the §5.2 table programs.
func BenchmarkTripCounts(b *testing.B) { classifyBench(b, "E9") }

// dependence benchmarks: full analysis including testing, with the
// tested-pair count from one instrumented run (untimed).
func dependenceBench(b *testing.B, src string) {
	b.Helper()
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depend.Analyze(a, depend.Options{})
	}
	b.StopTimer()
	rec := obs.New()
	depend.Analyze(a, depend.Options{Obs: rec})
	b.ReportMetric(float64(rec.Counter("depend.pairs.tested")), "dep-tests/op")
}

// E13: the L21 induction-expression equation.
func BenchmarkDependenceL21(b *testing.B) { dependenceBench(b, paper.ByID("E13").Source) }

// E14: periodic subscripts (L22).
func BenchmarkDependenceL22(b *testing.B) { dependenceBench(b, paper.ByID("E14").Source) }

// E15: the normalization-study nest (L23/L24).
func BenchmarkDependenceL23(b *testing.B) { dependenceBench(b, paper.ByID("E15").Source) }

// E12: monotonic directions (Figure 10).
func BenchmarkDependenceMonotonic(b *testing.B) { dependenceBench(b, paper.ByID("E12").Source) }

// E13b: dependence testing over a growing access population.
func BenchmarkDependenceSweep(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		src := "L1: for i = 1 to 50 {\n"
		for k := 0; k < n; k++ {
			src += fmt.Sprintf("    a[i + %d] = a[i] + %d\n", k, k)
		}
		src += "}\n"
		b.Run(fmt.Sprintf("accesses=%d", n+1), func(b *testing.B) {
			dependenceBench(b, src)
		})
	}
}

// E19: strength reduction over a fresh analysis each round (the
// transformation mutates the SSA).
func BenchmarkStrengthReduce(b *testing.B) {
	src := `
L1: for i = 1 to n {
    L2: for j = 1 to n {
        a[64 * i + j] = a[64 * i + j - 64] + 8 * j
    }
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, err := iv.AnalyzeProgram(src)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		xform.ReduceStrength(a)
	}
}

// E18: wrap-around peeling at the AST level.
func BenchmarkPeel(b *testing.B) {
	src := paper.ByID("E4").Source
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		file, err := parse.File(src)
		if err != nil {
			b.Fatal(err)
		}
		xform.PeelProgram(file, nil)
	}
}

// E0: the whole pipeline end to end on the paper corpus, the number a
// compiler integrator would care about.
func BenchmarkFullPipelineCorpus(b *testing.B) {
	src := corpusSource()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(src); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rec := obs.New()
	if _, err := AnalyzeWith(src, Options{Obs: rec}); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rec.CounterTotal("iv.scr.")), "scrs/op")
	b.ReportMetric(float64(rec.Counter("depend.pairs.tested")), "dep-tests/op")
}

// Telemetry overhead: the nil-recorder path (plain Analyze) vs a live
// recorder. The "off" variant is the number that must not regress —
// telemetry off is a nil check per site, nothing more.
func BenchmarkTelemetryOverhead(b *testing.B) {
	src := corpusSource()
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeWith(src, Options{Obs: obs.New()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E17b: the iterative-cost claim isolated. A k-link derived chain whose
// textual order defeats the classical scan forces k fixpoint rounds
// (O(k²) total work); the SSA classifier's single Tarjan pass stays
// linear. The crossover is the paper's core speed argument.
func BenchmarkChainDepth(b *testing.B) {
	for _, k := range []int{16, 64, 256, 1024} {
		src := progen.DerivedChain(k)
		file, err := parse.File(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("unified/k=%d", k), func(b *testing.B) {
			st := buildPipeline(b, src)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iv.Analyze(st.info, st.forest, st.consts)
			}
		})
		b.Run(fmt.Sprintf("classical/k=%d", k), func(b *testing.B) {
			res := cfgbuild.Build(file)
			b.ReportAllocs()
			b.ResetTimer()
			var rounds int
			for i := 0; i < b.N; i++ {
				rounds = classical.Analyze(res).Rounds
			}
			b.ReportMetric(float64(rounds), "fixpoint-rounds")
		})
	}
}

// Ablation benches: what each design choice costs and buys (DESIGN.md
// §5; results discussed in EXPERIMENTS.md).
func BenchmarkAblation(b *testing.B) {
	src := corpusSource()
	st := buildPipeline(b, src)
	variants := []struct {
		name string
		opts iv.Options
	}{
		{"full", iv.Options{}},
		{"noClosedForms", iv.Options{DisableClosedForms: true}},
		{"noExitValues", iv.Options{DisableExitValues: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				iv.AnalyzeWithOptions(st.info, st.forest, st.consts, v.opts)
			}
		})
	}
	b.Run("noSCCP", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			iv.Analyze(st.info, st.forest, nil)
		}
	})
}

// E14b/E22/E25: costs of the extended dependence machinery.
func BenchmarkDependenceComposite(b *testing.B) {
	dependenceBench(b, `
cur = 1
old = 2
L1: for sweep = 1 to 10 {
    L2: for i = 1 to 48 {
        plane[cur * 64 + i] = plane[old * 64 + i] + 1
    }
    t = cur
    cur = old
    old = t
}
`)
}

func BenchmarkDependencePolynomial(b *testing.B) {
	dependenceBench(b, `
j = 0
L1: for i = 1 to 12 {
    j = j + i
    a[j] = a[j] + 1
}
`)
}

func BenchmarkPiBlocks(b *testing.B) {
	src := `
s = 0
L1: for i = 1 to 40 {
    s = s + a[i]
    b[i] = a[i]
    c[i] = s
    d[i] = b[i - 1]
    e[i] = d[i - 1]
}
`
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	r := depend.Analyze(a, depend.Options{})
	l := a.LoopByLabel("L1")
	var scr depend.PiScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depend.PiBlocksScratch(r, l, &scr)
	}
}

func BenchmarkLegality(b *testing.B) {
	src := `
L1: for i = 1 to 64 {
    L2: for j = 1 to 64 {
        a[i * 100 + j] = a[i * 100 + j - 100] + a[i * 100 + j - 1]
    }
}
`
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	r := depend.Analyze(a, depend.Options{})
	outer := a.LoopByLabel("L1")
	inner := a.LoopByLabel("L2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		depend.Parallelizable(r, inner)
		depend.InterchangeLegal(r, outer, inner)
		if dists, ok := depend.DistanceVectors2(r, outer, inner); ok {
			depend.FindSkewedInterchange(dists, 4)
		}
	}
}
