// Package beyondiv is a Go implementation of "Beyond Induction
// Variables" (Michael Wolfe, PLDI 1992): a unified, single-pass
// classification of every integer scalar in every loop of a program —
// linear, polynomial and geometric induction variables, wrap-around,
// periodic and monotonic variables — computed by running Tarjan's
// strongly-connected-region algorithm over the Static Single Assignment
// graph, plus the data dependence testing the classification enables.
//
// The package is a facade over the analysis engine (internal/engine),
// which executes the pipeline as explicit passes:
//
//	source → scan/parse → CFG → SSA (Cytron et al.) → loop nest →
//	constant propagation (Wegman–Zadeck) → IV classification →
//	dependence testing
//
// Quick start:
//
//	prog, err := beyondiv.Analyze(`
//	    j = 0
//	    L1: for i = 1 to n {
//	        j = j + i
//	        a[j] = a[j - 1]
//	    }
//	`)
//	fmt.Print(prog.ClassificationReport())
//	fmt.Print(prog.DependenceReport())
//
// For corpora there is a batch mode — AnalyzeBatch fans sources out
// over a bounded worker pool — and a content-addressed result cache
// (NewAnalyzer with Options.CacheEntries) that makes repeated analysis
// of hot sources a hash and a map hit.
//
// Programs are written in a small loop language with `for v = lo to hi
// [by s]`, `loop { ... exit ... }`, `while`, `if`/`else`, integer
// scalars, and one-dimensional arrays `a[expr]`; see internal/parse for
// the grammar.
package beyondiv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"beyondiv/internal/codec"
	"beyondiv/internal/depend"
	"beyondiv/internal/engine"
	"beyondiv/internal/guard"
	"beyondiv/internal/interp"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/ssa"
	"beyondiv/internal/store"
	"beyondiv/internal/xform"
)

// Program is a fully analyzed program.
//
// A program normally carries the live analysis (IV, Deps, SSA, Loops).
// When it was served from the persistent disk cache (Options.CacheDir)
// those fields are nil — only the rendered artifacts survive
// serialization — and Decoded reports true; the report and explain
// methods answer identically either way, while Run, RunSteps and
// ExplainDep need the live form.
type Program struct {
	// IV is the induction-variable classification (the paper's core
	// algorithm); see its ClassOf, TripCount, IterFormOf and
	// NestedString methods.
	IV *iv.Analysis
	// Deps is the dependence analysis of §6.
	Deps *depend.Result
	// SSA exposes the underlying SSA-form function.
	SSA *ssa.Info
	// Loops is the loop nest.
	Loops *loops.Forest

	// art is the decoded artifact backing a program served from the
	// persistent cache; nil for live analyses.
	art *codec.Artifact
}

// Decoded reports whether this program was served from the persistent
// disk cache, carrying rendered artifacts instead of a live analysis.
func (p *Program) Decoded() bool { return p.art != nil }

// Options configure Analyze, NewAnalyzer and AnalyzeBatch.
type Options struct {
	// SkipDependences skips the §6 dependence analysis.
	SkipDependences bool
	// Dependences forwards options to the dependence tester.
	Dependences depend.Options
	// IV forwards the classifier's ablation switches (closed forms,
	// exit values); the zero value enables everything.
	IV iv.Options
	// Obs, when non-nil, records phase spans, counters and provenance
	// events across every pipeline stage (see internal/obs). Nil keeps
	// telemetry off at no cost. Batch workers record into forks of
	// this recorder, merged back when the batch completes.
	Obs *obs.Recorder
	// Metrics, when non-nil, receives the process-lifetime aggregates
	// the engine emits on every run: per-phase latency and allocation
	// histograms, cache hit/miss/evict, batch fan-out, guard-limit
	// trips, contained faults and transform/validation outcomes. Where
	// Obs is one run's story, a registry accumulates across every run
	// of every analyzer sharing it, and is what the -debug-addr server
	// exposes. Nil keeps metrics off at no cost.
	Metrics *metrics.Registry
	// Flight, when non-nil, is the flight recorder: every analysis and
	// optimization outcome is captured as a condensed run record, with
	// runs that end in a contained fault held in a dedicated ring that
	// healthy traffic cannot evict. Nil keeps capture off at no cost.
	Flight *metrics.Flight
	// Limits bounds the resources each analysis may consume on hostile
	// input (source size, nesting depth, IR size, loop depth, per-phase
	// work). Zero fields take guard.Default ceilings; set a field to
	// guard.Unlimited to disable one check explicitly. A ceiling hit
	// surfaces as a *Error, never as a hang or a crash.
	Limits guard.Limits

	// Jobs bounds the batch worker pool of AnalyzeAll/AnalyzeBatch:
	// at most this many sources analyze concurrently (<= 0 means one
	// worker per available CPU). Single-source Analyze ignores it.
	Jobs int
	// Parallel is the intra-run fan-out width: when a single analysis
	// has enough independent work (sibling loop subtrees for the
	// classifier, array-reference pairs for the dependence tester), up
	// to this many workers share it. 0 means one worker per available
	// CPU; 1 disables the fan-out. Results are bit-identical to the
	// sequential pipeline either way, so the field stays out of
	// Fingerprint and parallel and sequential runs share cache entries.
	// In batch mode the width is divided by the number of concurrent
	// batch workers (floor 1) unless set explicitly, so batch × intra-run
	// parallelism does not oversubscribe the machine.
	Parallel int
	// CacheEntries, when positive, gives the analyzer a private LRU
	// result cache of that capacity, keyed by source hash + options
	// fingerprint: re-analyzing an unchanged source returns the cached
	// Program's artifacts without running the pipeline. Cached artifacts
	// are shared and immutable; Optimize works on a private clone of the
	// cached program (clone-on-transform), so optimizing a cache hit is
	// always safe.
	CacheEntries int
	// Cache, when non-nil, overrides CacheEntries with an explicit
	// cache, which may be shared across analyzers with different
	// options; the fingerprint in each key keeps their entries apart.
	Cache *Cache
	// CacheDir, when non-empty, adds a persistent second cache tier: a
	// disk-backed content-addressed store of serialized analysis
	// artifacts (reports, structured report data, provenance chains)
	// layered under the in-memory cache. Entries are keyed by a
	// canonical structural hash of the parsed program — whitespace and
	// comment edits, and α-renamed duplicates, hit the same entry — and
	// survive process restarts: a warm store answers without running a
	// single analysis pass beyond parsing. Programs served from disk
	// carry rendered artifacts only (Program.Decoded reports this); the
	// SSA graph, interpreter and Optimize need a live analysis. The
	// directory is created if needed; an unusable directory surfaces as
	// an error from every entry point rather than silently analyzing
	// uncached.
	CacheDir string
	// CacheMaxBytes bounds the disk store's total size (<= 0 means
	// store.DefaultMaxBytes, 256 MiB); least-recently-used entries are
	// evicted past the budget, with recency shared across processes.
	CacheMaxBytes int64
	// CacheDirWriteOnly keeps CacheDir populated but never serves from
	// it: every run is a live analysis that still persists its artifact.
	// Set by consumers that need the SSA graph or transform pipeline
	// (so a decoded artifact could not serve them) but want their work
	// to warm the store for readers that can use it.
	CacheDirWriteOnly bool
	// BatchSteps, when positive, is a shared guard budget for each
	// AnalyzeAll/AnalyzeBatch call: every phase step of every source
	// in the batch draws from one pool of this size, on top of the
	// per-source Limits.
	BatchSteps int64

	// Passes names the transform pipeline Optimize runs, in order
	// (normalize, peel, strength, ivsub, dce — see xform.PassNames).
	// Empty means the full pipeline in canonical order. Unknown names
	// surface as an error from Optimize. Analyze ignores this field, and
	// it stays out of the cache fingerprint: analysis results are shared
	// between analyzers whatever their transform pipeline.
	Passes []string
	// MaxRounds caps Optimize's fixed-point iteration over the pipeline
	// (<= 0 means 10); iteration normally stops earlier, at the first
	// round with no rewrites.
	MaxRounds int
	// SkipValidation disables the per-pass translation validation that
	// replays original vs transformed program through the interpreter
	// (ssa.Verify still runs after every pass). Meant for benchmarks.
	SkipValidation bool
}

// Error is the structured failure of one pipeline phase, produced by
// the engine's per-pass containment. Every error analysis returns is
// one of these: input diagnostics (scan/parse) carry a Pos,
// resource-ceiling hits wrap a *guard.LimitError, and contained panics
// — internal faults that would otherwise crash the caller — carry the
// panicking goroutine's Stack.
type Error = engine.Error

// Cache is a concurrency-safe LRU of analysis results, shareable
// across analyzers; see Options.Cache and NewCache.
type Cache = engine.Cache

// NewCache returns a result cache holding up to capacity analyses.
func NewCache(capacity int) *Cache { return engine.NewCache(capacity) }

// Fingerprint identifies the option fields that change analysis
// results, for the content-addressed caches (in-memory, on-disk, and
// the analysis server's fault-poisoning keys). Obs, Metrics, Flight,
// Limits, Jobs, Parallel and the cache fields are excluded: they
// change how the
// pipeline runs (or what it reports about itself), not what it
// computes (Limits are fingerprinted by the engine itself, since a
// ceiling changes which sources fail).
func (o Options) Fingerprint() string {
	return fmt.Sprintf("skipdeps:%t|iv:%s|dep:%s",
		o.SkipDependences, o.IV.Fingerprint(), o.Dependences.Fingerprint())
}

// passes composes the pipeline: the engine frontend, the classifier
// pass, and — unless skipped — the dependence pass. This, together
// with iv.Passes for the classifier-only entry point, is the only
// pipeline composition in the codebase.
func (o Options) passes() []engine.Pass {
	ps := append(engine.Frontend(), iv.ClassifyPass(o.IV))
	if !o.SkipDependences {
		ps = append(ps, depend.Pass(o.Dependences))
	}
	return ps
}

// Analyzer is a reusable analysis pipeline: one engine configuration,
// any number of sources, analyzed one at a time (Analyze), as a
// concurrent batch (AnalyzeAll), optimized (Optimize/OptimizeAll), or
// out of the result cache when one is configured. Analyzers are safe
// for concurrent use.
type Analyzer struct {
	eng *engine.Engine
	// passErr records an unresolvable Options.Passes name; surfaced by
	// the Optimize entry points (Analyze does not need the pipeline).
	passErr error
	// storeErr records a CacheDir that could not be opened; surfaced by
	// every entry point — a caller who asked for persistence should not
	// silently run without it.
	storeErr error
}

// NewAnalyzer builds an analyzer from opts.
func NewAnalyzer(opts Options) *Analyzer {
	names := opts.Passes
	if len(names) == 0 {
		names = xform.PassNames()
	}
	transforms, passErr := xform.Passes(names)
	cfg := engine.Config{
		Passes:         opts.passes(),
		Obs:            opts.Obs,
		Metrics:        opts.Metrics,
		Flight:         opts.Flight,
		Limits:         opts.Limits,
		Jobs:           opts.Jobs,
		Parallel:       opts.Parallel,
		Cache:          opts.Cache,
		CacheEntries:   opts.CacheEntries,
		Fingerprint:    opts.Fingerprint(),
		BatchSteps:     opts.BatchSteps,
		Transforms:     transforms,
		MaxRounds:      opts.MaxRounds,
		SkipValidation: opts.SkipValidation,
	}
	var storeErr error
	if opts.CacheDir != "" {
		disk, err := store.Open(opts.CacheDir, opts.CacheMaxBytes)
		if err != nil {
			storeErr = fmt.Errorf("beyondiv: cache dir: %w", err)
		} else {
			// The differential rename check re-analyzes an α-renamed twin
			// of every program whose artifact is persisted. The twin runs
			// on a bare engine: same passes and ceilings, but no caches,
			// no store (no recursion), no telemetry, and no fault
			// injection — an injected fault belongs to the original run,
			// not to its shadow.
			lim := opts.Limits
			lim.Inject = nil
			bare := engine.New(engine.Config{Passes: opts.passes(), Limits: lim})
			cfg.Store = disk
			cfg.StoreWriteOnly = opts.CacheDirWriteOnly
			cfg.BuildArtifact = func(st *engine.State) ([]byte, error) {
				return buildArtifact(st, bare)
			}
		}
	}
	return &Analyzer{eng: engine.New(cfg), passErr: passErr, storeErr: storeErr}
}

// Analyze parses and analyzes one program.
func (a *Analyzer) Analyze(source string) (*Program, error) {
	if a.storeErr != nil {
		return nil, a.storeErr
	}
	st, err := a.eng.Analyze(source)
	if err != nil {
		return nil, err
	}
	return programOf(st), nil
}

// AnalyzeContext is Analyze under a caller's context: when ctx is
// cancelled or its deadline expires, the pipeline stops cooperatively
// (between passes, and inside step-metered phases via an amortized
// poll) and returns a *Error whose Phase names the pass the run was
// cancelled in and whose cause unwraps to context.Canceled or
// context.DeadlineExceeded. Cache hits are served even under a dead
// context — they cost nothing. This is the entry point a server uses
// to stop burning CPU for clients that timed out or disconnected.
func (a *Analyzer) AnalyzeContext(ctx context.Context, source string) (*Program, error) {
	if a.storeErr != nil {
		return nil, a.storeErr
	}
	st, err := a.eng.AnalyzeContext(ctx, source)
	if err != nil {
		return nil, err
	}
	return programOf(st), nil
}

// BatchResult is one source's outcome in a batch, in input order. Err,
// when non-nil, is the source's own *Error; other sources of the batch
// are unaffected by it.
type BatchResult struct {
	Index   int
	Source  string
	Program *Program
	Err     error
}

// AnalyzeAll analyzes the sources as a batch over the analyzer's
// worker pool (Options.Jobs) and returns one result per source, in
// input order. Results are byte-identical to sequential Analyze calls,
// whatever the worker count; per-worker telemetry merges back into
// Options.Obs when the batch completes.
func (a *Analyzer) AnalyzeAll(sources []string) []BatchResult {
	return a.AnalyzeAllContext(context.Background(), sources)
}

// AnalyzeAllContext is AnalyzeAll under a caller's context: a
// cancelled batch stops scheduling queued sources (they come back with
// batch-attributed cancellation errors instead of running), and
// in-flight sources stop cooperatively with the phase they were
// cancelled in. Every input source still gets exactly one result, in
// input order.
func (a *Analyzer) AnalyzeAllContext(ctx context.Context, sources []string) []BatchResult {
	if a.storeErr != nil {
		out := make([]BatchResult, len(sources))
		for i, src := range sources {
			out[i] = BatchResult{Index: i, Source: src, Err: a.storeErr}
		}
		return out
	}
	items := a.eng.AnalyzeAllContext(ctx, sources)
	out := make([]BatchResult, len(items))
	for i, it := range items {
		out[i] = BatchResult{Index: it.Index, Source: it.Source, Err: it.Err}
		if it.State != nil {
			out[i].Program = programOf(it.State)
		}
	}
	return out
}

// PassStat records one transform pass execution that changed the
// program during Optimize: the pass, its fixed-point round, and its
// rewrite count.
type PassStat = engine.PassStat

// OptimizeResult is the outcome of optimizing one source.
type OptimizeResult struct {
	// Program is the transformed program with every analysis recomputed
	// on it — classifications, dependences, SSA — so reports and Run
	// work on the optimized form.
	Program *Program
	// Original is the program as analyzed, before any transformation.
	// It may be a shared cache hit; Optimize never mutates it.
	Original *Program
	// Stats lists the pass executions that changed the program, in
	// execution order; Rounds and Rewrites aggregate them.
	Stats    []PassStat
	Rounds   int
	Rewrites int
	// Validations counts the interpreter replays that checked the
	// transformed program against the original.
	Validations int
	// ParallelLoops lists the effective labels of loops the parmark pass
	// proved parallel (sorted). Each survived a chunked-vs-sequential
	// execution check; interp.RunASTParallel honors the marks.
	ParallelLoops []string
}

// Optimize analyzes one source (through the cache, when configured) and
// runs the transform pipeline (Options.Passes) over a private clone,
// iterating to a fixed point with re-analysis and — unless
// Options.SkipValidation — interpreter translation validation after
// every mutating pass. The analyzed Program is never mutated, cached or
// not; the returned Program is the transformed clone.
func (a *Analyzer) Optimize(source string) (*OptimizeResult, error) {
	if a.passErr != nil {
		return nil, a.passErr
	}
	if a.storeErr != nil {
		return nil, a.storeErr
	}
	res, err := a.eng.Optimize(source)
	if err != nil {
		return nil, err
	}
	return optimizeResultOf(res), nil
}

// OptimizeContext is Optimize under a caller's context, with
// AnalyzeContext's cancellation contract extended over the transform
// and validation passes.
func (a *Analyzer) OptimizeContext(ctx context.Context, source string) (*OptimizeResult, error) {
	if a.passErr != nil {
		return nil, a.passErr
	}
	if a.storeErr != nil {
		return nil, a.storeErr
	}
	res, err := a.eng.OptimizeContext(ctx, source)
	if err != nil {
		return nil, err
	}
	return optimizeResultOf(res), nil
}

// OptimizeBatchResult is one source's outcome in an OptimizeAll batch.
type OptimizeBatchResult struct {
	Index  int
	Source string
	Result *OptimizeResult
	Err    error
}

// OptimizeAll optimizes the sources as a batch over the analyzer's
// worker pool, with the same ordering, isolation and telemetry
// guarantees as AnalyzeAll.
func (a *Analyzer) OptimizeAll(sources []string) []OptimizeBatchResult {
	out := make([]OptimizeBatchResult, len(sources))
	if err := a.passErr; err != nil || a.storeErr != nil {
		if err == nil {
			err = a.storeErr
		}
		for i, src := range sources {
			out[i] = OptimizeBatchResult{Index: i, Source: src, Err: err}
		}
		return out
	}
	for i, it := range a.eng.OptimizeAll(sources) {
		out[i] = OptimizeBatchResult{Index: it.Index, Source: it.Source, Err: it.Err}
		if it.Result != nil {
			out[i].Result = optimizeResultOf(it.Result)
		}
	}
	return out
}

func optimizeResultOf(res *engine.Optimized) *OptimizeResult {
	return &OptimizeResult{
		Program:       programOf(res.State),
		Original:      programOf(res.Original),
		Stats:         res.Stats,
		Rounds:        res.Rounds,
		Rewrites:      res.Rewrites,
		Validations:   res.Validations,
		ParallelLoops: res.ParallelLoops,
	}
}

// programOf wraps an analyzed engine state as the public Program.
func programOf(st *engine.State) *Program {
	if a := st.Decoded(); a != nil {
		return &Program{art: a}
	}
	return &Program{
		IV:    iv.AnalysisOf(st),
		Deps:  depend.ResultOf(st),
		SSA:   st.SSA,
		Loops: st.Forest,
	}
}

// Analyze parses and analyzes a program.
func Analyze(source string) (*Program, error) {
	return AnalyzeWith(source, Options{})
}

// AnalyzeWith parses and analyzes a program with options.
//
// On hostile or malformed input it never panics and never hangs: every
// phase runs under opts.Limits with panic containment, and any failure
// — syntax error, resource-ceiling hit, or contained internal fault —
// is returned as a *Error identifying the phase.
func AnalyzeWith(source string, opts Options) (*Program, error) {
	return NewAnalyzer(opts).Analyze(source)
}

// AnalyzeBatch analyzes sources concurrently over opts.Jobs workers;
// it is NewAnalyzer(opts).AnalyzeAll(sources) for callers that do not
// need to keep the analyzer (and its cache) across batches.
func AnalyzeBatch(sources []string, opts Options) []BatchResult {
	return NewAnalyzer(opts).AnalyzeAll(sources)
}

// Optimize analyzes and optimizes a program with the default pipeline
// and full translation validation.
func Optimize(source string) (*OptimizeResult, error) {
	return OptimizeWith(source, Options{})
}

// OptimizeWith analyzes and optimizes a program with options; see
// (*Analyzer).Optimize for the pipeline and safety contract.
func OptimizeWith(source string, opts Options) (*OptimizeResult, error) {
	return NewAnalyzer(opts).Optimize(source)
}

// OptimizeBatch optimizes sources concurrently over opts.Jobs workers;
// it is NewAnalyzer(opts).OptimizeAll(sources) for callers that do not
// need to keep the analyzer (and its cache) across batches.
func OptimizeBatch(sources []string, opts Options) []OptimizeBatchResult {
	return NewAnalyzer(opts).OptimizeAll(sources)
}

// ClassificationReport renders every loop's classifications, innermost
// first, in the paper's tuple notation.
func (p *Program) ClassificationReport() string {
	if p.art != nil {
		return p.art.Classification
	}
	return p.IV.Report()
}

// DependenceReport renders the dependences found (empty when analysis
// was skipped).
func (p *Program) DependenceReport() string {
	if p.art != nil {
		return p.art.Dependences
	}
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Report()
}

// ReportData returns the structured per-loop report — what the JSON
// renderers consume — from the live analysis or, byte-identically, the
// decoded artifact.
func (p *Program) ReportData() []iv.LoopReport {
	if p.art != nil {
		var reps []iv.LoopReport
		if json.Unmarshal([]byte(p.art.ReportJSON), &reps) != nil {
			return nil
		}
		return reps
	}
	return p.IV.ReportData()
}

// Explain renders the provenance chain of every classified SSA version
// of the named variable ("j", or a specific version "j3"): which paper
// rule classified it, the strongly connected region it belongs to, and
// the feeding classifications, recursively. Empty when no loop defines
// such a variable.
func (p *Program) Explain(name string) string {
	if p.art != nil {
		text, _ := p.art.Explain(name)
		return text
	}
	return p.IV.ExplainVar(name)
}

// ExplainDep renders the provenance of one dependence edge: the paper
// rule behind the decision procedure, the dependence equation, and both
// subscripts' classification chains. The edge must come from this
// program's Deps.
func (p *Program) ExplainDep(d *depend.Dependence) string {
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Explain(d)
}

// ExplainAllDeps renders ExplainDep for every dependence found, in
// report order.
func (p *Program) ExplainAllDeps() string {
	if p.art != nil {
		return p.art.ExplainDeps
	}
	if p.Deps == nil {
		return ""
	}
	var sb []byte
	for i, d := range p.Deps.Deps {
		if i > 0 {
			sb = append(sb, '\n')
		}
		sb = fmt.Append(sb, p.Deps.Explain(d))
	}
	return string(sb)
}

// Run executes the analyzed program with the given scalar parameters,
// returning final scalar values and the array-write trace. Useful for
// experimenting with the examples.
func (p *Program) Run(params map[string]int64) (*interp.Result, error) {
	if p.SSA == nil {
		return nil, errDecodedRun
	}
	return interp.RunSSA(p.SSA, interp.Config{Params: params})
}

// RunSteps is Run with an explicit execution-step ceiling, for driving
// untrusted programs: execution stops with an error once maxSteps
// instructions have run (0 means the interpreter's default budget).
func (p *Program) RunSteps(params map[string]int64, maxSteps int) (*interp.Result, error) {
	if p.SSA == nil {
		return nil, errDecodedRun
	}
	return interp.RunSSA(p.SSA, interp.Config{Params: params, MaxSteps: maxSteps})
}

// errDecodedRun rejects execution of a program served from the
// persistent cache: artifacts carry rendered reports, not the SSA graph
// the interpreter needs.
var errDecodedRun = errors.New("beyondiv: program was served from the persistent cache without live SSA; analyze with CacheDirWriteOnly (or no CacheDir) to execute it")
