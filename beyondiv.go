// Package beyondiv is a Go implementation of "Beyond Induction
// Variables" (Michael Wolfe, PLDI 1992): a unified, single-pass
// classification of every integer scalar in every loop of a program —
// linear, polynomial and geometric induction variables, wrap-around,
// periodic and monotonic variables — computed by running Tarjan's
// strongly-connected-region algorithm over the Static Single Assignment
// graph, plus the data dependence testing the classification enables.
//
// The package is a facade over the full pipeline:
//
//	source → scan/parse → CFG → SSA (Cytron et al.) → loop nest →
//	constant propagation (Wegman–Zadeck) → IV classification →
//	dependence testing
//
// Quick start:
//
//	prog, err := beyondiv.Analyze(`
//	    j = 0
//	    L1: for i = 1 to n {
//	        j = j + i
//	        a[j] = a[j - 1]
//	    }
//	`)
//	fmt.Print(prog.ClassificationReport())
//	fmt.Print(prog.DependenceReport())
//
// Programs are written in a small loop language with `for v = lo to hi
// [by s]`, `loop { ... exit ... }`, `while`, `if`/`else`, integer
// scalars, and one-dimensional arrays `a[expr]`; see internal/parse for
// the grammar.
package beyondiv

import (
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/depend"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
)

// Program is a fully analyzed program.
type Program struct {
	// IV is the induction-variable classification (the paper's core
	// algorithm); see its ClassOf, TripCount, IterFormOf and
	// NestedString methods.
	IV *iv.Analysis
	// Deps is the dependence analysis of §6.
	Deps *depend.Result
	// SSA exposes the underlying SSA-form function.
	SSA *ssa.Info
	// Loops is the loop nest.
	Loops *loops.Forest
}

// Options configure Analyze.
type Options struct {
	// SkipDependences skips the §6 dependence analysis.
	SkipDependences bool
	// Dependences forwards options to the dependence tester.
	Dependences depend.Options
	// IV forwards the classifier's ablation switches (closed forms,
	// exit values); the zero value enables everything.
	IV iv.Options
}

// Analyze parses and analyzes a program.
func Analyze(source string) (*Program, error) {
	return AnalyzeWith(source, Options{})
}

// AnalyzeWith parses and analyzes a program with options.
func AnalyzeWith(source string, opts Options) (*Program, error) {
	file, err := parse.File(source)
	if err != nil {
		return nil, err
	}
	res := cfgbuild.Build(file)
	info := ssa.Build(res.Func)
	if errs := ssa.Verify(info); len(errs) != 0 {
		// Internal invariant; surface the first violation.
		return nil, errs[0]
	}
	forest := loops.Analyze(res.Func, info.Dom)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)
	consts := sccp.Run(info)
	analysis := iv.AnalyzeWithOptions(info, forest, consts, opts.IV)

	p := &Program{IV: analysis, SSA: info, Loops: forest}
	if !opts.SkipDependences {
		p.Deps = depend.Analyze(analysis, opts.Dependences)
	}
	return p, nil
}

// ClassificationReport renders every loop's classifications, innermost
// first, in the paper's tuple notation.
func (p *Program) ClassificationReport() string { return p.IV.Report() }

// DependenceReport renders the dependences found (empty when analysis
// was skipped).
func (p *Program) DependenceReport() string {
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Report()
}

// Run executes the analyzed program with the given scalar parameters,
// returning final scalar values and the array-write trace. Useful for
// experimenting with the examples.
func (p *Program) Run(params map[string]int64) (*interp.Result, error) {
	return interp.RunSSA(p.SSA, interp.Config{Params: params})
}
