// Package beyondiv is a Go implementation of "Beyond Induction
// Variables" (Michael Wolfe, PLDI 1992): a unified, single-pass
// classification of every integer scalar in every loop of a program —
// linear, polynomial and geometric induction variables, wrap-around,
// periodic and monotonic variables — computed by running Tarjan's
// strongly-connected-region algorithm over the Static Single Assignment
// graph, plus the data dependence testing the classification enables.
//
// The package is a facade over the full pipeline:
//
//	source → scan/parse → CFG → SSA (Cytron et al.) → loop nest →
//	constant propagation (Wegman–Zadeck) → IV classification →
//	dependence testing
//
// Quick start:
//
//	prog, err := beyondiv.Analyze(`
//	    j = 0
//	    L1: for i = 1 to n {
//	        j = j + i
//	        a[j] = a[j - 1]
//	    }
//	`)
//	fmt.Print(prog.ClassificationReport())
//	fmt.Print(prog.DependenceReport())
//
// Programs are written in a small loop language with `for v = lo to hi
// [by s]`, `loop { ... exit ... }`, `while`, `if`/`else`, integer
// scalars, and one-dimensional arrays `a[expr]`; see internal/parse for
// the grammar.
package beyondiv

import (
	"errors"
	"fmt"
	"runtime/debug"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/depend"
	"beyondiv/internal/guard"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
	"beyondiv/internal/token"
)

// Program is a fully analyzed program.
type Program struct {
	// IV is the induction-variable classification (the paper's core
	// algorithm); see its ClassOf, TripCount, IterFormOf and
	// NestedString methods.
	IV *iv.Analysis
	// Deps is the dependence analysis of §6.
	Deps *depend.Result
	// SSA exposes the underlying SSA-form function.
	SSA *ssa.Info
	// Loops is the loop nest.
	Loops *loops.Forest
}

// Options configure Analyze.
type Options struct {
	// SkipDependences skips the §6 dependence analysis.
	SkipDependences bool
	// Dependences forwards options to the dependence tester.
	Dependences depend.Options
	// IV forwards the classifier's ablation switches (closed forms,
	// exit values); the zero value enables everything.
	IV iv.Options
	// Obs, when non-nil, records phase spans, counters and provenance
	// events across every pipeline stage (see internal/obs). Nil keeps
	// telemetry off at no cost.
	Obs *obs.Recorder
	// Limits bounds the resources the analysis may consume on hostile
	// input (source size, nesting depth, IR size, loop depth, per-phase
	// work). Zero fields take guard.Default ceilings; set a field to
	// guard.Unlimited to disable one check explicitly. A ceiling hit
	// surfaces as a *Error, never as a hang or a crash.
	Limits guard.Limits
}

// Error is the structured failure of one pipeline phase. Every error
// AnalyzeWith returns is one of these: input diagnostics (scan/parse)
// carry a Pos, resource-ceiling hits wrap a *guard.LimitError, and
// contained panics — internal faults that would otherwise crash the
// caller — carry the panicking goroutine's Stack.
type Error struct {
	Phase string    // pipeline phase that failed: "scan", "parse", ..., "depend"
	Pos   token.Pos // source position, when the failure is an input diagnostic
	Err   error     // underlying cause
	Stack []byte    // stack trace of a contained panic; nil otherwise
}

// Error renders "phase: cause"; input diagnostics keep their
// "line:col: message" form inside the cause.
func (e *Error) Error() string { return fmt.Sprintf("%s: %v", e.Phase, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// runPhase runs one pipeline phase with fault containment: any panic —
// a guard ceiling hit, an injected test fault, or a genuine bug — is
// converted into a *Error instead of escaping the facade, and an error
// return is wrapped the same way. Telemetry spans opened inside the
// phase have deferred End calls, which run during panic unwinding, so
// a contained failure still leaves spans and counters recorded up to
// the point of the fault.
func runPhase(lim guard.Limits, phase string, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = contained(phase, p)
		}
	}()
	// The parse phase fires its own finer-grained hooks ("scan", then
	// "parse") inside parse.FileGuarded.
	if phase != "parse" {
		lim.Inject.Fire(phase)
	}
	if ferr := fn(); ferr != nil {
		return wrapError(phase, ferr)
	}
	return nil
}

// contained converts a recovered panic value into a *Error. Typed
// guard payloads carry their own phase attribution (a limit hit deep
// in a shared helper may belong to an earlier-named phase than the one
// whose wrapper caught it).
func contained(phase string, p any) *Error {
	switch v := p.(type) {
	case *guard.LimitError:
		if v.Phase != "" {
			phase = v.Phase
		}
		return &Error{Phase: phase, Err: v}
	case *guard.Fault:
		if v.Phase != "" {
			phase = v.Phase
		}
		return &Error{Phase: phase, Err: v, Stack: debug.Stack()}
	case error:
		return &Error{Phase: phase, Err: v, Stack: debug.Stack()}
	default:
		return &Error{Phase: phase, Err: fmt.Errorf("panic: %v", v), Stack: debug.Stack()}
	}
}

// wrapError wraps a phase's error return, lifting structured details:
// the phase a *guard.LimitError names wins over the wrapper's label,
// and the first positioned diagnostic contributes Pos.
func wrapError(phase string, err error) *Error {
	var le *guard.LimitError
	if errors.As(err, &le) && le.Phase != "" {
		phase = le.Phase
	}
	e := &Error{Phase: phase, Err: err}
	var pe *token.PosError
	if errors.As(err, &pe) {
		e.Pos = pe.Pos
	}
	return e
}

// Analyze parses and analyzes a program.
func Analyze(source string) (*Program, error) {
	return AnalyzeWith(source, Options{})
}

// AnalyzeWith parses and analyzes a program with options.
//
// On hostile or malformed input it never panics and never hangs: every
// phase runs under opts.Limits with panic containment, and any failure
// — syntax error, resource-ceiling hit, or contained internal fault —
// is returned as a *Error identifying the phase.
func AnalyzeWith(source string, opts Options) (*Program, error) {
	rec := opts.Obs
	lim := opts.Limits.Normalize()
	span := rec.Phase("analyze")
	defer span.End()

	var file *ast.File
	if err := runPhase(lim, "parse", func() (perr error) {
		file, perr = parse.FileGuarded(source, rec, lim)
		return perr
	}); err != nil {
		return nil, err
	}

	var res *cfgbuild.Result
	if err := runPhase(lim, "cfgbuild", func() error {
		res = cfgbuild.BuildGuarded(file, rec, lim)
		return nil
	}); err != nil {
		return nil, err
	}

	var info *ssa.Info
	if err := runPhase(lim, "ssa", func() error {
		info = ssa.BuildGuarded(res.Func, rec, lim)
		if errs := ssa.Verify(info); len(errs) != 0 {
			// Internal invariant; surface every violation.
			return errors.Join(errs...)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var forest *loops.Forest
	if err := runPhase(lim, "loops", func() error {
		forest = loops.AnalyzeWithObs(res.Func, info.Dom, rec)
		labels := map[*ir.Block]string{}
		for _, li := range res.Loops {
			labels[li.Header] = li.Label
		}
		forest.AttachLabels(labels)
		return nil
	}); err != nil {
		return nil, err
	}

	var consts *sccp.Result
	if err := runPhase(lim, "sccp", func() error {
		consts = sccp.RunGuarded(info, rec, lim)
		return nil
	}); err != nil {
		return nil, err
	}

	var analysis *iv.Analysis
	if err := runPhase(lim, "iv", func() error {
		ivOpts := opts.IV
		ivOpts.Obs = rec
		ivOpts.Limits = lim
		analysis = iv.AnalyzeWithOptions(info, forest, consts, ivOpts)
		return nil
	}); err != nil {
		return nil, err
	}

	p := &Program{IV: analysis, SSA: info, Loops: forest}
	if !opts.SkipDependences {
		if err := runPhase(lim, "depend", func() error {
			depOpts := opts.Dependences
			depOpts.Obs = rec
			depOpts.Limits = lim
			p.Deps = depend.Analyze(analysis, depOpts)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ClassificationReport renders every loop's classifications, innermost
// first, in the paper's tuple notation.
func (p *Program) ClassificationReport() string { return p.IV.Report() }

// DependenceReport renders the dependences found (empty when analysis
// was skipped).
func (p *Program) DependenceReport() string {
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Report()
}

// Explain renders the provenance chain of every classified SSA version
// of the named variable ("j", or a specific version "j3"): which paper
// rule classified it, the strongly connected region it belongs to, and
// the feeding classifications, recursively. Empty when no loop defines
// such a variable.
func (p *Program) Explain(name string) string { return p.IV.ExplainVar(name) }

// ExplainDep renders the provenance of one dependence edge: the paper
// rule behind the decision procedure, the dependence equation, and both
// subscripts' classification chains. The edge must come from this
// program's Deps.
func (p *Program) ExplainDep(d *depend.Dependence) string {
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Explain(d)
}

// ExplainAllDeps renders ExplainDep for every dependence found, in
// report order.
func (p *Program) ExplainAllDeps() string {
	if p.Deps == nil {
		return ""
	}
	var sb []byte
	for i, d := range p.Deps.Deps {
		if i > 0 {
			sb = append(sb, '\n')
		}
		sb = fmt.Append(sb, p.Deps.Explain(d))
	}
	return string(sb)
}

// Run executes the analyzed program with the given scalar parameters,
// returning final scalar values and the array-write trace. Useful for
// experimenting with the examples.
func (p *Program) Run(params map[string]int64) (*interp.Result, error) {
	return interp.RunSSA(p.SSA, interp.Config{Params: params})
}

// RunSteps is Run with an explicit execution-step ceiling, for driving
// untrusted programs: execution stops with an error once maxSteps
// instructions have run (0 means the interpreter's default budget).
func (p *Program) RunSteps(params map[string]int64, maxSteps int) (*interp.Result, error) {
	return interp.RunSSA(p.SSA, interp.Config{Params: params, MaxSteps: maxSteps})
}
