// Package beyondiv is a Go implementation of "Beyond Induction
// Variables" (Michael Wolfe, PLDI 1992): a unified, single-pass
// classification of every integer scalar in every loop of a program —
// linear, polynomial and geometric induction variables, wrap-around,
// periodic and monotonic variables — computed by running Tarjan's
// strongly-connected-region algorithm over the Static Single Assignment
// graph, plus the data dependence testing the classification enables.
//
// The package is a facade over the full pipeline:
//
//	source → scan/parse → CFG → SSA (Cytron et al.) → loop nest →
//	constant propagation (Wegman–Zadeck) → IV classification →
//	dependence testing
//
// Quick start:
//
//	prog, err := beyondiv.Analyze(`
//	    j = 0
//	    L1: for i = 1 to n {
//	        j = j + i
//	        a[j] = a[j - 1]
//	    }
//	`)
//	fmt.Print(prog.ClassificationReport())
//	fmt.Print(prog.DependenceReport())
//
// Programs are written in a small loop language with `for v = lo to hi
// [by s]`, `loop { ... exit ... }`, `while`, `if`/`else`, integer
// scalars, and one-dimensional arrays `a[expr]`; see internal/parse for
// the grammar.
package beyondiv

import (
	"errors"
	"fmt"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/depend"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
)

// Program is a fully analyzed program.
type Program struct {
	// IV is the induction-variable classification (the paper's core
	// algorithm); see its ClassOf, TripCount, IterFormOf and
	// NestedString methods.
	IV *iv.Analysis
	// Deps is the dependence analysis of §6.
	Deps *depend.Result
	// SSA exposes the underlying SSA-form function.
	SSA *ssa.Info
	// Loops is the loop nest.
	Loops *loops.Forest
}

// Options configure Analyze.
type Options struct {
	// SkipDependences skips the §6 dependence analysis.
	SkipDependences bool
	// Dependences forwards options to the dependence tester.
	Dependences depend.Options
	// IV forwards the classifier's ablation switches (closed forms,
	// exit values); the zero value enables everything.
	IV iv.Options
	// Obs, when non-nil, records phase spans, counters and provenance
	// events across every pipeline stage (see internal/obs). Nil keeps
	// telemetry off at no cost.
	Obs *obs.Recorder
}

// Analyze parses and analyzes a program.
func Analyze(source string) (*Program, error) {
	return AnalyzeWith(source, Options{})
}

// AnalyzeWith parses and analyzes a program with options.
func AnalyzeWith(source string, opts Options) (*Program, error) {
	rec := opts.Obs
	span := rec.Phase("analyze")
	defer span.End()
	file, err := parse.FileWithObs(source, rec)
	if err != nil {
		return nil, err
	}
	res := cfgbuild.BuildWithObs(file, rec)
	info := ssa.BuildWithObs(res.Func, rec)
	if errs := ssa.Verify(info); len(errs) != 0 {
		// Internal invariant; surface every violation.
		return nil, errors.Join(errs...)
	}
	forest := loops.AnalyzeWithObs(res.Func, info.Dom, rec)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)
	consts := sccp.RunWithObs(info, rec)
	ivOpts := opts.IV
	ivOpts.Obs = rec
	analysis := iv.AnalyzeWithOptions(info, forest, consts, ivOpts)

	p := &Program{IV: analysis, SSA: info, Loops: forest}
	if !opts.SkipDependences {
		depOpts := opts.Dependences
		depOpts.Obs = rec
		p.Deps = depend.Analyze(analysis, depOpts)
	}
	return p, nil
}

// ClassificationReport renders every loop's classifications, innermost
// first, in the paper's tuple notation.
func (p *Program) ClassificationReport() string { return p.IV.Report() }

// DependenceReport renders the dependences found (empty when analysis
// was skipped).
func (p *Program) DependenceReport() string {
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Report()
}

// Explain renders the provenance chain of every classified SSA version
// of the named variable ("j", or a specific version "j3"): which paper
// rule classified it, the strongly connected region it belongs to, and
// the feeding classifications, recursively. Empty when no loop defines
// such a variable.
func (p *Program) Explain(name string) string { return p.IV.ExplainVar(name) }

// ExplainDep renders the provenance of one dependence edge: the paper
// rule behind the decision procedure, the dependence equation, and both
// subscripts' classification chains. The edge must come from this
// program's Deps.
func (p *Program) ExplainDep(d *depend.Dependence) string {
	if p.Deps == nil {
		return ""
	}
	return p.Deps.Explain(d)
}

// ExplainAllDeps renders ExplainDep for every dependence found, in
// report order.
func (p *Program) ExplainAllDeps() string {
	if p.Deps == nil {
		return ""
	}
	var sb []byte
	for i, d := range p.Deps.Deps {
		if i > 0 {
			sb = append(sb, '\n')
		}
		sb = fmt.Append(sb, p.Deps.Explain(d))
	}
	return string(sb)
}

// Run executes the analyzed program with the given scalar parameters,
// returning final scalar values and the array-write trace. Useful for
// experimenting with the examples.
func (p *Program) Run(params map[string]int64) (*interp.Result, error) {
	return interp.RunSSA(p.SSA, interp.Config{Params: params})
}
