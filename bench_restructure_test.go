// Restructuring benchmarks: what the analysis→restructure→parallelize
// chain buys at execution time. Two workloads: the relaxation stencil
// (inner loop provably parallel as written) and the column stencil
// (parallel only after interchange moves the dependence-free loop
// outward). `make bench-restructure` writes the headline numbers to
// BENCH_restructure.json via TestRestructureBenchArtifact; the speedup
// assertions only bind on hosts with 4+ CPUs — a single-CPU container
// cannot beat sequential by construction, so there they are skipped
// (recorded honestly in the artifact), never faked.
package beyondiv

import (
	"fmt"
	"os"
	"runtime"
	"slices"
	"testing"

	"beyondiv/internal/interp"
	"beyondiv/internal/parse"
)

// benchRelaxation scales examples/relaxation: sweeps ping-pong between
// plane rows, the inner stencil loop carries nothing and parallelizes.
func benchRelaxation(sweeps, width int) string {
	return fmt.Sprintf(`
cur = 1
old = 2
L1: for sweep = 1 to %d {
    L2: for i = 1 to %d {
        plane[cur * %d + i] = plane[old * %d + i] + i
    }
    t = cur
    cur = old
    old = t
}
`, sweeps, width, width+1, width+1)
}

// benchStencil is the column stencil carrying its only dependence on
// the outer loop, plus the same nest after the interchange the pipeline
// performs (TestInterchangePromotesInnerParallelLoop asserts the pass
// makes exactly this move): the dependence-free j loop outermost and
// chunkable. Sizes must keep (2·rows−1)·(2·cols−1) under the exact
// dependence test's enumeration cap (depend.Options.MaxExact, 1<<16) or
// the distance degrades to an inexact direction vector and interchange
// conservatively refuses; the row stride stays well above the column
// extent for the same reason.
func benchStencil(rows, cols int) (orig, swapped string) {
	stride := 8 * cols
	orig = fmt.Sprintf(`
L1: for i = 0 to %d {
    L2: for j = 0 to %d {
        a[i * %d + j + %d] = a[i * %d + j] + j
    }
}
`, rows-1, cols-1, stride, stride, stride)
	swapped = fmt.Sprintf(`
L2: for j = 0 to %d {
    L1: for i = 0 to %d {
        a[i * %d + j + %d] = a[i * %d + j] + j
    }
}
`, cols-1, rows-1, stride, stride, stride)
	return orig, swapped
}

func TestRestructureBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}

	relaxSrc := benchRelaxation(16, 2048)
	stencilOrig, stencilSwapped := benchStencil(64, 256)

	// The pipeline must actually prove the parallelism the execution
	// side exploits — marks are never assumed.
	relaxOpt, err := Optimize(relaxSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(relaxOpt.ParallelLoops, "L2") {
		t.Fatalf("relaxation inner loop not proven parallel: %v", relaxOpt.ParallelLoops)
	}
	stencilOpt, err := Optimize(stencilOrig)
	if err != nil {
		t.Fatal(err)
	}
	if passRewrites(stencilOpt, "interchange") == 0 ||
		!slices.Contains(stencilOpt.ParallelLoops, "L2") {
		t.Fatalf("stencil not interchanged+marked (interchange=%d, parallel=%v)",
			passRewrites(stencilOpt, "interchange"), stencilOpt.ParallelLoops)
	}

	cfg := interp.Config{MaxSteps: 50_000_000}
	run := func(src string, marks map[string]bool, workers int) testing.BenchmarkResult {
		file, err := parse.File(src)
		if err != nil {
			t.Fatal(err)
		}
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if marks == nil {
					_, err = interp.RunAST(file, cfg)
				} else {
					_, err = interp.RunASTParallel(file, cfg, marks, workers)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	l2 := map[string]bool{"L2": true}
	relaxSeq := run(relaxSrc, nil, 0)
	relaxPar := run(relaxSrc, l2, 4)
	relaxSpeedup := ratio(relaxSeq.NsPerOp(), relaxPar.NsPerOp())

	// The stencil comparison is the full restructuring story: the
	// original nest executed sequentially vs the interchanged nest with
	// its outer loop chunked — the program the pipeline hands back.
	stencilSeq := run(stencilOrig, nil, 0)
	stencilPar := run(stencilSwapped, l2, 4)
	stencilSpeedup := ratio(stencilSeq.NsPerOp(), stencilPar.NsPerOp())

	report := map[string]any{
		"gomaxprocs":              runtime.GOMAXPROCS(0),
		"num_cpu":                 runtime.NumCPU(),
		"relax_seq_ns_per_op":     relaxSeq.NsPerOp(),
		"relax_par4_ns_per_op":    relaxPar.NsPerOp(),
		"relax_par4_speedup":      relaxSpeedup,
		"stencil_seq_ns_per_op":   stencilSeq.NsPerOp(),
		"stencil_par4_ns_per_op":  stencilPar.NsPerOp(),
		"stencil_par4_speedup":    stencilSpeedup,
		"relax_parallel_loops":    relaxOpt.ParallelLoops,
		"stencil_parallel_loops":  stencilOpt.ParallelLoops,
		"stencil_interchanged":    passRewrites(stencilOpt, "interchange"),
		"speedup_assertion_bound": runtime.NumCPU() >= 4,
	}
	writeBenchJSON(t, path, report)
	t.Logf("relaxation: %d ns seq, %d ns par4 (%.2fx); stencil: %d ns orig, %d ns restructured (%.2fx)",
		relaxSeq.NsPerOp(), relaxPar.NsPerOp(), relaxSpeedup,
		stencilSeq.NsPerOp(), stencilPar.NsPerOp(), stencilSpeedup)

	if runtime.NumCPU() < 4 {
		t.Skipf("speedup assertions need 4+ CPUs, have %d (artifact written honestly)", runtime.NumCPU())
	}
	// The merge replays every store sequentially, so Amdahl caps the
	// chunked speedup well below the worker count; 1.3x is the floor a
	// 4-CPU host must clear on these iteration counts.
	if relaxSpeedup < 1.3 {
		t.Errorf("relaxation parallel speedup %.2fx < 1.3x on a %d-CPU host", relaxSpeedup, runtime.NumCPU())
	}
	if stencilSpeedup < 1.3 {
		t.Errorf("restructured stencil speedup %.2fx < 1.3x on a %d-CPU host", stencilSpeedup, runtime.NumCPU())
	}
}
