// Observability cost and end-to-end coverage: what the process-level
// metrics tier costs when on, that it costs nothing when off, and
// that the full stack — engine instrumentation, registry, flight
// recorder, debug HTTP server — works wired together the way the
// commands wire it. `make bench` writes the overhead numbers and a
// registry snapshot to BENCH_obs.json via TestObsBenchArtifact; CI's
// bench-smoke job runs the same test as a <5% overhead gate.
package beyondiv

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"slices"
	"strings"
	"testing"
	"time"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs/debugserv"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/paper"
)

// analyzeWindow measures the process CPU time of iters full-pipeline
// analyses of the corpus through one analyzer configured with opts.
// Three choices squeeze the noise out of a window so a few percent of
// instrumentation cost is resolvable: the iteration count is fixed
// (unlike testing.Benchmark's adaptive b.N) so an off window and an
// on window do byte-identical work; CPU time rather than wall clock
// keeps a shared box's noisy neighbors out of the measurement; and
// the GC is paused for the window (after a fresh collection) because
// the per-window GC cycle count is quantized — a ±1-cycle difference
// would swamp the signal, and the instrumentation allocates nothing,
// so pausing is fair to both sides.
func analyzeWindow(t *testing.T, opts Options, iters int) time.Duration {
	srcs := benchCorpus(8)
	an := NewAnalyzer(opts)
	old := debug.SetGCPercent(-1)
	runtime.GC()
	start := processCPUTime()
	for i := 0; i < iters; i++ {
		for _, src := range srcs {
			if _, err := an.Analyze(src); err != nil {
				t.Fatal(err)
			}
		}
	}
	d := processCPUTime() - start
	debug.SetGCPercent(old)
	return d
}

// analyzeAllocs reports mallocs per corpus analysis for opts, via the
// runtime's exact allocation counter.
func analyzeAllocs(t *testing.T, opts Options) int64 {
	srcs := benchCorpus(8)
	an := NewAnalyzer(opts)
	for _, src := range srcs { // warm pools and lazily-built tables
		if _, err := an.Analyze(src); err != nil {
			t.Fatal(err)
		}
	}
	const n = 50
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		for _, src := range srcs {
			if _, err := an.Analyze(src); err != nil {
				t.Fatal(err)
			}
		}
	}
	runtime.ReadMemStats(&m1)
	return int64(m1.Mallocs-m0.Mallocs) / n
}

// instrSequenceNS microbenchmarks the exact per-run instrumentation
// sequence the engine executes with metrics and flight on: one wall
// clock read, one monotonic read per pass boundary plus the pre-loop
// mark, a histogram observation per pass plus the whole-run one (each
// behind the same name-to-handle map lookup instr.pass does), and one
// flight-recorder entry. Measuring the small quantity directly is
// what makes the overhead gate resolvable: reps are cheap enough for
// hundreds of thousands of iterations, so this number is stable to a
// few percent even on a noisy shared box, where an end-to-end off/on
// subtraction of two ~300µs measurements is not.
func instrSequenceNS(t *testing.T, passNames []string, source string) float64 {
	reg := metrics.NewRegistry()
	fl := metrics.NewFlight(64, 16)
	phase := map[string]*metrics.Histogram{}
	for _, n := range append([]string{"analyze"}, passNames...) {
		phase[n] = reg.Hist("phase." + n)
	}
	run := func() {
		start := time.Now()
		mark := time.Since(start)
		for _, p := range passNames {
			d := time.Since(start)
			if h, ok := phase[p]; ok {
				h.Observe((d - mark).Nanoseconds())
			}
			mark = d
		}
		if h, ok := phase["analyze"]; ok {
			h.Observe(mark.Nanoseconds())
		}
		fl.Record(metrics.Run{Start: start, DurUS: mark.Microseconds(), Source: source, Bytes: len(source)})
	}
	const reps = 200_000
	for i := 0; i < reps/10; i++ { // warm
		run()
	}
	best := time.Duration(math.MaxInt64)
	for trial := 0; trial < 5; trial++ {
		runtime.GC()
		start := processCPUTime()
		for i := 0; i < reps; i++ {
			run()
		}
		if d := processCPUTime() - start; d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / reps
}

// TestObsBenchArtifact measures the metrics tier's overhead and gates
// it at 5%. The per-run instrumentation cost is microbenchmarked
// directly (instrSequenceNS) and divided by the median baseline
// analysis time from fixed-work windows — measuring the ~1µs quantity
// head-on instead of subtracting two noisy end-to-end timings, so the
// gate resolves single percents on shared CI boxes. An instrumented
// end-to-end window still runs to feed the registry snapshot in the
// artifact and to sanity-check the wiring. With BENCH_JSON set it
// writes BENCH_obs.json: the overhead ratio plus a snapshot of what
// the instrumented run recorded (per-phase p50/p99, counters), so the
// artifact doubles as a fixture of the registry's shape. Skipped
// unless BENCH_JSON or OBS_GATE is set (CI's bench-smoke job sets
// OBS_GATE=1).
func TestObsBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" && os.Getenv("OBS_GATE") == "" {
		t.Skip("set BENCH_JSON=<path> or OBS_GATE=1 to measure observability overhead")
	}

	reg := metrics.NewRegistry()
	fl := metrics.NewFlight(64, 16)
	onOpts := Options{Metrics: reg, Flight: fl}

	// Baseline: median uninstrumented per-analysis time over fixed-work
	// windows, interleaved with instrumented windows that both feed the
	// artifact's registry snapshot and keep the two sides symmetric.
	const rounds, iters = 7, 100
	analyzeWindow(t, Options{}, iters) // warm both configurations once
	analyzeWindow(t, onOpts, iters)
	var offs, ons []time.Duration
	for i := 0; i < rounds; i++ {
		offs = append(offs, analyzeWindow(t, Options{}, iters))
		ons = append(ons, analyzeWindow(t, onOpts, iters))
	}
	slices.Sort(offs)
	slices.Sort(ons)
	perRun := float64(offs[len(offs)/2].Nanoseconds()) / (iters * 8) // 8 corpus programs per iter
	offNS := offs[len(offs)/2].Nanoseconds() / iters
	onNS := ons[len(ons)/2].Nanoseconds() / iters

	passNames := []string{"parse", "cfgbuild", "ssa", "loops", "sccp", "iv", "depend"}
	instrNS := instrSequenceNS(t, passNames, benchCorpus(1)[0])
	overhead := 1 + instrNS/perRun
	t.Logf("baseline %.0f ns/analysis, instrumentation %.0f ns/analysis: overhead %.3fx (e2e off %d on %d ns/op)",
		perRun, instrNS, overhead, offNS, onNS)

	if path != "" {
		snap := reg.Snapshot()
		phases := map[string]map[string]int64{}
		for name, h := range snap.Hists {
			if strings.HasPrefix(name, "phase.") && !strings.HasSuffix(name, ".allocs") {
				phases[name] = map[string]int64{"count": h.Count, "p50": h.P50, "p99": h.P99}
			}
		}
		writeBenchJSON(t, path, map[string]any{
			"gomaxprocs":               runtime.GOMAXPROCS(0),
			"num_cpu":                  runtime.NumCPU(),
			"metrics_off_ns_per_op":    offNS,
			"metrics_on_ns_per_op":     onNS,
			"instr_ns_per_analysis":    instrNS,
			"baseline_ns_per_analysis": perRun,
			"overhead_ratio":           overhead,
			"metrics_off_allocs":       analyzeAllocs(t, Options{}),
			"metrics_on_allocs":        analyzeAllocs(t, onOpts),
			"registry_counters":        snap.Counters,
			"registry_phase_latencies": phases,
		})
	}

	if overhead > 1.05 {
		t.Errorf("metrics-on overhead %.3fx exceeds the 5%% budget (instrumentation %.0f ns on a %.0f ns analysis)",
			overhead, instrNS, perRun)
	}
}

// TestDebugServEndToEnd wires the stack exactly like a command with
// -debug-addr: a cached analyzer feeding a registry and flight
// recorder, a batch over the paper corpus plus one fault-injected
// run, and the debug server scraped over real HTTP. /metrics must
// show per-phase percentiles and cache counters in both formats, and
// /lastruns must contain the fault run with its phase and stack.
func TestDebugServEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	fl := metrics.NewFlight(64, 16)
	opts := Options{Metrics: reg, Flight: fl, CacheEntries: 64, Jobs: 2}

	var srcs []string
	for _, p := range paper.Corpus {
		srcs = append(srcs, p.Source)
	}
	an := NewAnalyzer(opts)
	for _, r := range an.AnalyzeAll(srcs) {
		if r.Err != nil {
			t.Fatalf("%d: %v", r.Index, r.Err)
		}
	}
	for _, r := range an.AnalyzeAll(srcs) { // all cache hits
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	fopts := opts
	fopts.CacheEntries = 0
	fopts.Limits.Inject = guard.PanicIn("iv")
	if _, err := NewAnalyzer(fopts).Analyze(srcs[0]); err == nil {
		t.Fatal("fault injection did not fail the run")
	}

	srv, err := debugserv.Serve("127.0.0.1:0", reg, fl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"biv_phase_parse_p50", "biv_phase_iv_p99", "biv_phase_analyze_count",
		"biv_engine_cache_hit", "biv_engine_cache_miss", "biv_engine_fault_iv 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics?format=json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["engine.cache.hit"] < int64(len(srcs)) {
		t.Errorf("cache hits = %d, want >= %d", snap.Counters["engine.cache.hit"], len(srcs))
	}
	for _, phase := range []string{"parse", "ssa", "iv", "depend", "analyze"} {
		h := snap.Hists["phase."+phase]
		if h.Count == 0 || h.P99 < h.P50 || h.P50 <= 0 {
			t.Errorf("phase.%s histogram: count=%d p50=%d p99=%d", phase, h.Count, h.P50, h.P99)
		}
	}

	var runs struct {
		Recent []metrics.Run `json:"recent"`
		Failed []metrics.Run `json:"failed"`
	}
	if err := json.Unmarshal([]byte(get("/lastruns")), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Failed) != 1 {
		t.Fatalf("failed ring has %d runs, want 1", len(runs.Failed))
	}
	f := runs.Failed[0]
	if !f.Fault || f.Phase != "iv" || f.Stack == "" {
		t.Errorf("fault run = phase=%q fault=%v stack=%d bytes", f.Phase, f.Fault, len(f.Stack))
	}
	cached := 0
	for _, r := range runs.Recent {
		if r.Cached {
			cached++
		}
	}
	if cached < len(srcs) {
		t.Errorf("flight shows %d cached runs, want >= %d", cached, len(srcs))
	}
}
