// Facade-level tests of the Optimize pipeline: the cache-mutation
// regression (optimizing a cache hit twice leaves the cached analysis
// byte-identical), determinism of the transformed output, and the
// corpus-wide differential sweep — every corpus and generated program
// through several pipeline permutations with translation validation on.
package beyondiv

import (
	"strings"
	"testing"

	"beyondiv/internal/iv"
	"beyondiv/internal/paper"
	"beyondiv/internal/progen"
	"beyondiv/internal/ssa"
	"beyondiv/internal/xform"
)

// optSrc has work for every default pass: a non-normal loop bound, a
// wrap-around scalar (m), a strength-reduction candidate (3*i), and the
// dead values the rewrites leave behind.
const optSrc = `
j = 0
m = 100
L1: for i = 1 to n {
	k = 3 * i
	a[k] = j + m
	m = i
	j = j + i
}
`

// TestOptimizeCachedProgramImmutable is the Issue 5 regression: seed
// the cache, optimize the same source twice, and require the cached
// analysis to come back byte-identical — clone-on-transform means a
// cache hit is never mutated, no matter how many pipelines run over it.
func TestOptimizeCachedProgramImmutable(t *testing.T) {
	an := NewAnalyzer(Options{CacheEntries: 4})
	cached, err := an.Analyze(optSrc)
	if err != nil {
		t.Fatal(err)
	}
	funcBefore := cached.SSA.Func.String()
	reportBefore := cached.ClassificationReport()

	for round := 1; round <= 2; round++ {
		res, err := an.Optimize(optSrc)
		if err != nil {
			t.Fatalf("optimize round %d: %v", round, err)
		}
		if res.Original.SSA != cached.SSA {
			t.Fatalf("optimize round %d did not hit the cache", round)
		}
		if res.Rewrites == 0 {
			t.Fatalf("optimize round %d: pipeline did not fire on %q", round, optSrc)
		}
		if got := cached.SSA.Func.String(); got != funcBefore {
			t.Fatalf("round %d mutated the cached program:\n--- before\n%s--- after\n%s",
				round, funcBefore, got)
		}
		if got := cached.ClassificationReport(); got != reportBefore {
			t.Fatalf("round %d mutated the cached classification:\n--- before\n%s--- after\n%s",
				round, reportBefore, got)
		}
	}
}

// TestOptimizeDeterministic: two cold runs of the same pipeline produce
// byte-identical transformed programs, reports and stats — the ordered
// candidate walks (slices.SortFunc on ir.ByID) leave no map-iteration
// nondeterminism.
func TestOptimizeDeterministic(t *testing.T) {
	run := func() (string, string, []PassStat) {
		res, err := Optimize(optSrc)
		if err != nil {
			t.Fatal(err)
		}
		return res.Program.SSA.Func.String(), res.Program.ClassificationReport(), res.Stats
	}
	f1, r1, s1 := run()
	f2, r2, s2 := run()
	if f1 != f2 {
		t.Errorf("transformed program differs across runs:\n--- first\n%s--- second\n%s", f1, f2)
	}
	if r1 != r2 {
		t.Errorf("transformed report differs across runs:\n--- first\n%s--- second\n%s", r1, r2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("stats differ across runs: %+v vs %+v", s1, s2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("stat %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

// hasLinearWithPrefix reports whether some loop classifies a value whose
// SSA name carries the prefix as linear — the re-classification check
// that a strength-reduced (sr) or substituted (ivs) recurrence is a
// first-class IV of the transformed program.
func hasLinearWithPrefix(p *Program, prefix string) bool {
	for _, l := range p.Loops.InnerToOuter() {
		for v, c := range p.IV.LoopClassifications(l) {
			if c.Kind == iv.Linear && strings.HasPrefix(v.Name, prefix) {
				return true
			}
		}
	}
	return false
}

func TestOptimizeReclassifiesReducedIV(t *testing.T) {
	res, err := Optimize(optSrc)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, s := range res.Stats {
		if s.Name == "strength" && s.Rewrites > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("strength reduction did not fire on %q; stats: %+v", optSrc, res.Stats)
	}
	if !hasLinearWithPrefix(res.Program, "sr") {
		t.Errorf("no strength-reduced value re-classified as linear:\n%s",
			res.Program.ClassificationReport())
	}
}

// TestOptimizeCorpusDifferential sweeps every corpus program and a set
// of generated ones through pipeline permutations with translation
// validation ON: any rewrite that changes observable behaviour fails the
// run, and the transformed program must verify as well-formed SSA. This
// is the paper-scale soundness net for the whole transformation layer.
func TestOptimizeCorpusDifferential(t *testing.T) {
	var sources []string
	for i := range paper.Corpus {
		sources = append(sources, paper.Corpus[i].Source)
	}
	sources = append(sources,
		progen.StraightLineLoop(6),
		progen.MutualChain(3),
		progen.MixedClasses(2),
		progen.NestedLoops(3),
		progen.DerivedChain(3),
		progen.DepWorkload(7),
		progen.New().Program(1),
		progen.New().Program(42),
	)

	pipelines := [][]string{
		nil, // canonical full pipeline
		{"normalize"},
		{"peel"},
		{"strength"},
		{"ivsub"},
		{"dce"},
		{"strength", "ivsub", "dce"},
		{"peel", "normalize", "strength", "dce"}, // permuted AST order
	}
	if testing.Short() {
		pipelines = [][]string{nil}
	}

	for pi, passes := range pipelines {
		an := NewAnalyzer(Options{Passes: passes, CacheEntries: len(sources)})
		for si, src := range sources {
			res, err := an.Optimize(src)
			if err != nil {
				t.Errorf("pipeline %v source %d: %v\nsource:\n%s", passes, si, err, src)
				continue
			}
			if errs := ssa.Verify(res.Program.SSA); len(errs) != 0 {
				t.Errorf("pipeline %v source %d: transformed SSA malformed: %v", passes, si, errs)
			}
			// Whenever strength reduction fired, the recurrence it planted
			// must re-classify as a linear IV of the transformed program.
			for _, s := range res.Stats {
				if s.Name == "strength" && s.Rewrites > 0 && !hasLinearWithPrefix(res.Program, "sr") {
					t.Errorf("pipeline %v source %d: sr recurrence not linear after re-analysis", passes, si)
				}
			}
		}
		_ = pi
	}
}

// TestOptimizeUnknownPass: a typo in Options.Passes surfaces from every
// Optimize entry point, naming the vocabulary, and poisons the whole
// batch rather than one item.
func TestOptimizeUnknownPass(t *testing.T) {
	_, err := OptimizeWith(optSrc, Options{Passes: []string{"strengt"}})
	if err == nil || !strings.Contains(err.Error(), "strengt") {
		t.Fatalf("unknown pass not reported: %v", err)
	}
	for _, name := range xform.PassNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list available pass %q: %v", name, err)
		}
	}
	items := OptimizeBatch([]string{optSrc, optSrc}, Options{Passes: []string{"strengt"}})
	for i, it := range items {
		if it.Err == nil {
			t.Errorf("batch item %d missing pass-resolution error", i)
		}
	}
}

// TestOptimizeBatchMatchesSequential: the concurrent optimize batch is
// byte-for-byte the sequential result, per source.
func TestOptimizeBatchMatchesSequential(t *testing.T) {
	sources := []string{
		optSrc,
		progen.StraightLineLoop(4),
		progen.MixedClasses(1),
		"j = )syntax error(",
		progen.NestedLoops(2),
	}
	seq := NewAnalyzer(Options{})
	want := make([]string, len(sources))
	wantErr := make([]bool, len(sources))
	for i, src := range sources {
		res, err := seq.Optimize(src)
		if err != nil {
			wantErr[i] = true
			continue
		}
		want[i] = res.Program.SSA.Func.String()
	}
	items := OptimizeBatch(sources, Options{Jobs: 3})
	for i, it := range items {
		if wantErr[i] {
			if it.Err == nil {
				t.Errorf("item %d: batch succeeded where sequential failed", i)
			}
			continue
		}
		if it.Err != nil {
			t.Errorf("item %d: %v", i, it.Err)
			continue
		}
		if got := it.Result.Program.SSA.Func.String(); got != want[i] {
			t.Errorf("item %d: batch result differs from sequential:\n--- sequential\n%s--- batch\n%s",
				i, want[i], got)
		}
	}
}
