package beyondiv

import (
	"testing"

	"beyondiv/internal/depend"
	"beyondiv/internal/obs"
)

// These tests pin the overflow-degradation contract: when exact
// analysis arithmetic would overflow int64, the analysis degrades to
// "don't know" (bottom / unknown / assume dependence) and counts the
// event — it never reports a silently wrapped constant, trip count, or
// independence verdict. The interpreter is the oracle: execution uses
// wrapping two's-complement semantics, so any constant the analysis
// *does* claim must match what a run produces.

// TestOverflowExpNotFolded: 7**99 overflows int64, so constant
// propagation must refuse to fold it — while the interpreter still
// computes the wrapped value quickly (square-and-multiply, not a
// 99-step loop; larger exponents are equally cheap).
func TestOverflowExpNotFolded(t *testing.T) {
	rec := obs.New()
	p, err := AnalyzeWith("k = 7 ** 99\n", Options{Obs: rec})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if n := rec.Counter("sccp.fold.overflow"); n == 0 {
		t.Errorf("sccp.fold.overflow = 0, want the refused fold counted")
	}
	res, err := p.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint64(1)
	for i := 0; i < 99; i++ {
		want *= 7
	}
	if got := res.Scalars["k"]; got != int64(want) {
		t.Errorf("interp k = %d, want wrapped %d", got, int64(want))
	}
}

// TestOverflowPolynomialSum: a linear recurrence whose running sum
// overflows int64 mid-loop. The analysis must finish without claiming
// wrong constants, and the interpreter's write trace is the wrapping
// ground truth the test checks against.
func TestOverflowPolynomialSum(t *testing.T) {
	const step = int64(4611686018427387904) // 2^62; wraps on the 2nd add
	src := `
s = 0
L1: for i = 1 to 5 {
    s = s + 4611686018427387904
    a[i] = s
}
`
	rec := obs.New()
	p, err := AnalyzeWith(src, Options{Obs: rec})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	res, err := p.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Writes) != 5 {
		t.Fatalf("got %d writes, want 5", len(res.Writes))
	}
	sum := uint64(0)
	for i, w := range res.Writes {
		sum += uint64(step)
		if w.Index != int64(i+1) || w.Value != int64(sum) {
			t.Errorf("write %d = a[%d]=%d, want a[%d]=%d", i, w.Index, w.Value, i+1, int64(sum))
		}
	}
}

// TestOverflowTripCountNotClaimed: bounds whose iteration count
// exceeds int64 (here MaxInt64 + 1) must not yield a wrapped constant
// trip count; unknown or symbolic is the only sound answer.
func TestOverflowTripCountNotClaimed(t *testing.T) {
	src := "L1: for i = 0 to 9223372036854775807 { s = s + 1 }\n"
	p, err := AnalyzeWith(src, Options{SkipDependences: true})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(p.Loops.Roots) != 1 {
		t.Fatalf("got %d loops, want 1", len(p.Loops.Roots))
	}
	tc := p.IV.TripCount(p.Loops.Roots[0])
	if tc == nil || tc.Expr == nil {
		return // unknown: sound
	}
	if c, ok := tc.Expr.ConstVal(); ok {
		t.Errorf("claimed constant trip count %v for a 2^63-iteration loop", c)
	}
}

// TestOverflowDependenceNotIndependent: subscript coefficients large
// enough to overflow the dependence-equation arithmetic (Banerjee
// bounds and exact-enumeration sums both leave int64 here) must
// degrade to "assume dependence", never to a false independence
// proof. The references do alias: 2^62·h = 2^61·h' has solutions
// h' = 2h inside the bounds, so independence would be a lie. The gcd
// test cannot settle it (gcd 2^61 divides the rhs 0), forcing the
// tester through the checked interval/exact paths.
func TestOverflowDependenceNotIndependent(t *testing.T) {
	src := `
L1: for i = 1 to 10 {
    a[4611686018427387904 * i] = a[2305843009213693952 * i]
}
`
	p, err := AnalyzeWith(src, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The write's pairing with itself is proven independent by exact
	// same-coefficient reasoning (distance must be 0, i.e. the same
	// iteration) — that involves no overflow and stays sound. The
	// write↔read pair is the one whose disproof would overflow; it must
	// be reported as a dependence.
	var cross *depend.Dependence
	for _, d := range p.Deps.Deps {
		if d.Src.Write != d.Dst.Write {
			cross = d
		}
	}
	if cross == nil {
		t.Fatalf("write↔read pair not reported dependent under overflowing coefficients; report:\n%s",
			p.DependenceReport())
	}
	if p.Deps.Independent > 1 {
		t.Errorf("claimed %d independent pairs, at most the self-pair (1) is provable", p.Deps.Independent)
	}
}
