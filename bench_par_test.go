// Parallel-tier benchmarks: what the intra-run fan-out buys on a
// single large analysis, sequential vs Parallel=4, plus the guard that
// parallelism must not tax small programs. `make bench-par` writes the
// headline numbers to BENCH_par.json via TestParBenchArtifact.
package beyondiv

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"beyondiv/internal/paper"
	"beyondiv/internal/progen"
)

// parBenchProgram is the fan-out benchmark workload: independent
// top-level loops with quadratic per-loop pair counts, so both the
// classifier and the dependence tester have real concurrent work.
func parBenchProgram() string { return progen.Large(24) }

// BenchmarkAnalyzeParallel: one large analysis by fan-out width.
// width=1 is the sequential baseline; the speedup at width=4 tracks
// the host's parallelism (≥1.8x expected on 4+ CPUs, ~1x on one).
func BenchmarkAnalyzeParallel(b *testing.B) {
	src := parBenchProgram()
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", width), func(b *testing.B) {
			an := NewAnalyzer(Options{Parallel: width})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := an.Analyze(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParBenchArtifact writes the parallel tier's headline numbers to
// the file named by BENCH_JSON (skipped when unset), so `make
// bench-par` leaves a machine-readable record in BENCH_par.json:
// sequential vs 4-worker analysis of the large generated program, and
// the sequential cost of a small program with the fan-out enabled
// (which must stay under its work-size thresholds and therefore free).
// gomaxprocs/num_cpu are recorded alongside; the speedup expectations
// only bind on hosts that can actually run workers in parallel.
func TestParBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}
	src := parBenchProgram()
	bench := func(width int, src string) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			an := NewAnalyzer(Options{Parallel: width})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := an.Analyze(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	seq, par := bench(1, src), bench(4, src)
	speedup := ratio(seq.NsPerOp(), par.NsPerOp())

	// Small-program guard: E6 is far below the fan-out thresholds, so a
	// Parallel=4 analyzer must not slow it down.
	smallSeq, smallPar := bench(1, paper.ByID("E6").Source), bench(4, paper.ByID("E6").Source)
	smallOverhead := ratio(smallPar.NsPerOp(), smallSeq.NsPerOp())

	report := map[string]any{
		"gomaxprocs":                runtime.GOMAXPROCS(0),
		"num_cpu":                   runtime.NumCPU(),
		"large_seq_ns_per_op":       seq.NsPerOp(),
		"large_seq_allocs_per_op":   seq.AllocsPerOp(),
		"large_par4_ns_per_op":      par.NsPerOp(),
		"large_par4_allocs_per_op":  par.AllocsPerOp(),
		"par4_speedup":              speedup,
		"small_seq_ns_per_op":       smallSeq.NsPerOp(),
		"small_par4_ns_per_op":      smallPar.NsPerOp(),
		"small_par4_overhead_ratio": smallOverhead,
	}
	writeBenchJSON(t, path, report)
	t.Logf("Large(24): %d ns seq, %d ns par4 (%.2fx); E6 overhead ratio %.2f",
		seq.NsPerOp(), par.NsPerOp(), speedup, smallOverhead)

	// Speedup expectations scale with the host: a single-CPU machine
	// cannot beat sequential by construction, so only multi-CPU hosts
	// are held to them (the seed artifact records num_cpu honestly).
	if runtime.NumCPU() >= 4 && speedup < 1.8 {
		t.Errorf("Parallel=4 speedup %.2fx < 1.8x on a %d-CPU host", speedup, runtime.NumCPU())
	}
	if runtime.NumCPU() >= 2 && runtime.NumCPU() < 4 && speedup < 1.2 {
		t.Errorf("Parallel=4 speedup %.2fx < 1.2x on a %d-CPU host", speedup, runtime.NumCPU())
	}
	// Timing jitter allowance: the threshold check itself is free, so
	// 10% covers scheduler noise on any host.
	if smallOverhead > 1.10 {
		t.Errorf("Parallel=4 slows small sequential programs by %.0f%% (want < 10%%)", (smallOverhead-1)*100)
	}
}
