package beyondiv

import (
	"strings"
	"testing"

	"beyondiv/internal/iv"
)

func TestAnalyzeQuickstart(t *testing.T) {
	prog, err := Analyze(`
j = 0
L1: for i = 1 to n {
    j = j + i
    a[j] = a[j - 1]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.ClassificationReport()
	for _, want := range []string{"loop L1", "i2 = (L1, 1, 1)", "j2 = (L1, 0, 1/2, 1/2)"} {
		if !strings.Contains(rep, want) {
			t.Errorf("classification report missing %q:\n%s", want, rep)
		}
	}
	dep := prog.DependenceReport()
	if !strings.Contains(dep, "dep") {
		t.Errorf("dependence report empty:\n%s", dep)
	}
}

func TestAnalyzeError(t *testing.T) {
	if _, err := Analyze("for i = { }"); err == nil {
		t.Error("expected a parse error")
	}
}

func TestSkipDependences(t *testing.T) {
	prog, err := AnalyzeWith("L1: for i = 1 to n { a[i] = 0 }", Options{SkipDependences: true})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Deps != nil || prog.DependenceReport() != "" {
		t.Error("dependence analysis should be skipped")
	}
}

func TestProgramRun(t *testing.T) {
	prog, err := Analyze("s = 0\nL1: for i = 1 to n { s = s + i }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(map[string]int64{"n": 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scalars["s"] != 55 {
		t.Errorf("s = %d, want 55", res.Scalars["s"])
	}
}

func TestPublicAccessors(t *testing.T) {
	prog, err := Analyze("L1: for i = 1 to 10 { a[i] = 0 }")
	if err != nil {
		t.Fatal(err)
	}
	l := prog.IV.LoopByLabel("L1")
	if l == nil {
		t.Fatal("L1 missing")
	}
	if tc, ok := prog.IV.TripCount(l).Const(); !ok || tc != 10 {
		t.Errorf("trip count = %v", prog.IV.TripCount(l))
	}
	i2 := prog.IV.ValueByName("i2")
	if c := prog.IV.ClassOf(l, i2); c.Kind != iv.Linear {
		t.Errorf("i2 = %s", c)
	}
}
