// Batch-mode and cache tests: determinism of AnalyzeAll under
// concurrency (run with -race in CI), content-addressed cache
// correctness, and failure isolation — one hostile source in a batch
// fails alone.
package beyondiv

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
	"beyondiv/internal/paper"
	"beyondiv/internal/progen"
)

// batchCorpus builds >= 16 distinct programs: the paper corpus plus
// generated nests and chains.
func batchCorpus(t testing.TB) []string {
	var srcs []string
	for _, p := range paper.Corpus {
		srcs = append(srcs, p.Source)
	}
	for depth := 2; depth <= 4; depth++ {
		srcs = append(srcs, progen.NestedLoops(depth))
	}
	srcs = append(srcs, progen.StraightLineLoop(64), progen.MutualChain(8))
	if len(srcs) < 16 {
		t.Fatalf("corpus too small: %d sources", len(srcs))
	}
	return srcs
}

// reportsOf renders the result of one analysis to comparable bytes.
func reportsOf(p *Program) string {
	return p.ClassificationReport() + "\n--\n" + p.DependenceReport()
}

// TestAnalyzeAllMatchesSequential: a 4-worker batch over >= 16 sources
// produces byte-identical results to sequential analysis, in input
// order. Under -race this also proves the fan-out is data-race free.
func TestAnalyzeAllMatchesSequential(t *testing.T) {
	srcs := batchCorpus(t)
	want := make([]string, len(srcs))
	for i, src := range srcs {
		prog, err := Analyze(src)
		if err != nil {
			t.Fatalf("sequential analyze %d: %v", i, err)
		}
		want[i] = reportsOf(prog)
	}
	for _, jobs := range []int{2, 4, 8} {
		results := AnalyzeBatch(srcs, Options{Jobs: jobs})
		if len(results) != len(srcs) {
			t.Fatalf("jobs=%d: %d results for %d sources", jobs, len(results), len(srcs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("jobs=%d source %d: %v", jobs, i, r.Err)
			}
			if r.Index != i {
				t.Errorf("jobs=%d: result %d carries index %d", jobs, i, r.Index)
			}
			if got := reportsOf(r.Program); got != want[i] {
				t.Errorf("jobs=%d source %d: batch result differs from sequential:\n--- batch ---\n%s\n--- sequential ---\n%s", jobs, i, got, want[i])
			}
		}
	}
}

// TestBatchTelemetryAggregates: worker recorders merge back into the
// caller's recorder — counters equal the sequential run's, and the
// span tree holds one worker span per worker under "analyze-all".
func TestBatchTelemetryAggregates(t *testing.T) {
	srcs := batchCorpus(t)[:8]
	seq := obs.New()
	for _, src := range srcs {
		if _, err := AnalyzeWith(src, Options{Obs: seq}); err != nil {
			t.Fatal(err)
		}
	}
	batch := obs.New()
	for _, r := range AnalyzeBatch(srcs, Options{Jobs: 4, Obs: batch}) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for name, want := range seq.Counters() {
		if got := batch.Counter(name); got != want {
			t.Errorf("counter %s = %d after batch, want %d", name, got, want)
		}
	}
	roots := batch.Spans()
	if len(roots) != 1 || roots[0].Name != "analyze-all" {
		t.Fatalf("batch roots = %v, want one analyze-all span", roots)
	}
	workers := 0
	for _, s := range roots[0].Children {
		if strings.HasPrefix(s.Name, "worker ") {
			workers++
		}
	}
	if workers != 4 {
		t.Errorf("analyze-all has %d worker spans, want 4", workers)
	}
}

// TestCacheHitReturnsSameArtifacts: with a cache, re-analyzing the
// same source under the same options returns the same underlying
// artifacts (pointer-identical *iv.Analysis), and the hit/miss
// counters record it.
func TestCacheHitReturnsSameArtifacts(t *testing.T) {
	src := paper.ByID("E6").Source
	rec := obs.New()
	an := NewAnalyzer(Options{CacheEntries: 4, Obs: rec})
	p1, err := an.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := an.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1.IV != p2.IV || p1.Deps != p2.Deps || p1.SSA != p2.SSA {
		t.Error("second analysis of an unchanged source did not reuse the cached artifacts")
	}
	if hits := rec.Counter("engine.cache.hit"); hits != 1 {
		t.Errorf("engine.cache.hit = %d, want 1", hits)
	}
	if misses := rec.Counter("engine.cache.miss"); misses != 1 {
		t.Errorf("engine.cache.miss = %d, want 1", misses)
	}
	// Without a cache, artifacts are always fresh.
	plain := NewAnalyzer(Options{})
	q1, _ := plain.Analyze(src)
	q2, _ := plain.Analyze(src)
	if q1.IV == q2.IV {
		t.Error("uncached analyzer returned shared artifacts")
	}
}

// TestCacheFingerprintMiss: a shared cache keeps analyzers with
// different option fingerprints apart — same source, different
// options, no false hit.
func TestCacheFingerprintMiss(t *testing.T) {
	src := paper.ByID("E6").Source
	cache := NewCache(8)
	a1, err := NewAnalyzer(Options{Cache: cache}).Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	opts := Options{Cache: cache, Obs: rec}
	opts.IV.DisableClosedForms = true
	a2, err := NewAnalyzer(opts).Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counter("engine.cache.hit") != 0 {
		t.Error("differing options fingerprint hit the cache")
	}
	if rec.Counter("engine.cache.miss") != 1 {
		t.Errorf("engine.cache.miss = %d, want 1", rec.Counter("engine.cache.miss"))
	}
	if a1.IV == a2.IV {
		t.Error("analyzers with different options share an analysis")
	}
	if cache.Len() != 2 {
		t.Errorf("shared cache holds %d entries, want 2", cache.Len())
	}
	// Same options + same cache from a fresh analyzer: true hit.
	rec2 := obs.New()
	if _, err := NewAnalyzer(Options{Cache: cache, Obs: rec2}).Analyze(src); err != nil {
		t.Fatal(err)
	}
	if rec2.Counter("engine.cache.hit") != 1 {
		t.Error("identical options + shared cache missed")
	}
}

// TestBatchFailureIsolation: one source exceeding its guard ceiling
// fails with its own *Error; every other source of the batch succeeds
// with results identical to a clean run.
func TestBatchFailureIsolation(t *testing.T) {
	srcs := batchCorpus(t)[:16]
	hostile := 7
	srcs[hostile] = "j = " + strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64) + "\n"
	opts := Options{Jobs: 4, Limits: guard.Limits{MaxNestDepth: 16}}
	results := AnalyzeBatch(srcs, opts)
	for i, r := range results {
		if i == hostile {
			var e *Error
			if !errors.As(r.Err, &e) {
				t.Fatalf("hostile source error is %T (%v), want *beyondiv.Error", r.Err, r.Err)
			}
			var le *guard.LimitError
			if !errors.As(r.Err, &le) {
				t.Errorf("hostile source error does not wrap the limit: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("source %d failed alongside the hostile one: %v", i, r.Err)
			continue
		}
		clean, err := AnalyzeWith(srcs[i], Options{Limits: opts.Limits})
		if err != nil {
			t.Fatalf("clean run of source %d: %v", i, err)
		}
		if reportsOf(r.Program) != reportsOf(clean) {
			t.Errorf("source %d: batch result skewed by the hostile source", i)
		}
	}
}

// TestBatchSharedBudget: a shared step pool bounds the whole batch's
// work — a tiny pool fails sources with a "shared step pool" limit
// error, a generous one lets the same batch through.
func TestBatchSharedBudget(t *testing.T) {
	srcs := batchCorpus(t)[:8]
	starved := AnalyzeBatch(srcs, Options{Jobs: 4, BatchSteps: 1})
	failed := 0
	for _, r := range starved {
		if r.Err == nil {
			continue
		}
		failed++
		var le *guard.LimitError
		if !errors.As(r.Err, &le) || le.Resource != "shared step pool" {
			t.Errorf("starved batch error = %v, want shared step pool limit", r.Err)
		}
	}
	if failed == 0 {
		t.Fatal("a 1-step shared pool failed no sources")
	}
	for i, r := range AnalyzeBatch(srcs, Options{Jobs: 4, BatchSteps: 1 << 30}) {
		if r.Err != nil {
			t.Errorf("generous pool: source %d failed: %v", i, r.Err)
		}
	}
}

// TestAnalyzeBatchEmptyAndSingle: degenerate batch sizes behave.
func TestAnalyzeBatchEmptyAndSingle(t *testing.T) {
	if got := AnalyzeBatch(nil, Options{Jobs: 4}); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
	results := AnalyzeBatch([]string{paper.ByID("E6").Source}, Options{Jobs: 4})
	if len(results) != 1 || results[0].Err != nil || results[0].Program == nil {
		t.Fatalf("single-source batch: %+v", results)
	}
	if fmt.Sprint(results[0].Index) != "0" {
		t.Errorf("single-source batch index = %d", results[0].Index)
	}
}
