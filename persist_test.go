// Facade-level persistent-cache tests: a Program served from the disk
// store must be indistinguishable, byte for byte, from a live analysis
// across every rendered artifact; a warm cross-process start must run
// zero analysis passes; and every way the store can be damaged must
// degrade to re-analysis, never to a wrong answer.
package beyondiv

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/paper"
)

// persistFacadeSrc has induction variables, dependences and a nested
// loop, so every artifact section is non-trivial.
const persistFacadeSrc = `j = 0
L1: for i = 1 to n {
    j = j + 2
    a[j] = a[j+1] + 1
    L2: for k = 1 to m {
        b[k] = j
    }
}
`

// artifactViews renders every cacheable artifact of a Program into a
// comparable bundle. keys is the explain-name universe to probe —
// derived from the live analysis, since a decoded program cannot
// enumerate its own.
func artifactViews(t *testing.T, p *Program, keys []string) map[string]string {
	t.Helper()
	js, err := json.Marshal(p.ReportData())
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]string{
		"classification": p.ClassificationReport(),
		"dependences":    p.DependenceReport(),
		"explaindeps":    p.ExplainAllDeps(),
		"reportjson":     string(js),
	}
	for _, k := range keys {
		views["explain:"+k] = p.Explain(k)
	}
	return views
}

func diffViews(t *testing.T, label string, fresh, decoded map[string]string) {
	t.Helper()
	for k, want := range fresh {
		if got := decoded[k]; got != want {
			t.Errorf("%s: %s differs\n--- fresh ---\n%s\n--- decoded ---\n%s", label, k, want, got)
		}
	}
}

// TestPersistDecodedMatchesFresh: every paper example, served from a
// warm store in a second "process" (a second analyzer over the same
// directory), renders byte-identically to a live analysis — reports,
// structured JSON, dependence explanations, and the provenance chain of
// every name the classifier can explain.
func TestPersistDecodedMatchesFresh(t *testing.T) {
	dir := t.TempDir()
	warm := NewAnalyzer(Options{CacheDir: dir})
	for _, p := range paper.Corpus {
		if _, err := warm.Analyze(p.Source); err != nil {
			t.Fatalf("%s: warm: %v", p.ID, err)
		}
	}

	reader := NewAnalyzer(Options{CacheDir: dir})
	for _, p := range paper.Corpus {
		fresh, err := Analyze(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.ID, err)
		}
		decoded, err := reader.Analyze(p.Source)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.ID, err)
		}
		if !decoded.Decoded() {
			t.Fatalf("%s: second process missed the store", p.ID)
		}
		keys := fresh.IV.ExplainKeys()
		keys = append(keys, "nosuchvariable")
		diffViews(t, p.ID, artifactViews(t, fresh, keys), artifactViews(t, decoded, keys))
	}
}

// TestPersistWarmStartZeroPasses: a second process analyzing a source
// already in the store runs no analysis passes at all — the alias hit
// answers before the parse, which the span tree and the store counters
// both witness.
func TestPersistWarmStartZeroPasses(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewAnalyzer(Options{CacheDir: dir}).Analyze(persistFacadeSrc); err != nil {
		t.Fatal(err)
	}

	rec := obs.New()
	reg := metrics.NewRegistry()
	an := NewAnalyzer(Options{CacheDir: dir, Obs: rec, Metrics: reg})
	prog, err := an.Analyze(persistFacadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Decoded() {
		t.Fatal("warm cross-process start was not served from the store")
	}
	if got := reg.Counter("engine.store.hit.alias"); got != 1 {
		t.Fatalf("engine.store.hit.alias = %d, want 1", got)
	}
	for _, sp := range rec.Spans() {
		for _, c := range sp.Children {
			t.Fatalf("warm start ran analysis pass %q", c.Name)
		}
	}
	// The decoded program still renders everything a reader needs...
	if prog.ClassificationReport() == "" || len(prog.ReportData()) == 0 {
		t.Fatal("decoded program rendered empty artifacts")
	}
	// ...but refuses what needs live SSA, with a pointed error.
	if _, err := prog.Run(nil); err == nil || !strings.Contains(err.Error(), "persistent cache") {
		t.Fatalf("Run on a decoded program: %v", err)
	}
}

// TestPersistStructuralHit: whitespace- and comment-only edits hit the
// structural entry (a parse, zero analysis passes), and an α-renamed
// duplicate whose names keep their relative order is served from the
// same entry, byte-identical to analyzing it live.
func TestPersistStructuralHit(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewAnalyzer(Options{CacheDir: dir}).Analyze(persistFacadeSrc); err != nil {
		t.Fatal(err)
	}

	// Formatting-only variant: extra blank lines, a comment, re-indent.
	variant := "// reformatted\n" + strings.ReplaceAll(persistFacadeSrc, "    ", "\t") + "\n"
	reg := metrics.NewRegistry()
	reader := NewAnalyzer(Options{CacheDir: dir, Metrics: reg})
	prog, err := reader.Analyze(variant)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Decoded() {
		t.Fatal("formatting variant missed the structural entry")
	}
	if got := reg.Counter("engine.store.hit.struct"); got != 1 {
		t.Fatalf("engine.store.hit.struct = %d, want 1", got)
	}
	fresh, err := Analyze(variant)
	if err != nil {
		t.Fatal(err)
	}
	keys := fresh.IV.ExplainKeys()
	diffViews(t, "format-variant", artifactViews(t, fresh, keys), artifactViews(t, prog, keys))

	// α-rename preserving relative name order: every report is the
	// renamed program's own, decoded by remapping the stored entry.
	renamed := persistFacadeSrc
	for _, sub := range [][2]string{{"j", "jj"}, {"i", "ii"}, {"a", "aa"}, {"b", "bb"}, {"k", "kk"}, {"m", "mm"}, {"n", "nn"}} {
		renamed = renameIdent(renamed, sub[0], sub[1])
	}
	reg2 := metrics.NewRegistry()
	reader2 := NewAnalyzer(Options{CacheDir: dir, Metrics: reg2})
	rprog, err := reader2.Analyze(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if !rprog.Decoded() {
		t.Fatal("order-preserving rename missed the structural entry")
	}
	rfresh, err := Analyze(renamed)
	if err != nil {
		t.Fatal(err)
	}
	rkeys := rfresh.IV.ExplainKeys()
	diffViews(t, "alpha-rename", artifactViews(t, rfresh, rkeys), artifactViews(t, rprog, rkeys))

	// A rename that breaks relative order ("j" sorted after "a" becomes
	// "c" sorted before) cannot be served by remap: it must fall back to
	// a live analysis, never a misrendered artifact.
	broken := renameIdent(persistFacadeSrc, "j", "c")
	reg3 := metrics.NewRegistry()
	bprog, err := NewAnalyzer(Options{CacheDir: dir, Metrics: reg3}).Analyze(broken)
	if err != nil {
		t.Fatal(err)
	}
	if bprog.Decoded() {
		t.Fatal("order-breaking rename served from the store")
	}
	if got := reg3.Counter("engine.store.corrupt"); got != 0 {
		t.Fatalf("incompatible remap counted as corruption (%d)", got)
	}
}

// renameIdent replaces whole-token occurrences of old with new — enough
// of a renamer for test sources.
func renameIdent(src, old, new string) string {
	isWord := func(b byte) bool {
		return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
	}
	var sb strings.Builder
	for i := 0; i < len(src); {
		if strings.HasPrefix(src[i:], old) &&
			(i == 0 || !isWord(src[i-1])) &&
			(i+len(old) == len(src) || !isWord(src[i+len(old)])) {
			sb.WriteString(new)
			i += len(old)
			continue
		}
		sb.WriteByte(src[i])
		i++
	}
	return sb.String()
}

// TestPersistCorruptionRecovers: flipping bytes in every stored blob
// must not change any answer — the next analyzer re-analyzes live,
// counts the damage, and rewrites clean entries.
func TestPersistCorruptionRecovers(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewAnalyzer(Options{CacheDir: dir}).Analyze(persistFacadeSrc); err != nil {
		t.Fatal(err)
	}
	fresh, err := Analyze(persistFacadeSrc)
	if err != nil {
		t.Fatal(err)
	}

	damaged := 0
	err = filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		b[len(b)/2] ^= 0xff
		damaged++
		return os.WriteFile(path, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if damaged == 0 {
		t.Fatal("no blobs to damage; the store wrote nothing")
	}

	reg := metrics.NewRegistry()
	prog, err := NewAnalyzer(Options{CacheDir: dir, Metrics: reg}).Analyze(persistFacadeSrc)
	if err != nil {
		t.Fatalf("corrupt store must degrade to re-analysis, got %v", err)
	}
	if prog.Decoded() {
		t.Fatal("corrupt entry served as a result")
	}
	if got := reg.Counter("engine.store.corrupt"); got == 0 {
		t.Fatal("corruption not counted")
	}
	keys := fresh.IV.ExplainKeys()
	diffViews(t, "post-corruption", artifactViews(t, fresh, keys), artifactViews(t, prog, keys))

	// The live run re-wrote the blobs: a third process warm-starts.
	reg2 := metrics.NewRegistry()
	prog2, err := NewAnalyzer(Options{CacheDir: dir, Metrics: reg2}).Analyze(persistFacadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !prog2.Decoded() || reg2.Counter("engine.store.hit.alias") != 1 {
		t.Fatal("store not repaired by the re-analysis")
	}
}

// TestPersistTruncatedStoreRecovers: a blob cut short mid-write (the
// crash the atomic rename protects against, simulated directly) is
// treated exactly like corruption.
func TestPersistTruncatedStoreRecovers(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewAnalyzer(Options{CacheDir: dir}).Analyze(persistFacadeSrc); err != nil {
		t.Fatal(err)
	}
	err := filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		return os.Truncate(path, fi.Size()/2)
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, aerr := NewAnalyzer(Options{CacheDir: dir}).Analyze(persistFacadeSrc)
	if aerr != nil {
		t.Fatalf("truncated store must degrade to re-analysis, got %v", aerr)
	}
	if prog.Decoded() {
		t.Fatal("truncated entry served as a result")
	}
	if prog.ClassificationReport() == "" {
		t.Fatal("re-analysis rendered nothing")
	}
}

// TestPersistWriteOnly: a write-only analyzer never reads the store but
// still warms it — its programs stay live (Run works), and a subsequent
// reading analyzer gets the alias hit.
func TestPersistWriteOnly(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	wo := NewAnalyzer(Options{CacheDir: dir, CacheDirWriteOnly: true, Metrics: reg})
	for i := 0; i < 2; i++ {
		prog, err := wo.Analyze(persistFacadeSrc)
		if err != nil {
			t.Fatal(err)
		}
		if prog.Decoded() {
			t.Fatal("write-only analyzer served a decoded program")
		}
		if _, err := prog.Run(map[string]int64{"n": 3, "m": 2}); err != nil {
			t.Fatalf("write-only program lost live SSA: %v", err)
		}
	}
	if got := reg.Counter("engine.store.hit"); got != 0 {
		t.Fatalf("write-only analyzer read the store %d times", got)
	}

	reg2 := metrics.NewRegistry()
	prog, err := NewAnalyzer(Options{CacheDir: dir, Metrics: reg2}).Analyze(persistFacadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Decoded() || reg2.Counter("engine.store.hit.alias") != 1 {
		t.Fatal("write-only analyzer did not warm the store")
	}
}

// TestPersistBadCacheDir: an unusable cache directory surfaces as an
// error from every entry point — never a silent fall-through to
// uncached analysis the operator thinks is being persisted.
func TestPersistBadCacheDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(Options{CacheDir: file})
	if _, err := an.Analyze(persistFacadeSrc); err == nil {
		t.Fatal("Analyze with an unusable cache dir succeeded")
	}
	for _, r := range an.AnalyzeAll([]string{persistFacadeSrc, persistFacadeSrc}) {
		if r.Err == nil {
			t.Fatal("AnalyzeAll with an unusable cache dir succeeded")
		}
	}
	if _, err := an.Optimize(persistFacadeSrc); err == nil {
		t.Fatal("Optimize with an unusable cache dir succeeded")
	}
}

// TestPersistOptimizeStaysLive: with a warm read-write store, Optimize
// must still run the transform pipeline on live SSA — a decoded
// artifact can never satisfy it.
func TestPersistOptimizeStaysLive(t *testing.T) {
	dir := t.TempDir()
	an := NewAnalyzer(Options{CacheDir: dir})
	if _, err := an.Analyze(persistFacadeSrc); err != nil {
		t.Fatal(err)
	}
	an2 := NewAnalyzer(Options{CacheDir: dir})
	res, err := an2.Optimize(persistFacadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program == nil || res.Program.SSA == nil {
		t.Fatal("Optimize through a warm store lost the live program")
	}
}
