package beyondiv_test

import (
	"fmt"

	"beyondiv"
)

// The quickstart from the README: classify a quadratic sum and its
// recurrence.
func ExampleAnalyze() {
	prog, err := beyondiv.Analyze(`
j = 0
L1: for i = 1 to 10 {
    j = j + i
    a[j] = a[j] + 1
}
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(prog.ClassificationReport())
	// Output:
	// loop L1 (depth 1) trip=10
	//   j3 = (L1, 1, 3/2, 1/2)
	//   i3 = (L1, 2, 1)
	//   i2 = (L1, 1, 1)
	//   j2 = (L1, 0, 1/2, 1/2)
}

// Every classification carries its provenance: Explain renders which
// paper rule fired, the strongly connected region behind it, and the
// classifications it was derived from.
func Example_explain() {
	prog, err := beyondiv.Analyze(`
j = 0
L1: for i = 1 to 10 {
    j = j + i
    a[j] = a[j] + 1
}
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(prog.Explain("j"))
	// Output:
	// j3 in loop L1: (L1, 1, 3/2, 1/2)
	//   rule: §4.3 polynomial via cumulative effect X' = X + β
	//         order 2, coefficients solved from 3 simulated samples via Vandermonde inversion
	//         SCR {j3, φ j2}
	//   fed by recurrence step β = (L1, 1, 1)
	//     rule: §3.1 linear induction family (Figure 3, equal offsets)
	//           value(h) = 1 + 1·h
	// j2 in loop L1: (L1, 0, 1/2, 1/2)
	//   rule: §4.3 polynomial via cumulative effect X' = X + β
	//         order 2, coefficients solved from 3 simulated samples via Vandermonde inversion
	//         SCR {j3, φ j2}
	//   fed by recurrence step β = (L1, 1, 1)
	//     rule: §3.1 linear induction family (Figure 3, equal offsets)
	//           value(h) = 1 + 1·h
}

// Wrap-around variables are recognized directly from the SSA graph.
func ExampleAnalyze_wrapAround() {
	prog, err := beyondiv.Analyze(`
iml = n
L9: for i = 1 to n {
    a[i] = a[iml] + 1
    iml = i
}
`)
	if err != nil {
		panic(err)
	}
	l := prog.IV.LoopByLabel("L9")
	v := prog.IV.ValueByName("iml2")
	fmt.Println(prog.IV.ClassOf(l, v))
	// Output:
	// wrap-around(L9, order 1, init n1, then (L9, 1, 1))
}

// The analyzed program is executable; closed forms can be checked
// against reality.
func ExampleProgram_Run() {
	prog, err := beyondiv.Analyze("s = 0\nL1: for i = 1 to n { s = s + i }")
	if err != nil {
		panic(err)
	}
	res, err := prog.Run(map[string]int64{"n": 100})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scalars["s"])
	// Output:
	// 5050
}

// Dependence testing exploits the extended classes: a strictly
// monotonic pack index never collides with itself.
func ExampleAnalyze_dependences() {
	prog, err := beyondiv.Analyze(`
k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
    }
}
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(prog.DependenceReport())
	// Output:
	// 0 dependences, 1 pairs independent
}
