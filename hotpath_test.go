// Regression tests for the dense-ID/scratch-arena hot path: the alloc
// budget of a cold analysis must not creep back up, and reusing one
// engine's scratch arena across runs must be invisible in the results.
package beyondiv

import (
	"testing"

	"beyondiv/internal/paper"
	"beyondiv/internal/progen"
)

// TestAnalyzeAllocBound pins an allocation upper bound for a
// representative mid-size program through the facade, on the
// sequential path (Parallel pinned to 1 so the bound means the same
// thing on every host). The bound has ~30% headroom over the measured
// cost after the parse/IR slab and matrix-memo squeeze (~3.3k allocs),
// so ordinary drift passes but reintroducing per-run maps, per-node
// AST or IR allocation, or per-SCR table churn fails loudly.
func TestAnalyzeAllocBound(t *testing.T) {
	src := progen.MixedClasses(8)
	allocs := testing.AllocsPerRun(10, func() {
		// A fresh analyzer per run, like the original bound: cold
		// arenas and caches, nothing amortized away.
		if _, err := NewAnalyzer(Options{Parallel: 1}).Analyze(src); err != nil {
			t.Fatal(err)
		}
	})
	const bound = 4300
	if allocs > bound {
		t.Errorf("Analyze(MixedClasses(8)) = %.0f allocs per run, want ≤ %d", allocs, bound)
	}
	t.Logf("%.0f allocs per run (bound %d)", allocs, bound)
}

// TestScratchArenaReuse proves arena recycling is semantically inert:
// one engine analyzing a sequence of programs — sized so recycled
// tables are variously too small, too large, and stamped with stale
// generations — must report bit-identical results to a fresh engine per
// program.
func TestScratchArenaReuse(t *testing.T) {
	var srcs []string
	for _, p := range paper.Corpus {
		srcs = append(srcs, p.Source)
	}
	// Interleave a large generated program so table sizes shrink and
	// grow between consecutive runs.
	srcs = append(srcs, progen.MixedClasses(12), paper.Corpus[0].Source, progen.StraightLineLoop(512))

	shared := NewAnalyzer(Options{})
	for round := 0; round < 2; round++ {
		for i, src := range srcs {
			got, err := shared.Analyze(src)
			if err != nil {
				t.Fatalf("round %d src %d: shared engine: %v", round, i, err)
			}
			want, err := NewAnalyzer(Options{}).Analyze(src)
			if err != nil {
				t.Fatalf("round %d src %d: fresh engine: %v", round, i, err)
			}
			if g, w := got.ClassificationReport(), want.ClassificationReport(); g != w {
				t.Errorf("round %d src %d: classification diverges with arena reuse\nshared:\n%s\nfresh:\n%s", round, i, g, w)
			}
			if g, w := got.DependenceReport(), want.DependenceReport(); g != w {
				t.Errorf("round %d src %d: dependences diverge with arena reuse\nshared:\n%s\nfresh:\n%s", round, i, g, w)
			}
		}
	}
}
