// Engine benchmarks: what the pass-based refactor buys beyond the
// single-shot pipeline. The batch benchmarks measure AnalyzeAll's
// worker-pool throughput against sequential analysis of the same
// corpus; the cache benchmarks measure a warm content-addressed hit
// against a cold full run. `make bench` additionally writes the
// headline numbers to BENCH_engine.json via TestEngineBenchArtifact.
package beyondiv

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"beyondiv/internal/paper"
)

// benchCorpus is the examples corpus the batch benchmarks fan out
// over: every paper program, replicated to the requested size so the
// pool has real work on every worker.
func benchCorpus(n int) []string {
	var srcs []string
	for len(srcs) < n {
		for _, p := range paper.Corpus {
			srcs = append(srcs, p.Source)
			if len(srcs) == n {
				break
			}
		}
	}
	return srcs
}

func runBatch(b *testing.B, jobs int) {
	srcs := benchCorpus(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range AnalyzeBatch(srcs, Options{Jobs: jobs}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(srcs)*b.N)/b.Elapsed().Seconds(), "programs/s")
}

// BenchmarkEngineBatch: AnalyzeAll throughput by worker count over the
// 32-program corpus. jobs=1 is the sequential baseline.
func BenchmarkEngineBatch(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) { runBatch(b, jobs) })
	}
}

// BenchmarkEngineCache: one source analyzed repeatedly, cold (no
// cache, full pipeline every time) vs warm (content-addressed hit).
func BenchmarkEngineCache(b *testing.B) {
	src := paper.ByID("E6").Source
	b.Run("cold", func(b *testing.B) {
		an := NewAnalyzer(Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		an := NewAnalyzer(Options{CacheEntries: 16})
		if _, err := an.Analyze(src); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEngineBenchArtifact writes the engine's headline performance
// numbers to the file named by BENCH_JSON (skipped when unset), so
// `make bench` leaves a machine-readable perf trajectory in
// BENCH_engine.json: cold vs warm-cache single analysis and
// sequential vs 4-worker batch throughput. batch_speedup tracks the
// host's parallelism (gomaxprocs/num_cpu are recorded alongside): on
// a single-CPU machine expect ~1x, on 4+ cores ≥2x.
func TestEngineBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}
	src := paper.ByID("E6").Source
	cold := benchColdAnalyze(src)
	warm := testing.Benchmark(func(b *testing.B) {
		an := NewAnalyzer(Options{CacheEntries: 16})
		if _, err := an.Analyze(src); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch := func(jobs int) testing.BenchmarkResult {
		srcs := benchCorpus(32)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range AnalyzeBatch(srcs, Options{Jobs: jobs}) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
	seq, par := batch(1), batch(4)

	batchSpeedup := ratio(seq.NsPerOp(), par.NsPerOp())
	report := map[string]any{
		"gomaxprocs":                  runtime.GOMAXPROCS(0),
		"num_cpu":                     runtime.NumCPU(),
		"analyze_cold_ns_per_op":      cold.NsPerOp(),
		"analyze_cold_allocs_per_op":  cold.AllocsPerOp(),
		"analyze_warm_ns_per_op":      warm.NsPerOp(),
		"analyze_warm_allocs_per_op":  warm.AllocsPerOp(),
		"cache_speedup":               ratio(cold.NsPerOp(), warm.NsPerOp()),
		"batch32_seq_ns_per_op":       seq.NsPerOp(),
		"batch32_seq_allocs_per_op":   seq.AllocsPerOp(),
		"batch32_jobs4_ns_per_op":     par.NsPerOp(),
		"batch32_jobs4_allocs_per_op": par.AllocsPerOp(),
		"batch_speedup":               batchSpeedup,
	}
	writeBenchJSON(t, path, report)
	t.Logf("cache speedup %.1fx, batch speedup %.1fx", ratio(cold.NsPerOp(), warm.NsPerOp()), batchSpeedup)
	// The ≥1x batch expectation only applies with real parallelism: a
	// single-CPU host cannot beat sequential by construction (the seed
	// BENCH_engine.json was produced at gomaxprocs=1 with ~1x).
	if runtime.NumCPU() >= 2 && batchSpeedup < 1.0 {
		t.Errorf("batch speedup %.2fx < 1x on a %d-CPU host", batchSpeedup, runtime.NumCPU())
	}
}

// benchColdAnalyze measures a cache-less full-pipeline analysis of src,
// with allocation tracking on so artifacts can report allocs/op.
func benchColdAnalyze(src string) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		an := NewAnalyzer(Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func writeBenchJSON(t *testing.T, path string, report map[string]any) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// Pre-change baseline for the dense-ID hot-path rework, measured on the
// map-based pipeline at the same commit the rework branched from
// (BenchmarkEngineCache/cold, paper program E6): the numbers
// TestHotpathBenchArtifact reports its deltas against.
const (
	hotpathBaselineColdNs     = 150757
	hotpathBaselineColdAllocs = 793
)

// TestHotpathBenchArtifact re-measures the cold single-run cost the
// dense-ID/scratch-arena rework targets and writes BENCH_hotpath.json
// (skipped unless BENCH_JSON is set): fresh cold ns/op and allocs/op
// next to the recorded pre-change baseline, with the reduction ratios.
func TestHotpathBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}
	cold := benchColdAnalyze(paper.ByID("E6").Source)

	nsDrop := 1 - float64(cold.NsPerOp())/float64(hotpathBaselineColdNs)
	allocsDrop := 1 - float64(cold.AllocsPerOp())/float64(hotpathBaselineColdAllocs)
	report := map[string]any{
		"gomaxprocs":                          runtime.GOMAXPROCS(0),
		"num_cpu":                             runtime.NumCPU(),
		"baseline_analyze_cold_ns_per_op":     hotpathBaselineColdNs,
		"baseline_analyze_cold_allocs_per_op": hotpathBaselineColdAllocs,
		"analyze_cold_ns_per_op":              cold.NsPerOp(),
		"analyze_cold_allocs_per_op":          cold.AllocsPerOp(),
		"ns_reduction":                        nsDrop,
		"allocs_reduction":                    allocsDrop,
	}
	writeBenchJSON(t, path, report)
	t.Logf("cold analyze: %d ns/op (%.0f%% down), %d allocs/op (%.0f%% down)",
		cold.NsPerOp(), nsDrop*100, cold.AllocsPerOp(), allocsDrop*100)
	if allocsDrop < 0.30 {
		t.Errorf("allocs/op reduction %.1f%% < 30%% target (got %d, baseline %d)",
			allocsDrop*100, cold.AllocsPerOp(), hotpathBaselineColdAllocs)
	}
	if nsDrop <= 0 {
		t.Errorf("cold ns/op did not drop: got %d, baseline %d", cold.NsPerOp(), hotpathBaselineColdNs)
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
