// Engine benchmarks: what the pass-based refactor buys beyond the
// single-shot pipeline. The batch benchmarks measure AnalyzeAll's
// worker-pool throughput against sequential analysis of the same
// corpus; the cache benchmarks measure a warm content-addressed hit
// against a cold full run. `make bench` additionally writes the
// headline numbers to BENCH_engine.json via TestEngineBenchArtifact.
package beyondiv

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"beyondiv/internal/paper"
)

// benchCorpus is the examples corpus the batch benchmarks fan out
// over: every paper program, replicated to the requested size so the
// pool has real work on every worker.
func benchCorpus(n int) []string {
	var srcs []string
	for len(srcs) < n {
		for _, p := range paper.Corpus {
			srcs = append(srcs, p.Source)
			if len(srcs) == n {
				break
			}
		}
	}
	return srcs
}

func runBatch(b *testing.B, jobs int) {
	srcs := benchCorpus(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range AnalyzeBatch(srcs, Options{Jobs: jobs}) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(srcs)*b.N)/b.Elapsed().Seconds(), "programs/s")
}

// BenchmarkEngineBatch: AnalyzeAll throughput by worker count over the
// 32-program corpus. jobs=1 is the sequential baseline.
func BenchmarkEngineBatch(b *testing.B) {
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) { runBatch(b, jobs) })
	}
}

// BenchmarkEngineCache: one source analyzed repeatedly, cold (no
// cache, full pipeline every time) vs warm (content-addressed hit).
func BenchmarkEngineCache(b *testing.B) {
	src := paper.ByID("E6").Source
	b.Run("cold", func(b *testing.B) {
		an := NewAnalyzer(Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		an := NewAnalyzer(Options{CacheEntries: 16})
		if _, err := an.Analyze(src); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEngineBenchArtifact writes the engine's headline performance
// numbers to the file named by BENCH_JSON (skipped when unset), so
// `make bench` leaves a machine-readable perf trajectory in
// BENCH_engine.json: cold vs warm-cache single analysis and
// sequential vs 4-worker batch throughput. batch_speedup tracks the
// host's parallelism (gomaxprocs/num_cpu are recorded alongside): on
// a single-CPU machine expect ~1x, on 4+ cores ≥2x.
func TestEngineBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to write the benchmark artifact")
	}
	src := paper.ByID("E6").Source
	cold := testing.Benchmark(func(b *testing.B) {
		an := NewAnalyzer(Options{})
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := testing.Benchmark(func(b *testing.B) {
		an := NewAnalyzer(Options{CacheEntries: 16})
		if _, err := an.Analyze(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := an.Analyze(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch := func(jobs int) testing.BenchmarkResult {
		srcs := benchCorpus(32)
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range AnalyzeBatch(srcs, Options{Jobs: jobs}) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
	seq, par := batch(1), batch(4)

	report := map[string]any{
		"gomaxprocs":              runtime.GOMAXPROCS(0),
		"num_cpu":                 runtime.NumCPU(),
		"analyze_cold_ns_per_op":  cold.NsPerOp(),
		"analyze_warm_ns_per_op":  warm.NsPerOp(),
		"cache_speedup":           ratio(cold.NsPerOp(), warm.NsPerOp()),
		"batch32_seq_ns_per_op":   seq.NsPerOp(),
		"batch32_jobs4_ns_per_op": par.NsPerOp(),
		"batch_speedup":           ratio(seq.NsPerOp(), par.NsPerOp()),
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("cache speedup %.1fx, batch speedup %.1fx", ratio(cold.NsPerOp(), warm.NsPerOp()), ratio(seq.NsPerOp(), par.NsPerOp()))
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
