//go:build !unix

package beyondiv

import "time"

// processCPUTime falls back to wall clock where getrusage is not
// available; the overhead gate only runs on unix CI anyway.
func processCPUTime() time.Duration {
	return time.Since(processEpoch)
}

var processEpoch = time.Now()
