// Parallel-tier regression tests: the intra-run fan-out must be
// invisible in results — byte-identical reports and provenance at
// every width — and near-invisible in allocations (per-worker
// overhead, not per-loop). CI additionally runs these under -race
// with GOMAXPROCS=4, turning any cross-worker write into a failure.
package beyondiv

import (
	"runtime/debug"
	"testing"
	"time"

	"beyondiv/internal/paper"
	"beyondiv/internal/progen"
)

// parCorpus is every program the parallel paths are validated on: the
// full paper corpus plus generated shapes exercising both fan-out axes
// (many sibling loops for the classifier, many array pairs for the
// dependence tester) and the work-size thresholds below which the
// sequential paths must be taken.
func parCorpus() []string {
	srcs := []string{
		progen.Large(2),
		progen.Large(12),
		progen.Large(33),
		progen.MixedClasses(8),
		progen.NestedLoops(4),
		progen.StraightLineLoop(64),
		progen.DepWorkload(3),
		progen.DepWorkload(11),
	}
	for _, p := range paper.Corpus {
		srcs = append(srcs, p.Source)
	}
	return srcs
}

// explainProbes are variable names whose provenance chains the
// determinism test compares across widths; names a program does not
// define explain to the same empty answer on both sides.
var explainProbes = []string{"i", "j", "k", "s0", "q1", "d11", "w000", "acc"}

// TestParallelMatchesSequential: a Parallel=4 analyzer must produce
// byte-identical classification reports, dependence reports and
// provenance renderings to a sequential one on every corpus program —
// the parallel tier's core contract (DESIGN.md §14).
func TestParallelMatchesSequential(t *testing.T) {
	seq := NewAnalyzer(Options{Parallel: 1})
	par := NewAnalyzer(Options{Parallel: 4})
	for i, src := range parCorpus() {
		want, err := seq.Analyze(src)
		if err != nil {
			t.Fatalf("src %d: sequential: %v", i, err)
		}
		got, err := par.Analyze(src)
		if err != nil {
			t.Fatalf("src %d: parallel: %v", i, err)
		}
		if g, w := got.ClassificationReport(), want.ClassificationReport(); g != w {
			t.Errorf("src %d: classification diverges at Parallel=4\n--- sequential ---\n%s\n--- parallel ---\n%s", i, w, g)
		}
		if g, w := got.DependenceReport(), want.DependenceReport(); g != w {
			t.Errorf("src %d: dependences diverge at Parallel=4\n--- sequential ---\n%s\n--- parallel ---\n%s", i, w, g)
		}
		if g, w := got.ExplainAllDeps(), want.ExplainAllDeps(); g != w {
			t.Errorf("src %d: dependence provenance diverges at Parallel=4", i)
		}
		for _, name := range explainProbes {
			if g, w := got.Explain(name), want.Explain(name); g != w {
				t.Errorf("src %d: Explain(%q) diverges at Parallel=4\n--- sequential ---\n%s\n--- parallel ---\n%s", i, name, w, g)
			}
		}
	}
}

// TestParallelAllocOverhead pins the parallel path's allocation
// overhead: per-worker setup (testers, forked recorders, budgets,
// arenas) plus the materialized pair list and result slots, with a
// small per-loop term from the worker-local result maps the merge
// unions back (duplicated map buckets, never duplicated results). The
// measured overhead is ~440 allocs at Large(16) and ~990 at Large(48)
// — about 1.5% of the run — and the ~2× bound fails loudly if per-pair
// or per-value heap churn creeps into the fan-out.
func TestParallelAllocOverhead(t *testing.T) {
	// A GC cycle mid-measurement drops the engine's pooled worker
	// arenas (sync.Pool), and the refilled arenas re-grow their scratch
	// tables — noise proportional to program size that has nothing to
	// do with the fan-out's own behavior. Measure steady state instead.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, n := range []int{12, 36} {
		src := progen.Large(n)
		seqAn := NewAnalyzer(Options{Parallel: 1})
		parAn := NewAnalyzer(Options{Parallel: 4})
		run := func(an *Analyzer) float64 {
			if _, err := an.Analyze(src); err != nil { // warm the arena
				t.Fatal(err)
			}
			return testing.AllocsPerRun(5, func() {
				if _, err := an.Analyze(src); err != nil {
					t.Fatal(err)
				}
			})
		}
		seq, par := run(seqAn), run(parAn)
		overhead := par - seq
		bound := float64(800 + 25*n)
		if raceEnabled {
			// The race detector allocates shadow state on the parallel
			// path (goroutine launches, sync on the fan-out's channels
			// and atomics) roughly in proportion to the fanned-out work,
			// so the tight production bound triples under -race; the run
			// still referees that overhead stays O(workers + loops), not
			// O(pairs) or O(values).
			bound *= 3
		}
		if overhead > bound {
			t.Errorf("Large(%d): parallel overhead %.0f allocs (seq %.0f, par %.0f), want ≤ %.0f",
				n, overhead, seq, par, bound)
		}
		t.Logf("Large(%d): seq %.0f, par %.0f allocs per run (overhead %.0f, bound %.0f)", n, seq, par, overhead, bound)
	}
}

// TestColdAnalyzeBudget pins the post-squeeze cold-analysis cost on the
// paper's E6: the full uncached pipeline must stay within 400
// allocations, and — timing being load-sensitive, checked only without
// the race detector — within 100µs per run at its best.
func TestColdAnalyzeBudget(t *testing.T) {
	src := paper.ByID("E6").Source
	an := NewAnalyzer(Options{})
	if _, err := an.Analyze(src); err != nil { // warm the arena
		t.Fatal(err)
	}
	// Steady state: a GC mid-measurement drops the pooled arena and the
	// refill's table growth would be charged to one unlucky run.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := an.Analyze(src); err != nil {
			t.Fatal(err)
		}
	})
	allocBound := 400.0
	if raceEnabled {
		// Race-detector shadow allocations inflate the count by ~20%;
		// the production bound is the non-race number.
		allocBound *= 1.5
	}
	if allocs > allocBound {
		t.Errorf("cold Analyze(E6) = %.0f allocs per run, want ≤ %.0f", allocs, allocBound)
	}

	if raceEnabled {
		t.Logf("%.0f allocs per run (bound %.0f); timing check skipped under -race", allocs, allocBound)
		return
	}
	const nsBound = 100_000
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		const iters = 50
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := an.Analyze(src); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(start) / iters; d < best {
			best = d
		}
		if best.Nanoseconds() <= nsBound {
			break
		}
	}
	if best.Nanoseconds() > nsBound {
		t.Errorf("cold Analyze(E6) best of 5 = %v per run, want ≤ %v", best, time.Duration(nsBound))
	}
	t.Logf("%.0f allocs per run (bound %.0f), best %v per run (bound %v)",
		allocs, allocBound, best, time.Duration(nsBound))
}
