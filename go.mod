module beyondiv

go 1.22
