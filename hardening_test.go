package beyondiv

import (
	"errors"
	"strings"
	"testing"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
)

// hardeningSrc exercises every pipeline phase: a loop nest, an
// induction variable, and an array recurrence so iv and depend both
// have real work.
const hardeningSrc = `
j = 0
L1: for i = 1 to 10 {
    j = j + i
    a[j] = a[j - 1]
}
`

// allPhases is every phase name the facade can attribute a failure to,
// in pipeline order. "scan" and "parse" are fired inside the parse
// phase; the rest are fired by the facade's per-phase wrapper.
var allPhases = []string{"scan", "parse", "cfgbuild", "ssa", "loops", "sccp", "iv", "depend"}

// assertFlushed checks that containment left the telemetry span tree
// well-formed: the "analyze" root span was closed (a span opened now
// becomes a new root, not a child of a leaked open span).
func assertFlushed(t *testing.T, rec *obs.Recorder) {
	t.Helper()
	roots := rec.Spans()
	if len(roots) == 0 || roots[0].Name != "analyze" {
		t.Fatalf("analyze span missing from telemetry: %v", roots)
	}
	probe := rec.Phase("probe")
	probe.End()
	roots = rec.Spans()
	if roots[len(roots)-1].Name != "probe" {
		t.Errorf("span tree not flushed: a span was left open across containment")
	}
}

// TestFaultInjectionPanics proves that an internal panic in any phase
// is contained: AnalyzeWith returns a *Error naming the phase and
// carrying a stack trace, and telemetry recorded up to the fault
// survives.
func TestFaultInjectionPanics(t *testing.T) {
	for _, phase := range allPhases {
		t.Run(phase, func(t *testing.T) {
			rec := obs.New()
			p, err := AnalyzeWith(hardeningSrc, Options{
				Obs:    rec,
				Limits: guard.Limits{Inject: guard.PanicIn(phase)},
			})
			if p != nil {
				t.Fatalf("got a program despite injected panic in %s", phase)
			}
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("error is not *beyondiv.Error: %T %v", err, err)
			}
			if e.Phase != phase {
				t.Errorf("Phase = %q, want %q", e.Phase, phase)
			}
			if len(e.Stack) == 0 {
				t.Errorf("contained panic carries no stack trace")
			}
			var f *guard.Fault
			if !errors.As(err, &f) || f.Phase != phase {
				t.Errorf("cause is not the injected *guard.Fault: %v", err)
			}
			if !strings.Contains(err.Error(), phase) {
				t.Errorf("rendered error %q does not name the phase", err)
			}
			assertFlushed(t, rec)
		})
	}
}

// TestFaultInjectionLimits proves that a resource-ceiling hit in any
// phase fails closed: a *Error wrapping the *guard.LimitError, with
// phase attribution taken from the limit itself.
func TestFaultInjectionLimits(t *testing.T) {
	for _, phase := range allPhases {
		t.Run(phase, func(t *testing.T) {
			rec := obs.New()
			_, err := AnalyzeWith(hardeningSrc, Options{
				Obs:    rec,
				Limits: guard.Limits{Inject: guard.LimitIn(phase)},
			})
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("error is not *beyondiv.Error: %T %v", err, err)
			}
			if e.Phase != phase {
				t.Errorf("Phase = %q, want %q", e.Phase, phase)
			}
			var le *guard.LimitError
			if !errors.As(err, &le) || le.Phase != phase {
				t.Errorf("cause is not the injected *guard.LimitError: %v", err)
			}
			assertFlushed(t, rec)
		})
	}
}

// TestFaultInjectionLatePhasesSkipped checks a fault armed for a phase
// that never runs (depend under SkipDependences) does not fire.
func TestFaultInjectionLatePhasesSkipped(t *testing.T) {
	_, err := AnalyzeWith(hardeningSrc, Options{
		SkipDependences: true,
		Limits:          guard.Limits{Inject: guard.PanicIn("depend")},
	})
	if err != nil {
		t.Fatalf("depend fault fired despite SkipDependences: %v", err)
	}
}

// TestLimitSourceBytes: oversized input is rejected before scanning.
func TestLimitSourceBytes(t *testing.T) {
	_, err := AnalyzeWith(hardeningSrc, Options{
		Limits: guard.Limits{MaxSourceBytes: 8},
	})
	var e *Error
	if !errors.As(err, &e) || e.Phase != "scan" {
		t.Fatalf("want scan-phase error, got %v", err)
	}
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "source bytes" {
		t.Fatalf("want source-bytes LimitError, got %v", err)
	}
}

// TestLimitNestDepth: deep statement nesting fails with a parse-phase
// limit error instead of exhausting the goroutine stack.
func TestLimitNestDepth(t *testing.T) {
	depth := 300
	src := strings.Repeat("if x < 1 { ", depth) + "y = 1" + strings.Repeat(" }", depth)
	_, err := AnalyzeWith(src, Options{
		Limits: guard.Limits{MaxNestDepth: 16},
	})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "nesting depth" {
		t.Fatalf("want nesting-depth LimitError, got %v", err)
	}
	var e *Error
	if !errors.As(err, &e) || e.Phase != "parse" {
		t.Fatalf("want parse-phase error, got %v", err)
	}
}

// TestLimitSSAValues: the IR-size ceiling trips during construction.
func TestLimitSSAValues(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		sb.WriteString("x = x + 1\n")
	}
	_, err := AnalyzeWith(sb.String(), Options{
		Limits: guard.Limits{MaxSSAValues: 16},
	})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "IR values" {
		t.Fatalf("want IR-values LimitError, got %v", err)
	}
}

// TestLimitLoopDepth: a nest deeper than the ceiling is rejected in
// the iv phase.
func TestLimitLoopDepth(t *testing.T) {
	src := `
for i = 1 to 3 {
    for j = 1 to 3 {
        for k = 1 to 3 {
            a[k] = a[k] + 1
        }
    }
}
`
	_, err := AnalyzeWith(src, Options{
		Limits: guard.Limits{MaxLoopDepth: 2},
	})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "loop depth" {
		t.Fatalf("want loop-depth LimitError, got %v", err)
	}
	var e *Error
	if !errors.As(err, &e) || e.Phase != "iv" {
		t.Fatalf("want iv-phase error, got %v", err)
	}
}

// TestLimitPhaseSteps: a tiny work budget stops the first metered
// phase with a structured error rather than running long.
func TestLimitPhaseSteps(t *testing.T) {
	_, err := AnalyzeWith(hardeningSrc, Options{
		Limits: guard.Limits{MaxPhaseSteps: 2},
	})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "phase steps" {
		t.Fatalf("want phase-steps LimitError, got %v", err)
	}
}

// TestLimitUnlimited: guard.Unlimited disables a check explicitly.
func TestLimitUnlimited(t *testing.T) {
	p, err := AnalyzeWith(hardeningSrc, Options{
		Limits: guard.Limits{MaxSourceBytes: guard.Unlimited},
	})
	if err != nil || p == nil {
		t.Fatalf("Unlimited source bytes rejected valid input: %v", err)
	}
}

// TestErrorPosition: syntax errors surface the source position through
// the structured error.
func TestErrorPosition(t *testing.T) {
	_, err := AnalyzeWith("x = 1 +\n", Options{})
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("syntax error is not *beyondiv.Error: %T %v", err, err)
	}
	if e.Phase != "parse" && e.Phase != "scan" {
		t.Errorf("Phase = %q, want scan or parse", e.Phase)
	}
	if e.Pos.IsZero() {
		t.Errorf("input diagnostic lost its position: %v", err)
	}
}
