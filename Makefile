GO ?= go

.PHONY: check build vet test test-race bench repro clean

# The full gate: what CI (and every PR) must pass.
check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Re-derive every figure and table of the paper.
repro:
	$(GO) run ./cmd/paperrepro -q

clean:
	$(GO) clean ./...
