GO ?= go

.PHONY: check build fmt vet test test-race bench bench-par bench-restructure bench-serve bench-incremental bench-smoke repro fuzz-smoke clean

# The full gate: what CI (and every PR) must pass.
check: build fmt vet test-race

# gofmt as a check: fails listing any file that is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Runs every benchmark, then re-measures the engine's headline numbers
# (cold vs warm cache, sequential vs 4-worker batch) into
# BENCH_engine.json, the dense-ID hot-path deltas (cold ns/op and
# allocs/op against the pre-rework baseline) into BENCH_hotpath.json,
# and the transformation layer's cost profile (Optimize vs Analyze,
# validation overhead, clone vs frontend rebuild) into BENCH_xform.json,
# and the process-metrics tier's cost (identical analysis loops with
# and without a registry and flight recorder, plus a snapshot of what
# the instrumented loop recorded) into BENCH_obs.json.
bench: bench-serve bench-incremental bench-par bench-restructure
	$(GO) test -bench=. -benchmem .
	BENCH_JSON=BENCH_engine.json $(GO) test -run '^TestEngineBenchArtifact$$' -v .
	BENCH_JSON=BENCH_hotpath.json $(GO) test -run '^TestHotpathBenchArtifact$$' -v .
	BENCH_JSON=BENCH_xform.json $(GO) test -run '^TestXformBenchArtifact$$' -v .
	BENCH_JSON=BENCH_obs.json $(GO) test -count=1 -run '^TestObsBenchArtifact$$' -v .

# Intra-run parallel tier: one large analysis sequential vs Parallel=4,
# plus the small-program no-regression guard, with gomaxprocs/num_cpu
# recorded into BENCH_par.json. Speedup assertions only bind on
# multi-CPU hosts; the artifact is honest either way.
bench-par:
	BENCH_JSON=BENCH_par.json $(GO) test -count=1 -run '^TestParBenchArtifact$$' -v .

# Restructuring payoff: the relaxation stencil and the interchanged
# column stencil executed sequentially vs chunked across 4 workers,
# with the pipeline first asserted to prove the marks being exploited.
# Timings and speedups land in BENCH_restructure.json; the speedup
# floor only binds on 4+ CPU hosts (skipped, never faked, on fewer).
bench-restructure:
	BENCH_JSON=BENCH_restructure.json $(GO) test -count=1 -run '^TestRestructureBenchArtifact$$' -v .

# Persistent-store scenarios across simulated process restarts: cold
# corpus analysis vs a 1-of-N-file edit vs a fully warm restart, with
# the store-counter invariants (one re-analysis on edit, zero on warm)
# asserted and the timings written to BENCH_incremental.json.
bench-incremental:
	BENCH_JSON=BENCH_incremental.json $(GO) test -count=1 -run '^TestIncrementalBenchArtifact$$' -v .

# Chaos run against an in-process bivd-shaped server: the hostile
# traffic mix (injected faults, guard trips, slow-loris, mid-request
# hangups) with latency percentiles, shed rate and the error taxonomy
# written to BENCH_serve.json.
bench-serve:
	BENCH_JSON=$(CURDIR)/BENCH_serve.json $(GO) test -count=1 -run '^TestChaosLoadBenchArtifact$$' -v ./internal/serve/

# One short iteration of every benchmark, no JSON artifacts: keeps the
# benchmark code compiling and running in CI without timing assertions.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x .

# Re-derive every figure and table of the paper.
repro:
	$(GO) run ./cmd/paperrepro -q

# Short fuzzing pass over each target; CI runs this on every PR.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz FuzzAnalyze -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzInterpreters -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzRun -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzArtifactCodec -fuzztime $(FUZZTIME) -run '^$$' ./internal/codec/

clean:
	$(GO) clean ./...
