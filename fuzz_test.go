package beyondiv

import (
	"errors"
	"strings"
	"testing"

	"beyondiv/internal/interp"
	"beyondiv/internal/parse"
)

// Fuzz targets. `go test` runs the seed corpus as ordinary tests;
// `go test -fuzz FuzzAnalyze` explores further. The invariant under
// fuzzing is "no panic, and anything that parses also analyzes".

var fuzzSeeds = []string{
	"",
	"i = 1",
	"for i = 1 to n { a[i] = a[i-1] }",
	"loop { i = i + 1\nif i > 3 { exit } }",
	"while x < 9 { x = x * 2 }",
	"if a > 1 { b = 2 } else { b = 3 }",
	"j = 1\nk = 2\nfor t = 1 to n { x = j\nj = k\nk = x }",
	"for i = 1 to n { for j = 1 to i { s = s + 1 } }",
	"m = 0\nfor i = 1 to 9 { m = 3 * m + 2 * i + 1 }",
	"x = 2 ** 3 ** 2",
	"for i = -3 to -1 by -0 { a[-i] = 0 }",
	"L:loop{exit}",
	"a[a[a[1]]] = a[a[2]]",
	"i=1;;;;j=2",
	"for i = 1 to 3 { exit }",
	"x = 1 +",  // parse error
	"} {",      // parse error
	"\x00\xff", // scanner garbage
}

// adversarialSeeds are inputs crafted against the hardened front end:
// resource exhaustion (deep nesting, huge loops, exponent blow-ups)
// and int64 edge cases. With default guard.Limits in force each must
// finish quickly with a clean result or a structured error.
func adversarialSeeds() []string {
	return []string{
		"k = 7 ** 99",                                                     // fold would overflow int64
		"k = 2 ** 9223372036854775807",                                    // naive pow loop would never return
		"x = 9223372036854775807 + 1",                                     // MaxInt64 overflow in folding
		"x = (0 - 9223372036854775807) / -1",                              // near-MinInt64 division
		"for i = 0 to 9223372036854775807 { a[i] = i }",                   // 2^63 iterations
		"s = 0\nfor i = 1 to 5 { s = s + 4611686018427387904\na[s] = i }", // wrapping sum subscript
		"L1: for i = 1 to 10 { a[4611686018427387904 * i] = a[2305843009213693952 * i] }",
		"loop { x = x + 1 }",                                                     // no exit: interp step limits must hold
		strings.Repeat("if x < 1 { ", 200) + "y = 1" + strings.Repeat(" }", 200), // deep statement nest
		"z = " + strings.Repeat("(", 150) + "1" + strings.Repeat(")", 150),       // deep expression nest
		"w = 1" + strings.Repeat(" + 1", 400),                                    // wide expression
	}
}

// FuzzAnalyze throws arbitrary bytes at the full pipeline. Analyze
// enforces guard.Default limits, so hostile input must produce a
// structured error or a sound result — never a panic or a hang.
func FuzzAnalyze(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, s := range adversarialSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := Analyze(src)
		if err != nil {
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("unstructured error %T: %v", err, err)
			}
			return // structured errors are fine; panics are not
		}
		_ = prog.ClassificationReport()
		_ = prog.DependenceReport()
	})
}

// FuzzRun drives Program.Run on analyzed fuzz inputs under an explicit
// step ceiling: execution must terminate (result, runtime error, or
// ErrStepLimit) and never panic, whatever the program does.
func FuzzRun(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s, int64(6))
	}
	for _, s := range adversarialSeeds() {
		f.Add(s, int64(3))
	}
	f.Fuzz(func(t *testing.T, src string, n int64) {
		if len(src) > 1<<12 {
			return
		}
		prog, err := AnalyzeWith(src, Options{SkipDependences: true})
		if err != nil {
			return
		}
		res, err := prog.RunSteps(map[string]int64{"n": n, "m": n}, 20_000)
		if err != nil {
			return // step-limit and runtime errors are the contract
		}
		if res == nil {
			t.Fatalf("nil result with nil error")
		}
	})
}

// FuzzInterpreters checks that any program that parses runs identically
// under the AST and SSA interpreters (within a small budget).
func FuzzInterpreters(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, s := range adversarialSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		file, err := parse.File(src)
		if err != nil {
			return
		}
		cfg := interp.Config{Params: map[string]int64{"n": 6, "m": 9}, MaxSteps: 20_000}
		ra, errA := interp.RunAST(file, cfg)

		prog, err := AnalyzeWith(src, Options{SkipDependences: true})
		if err != nil {
			t.Fatalf("parsed but did not analyze: %v", err)
		}
		rs, errB := interp.RunSSA(prog.SSA, cfg)
		if errA == interp.ErrStepLimit || errB == interp.ErrStepLimit {
			return // budgets are metered differently; inconclusive
		}
		if (errA != nil) != (errB != nil) {
			t.Fatalf("interpreter errors diverge: ast=%v ssa=%v", errA, errB)
		}
		if errA != nil {
			return
		}
		if len(ra.Writes) != len(rs.Writes) {
			t.Fatalf("write traces diverge: %d vs %d", len(ra.Writes), len(rs.Writes))
		}
		for i := range ra.Writes {
			if ra.Writes[i] != rs.Writes[i] {
				t.Fatalf("write %d diverges: %v vs %v", i, ra.Writes[i], rs.Writes[i])
			}
		}
	})
}
