package beyondiv

import (
	"testing"

	"beyondiv/internal/interp"
	"beyondiv/internal/parse"
)

// Fuzz targets. `go test` runs the seed corpus as ordinary tests;
// `go test -fuzz FuzzAnalyze` explores further. The invariant under
// fuzzing is "no panic, and anything that parses also analyzes".

var fuzzSeeds = []string{
	"",
	"i = 1",
	"for i = 1 to n { a[i] = a[i-1] }",
	"loop { i = i + 1\nif i > 3 { exit } }",
	"while x < 9 { x = x * 2 }",
	"if a > 1 { b = 2 } else { b = 3 }",
	"j = 1\nk = 2\nfor t = 1 to n { x = j\nj = k\nk = x }",
	"for i = 1 to n { for j = 1 to i { s = s + 1 } }",
	"m = 0\nfor i = 1 to 9 { m = 3 * m + 2 * i + 1 }",
	"x = 2 ** 3 ** 2",
	"for i = -3 to -1 by -0 { a[-i] = 0 }",
	"L:loop{exit}",
	"a[a[a[1]]] = a[a[2]]",
	"i=1;;;;j=2",
	"for i = 1 to 3 { exit }",
	"x = 1 +",  // parse error
	"} {",      // parse error
	"\x00\xff", // scanner garbage
}

// FuzzAnalyze throws arbitrary bytes at the full pipeline.
func FuzzAnalyze(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		prog, err := Analyze(src)
		if err != nil {
			return // parse/verify errors are fine; panics are not
		}
		_ = prog.ClassificationReport()
		_ = prog.DependenceReport()
	})
}

// FuzzInterpreters checks that any program that parses runs identically
// under the AST and SSA interpreters (within a small budget).
func FuzzInterpreters(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		file, err := parse.File(src)
		if err != nil {
			return
		}
		cfg := interp.Config{Params: map[string]int64{"n": 6, "m": 9}, MaxSteps: 20_000}
		ra, errA := interp.RunAST(file, cfg)

		prog, err := AnalyzeWith(src, Options{SkipDependences: true})
		if err != nil {
			t.Fatalf("parsed but did not analyze: %v", err)
		}
		rs, errB := interp.RunSSA(prog.SSA, cfg)
		if errA == interp.ErrStepLimit || errB == interp.ErrStepLimit {
			return // budgets are metered differently; inconclusive
		}
		if (errA != nil) != (errB != nil) {
			t.Fatalf("interpreter errors diverge: ast=%v ssa=%v", errA, errB)
		}
		if errA != nil {
			return
		}
		if len(ra.Writes) != len(rs.Writes) {
			t.Fatalf("write traces diverge: %d vs %d", len(ra.Writes), len(rs.Writes))
		}
		for i := range ra.Writes {
			if ra.Writes[i] != rs.Writes[i] {
				t.Fatalf("write %d diverges: %v vs %v", i, ra.Writes[i], rs.Writes[i])
			}
		}
	})
}
