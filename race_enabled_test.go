//go:build race

package beyondiv

// raceEnabled reports whether this test binary was built with the race
// detector, whose 5–20× slowdown makes wall-clock budgets meaningless.
const raceEnabled = true
