package beyondiv

// The persistence bridge between the facade and the engine's disk tier:
// buildArtifact is the engine's Config.BuildArtifact hook. It renders
// every cacheable view of a freshly analyzed state into a
// codec.Artifact, then runs the differential rename check — re-analyze
// an α-renamed twin of the same program on a bare engine and let
// codec.Encode align the two renderings — so the stored entry can serve
// α-renamed duplicates byte-identically when, and only when, alignment
// proves that safe.

import (
	"encoding/json"
	"errors"
	"slices"

	"beyondiv/internal/codec"
	"beyondiv/internal/engine"
)

// artifactOf renders the cacheable subset of a live analyzed state: the
// classification and dependence reports, the dependence provenance, the
// structured report JSON, and one provenance chain per explainable name
// (iv.ExplainKeys order — structural, so a twin's entries align
// position by position).
func artifactOf(st *engine.State) (*codec.Artifact, []string, error) {
	p := programOf(st)
	if p.IV == nil || st.File == nil {
		return nil, nil, errors.New("beyondiv: state has no live analysis to serialize")
	}
	js, err := json.Marshal(p.IV.ReportData())
	if err != nil {
		return nil, nil, err
	}
	a := &codec.Artifact{
		Classification: p.ClassificationReport(),
		HasDeps:        p.Deps != nil,
		Dependences:    p.DependenceReport(),
		ExplainDeps:    p.ExplainAllDeps(),
		ReportJSON:     string(js),
	}
	for _, key := range p.IV.ExplainKeys() {
		a.Explains = append(a.Explains, codec.ExplainEntry{Name: key, Text: p.IV.ExplainVar(key)})
	}
	_, names := codec.StructuralHash(st.File)
	return a, names, nil
}

// buildArtifact serializes st for the disk store. The twin analysis is
// best-effort: any failure — a table too large to code, a twin that
// does not analyze, a rendering that will not align — just downgrades
// the entry to literal-only storage (exact for identical name tables)
// rather than failing the write.
func buildArtifact(st *engine.State, bare *engine.Engine) ([]byte, error) {
	a, names, err := artifactOf(st)
	if err != nil {
		return nil, err
	}
	sum, _ := codec.StructuralHash(st.File)
	var twin *codec.Artifact
	twinNames := codec.RenameTable(names)
	if twinNames != nil {
		src := codec.RewriteSource(st.File.String(), names, twinNames)
		if tst, terr := bare.Analyze(src); terr == nil && tst.File != nil {
			// The twin must be a true α-rename: same structural hash
			// (labels are hashed literally, so a variable that shares a
			// loop label's name — whose rewrite would corrupt the label
			// text in every report — fails here), renamed table as built.
			if tsum, tnames := codec.StructuralHash(tst.File); tsum == sum && slices.Equal(tnames, twinNames) {
				if ta, _, aerr := artifactOf(tst); aerr == nil {
					twin = ta
				}
			}
		}
	}
	if twin == nil {
		twinNames = nil
	}
	return codec.Encode(a, names, twin, twinNames), nil
}
