// Quickstart: analyze a small loop nest and print everything the
// library computes — classifications in the paper's tuple notation,
// trip counts, and data dependences.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"beyondiv"
)

const program = `
// A sum that is secretly quadratic, plus a recurrence over array a.
j = 0
L1: for i = 1 to n {
    j = j + i
    a[j] = a[j - 1] + i
}

// A doubling search.
x = 1
L2: while x < n {
    x = x * 2 + 1
}
`

func main() {
	prog, err := beyondiv.Analyze(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classifications ==")
	fmt.Print(prog.ClassificationReport())

	fmt.Println("\n== dependences ==")
	fmt.Print(prog.DependenceReport())

	// The analysis is executable too: run the program and check the
	// classifier's closed form j(h) = h/2 + h²/2 against reality.
	res, err := prog.Run(map[string]int64{"n": 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted with n=10: j = %d (closed form at h=10: 10/2 + 100/2 = 55)\n",
		res.Scalars["j"])
}
