// Triangular: the generalized-induction-variable case §5.3 highlights
// as "found to be so difficult" in earlier work (the [EHLP92] Perfect-
// benchmark study): a counter accumulated across a triangular inner
// loop is a *quadratic* induction variable of the outer loop. The
// classifier derives the exact rational closed form, which this example
// verifies against execution for several problem sizes.
//
// Run with:
//
//	go run ./examples/triangular
package main

import (
	"fmt"
	"log"

	"beyondiv"
)

const program = `
j = 0
L19: for i = 1 to n {
    j = j + i
    L20: for k = 1 to i {
        j = j + 1
        a[j] = i
    }
}
`

func main() {
	prog, err := beyondiv.Analyze(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classifications ==")
	fmt.Print(prog.ClassificationReport())

	l19 := prog.IV.LoopByLabel("L19")
	l20 := prog.IV.LoopByLabel("L20")
	j2 := prog.IV.ValueByName("j2")
	cls := prog.IV.ClassOf(l19, j2)
	fmt.Printf("\nouter header value j2 = %s  (j2(h) = h + h²)\n", cls)
	fmt.Printf("inner trip count: %s  (the outer induction variable itself)\n",
		prog.IV.TripCount(l20))
	j4 := prog.IV.ValueByName("j4")
	fmt.Printf("inner member with substituted outer tuple: %s\n",
		prog.IV.NestedString(prog.IV.ClassOf(l20, j4)))

	// Verify the closed form against execution: after the loop,
	// j = n + 2·(1+2+...+n) = n + n(n+1) ... evaluated per run.
	fmt.Println("\nn   executed j   closed form h+h² at h=n")
	for n := int64(1); n <= 8; n++ {
		res, err := prog.Run(map[string]int64{"n": n})
		if err != nil {
			log.Fatal(err)
		}
		predicted, ok := cls.PolyEval(n)
		if !ok {
			log.Fatal("no closed form")
		}
		pv, _ := predicted.Int()
		status := "ok"
		if res.Scalars["j"] != pv {
			status = "MISMATCH"
		}
		fmt.Printf("%-3d %-12d %-12d %s\n", n, res.Scalars["j"], pv, status)
	}
}
