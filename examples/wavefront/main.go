// Wavefront: the transformation story §6.1 closes with. A 2-D
// recurrence like
//
//	a[i][j] = a[i-1][j] + a[i][j-1]
//
// carries distances (1,0) and (0,1): neither loop parallelizes as
// written, interchange is legal but does not help, and the classic fix
// is skewing — which the paper notes should be found together with
// interchange as a single unimodular transformation. This example runs
// the whole chain: classify, test dependences, extract distance
// vectors, and search for the unimodular matrix.
//
// Run with:
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"log"

	"beyondiv"
	"beyondiv/internal/depend"
)

const program = `
L1: for i = 1 to 64 {
    L2: for j = 1 to 64 {
        a[i * 100 + j] = a[i * 100 + j - 100] + a[i * 100 + j - 1]
    }
}
`

func main() {
	prog, err := beyondiv.Analyze(program)
	if err != nil {
		log.Fatal(err)
	}
	outer := prog.IV.LoopByLabel("L1")
	inner := prog.IV.LoopByLabel("L2")

	fmt.Println("== dependences ==")
	fmt.Print(prog.DependenceReport())

	for _, l := range []string{"L1", "L2"} {
		loop := prog.IV.LoopByLabel(l)
		ok, blocking := depend.Parallelizable(prog.Deps, loop)
		fmt.Printf("\nparallelize %s? %v", l, ok)
		if !ok {
			fmt.Printf(" (carried: %d dependences, e.g. %s)", len(blocking), blocking[0])
		}
	}

	okSwap, _ := depend.InterchangeLegal(prog.Deps, outer, inner)
	fmt.Printf("\ninterchange legal? %v\n", okSwap)

	dists, ok := depend.DistanceVectors2(prog.Deps, outer, inner)
	if !ok {
		log.Fatal("no exact distance vectors")
	}
	fmt.Printf("distance vectors: %v\n", dists)

	// After skewing by f, the transformed inner distances become
	// strictly positive in the outer component only — the inner loop of
	// the transformed nest carries nothing and parallelizes (the
	// wavefront sweeps diagonals).
	tm, found := depend.FindSkewedInterchange(dists, 4)
	if !found {
		log.Fatal("no unimodular repair found")
	}
	fmt.Printf("unimodular transformation (skew, then interchange): %s\n", tm)
	for _, d := range dists {
		td, _ := tm.Apply(d)
		fmt.Printf("  %v -> %v", d, td)
		if td[0] > 0 {
			fmt.Printf("   carried by the new outer loop only\n")
		} else {
			fmt.Printf("\n")
		}
	}
	fmt.Println("=> the transformed inner loop runs the anti-diagonals in parallel.")
}
