// Relaxation: the use case that motivates §4.2. Stencil codes ping-pong
// between two buffer planes, selecting them with flip-flop variables
// (a swap, or j = 3 - j). A compiler that proves the selectors are
// *periodic with known distinct rings* can show that a write through
// one selector never collides with a read through the other in the
// same sweep: the `=` direction translates to a distance ≡ 1 (mod 2)
// constraint (§6, loop L22), so consecutive sweeps — not iterations
// within a sweep — are the only carriers of the dependence.
//
// Run with:
//
//	go run ./examples/relaxation
package main

import (
	"fmt"
	"log"

	"beyondiv"
	"beyondiv/internal/depend"
)

const program = `
cur = 1
old = 2
L1: for sweep = 1 to 12 {
    // Sweep bookkeeping subscripted directly by the selectors: the
    // paper's A(2j) = A(2k) pattern.
    state[2 * cur] = state[2 * old] + sweep
    // The stencil itself; the plane rows are selected by cur/old.
    L2: for i = 1 to 48 {
        plane[cur * 64 + i] = plane[old * 64 + i] + 1
    }
    t = cur
    cur = old
    old = t
}
`

func main() {
	prog, err := beyondiv.Analyze(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classifications (cur/old: one periodic family, period 2) ==")
	fmt.Print(prog.ClassificationReport())

	fmt.Println("\n== dependences ==")
	fmt.Print(prog.DependenceReport())

	// The payoff on the selector-subscripted accesses: every flow/anti
	// dependence on `state` carries distance ≡ 1 (mod 2) — no
	// same-sweep conflict, successive sweeps chain as expected.
	sameSweepSafe := true
	for _, d := range prog.Deps.Deps {
		if d.Src.Array != "state" || d.Kind == depend.Output {
			continue
		}
		if d.Modulus != 2 || d.Residue != 1 {
			sameSweepSafe = false
		}
		for _, dir := range d.Dirs {
			if dir&depend.DirEQ != 0 {
				sameSweepSafe = false
			}
		}
	}
	if sameSweepSafe {
		fmt.Println("\n=> state[]: reads and writes are provably one sweep apart (distance ≡ 1 mod 2).")
	} else {
		fmt.Println("\n=> unexpected same-sweep conflict on state[]")
	}

	// The plane[] subscripts mix the periodic selector into an affine
	// subscript; slot enumeration proves the two planes never alias
	// within a sweep either.
	planeSafe := true
	for _, d := range prog.Deps.Deps {
		if d.Src.Array != "plane" || d.Kind == depend.Output {
			continue
		}
		for _, dir := range d.Dirs[:1] {
			if dir&depend.DirEQ != 0 {
				planeSafe = false
			}
		}
	}
	if planeSafe {
		fmt.Println("=> plane[]: the flip-selected rows never alias within a sweep; the")
		fmt.Println("   inner stencil loop parallelizes.")
	} else {
		fmt.Println("=> unexpected same-sweep plane conflict")
	}

	// Execute the sweeps to watch the ping-pong.
	res, err := prog.Run(nil)
	if err != nil {
		log.Fatal(err)
	}
	writes := map[string]int{}
	for _, w := range res.Writes {
		writes[w.Array]++
	}
	fmt.Printf("\nafter 12 sweeps over w=48: %d plane writes, %d state writes, cur=%d old=%d\n",
		writes["plane"], writes["state"], res.Scalars["cur"], res.Scalars["old"])
}
