// Packing: §4.4's motivating pattern. A loop that conditionally copies
// positive values from one vector into the next free slot of another
// cannot have a classical induction variable as its write index — but
// the index is *strictly monotonic*, so every b[k] write hits a fresh
// cell: the output dependence disappears and the compacted stores can
// be reordered or vectorized with a scatter.
//
// Run with:
//
//	go run ./examples/packing
package main

import (
	"fmt"
	"log"

	"beyondiv"
	"beyondiv/internal/depend"
)

const program = `
k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
    }
}
`

func main() {
	prog, err := beyondiv.Analyze(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== classifications ==")
	fmt.Print(prog.ClassificationReport())
	fmt.Println("\n== dependences ==")
	fmt.Print(prog.DependenceReport())

	// The paper's point: b[k3] with k3 strictly monotonic means the
	// only dependence on b is loop-independent — no two iterations
	// write the same slot.
	for _, d := range prog.Deps.Deps {
		if d.Src.Array == "b" && d.Kind == depend.Output {
			log.Fatalf("unexpected output dependence on b: %s", d)
		}
	}
	fmt.Println("\n=> no output dependence on b: the packed stores all land on distinct cells.")

	// Run it on the default pseudo-random input (values in -3..3).
	res, err := prog.Run(map[string]int64{"n": 12})
	if err != nil {
		log.Fatal(err)
	}
	packed := 0
	for _, w := range res.Writes {
		if w.Array == "b" {
			packed++
		}
	}
	fmt.Printf("\nexecuted with n=12: packed %d positive elements (k = %d)\n",
		packed, res.Scalars["k"])
}
