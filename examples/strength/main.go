// Strength: the transformation the term "induction variable" was coined
// for (§1). The classifier's linear families drive two rewrites here:
//
//  1. strength reduction — the 2-D address computation 64*i + j is
//     replaced by an addition-maintained induction variable, measured by
//     counting multiplications actually executed before and after;
//  2. wrap-around peeling (§4.1) — peeling one iteration turns the
//     wrap-around iml into a plain induction variable of the residual
//     loop, visible in its classification.
//
// Run with:
//
//	go run ./examples/strength
package main

import (
	"fmt"
	"log"

	"beyondiv"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/parse"
	"beyondiv/internal/ssa"
	"beyondiv/internal/xform"
)

const addressLoop = `
L1: for i = 1 to n {
    L2: for j = 1 to n {
        a[64 * i + j] = a[64 * i + j - 64] + j
    }
}
`

const wrapLoop = `
iml = n
L9: for i = 1 to n {
    a[i] = a[iml] + 1
    iml = i
}
`

func countMuls(info *ssa.Info) int {
	muls := 0
	_, err := interp.RunSSAHooked(info, interp.Config{Params: map[string]int64{"n": 32}},
		interp.Hooks{OnEval: func(v *ir.Value, val int64) {
			if v.Op == ir.OpMul {
				muls++
			}
		}})
	if err != nil {
		log.Fatal(err)
	}
	return muls
}

func main() {
	// Part 1: strength reduction.
	prog, err := beyondiv.AnalyzeWith(addressLoop, beyondiv.Options{SkipDependences: true})
	if err != nil {
		log.Fatal(err)
	}
	before := countMuls(prog.SSA)
	reduced := xform.ReduceStrength(prog.IV)
	if errs := ssa.Verify(prog.SSA); len(errs) != 0 {
		log.Fatal("SSA broken:", errs[0])
	}
	after := countMuls(prog.SSA)
	fmt.Printf("strength reduction: rewrote %d multiplications\n", reduced)
	fmt.Printf("  executed multiplies at n=32: %d before, %d after (%.1fx fewer)\n",
		before, after, float64(before)/float64(max(after, 1)))

	// Part 2: wrap-around peeling.
	base, err := beyondiv.AnalyzeWith(wrapLoop, beyondiv.Options{SkipDependences: true})
	if err != nil {
		log.Fatal(err)
	}
	l9 := base.IV.LoopByLabel("L9")
	imlBefore := classOfVar(base.IV, l9.Header, "iml")
	fmt.Printf("\nwrap-around peeling:\n  before: iml = %s\n", imlBefore)

	file, err := parse.File(wrapLoop)
	if err != nil {
		log.Fatal(err)
	}
	peeled, _ := xform.PeelProgram(file, map[string]bool{"L9": true})
	after2, err := beyondiv.AnalyzeWith(peeled.String(), beyondiv.Options{SkipDependences: true})
	if err != nil {
		log.Fatal(err)
	}
	rl := after2.IV.LoopByLabel("L9")
	fmt.Printf("  after:  iml = %s (a plain induction variable, as §4.1 promises)\n",
		classOfVar(after2.IV, rl.Header, "iml"))
}

// classOfVar finds the header φ for the named variable and classifies it.
func classOfVar(a *iv.Analysis, header *ir.Block, name string) *iv.Classification {
	for _, v := range header.Values {
		if v.Op == ir.OpPhi && a.SSA.VarOf(v) == name {
			return a.ClassOf(a.Forest.ByHeader(header), v)
		}
	}
	return nil
}
