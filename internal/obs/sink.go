package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText renders the recording as an indented span tree followed by
// the counter table. withTimings false suppresses durations and alloc
// counts so the output is deterministic (golden tests, docs).
func (r *Recorder) WriteText(w io.Writer, withTimings bool) error {
	if r == nil {
		return nil
	}
	bw := &errWriter{w: w}
	spans := r.Spans()
	if len(spans) > 0 {
		bw.printf("== phases ==\n")
		for _, s := range spans {
			writeSpanText(bw, s, 0, withTimings)
		}
	}
	if names := r.CounterNames(); len(names) > 0 {
		bw.printf("== counters ==\n")
		for _, name := range names {
			bw.printf("%-44s %8d\n", name, r.Counter(name))
		}
	}
	return bw.err
}

func writeSpanText(bw *errWriter, s *Span, depth int, withTimings bool) {
	indent := strings.Repeat("  ", depth)
	if withTimings {
		bw.printf("%s%-*s %10.3fms %10d allocs\n", indent, 24-2*depth, s.Name,
			float64(s.Dur.Microseconds())/1000, s.Allocs)
	} else {
		bw.printf("%s%s\n", indent, s.Name)
	}
	for _, c := range s.Children {
		writeSpanText(bw, c, depth+1, withTimings)
	}
}

// jsonlEvent is one JSONL record; Type is "span", "counter" or
// "decision".
type jsonlEvent struct {
	Type    string `json:"type"`
	Name    string `json:"name,omitempty"`
	Path    string `json:"path,omitempty"`
	StartUS int64  `json:"start_us,omitempty"`
	DurUS   int64  `json:"dur_us,omitempty"`
	Allocs  uint64 `json:"allocs,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Subject string `json:"subject,omitempty"`
	Rule    string `json:"rule,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// WriteJSONL renders the recording as one JSON object per line: spans
// (depth-first, with their slash-joined path), then counters in name
// order, then decisions in event order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	var walk func(s *Span, prefix string) error
	walk = func(s *Span, prefix string) error {
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		ev := jsonlEvent{
			Type: "span", Name: s.Name, Path: path,
			StartUS: s.Start.Microseconds(), DurUS: s.Dur.Microseconds(),
			Allocs: s.Allocs,
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range r.Spans() {
		if err := walk(s, ""); err != nil {
			return err
		}
	}
	for _, name := range r.CounterNames() {
		if err := enc.Encode(jsonlEvent{Type: "counter", Name: name, Value: r.Counter(name)}); err != nil {
			return err
		}
	}
	for _, d := range r.Decisions() {
		if err := enc.Encode(jsonlEvent{Type: "decision", Subject: d.Subject, Rule: d.Rule, Detail: d.Detail}); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event object ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans in the Chrome trace-event JSON array
// format (load the file in chrome://tracing or https://ui.perfetto.dev).
// Spans keep the thread id of the recorder that opened them, so spans
// absorbed from batch-worker forks render as parallel tracks; each
// track is labeled with a thread_name metadata event. Counters are
// attached as args of a final zero-length marker event.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	var events []chromeEvent
	tids := map[int]bool{}
	var walk func(s *Span)
	walk = func(s *Span) {
		tid := s.TID
		if tid == 0 {
			tid = 1
		}
		tids[tid] = true
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X",
			TS: s.Start.Microseconds(), Dur: s.Dur.Microseconds(),
			PID: 1, TID: tid,
			Args: map[string]string{"allocs": fmt.Sprintf("%d", s.Allocs)},
		})
		for _, c := range s.Children {
			walk(c)
		}
	}
	var end int64
	for _, s := range r.Spans() {
		walk(s)
		if e := s.Start.Microseconds() + s.Dur.Microseconds(); e > end {
			end = e
		}
	}
	meta := make([]chromeEvent, 0, len(tids))
	for tid := range tids {
		name := "main"
		if tid != 1 {
			name = fmt.Sprintf("fork %d", tid)
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	sort.Slice(meta, func(i, j int) bool { return meta[i].TID < meta[j].TID })
	events = append(meta, events...)
	if names := r.CounterNames(); len(names) > 0 {
		args := make(map[string]string, len(names))
		for _, name := range names {
			args[name] = fmt.Sprintf("%d", r.Counter(name))
		}
		events = append(events, chromeEvent{Name: "counters", Ph: "i", TS: end, PID: 1, TID: 1, Args: args})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// errWriter latches the first write error so render loops stay simple.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
