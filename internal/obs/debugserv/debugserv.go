// Package debugserv is the live introspection endpoint of the
// observability stack: a small opt-in HTTP server that exposes the
// process-lifetime metrics.Registry, the flight recorder of recent
// analyses, Go's pprof profiles and a health probe. Every command
// grows a -debug-addr flag (via cliutil) that starts one; with the
// flag unset nothing listens and nothing is paid.
//
// Routes:
//
//	/metrics   registry snapshot — Prometheus text 0.0.4 by default,
//	           JSON with ?format=json (or an Accept: application/json
//	           header)
//	/healthz   real process state, JSON: ok/draining, uptime, and —
//	           when the owner supplies a Health callback — admission
//	           counts; draining answers 503 so load balancers stop
//	           routing to a process that is shutting down
//	/lastruns  flight-recorder contents — the last N analyses and the
//	           last M failed ones, JSON
//	/debug/pprof/...  net/http/pprof as usual
//
// A process that serves its own API (cmd/bivd) mounts it on this same
// mux via Options.Routes, so one port carries both the service and its
// debug surface — there is never a second listener to firewall or
// forget.
package debugserv

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"beyondiv/internal/obs/metrics"
)

// Server is a running debug endpoint. Close it to release the port.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Health is the process state /healthz reports. State is "ok" while
// the process admits work and "draining" once shutdown has begun (the
// endpoint then answers 503, telling load balancers to stop routing
// here). The remaining fields describe the admission pipeline of the
// process embedding the server; a plain debug endpoint leaves them
// zero.
type Health struct {
	State    string `json:"state"`
	UptimeMS int64  `json:"uptime_ms"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
}

// Options extends Serve for processes that embed the debug server.
type Options struct {
	// Health, when non-nil, supplies the live process state behind
	// /healthz: draining vs ok, in-flight and queued request counts.
	// Nil reports a static "ok" — right for short-lived commands.
	Health func() Health
	// Routes, when non-nil, registers additional handlers on the
	// server's mux before it starts serving. cmd/bivd mounts its /v1
	// API here, so the service and its debug surface share one port
	// (and one lifecycle) instead of binding a second listener.
	Routes func(mux *http.ServeMux)
	// ReadTimeout bounds how long one request may take to arrive in
	// full, headers and body: a slow-loris client is cut off at this
	// deadline instead of holding a connection (and, once admitted, a
	// worker slot) open indefinitely. Zero means no limit.
	ReadTimeout time.Duration
}

// Serve starts the debug server on addr (":0" picks a free port).
// reg and fl may be nil; the corresponding endpoints then serve empty
// documents rather than erroring, so the server is always safe to
// point tooling at.
func Serve(addr string, reg *metrics.Registry, fl *metrics.Flight) (*Server, error) {
	return ServeWith(addr, reg, fl, Options{})
}

// ServeWith is Serve with embedding options: a live health callback,
// extra routes on the shared mux, and a read deadline.
func ServeWith(addr string, reg *metrics.Registry, fl *metrics.Flight, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserv: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := Health{State: "ok"}
		if opts.Health != nil {
			h = opts.Health()
			if h.State == "" {
				h.State = "ok"
			}
		}
		h.UptimeMS = time.Since(s.start).Milliseconds()
		w.Header().Set("Content-Type", "application/json")
		if h.State != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	mux.HandleFunc("/lastruns", func(w http.ResponseWriter, _ *http.Request) {
		recent, failed := fl.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Recent []metrics.Run `json:"recent"`
			Failed []metrics.Run `json:"failed"`
		}{recent, failed})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if opts.Routes != nil {
		opts.Routes(mux)
	}
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       opts.ReadTimeout,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43210" after
// Serve("127.0.0.1:0", ...).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately, cutting active connections.
// Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the server gracefully: the listener closes at once
// (no new connections), and established connections get until ctx's
// deadline to finish their in-flight responses. Safe on nil.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
