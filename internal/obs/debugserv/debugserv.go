// Package debugserv is the live introspection endpoint of the
// observability stack: a small opt-in HTTP server that exposes the
// process-lifetime metrics.Registry, the flight recorder of recent
// analyses, Go's pprof profiles and a health probe. Every command
// grows a -debug-addr flag (via cliutil) that starts one; with the
// flag unset nothing listens and nothing is paid.
//
// Routes:
//
//	/metrics   registry snapshot — Prometheus text 0.0.4 by default,
//	           JSON with ?format=json (or an Accept: application/json
//	           header)
//	/healthz   liveness: "ok" plus uptime
//	/lastruns  flight-recorder contents — the last N analyses and the
//	           last M failed ones, JSON
//	/debug/pprof/...  net/http/pprof as usual
package debugserv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"beyondiv/internal/obs/metrics"
)

// Server is a running debug endpoint. Close it to release the port.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve starts the debug server on addr (":0" picks a free port).
// reg and fl may be nil; the corresponding endpoints then serve empty
// documents rather than erroring, so the server is always safe to
// point tooling at.
func Serve(addr string, reg *metrics.Registry, fl *metrics.Flight) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserv: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok\nuptime %s\n", time.Since(s.start).Round(time.Millisecond))
	})
	mux.HandleFunc("/lastruns", func(w http.ResponseWriter, _ *http.Request) {
		recent, failed := fl.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Recent []metrics.Run `json:"recent"`
			Failed []metrics.Run `json:"failed"`
		}{recent, failed})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43210" after
// Serve("127.0.0.1:0", ...).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Safe on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
