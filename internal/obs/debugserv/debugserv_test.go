package debugserv

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"beyondiv/internal/obs/metrics"
)

func get(t *testing.T, url string, hdr map[string]string) (string, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Add("engine.cache.hit", 3)
	reg.ObserveDuration("phase.parse", 42*time.Microsecond)
	fl := metrics.NewFlight(8, 4)
	fl.Record(metrics.Run{Source: "for i := 0; i < n; i++ {}", DurUS: 17})
	fl.Record(metrics.Run{Source: "bad", Err: "contained panic", Phase: "iv", Fault: true, Stack: "goroutine 1 [running]"})

	s, err := Serve("127.0.0.1:0", reg, fl)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	body, ctype := get(t, base+"/metrics", nil)
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	for _, want := range []string{"biv_engine_cache_hit 3", "biv_phase_parse_count 1", "biv_phase_parse_p50"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, ctype = get(t, base+"/metrics?format=json", nil)
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/metrics?format=json content-type = %q", ctype)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics json: %v", err)
	}
	if snap.Counters["engine.cache.hit"] != 3 || snap.Hists["phase.parse"].Count != 1 {
		t.Errorf("json snapshot = %+v", snap)
	}
	if body, _ = get(t, base+"/metrics", map[string]string{"Accept": "application/json"}); !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("Accept: application/json did not switch to JSON: %q", body[:40])
	}

	body, ctype = get(t, base+"/healthz", nil)
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/healthz content-type = %q", ctype)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz json: %v", err)
	}
	if h.State != "ok" || h.UptimeMS < 0 {
		t.Errorf("/healthz = %+v", h)
	}

	body, _ = get(t, base+"/lastruns", nil)
	var runs struct {
		Recent []metrics.Run `json:"recent"`
		Failed []metrics.Run `json:"failed"`
	}
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/lastruns json: %v", err)
	}
	if len(runs.Recent) != 2 || len(runs.Failed) != 1 {
		t.Fatalf("/lastruns = %d recent, %d failed", len(runs.Recent), len(runs.Failed))
	}
	if f := runs.Failed[0]; !f.Fault || f.Phase != "iv" || f.Err != "contained panic" {
		t.Errorf("failed run = %+v", f)
	}

	body, _ = get(t, base+"/debug/pprof/cmdline", nil)
	if body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServeNilBackends(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	body, _ := get(t, base+"/metrics?format=json", nil)
	if !strings.Contains(body, "\"counters\"") {
		t.Errorf("/metrics with nil registry = %q", body)
	}
	body, _ = get(t, base+"/lastruns", nil)
	if !strings.Contains(body, "\"recent\"") {
		t.Errorf("/lastruns with nil flight = %q", body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:1", nil, nil); err == nil {
		t.Skip("binding port 1 unexpectedly allowed (running as root)")
	}
	var nilS *Server
	if nilS.Addr() != "" || nilS.Close() != nil {
		t.Error("nil server methods not safe")
	}
}

// TestServeWithHealthAndRoutes: a Health callback drives /healthz's
// real state (draining answers 503), and Options.Routes shares the mux
// with the embedding process's own handlers.
func TestServeWithHealthAndRoutes(t *testing.T) {
	var draining atomic.Bool
	s, err := ServeWith("127.0.0.1:0", nil, nil, Options{
		Health: func() Health {
			st := "ok"
			if draining.Load() {
				st = "draining"
			}
			return Health{State: st, InFlight: 2, Queued: 1}
		},
		Routes: func(mux *http.ServeMux) {
			mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "pong")
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	body, _ := get(t, base+"/healthz", nil)
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.State != "ok" || h.InFlight != 2 || h.Queued != 1 {
		t.Errorf("/healthz = %+v", h)
	}
	if body, _ = get(t, base+"/v1/ping", nil); body != "pong" {
		t.Errorf("mounted route /v1/ping = %q", body)
	}

	draining.Store(true)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz status = %d, want 503", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(b, &h); err != nil || h.State != "draining" {
		t.Errorf("draining /healthz = %q (%v)", b, err)
	}
}
