// Package obs is the pipeline's zero-dependency telemetry layer:
// hierarchical phase spans (wall time and allocation counts), a
// deterministic counter registry, and a per-decision provenance log.
//
// A nil *Recorder is the valid "telemetry off" value: every method is a
// no-op on a nil receiver, so pipeline code threads the recorder
// unconditionally and pays only a nil check when telemetry is disabled.
//
//	rec := obs.New()
//	span := rec.Phase("iv")
//	...
//	span.End()
//	rec.Count("iv.scr.linear")
//	rec.Decide("j2", "§3.1 linear family", "(L1, 1, 1)")
//
// Sinks (sink.go) render the recording as a human-readable text report,
// JSON lines, or the Chrome trace-event format that chrome://tracing
// and Perfetto load directly.
package obs

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder accumulates spans, counters and decisions for one analysis
// run. Methods are safe for concurrent use and safe on a nil receiver.
type Recorder struct {
	mu        sync.Mutex
	epoch     time.Time
	now       func() time.Time
	mallocs   func() uint64
	roots     []*Span
	cur       *Span
	counters  map[string]int64
	decisions []Decision

	// tid is the Chrome-trace thread id stamped on every span this
	// recorder opens; forks draw distinct ids from the shared sequence,
	// so batch-worker spans render as parallel tracks instead of
	// interleaving on one row.
	tid    int
	tidSeq *atomic.Int64
}

// Span is one timed phase. Spans nest: a Phase call while another span
// is open records a child.
type Span struct {
	Name     string
	Start    time.Duration // offset from the recorder's epoch
	Dur      time.Duration
	Allocs   uint64 // heap objects allocated while the span was open
	TID      int    // trace track: 1 for the root recorder, per-fork otherwise
	Children []*Span

	rec         *Recorder
	parent      *Span
	startT      time.Time
	startAllocs uint64
}

// Decision is one provenance event: a named rule applied to a subject.
type Decision struct {
	Subject string // what was decided about, e.g. "j2" or "a[i2] -> a[i3]"
	Rule    string // the rule that fired, e.g. "§3.1 linear family"
	Detail  string // the outcome, e.g. "(L1, 1, 1)"
}

// New returns a live recorder using the real clock and allocation
// counter.
func New() *Recorder {
	return NewWithClock(time.Now, readMallocs)
}

// NewWithClock returns a recorder with injected time and allocation
// sources, for deterministic tests. Either may be nil to disable that
// measurement (timings and alloc counts then stay zero).
func NewWithClock(now func() time.Time, mallocs func() uint64) *Recorder {
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	if mallocs == nil {
		mallocs = func() uint64 { return 0 }
	}
	seq := &atomic.Int64{}
	seq.Store(1)
	return &Recorder{
		epoch:    now(),
		now:      now,
		mallocs:  mallocs,
		counters: map[string]int64{},
		tid:      1,
		tidSeq:   seq,
	}
}

func readMallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Phase opens a span. The returned span must be closed with End; spans
// opened while it is live become its children. Returns nil (itself a
// valid no-op span) on a nil recorder.
func (r *Recorder) Phase(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Span{
		Name:        name,
		TID:         r.tid,
		rec:         r,
		parent:      r.cur,
		startT:      r.now(),
		startAllocs: r.mallocs(),
	}
	s.Start = s.startT.Sub(r.epoch)
	if r.cur == nil {
		r.roots = append(r.roots, s)
	} else {
		r.cur.Children = append(r.cur.Children, s)
	}
	r.cur = s
	return s
}

// End closes the span, recording duration and allocations. No-op on a
// nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Dur = r.now().Sub(s.startT)
	s.Allocs = r.mallocs() - s.startAllocs
	// Pop back to this span's parent even if a child was left open.
	r.cur = s.parent
}

// Fork returns a recorder that shares r's epoch, clock and allocation
// source but records into its own span tree, counter registry and
// provenance log. Batch workers record into forks concurrently — one
// recorder's span nesting is a single stack, so concurrent Phase calls
// on a shared recorder would interleave — and the parent merges each
// fork back with Absorb once the worker is done. Each fork draws a
// distinct Chrome-trace thread id from the shared sequence, so its
// spans render as their own parallel track after the merge. Fork of a
// nil recorder is nil (telemetry stays off).
func (r *Recorder) Fork() *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Recorder{
		epoch:    r.epoch,
		now:      r.now,
		mallocs:  r.mallocs,
		counters: map[string]int64{},
		tid:      int(r.tidSeq.Add(1)),
		tidSeq:   r.tidSeq,
	}
}

// Absorb merges a quiescent forked recorder into r: the fork's root
// spans attach under r's currently open span (or become roots), its
// counters add into r's registry — iterated in sorted name order, so
// the merge performs the identical operation sequence on every run —
// and its provenance events append. The fork must not record
// concurrently with, or after, the merge. Absorbing forks in a fixed
// order therefore yields a byte-identical WriteText rendering however
// the forks themselves were scheduled. No-op when either recorder is
// nil.
func (r *Recorder) Absorb(fork *Recorder) {
	if r == nil || fork == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fork.mu.Lock()
	defer fork.mu.Unlock()
	if r.cur != nil {
		r.cur.Children = append(r.cur.Children, fork.roots...)
	} else {
		r.roots = append(r.roots, fork.roots...)
	}
	names := make([]string, 0, len(fork.counters))
	for k := range fork.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		r.counters[k] += fork.counters[k]
	}
	r.decisions = append(r.decisions, fork.decisions...)
	fork.roots, fork.decisions = nil, nil
	fork.counters = map[string]int64{}
}

// Spans returns the recorded root spans (children reachable through
// them). The tree must not be modified while recording continues.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.roots...)
}

// Count increments a counter by one.
func (r *Recorder) Count(name string) { r.Add(name, 1) }

// Add increments a counter by delta.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns one counter's value (zero when never incremented).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of the registry.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// CounterNames returns the registered counter names, sorted.
func (r *Recorder) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CounterTotal sums every counter whose name starts with prefix.
func (r *Recorder) CounterTotal(prefix string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for k, v := range r.counters {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			total += v
		}
	}
	return total
}

// Decide appends one provenance event.
func (r *Recorder) Decide(subject, rule, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.decisions = append(r.decisions, Decision{Subject: subject, Rule: rule, Detail: detail})
	r.mu.Unlock()
}

// Decisions returns a copy of the provenance log, in event order.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Decision(nil), r.decisions...)
}
