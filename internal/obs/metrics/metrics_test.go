package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"beyondiv/internal/obs"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Inc("engine.cache.hit")
	r.Add("engine.cache.hit", 2)
	if got := r.Counter("engine.cache.hit"); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if got := r.Counter("never"); got != 0 {
		t.Errorf("unset counter = %d", got)
	}
	r.SetGauge("pool.remaining", 41)
	r.SetGauge("pool.remaining", 40)
	if got := r.Gauge("pool.remaining"); got != 40 {
		t.Errorf("gauge = %d, want 40", got)
	}
	r.ObserveDuration("phase.parse", 15*time.Microsecond)
	r.Observe("phase.parse.allocs", 120)
	s := r.Snapshot()
	if s.Hists["phase.parse"].Count != 1 || s.Hists["phase.parse.allocs"].Count != 1 {
		t.Errorf("histogram counts = %+v", s.Hists)
	}
	if got := s.Names(); len(got) != 4 {
		t.Errorf("Names = %v, want 4 entries", got)
	}
}

func TestRegistryNil(t *testing.T) {
	var r *Registry
	r.Inc("a")
	r.Add("a", 2)
	r.SetGauge("g", 1)
	r.Observe("h", 1)
	r.ObserveDuration("h", time.Second)
	if r.Counter("a") != 0 || r.Gauge("g") != 0 || r.Hist("h") != nil {
		t.Error("nil registry leaked state")
	}
	if err := r.Merge(NewRegistry()); err != nil {
		t.Error(err)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Hists) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
}

// TestRegistryRace hammers one registry from 8 goroutines mixing
// counters, gauges, histograms, snapshots and merges; run with -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			other := NewRegistry()
			for i := 0; i < iters; i++ {
				r.Inc("shared.counter")
				r.Add(fmt.Sprintf("per.%d", g), 2)
				r.SetGauge("shared.gauge", int64(i))
				r.Observe("shared.hist", int64(i%1000))
				r.ObserveDuration("shared.latency", time.Duration(i)*time.Microsecond)
				if i%512 == 0 {
					_ = r.Snapshot()
					other.Observe("shared.hist", int64(i))
					if err := r.Merge(other); err != nil {
						t.Error(err)
					}
					other = NewRegistry()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter"); got != goroutines*iters {
		t.Errorf("shared.counter = %d, want %d", got, goroutines*iters)
	}
	for g := 0; g < goroutines; g++ {
		if got := r.Counter(fmt.Sprintf("per.%d", g)); got != 2*iters {
			t.Errorf("per.%d = %d, want %d", g, got, 2*iters)
		}
	}
	wantHist := int64(goroutines * (iters + (iters+511)/512))
	if got := r.Hist("shared.hist").Count(); got != wantHist {
		t.Errorf("shared.hist count = %d, want %d", got, wantHist)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add("c", 1)
	b.Add("c", 2)
	b.Add("only.b", 5)
	a.Observe("h", 10)
	b.Observe("h", 20)
	b.SetGauge("g", 9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counter("c") != 3 || a.Counter("only.b") != 5 || a.Gauge("g") != 9 {
		t.Errorf("merged counters/gauges wrong: c=%d only.b=%d g=%d",
			a.Counter("c"), a.Counter("only.b"), a.Gauge("g"))
	}
	if got := a.Hist("h").Count(); got != 2 {
		t.Errorf("merged hist count = %d, want 2", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Add("engine.cache.hit", 7)
	r.SetGauge("guard.pool.remaining", 123)
	for i := 1; i <= 100; i++ {
		r.Observe("phase.iv", int64(i*1000))
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE biv_engine_cache_hit counter\nbiv_engine_cache_hit 7\n",
		"# TYPE biv_guard_pool_remaining gauge\nbiv_guard_pool_remaining 123\n",
		"# TYPE biv_phase_iv histogram\n",
		"biv_phase_iv_bucket{le=\"+Inf\"} 100\n",
		"biv_phase_iv_count 100\n",
		"biv_phase_iv_p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "biv_phase_iv_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if v < prev {
			t.Fatalf("bucket series decreased at %q", line)
		}
		prev = v
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Inc("c")
	r.Observe("h", 5)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 1 || s.Hists["h"].Count != 1 {
		t.Errorf("round-tripped snapshot = %+v", s)
	}
}

func TestSanitize(t *testing.T) {
	if got := Sanitize("phase steps"); got != "phase_steps" {
		t.Errorf("Sanitize = %q", got)
	}
	if got := Sanitize("xform.ivsub"); got != "xform.ivsub" {
		t.Errorf("Sanitize mangled dots: %q", got)
	}
}

func TestFlightRings(t *testing.T) {
	f := NewFlight(3, 2)
	for i := 1; i <= 5; i++ {
		run := Run{Source: fmt.Sprintf("src %d", i), DurUS: int64(i)}
		if i%2 == 0 {
			run.Err = fmt.Sprintf("boom %d", i)
			run.Fault = true
		}
		f.Record(run)
	}
	recent, failed := f.Snapshot()
	if len(recent) != 3 || recent[0].Source != "src 3" || recent[2].Source != "src 5" {
		t.Errorf("recent = %+v", recent)
	}
	if len(failed) != 2 || failed[0].Err != "boom 2" || failed[1].Err != "boom 4" {
		t.Errorf("failed = %+v", failed)
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq <= recent[i-1].Seq {
			t.Errorf("recent not in seq order: %+v", recent)
		}
	}
	var nilF *Flight
	nilF.Record(Run{}) // no-op
	if r, e := nilF.Snapshot(); r != nil || e != nil {
		t.Error("nil flight snapshot non-nil")
	}
	if NewFlight(0, 0) != nil {
		t.Error("NewFlight(0) != nil")
	}
}

func TestFlightTruncation(t *testing.T) {
	f := NewFlight(1, 1)
	f.Record(Run{Source: strings.Repeat("x", 1000), Stack: strings.Repeat("s", 10000), Err: "e"})
	recent, _ := f.Snapshot()
	if n := len(recent[0].Source); n > sourcePreview+4 {
		t.Errorf("source not truncated: %d bytes", n)
	}
	if n := len(recent[0].Stack); n > stackPreview+4 {
		t.Errorf("stack not truncated: %d bytes", n)
	}
}

func TestCondense(t *testing.T) {
	rec := obs.New()
	root := rec.Phase("analyze")
	rec.Phase("parse").End()
	iv := rec.Phase("iv")
	rec.Phase("loop L1").End()
	iv.End()
	root.End()

	nodes := Condense(rec.Spans(), 0)
	if len(nodes) != 1 || nodes[0].Name != "analyze" {
		t.Fatalf("roots = %+v", nodes)
	}
	kids := nodes[0].Kids
	if len(kids) != 2 || kids[0].Name != "parse" || kids[1].Name != "iv" || len(kids[1].Kids) != 1 {
		t.Fatalf("children = %+v", kids)
	}

	depth2 := Condense(rec.Spans(), 2)
	if len(depth2[0].Kids) != 2 || depth2[0].Kids[1].Kids != nil {
		t.Errorf("maxDepth=2 kept depth-3 nodes: %+v", depth2)
	}
}
