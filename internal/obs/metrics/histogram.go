package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution of int64 observations
// (latencies in nanoseconds, allocation counts, sizes). Buckets are
// defined by ascending upper bounds; an observation v lands in the
// first bucket with v <= bound, or in the implicit overflow bucket
// past the last bound. Alongside the bucket counts the histogram
// tracks count, sum, min and max exactly, which lets Quantile clamp
// its bucket bracket to the observed range — a single-valued or
// single-bucket distribution therefore reports exact percentiles.
//
// Histograms are safe for concurrent use and mergeable: Merge adds
// another histogram's counts bucket-by-bucket (the bound slices must
// be equal), which is associative and commutative, so per-worker or
// per-process histograms combine into process- or fleet-wide ones in
// any grouping.
//
// Observe is lock-free — an inline binary search plus a handful of
// atomic adds — so it sits on the engine's per-pass hot path without
// a mutex. The price is that a Snapshot taken while observers are
// mid-flight may be off by those in-flight observations (count and
// bucket totals can momentarily disagree); every quiescent read is
// exact.
type Histogram struct {
	bounds []int64        // ascending bucket upper bounds (inclusive); read-only after New
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// DefaultBounds is the bound ladder histograms are created with when
// none is given: six geometric steps per decade (ratio <= 1.5) from
// 10 to 6.8e9. In nanoseconds that spans 10ns to ~6.8s; as counts it
// spans 10 to ~6.8 billion — wide enough for both latency and alloc
// distributions with bracket error bounded by one ladder step.
func DefaultBounds() []int64 {
	mul := []int64{10, 15, 22, 33, 47, 68}
	var out []int64
	for dec := int64(1); dec <= 100_000_000; dec *= 10 {
		for _, m := range mul {
			out = append(out, m*dec)
		}
	}
	return out
}

// NewHistogram returns a histogram over the given ascending bounds
// (DefaultBounds when nil). Panics on unsorted or duplicate bounds —
// a histogram's shape is a static configuration error, not input.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly ascending at %d: %d <= %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Inline binary search for the first bound with v <= bound;
	// sort.Search would cost a closure call per probe.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Merge adds o's observations into h. The two histograms must share
// the same bounds; merging is associative, so partial aggregates
// combine in any order. Merging a nil or empty histogram is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	return h.mergeSnapshot(o.raw())
}

func (h *Histogram) mergeSnapshot(s HistSnapshot) error {
	if s.Count == 0 {
		return nil
	}
	if len(s.Bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d bounds", len(s.Bounds), len(h.bounds))
	}
	for i, b := range s.Bounds {
		if h.bounds[i] != b {
			return fmt.Errorf("metrics: merging histograms with different bounds at %d: %d vs %d", i, h.bounds[i], b)
		}
	}
	for i, c := range s.Counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.min.Load()
		if s.Min >= cur || h.min.CompareAndSwap(cur, s.Min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
	return nil
}

// Quantile returns a bracket [lo, hi] guaranteed to contain the q-th
// quantile (nearest-rank over the ordered observations, 0 < q <= 1),
// and ok=false on an empty histogram. The bracket is the selected
// bucket's bounds clamped to the observed min/max, so it is exact
// (lo == hi) whenever the rank falls in a bucket whose observations
// are pinned by the clamp — in particular for single-valued
// distributions — and never wider than one bucket otherwise.
func (h *Histogram) Quantile(q float64) (lo, hi int64, ok bool) {
	if h == nil {
		return 0, 0, false
	}
	s := h.raw()
	return s.quantile(q)
}

// quantile is Quantile over an immutable snapshot.
func (s *HistSnapshot) quantile(q float64) (lo, hi int64, ok bool) {
	if s.Count == 0 {
		return 0, 0, false
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			lo, hi = math.MinInt64, math.MaxInt64
			if i > 0 {
				lo = s.Bounds[i-1] + 1
			}
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if s.Min > lo {
				lo = s.Min
			}
			if s.Max < hi {
				hi = s.Max
			}
			return lo, hi, true
		}
	}
	return s.Min, s.Max, true // in-flight Observe skew: fall back to the exact range
}

// Percentile returns the conservative (upper) end of the Quantile
// bracket — the standard single-number p50/p90/p99 readout — or 0 on
// an empty histogram.
func (h *Histogram) Percentile(q float64) int64 {
	if h == nil {
		return 0
	}
	s := h.raw()
	_, hi, ok := s.quantile(q)
	if !ok {
		return 0
	}
	return hi
}

// HistSnapshot is an immutable, JSON-serializable copy of a histogram.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min,omitempty"`
	Max    int64   `json:"max,omitempty"`
	P50    int64   `json:"p50"`
	P90    int64   `json:"p90"`
	P99    int64   `json:"p99"`
	Bounds []int64 `json:"bounds,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// Snapshot returns a copy of the histogram's state, including
// conservative p50/p90/p99 readouts. Concurrent Observe calls may
// leave the copy short by the in-flight observations; a quiescent
// histogram snapshots exactly.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := h.raw()
	if s.Count > 0 {
		_, s.P50, _ = s.quantile(0.50)
		_, s.P90, _ = s.quantile(0.90)
		_, s.P99, _ = s.quantile(0.99)
	} else {
		s.Min, s.Max = 0, 0
	}
	return s
}

// raw copies the live fields without percentile post-processing.
func (h *Histogram) raw() HistSnapshot {
	s := HistSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Min:    h.min.Load(),
		Max:    h.max.Load(),
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
