package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
// Metric names are prefixed with "biv_" and sanitized ('.' and every
// other non-identifier byte become '_'); histograms render the full
// cumulative _bucket/_sum/_count series plus conservative _p50 / _p90
// / _p99 gauges for humans reading the endpoint with curl.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	ew := &promWriter{w: w}
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		ew.printf("# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		ew.printf("# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		n := promName(k)
		ew.printf("# TYPE %s histogram\n", n)
		var cum int64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			ew.printf("%s_bucket{le=\"%d\"} %d\n", n, b, cum)
		}
		ew.printf("%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		ew.printf("%s_sum %d\n", n, h.Sum)
		ew.printf("%s_count %d\n", n, h.Count)
		ew.printf("# TYPE %s_p50 gauge\n%s_p50 %d\n", n, n, h.P50)
		ew.printf("# TYPE %s_p90 gauge\n%s_p90 %d\n", n, n, h.P90)
		ew.printf("# TYPE %s_p99 gauge\n%s_p99 %d\n", n, n, h.P99)
	}
	return ew.err
}

// promName sanitizes a dotted metric name into a Prometheus
// identifier with the biv_ namespace prefix.
func promName(name string) string {
	b := []byte("biv_" + name)
	for i := 4; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Sanitize maps an arbitrary label (a guard resource, a phase name)
// to a dotted-metric-safe token: spaces and other non-identifier
// bytes become '_'. Dots are kept — they are the metric namespace
// separator.
func Sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '.', c == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
