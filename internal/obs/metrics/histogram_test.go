package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramBucketBoundaries: observations land in the bucket whose
// upper bound is the first >= value — inclusive upper bounds, exclusive
// lower bounds, underflow in the first bucket, overflow in the last.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 50})
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0}, {1, 0}, {9, 0}, {10, 0},
		{11, 1}, {20, 1},
		{21, 2}, {50, 2},
		{51, 3}, {1000, 3}, {math.MaxInt64, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := make([]int64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	s := h.Snapshot()
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	if s.Min != math.MinInt64 || s.Max != math.MaxInt64 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram accepted unsorted bounds")
		}
	}()
	NewHistogram([]int64{10, 10, 20})
}

// oracleRank is the nearest-rank quantile over a sorted slice: the
// ceil(q*n)-th smallest observation.
func oracleRank(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistogramQuantileOracle: for random distributions, every
// Quantile bracket must contain the exact nearest-rank value computed
// from the sorted observations, and the bracket must not be wider
// than one bucket.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	qs := []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0}
	for trial := 0; trial < 50; trial++ {
		h := NewHistogram(nil)
		n := 1 + rng.Intn(400)
		vals := make([]int64, n)
		for i := range vals {
			switch trial % 3 {
			case 0: // uniform small
				vals[i] = int64(rng.Intn(100))
			case 1: // log-uniform across the ladder
				vals[i] = int64(math.Pow(10, rng.Float64()*9))
			default: // heavily repeated values
				vals[i] = int64([]int{7, 7, 7, 42, 1_000_000}[rng.Intn(5)])
			}
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range qs {
			want := oracleRank(vals, q)
			lo, hi, ok := h.Quantile(q)
			if !ok {
				t.Fatalf("trial %d: Quantile(%v) not ok with %d observations", trial, q, n)
			}
			if want < lo || want > hi {
				t.Errorf("trial %d: Quantile(%v) bracket [%d, %d] misses oracle %d", trial, q, lo, hi, want)
			}
		}
	}
}

// TestHistogramQuantileExact: single-valued distributions report the
// exact value whatever the bucket width, thanks to min/max clamping.
func TestHistogramQuantileExact(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(123_456)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		lo, hi, ok := h.Quantile(q)
		if !ok || lo != 123_456 || hi != 123_456 {
			t.Errorf("Quantile(%v) = [%d, %d] ok=%v, want exact 123456", q, lo, hi, ok)
		}
		if p := h.Percentile(q); p != 123_456 {
			t.Errorf("Percentile(%v) = %d, want 123456", q, p)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if _, _, ok := h.Quantile(0.5); ok {
		t.Error("Quantile ok on empty histogram")
	}
	if p := h.Percentile(0.99); p != 0 {
		t.Errorf("Percentile on empty = %d, want 0", p)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 {
		t.Error("nil histogram Count != 0")
	}
}

// TestHistogramMergeAssociative: (a+b)+c and a+(b+c) produce identical
// snapshots, and both equal observing everything into one histogram.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	observe := func(h *Histogram, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(rng.Intn(1_000_000))
			h.Observe(out[i])
		}
		return out
	}
	a, b, c := NewHistogram(nil), NewHistogram(nil), NewHistogram(nil)
	all := NewHistogram(nil)
	for _, vs := range [][]int64{observe(a, 50), observe(b, 80), observe(c, 30)} {
		for _, v := range vs {
			all.Observe(v)
		}
	}

	left := NewHistogram(nil) // (a+b)+c
	for _, h := range []*Histogram{a, b, c} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	bc := NewHistogram(nil) // a+(b+c)
	for _, h := range []*Histogram{b, c} {
		if err := bc.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	right := NewHistogram(nil)
	if err := right.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}

	ls, rs, as := left.Snapshot(), right.Snapshot(), all.Snapshot()
	for name, s := range map[string]HistSnapshot{"(a+b)+c": ls, "a+(b+c)": rs} {
		if s.Count != as.Count || s.Sum != as.Sum || s.Min != as.Min || s.Max != as.Max {
			t.Errorf("%s summary %+v != direct %+v", name, s, as)
		}
		for i := range s.Counts {
			if s.Counts[i] != as.Counts[i] {
				t.Errorf("%s bucket %d = %d, want %d", name, i, s.Counts[i], as.Counts[i])
			}
		}
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram([]int64{1, 2, 3})
	b := NewHistogram([]int64{1, 2, 4})
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Error("Merge accepted histograms with different bounds")
	}
	c := NewHistogram([]int64{1, 2})
	c.Observe(1)
	if err := a.Merge(c); err == nil {
		t.Error("Merge accepted histograms with different bound counts")
	}
	// Merging an *empty* histogram of any shape is a no-op, not an error.
	if err := a.Merge(NewHistogram([]int64{99})); err != nil {
		t.Errorf("Merge of empty histogram errored: %v", err)
	}
}

func TestDefaultBoundsShape(t *testing.T) {
	bounds := DefaultBounds()
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("DefaultBounds not ascending at %d: %d <= %d", i, bounds[i], bounds[i-1])
		}
		ratio := float64(bounds[i]) / float64(bounds[i-1])
		if ratio > 1.52 {
			t.Errorf("bracket ratio %d/%d = %.2f > 1.52", bounds[i], bounds[i-1], ratio)
		}
	}
}
