package metrics

import (
	"sync"
	"time"

	"beyondiv/internal/obs"
)

// SpanNode is one node of a condensed span tree: the per-run
// recorder's span stripped to what post-hoc diagnosis needs (name,
// offsets, allocation count, children), cheap enough to keep for the
// last N runs of a loaded process.
type SpanNode struct {
	Name    string     `json:"name"`
	StartUS int64      `json:"start_us"`
	DurUS   int64      `json:"dur_us"`
	Allocs  uint64     `json:"allocs,omitempty"`
	Kids    []SpanNode `json:"children,omitempty"`
}

// Condense converts recorder spans into SpanNodes, keeping at most
// maxDepth levels (<= 0 means unlimited). Offsets stay relative to
// the recorder epoch the spans were recorded against.
func Condense(spans []*obs.Span, maxDepth int) []SpanNode {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanNode, 0, len(spans))
	for _, s := range spans {
		n := SpanNode{
			Name:    s.Name,
			StartUS: s.Start.Microseconds(),
			DurUS:   s.Dur.Microseconds(),
			Allocs:  s.Allocs,
		}
		if maxDepth != 1 {
			n.Kids = Condense(s.Children, maxDepth-1)
		}
		out = append(out, n)
	}
	return out
}

// Run is one analysis captured by the flight recorder.
type Run struct {
	Seq    uint64    `json:"seq"`
	Start  time.Time `json:"start"`
	DurUS  int64     `json:"dur_us"`
	Source string    `json:"source"` // truncated to sourcePreview bytes
	Bytes  int       `json:"source_bytes"`
	Cached bool      `json:"cached,omitempty"`
	// Spans is the condensed span tree of the run: the recorder's
	// tree when the run recorded telemetry, otherwise the engine's
	// flat per-pass timings.
	Spans []SpanNode `json:"spans,omitempty"`
	// Err/Phase/Fault/Stack describe a failed run: the rendered
	// error, the pipeline phase it is attributed to, whether it was a
	// contained panic, and in that case the (truncated) stack.
	Err   string `json:"err,omitempty"`
	Phase string `json:"phase,omitempty"`
	Fault bool   `json:"fault,omitempty"`
	Stack string `json:"stack,omitempty"`
}

const (
	sourcePreview = 240
	stackPreview  = 4096
)

// Flight is a flight recorder: a ring buffer of the last N analyses
// plus a separate ring of the last M failed ones, so a burst of
// healthy traffic cannot evict the one faulted run that needs
// diagnosing. Safe for concurrent use; a nil *Flight is the valid
// "off" value.
type Flight struct {
	mu     sync.Mutex
	seq    uint64
	recent ring
	errs   ring
}

// NewFlight returns a flight recorder keeping the last n runs and the
// last errCap failed runs (errCap <= 0 defaults to n). n <= 0 returns
// nil — the off value.
func NewFlight(n, errCap int) *Flight {
	if n <= 0 {
		return nil
	}
	if errCap <= 0 {
		errCap = n
	}
	return &Flight{recent: ring{cap: n}, errs: ring{cap: errCap}}
}

// Record captures one run. The source is truncated to a preview; the
// stack, when present, to stackPreview bytes. Failed runs land in
// both rings.
func (f *Flight) Record(run Run) {
	if f == nil {
		return
	}
	if len(run.Source) > sourcePreview {
		run.Source = run.Source[:sourcePreview] + "…"
	}
	if len(run.Stack) > stackPreview {
		run.Stack = run.Stack[:stackPreview] + "…"
	}
	f.mu.Lock()
	f.seq++
	run.Seq = f.seq
	f.recent.push(run)
	if run.Err != "" {
		f.errs.push(run)
	}
	f.mu.Unlock()
}

// Len returns the number of runs currently held in the recent ring.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.recent.buf)
}

// Snapshot returns the recent and failed runs, oldest first.
func (f *Flight) Snapshot() (recent, failed []Run) {
	if f == nil {
		return nil, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recent.ordered(), f.errs.ordered()
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	cap  int
	buf  []Run
	next int // insertion index once len(buf) == cap
}

func (r *ring) push(run Run) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, run)
		return
	}
	r.buf[r.next] = run
	r.next = (r.next + 1) % r.cap
}

func (r *ring) ordered() []Run {
	out := make([]Run, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
