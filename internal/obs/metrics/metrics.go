// Package metrics is the process-lifetime tier of the observability
// stack. Where a *obs.Recorder captures one analysis run's span tree
// and dies with it, a metrics.Registry aggregates across every run of
// a process: monotonic counters, point-in-time gauges, and
// fixed-bucket histograms of latencies and allocation counts with
// p50/p90/p99 extraction. The engine feeds a registry automatically
// when one is configured — every phase, cache hit/miss/evict, batch
// worker, guard-limit trip, contained fault and transform outcome
// lands here keyed by phase name — and the debugserv package serves
// it over HTTP for a long-running process.
//
// Like the recorder, a nil *Registry is the valid "metrics off"
// value: every method no-ops on a nil receiver, so instrumentation
// threads it unconditionally at the cost of a nil check.
//
// Registries are mergeable (counters add, histograms add
// bucket-by-bucket, gauges take the incoming value), so per-worker or
// per-shard registries can fold into one.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe named collection of counters, gauges
// and histograms. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	gauges   map[string]*atomic.Int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*atomic.Int64{},
		gauges:   map[string]*atomic.Int64{},
		hists:    map[string]*Histogram{},
	}
}

// counter returns the named counter, creating it on first use.
func (r *Registry) counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &atomic.Int64{}
		r.counters[name] = c
	}
	return c
}

// Inc adds one to the named counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to the named counter.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.counter(name).Add(delta)
}

// Counter returns the named counter's value (zero when never
// incremented).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		r.mu.Lock()
		if g = r.gauges[name]; g == nil {
			g = &atomic.Int64{}
			r.gauges[name] = g
		}
		r.mu.Unlock()
	}
	g.Store(v)
}

// Gauge returns the named gauge's value (zero when never set).
func (r *Registry) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	return g.Load()
}

// Hist returns the named histogram, creating it with DefaultBounds on
// first use. Returns nil on a nil registry.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hist(name, nil)
}

// HistWith returns the named histogram, creating it with the given
// bounds on first use (an existing histogram keeps its bounds).
func (r *Registry) HistWith(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	return r.hist(name, bounds)
}

func (r *Registry) hist(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram (DefaultBounds on first
// use).
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.hist(name, nil).Observe(v)
}

// ObserveDuration records d in nanoseconds into the named histogram.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, d.Nanoseconds())
}

// Merge folds o into r: counters add, histograms merge
// bucket-by-bucket (first error reported, remaining entries still
// merge), and gauges take o's value. Merging nil is a no-op.
func (r *Registry) Merge(o *Registry) error {
	if r == nil || o == nil {
		return nil
	}
	snap := o.Snapshot()
	var firstErr error
	for name, v := range snap.Counters {
		r.Add(name, v)
	}
	for name, v := range snap.Gauges {
		r.SetGauge(name, v)
	}
	for name, hs := range snap.Hists {
		if err := r.hist(name, hs.Bounds).mergeSnapshot(hs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Snapshot is an immutable, JSON-serializable copy of a registry.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. Counters and gauges
// are read atomically per entry; histograms snapshot under their own
// lock, so each entry is internally consistent.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}, Hists: map[string]HistSnapshot{}}
	}
	r.mu.RLock()
	counters := make(map[string]*atomic.Int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*atomic.Int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	s := &Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
		Hists:    make(map[string]HistSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	for k, v := range hists {
		s.Hists[k] = v.Snapshot()
	}
	return s
}

// Names returns the sorted union of all metric names in the snapshot,
// for deterministic rendering.
func (s *Snapshot) Names() []string {
	seen := map[string]bool{}
	var names []string
	add := func(k string) {
		if !seen[k] {
			seen[k] = true
			names = append(names, k)
		}
	}
	for k := range s.Counters {
		add(k)
	}
	for k := range s.Gauges {
		add(k)
	}
	for k := range s.Hists {
		add(k)
	}
	sort.Strings(names)
	return names
}
