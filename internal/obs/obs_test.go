package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock ticks a fixed step per reading, for deterministic spans.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func fakeMallocs(step uint64) func() uint64 {
	var n uint64
	return func() uint64 {
		n += step
		return n
	}
}

// TestNilRecorder exercises every method on the nil receiver: all must
// be no-ops, and a nil span's End must be safe too.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	span := r.Phase("x")
	if span != nil {
		t.Fatalf("nil recorder Phase = %v, want nil", span)
	}
	span.End()
	r.Count("c")
	r.Add("c", 5)
	r.Decide("s", "rule", "detail")
	if got := r.Counter("c"); got != 0 {
		t.Errorf("nil Counter = %d, want 0", got)
	}
	if got := r.Counters(); got != nil {
		t.Errorf("nil Counters = %v, want nil", got)
	}
	if got := r.CounterNames(); got != nil {
		t.Errorf("nil CounterNames = %v, want nil", got)
	}
	if got := r.CounterTotal(""); got != 0 {
		t.Errorf("nil CounterTotal = %d, want 0", got)
	}
	if got := r.Spans(); got != nil {
		t.Errorf("nil Spans = %v, want nil", got)
	}
	if got := r.Decisions(); got != nil {
		t.Errorf("nil Decisions = %v, want nil", got)
	}
	var buf bytes.Buffer
	for _, render := range []func() error{
		func() error { return r.WriteText(&buf, true) },
		func() error { return r.WriteJSONL(&buf) },
		func() error { return r.WriteChromeTrace(&buf) },
	} {
		if err := render(); err != nil {
			t.Errorf("nil sink error: %v", err)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("nil sinks wrote %q, want nothing", buf.String())
	}
}

// TestNesting checks the span tree: children attach to the open span,
// End pops back to the parent, and injected clocks yield exact timings.
func TestNesting(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond), fakeMallocs(10))
	root := r.Phase("root")
	a := r.Phase("a")
	a.End()
	b := r.Phase("b")
	c := r.Phase("c")
	c.End()
	b.End()
	root.End()
	next := r.Phase("next")
	next.End()

	spans := r.Spans()
	if len(spans) != 2 || spans[0].Name != "root" || spans[1].Name != "next" {
		t.Fatalf("roots = %v", spanNames(spans))
	}
	if got := spanNames(spans[0].Children); !equalStrings(got, []string{"a", "b"}) {
		t.Errorf("root children = %v, want [a b]", got)
	}
	if got := spanNames(spans[0].Children[1].Children); !equalStrings(got, []string{"c"}) {
		t.Errorf("b children = %v, want [c]", got)
	}
	// Clock readings: epoch, root-start, a-start, a-end, b-start,
	// c-start, c-end, b-end, root-end — so a lasted one tick and root
	// lasted seven.
	if spans[0].Children[0].Dur != time.Millisecond {
		t.Errorf("a.Dur = %v, want 1ms", spans[0].Children[0].Dur)
	}
	if spans[0].Dur != 7*time.Millisecond {
		t.Errorf("root.Dur = %v, want 7ms", spans[0].Dur)
	}
	// Mallocs step 10 per reading; a's window spans one reading pair
	// with the interleaved clock reads not counted (same source), so
	// the delta is readings-between * 10.
	if spans[0].Children[0].Allocs == 0 {
		t.Errorf("a.Allocs = 0, want > 0")
	}
}

// TestUnbalancedEnd: ending a parent with a child still open must pop
// to the parent's parent, not corrupt the stack.
func TestUnbalancedEnd(t *testing.T) {
	r := NewWithClock(nil, nil)
	root := r.Phase("root")
	_ = r.Phase("leaked") // never ended
	root.End()
	after := r.Phase("after")
	after.End()
	spans := r.Spans()
	if got := spanNames(spans); !equalStrings(got, []string{"root", "after"}) {
		t.Fatalf("roots = %v, want [root after]", got)
	}
}

func TestCounters(t *testing.T) {
	r := New()
	r.Count("iv.scr.linear")
	r.Count("iv.scr.linear")
	r.Add("iv.scr.periodic", 3)
	r.Add("depend.pairs.tested", 7)
	if got := r.Counter("iv.scr.linear"); got != 2 {
		t.Errorf("linear = %d, want 2", got)
	}
	if got := r.Counter("never"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	if got := r.CounterTotal("iv.scr."); got != 5 {
		t.Errorf("CounterTotal(iv.scr.) = %d, want 5", got)
	}
	want := []string{"depend.pairs.tested", "iv.scr.linear", "iv.scr.periodic"}
	if got := r.CounterNames(); !equalStrings(got, want) {
		t.Errorf("CounterNames = %v, want %v", got, want)
	}
	m := r.Counters()
	m["iv.scr.linear"] = 99
	if got := r.Counter("iv.scr.linear"); got != 2 {
		t.Errorf("Counters must return a copy; registry now reads %d", got)
	}
}

func TestDecisions(t *testing.T) {
	r := New()
	r.Decide("j2", "§3.1 linear", "(L1, 1, 1)")
	r.Decide("k2", "§4.2 periodic", "(L1, <1, 2>)")
	ds := r.Decisions()
	if len(ds) != 2 || ds[0].Subject != "j2" || ds[1].Rule != "§4.2 periodic" {
		t.Fatalf("Decisions = %+v", ds)
	}
	ds[0].Subject = "mutated"
	if r.Decisions()[0].Subject != "j2" {
		t.Error("Decisions must return a copy")
	}
}

// TestWriteTextGolden pins the deterministic (timings-suppressed) text
// rendering used by golden tests downstream.
func TestWriteTextGolden(t *testing.T) {
	r := NewWithClock(nil, nil)
	root := r.Phase("analyze")
	s := r.Phase("ssa")
	r.Phase("dom").End()
	s.End()
	root.End()
	r.Count("ssa.phis")
	r.Add("scan.tokens", 42)

	var buf bytes.Buffer
	if err := r.WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	want := "== phases ==\n" +
		"analyze\n" +
		"  ssa\n" +
		"    dom\n" +
		"== counters ==\n" +
		"scan.tokens                                        42\n" +
		"ssa.phis                                            1\n"
	if buf.String() != want {
		t.Errorf("WriteText:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond), nil)
	root := r.Phase("analyze")
	r.Phase("iv").End()
	root.End()
	r.Count("iv.scr.linear")
	r.Decide("j2", "§3.1", "(L1, 1, 1)")

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	var types, paths []string
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		types = append(types, ev["type"].(string))
		if p, ok := ev["path"].(string); ok {
			paths = append(paths, p)
		}
	}
	if !equalStrings(types, []string{"span", "span", "counter", "decision"}) {
		t.Errorf("event types = %v", types)
	}
	if !equalStrings(paths, []string{"analyze", "analyze/iv"}) {
		t.Errorf("span paths = %v", paths)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond), nil)
	root := r.Phase("analyze")
	r.Phase("iv").End()
	root.End()
	r.Count("iv.scr.linear")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (thread_name + 2 spans + counters)", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "thread_name" {
		t.Errorf("first event = %v, want thread_name metadata", events[0])
	}
	for _, ev := range events[1:3] {
		if ev["ph"] != "X" {
			t.Errorf("span event ph = %v, want X", ev["ph"])
		}
		if ev["tid"] != float64(1) {
			t.Errorf("root-recorder span tid = %v, want 1", ev["tid"])
		}
	}
	last := events[3]
	if last["ph"] != "i" || last["name"] != "counters" {
		t.Errorf("final event = %v, want instant counters marker", last)
	}
	args := last["args"].(map[string]any)
	if args["iv.scr.linear"] != "1" {
		t.Errorf("counters args = %v", args)
	}
}

// failWriter errors after n successful writes; WriteText must latch and
// return the first error.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestWriteTextError(t *testing.T) {
	r := New()
	r.Phase("a").End()
	r.Count("c")
	if err := r.WriteText(&failWriter{n: 1}, false); err == nil {
		t.Error("WriteText swallowed the write error")
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				r.Count("c")
				r.Decide("s", "r", "d")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := r.Counter("c"); got != 4000 {
		t.Errorf("Counter = %d, want 4000", got)
	}
	if got := len(r.Decisions()); got != 4000 {
		t.Errorf("Decisions = %d, want 4000", got)
	}
}

func spanNames(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestForkAbsorb: forks record independently and merge back under the
// parent's open span with counters summed and decisions appended.
func TestForkAbsorb(t *testing.T) {
	r := New()
	root := r.Phase("analyze-all")

	f1, f2 := r.Fork(), r.Fork()
	w1 := f1.Phase("worker 0")
	f1.Phase("analyze").End()
	f1.Count("iv.classified")
	f1.Decide("i1", "basic", "from fork 1")
	w1.End()
	w2 := f2.Phase("worker 1")
	f2.Phase("analyze").End()
	f2.Add("iv.classified", 2)
	w2.End()

	r.Absorb(f1)
	r.Absorb(f2)
	root.End()

	roots := r.Spans()
	if len(roots) != 1 || roots[0].Name != "analyze-all" {
		t.Fatalf("roots = %v", spanNames(roots))
	}
	if got := spanNames(roots[0].Children); !equalStrings(got, []string{"worker 0", "worker 1"}) {
		t.Fatalf("children = %v", got)
	}
	if got := spanNames(roots[0].Children[0].Children); !equalStrings(got, []string{"analyze"}) {
		t.Errorf("worker 0 children = %v", got)
	}
	if got := r.Counter("iv.classified"); got != 3 {
		t.Errorf("merged counter = %d, want 3", got)
	}
	if d := r.Decisions(); len(d) != 1 || d[0].Detail != "from fork 1" {
		t.Errorf("merged decisions = %v", d)
	}
	// The fork is drained by the merge; absorbing it again adds nothing.
	r.Absorb(f1)
	if got := r.Counter("iv.classified"); got != 3 {
		t.Errorf("re-absorb changed counter to %d", got)
	}
}

// TestForkAbsorbNoOpenSpan: absorbed roots become roots of the parent
// when nothing is open, and nil recorders stay no-ops.
func TestForkAbsorbNoOpenSpan(t *testing.T) {
	r := New()
	f := r.Fork()
	f.Phase("worker 0").End()
	r.Absorb(f)
	if got := spanNames(r.Spans()); !equalStrings(got, []string{"worker 0"}) {
		t.Errorf("roots = %v", got)
	}

	var nilRec *Recorder
	if nilRec.Fork() != nil {
		t.Error("Fork of a nil recorder is non-nil")
	}
	nilRec.Absorb(f) // must not panic
	r.Absorb(nil)    // must not panic
}

// TestForkConcurrentRecording: many forks recording at once then
// merging is race-free (run with -race) and loses nothing.
func TestForkConcurrentRecording(t *testing.T) {
	r := New()
	root := r.Phase("analyze-all")
	const workers = 8
	forks := make([]*Recorder, workers)
	done := make(chan int, workers)
	for g := 0; g < workers; g++ {
		forks[g] = r.Fork()
		go func(f *Recorder) {
			s := f.Phase("worker")
			for i := 0; i < 500; i++ {
				f.Count("c")
			}
			s.End()
			done <- 1
		}(forks[g])
	}
	for g := 0; g < workers; g++ {
		<-done
	}
	for _, f := range forks {
		r.Absorb(f)
	}
	root.End()
	if got := r.Counter("c"); got != workers*500 {
		t.Errorf("Counter = %d, want %d", got, workers*500)
	}
	if got := len(r.Spans()[0].Children); got != workers {
		t.Errorf("%d worker spans, want %d", got, workers)
	}
}

// TestForkTIDs: forks draw distinct Chrome-trace thread ids from the
// shared sequence, spans keep the id of the recorder that opened them,
// and the trace labels each track with a thread_name metadata event.
func TestForkTIDs(t *testing.T) {
	r := NewWithClock(fakeClock(time.Millisecond), nil)
	root := r.Phase("analyze-all")
	f1, f2 := r.Fork(), r.Fork()
	f1.Phase("worker 0").End()
	f2.Phase("worker 1").End()
	r.Absorb(f1)
	r.Absorb(f2)
	root.End()

	spans := r.Spans()
	if got := spans[0].TID; got != 1 {
		t.Errorf("root span TID = %d, want 1", got)
	}
	kids := spans[0].Children
	if len(kids) != 2 || kids[0].TID == kids[1].TID || kids[0].TID < 2 || kids[1].TID < 2 {
		t.Fatalf("worker span TIDs = %d, %d; want two distinct ids >= 2", kids[0].TID, kids[1].TID)
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	threadNames := map[float64]string{}
	spanTIDs := map[float64]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			threadNames[ev["tid"].(float64)] = ev["args"].(map[string]any)["name"].(string)
		case "X":
			spanTIDs[ev["tid"].(float64)] = true
		}
	}
	if len(spanTIDs) != 3 {
		t.Errorf("span events span %d distinct tids, want 3 (main + 2 forks)", len(spanTIDs))
	}
	if threadNames[1] != "main" {
		t.Errorf("thread_name[1] = %q, want main", threadNames[1])
	}
	for tid := range spanTIDs {
		if _, ok := threadNames[tid]; !ok {
			t.Errorf("tid %v has span events but no thread_name metadata", tid)
		}
	}
}

// TestForkAbsorbDeterministic: a worker pool recording into forks and
// merging in a fixed order yields a byte-identical WriteText rendering
// on every run, however the goroutines were scheduled (run with -race:
// it also proves the concurrent record/merge cycle is race-free).
func TestForkAbsorbDeterministic(t *testing.T) {
	render := func() string {
		r := New()
		root := r.Phase("analyze-all")
		const workers = 4
		forks := make([]*Recorder, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			forks[w] = r.Fork()
			wg.Add(1)
			go func(w int, f *Recorder) {
				defer wg.Done()
				s := f.Phase(fmt.Sprintf("worker %d", w))
				for i := 0; i < 64; i++ {
					f.Phase(fmt.Sprintf("analyze %d.%d", w, i%4)).End()
					f.Count(fmt.Sprintf("worker.%d.done", w))
					f.Add("batch.total", 1)
				}
				s.End()
			}(w, forks[w])
		}
		wg.Wait()
		for _, f := range forks {
			r.Absorb(f)
		}
		root.End()
		var buf bytes.Buffer
		if err := r.WriteText(&buf, false); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render()
	for i := 0; i < 4; i++ {
		if got := render(); got != want {
			t.Fatalf("run %d diverged:\n%s\nfirst run:\n%s", i+1, got, want)
		}
	}
}
