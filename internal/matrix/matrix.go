// Package matrix implements dense matrices over exact rationals with
// Gauss–Jordan inversion and linear-system solving.
//
// The paper (§4.3) recovers closed-form coefficients of polynomial and
// geometric induction variables by inverting small Vandermonde-style
// matrices: entry a[i][j] = i^j for a polynomial of order m (an
// (m+1)×(m+1) system), optionally extended with a column of g^i for a
// geometric base g. Since all entries are integers, the inverse is exactly
// rational; this package performs that inversion without rounding.
package matrix

import (
	"fmt"
	"strings"

	"beyondiv/internal/rational"
)

// Matrix is a dense rows×cols matrix of rationals.
type Matrix struct {
	rows, cols int
	a          []rational.Rat // row-major
}

// New returns a zero matrix of the given shape. It panics if either
// dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid shape %dx%d", rows, cols))
	}
	a := make([]rational.Rat, rows*cols)
	zero := rational.FromInt(0)
	for i := range a {
		a[i] = zero
	}
	return &Matrix{rows: rows, cols: cols, a: a}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	one := rational.FromInt(1)
	for i := 0; i < n; i++ {
		m.Set(i, i, one)
	}
	return m
}

// FromInts builds a matrix from integer rows. All rows must have equal
// nonzero length.
func FromInts(rows [][]int64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: empty input")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		for j, v := range r {
			m.Set(i, j, rational.FromInt(v))
		}
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) rational.Rat { return m.a[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v rational.Rat) { m.a[i*m.cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, a: make([]rational.Rat, len(m.a))}
	copy(c.a, m.a)
	return c
}

// Mul returns m·n, or an error if the shapes are incompatible or an
// entry overflows.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, n.rows, n.cols)
	}
	out := New(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < n.cols; j++ {
			sum := rational.FromInt(0)
			for k := 0; k < m.cols; k++ {
				sum = sum.Add(m.At(i, k).Mul(n.At(k, j)))
			}
			if !sum.Valid() {
				return nil, fmt.Errorf("matrix: overflow at (%d,%d)", i, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out, nil
}

// MulVec returns m·v for a column vector v of length m.Cols().
func (m *Matrix) MulVec(v []rational.Rat) ([]rational.Rat, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("matrix: vector length %d != cols %d", len(v), m.cols)
	}
	out := make([]rational.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		sum := rational.FromInt(0)
		for k := 0; k < m.cols; k++ {
			sum = sum.Add(m.At(i, k).Mul(v[k]))
		}
		if !sum.Valid() {
			return nil, fmt.Errorf("matrix: overflow in row %d", i)
		}
		out[i] = sum
	}
	return out, nil
}

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination with partial
// (first-nonzero) pivoting, or an error if m is not square, is singular,
// or overflows the rational range.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert %dx%d", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	inv := Identity(n)

	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			e := work.At(r, col)
			if !e.Valid() {
				return nil, fmt.Errorf("matrix: overflow during elimination")
			}
			if !e.IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("matrix: singular (no pivot in column %d)", col)
		}
		work.swapRows(col, pivot)
		inv.swapRows(col, pivot)

		// Scale pivot row to 1.
		p := work.At(col, col).Inv()
		if !p.Valid() {
			return nil, fmt.Errorf("matrix: overflow during elimination")
		}
		work.scaleRow(col, p)
		inv.scaleRow(col, p)

		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f.IsZero() {
				continue
			}
			work.addScaledRow(r, col, f.Neg())
			inv.addScaledRow(r, col, f.Neg())
		}
	}
	for _, v := range inv.a {
		if !v.Valid() {
			return nil, fmt.Errorf("matrix: overflow during elimination")
		}
	}
	return inv, nil
}

// Solve returns x with m·x = b, or an error if m is singular or the
// shapes are incompatible.
func (m *Matrix) Solve(b []rational.Rat) ([]rational.Rat, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b)
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.a[i*m.cols:(i+1)*m.cols], m.a[j*m.cols:(j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func (m *Matrix) scaleRow(i int, f rational.Rat) {
	r := m.a[i*m.cols : (i+1)*m.cols]
	for k := range r {
		r[k] = r[k].Mul(f)
	}
}

// addScaledRow performs row[i] += f * row[j].
func (m *Matrix) addScaledRow(i, j int, f rational.Rat) {
	ri, rj := m.a[i*m.cols:(i+1)*m.cols], m.a[j*m.cols:(j+1)*m.cols]
	for k := range ri {
		ri[k] = ri[k].Add(rj[k].Mul(f))
	}
}

// Equal reports whether m and n have the same shape and equal entries.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.a {
		if !v.Equal(n.a[i]) {
			return false
		}
	}
	return true
}

// String renders the matrix one row per line, entries space-separated.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(m.At(i, j).String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Vandermonde returns the (m+1)×(m+1) matrix with a[i][j] = i^j,
// i.e. the system whose solution against the first m+1 values of a
// polynomial induction variable yields its coefficients (paper §4.3).
func Vandermonde(m int) *Matrix {
	n := m + 1
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, rational.FromInt(int64(i)).Pow(j))
		}
	}
	return out
}

// GeometricVandermonde returns the n×n matrix for a geometric induction
// variable with base g: n-1 polynomial columns i^j plus a final column
// g^i (paper §4.3). n must be at least 2.
func GeometricVandermonde(n int, g int64) *Matrix {
	if n < 2 {
		panic("matrix: geometric system needs n >= 2")
	}
	out := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n-1; j++ {
			out.Set(i, j, rational.FromInt(int64(i)).Pow(j))
		}
		out.Set(i, n-1, rational.FromInt(g).Pow(i))
	}
	return out
}
