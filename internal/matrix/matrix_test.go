package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"beyondiv/internal/rational"
)

func ints(vs ...int64) []rational.Rat {
	out := make([]rational.Rat, len(vs))
	for i, v := range vs {
		out[i] = rational.FromInt(v)
	}
	return out
}

func TestIdentityInverse(t *testing.T) {
	for n := 1; n <= 5; n++ {
		id := Identity(n)
		inv, err := id.Inverse()
		if err != nil {
			t.Fatalf("Identity(%d).Inverse: %v", n, err)
		}
		if !inv.Equal(id) {
			t.Errorf("Identity(%d) inverse != identity", n)
		}
	}
}

// TestPaperVandermonde reproduces the worked matrix from §4.3: the 4x4
// Vandermonde system for the cubic induction variable k in loop L14, and
// checks that multiplying the inverse by the first four values of k
// (4, 9, 17, 29) yields the closed-form coefficients (4, 23/6, 1, 1/6):
// k(h) = (h^3 + 6h^2 + 23h + 24)/6.
func TestPaperVandermonde(t *testing.T) {
	a := Vandermonde(3)
	want := FromInts([][]int64{
		{1, 0, 0, 0},
		{1, 1, 1, 1},
		{1, 2, 4, 8},
		{1, 3, 9, 27},
	})
	if !a.Equal(want) {
		t.Fatalf("Vandermonde(3) =\n%swant\n%s", a, want)
	}
	coeffs, err := a.Solve(ints(4, 9, 17, 29))
	if err != nil {
		t.Fatal(err)
	}
	wantCoeffs := []string{"4", "23/6", "1", "1/6"}
	for i, c := range coeffs {
		if c.String() != wantCoeffs[i] {
			t.Errorf("coeff[%d] = %s, want %s", i, c, wantCoeffs[i])
		}
	}
	// Verify the closed form against the continued sequence of k
	// (k = k+j+1 from k0=1, j = j+i from j0=1): 4, 9, 17, 29, 46.
	seq := []int64{4, 9, 17, 29, 46}
	for h, want := range seq {
		v := rational.FromInt(0)
		for k, c := range coeffs {
			v = v.Add(c.Mul(rational.FromInt(int64(h)).Pow(k)))
		}
		got, ok := v.Int()
		if !ok || got != want {
			t.Errorf("k(%d) = %s, want %d", h, v, want)
		}
	}
}

// TestPaperGeometric reproduces the geometric example m = 3*m + 2*i + 1
// (m0 = 0, i = (L14,1,1)): first values 0, 3, 14, 49 against base 3 with
// two polynomial columns give m(h) = 2*3^h - h - 2 and no quadratic term.
func TestPaperGeometric(t *testing.T) {
	a := GeometricVandermonde(4, 3)
	want := FromInts([][]int64{
		{1, 0, 0, 1},
		{1, 1, 1, 3},
		{1, 2, 4, 9},
		{1, 3, 9, 27},
	})
	if !a.Equal(want) {
		t.Fatalf("GeometricVandermonde(4,3) =\n%swant\n%s", a, want)
	}
	coeffs, err := a.Solve(ints(0, 3, 14, 49))
	if err != nil {
		t.Fatal(err)
	}
	wantCoeffs := []string{"-2", "-1", "0", "2"} // -2 - h + 0*h^2 + 2*3^h
	for i, c := range coeffs {
		if c.String() != wantCoeffs[i] {
			t.Errorf("coeff[%d] = %s, want %s", i, c, wantCoeffs[i])
		}
	}
}

func TestSingular(t *testing.T) {
	m := FromInts([][]int64{{1, 2}, {2, 4}})
	if _, err := m.Inverse(); err == nil {
		t.Error("expected singular error")
	}
	if _, err := m.Solve(ints(1, 1)); err == nil {
		t.Error("expected singular error from Solve")
	}
}

func TestNonSquareInverse(t *testing.T) {
	m := New(2, 3)
	if _, err := m.Inverse(); err == nil {
		t.Error("expected shape error")
	}
}

func TestMulShapes(t *testing.T) {
	a := FromInts([][]int64{{1, 2, 3}, {4, 5, 6}})
	b := FromInts([][]int64{{7, 8}, {9, 10}, {11, 12}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromInts([][]int64{{58, 64}, {139, 154}})
	if !got.Equal(want) {
		t.Errorf("product =\n%swant\n%s", got, want)
	}
	if _, err := b.Mul(b); err == nil {
		t.Error("expected incompatible-shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := FromInts([][]int64{{2, 0}, {1, 3}})
	got, err := a.MulVec(ints(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].String() != "10" || got[1].String() != "26" {
		t.Errorf("MulVec = %v", got)
	}
	if _, err := a.MulVec(ints(1)); err == nil {
		t.Error("expected length error")
	}
}

func TestPivotingNeeded(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	m := FromInts([][]int64{{0, 1}, {1, 0}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(m) {
		t.Errorf("inverse of swap matrix should be itself, got\n%s", inv)
	}
}

// TestQuickInverseProperty checks A·A⁻¹ = I on random small integer
// matrices (skipping singular ones).
func TestQuickInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func() bool {
		n := 1 + rng.Intn(4)
		m := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rational.FromInt(int64(rng.Intn(11)-5)))
			}
		}
		inv, err := m.Inverse()
		if err != nil {
			return true // singular: nothing to check
		}
		prod, err := m.Mul(inv)
		if err != nil {
			return false
		}
		return prod.Equal(Identity(n))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveProperty checks that Solve(b) actually satisfies A·x = b.
func TestQuickSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prop := func() bool {
		n := 1 + rng.Intn(4)
		m := New(n, n)
		b := make([]rational.Rat, n)
		for i := 0; i < n; i++ {
			b[i] = rational.FromInt(int64(rng.Intn(21) - 10))
			for j := 0; j < n; j++ {
				m.Set(i, j, rational.FromInt(int64(rng.Intn(11)-5)))
			}
		}
		x, err := m.Solve(b)
		if err != nil {
			return true
		}
		got, err := m.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !got[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVandermondeInvertibleUpToOrder(t *testing.T) {
	for m := 0; m <= 6; m++ {
		if _, err := Vandermonde(m).Inverse(); err != nil {
			t.Errorf("Vandermonde(%d) not invertible: %v", m, err)
		}
	}
}

func BenchmarkInverse4x4(b *testing.B) {
	m := Vandermonde(3)
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveCubic(b *testing.B) {
	m := Vandermonde(3)
	rhs := ints(4, 9, 17, 29)
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStringRendering(t *testing.T) {
	m := FromInts([][]int64{{1, 2}, {3, 4}})
	if m.String() != "1 2\n3 4\n" {
		t.Errorf("rendering = %q", m.String())
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero":      func() { New(0, 3) },
		"empty":     func() { FromInts(nil) },
		"ragged":    func() { FromInts([][]int64{{1, 2}, {3}}) },
		"geo-small": func() { GeometricVandermonde(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromInts([][]int64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, rational.FromInt(99))
	if m.At(0, 0).String() != "1" {
		t.Error("clone shares storage")
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Error("shape accessors")
	}
}
