package cliutil

import (
	"flag"

	"beyondiv"
)

// ParallelFlag is the shared -parallel flag: the intra-run fan-out
// width threaded into beyondiv.Options.Parallel. One analysis with
// enough independent work (sibling loops, dependence pairs) splits it
// across this many workers; results are bit-identical at every width.
// Register before flag.Parse and thread into the analysis with Apply.
type ParallelFlag struct {
	N int
}

// Register installs -parallel on the default flag set. The default is
// auto (0): one worker per CPU for a single input, and — so batch and
// intra-run parallelism compose instead of oversubscribing — the width
// is divided by the number of concurrent -jobs workers (floor 1) when
// several inputs analyze at once. An explicit width is honored as
// given.
func (p *ParallelFlag) Register() {
	flag.IntVar(&p.N, "parallel", 0,
		"split each analysis across `n` workers (0 = one per CPU, divided across -jobs workers in batch runs; 1 = sequential; results identical at every width)")
}

// Apply threads the flag into opts.
func (p *ParallelFlag) Apply(opts *beyondiv.Options) {
	opts.Parallel = p.N
}
