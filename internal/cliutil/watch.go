package cliutil

import (
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"beyondiv"
)

// WatchFlags is the -watch flag pair of the corpus commands: poll the
// argument files/directories for edits and re-analyze only what
// changed, leaning on the analyzer's caches (in-memory and, with
// -cache-dir, on disk) so an unchanged corpus costs nothing.
type WatchFlags struct {
	Watch    bool
	Interval time.Duration
}

// Register installs -watch and -watch-interval on the default flag set.
func (w *WatchFlags) Register() {
	flag.BoolVar(&w.Watch, "watch", false,
		"keep running: poll the input files/directories and re-analyze changed programs")
	flag.DurationVar(&w.Interval, "watch-interval", 500*time.Millisecond,
		"how often -watch polls for changes")
}

// WatchConfig tunes Watch beyond the flag pair; the zero value is
// usable (500ms interval, stderr round notes, run until interrupted).
type WatchConfig struct {
	// Interval between polling rounds; <= 0 means 500ms.
	Interval time.Duration
	// Out receives the per-round change notes; nil means os.Stderr.
	Out io.Writer
	// AfterRound, when non-nil, runs after every round with the round
	// number (1-based) and how many programs were re-analyzed; returning
	// false stops the watch cleanly. Tests use it to bound the loop.
	AfterRound func(round, changed int) bool
}

// watchState fingerprints one file between rounds: cheap stat identity
// first (mtime + size), content hash to confirm — a formatting-only
// save still changes the content hash and re-renders, while a touch
// with identical bytes does not re-analyze.
type watchState struct {
	mtime time.Time
	size  int64
	sum   [sha256.Size]byte
	text  bool // sum is valid (the file held a readable program)
}

// Watch is the corpus re-analyze loop behind the commands' -watch
// flag: resolve args to program files (the same file/.go/directory
// rules as ReadPrograms), analyze everything once, then poll — files
// whose content changed (and files that appeared) are re-analyzed and
// handed to render; unchanged files are never re-read past a stat.
// The analyzer is built once, so opts' caches persist across rounds:
// with a CacheDir, even a restarted watch starts warm.
//
// render runs for every analyzed program, changed files only after the
// first round. Watch returns on a resolution error or when
// cfg.AfterRound asks it to stop; otherwise it runs until the process
// is interrupted.
func Watch(args []string, opts beyondiv.Options, cfg WatchConfig,
	render func(src Source, prog *beyondiv.Program, err error)) error {
	if len(args) == 0 {
		return errors.New("watch mode needs file or directory arguments (standard input cannot be watched)")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * time.Millisecond
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	an := beyondiv.NewAnalyzer(opts)
	seen := make(map[string]watchState)
	for round := 1; ; round++ {
		paths, err := watchPaths(args)
		if err != nil {
			return err
		}
		changed := 0
		for _, path := range paths {
			fi, statErr := os.Stat(path)
			if statErr != nil {
				delete(seen, path) // vanished mid-round; rediscovered on return
				continue
			}
			prev, known := seen[path]
			if known && fi.ModTime().Equal(prev.mtime) && fi.Size() == prev.size {
				continue // stat-identical: not even re-read
			}
			cur := watchState{mtime: fi.ModTime(), size: fi.Size()}
			text, readErr := ReadProgram(path)
			if readErr != nil {
				// Unreadable or (for .go files) no embedded program:
				// remember the stat so it is not re-read every round.
				seen[path] = cur
				continue
			}
			cur.sum, cur.text = sha256.Sum256([]byte(text)), true
			if known && prev.text && prev.sum == cur.sum {
				seen[path] = cur // touched, content unchanged: no re-analysis
				continue
			}
			seen[path] = cur
			changed++
			prog, aerr := an.Analyze(text)
			render(Source{Path: path, Text: text}, prog, aerr)
		}
		alive := make(map[string]bool, len(paths))
		for _, p := range paths {
			alive[p] = true
		}
		for p := range seen {
			if !alive[p] {
				delete(seen, p)
			}
		}
		if round > 1 && changed > 0 {
			fmt.Fprintf(cfg.Out, "watch: round %d re-analyzed %d of %d programs\n", round, changed, len(paths))
		}
		if cfg.AfterRound != nil && !cfg.AfterRound(round, changed) {
			return nil
		}
		time.Sleep(cfg.Interval)
	}
}

// watchPaths resolves watch arguments to the current list of program
// files, sorted: plain files as themselves, directories walked for .go
// files (the examples layout, matching ReadPrograms). A path that does
// not exist right now is skipped, not fatal — watch survives files
// being deleted and recreated.
func watchPaths(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		if !fi.IsDir() {
			out = append(out, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, werr error) error {
			if werr != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			out = append(out, path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
