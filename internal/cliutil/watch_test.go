package cliutil

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"beyondiv"
)

const watchProg = `j = 0
L1: for i = 1 to n {
    j = j + i
}`

const watchProgEdited = `j = 0
L1: for i = 1 to n {
    j = j + 2 * i
}`

// write rewinds mtime afterwards so each round's stat comparison sees
// a strictly newer timestamp on real edits regardless of filesystem
// timestamp granularity.
func writeProg(t *testing.T, path, text string, stamp time.Time) {
	t.Helper()
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
}

// TestWatchReanalyzesOnlyChanged: the first round analyzes the whole
// corpus; later rounds re-analyze exactly the files whose content
// changed — a touch with identical bytes does not re-analyze, a real
// edit does.
func TestWatchReanalyzesOnlyChanged(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	a := filepath.Join(dir, "a.biv")
	b := filepath.Join(dir, "b.biv")
	writeProg(t, a, watchProg, base)
	writeProg(t, b, watchProg+"\n// b\n", base)

	var analyzed []string
	rounds := 0
	err := Watch([]string{a, b}, beyondiv.Options{SkipDependences: true},
		WatchConfig{
			Interval: time.Millisecond,
			Out:      io.Discard,
			AfterRound: func(round, changed int) bool {
				rounds = round
				switch round {
				case 1:
					if changed != 2 {
						t.Fatalf("round 1 analyzed %d, want the full corpus (2)", changed)
					}
					// Touch a (same bytes, new mtime); edit b.
					writeProg(t, a, watchProg, base.Add(time.Minute))
					writeProg(t, b, watchProgEdited, base.Add(time.Minute))
				case 2:
					if changed != 1 {
						t.Fatalf("round 2 analyzed %d, want 1 (only the edited file)", changed)
					}
				case 3:
					if changed != 0 {
						t.Fatalf("round 3 analyzed %d, want 0 (nothing changed)", changed)
					}
					return false
				}
				return true
			},
		},
		func(src Source, prog *beyondiv.Program, err error) {
			if err != nil {
				t.Fatalf("%s: %v", src.Path, err)
			}
			if prog.ClassificationReport() == "" {
				t.Fatalf("%s: empty report", src.Path)
			}
			analyzed = append(analyzed, filepath.Base(src.Path))
		})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("stopped after round %d, want 3", rounds)
	}
	want := []string{"a.biv", "b.biv", "b.biv"}
	if len(analyzed) != len(want) {
		t.Fatalf("analyzed %v, want %v", analyzed, want)
	}
	for i := range want {
		if analyzed[i] != want[i] {
			t.Fatalf("analyzed %v, want %v", analyzed, want)
		}
	}
}

// TestWatchDiscoversNewFiles: a .go file appearing in a watched
// directory is picked up and analyzed on the next round.
func TestWatchDiscoversNewFiles(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	first := filepath.Join(dir, "first.go")
	late := filepath.Join(dir, "late.go")
	wrap := func(prog string) string {
		return "package examples\n\nvar Prog = `" + prog + "`\n"
	}
	writeProg(t, first, wrap(watchProg), base)

	var analyzed []string
	err := Watch([]string{dir}, beyondiv.Options{SkipDependences: true},
		WatchConfig{
			Interval: time.Millisecond,
			Out:      io.Discard,
			AfterRound: func(round, changed int) bool {
				switch round {
				case 1:
					if changed != 1 {
						t.Fatalf("round 1 analyzed %d, want 1", changed)
					}
					writeProg(t, late, wrap(watchProgEdited), base)
				case 2:
					if changed != 1 {
						t.Fatalf("round 2 analyzed %d, want 1 (the new file)", changed)
					}
					return false
				}
				return true
			},
		},
		func(src Source, prog *beyondiv.Program, err error) {
			if err != nil {
				t.Fatalf("%s: %v", src.Path, err)
			}
			analyzed = append(analyzed, filepath.Base(src.Path))
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(analyzed) != 2 || analyzed[1] != "late.go" {
		t.Fatalf("analyzed %v, want [first.go late.go]", analyzed)
	}
}

// TestWatchNeedsArgs: stdin cannot be watched.
func TestWatchNeedsArgs(t *testing.T) {
	err := Watch(nil, beyondiv.Options{}, WatchConfig{}, func(Source, *beyondiv.Program, error) {})
	if err == nil {
		t.Fatal("watch with no arguments must fail")
	}
}
