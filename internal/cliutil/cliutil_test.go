package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadProgramPlainFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.biv")
	const src = "j = 0\nL1: for i = 1 to n { j = j + i }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Errorf("ReadProgram = %q, want %q", got, src)
	}
}

func TestReadProgramGoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	goSrc := "package main\n\nconst program = `\nj = 0\nL1: for i = 1 to n { j = j + i }\n`\n\nfunc main() {}\n"
	if err := os.WriteFile(path, []byte(goSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "\nj = 0\nL1: for i = 1 to n { j = j + i }\n"
	if got != want {
		t.Errorf("ReadProgram = %q, want %q", got, want)
	}
}

func TestReadProgramGoFileNoLiteral(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte("package main\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProgram(path); err == nil || !strings.Contains(err.Error(), "no backtick") {
		t.Errorf("want backtick error, got %v", err)
	}
}

// TestReadProgramExamples: every shipped example's embedded program
// must extract and be non-empty.
func TestReadProgramExamples(t *testing.T) {
	matches, err := filepath.Glob("../../examples/*/main.go")
	if err != nil || len(matches) == 0 {
		t.Skipf("no examples found: %v", err)
	}
	for _, m := range matches {
		src, err := ReadProgram(m)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if strings.TrimSpace(src) == "" {
			t.Errorf("%s: extracted program is empty", m)
		}
	}
}

func TestRecorderLazy(t *testing.T) {
	var off Telemetry
	if off.Recorder() != nil {
		t.Error("no flags set: Recorder must stay nil")
	}
	on := Telemetry{Stats: true}
	rec := on.Recorder()
	if rec == nil {
		t.Fatal("Stats set: Recorder must be non-nil")
	}
	if on.Recorder() != rec {
		t.Error("Recorder must be stable across calls")
	}
}
