package cliutil

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"beyondiv"
)

func TestReadProgramPlainFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.biv")
	const src = "j = 0\nL1: for i = 1 to n { j = j + i }\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Errorf("ReadProgram = %q, want %q", got, src)
	}
}

func TestReadProgramGoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	goSrc := "package main\n\nconst program = `\nj = 0\nL1: for i = 1 to n { j = j + i }\n`\n\nfunc main() {}\n"
	if err := os.WriteFile(path, []byte(goSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "\nj = 0\nL1: for i = 1 to n { j = j + i }\n"
	if got != want {
		t.Errorf("ReadProgram = %q, want %q", got, want)
	}
}

func TestReadProgramGoFileNoLiteral(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte("package main\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProgram(path); err == nil || !strings.Contains(err.Error(), "no backtick") {
		t.Errorf("want backtick error, got %v", err)
	}
}

// TestReadProgramExamples: every shipped example's embedded program
// must extract and be non-empty.
func TestReadProgramExamples(t *testing.T) {
	matches, err := filepath.Glob("../../examples/*/main.go")
	if err != nil || len(matches) == 0 {
		t.Skipf("no examples found: %v", err)
	}
	for _, m := range matches {
		src, err := ReadProgram(m)
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if strings.TrimSpace(src) == "" {
			t.Errorf("%s: extracted program is empty", m)
		}
	}
}

func TestRecorderLazy(t *testing.T) {
	var off Telemetry
	if off.Recorder() != nil {
		t.Error("no flags set: Recorder must stay nil")
	}
	on := Telemetry{Stats: true}
	rec := on.Recorder()
	if rec == nil {
		t.Fatal("Stats set: Recorder must be non-nil")
	}
	if on.Recorder() != rec {
		t.Error("Recorder must be stable across calls")
	}
}

// TestExitCodeContract pins the exit-status taxonomy the commands
// share: 0 ok, 1 input/limit/IO, 2 contained internal fault.
func TestExitCodeContract(t *testing.T) {
	if ExitCode(nil) != 0 {
		t.Error("nil error must exit 0")
	}
	if ExitCode(errors.New("file not found")) != 1 {
		t.Error("plain error must exit 1")
	}
	if ExitCode(&beyondiv.Error{Phase: "parse", Err: errors.New("bad token")}) != 1 {
		t.Error("input diagnostic (no stack) must exit 1")
	}
	if ExitCode(&beyondiv.Error{Phase: "iv", Err: errors.New("boom"), Stack: []byte("goroutine 1")}) != 2 {
		t.Error("contained fault (stack captured) must exit 2")
	}
}

// TestParseFlagsExitCodes re-executes the test binary to observe
// ParseFlags' process exits: a bad flag is an input error (1, not the
// flag package's default 2 — that code is reserved for contained
// faults), and -h is not an error at all (0).
func TestParseFlagsExitCodes(t *testing.T) {
	if args := os.Getenv("CLIUTIL_PARSEFLAGS_CHILD"); args != "" {
		os.Args = append([]string{"testtool"}, strings.Fields(args)...)
		ParseFlags("testtool")
		fmt.Println("PARSED_OK")
		os.Exit(0)
	}
	cases := []struct {
		args string
		exit int
		ok   bool // the child reached the post-parse marker
	}{
		{"-h", 0, false},
		{"-no-such-flag", 1, false},
		{"-test.v=false", 0, true}, // a registered flag parses clean
	}
	for _, tc := range cases {
		cmd := exec.Command(os.Args[0], "-test.run", "TestParseFlagsExitCodes")
		cmd.Env = append(os.Environ(), "CLIUTIL_PARSEFLAGS_CHILD="+tc.args)
		out, err := cmd.CombinedOutput()
		exit := 0
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%q: %v", tc.args, err)
		}
		if exit != tc.exit {
			t.Errorf("args %q: exit %d, want %d\n%s", tc.args, exit, tc.exit, out)
		}
		if got := strings.Contains(string(out), "PARSED_OK"); got != tc.ok {
			t.Errorf("args %q: parsed marker %v, want %v\n%s", tc.args, got, tc.ok, out)
		}
	}
}
