package cliutil

import (
	"flag"

	"beyondiv"
)

// CacheFlags is the persistent-cache flag pair shared by the commands:
// -cache-dir points the analyzer at an on-disk artifact store (shared
// across runs and processes; see beyondiv.Options.CacheDir),
// -cache-max-bytes bounds it. Register the flags before flag.Parse and
// thread them into the analysis with Apply.
type CacheFlags struct {
	Dir      string
	MaxBytes int64
}

// Register installs -cache-dir and -cache-max-bytes on the default
// flag set.
func (c *CacheFlags) Register() {
	flag.StringVar(&c.Dir, "cache-dir", "",
		"persist analysis results in a content-addressed store under `dir`, shared across runs and processes")
	flag.Int64Var(&c.MaxBytes, "cache-max-bytes", 0,
		"size budget of -cache-dir in `bytes`; oldest entries evicted beyond it (0 = 256 MiB)")
}

// Apply threads the flags into opts. writeOnly disables disk reads
// while keeping writes — for invocations that need the live SSA form
// (dumps, transforms, interpretation), which a decoded artifact cannot
// provide; their fresh runs still warm the store.
func (c *CacheFlags) Apply(opts *beyondiv.Options, writeOnly bool) {
	opts.CacheDir = c.Dir
	opts.CacheMaxBytes = c.MaxBytes
	opts.CacheDirWriteOnly = writeOnly
}
