// Package cliutil holds the observability plumbing shared by the
// commands: the -stats/-trace/-jsonl/-explain/-cpuprofile/-memprofile
// per-run flag set, the -debug-addr process-lifetime tier (metrics
// registry, flight recorder, debug HTTP server), lazy recorder
// construction, pprof start/stop, and program input reading
// (including extraction from the examples' Go files).
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"beyondiv"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/debugserv"
	"beyondiv/internal/obs/metrics"
)

// ExitCode classifies an analysis failure for a command's exit status:
// 2 for a contained internal fault (a *beyondiv.Error carrying a panic
// stack — a bug in the analyzer, not in the input), 1 for everything
// else (syntax errors, resource-ceiling hits, I/O failures), 0 for
// nil.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var be *beyondiv.Error
	if errors.As(err, &be) && be.Stack != nil {
		return 2
	}
	return 1
}

// ParseFlags parses the command line under the commands' exit-code
// contract. The default flag set's ExitOnError exits 2 on a bad flag,
// but 2 is reserved for contained internal faults (see ExitCode) — a
// mistyped flag is an input error and must exit 1, while -h/-help is
// not an error at all and exits 0. Call instead of flag.Parse, after
// all flags are registered.
func ParseFlags(tool string) {
	flag.CommandLine.Init(tool, flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(1) // flag package already printed the error and usage
	}
}

// Report prints err prefixed with the tool name (and a contained
// fault's stack) without exiting, for batch tools that keep going
// after one input fails; it returns ExitCode(err).
func Report(tool string, err error) int {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	var be *beyondiv.Error
	if errors.As(err, &be) && be.Stack != nil {
		fmt.Fprintf(os.Stderr, "%s: internal fault contained; stack:\n%s", tool, be.Stack)
	}
	return ExitCode(err)
}

// Fatal prints err prefixed with the tool name and exits with a status
// that distinguishes failure classes (see ExitCode). Structured errors
// already render their phase and source position.
func Fatal(tool string, err error) {
	os.Exit(Report(tool, err))
}

// Telemetry bundles the observability flags of one command: the
// per-run tier (-stats/-trace/-jsonl, backed by an obs.Recorder) and
// the process-lifetime tier (-debug-addr, backed by a metrics
// registry, a flight recorder and the debugserv HTTP server).
// Register the flags with RegisterObsFlags before flag.Parse, call
// Start after it, thread the backends into the analysis with Apply
// (or Recorder/Registry/Flight individually), and Finish at the end.
type Telemetry struct {
	Stats      bool
	TracePath  string
	JSONLPath  string
	Explain    string
	CPUProfile string
	MemProfile string
	DebugAddr  string

	rec     *obs.Recorder
	reg     *metrics.Registry
	fl      *metrics.Flight
	srv     *debugserv.Server
	cpuFile *os.File
}

// flightRuns is the debug server's flight-recorder depth: the last 64
// analyses, with the last 16 failed ones retained separately.
const (
	flightRuns    = 64
	flightErrRuns = 16
)

// RegisterObsFlags installs the full observability flag set — the
// per-run telemetry flags plus -debug-addr — on the default flag set.
// This is the one place the commands' observability wiring lives;
// each main.go just calls this, then Start/Apply/Finish.
func (t *Telemetry) RegisterObsFlags() {
	flag.BoolVar(&t.Stats, "stats", false, "print phase timings and pipeline counters")
	flag.StringVar(&t.TracePath, "trace", "", "write a Chrome trace-event file (chrome://tracing, Perfetto) to `path`")
	flag.StringVar(&t.JSONLPath, "jsonl", "", "write spans, counters and provenance events as JSON lines to `path`")
	flag.StringVar(&t.Explain, "explain", "", "print the classification provenance chain of `var` (e.g. j, or the SSA version j3)")
	flag.StringVar(&t.CPUProfile, "cpuprofile", "", "write a CPU profile to `path`")
	flag.StringVar(&t.MemProfile, "memprofile", "", "write a heap profile to `path`")
	flag.StringVar(&t.DebugAddr, "debug-addr", "", "serve /metrics, /healthz, /lastruns and /debug/pprof on `addr` (e.g. localhost:6060) while the command runs")
}

// RegisterFlags is RegisterObsFlags under its historical name.
func (t *Telemetry) RegisterFlags() { t.RegisterObsFlags() }

// Recorder returns the recorder to thread through the pipeline: non-nil
// exactly when some flag needs a recording, nil (telemetry off at zero
// cost) otherwise.
func (t *Telemetry) Recorder() *obs.Recorder {
	if t.rec == nil && (t.Stats || t.TracePath != "" || t.JSONLPath != "") {
		t.rec = obs.New()
	}
	return t.rec
}

// Registry returns the process-lifetime metrics registry: non-nil
// exactly when -debug-addr asked for the debug server.
func (t *Telemetry) Registry() *metrics.Registry {
	if t.reg == nil && t.DebugAddr != "" {
		t.reg = metrics.NewRegistry()
	}
	return t.reg
}

// Flight returns the flight recorder behind /lastruns: non-nil exactly
// when -debug-addr asked for the debug server.
func (t *Telemetry) Flight() *metrics.Flight {
	if t.fl == nil && t.DebugAddr != "" {
		t.fl = metrics.NewFlight(flightRuns, flightErrRuns)
	}
	return t.fl
}

// Apply threads every observability backend the flags enabled into
// opts; with no observability flags set all three stay nil and the
// pipeline runs at full speed.
func (t *Telemetry) Apply(opts *beyondiv.Options) {
	opts.Obs = t.Recorder()
	opts.Metrics = t.Registry()
	opts.Flight = t.Flight()
}

// DebugURL returns "http://<addr>" of the running debug server, empty
// when none is serving.
func (t *Telemetry) DebugURL() string {
	if t.srv == nil {
		return ""
	}
	return "http://" + t.srv.Addr()
}

// Start begins CPU profiling and, when -debug-addr is set, the debug
// HTTP server (announced on stderr, since the bound port matters for
// addresses like ":0").
func (t *Telemetry) Start() error {
	if t.DebugAddr != "" && t.srv == nil {
		srv, err := debugserv.Serve(t.DebugAddr, t.Registry(), t.Flight())
		if err != nil {
			return err
		}
		t.srv = srv
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s\n", srv.Addr())
	}
	if t.CPUProfile == "" {
		return nil
	}
	f, err := os.Create(t.CPUProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	t.cpuFile = f
	return nil
}

// Finish stops profiling, shuts the debug server down, and renders
// the recording: the -stats text report to w, and the -trace / -jsonl
// files.
func (t *Telemetry) Finish(w io.Writer) error {
	if t.srv != nil {
		if err := t.srv.Close(); err != nil {
			return err
		}
		t.srv = nil
	}
	if t.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := t.cpuFile.Close(); err != nil {
			return err
		}
		t.cpuFile = nil
	}
	if t.MemProfile != "" {
		f, err := os.Create(t.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if t.rec == nil {
		return nil
	}
	if t.Stats {
		if err := t.rec.WriteText(w, true); err != nil {
			return err
		}
	}
	if t.TracePath != "" {
		if err := writeFileWith(t.TracePath, t.rec.WriteChromeTrace); err != nil {
			return err
		}
	}
	if t.JSONLPath != "" {
		if err := writeFileWith(t.JSONLPath, t.rec.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}

func writeFileWith(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AnalyzeSources analyzes command-line sources through the engine: a
// single source runs as a plain Analyze (so -stats keeps the familiar
// one-"analyze" span shape), several run as one concurrent batch over
// opts.Jobs workers. Results come back in input order; a failing
// source carries its own error without affecting the rest.
func AnalyzeSources(srcs []Source, opts beyondiv.Options) []beyondiv.BatchResult {
	an := beyondiv.NewAnalyzer(opts)
	if len(srcs) == 1 {
		prog, err := an.Analyze(srcs[0].Text)
		return []beyondiv.BatchResult{{Source: srcs[0].Text, Program: prog, Err: err}}
	}
	texts := make([]string, len(srcs))
	for i, s := range srcs {
		texts[i] = s.Text
	}
	return an.AnalyzeAll(texts)
}

// OptimizeSources runs the engine's analyze-transform-validate pipeline
// over command-line sources, mirroring AnalyzeSources' shape: one
// source runs inline, several run as a concurrent batch over opts.Jobs
// workers, and results come back in input order with per-source errors.
func OptimizeSources(srcs []Source, opts beyondiv.Options) []beyondiv.OptimizeBatchResult {
	an := beyondiv.NewAnalyzer(opts)
	if len(srcs) == 1 {
		res, err := an.Optimize(srcs[0].Text)
		return []beyondiv.OptimizeBatchResult{{Source: srcs[0].Text, Result: res, Err: err}}
	}
	texts := make([]string, len(srcs))
	for i, s := range srcs {
		texts[i] = s.Text
	}
	return an.OptimizeAll(texts)
}

// Source is one program resolved from the command line: the text to
// analyze and the path it came from, for batch report headers.
type Source struct {
	Path string // display name; "<stdin>" when read from standard input
	Text string
}

// ReadPrograms resolves a command's positional arguments into the
// programs to analyze: no arguments reads one program from standard
// input; each argument may be a program file, an examples-style .go
// file (first backtick literal extracted), or a directory, walked
// recursively in lexical order for .go files with embedded programs
// (other .go files under it are skipped; a directory yielding no
// programs is an error).
func ReadPrograms(args []string) ([]Source, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		return []Source{{Path: "<stdin>", Text: string(b)}}, nil
	}
	var out []Source
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			text, err := ReadProgram(arg)
			if err != nil {
				return nil, err
			}
			out = append(out, Source{Path: arg, Text: text})
			continue
		}
		found := 0
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			text, err := ReadProgram(path)
			if err != nil {
				return nil // a .go file with no embedded program
			}
			out = append(out, Source{Path: path, Text: text})
			found++
			return nil
		})
		if err != nil {
			return nil, err
		}
		if found == 0 {
			return nil, fmt.Errorf("%s: no .go files with embedded programs found", arg)
		}
	}
	return out, nil
}

// ReadProgram reads a mini-language program: from standard input when
// path is empty, from the file otherwise. A .go file (the examples/
// directory embeds each program in a backtick string) yields its first
// backtick raw-string literal, so
//
//	bivopt -stats examples/triangular/main.go
//
// analyzes the program the example embeds.
func ReadProgram(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	src := string(b)
	if strings.HasSuffix(path, ".go") {
		start := rawStringStart(src)
		if start < 0 {
			return "", fmt.Errorf("%s: no backtick program literal found", path)
		}
		end := strings.IndexByte(src[start+1:], '`')
		if end < 0 {
			return "", fmt.Errorf("%s: unterminated backtick literal", path)
		}
		return src[start+1 : start+1+end], nil
	}
	return src, nil
}

// rawStringStart finds the opening backtick of the first raw string
// literal in Go source, ignoring backticks inside // comments (doc
// comments quote mini-language snippets), or -1. Raw strings cannot
// contain backticks, so no deeper lexing is needed.
func rawStringStart(src string) int {
	inComment := false
	for i := 0; i < len(src); i++ {
		switch {
		case inComment:
			if src[i] == '\n' {
				inComment = false
			}
		case src[i] == '/' && i+1 < len(src) && src[i+1] == '/':
			inComment = true
		case src[i] == '`':
			return i
		}
	}
	return -1
}
