package validate_test

import (
	"strings"
	"testing"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/guard"
	"beyondiv/internal/parse"
	"beyondiv/internal/ssa"
	"beyondiv/internal/validate"
)

func buildSSA(t *testing.T, src string) *ssa.Info {
	t.Helper()
	f, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	lim := guard.Default()
	res := cfgbuild.BuildGuarded(f, nil, lim)
	return ssa.BuildScratch(res.Func, nil, lim, nil)
}

func TestFuncsEquivalent(t *testing.T) {
	src := `
	j = 0
	for i = 1 to n {
		j = j + i
		a[j] = i
	}
	`
	// Two independent builds of the same source are trivially
	// equivalent; this pins the harness's plumbing (param enumeration,
	// trace comparison) on a loop whose behaviour varies with n across
	// the grid, including negative and zero trip counts.
	orig := buildSSA(t, src)
	xf := buildSSA(t, src)
	if err := validate.Funcs(orig, xf, validate.Options{}); err != nil {
		t.Fatalf("identical programs reported divergent: %v", err)
	}
}

func TestFuncsCatchesScalarChange(t *testing.T) {
	orig := buildSSA(t, `
	j = 0
	for i = 1 to n { j = j + 2 }
	`)
	xf := buildSSA(t, `
	j = 0
	for i = 1 to n { j = j + 3 }
	`)
	err := validate.Funcs(orig, xf, validate.Options{})
	if err == nil {
		t.Fatal("divergent scalar not caught")
	}
	if !strings.Contains(err.Error(), "scalar j differs") {
		t.Fatalf("wrong diagnosis: %v", err)
	}
}

func TestFuncsCatchesStoreChange(t *testing.T) {
	orig := buildSSA(t, `for i = 1 to n { a[i] = i }`)
	xf := buildSSA(t, `for i = 1 to n { a[i + 1] = i }`)
	err := validate.Funcs(orig, xf, validate.Options{})
	if err == nil {
		t.Fatal("divergent store trace not caught")
	}
	if !strings.Contains(err.Error(), "store") {
		t.Fatalf("wrong diagnosis: %v", err)
	}
}

func TestFuncsCatchesLostScalar(t *testing.T) {
	orig := buildSSA(t, `k = n * 2`)
	xf := buildSSA(t, `q = n * 2`)
	err := validate.Funcs(orig, xf, validate.Options{})
	if err == nil || !strings.Contains(err.Error(), "scalar k lost") {
		t.Fatalf("lost scalar not caught: %v", err)
	}
}

func TestFuncsExtraScalarAllowed(t *testing.T) {
	// Transformations may introduce fresh scalars (normalization
	// counters); only original scalars are compared.
	orig := buildSSA(t, `k = n * 2`)
	xf := buildSSA(t, `
	extra = 7
	k = n * 2
	`)
	if err := validate.Funcs(orig, xf, validate.Options{}); err != nil {
		t.Fatalf("extra scalar rejected: %v", err)
	}
}

func TestFuncsSkipsUnboundedOriginal(t *testing.T) {
	// The original never terminates: no assignment yields ground truth,
	// so validation must skip every run rather than fail or hang.
	orig := buildSSA(t, `loop { j = j + 1 }`)
	xf := buildSSA(t, `loop { j = j + 2 }`)
	if err := validate.Funcs(orig, xf, validate.Options{MaxSteps: 1000}); err != nil {
		t.Fatalf("step-limited original should skip, got: %v", err)
	}
}

func TestFuncsGridCap(t *testing.T) {
	// Five parameters over the default 8-value grid is 32768 full cross
	// products; MaxRuns must cap enumeration (and still find this
	// first-run divergence: every parameter at grid[0]).
	orig := buildSSA(t, `k = p1 + p2 + p3 + p4 + p5`)
	xf := buildSSA(t, `k = p1 + p2 + p3 + p4 + p5 + 1`)
	err := validate.Funcs(orig, xf, validate.Options{MaxRuns: 10})
	if err == nil {
		t.Fatal("divergence within capped runs not caught")
	}
}
