// Trace-order comparison semantics: ExactOrder is the byte-identical
// global trace; PerCellOrder admits the legal reorderings interchange
// and distribution perform (global permutation) while still pinning
// every cell's write sequence (output dependences are ordered by
// legality, so a per-cell swap is always a bug).
package validate

import (
	"testing"

	"beyondiv/internal/interp"
)

func w(arr string, idx, val int64) interp.ArrayWrite {
	return interp.ArrayWrite{Array: arr, Index: idx, Value: val}
}

func TestCompareWritesExactOrder(t *testing.T) {
	want := []interp.ArrayWrite{w("a", 0, 1), w("a", 1, 2)}
	if err := compareWrites(want, []interp.ArrayWrite{w("a", 0, 1), w("a", 1, 2)}, ExactOrder); err != nil {
		t.Errorf("identical traces: %v", err)
	}
	if err := compareWrites(want, []interp.ArrayWrite{w("a", 1, 2), w("a", 0, 1)}, ExactOrder); err == nil {
		t.Error("globally permuted trace must fail ExactOrder")
	}
	if err := compareWrites(want, want[:1], ExactOrder); err == nil {
		t.Error("shorter trace must fail")
	}
}

func TestCompareWritesPerCellOrder(t *testing.T) {
	// Interchange-style permutation: different cells swap globally, each
	// cell's own sequence intact.
	want := []interp.ArrayWrite{w("a", 0, 1), w("b", 0, 10), w("a", 0, 2), w("b", 0, 20)}
	got := []interp.ArrayWrite{w("b", 0, 10), w("b", 0, 20), w("a", 0, 1), w("a", 0, 2)}
	if err := compareWrites(want, got, PerCellOrder); err != nil {
		t.Errorf("legal per-cell reordering rejected: %v", err)
	}
	// The same trace must fail the exact comparison — the two modes are
	// really different.
	if err := compareWrites(want, got, ExactOrder); err == nil {
		t.Error("global permutation must still fail ExactOrder")
	}
	// A swap within one cell is an output-dependence violation.
	bad := []interp.ArrayWrite{w("a", 0, 2), w("b", 0, 10), w("a", 0, 1), w("b", 0, 20)}
	if err := compareWrites(want, bad, PerCellOrder); err == nil {
		t.Error("per-cell order violation must fail")
	}
	// A write moved to a different cell fails even with equal lengths.
	moved := []interp.ArrayWrite{w("a", 1, 1), w("b", 0, 10), w("a", 0, 2), w("b", 0, 20)}
	if err := compareWrites(want, moved, PerCellOrder); err == nil {
		t.Error("write against a cell the original never touched must fail")
	}
	// Extra writes fail in either mode.
	if err := compareWrites(want, append(append([]interp.ArrayWrite{}, got...), w("c", 0, 1)), PerCellOrder); err == nil {
		t.Error("longer trace must fail")
	}
}
