package validate

import (
	"errors"
	"fmt"
	"slices"

	"beyondiv/internal/ast"
	"beyondiv/internal/interp"
	"beyondiv/internal/ssa"
)

// Parallel checks the parallel execution backend against the sequential
// reference interpreter: for every grid assignment, running file with
// the marked loops chunked across workers goroutines must produce the
// byte-identical observable outcome — the same global store trace,
// element for element, and the exact same final scalar environment.
// This is strictly ExactOrder: the chunked executor's deterministic
// merge is *defined* to reconstruct the sequential interleaving, so any
// divergence at all means either the merge or the marking (a loop
// annotated parallel that is not) is wrong. info supplies the parameter
// names the grid enumerates; marks maps effective loop labels (see
// cfgbuild.ForLabels) to true.
func Parallel(info *ssa.Info, file *ast.File, marks map[string]bool, workers int, opts Options) error {
	if len(marks) == 0 {
		return nil
	}
	names := make([]string, 0, len(info.Params))
	for n := range info.Params {
		names = append(names, n)
	}
	slices.Sort(names)

	grid := opts.grid()
	runs := 1
	for range names {
		if runs > opts.maxRuns() {
			break
		}
		runs *= len(grid)
	}
	if runs > opts.maxRuns() {
		runs = opts.maxRuns()
	}

	params := map[string]int64{}
	for r := 0; r < runs; r++ {
		x := r
		for _, n := range names {
			params[n] = grid[x%len(grid)]
			x /= len(grid)
		}
		if err := compareParallelOnce(file, marks, workers, params, opts.maxSteps()); err != nil {
			return fmt.Errorf("validate: parallel: params %v: %w", fmtParams(names, params), err)
		}
	}
	return nil
}

func compareParallelOnce(file *ast.File, marks map[string]bool, workers int, params map[string]int64, maxSteps int) error {
	cfg := interp.Config{Params: params, MaxSteps: maxSteps}
	want, err := interp.RunAST(file, cfg)
	if errors.Is(err, interp.ErrStepLimit) {
		return nil // no ground truth under this assignment
	}
	if err != nil {
		return fmt.Errorf("sequential run failed: %w", err)
	}
	// Modest slack: the chunked loop evaluates invariant bounds once
	// instead of per iteration, so it normally uses *fewer* ticks, but a
	// runtime fallback to the sequential path (step-sign mismatch)
	// evaluates the header expressions twice.
	pcfg := cfg
	pcfg.MaxSteps = 2*maxSteps + 1024
	got, err := interp.RunASTParallel(file, pcfg, marks, workers)
	if err != nil {
		return fmt.Errorf("parallel run failed: %w", err)
	}
	if err := compareWrites(want.Writes, got.Writes, ExactOrder); err != nil {
		return err
	}
	if len(want.Scalars) != len(got.Scalars) {
		return fmt.Errorf("scalar environment differs: %d scalars sequentially, %d in parallel",
			len(want.Scalars), len(got.Scalars))
	}
	for name, w := range want.Scalars {
		g, ok := got.Scalars[name]
		if !ok {
			return fmt.Errorf("scalar %s missing from the parallel run (sequentially %d)", name, w)
		}
		if g != w {
			return fmt.Errorf("scalar %s differs: %d sequentially, %d in parallel", name, w, g)
		}
	}
	return nil
}
