// Package validate is the translation-validation harness for the
// transformation layer: it checks that an optimized program is
// observably equivalent to the original by running both through the SSA
// interpreter (internal/interp) over a deterministic grid of parameter
// assignments and comparing the observable outcome bit for bit — the
// final value of every source scalar and the complete array store
// trace, in order.
//
// This is the mechanical answer to "does the rewrite preserve the
// loop's algebra?": rather than trusting the classification a transform
// consumed, every engine transform pass is replayed against the
// interpreter, in the spirit of the verified polynomial loop reasoning
// of Humenberger et al. and de Oliveira et al. — except checked
// dynamically on a grid, which is exactly what two interpreters buy.
package validate

import (
	"errors"
	"fmt"
	"slices"

	"beyondiv/internal/interp"
	"beyondiv/internal/ssa"
)

// TraceOrder selects how two store traces are compared.
type TraceOrder int

const (
	// ExactOrder requires the global write traces to be identical
	// element for element — the strongest check, right for transforms
	// that preserve execution order (peeling, strength reduction, the
	// parallel backend's deterministic merge).
	ExactOrder TraceOrder = iota
	// PerCellOrder requires the same total number of writes and, for
	// every individual array cell, the identical sequence of values
	// written to it. Loop restructuring (interchange, distribution)
	// legally permutes the *global* interleaving of writes to different
	// cells, but legality — every dependence preserved, output
	// dependences included — guarantees the per-cell sequences survive;
	// this mode checks exactly that invariant.
	PerCellOrder
)

// Options configure the grid.
type Options struct {
	// Grid is the candidate value set each parameter draws from; the
	// default mixes negative, zero, small and moderate trip counts.
	Grid []int64
	// MaxRuns caps the number of parameter assignments tried (the full
	// cross product is enumerated when it is smaller). Default 48.
	MaxRuns int
	// MaxSteps is the step budget for the original program; the
	// transformed program gets a proportional slack budget, since
	// rewrites legitimately change the executed instruction count.
	// Default 200000.
	MaxSteps int
	// Order is how store traces are compared (default ExactOrder; the
	// engine switches to PerCellOrder once a trace-reordering transform
	// has fired).
	Order TraceOrder
}

func (o Options) grid() []int64 {
	if len(o.Grid) > 0 {
		return o.Grid
	}
	return []int64{-3, -1, 0, 1, 2, 3, 7, 16}
}

func (o Options) maxRuns() int {
	if o.MaxRuns > 0 {
		return o.MaxRuns
	}
	return 48
}

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return 200_000
}

// Funcs checks that xf is observably equivalent to orig over the grid:
// for every tried parameter assignment, the array store traces are
// identical element for element and every scalar the original program
// reports has the identical final value in the transformed one (the
// transformed program may introduce fresh scalars — normalization
// counters — but may never change or lose an original one). Parameter
// assignments under which the original exceeds the step budget are
// skipped: there is no ground truth to compare against. Returns nil on
// equivalence, or an error naming the first diverging assignment and
// observation.
func Funcs(orig, xf *ssa.Info, opts Options) error {
	names := make([]string, 0, len(orig.Params))
	for n := range orig.Params {
		names = append(names, n)
	}
	slices.Sort(names)

	grid := opts.grid()
	runs := 1
	for range names {
		if runs > opts.maxRuns() {
			break
		}
		runs *= len(grid)
	}
	if runs > opts.maxRuns() {
		runs = opts.maxRuns()
	}

	params := map[string]int64{}
	for r := 0; r < runs; r++ {
		// Mixed-radix enumeration: run r assigns digit (r / len^i) % len
		// of the grid to parameter i — deterministic, and the first run
		// is all-grid[0].
		x := r
		for _, n := range names {
			params[n] = grid[x%len(grid)]
			x /= len(grid)
		}
		if err := compareOnce(orig, xf, params, opts.maxSteps(), opts.Order); err != nil {
			return fmt.Errorf("validate: params %v: %w", fmtParams(names, params), err)
		}
	}
	return nil
}

// compareOnce runs both programs under one parameter assignment.
func compareOnce(orig, xf *ssa.Info, params map[string]int64, maxSteps int, order TraceOrder) error {
	want, err := interp.RunSSA(orig, interp.Config{Params: params, MaxSteps: maxSteps})
	if errors.Is(err, interp.ErrStepLimit) {
		return nil // no ground truth under this assignment
	}
	if err != nil {
		return fmt.Errorf("original program failed: %w", err)
	}
	// The transformed program gets slack: added instructions (peeled
	// bodies, normalization restores) must not fail validation on budget
	// alone, while introduced non-termination still surfaces.
	got, err := interp.RunSSA(xf, interp.Config{Params: params, MaxSteps: 4*maxSteps + 1024})
	if err != nil {
		return fmt.Errorf("transformed program failed: %w", err)
	}
	if err := compareWrites(want.Writes, got.Writes, order); err != nil {
		return err
	}
	for name, w := range want.Scalars {
		g, ok := got.Scalars[name]
		if !ok {
			return fmt.Errorf("scalar %s lost by the transformation (originally %d)", name, w)
		}
		if g != w {
			return fmt.Errorf("scalar %s differs: %d originally, %d transformed", name, w, g)
		}
	}
	return nil
}

// compareWrites checks two store traces under the selected order.
func compareWrites(want, got []interp.ArrayWrite, order TraceOrder) error {
	if len(want) != len(got) {
		return fmt.Errorf("store trace length differs: %d writes originally, %d transformed",
			len(want), len(got))
	}
	if order == PerCellOrder {
		type cell struct {
			array string
			index int64
		}
		seq := map[cell][]int64{}
		for _, w := range want {
			c := cell{w.Array, w.Index}
			seq[c] = append(seq[c], w.Value)
		}
		for i, w := range got {
			c := cell{w.Array, w.Index}
			s := seq[c]
			if len(s) == 0 {
				return fmt.Errorf("store %d unexpected: %s[%d]=%d has no matching original write",
					i, w.Array, w.Index, w.Value)
			}
			if s[0] != w.Value {
				return fmt.Errorf("cell %s[%d] write sequence differs: next original value %d, transformed wrote %d",
					w.Array, w.Index, s[0], w.Value)
			}
			seq[c] = s[1:]
		}
		return nil
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("store %d differs: %s[%d]=%d originally, %s[%d]=%d transformed",
				i, want[i].Array, want[i].Index, want[i].Value,
				got[i].Array, got[i].Index, got[i].Value)
		}
	}
	return nil
}

func fmtParams(names []string, params map[string]int64) string {
	if len(names) == 0 {
		return "{}"
	}
	out := "{"
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, params[n])
	}
	return out + "}"
}
