package xform

import (
	"fmt"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/depend"
	"beyondiv/internal/engine"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
)

// parmark — the annotation pass that promotes depend.Parallelizable
// from a report line into an artifact the execution backend acts on.
//
// A loop is marked parallel when all of the following hold:
//
//   - the §6 dependence tester proves no flow/anti/output dependence is
//     carried by the loop (depend.Parallelizable);
//   - no loop-carried *scalar* state exists either: every header φ other
//     than the loop counter's is unused inside the loop (a body use of a
//     header φ is exactly a read of a previous iteration's value — a
//     scalar recurrence the array-dependence tester cannot see);
//   - the loop is a counted `for` in the chunkable syntactic shape
//     (interp.ParChunkable), so the mark is a promise the executor can
//     actually keep;
//   - the loop's effective label is unambiguous (labels are the key the
//     mark travels under).
//
// The pass runs at engine.TierMark: it rewrites nothing, so the engine
// skips cloning, re-analysis and per-pass translation validation, and
// instead validates the final marks after the fixed point by running
// the marked loops chunked across goroutines and comparing against the
// sequential interpreter byte for byte. The rewrite count is the
// symmetric difference against the previous round's marks, so the fixed
// point converges once the restructuring passes stop changing the loop
// structure.
func runParmark(st *engine.State) (int, error) {
	deps := depend.ResultOf(st)
	if deps == nil {
		// Pipeline without the dependence pass: nothing is provable, and
		// that is a no-op, not an error — Optimize with SkipDependences
		// still runs the classic scalar pipeline.
		return 0, nil
	}

	infoByHeader := make(map[*ir.Block]cfgbuild.LoopInfo, len(st.CFG.Loops))
	labelCount := map[string]int{}
	for _, li := range st.CFG.Loops {
		infoByHeader[li.Header] = li
		labelCount[li.Label]++
	}
	chunkable := map[string]bool{}
	for f, lbl := range cfgbuild.ForLabels(st.File) {
		if interp.ParChunkable(f) {
			chunkable[lbl] = true
		}
	}

	marks := engine.ParMarks{}
	for _, l := range st.Forest.Loops {
		li, ok := infoByHeader[l.Header]
		if !ok || li.Var == "" || l.Label == "" {
			continue // not a counted for-loop
		}
		if labelCount[l.Label] != 1 || !chunkable[l.Label] {
			continue
		}
		if ok, blocking := depend.Parallelizable(deps, l); !ok {
			st.Obs().Decide(l.Label, "parmark.blocked",
				fmt.Sprintf("%d carried dependences", len(blocking)))
			continue
		}
		if phi := carriedScalarUse(st, l, li.Var); phi != "" {
			st.Obs().Decide(l.Label, "parmark.blocked",
				fmt.Sprintf("carried scalar recurrence through %s", phi))
			continue
		}
		marks[l.Label] = true
		st.Obs().Decide(l.Label, "parmark.marked",
			"no carried array dependence, no carried scalar, chunkable shape")
	}

	prev := engine.ParMarksOf(st)
	n := 0
	for lbl := range marks {
		if !prev[lbl] {
			n++
		}
	}
	for lbl := range prev {
		if !marks[lbl] {
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	st.Put(engine.ParMarksKey, marks)
	st.Metrics().Add("engine.xform.parmark.marked", int64(len(marks)))
	chargeBudget(st, "parmark", n)
	return n, nil
}

// carriedScalarUse returns the source name of a non-counter header φ
// that is read inside the loop — a loop-carried scalar recurrence that
// makes concurrent iterations unsafe — or "" when none exists. A φ
// whose carried arguments are all the φ itself is invariant through the
// loop and harmless; a φ that is only read *after* the loop is the
// last-writer-wins case the chunk merge reproduces exactly.
func carriedScalarUse(st *engine.State, l *loops.Loop, counter string) string {
	for _, p := range l.Header.Values {
		if p.Op != ir.OpPhi || st.SSA.VarOf(p) == counter {
			continue
		}
		invariant := true
		for i, arg := range p.Args {
			if l.Contains(p.Block.Preds[i]) && arg != p {
				invariant = false
				break
			}
		}
		if invariant {
			continue
		}
		for _, b := range l.Blocks {
			if b.Control == p {
				return displayName(st, p)
			}
			for _, u := range b.Values {
				if u == p {
					continue
				}
				for _, a := range u.Args {
					if a == p {
						return displayName(st, p)
					}
				}
			}
		}
	}
	return ""
}

func displayName(st *engine.State, v *ir.Value) string {
	if n := st.SSA.VarOf(v); n != "" {
		return n
	}
	return fmt.Sprintf("v%d", v.ID)
}
