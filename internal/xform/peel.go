// Package xform implements the two consumers of the classification that
// the paper discusses: loop peeling for wrap-around variables (§4.1 —
// "peel off the first iteration of the loop and replace the wrap-around
// variable with the appropriate induction variable") and classical
// strength reduction driven by linear families (§1's original use of
// induction variables).
package xform

import (
	"beyondiv/internal/ast"
	"beyondiv/internal/token"
)

// PeelFor peels the first iteration of a counted loop at the AST level:
//
//	for i = lo to hi { body }
//
// becomes
//
//	i = lo
//	if i <= hi {
//	    body
//	    for i = lo+step to hi { body }
//	}
//
// After peeling, a first-order wrap-around variable in the original
// loop classifies as a plain induction variable in the residual loop
// (its initial value now "fits the sequence", §4.1).
func PeelFor(f *ast.For) ast.Stmt {
	step := f.Step
	if step == nil {
		step = &ast.Num{Value: 1}
	}
	stay := token.LE
	if s, isNum := constOf(step); isNum && s < 0 {
		stay = token.GE
	}

	peeledVar := &ast.Assign{
		LHS: &ast.Ident{Name: f.Var.Name},
		RHS: f.Lo,
	}
	// The residual lower bound reads the loop variable itself (not lo
	// again): the peeled body may have modified either, and `i + step`
	// is exactly what the original latch would compute.
	residual := &ast.For{
		Label: f.Label,
		Var:   &ast.Ident{Name: f.Var.Name},
		Lo:    &ast.Bin{Op: token.PLUS, X: &ast.Ident{Name: f.Var.Name}, Y: step},
		Hi:    f.Hi,
		Step:  f.Step,
		Body:  f.Body,
		KwPos: f.KwPos,
	}
	guarded := &ast.If{
		Cond: &ast.Bin{Op: stay, X: &ast.Ident{Name: f.Var.Name}, Y: f.Hi},
		Then: &ast.Block{Stmts: append(ast.CloneStmts(f.Body.Stmts), residual)},
	}
	return &ast.Block{Stmts: []ast.Stmt{peeledVar, guarded}}
}

// PeelProgram peels the first iteration of every for-loop whose label
// is in the set (nil peels every for-loop); returns the rewritten file
// and how many loops were peeled.
func PeelProgram(file *ast.File, labels map[string]bool) (*ast.File, int) {
	count := 0
	var rewrite func(list []ast.Stmt) []ast.Stmt
	rewrite = func(list []ast.Stmt) []ast.Stmt {
		out := make([]ast.Stmt, 0, len(list))
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				if labels == nil || labels[v.Label] {
					count++
					// Splice the peeled block's statements inline (the
					// grammar has no bare-block statement).
					peeled := PeelFor(v).(*ast.Block)
					out = append(out, peeled.Stmts...)
					continue
				}
				out = append(out, v)
			case *ast.Loop:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.While:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.If:
				v.Then.Stmts = rewrite(v.Then.Stmts)
				if v.Else != nil {
					v.Else.Stmts = rewrite(v.Else.Stmts)
				}
				out = append(out, v)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	file.Stmts = rewrite(file.Stmts)
	return file, count
}

func constOf(e ast.Expr) (int64, bool) {
	switch v := e.(type) {
	case *ast.Num:
		return v.Value, true
	case *ast.Unary:
		c, ok := constOf(v.X)
		return -c, ok
	}
	return 0, false
}
