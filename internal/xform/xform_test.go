package xform

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/interp"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
	"beyondiv/internal/ssa"
)

var xfParams = map[string]int64{"n": 11, "m": 30, "c": 2, "k": 3}

// sameBehaviour compares the observable behaviour of two programs under
// the AST interpreter.
func sameBehaviour(t *testing.T, src1 string, file2Src interface{}) bool {
	t.Helper()
	f1, err := parse.File(src1)
	if err != nil {
		t.Fatal(err)
	}
	var r2 *interp.Result
	cfg := interp.Config{Params: xfParams, MaxSteps: 300_000}
	switch v := file2Src.(type) {
	case string:
		f2, err := parse.File(v)
		if err != nil {
			t.Fatal(err)
		}
		r2, err = interp.RunAST(f2, cfg)
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("bad arg")
	}
	r1, err := interp.RunAST(f1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Writes) != len(r2.Writes) {
		t.Errorf("write counts differ: %d vs %d", len(r1.Writes), len(r2.Writes))
		return false
	}
	for i := range r1.Writes {
		if r1.Writes[i] != r2.Writes[i] {
			t.Errorf("write %d differs: %v vs %v", i, r1.Writes[i], r2.Writes[i])
			return false
		}
	}
	for k, v := range r1.Scalars {
		if v2, ok := r2.Scalars[k]; ok && v2 != v {
			t.Errorf("scalar %s differs: %d vs %d", k, v, v2)
			return false
		}
	}
	return true
}

// TestPeelWrapAround reproduces §4.1: peeling the L9 loop turns the
// wrap-around iml into a plain induction variable of the residual loop.
func TestPeelWrapAround(t *testing.T) {
	src := `
iml = n
L9: for i = 1 to n {
    a[i] = a[iml] + 1
    iml = i
}
`
	// Before: iml's header φ is a wrap-around.
	before, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	l9 := before.LoopByLabel("L9")
	imlPhi := findHeaderPhi(before, l9, "iml")
	if imlPhi == nil {
		t.Fatal("no iml φ before peeling")
	}
	if c := before.ClassOf(l9, imlPhi); c.Kind != iv.WrapAround {
		t.Fatalf("iml before peeling = %s, want wrap-around", c)
	}

	// Peel.
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	peeled, n := PeelProgram(file, map[string]bool{"L9": true})
	if n != 1 {
		t.Fatalf("peeled %d loops, want 1", n)
	}
	peeledSrc := peeled.String()

	// Behaviour is unchanged.
	if !sameBehaviour(t, src, peeledSrc) {
		t.Fatalf("peeling changed behaviour:\n%s", peeledSrc)
	}

	// After: iml classifies as a linear IV in the residual loop.
	after, err := iv.AnalyzeProgram(peeledSrc)
	if err != nil {
		t.Fatal(err)
	}
	rl := after.LoopByLabel("L9")
	if rl == nil {
		t.Fatalf("residual L9 missing:\n%s", peeledSrc)
	}
	phi := findHeaderPhi(after, rl, "iml")
	if phi == nil {
		t.Fatalf("no residual iml φ:\n%s", after.SSA.Func)
	}
	if c := after.ClassOf(rl, phi); c.Kind != iv.Linear {
		t.Errorf("iml after peeling = %s, want linear (§4.1)", c)
	}
}

func findHeaderPhi(a *iv.Analysis, l *loops.Loop, name string) *ir.Value {
	for _, v := range l.Header.Values {
		if v.Op == ir.OpPhi && a.SSA.VarOf(v) == name {
			return v
		}
	}
	return nil
}

// TestPeelPreservesBehaviourQuick peels every labeled for-loop in
// random programs and compares behaviour.
func TestPeelPreservesBehaviourQuick(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		src := gen.Program(seed)
		f1, err := parse.File(src)
		if err != nil {
			return false
		}
		f2, err := parse.File(src)
		if err != nil {
			return false
		}
		peeled, _ := PeelProgram(f2, nil) // peel every for-loop

		cfg := interp.Config{Params: xfParams, MaxSteps: 150_000}
		r1, err1 := interp.RunAST(f1, cfg)
		r2, err2 := interp.RunAST(peeled, cfg)
		if err1 != nil || err2 != nil {
			// Step limits are inconclusive (peeling shifts the budget).
			return err1 == interp.ErrStepLimit || err2 == interp.ErrStepLimit
		}
		if len(r1.Writes) != len(r2.Writes) {
			t.Logf("seed %d: writes %d vs %d\n%s", seed, len(r1.Writes), len(r2.Writes), src)
			return false
		}
		for i := range r1.Writes {
			if r1.Writes[i] != r2.Writes[i] {
				t.Logf("seed %d: write %d differs\n%s", seed, i, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// buildAnalysis builds the full pipeline for strength reduction tests.
func buildAnalysis(t *testing.T, src string) *iv.Analysis {
	t.Helper()
	a, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// runSSAWith counts multiplication executions.
func runSSAWith(t *testing.T, info *ssa.Info) (*interp.Result, int) {
	t.Helper()
	muls := 0
	res, err := interp.RunSSAHooked(info, interp.Config{Params: xfParams, MaxSteps: 300_000}, interp.Hooks{
		OnEval: func(v *ir.Value, val int64) {
			if v.Op == ir.OpMul {
				muls++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, muls
}

// TestStrengthReduce replaces the address multiplication in a classic
// array loop with an addition-maintained IV; behaviour is preserved,
// SSA stays valid, and the dynamic multiplication count drops.
func TestStrengthReduce(t *testing.T) {
	src := `
L1: for i = 1 to n {
    a[4 * i + 3] = i
}
`
	a := buildAnalysis(t, src)
	before, mulsBefore := runSSAWith(t, a.SSA)
	if mulsBefore == 0 {
		t.Fatal("expected multiplications before reduction")
	}

	n := ReduceStrength(a)
	if n != 1 {
		t.Fatalf("reduced %d multiplications, want 1", n)
	}
	if errs := ssa.Verify(a.SSA); len(errs) != 0 {
		t.Fatalf("SSA broken after reduction: %v\n%s", errs, a.SSA.Func)
	}
	after, mulsAfter := runSSAWith(t, a.SSA)
	if mulsAfter >= mulsBefore {
		t.Errorf("muls: before %d, after %d — no win", mulsBefore, mulsAfter)
	}
	if len(before.Writes) != len(after.Writes) {
		t.Fatalf("writes differ: %d vs %d", len(before.Writes), len(after.Writes))
	}
	for i := range before.Writes {
		if before.Writes[i] != after.Writes[i] {
			t.Errorf("write %d differs: %v vs %v", i, before.Writes[i], after.Writes[i])
		}
	}
}

// TestStrengthReduceNested reduces the inner-loop address computation
// of a 2-D traversal (both counters participate).
func TestStrengthReduceNested(t *testing.T) {
	src := `
L1: for i = 1 to 8 {
    L2: for j = 1 to 8 {
        a[8 * i + j] = i + j
    }
}
`
	a := buildAnalysis(t, src)
	before, mulsBefore := runSSAWith(t, a.SSA)
	n := ReduceStrength(a)
	if n == 0 {
		t.Fatalf("nothing reduced:\n%s", a.SSA.Func)
	}
	if errs := ssa.Verify(a.SSA); len(errs) != 0 {
		t.Fatalf("SSA broken: %v", errs)
	}
	after, mulsAfter := runSSAWith(t, a.SSA)
	if mulsAfter >= mulsBefore {
		t.Errorf("muls: before %d, after %d", mulsBefore, mulsAfter)
	}
	for i := range before.Writes {
		if before.Writes[i] != after.Writes[i] {
			t.Fatalf("write %d differs after reduction", i)
		}
	}
}

// TestStrengthReduceQuick: reduction never changes behaviour on random
// programs.
func TestStrengthReduceQuick(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		src := gen.Program(seed)
		file1, err := parse.File(src)
		if err != nil {
			return false
		}
		info1 := ssa.Build(cfgbuild.Build(file1).Func)
		cfg := interp.Config{Params: xfParams, MaxSteps: 150_000}
		r1, err1 := interp.RunSSA(info1, cfg)

		a, err := iv.AnalyzeProgram(src)
		if err != nil {
			return false
		}
		ReduceStrength(a)
		if errs := ssa.Verify(a.SSA); len(errs) != 0 {
			t.Logf("seed %d: verify failed: %v\n%s", seed, errs, src)
			return false
		}
		r2, err2 := interp.RunSSA(a.SSA, cfg)
		if err1 != nil || err2 != nil {
			return err1 == interp.ErrStepLimit || err2 == interp.ErrStepLimit
		}
		if len(r1.Writes) != len(r2.Writes) {
			t.Logf("seed %d: writes %d vs %d\n%s", seed, len(r1.Writes), len(r2.Writes), src)
			return false
		}
		for i := range r1.Writes {
			if r1.Writes[i] != r2.Writes[i] {
				t.Logf("seed %d: write %d differs\n%s", seed, i, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
