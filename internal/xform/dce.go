package xform

import (
	"beyondiv/internal/ir"
	"beyondiv/internal/ssa"
)

// EliminateDeadCode removes SSA values that no observable outcome
// depends on — the detached scaffolding substitution rewrites leave
// behind (constants and operand chains whose only consumer was a
// replaced multiplication).
//
// Observability matches the interpreter's contract exactly, which is
// what translation validation compares: array stores, branch controls,
// and every value carrying a source variable name (the interpreter
// reports those as final scalar values) are roots, plus parameters
// (the symbol table in ssa.Info.Params points at them). Everything
// reachable from a root through argument edges is live; the rest is
// swept. Returns the number of values removed; SSA form stays valid.
func EliminateDeadCode(info *ssa.Info) int {
	f := info.Func
	live := make([]bool, f.NumValues())
	var work []*ir.Value
	visit := func(v *ir.Value) {
		if !live[v.ID] {
			live[v.ID] = true
			work = append(work, v)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpStoreElem || v.Op == ir.OpParam || info.VarOf(v) != "" {
				visit(v)
			}
		}
		if b.Control != nil {
			visit(b.Control)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range v.Args {
			visit(a)
		}
	}

	removed := 0
	for _, b := range f.Blocks {
		out := b.Values[:0]
		for _, v := range b.Values {
			if live[v.ID] {
				out = append(out, v)
			} else {
				removed++
			}
		}
		b.Values = out
	}
	return removed
}
