package xform

import (
	"fmt"
	"strings"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/engine"
	"beyondiv/internal/iv"
	"beyondiv/internal/scratch"
)

// This file packages the transformations as engine.TransformPass values
// so the engine's Optimize pipeline can run them with clone-on-transform,
// re-analysis, verification and translation validation. The pass names
// (in canonical order) are:
//
//	normalize    AST   §6.1 loop normalization (index from 0, step 1)
//	peel         AST   §4.1 first-iteration peeling, classification-driven:
//	                   only loops in which some value classified WrapAround
//	interchange  AST   §6.1 loop interchanging of perfect 2-nests, gated on
//	                   direction vectors (and the unimodular check when
//	                   exact distances exist); reorders the store trace
//	distribute   AST   loop distribution along statement-level π-blocks in
//	                   topological order; reorders the store trace
//	strength     SSA   §1 classical strength reduction of const·linear
//	ivsub        SSA   §5 induction-variable substitution of any Linear
//	                   multiplicative value (symbolic init/step allowed)
//	dce          SSA   sweep of values no observable outcome depends on
//	parmark      MARK  annotate provably parallel loops for the chunked
//	                   execution backend (no rewrite; validated once after
//	                   the fixed point against the sequential interpreter)
//
// AST-tier passes precede SSA-tier ones so a round never discards SSA
// rewrites, and mark-tier passes come last so annotations always describe
// the final loop structure (see engine.Tier).

// PassNames returns the canonical pipeline order.
func PassNames() []string {
	return []string{"normalize", "peel", "interchange", "distribute", "strength", "ivsub", "dce", "parmark"}
}

// DefaultPasses returns the full pipeline in canonical order.
func DefaultPasses() []engine.TransformPass {
	ps, _ := Passes(PassNames())
	return ps
}

// Passes resolves pass names (in the given order) to the transform
// pipeline, erroring on an unknown name. Names are case-sensitive; see
// PassNames for the vocabulary.
func Passes(names []string) ([]engine.TransformPass, error) {
	out := make([]engine.TransformPass, 0, len(names))
	for _, n := range names {
		p, ok := passByName(n)
		if !ok {
			return nil, fmt.Errorf("xform: unknown pass %q (available: %s)",
				n, strings.Join(PassNames(), ", "))
		}
		out = append(out, p)
	}
	return out, nil
}

func passByName(name string) (engine.TransformPass, bool) {
	switch name {
	case "normalize":
		return engine.TransformPass{Name: "normalize", Tier: engine.TierAST, Run: func(st *engine.State) (int, error) {
			_, n := NormalizeProgram(st.File)
			chargeBudget(st, "normalize", n)
			return n, nil
		}}, true
	case "peel":
		return engine.TransformPass{Name: "peel", Tier: engine.TierAST, Run: runPeel}, true
	case "interchange":
		return engine.TransformPass{Name: "interchange", Tier: engine.TierAST, Reorders: true, Run: runInterchange}, true
	case "distribute":
		return engine.TransformPass{Name: "distribute", Tier: engine.TierAST, Reorders: true, Run: runDistribute}, true
	case "parmark":
		return engine.TransformPass{Name: "parmark", Tier: engine.TierMark, Run: runParmark}, true
	case "strength":
		return engine.TransformPass{Name: "strength", Tier: engine.TierSSA, Run: func(st *engine.State) (int, error) {
			a, err := analysisOf(st, "strength")
			if err != nil {
				return 0, err
			}
			n := ReduceStrengthScratch(a, xformScratch(st))
			chargeBudget(st, "strength", n)
			return n, nil
		}}, true
	case "ivsub":
		return engine.TransformPass{Name: "ivsub", Tier: engine.TierSSA, Run: func(st *engine.State) (int, error) {
			a, err := analysisOf(st, "ivsub")
			if err != nil {
				return 0, err
			}
			n := SubstituteIVsScratch(a, xformScratch(st))
			chargeBudget(st, "ivsub", n)
			return n, nil
		}}, true
	case "dce":
		return engine.TransformPass{Name: "dce", Tier: engine.TierSSA, Run: func(st *engine.State) (int, error) {
			n := EliminateDeadCode(st.SSA)
			chargeBudget(st, "dce", n)
			return n, nil
		}}, true
	}
	return engine.TransformPass{}, false
}

// runPeel peels exactly the loops the classification flags: a loop is
// peeled when some value in it classified WrapAround, which is the
// paper's §4.1 recipe ("peel off the first iteration of the loop"). One
// peel lowers a wrap-around chain's order by one, so the fixed-point
// rounds converge once every chain bottoms out as Linear.
func runPeel(st *engine.State) (int, error) {
	a, err := analysisOf(st, "peel")
	if err != nil {
		return 0, err
	}
	want := map[string]bool{}
	for _, l := range a.Forest.InnerToOuter() {
		if l.Label == "" {
			continue
		}
		for _, cls := range a.LoopClassifications(l) {
			if cls.Kind == iv.WrapAround {
				want[l.Label] = true
				break
			}
		}
	}
	if len(want) == 0 {
		return 0, nil
	}
	n := peelByEffectiveLabel(st.File, want)
	chargeBudget(st, "peel", n)
	return n, nil
}

// peelByEffectiveLabel peels every for-loop whose *effective* label (see
// cfgbuild.ForLabels) is in labels, so classification results keyed by
// loop label map back onto the AST even for unlabeled loops.
func peelByEffectiveLabel(file *ast.File, labels map[string]bool) int {
	byNode := cfgbuild.ForLabels(file)

	count := 0
	var rewrite func(list []ast.Stmt) []ast.Stmt
	rewrite = func(list []ast.Stmt) []ast.Stmt {
		out := make([]ast.Stmt, 0, len(list))
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				if labels[byNode[v]] {
					count++
					peeled := PeelFor(v).(*ast.Block)
					out = append(out, peeled.Stmts...)
					continue
				}
				out = append(out, v)
			case *ast.Loop:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.While:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.If:
				v.Then.Stmts = rewrite(v.Then.Stmts)
				if v.Else != nil {
					v.Else.Stmts = rewrite(v.Else.Stmts)
				}
				out = append(out, v)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	file.Stmts = rewrite(file.Stmts)
	return count
}

// analysisOf fetches the classification artifact a transform consumes,
// with a diagnosable failure when the pipeline was assembled without
// iv.ClassifyPass.
func analysisOf(st *engine.State, pass string) (*iv.Analysis, error) {
	a := iv.AnalysisOf(st)
	if a == nil {
		return nil, fmt.Errorf("%s: no classification artifact in state (pipeline missing iv.ClassifyPass)", pass)
	}
	return a, nil
}

// xformScratch returns the arena's transform scratch slot, or nil for
// arena-less (one-shot) runs.
func xformScratch(st *engine.State) *Scratch {
	if ar := st.Scratch(); ar != nil {
		return scratch.Get[Scratch](&ar.Xform)
	}
	return nil
}

// chargeBudget draws one guarded step per rewrite from the pass's phase
// budget, so a pathological fixed-point interaction hits a limit error
// instead of burning unbounded work.
func chargeBudget(st *engine.State, pass string, n int) {
	if n > 0 {
		st.Lim().Budget("xform." + pass).Steps(int64(n))
	}
}
