package xform

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/depend"
	"beyondiv/internal/interp"
	"beyondiv/internal/iv"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
)

// TestNormalizePreservesBehaviour: normalization must not change the
// observable behaviour of random programs.
func TestNormalizePreservesBehaviour(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		src := gen.Program(seed)
		f1, err := parse.File(src)
		if err != nil {
			return false
		}
		f2, err := parse.File(src)
		if err != nil {
			return false
		}
		norm, _ := NormalizeProgram(f2)

		cfg := interp.Config{Params: xfParams, MaxSteps: 150_000}
		r1, err1 := interp.RunAST(f1, cfg)
		r2, err2 := interp.RunAST(norm, cfg)
		if err1 != nil || err2 != nil {
			// Step limits are inconclusive: normalization changes the
			// statement count, so the budgets differ.
			return err1 == interp.ErrStepLimit || err2 == interp.ErrStepLimit
		}
		if len(r1.Writes) != len(r2.Writes) {
			t.Logf("seed %d: writes %d vs %d\n%s\nnormalized:\n%s", seed, len(r1.Writes), len(r2.Writes), src, norm)
			return false
		}
		for i := range r1.Writes {
			if r1.Writes[i] != r2.Writes[i] {
				t.Logf("seed %d: write %d differs\n%s", seed, i, src)
				return false
			}
		}
		// Scalars the original defines must agree (the normalized form
		// adds counters; ignore extras).
		for k, v := range r1.Scalars {
			if v2, ok := r2.Scalars[k]; ok && v2 != v {
				t.Logf("seed %d: scalar %s %d vs %d\n%s", seed, k, v, v2, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNormalizationInvariance is §6.1 end-to-end: the paper's L23/L24
// dependence results are identical before and after normalization —
// this representation has nothing to lose from either spelling.
func TestNormalizationInvariance(t *testing.T) {
	src := `
L23: for i = 1 to 9 {
    L24: for j = i + 1 to 9 {
        a[i * 1000 + j] = a[i * 1000 + j - 1000]
    }
}
`
	before, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	depsBefore := depend.Analyze(before, depend.Options{})

	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	norm, n := NormalizeProgram(file)
	if n != 2 {
		t.Fatalf("normalized %d loops, want 2:\n%s", n, norm)
	}
	after, err := iv.AnalyzeProgram(norm.String())
	if err != nil {
		t.Fatal(err)
	}
	depsAfter := depend.Analyze(after, depend.Options{})

	// Same dependence kinds with the same direction vectors.
	sig := func(r *depend.Result) map[string]int {
		out := map[string]int{}
		for _, d := range r.Deps {
			key := d.Kind.String() + ":" + d.Src.Array
			for _, dir := range d.Dirs {
				key += ":" + dir.String()
			}
			out[key]++
		}
		return out
	}
	sb, sa := sig(depsBefore), sig(depsAfter)
	if len(sb) != len(sa) {
		t.Fatalf("dependence signatures differ:\nbefore %v\nafter  %v", sb, sa)
	}
	for k, v := range sb {
		if sa[k] != v {
			t.Errorf("signature %q: before %d, after %d", k, v, sa[k])
		}
	}
}

// TestNormalizeStep: constant-bound loops with non-unit steps fold
// their normalized count exactly, including zero-trip shapes.
func TestNormalizeStep(t *testing.T) {
	for _, c := range []struct {
		src  string
		want int64
	}{
		{"c = 0\nfor i = 1 to 10 by 3 { c = c + 1 }", 4},
		{"c = 0\nfor i = 1 to 1 by 2 { c = c + 1 }", 1},
		{"c = 0\nfor i = 2 to 1 by 2 { c = c + 1 }", 0},
		{"c = 0\nfor i = 2 to 1 { c = c + 1 }", 0},
	} {
		f1, err := parse.File(c.src)
		if err != nil {
			t.Fatal(err)
		}
		norm, _ := NormalizeProgram(f1)
		r, err := interp.RunAST(norm, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Scalars["c"] != c.want {
			t.Errorf("%q normalized: c = %d, want %d\n%s", c.src, r.Scalars["c"], c.want, norm)
		}
	}
}

// TestNormalizeRefusals: symbolic non-unit steps and bodies that write
// the loop variable are left alone.
func TestNormalizeRefusals(t *testing.T) {
	for _, src := range []string{
		"for i = 1 to n by k { a[i] = 0 }",
		"for i = 1 to n { i = i + 1 }",
		"for i = 1 to n { n = n - 1 }",
		"for i = n to 1 by -1 { a[i] = 0 }",
	} {
		f, err := parse.File(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, n := NormalizeProgram(f); n != 0 {
			t.Errorf("%q should refuse normalization", src)
		}
	}
}
