package xform

import (
	"fmt"
	"slices"

	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
)

// Scratch is the transformation layer's arena slot (scratch.Arena.
// Xform): a generation-stamped dense done table keyed by value ID, so
// repeated transform runs on one worker reuse the allocation and reset
// by bumping the generation instead of clearing or reallocating a map.
type Scratch struct {
	gen  uint32
	done []uint32
}

// begin opens a fresh generation; stamps from prior runs become stale
// in O(1). On the (effectively unreachable) 2^32nd run the table is
// hard-cleared so stale stamps can never alias the new generation.
func (s *Scratch) begin() {
	s.gen++
	if s.gen == 0 {
		clear(s.done)
		s.gen = 1
	}
}

func (s *Scratch) marked(id int) bool { return id < len(s.done) && s.done[id] == s.gen }

func (s *Scratch) mark(id int) {
	if id >= len(s.done) {
		grown := make([]uint32, id+1+len(s.done)/2)
		copy(grown, s.done)
		s.done = grown
	}
	s.done[id] = s.gen
}

// ReduceStrength performs classical strength reduction on the SSA form,
// driven by the unified classification: each multiplication c·v inside
// a loop, where v is a linear induction variable with integral initial
// value and constant integral step, is replaced by a new induction
// variable maintained with an addition (paper §1: "the most common
// candidates for strength reduction ... are array address calculations
// in inner loops").
//
// Returns the number of multiplications reduced. The transformed
// function stays in valid SSA form (ssa.Verify holds). Telemetry and
// guard budgets are the engine pipeline's concern (see Passes); direct
// callers get the bare rewrite.
func ReduceStrength(a *iv.Analysis) int { return ReduceStrengthScratch(a, nil) }

// ReduceStrengthScratch is ReduceStrength against an explicit scratch
// table (nil allocates a private one), for callers holding an arena.
func ReduceStrengthScratch(a *iv.Analysis, scr *Scratch) int {
	if scr == nil {
		scr = &Scratch{}
	}
	scr.begin()
	reduced := 0
	counter := 0
	// Inner loops first: a multiplication is reduced at the innermost
	// level where its operand actually varies.
	for _, l := range a.Forest.InnerToOuter() {
		pre := l.Preheader()
		if pre == nil {
			continue
		}
		for _, m := range mulCandidates(a, l) {
			if scr.marked(m.ID) {
				continue
			}
			if reduceOne(a, l, pre, m, &counter) {
				scr.mark(m.ID)
				reduced++
			}
		}
	}
	return reduced
}

// mulCandidates finds Mul values anywhere inside l (including nested
// loops: an address multiplication in an inner loop may scale an outer
// IV) in deterministic order.
func mulCandidates(a *iv.Analysis, l *loops.Loop) []*ir.Value {
	var out []*ir.Value
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpMul {
				out = append(out, v)
			}
		}
	}
	slices.SortFunc(out, ir.ByID)
	return out
}

// reduceOne rewrites m = c·v (or v·c) when v is a linear IV of l.
func reduceOne(a *iv.Analysis, l *loops.Loop, pre *ir.Block, m *ir.Value, counter *int) bool {
	c, v, ok := constTimesValue(a, m)
	if !ok {
		return false
	}
	cls := a.ClassOf(l, v)
	if cls.Kind != iv.Linear || cls.Init == nil || cls.Step == nil {
		return false
	}
	step, stepConst := cls.Step.ConstVal()
	if !stepConst {
		return false
	}
	newStep := step.Mul(rational.FromInt(c))
	ns, isInt := newStep.Int()
	if !isInt {
		return false
	}
	// Materialize c·Init in the preheader; every atom must dominate it.
	scaled := iv.ScaleExpr(cls.Init, rational.FromInt(c))
	if scaled == nil || !dominatesAll(a, scaled, pre) {
		return false
	}
	init := materialize(a.SSA.Func, pre, scaled)
	if init == nil {
		return false
	}

	f := a.SSA.Func
	stepV := f.NewValue(pre, ir.OpConst)
	stepV.Const = ns

	*counter++
	phi := insertRecurrence(f, l, init, stepV, fmt.Sprintf("sr%d", *counter))

	// Replace every use of m with the φ (c·v(h) == φ(h) at any point of
	// iteration h) and retire m itself.
	replaceUses(f, m, phi)
	retireValue(m, phi)
	return true
}

// insertRecurrence builds the φ-maintained linear recurrence every
// substitution-style rewrite shares: a φ at the front of l's header
// taking init on entry edges and φ+step on each back edge. init and
// step must be available in (dominate) the preheader.
func insertRecurrence(f *ir.Func, l *loops.Loop, init, step *ir.Value, name string) *ir.Value {
	phi := f.NewValue(l.Header, ir.OpPhi, make([]*ir.Value, len(l.Header.Preds))...)
	phi.Name = name + "phi"
	// NewValue appended the φ; rotate it to the front, where verification
	// (and every consumer) expects φs to live.
	vals := l.Header.Values
	copy(vals[1:], vals[:len(vals)-1])
	vals[0] = phi

	incs := map[*ir.Block]*ir.Value{}
	for _, latch := range l.Latches {
		add := f.NewValue(latch, ir.OpAdd, phi, step)
		add.Name = fmt.Sprintf("%sinc%d", name, latch.ID)
		incs[latch] = add
	}
	for i, p := range l.Header.Preds {
		if inc, isLatch := incs[p]; isLatch {
			phi.Args[i] = inc
		} else {
			phi.Args[i] = init
		}
	}
	return phi
}

// replaceUses rewrites every use of old — argument positions and block
// controls — to point at new.
func replaceUses(f *ir.Func, old, new *ir.Value) {
	for _, b := range f.Blocks {
		for _, w := range b.Values {
			if w != old {
				w.ReplaceArg(old, new)
			}
		}
		if b.Control == old {
			b.Control = new
		}
	}
}

// retireValue rewrites v's defining op into a Copy of repl. The uses of
// v have already been redirected, but v itself may be observable — it
// can carry a source variable name the interpreter reports as a final
// scalar — so it must keep producing the same number at the same
// program point rather than disappear. Unobservable retired copies are
// swept by the dce pass.
func retireValue(v, repl *ir.Value) {
	v.Op = ir.OpCopy
	v.Args = append(v.Args[:0], repl)
	v.Const = 0
	v.Var = ""
}

// dominatesAll reports whether every atom of e dominates b (i.e. the
// expression can be materialized in b).
func dominatesAll(a *iv.Analysis, e *iv.Expr, b *ir.Block) bool {
	for atom := range e.Terms {
		if !a.SSA.Dom.Dominates(atom.Block, b) {
			return false
		}
	}
	return true
}

// integralExpr reports whether e materializes without leaving the
// integers: constant part and every coefficient integral.
func integralExpr(e *iv.Expr) bool {
	if e == nil {
		return false
	}
	if !e.Const.IsInt() {
		return false
	}
	for _, c := range e.Terms {
		if !c.IsInt() {
			return false
		}
	}
	return true
}

// constTimesValue matches m = const·v with the constant known to sccp.
func constTimesValue(a *iv.Analysis, m *ir.Value) (int64, *ir.Value, bool) {
	x, y := m.Args[0], m.Args[1]
	if c, ok := a.Consts.Const(x); ok {
		return c, y, true
	}
	if c, ok := a.Consts.Const(y); ok {
		return c, x, true
	}
	return 0, nil, false
}

// materialize emits instructions computing an affine Expr at the end of
// block b, or nil when a coefficient is not integral. The Expr's atoms
// must dominate b (they are loop-external values and b is the
// preheader).
func materialize(f *ir.Func, b *ir.Block, e *iv.Expr) *ir.Value {
	if !integralExpr(e) {
		return nil
	}
	k, _ := e.Const.Int()
	acc := f.NewValue(b, ir.OpConst)
	acc.Const = k

	terms := make([]*ir.Value, 0, len(e.Terms))
	for v := range e.Terms {
		terms = append(terms, v)
	}
	slices.SortFunc(terms, ir.ByID)
	for _, v := range terms {
		coeff, _ := e.Terms[v].Int()
		var term *ir.Value
		if coeff == 1 {
			term = v
		} else {
			cv := f.NewValue(b, ir.OpConst)
			cv.Const = coeff
			term = f.NewValue(b, ir.OpMul, cv, v)
		}
		acc = f.NewValue(b, ir.OpAdd, acc, term)
	}
	return acc
}
