package xform

import (
	"fmt"
	"sort"

	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
)

// ReduceStrength performs classical strength reduction on the SSA form,
// driven by the unified classification: each multiplication c·v inside
// a loop, where v is a linear induction variable with integral initial
// value and constant integral step, is replaced by a new induction
// variable maintained with an addition (paper §1: "the most common
// candidates for strength reduction ... are array address calculations
// in inner loops").
//
// Returns the number of multiplications reduced. The transformed
// function stays in valid SSA form (ssa.Verify holds).
func ReduceStrength(a *iv.Analysis) int {
	rec := a.Obs()
	span := rec.Phase("xform.strength")
	defer span.End()
	reduced := 0
	counter := 0
	done := map[*ir.Value]bool{}
	// Inner loops first: a multiplication is reduced at the innermost
	// level where its operand actually varies.
	for _, l := range a.Forest.InnerToOuter() {
		pre := l.Preheader()
		if pre == nil {
			continue
		}
		for _, m := range mulCandidates(a, l) {
			if done[m] {
				continue
			}
			if reduceOne(a, l, pre, m, &counter) {
				done[m] = true
				reduced++
			}
		}
	}
	rec.Add("xform.strength.rewrites", int64(reduced))
	return reduced
}

// mulCandidates finds Mul values anywhere inside l (including nested
// loops: an address multiplication in an inner loop may scale an outer
// IV) in deterministic order.
func mulCandidates(a *iv.Analysis, l *loops.Loop) []*ir.Value {
	var out []*ir.Value
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpMul {
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// reduceOne rewrites m = c·v (or v·c) when v is a linear IV of l.
func reduceOne(a *iv.Analysis, l *loops.Loop, pre *ir.Block, m *ir.Value, counter *int) bool {
	c, v, ok := constTimesValue(a, m)
	if !ok {
		return false
	}
	cls := a.ClassOf(l, v)
	if cls.Kind != iv.Linear || cls.Init == nil || cls.Step == nil {
		return false
	}
	step, stepConst := cls.Step.ConstVal()
	if !stepConst {
		return false
	}
	newStep := step.Mul(rational.FromInt(c))
	ns, isInt := newStep.Int()
	if !isInt {
		return false
	}
	// Materialize c·Init in the preheader; every atom must dominate it.
	scaled := iv.ScaleExpr(cls.Init, rational.FromInt(c))
	if scaled == nil {
		return false
	}
	for atom := range scaled.Terms {
		if !a.SSA.Dom.Dominates(atom.Block, pre) {
			return false
		}
	}
	init := materialize(a.SSA.Func, pre, scaled)
	if init == nil {
		return false
	}

	f := a.SSA.Func
	*counter++
	name := fmt.Sprintf("sr%d", *counter)

	// φ at the loop header.
	phi := f.NewValue(l.Header, ir.OpPhi, make([]*ir.Value, len(l.Header.Preds))...)
	phi.Name = name + "phi"
	vals := l.Header.Values
	copy(vals[1:], vals[:len(vals)-1])
	vals[0] = phi

	// Increment in each latch.
	latchVals := map[*ir.Block]*ir.Value{}
	for _, latch := range l.Latches {
		stepC := f.NewValue(latch, ir.OpConst)
		stepC.Const = ns
		add := f.NewValue(latch, ir.OpAdd, phi, stepC)
		add.Name = fmt.Sprintf("%sinc%d", name, latch.ID)
		latchVals[latch] = add
	}
	for i, p := range l.Header.Preds {
		if inc, isLatch := latchVals[p]; isLatch {
			phi.Args[i] = inc
		} else {
			phi.Args[i] = init
		}
	}

	// Replace every use of m with the φ (c·v(h) == φ(h) at any point of
	// iteration h).
	for _, b := range f.Blocks {
		for _, w := range b.Values {
			if w != m {
				w.ReplaceArg(m, phi)
			}
		}
		if b.Control == m {
			b.Control = phi
		}
	}
	// Drop m itself.
	mb := m.Block
	out := mb.Values[:0]
	for _, w := range mb.Values {
		if w != m {
			out = append(out, w)
		}
	}
	mb.Values = out
	return true
}

// constTimesValue matches m = const·v with the constant known to sccp.
func constTimesValue(a *iv.Analysis, m *ir.Value) (int64, *ir.Value, bool) {
	x, y := m.Args[0], m.Args[1]
	if c, ok := a.Consts.Const(x); ok {
		return c, y, true
	}
	if c, ok := a.Consts.Const(y); ok {
		return c, x, true
	}
	return 0, nil, false
}

// materialize emits instructions computing an affine Expr at the end of
// block b, or nil when a coefficient is not integral. The Expr's atoms
// must dominate b (they are loop-external values and b is the
// preheader).
func materialize(f *ir.Func, b *ir.Block, e *iv.Expr) *ir.Value {
	if e == nil {
		return nil
	}
	k, isInt := e.Const.Int()
	if !isInt {
		return nil
	}
	for _, c := range e.Terms {
		if !c.IsInt() {
			return nil
		}
	}
	acc := f.NewValue(b, ir.OpConst)
	acc.Const = k

	terms := make([]*ir.Value, 0, len(e.Terms))
	for v := range e.Terms {
		terms = append(terms, v)
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].ID < terms[j].ID })
	for _, v := range terms {
		coeff, isInt := e.Terms[v].Int()
		if !isInt {
			return nil
		}
		var term *ir.Value
		if coeff == 1 {
			term = v
		} else {
			cv := f.NewValue(b, ir.OpConst)
			cv.Const = coeff
			term = f.NewValue(b, ir.OpMul, cv, v)
		}
		acc = f.NewValue(b, ir.OpAdd, acc, term)
	}
	return acc
}
