package xform

import (
	"beyondiv/internal/ast"
	"beyondiv/internal/token"
)

// NormalizeFor rewrites a counted loop so its index runs from 0 with
// step 1 — the classical "loop normalization" of §6.1 ([BCKT79]):
//
//	for i = lo to hi by s { body }
//
// becomes (for constant positive s)
//
//	__n = 0
//	for __n = 0 to (hi - lo) / s {
//	    i = __n * s + lo
//	    body
//	}
//	i = __n * s + lo        // final value, as the original loop leaves it
//
// The paper argues *against* performing this transformation (it moves
// the lower bound into every subscript and flips distance vectors, cf.
// L23/L24) and notes that the SSA classification normalizes implicitly;
// NormalizeFor exists so the tests can demonstrate that this
// implementation's analysis results are invariant under it.
//
// Restrictions (returns the loop unchanged, false): the step must be a
// positive constant, and the body must not assign the loop variable or
// the bound's variables (the rewrite would change their sequence).
func NormalizeFor(f *ast.For, counter string) (ast.Stmt, bool) {
	step := int64(1)
	if f.Step != nil {
		s, ok := constOf(f.Step)
		if !ok || s <= 0 {
			return f, false
		}
		step = s
	}
	// Already normal (index from a literal 0, unit step): rewriting
	// would only mint a fresh counter. The skip also makes the transform
	// idempotent, which the engine's fixed-point rounds require.
	if lo, ok := constOf(f.Lo); ok && lo == 0 && step == 1 {
		return f, false
	}
	if assignsAny(f.Body, varsOf(f.Lo, f.Hi, f.Var)) {
		return f, false
	}
	// Self-referential bounds (for t = t*8 to ...) read the variable the
	// restore statement would overwrite; leave them alone.
	if varsOf(f.Lo, f.Hi)[f.Var.Name] {
		return f, false
	}

	nv := &ast.Ident{Name: counter}
	// New bound: floor((hi - lo) / s). Integer division in the language
	// truncates, which differs from floor for negative spans when s > 1
	// (a span of -1 with s = 2 would truncate to 0 and run a phantom
	// iteration), so non-unit steps are normalized only with constant
	// bounds, where the count folds exactly.
	var hi ast.Expr = &ast.Bin{Op: token.MINUS, X: f.Hi, Y: f.Lo}
	if step != 1 {
		loC, okLo := constOf(f.Lo)
		hiC, okHi := constOf(f.Hi)
		if !okLo || !okHi {
			return f, false
		}
		span := hiC - loC
		n := int64(-1)
		if span >= 0 {
			n = span / step
		}
		hi = &ast.Num{Value: n}
	}
	// i = __n * s + lo
	restore := func() *ast.Assign {
		var scaled ast.Expr = nv
		if step != 1 {
			scaled = &ast.Bin{Op: token.STAR, X: nv, Y: &ast.Num{Value: step}}
		}
		return &ast.Assign{
			LHS: &ast.Ident{Name: f.Var.Name},
			RHS: &ast.Bin{Op: token.PLUS, X: scaled, Y: f.Lo},
		}
	}

	body := &ast.Block{Stmts: append([]ast.Stmt{restore()}, f.Body.Stmts...)}
	norm := &ast.For{
		Label: f.Label,
		Var:   nv,
		Lo:    &ast.Num{Value: 0},
		Hi:    hi,
		Body:  body,
		KwPos: f.KwPos,
	}
	// After the loop the original variable holds first-exceeding value:
	// lo + tripcount*s, which is __n*s + lo with __n's final value.
	return &ast.Block{Stmts: []ast.Stmt{norm, restore()}}, true
}

// NormalizeProgram normalizes every for-loop it can, returning the
// rewritten file and the number of loops changed.
func NormalizeProgram(file *ast.File) (*ast.File, int) {
	count := 0
	counterID := 0
	var rewrite func(list []ast.Stmt) []ast.Stmt
	rewrite = func(list []ast.Stmt) []ast.Stmt {
		out := make([]ast.Stmt, 0, len(list))
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				counterID++
				norm, ok := NormalizeFor(v, normCounterName(counterID))
				if ok {
					count++
					if blk, isBlk := norm.(*ast.Block); isBlk {
						out = append(out, blk.Stmts...)
						continue
					}
				}
				out = append(out, norm)
			case *ast.Loop:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.While:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.If:
				v.Then.Stmts = rewrite(v.Then.Stmts)
				if v.Else != nil {
					v.Else.Stmts = rewrite(v.Else.Stmts)
				}
				out = append(out, v)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	file.Stmts = rewrite(file.Stmts)
	return file, count
}

func normCounterName(id int) string {
	return "nrm" + string(rune('a'+(id-1)%26)) + string(rune('0'+(id/26)%10))
}

// varsOf collects the variable names appearing in the expressions.
func varsOf(exprs ...ast.Expr) map[string]bool {
	out := map[string]bool{}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Walk(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	return out
}

// assignsAny reports whether the body assigns any of the given scalars.
func assignsAny(b *ast.Block, names map[string]bool) bool {
	found := false
	ast.Walk(b, func(n ast.Node) bool {
		if a, ok := n.(*ast.Assign); ok {
			if id, isIdent := a.LHS.(*ast.Ident); isIdent && names[id.Name] {
				found = true
			}
		}
		// For statements redefine their own variable too.
		if f, ok := n.(*ast.For); ok && names[f.Var.Name] {
			found = true
		}
		return !found
	})
	return found
}
