package xform

import (
	"fmt"
	"slices"

	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
)

// SubstituteIVs performs induction-variable substitution (§5): every
// multiplicative value (Mul, Div, Exp) the classifier proves Linear in
// a loop is replaced by the equivalent φ-maintained linear recurrence,
// with both the initial value and the per-iteration step materialized
// in the preheader from the classification's symbolic Expr form.
//
// This strictly generalizes ReduceStrength: the candidate need not be a
// syntactic const·v product — any value whose classification is Linear
// qualifies, including products scaled by a symbolic loop-invariant —
// and the recurrence step may itself be symbolic. The rewrite is exact
// under wrap-around int64 semantics: a Linear classification means the
// value equals Init + Step·h at iteration h, both expressions over
// loop-invariant atoms, and repeated addition mod 2^64 agrees with the
// folded product mod 2^64. Substitution is gated on both expressions
// being integral and materializable in the preheader; the classifier's
// truncated-division algebra never classifies an IV quotient as Linear,
// so no truncation case can slip through.
//
// Returns the number of values substituted; SSA form stays valid.
func SubstituteIVs(a *iv.Analysis) int { return SubstituteIVsScratch(a, nil) }

// SubstituteIVsScratch is SubstituteIVs against an explicit scratch
// table (nil allocates a private one), for callers holding an arena.
func SubstituteIVsScratch(a *iv.Analysis, scr *Scratch) int {
	if scr == nil {
		scr = &Scratch{}
	}
	scr.begin()
	substituted := 0
	counter := 0
	for _, l := range a.Forest.InnerToOuter() {
		pre := l.Preheader()
		if pre == nil {
			continue
		}
		for _, m := range substCandidates(a, l) {
			if scr.marked(m.ID) {
				continue
			}
			if substituteOne(a, l, pre, m, &counter) {
				scr.mark(m.ID)
				substituted++
			}
		}
	}
	return substituted
}

// substCandidates finds the multiplicative values inside l — the ops
// whose replacement by an addition recurrence is a strength win — in
// deterministic order.
func substCandidates(a *iv.Analysis, l *loops.Loop) []*ir.Value {
	var out []*ir.Value
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			switch v.Op {
			case ir.OpMul, ir.OpDiv, ir.OpExp:
				out = append(out, v)
			}
		}
	}
	slices.SortFunc(out, ir.ByID)
	return out
}

// substituteOne replaces m with a φ recurrence when m itself classifies
// Linear in l with materializable init and step.
func substituteOne(a *iv.Analysis, l *loops.Loop, pre *ir.Block, m *ir.Value, counter *int) bool {
	cls := a.ClassOf(l, m)
	if cls.Kind != iv.Linear || cls.Init == nil || cls.Step == nil {
		return false
	}
	// A zero-step recurrence is an invariant in disguise; no win.
	if s, isConst := cls.Step.ConstVal(); isConst && s.IsZero() {
		return false
	}
	if !integralExpr(cls.Init) || !integralExpr(cls.Step) {
		return false
	}
	if !dominatesAll(a, cls.Init, pre) || !dominatesAll(a, cls.Step, pre) {
		return false
	}
	f := a.SSA.Func
	init := materialize(f, pre, cls.Init)
	step := materialize(f, pre, cls.Step)
	if init == nil || step == nil {
		return false
	}

	*counter++
	phi := insertRecurrence(f, l, init, step, fmt.Sprintf("ivs%d", *counter))
	replaceUses(f, m, phi)
	retireValue(m, phi)
	return true
}
