package xform

import (
	"fmt"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/depend"
	"beyondiv/internal/engine"
	"beyondiv/internal/loops"
)

// interchange — §6.1's "loop interchanging", driven by the direction
// vectors the dependence tester computed. A perfect two-deep nest is
// swapped when it is both legal and profitable:
//
//   - legal: no dependence across the pair has direction (<, >)
//     (depend.InterchangeLegal) — and, when every dependence has an
//     exact distance vector, the unimodular interchange matrix keeps
//     all of them lexicographically nonnegative
//     (depend.UnimodularLegal), the [WL91]/[Ban91] formulation the
//     paper's closing remarks cite;
//   - profitable: the inner loop is parallelizable and the outer is
//     not, so the swap moves the parallel loop outward where chunked
//     execution amortizes (wavefront/stencil shape). Profitability is
//     monotone — after the swap the new outer loop is parallelizable —
//     so the fixed point cannot oscillate.
//
// The syntactic gate keeps the rewrite honestly within what the
// validator can certify: both headers constant with provably at least
// one trip (a zero-trip outer loop would leave the old inner counter
// unassigned, changing the observable scalar environment), and the
// inner body a flat run of assignments (so final scalar values come
// from the shared last iteration, which interchange preserves).
//
// Interchange permutes the order iterations execute in, and with it the
// global store trace; per-cell write order is preserved (that is what
// legality means), so the pass declares Reorders and validation
// compares traces in validate.PerCellOrder from then on.
func runInterchange(st *engine.State) (int, error) {
	deps := depend.ResultOf(st)
	if deps == nil {
		return 0, nil
	}
	loopByLabel, labelOK := uniqueLoopLabels(st.Forest)
	forLabels := cfgbuild.ForLabels(st.File)

	n := 0
	var walk func(list []ast.Stmt)
	walk = func(list []ast.Stmt) {
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				if inner, ok := interchangeCandidate(v); ok {
					lo, li := forLabels[v], forLabels[inner]
					if labelOK[lo] && labelOK[li] &&
						interchangeLegalProfitable(st, deps, loopByLabel[lo], loopByLabel[li]) {
						v.Label, inner.Label = inner.Label, v.Label
						v.Var, inner.Var = inner.Var, v.Var
						v.Lo, inner.Lo = inner.Lo, v.Lo
						v.Hi, inner.Hi = inner.Hi, v.Hi
						v.Step, inner.Step = inner.Step, v.Step
						n++
						st.Obs().Decide(li, "interchange",
							fmt.Sprintf("swapped outward across %s: legal and inner-parallel", lo))
						continue // the nest is rewritten; decisions below it are stale
					}
				}
				walk(v.Body.Stmts)
			case *ast.Loop:
				walk(v.Body.Stmts)
			case *ast.While:
				walk(v.Body.Stmts)
			case *ast.If:
				walk(v.Then.Stmts)
				if v.Else != nil {
					walk(v.Else.Stmts)
				}
			case *ast.Block:
				walk(v.Stmts)
			}
		}
	}
	walk(st.File.Stmts)
	if n > 0 {
		st.Metrics().Add("engine.xform.interchange.swaps", int64(n))
		chargeBudget(st, "interchange", n)
	}
	return n, nil
}

// interchangeCandidate reports whether outer is syntactically a
// swappable perfect nest: its body is exactly one inner for-loop whose
// body is a flat run of assignments touching neither counter, and both
// headers are constant with at least one trip.
func interchangeCandidate(outer *ast.For) (*ast.For, bool) {
	if len(outer.Body.Stmts) != 1 {
		return nil, false
	}
	inner, ok := outer.Body.Stmts[0].(*ast.For)
	if !ok || len(inner.Body.Stmts) == 0 {
		return nil, false
	}
	for _, s := range inner.Body.Stmts {
		a, ok := s.(*ast.Assign)
		if !ok {
			return nil, false
		}
		if id, ok := a.LHS.(*ast.Ident); ok &&
			(id.Name == outer.Var.Name || id.Name == inner.Var.Name) {
			return nil, false
		}
	}
	return inner, constAtLeastOneTrip(outer) && constAtLeastOneTrip(inner)
}

// constAtLeastOneTrip reports whether the for-header is fully constant
// and provably executes its body at least once.
func constAtLeastOneTrip(f *ast.For) bool {
	lo, okL := constOf(f.Lo)
	hi, okH := constOf(f.Hi)
	if !okL || !okH {
		return false
	}
	step := int64(1)
	if f.Step != nil {
		var okS bool
		if step, okS = constOf(f.Step); !okS || step == 0 {
			return false
		}
	}
	if step > 0 {
		return lo <= hi
	}
	return lo >= hi
}

// interchangeLegalProfitable applies the dependence-level gates.
func interchangeLegalProfitable(st *engine.State, deps *depend.Result, outer, inner *loops.Loop) bool {
	if outer == nil || inner == nil || inner.Parent != outer {
		return false
	}
	if ok, _ := depend.InterchangeLegal(deps, outer, inner); !ok {
		st.Obs().Decide(inner.Label, "interchange.blocked", "a dependence has direction (<,>)")
		return false
	}
	if dists, ok := depend.DistanceVectors2(deps, outer, inner); ok &&
		!depend.UnimodularLegal(depend.Interchange, dists) {
		st.Obs().Decide(inner.Label, "interchange.blocked", "unimodular check rejects a distance vector")
		return false
	}
	innerPar, _ := depend.Parallelizable(deps, inner)
	outerPar, _ := depend.Parallelizable(deps, outer)
	return innerPar && !outerPar
}

// uniqueLoopLabels maps label → loop for every unambiguous label in the
// forest.
func uniqueLoopLabels(forest *loops.Forest) (map[string]*loops.Loop, map[string]bool) {
	byLabel := map[string]*loops.Loop{}
	count := map[string]int{}
	for _, l := range forest.Loops {
		if l.Label == "" {
			continue
		}
		byLabel[l.Label] = l
		count[l.Label]++
	}
	ok := map[string]bool{}
	for lbl, c := range count {
		ok[lbl] = c == 1
	}
	return byLabel, ok
}
