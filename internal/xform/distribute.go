package xform

import (
	"fmt"
	"slices"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/depend"
	"beyondiv/internal/engine"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/scc"
)

// distribute — loop distribution along π-blocks, the other
// transformation the paper's introduction motivates. The statements of
// a flat loop body are partitioned into the strongly connected
// components of their dependence graph (statement-level π-blocks,
// depend.PiBlocks' construction restated over AST statements) and each
// component becomes its own loop, emitted in topological order. A
// recurrence stays trapped in its own (small) cyclic loop while the
// remaining singleton blocks become parallel candidates parmark then
// picks up — the analysis→restructure→parallelize chain.
//
// Gates: the body is a flat run of ≥ 2 assignments (no control flow, so
// every statement executes exactly once per iteration), the header is
// invariant (no array reads, no scalar the body assigns, not the
// counter), and the counter is not assigned by the body. Edges combine
// the §6 tester's dependences (mapped onto the statements that own the
// accesses) with conservative scalar def/def and def/use coupling:
// statements sharing an assigned scalar stay in one block, so no scalar
// expansion is ever needed.
//
// Distribution executes all iterations of one block before the next,
// permuting the global store trace while preserving per-cell order
// (output dependences force their statements into ordered or shared
// blocks); the pass declares Reorders accordingly.
func runDistribute(st *engine.State) (int, error) {
	deps := depend.ResultOf(st)
	if deps == nil {
		return 0, nil
	}
	loopByLabel, labelOK := uniqueLoopLabels(st.Forest)
	forLabels := cfgbuild.ForLabels(st.File)
	usedLabels := map[string]bool{}
	for _, lbl := range forLabels {
		usedLabels[lbl] = true
	}
	for _, l := range st.Forest.Loops {
		usedLabels[l.Label] = true
	}

	// Decide every split against the pre-rewrite analyses, then mutate.
	split := map[*ast.For][]*ast.For{}
	newLoops := 0
	var plan func(list []ast.Stmt)
	plan = func(list []ast.Stmt) {
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				lbl := forLabels[v]
				if labelOK[lbl] {
					if repl := planDistribution(st, deps, v, loopByLabel[lbl], usedLabels); repl != nil {
						split[v] = repl
						newLoops += len(repl) - 1
						st.Obs().Decide(lbl, "distribute",
							fmt.Sprintf("split into %d π-blocks", len(repl)))
					}
				}
				plan(v.Body.Stmts)
			case *ast.Loop:
				plan(v.Body.Stmts)
			case *ast.While:
				plan(v.Body.Stmts)
			case *ast.If:
				plan(v.Then.Stmts)
				if v.Else != nil {
					plan(v.Else.Stmts)
				}
			case *ast.Block:
				plan(v.Stmts)
			}
		}
	}
	plan(st.File.Stmts)
	if len(split) == 0 {
		return 0, nil
	}

	var rewrite func(list []ast.Stmt) []ast.Stmt
	rewrite = func(list []ast.Stmt) []ast.Stmt {
		out := make([]ast.Stmt, 0, len(list))
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				if repl, ok := split[v]; ok {
					for _, f := range repl {
						out = append(out, f)
					}
					continue // flat body: nothing beneath to rewrite
				}
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.Loop:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.While:
				v.Body.Stmts = rewrite(v.Body.Stmts)
				out = append(out, v)
			case *ast.If:
				v.Then.Stmts = rewrite(v.Then.Stmts)
				if v.Else != nil {
					v.Else.Stmts = rewrite(v.Else.Stmts)
				}
				out = append(out, v)
			default:
				out = append(out, s)
			}
		}
		return out
	}
	st.File.Stmts = rewrite(st.File.Stmts)
	st.Metrics().Add("engine.xform.distribute.splits", int64(len(split)))
	st.Metrics().Add("engine.xform.distribute.loops", int64(newLoops))
	chargeBudget(st, "distribute", newLoops)
	return newLoops, nil
}

// planDistribution computes the replacement loops for one candidate, or
// nil when the loop does not distribute (not a candidate, or a single
// π-block).
func planDistribution(st *engine.State, deps *depend.Result, f *ast.For, l *loops.Loop, usedLabels map[string]bool) []*ast.For {
	if l == nil || len(f.Body.Stmts) < 2 {
		return nil
	}
	stmts := make([]*ast.Assign, 0, len(f.Body.Stmts))
	assigned := map[string]bool{}
	for _, s := range f.Body.Stmts {
		a, ok := s.(*ast.Assign)
		if !ok {
			return nil
		}
		if id, ok := a.LHS.(*ast.Ident); ok {
			if id.Name == f.Var.Name {
				return nil // counter assigned by the body
			}
			assigned[id.Name] = true
		}
		stmts = append(stmts, a)
	}
	// Invariant header: evaluating it per split loop must see what the
	// original single evaluation stream saw.
	for _, e := range []ast.Expr{f.Lo, f.Hi, f.Step} {
		if e == nil {
			continue
		}
		if exprReadsArrayAST(e) {
			return nil
		}
	}
	for name := range varsOf(f.Lo, f.Hi, f.Step) {
		if name == f.Var.Name || assigned[name] {
			return nil
		}
	}

	stmtOf := mapAccessesToStmts(l, stmts)
	if stmtOf == nil {
		return nil
	}

	// Dependence edges between statements.
	n := len(stmts)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, d := range deps.Deps {
		if d.Kind == depend.Input {
			continue
		}
		si, okS := stmtOf[d.Src.Value]
		di, okD := stmtOf[d.Dst.Value]
		if okS && okD {
			adj[si][di] = true
		}
	}
	// Scalar coupling: statements that share an assigned scalar (def/def
	// or def/use, in either textual order — a use before the def reads
	// the previous iteration) must stay together.
	for i, a := range stmts {
		id, ok := a.LHS.(*ast.Ident)
		if !ok {
			continue
		}
		for j, b := range stmts {
			if i == j {
				continue
			}
			if stmtTouchesScalar(b, id.Name) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}

	comps := scc.Components(n, func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if adj[i][j] {
				out = append(out, j)
			}
		}
		return out
	})
	if len(comps) < 2 {
		return nil
	}

	// Components pop successors-first; reverse for execution order and
	// keep each block's statements in program order.
	out := make([]*ast.For, 0, len(comps))
	suffix := 2
	for i := len(comps) - 1; i >= 0; i-- {
		comp := comps[i]
		slices.Sort(comp)
		body := make([]ast.Stmt, 0, len(comp))
		for _, k := range comp {
			body = append(body, stmts[k])
		}
		if len(out) == 0 {
			f.Body.Stmts = body
			out = append(out, f)
			continue
		}
		label := ""
		if f.Label != "" {
			for {
				label = fmt.Sprintf("%s_%d", f.Label, suffix)
				suffix++
				if !usedLabels[label] {
					break
				}
			}
			usedLabels[label] = true
		}
		nf := &ast.For{
			Label: label,
			Var:   &ast.Ident{Name: f.Var.Name, NamePos: f.Var.NamePos},
			Lo:    ast.CloneExpr(f.Lo),
			Hi:    ast.CloneExpr(f.Hi),
			Body:  &ast.Block{Stmts: body, LPos: f.Body.LPos},
			KwPos: f.KwPos,
		}
		if f.Step != nil {
			nf.Step = ast.CloneExpr(f.Step)
		}
		out = append(out, nf)
	}
	return out
}

// mapAccessesToStmts maps every memory value inside l onto the body
// statement that owns it, by segmenting the loop's Load/StoreElem
// values — which appear in program (value-ID) order — by each
// statement's static read/write counts. Returns nil when the counts do
// not reconcile (the conservative answer).
func mapAccessesToStmts(l *loops.Loop, stmts []*ast.Assign) map[*ir.Value]int {
	var vals []*ir.Value
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpLoadElem || v.Op == ir.OpStoreElem {
				vals = append(vals, v)
			}
		}
	}
	slices.SortFunc(vals, ir.ByID)

	stmtOf := make(map[*ir.Value]int, len(vals))
	cur := 0
	for k, a := range stmts {
		reads := indexReads(a.RHS)
		stores := 0
		if idx, ok := a.LHS.(*ast.Index); ok {
			reads += indexReads(idx.Sub)
			stores = 1
		}
		gotReads, gotStores := 0, 0
		for i := 0; i < reads+stores; i++ {
			if cur >= len(vals) {
				return nil
			}
			v := vals[cur]
			cur++
			if v.Op == ir.OpStoreElem {
				gotStores++
			} else {
				gotReads++
			}
			stmtOf[v] = k
		}
		if gotReads != reads || gotStores != stores {
			return nil
		}
	}
	if cur != len(vals) {
		return nil
	}
	return stmtOf
}

// indexReads counts the array element reads an expression performs.
func indexReads(e ast.Expr) int {
	switch v := e.(type) {
	case *ast.Index:
		return 1 + indexReads(v.Sub)
	case *ast.Unary:
		return indexReads(v.X)
	case *ast.Bin:
		return indexReads(v.X) + indexReads(v.Y)
	}
	return 0
}

// exprReadsArrayAST reports whether e contains an array element read.
func exprReadsArrayAST(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Index:
		return true
	case *ast.Unary:
		return exprReadsArrayAST(v.X)
	case *ast.Bin:
		return exprReadsArrayAST(v.X) || exprReadsArrayAST(v.Y)
	}
	return false
}

// stmtTouchesScalar reports whether the assignment reads or writes the
// named scalar anywhere (RHS, subscripts, or as its LHS).
func stmtTouchesScalar(a *ast.Assign, name string) bool {
	if id, ok := a.LHS.(*ast.Ident); ok && id.Name == name {
		return true
	}
	if idx, ok := a.LHS.(*ast.Index); ok && varsOf(idx.Sub)[name] {
		return true
	}
	return varsOf(a.RHS)[name]
}
