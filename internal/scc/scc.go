// Package scc implements Tarjan's strongly-connected-components algorithm
// (Tarjan, SIAM J. Comput. 1972) over integer-indexed directed graphs.
//
// The classifier in internal/iv runs this over the SSA graph, whose edges
// point from each operation to its source operands. Tarjan's algorithm
// emits a component only after every component reachable from it has been
// emitted, so when a component pops, all values feeding it are already
// classified — the property the paper's one-pass classification relies on
// (§3.1). Components returns components in exactly that pop order.
//
// The implementation is iterative (explicit work stack) so that graphs
// with very long dependence chains — e.g. the scaling benchmarks with
// tens of thousands of straight-line statements — cannot overflow the
// goroutine stack.
package scc

// frame is an explicit DFS frame: node v, and the position within
// succ(v) to resume at.
type frame struct {
	v    int
	next int
	adj  []int
}

// Scratch holds the working tables of one Tarjan run so repeated runs
// (one per loop per analysis, many per batch) reuse allocations. The
// component slices returned by ComponentsScratch are carved from
// Scratch.compBuf and remain valid only until the next call with the
// same scratch.
type Scratch struct {
	index   []int
	lowlink []int
	onStack []bool
	stack   []int
	frames  []frame
	comps   [][]int
	compBuf []int
}

// Components computes the strongly connected components of the directed
// graph with nodes 0..n-1 and successor function succ. Components are
// returned in Tarjan pop order: every component appears after all
// components reachable from it. Nodes within a component are in stack
// order (no particular guarantee beyond membership).
func Components(n int, succ func(int) []int) [][]int {
	return ComponentsScratch(n, succ, &Scratch{})
}

// ComponentsScratch is Components with caller-owned working storage.
// The returned slice and its component slices alias s's buffers and are
// invalidated by the next call using the same scratch.
func ComponentsScratch(n int, succ func(int) []int, s *Scratch) [][]int {
	if n == 0 {
		return nil
	}
	const unvisited = -1
	s.index = growInts(s.index, n)
	s.lowlink = growInts(s.lowlink, n)
	if cap(s.onStack) < n {
		s.onStack = make([]bool, n)
	} else {
		s.onStack = s.onStack[:n]
	}
	for i := 0; i < n; i++ {
		s.index[i] = unvisited
		s.onStack[i] = false
	}
	stack := s.stack[:0]
	frames := s.frames[:0]
	comps := s.comps[:0]
	compBuf := s.compBuf[:0]
	counter := 0

	push := func(v int) {
		s.index[v] = counter
		s.lowlink[v] = counter
		counter++
		stack = append(stack, v)
		s.onStack[v] = true
		frames = append(frames, frame{v: v, adj: succ(v)})
	}

	for root := 0; root < n; root++ {
		if s.index[root] != unvisited {
			continue
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.next < len(f.adj) {
				w := f.adj[f.next]
				f.next++
				if s.index[w] == unvisited {
					push(w)
					advanced = true
					break
				}
				if s.onStack[w] && s.index[w] < s.lowlink[f.v] {
					s.lowlink[f.v] = s.index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if s.lowlink[v] < s.lowlink[parent.v] {
					s.lowlink[parent.v] = s.lowlink[v]
				}
			}
			if s.lowlink[v] == s.index[v] {
				// v is the root of a component; pop it. Each component is
				// carved full-capacity from the shared buffer so a later
				// component's appends cannot overwrite it.
				base := len(compBuf)
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					s.onStack[w] = false
					compBuf = append(compBuf, w)
					if w == v {
						break
					}
				}
				comps = append(comps, compBuf[base:len(compBuf):len(compBuf)])
			}
		}
	}
	s.stack = stack
	s.frames = frames
	s.comps = comps
	s.compBuf = compBuf
	return comps
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Map returns, for each node, the index of its component within the slice
// returned by Components for the same graph.
func Map(n int, comps [][]int) []int {
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	for ci, c := range comps {
		for _, v := range c {
			id[v] = ci
		}
	}
	return id
}

// IsTrivial reports whether component comp is a single node with no self
// edge in the graph described by succ. Trivial components are classified
// by the operator algebra rather than the cycle rules.
func IsTrivial(comp []int, succ func(int) []int) bool {
	if len(comp) != 1 {
		return false
	}
	v := comp[0]
	for _, w := range succ(v) {
		if w == v {
			return false
		}
	}
	return true
}
