// Package scc implements Tarjan's strongly-connected-components algorithm
// (Tarjan, SIAM J. Comput. 1972) over integer-indexed directed graphs.
//
// The classifier in internal/iv runs this over the SSA graph, whose edges
// point from each operation to its source operands. Tarjan's algorithm
// emits a component only after every component reachable from it has been
// emitted, so when a component pops, all values feeding it are already
// classified — the property the paper's one-pass classification relies on
// (§3.1). Components returns components in exactly that pop order.
//
// The implementation is iterative (explicit work stack) so that graphs
// with very long dependence chains — e.g. the scaling benchmarks with
// tens of thousands of straight-line statements — cannot overflow the
// goroutine stack.
package scc

// Components computes the strongly connected components of the directed
// graph with nodes 0..n-1 and successor function succ. Components are
// returned in Tarjan pop order: every component appears after all
// components reachable from it. Nodes within a component are in stack
// order (no particular guarantee beyond membership).
func Components(n int, succ func(int) []int) [][]int {
	if n == 0 {
		return nil
	}
	const unvisited = -1
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int // Tarjan value stack
		comps   [][]int
		counter int
	)

	// frame is an explicit DFS frame: node v, and the position within
	// succ(v) to resume at.
	type frame struct {
		v    int
		next int
		adj  []int
	}
	var frames []frame

	push := func(v int) {
		index[v] = counter
		lowlink[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		frames = append(frames, frame{v: v, adj: succ(v)})
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.next < len(f.adj) {
				w := f.adj[f.next]
				f.next++
				if index[w] == unvisited {
					push(w)
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if lowlink[v] < lowlink[parent.v] {
					lowlink[parent.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// v is the root of a component; pop it.
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Map returns, for each node, the index of its component within the slice
// returned by Components for the same graph.
func Map(n int, comps [][]int) []int {
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	for ci, c := range comps {
		for _, v := range c {
			id[v] = ci
		}
	}
	return id
}

// IsTrivial reports whether component comp is a single node with no self
// edge in the graph described by succ. Trivial components are classified
// by the operator algebra rather than the cycle rules.
func IsTrivial(comp []int, succ func(int) []int) bool {
	if len(comp) != 1 {
		return false
	}
	v := comp[0]
	for _, w := range succ(v) {
		if w == v {
			return false
		}
	}
	return true
}
