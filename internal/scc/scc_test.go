package scc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func adj(edges map[int][]int) func(int) []int {
	return func(v int) []int { return edges[v] }
}

func sortedComps(comps [][]int) [][]int {
	out := make([][]int, len(comps))
	for i, c := range comps {
		cc := append([]int(nil), c...)
		sort.Ints(cc)
		out[i] = cc
	}
	return out
}

func TestEmpty(t *testing.T) {
	if got := Components(0, adj(nil)); got != nil {
		t.Errorf("Components(0) = %v, want nil", got)
	}
}

func TestSingleNode(t *testing.T) {
	comps := Components(1, adj(nil))
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != 0 {
		t.Errorf("Components = %v", comps)
	}
	if !IsTrivial(comps[0], adj(nil)) {
		t.Error("lone node without self loop should be trivial")
	}
}

func TestSelfLoop(t *testing.T) {
	g := adj(map[int][]int{0: {0}})
	comps := Components(1, g)
	if len(comps) != 1 {
		t.Fatalf("Components = %v", comps)
	}
	if IsTrivial(comps[0], g) {
		t.Error("self loop must be nontrivial")
	}
}

func TestChainPopOrder(t *testing.T) {
	// 0 -> 1 -> 2: successors must pop first.
	g := adj(map[int][]int{0: {1}, 1: {2}})
	comps := Components(3, g)
	want := [][]int{{2}, {1}, {0}}
	got := sortedComps(comps)
	for i := range want {
		if len(got[i]) != 1 || got[i][0] != want[i][0] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestCycleWithTail(t *testing.T) {
	// 0 <-> 1 form a cycle; both point at 2; 3 points at 0.
	g := adj(map[int][]int{0: {1, 2}, 1: {0, 2}, 3: {0}})
	comps := Components(4, g)
	if len(comps) != 3 {
		t.Fatalf("want 3 components, got %v", comps)
	}
	got := sortedComps(comps)
	if got[0][0] != 2 {
		t.Errorf("node 2 should pop first, got %v", got)
	}
	if len(got[1]) != 2 || got[1][0] != 0 || got[1][1] != 1 {
		t.Errorf("cycle {0,1} should pop second, got %v", got)
	}
	if got[2][0] != 3 {
		t.Errorf("node 3 should pop last, got %v", got)
	}
}

func TestTwoIndependentCycles(t *testing.T) {
	g := adj(map[int][]int{0: {1}, 1: {0}, 2: {3}, 3: {2}})
	comps := Components(4, g)
	if len(comps) != 2 {
		t.Fatalf("want 2 components, got %v", comps)
	}
	for _, c := range comps {
		if len(c) != 2 {
			t.Errorf("component size = %d, want 2", len(c))
		}
	}
}

func TestMap(t *testing.T) {
	g := adj(map[int][]int{0: {1}, 1: {0}, 2: {0}})
	comps := Components(3, g)
	id := Map(3, comps)
	if id[0] != id[1] {
		t.Error("0 and 1 should share a component")
	}
	if id[2] == id[0] {
		t.Error("2 should be in its own component")
	}
	if id[2] <= id[0] {
		t.Error("2 depends on the cycle, so its component must pop later")
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	const n = 200000
	succ := func(v int) []int {
		if v+1 < n {
			return []int{v + 1}
		}
		return nil
	}
	comps := Components(n, succ)
	if len(comps) != n {
		t.Fatalf("want %d singleton components, got %d", n, len(comps))
	}
	if comps[0][0] != n-1 || comps[n-1][0] != 0 {
		t.Error("pop order should run from chain end back to start")
	}
}

func TestLargeSingleCycle(t *testing.T) {
	const n = 100000
	succ := func(v int) []int { return []int{(v + 1) % n} }
	comps := Components(n, succ)
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("want one %d-cycle, got %d components", n, len(comps))
	}
}

// reachable computes reachability via BFS, for the oracle checks.
func reachable(n int, succ func(int) []int, from int) []bool {
	seen := make([]bool, n)
	queue := []int{from}
	seen[from] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range succ(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// TestQuickSCCOracle checks, on random graphs, that (a) two nodes share a
// component iff they are mutually reachable, and (b) pop order is a
// reverse topological order of the condensation.
func TestQuickSCCOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func() bool {
		n := 1 + rng.Intn(10)
		edges := make(map[int][]int)
		m := rng.Intn(3 * n)
		for e := 0; e < m; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			edges[a] = append(edges[a], b)
		}
		succ := adj(edges)
		comps := Components(n, succ)
		id := Map(n, comps)

		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = reachable(n, succ, v)
		}
		// (a) mutual reachability <=> same component.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				mutual := reach[a][b] && reach[b][a]
				if mutual != (id[a] == id[b]) {
					return false
				}
			}
		}
		// (b) if a reaches b and they differ, b's component pops first.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if reach[a][b] && id[a] != id[b] && id[b] > id[a] {
					return false
				}
			}
		}
		// Components partition the nodes.
		total := 0
		for _, c := range comps {
			total += len(c)
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkComponentsChain(b *testing.B) {
	const n = 10000
	succ := func(v int) []int {
		if v+1 < n {
			return []int{v + 1}
		}
		return nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Components(n, succ)
	}
}

func BenchmarkComponentsDense(b *testing.B) {
	const n = 1000
	rng := rand.New(rand.NewSource(3))
	edges := make([][]int, n)
	for v := range edges {
		for e := 0; e < 8; e++ {
			edges[v] = append(edges[v], rng.Intn(n))
		}
	}
	succ := func(v int) []int { return edges[v] }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Components(n, succ)
	}
}
