// Package scratch provides the per-run scratch arena behind the dense
// ID-indexed hot path: one Arena per in-flight analysis run, holding
// each analysis package's reusable working tables so a run allocates
// them once and every later run (same worker, next batch source, next
// cache-miss) resets them instead of reallocating.
//
// The arena deliberately knows nothing about its consumers: each
// analysis package (ssa, sccp, iv, depend) declares a private scratch
// struct and claims a slot here via Get, which keeps the import
// direction strictly consumer → scratch and lets the engine own arena
// lifetime without importing the back ends. An Arena is single-run,
// single-goroutine property: the engine hands one to a run, detaches it
// before the resulting State is cached or returned (cached states are
// shared across goroutines), and recycles it through a sync.Pool.
//
// Consumers must make no assumption about slot contents on entry —
// after a contained panic a table may hold a previous run's partial
// state — so every table is either sized-and-cleared on acquisition or
// guarded by a generation stamp.
package scratch

import "sync"

// Arena carries one slot per consumer package. Slots start nil and are
// lazily populated via Get with whatever private type the consumer
// declares.
type Arena struct {
	Parse  any // *parse front-end scratch (token and statement buffers)
	SSA    any // *ssa build scratch
	SCCP   any // *sccp solver scratch
	IV     any // *iv classifier scratch (embeds the scc scratch)
	Depend any // *depend tester scratch
	IR     any // *ir.CloneScratch: clone-on-transform remap tables
	Xform  any // *xform transformation scratch (gen-stamped done tables)

	// owner is the Pool this arena was checked out of, set by Pool.Get
	// and cleared by Pool.Put. It lets a pass that fans work out across
	// workers check sibling arenas out of the same pool (see Owner)
	// without the pool having to be threaded through every option
	// struct.
	owner *Pool
}

// Owner returns the Pool the arena is currently checked out of, nil
// for a free-standing arena (or a nil receiver). Parallel passes use
// it to acquire one extra arena per worker and return them when the
// fan-out joins.
func (a *Arena) Owner() *Pool {
	if a == nil {
		return nil
	}
	return a.owner
}

// Pool recycles arenas across runs and workers. It wraps a sync.Pool
// and stamps each checked-out arena with an owner backpointer so
// nested fan-outs can draw worker arenas from the same pool; arenas
// must be Put back exactly once, after which the previous holder may
// no longer touch them.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty arena pool.
func NewPool() *Pool {
	pl := &Pool{}
	pl.p.New = func() any { return &Arena{} }
	return pl
}

// Get checks an arena out of the pool, allocating one the first time.
// Safe on a nil pool (returns a free-standing arena with no owner).
func (pl *Pool) Get() *Arena {
	if pl == nil {
		return &Arena{}
	}
	a := pl.p.Get().(*Arena)
	a.owner = pl
	return a
}

// Put returns an arena to the pool. Safe on a nil pool or nil arena.
func (pl *Pool) Put(a *Arena) {
	if pl == nil || a == nil {
		return
	}
	a.owner = nil
	pl.p.Put(a)
}

// Get returns the typed scratch struct in *slot, allocating it on first
// use. A nil receiver is allowed everywhere a *Arena is threaded: the
// caller falls back to a locally allocated scratch for one-shot runs.
func Get[T any](slot *any) *T {
	if s, ok := (*slot).(*T); ok {
		return s
	}
	s := new(T)
	*slot = s
	return s
}

// Grow returns s resized to length n — reusing capacity when it can —
// with every element reset to the zero value. This is the idiom every
// dense ID-indexed table uses on acquisition: correctness never depends
// on what a recycled arena left behind.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// GrowReuse resizes a slice-of-slices to n entries, emptying each entry
// while keeping its backing capacity for reuse across runs.
func GrowReuse[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		ns := make([][]T, n)
		copy(ns, s)
		s = ns
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}
