// Engine tests: pass execution and artifact population, containment of
// pass errors and panics, cache LRU behavior, and batch mechanics.
// The full-pipeline fault-injection tables live with the entry points
// they guard (hardening_test.go at the root, pipeline_test.go in iv).
package engine_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"beyondiv/internal/engine"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
)

const src = `
j = 0
L1: for i = 1 to 10 {
    j = j + i
    a[j] = a[j - 1]
}
`

func frontend(cfg engine.Config) *engine.Engine {
	cfg.Passes = engine.Frontend()
	return engine.New(cfg)
}

// TestFrontendArtifacts: every typed frontend slot is populated, in
// dependency order.
func TestFrontendArtifacts(t *testing.T) {
	st, err := frontend(engine.Config{}).Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != src {
		t.Error("state does not carry its source")
	}
	if st.File == nil || st.CFG == nil || st.SSA == nil || st.Forest == nil || st.Consts == nil {
		t.Fatalf("frontend left artifacts empty: %+v", st)
	}
	if len(st.Forest.Loops) != 1 || st.Forest.Loops[0].Label != "L1" {
		t.Errorf("loop labels not attached: %v", st.Forest.Loops)
	}
}

// TestContributedPass: a pass appended to the frontend sees the typed
// artifacts and its keyed artifact is readable back.
func TestContributedPass(t *testing.T) {
	passes := append(engine.Frontend(), engine.Pass{Name: "count", Run: func(st *engine.State) error {
		n := 0
		for _, b := range st.SSA.Func.Blocks {
			n += len(b.Values)
		}
		st.Put("count", n)
		return nil
	}})
	st, err := engine.New(engine.Config{Passes: passes}).Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := st.Artifact("count").(int); !ok || n == 0 {
		t.Errorf("contributed artifact = %v", st.Artifact("count"))
	}
	if st.Artifact("absent") != nil {
		t.Error("unknown artifact key is non-nil")
	}
}

// TestPassErrorWrapped: a pass's error return surfaces as *Error
// naming the pass.
func TestPassErrorWrapped(t *testing.T) {
	boom := errors.New("boom")
	passes := append(engine.Frontend(), engine.Pass{Name: "custom", Run: func(st *engine.State) error {
		return boom
	}})
	_, err := engine.New(engine.Config{Passes: passes}).Analyze(src)
	var e *engine.Error
	if !errors.As(err, &e) || e.Phase != "custom" || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want *Error{Phase: custom} wrapping boom", err)
	}
	if e.Stack != nil {
		t.Error("error return carries a panic stack")
	}
}

// TestPassPanicContained: a panic inside a pass is contained with a
// stack; analysis of the same engine afterwards still works.
func TestPassPanicContained(t *testing.T) {
	fail := true
	passes := append(engine.Frontend(), engine.Pass{Name: "custom", Run: func(st *engine.State) error {
		if fail {
			panic("kaboom")
		}
		return nil
	}})
	eng := engine.New(engine.Config{Passes: passes})
	_, err := eng.Analyze(src)
	var e *engine.Error
	if !errors.As(err, &e) || e.Phase != "custom" || len(e.Stack) == 0 {
		t.Fatalf("err = %v, want contained panic in custom with stack", err)
	}
	if !strings.Contains(e.Err.Error(), "kaboom") {
		t.Errorf("cause %q lost the panic value", e.Err)
	}
	fail = false
	if _, err := eng.Analyze(src); err != nil {
		t.Errorf("engine unusable after a contained panic: %v", err)
	}
}

// TestLimitsNormalizedOnEveryPath: an engine built with zero limits
// still enforces the default ceilings (the safety gap the refactor
// closes: no entry point runs unguarded).
func TestLimitsNormalizedOnEveryPath(t *testing.T) {
	deep := "j = " + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000)
	_, err := frontend(engine.Config{}).Analyze(deep)
	var le *guard.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("default ceilings not enforced: %v", err)
	}
}

// TestCacheLRU: capacity-2 cache over three sources evicts the
// coldest; hit/miss/evict counters record every step.
func TestCacheLRU(t *testing.T) {
	rec := obs.New()
	srcs := []string{"a = 1\n", "b = 2\n", "c = 3\n"}
	eng := frontend(engine.Config{CacheEntries: 2, Obs: rec})

	counters := func() (hit, miss, evict int64) {
		return rec.Counter("engine.cache.hit"), rec.Counter("engine.cache.miss"), rec.Counter("engine.cache.evict")
	}
	st0, err := eng.Analyze(srcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := eng.Analyze(srcs[0]); st != st0 {
		t.Error("immediate re-analysis missed the cache")
	}
	eng.Analyze(srcs[1])
	if hit, miss, evict := counters(); hit != 1 || miss != 2 || evict != 0 {
		t.Errorf("hit/miss/evict = %d/%d/%d, want 1/2/0", hit, miss, evict)
	}
	// srcs[0] is hotter than srcs[1]; inserting srcs[2] must evict srcs[1].
	eng.Analyze(srcs[0])
	eng.Analyze(srcs[2])
	if _, _, evict := counters(); evict != 1 {
		t.Errorf("evict = %d, want 1", evict)
	}
	if st, _ := eng.Analyze(srcs[0]); st != st0 {
		t.Error("hot entry was evicted")
	}
	rec2 := obs.New()
	eng2 := frontend(engine.Config{Cache: nil, Obs: rec2})
	eng2.Analyze(srcs[0])
	if rec2.Counter("engine.cache.miss") != 0 {
		t.Error("cacheless engine recorded cache traffic")
	}
}

// TestCacheSkipsFailures: failed analyses are never cached — a source
// that failed under an injected fault re-runs (and succeeds) once the
// fault is gone.
func TestCacheSkipsFailures(t *testing.T) {
	arm := true
	lim := guard.Limits{Inject: func(phase string) {
		if arm && phase == "ssa" {
			panic(&guard.Fault{Phase: "ssa"})
		}
	}}
	eng := frontend(engine.Config{CacheEntries: 4, Limits: lim})
	if _, err := eng.Analyze(src); err == nil {
		t.Fatal("armed fault did not fire")
	}
	arm = false
	st, err := eng.Analyze(src)
	if err != nil || st == nil {
		t.Fatalf("re-analysis after disarmed fault: %v", err)
	}
}

// TestAnalyzeAllOrderAndJobsClamp: results return in input order for
// every jobs setting, including jobs > len(sources) and jobs <= 0.
func TestAnalyzeAllOrderAndJobsClamp(t *testing.T) {
	var srcs []string
	for i := 0; i < 9; i++ {
		srcs = append(srcs, fmt.Sprintf("x = %d\n", i))
	}
	for _, jobs := range []int{0, 1, 3, 100} {
		items := frontend(engine.Config{Jobs: jobs}).AnalyzeAll(srcs)
		if len(items) != len(srcs) {
			t.Fatalf("jobs=%d: %d items", jobs, len(items))
		}
		for i, it := range items {
			if it.Index != i || it.Source != srcs[i] || it.Err != nil || it.State == nil {
				t.Errorf("jobs=%d item %d = {%d %q err=%v}", jobs, i, it.Index, it.Source, it.Err)
			}
		}
	}
}

// TestBatchCacheDedup: a batch full of duplicates analyzes each
// distinct source once (modulo benign races) when cached.
func TestBatchCacheDedup(t *testing.T) {
	rec := obs.New()
	eng := frontend(engine.Config{CacheEntries: 4, Jobs: 1, Obs: rec})
	srcs := []string{"a = 1\n", "a = 1\n", "a = 1\n", "b = 2\n"}
	for _, it := range eng.AnalyzeAll(srcs) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
	}
	if miss := rec.Counter("engine.cache.miss"); miss != 2 {
		t.Errorf("misses = %d, want 2 (two distinct sources)", miss)
	}
	if hit := rec.Counter("engine.cache.hit"); hit != 2 {
		t.Errorf("hits = %d, want 2", hit)
	}
}
