package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beyondiv/internal/codec"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/store"
)

// TestFingerprintNoCollision pins the length-prefixed cache-key scheme:
// under the old unescaped "|" concatenation, a caller fingerprint could
// impersonate the limits-and-passes suffix of a different configuration
// and alias its cache entries. These two configurations concatenate
// identically without length prefixes and must not share keys.
func TestFingerprintNoCollision(t *testing.T) {
	mk := func(fp string, passNames ...string) *Engine {
		var ps []Pass
		for _, n := range passNames {
			ps = append(ps, Pass{Name: n, Run: func(*State) error { return nil }})
		}
		return New(Config{Fingerprint: fp, Passes: ps})
	}
	// One pass named "a,b" versus two passes "a" and "b".
	e1 := mk("x", "a,b")
	e2 := mk("x", "a", "b")
	if e1.key("s") == e2.key("s") {
		t.Fatalf("pass-name concatenation still collides:\n%q\n%q", e1.fp, e2.fp)
	}
	// A fingerprint smuggling a pass-list suffix versus the real thing.
	e3 := mk("x|3:a,b")
	if e3.key("s") == e1.key("s") {
		t.Fatalf("crafted fingerprint collides with pass list:\n%q\n%q", e3.fp, e1.fp)
	}
	// Same shapes must still agree with themselves.
	if mk("x", "a", "b").key("s") != e2.key("s") {
		t.Fatalf("identical configs produce different keys")
	}
}

const persistSrc = `s = 0
for i = 1 to n {
    s = s + i
}
`

// persistConfig builds a frontend-only engine over a disk store with a
// stub artifact builder (the real builder lives in the facade; the
// engine contract only needs bytes that decode).
func persistConfig(st8 *store.Store, reg *metrics.Registry, rec *obs.Recorder) Config {
	return Config{
		Passes:  Frontend(),
		Store:   st8,
		Obs:     rec,
		Metrics: reg,
		BuildArtifact: func(s *State) ([]byte, error) {
			_, names := codec.StructuralHash(s.File)
			return codec.Encode(&codec.Artifact{Classification: "stub-report"}, names, nil, nil), nil
		},
	}
}

func TestDiskStoreTwoTier(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	rec := obs.New()
	e1 := New(persistConfig(disk, reg, rec))

	// Cold run: fresh analysis plus a store write (entry + alias).
	st, err := e1.Analyze(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded() != nil {
		t.Fatal("cold run returned a decoded state")
	}
	if got := reg.Counter("engine.store.write"); got != 1 {
		t.Fatalf("store.write = %d, want 1", got)
	}
	if disk.Len() != 2 {
		t.Fatalf("store holds %d blobs, want entry+alias", disk.Len())
	}

	// Fresh engine over the same directory — a new process: the alias
	// answers with zero passes (no parse span recorded).
	reg2 := metrics.NewRegistry()
	rec2 := obs.New()
	disk2, _ := store.Open(dir, 0)
	e2 := New(persistConfig(disk2, reg2, rec2))
	st2, err := e2.Analyze(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Decoded() == nil {
		t.Fatal("warm cross-process run was not served from the store")
	}
	if st2.Decoded().Classification != "stub-report" {
		t.Fatalf("decoded classification %q", st2.Decoded().Classification)
	}
	if got := reg2.Counter("engine.store.hit.alias"); got != 1 {
		t.Fatalf("store.hit.alias = %d, want 1", got)
	}
	if got := rec2.Counter("engine.store.hit"); got != 1 {
		t.Fatalf("obs store.hit = %d, want 1", got)
	}
	// Zero analysis passes: the span tree has no parse child.
	for _, sp := range rec2.Spans() {
		for _, c := range sp.Children {
			t.Fatalf("warm start ran pass %q", c.Name)
		}
	}

	// A whitespace/comment variant of the same program: the alias
	// misses, the structural entry hits after the parse alone.
	variant := "s=0 // comment\nfor i = 1 to n { s = s + i }\n"
	st3, err := e2.Analyze(variant)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Decoded() == nil {
		t.Fatal("formatting variant missed the structural entry")
	}
	if got := reg2.Counter("engine.store.hit.struct"); got != 1 {
		t.Fatalf("store.hit.struct = %d, want 1", got)
	}
	// The struct hit left an alias: the variant now costs zero passes
	// even in a new process.
	disk3, _ := store.Open(dir, 0)
	reg3 := metrics.NewRegistry()
	e3 := New(persistConfig(disk3, reg3, obs.New()))
	if st4, err := e3.Analyze(variant); err != nil || st4.Decoded() == nil {
		t.Fatalf("variant alias not persisted: %v", err)
	}
	if got := reg3.Counter("engine.store.hit.alias"); got != 1 {
		t.Fatalf("variant store.hit.alias = %d, want 1", got)
	}
}

func TestDiskStoreCorruptionRecovers(t *testing.T) {
	dir := t.TempDir()
	disk, _ := store.Open(dir, 0)
	reg := metrics.NewRegistry()
	e := New(persistConfig(disk, reg, nil))
	if _, err := e.Analyze(persistSrc); err != nil {
		t.Fatal(err)
	}

	// Truncate every blob in place: both the alias and the entry are now
	// damaged.
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		return os.Truncate(path, info.Size()/2)
	})

	reg2 := metrics.NewRegistry()
	disk2, _ := store.Open(dir, 0)
	e2 := New(persistConfig(disk2, reg2, nil))
	st, err := e2.Analyze(persistSrc)
	if err != nil {
		t.Fatalf("corrupt store must degrade to re-analysis, got %v", err)
	}
	if st.Decoded() != nil {
		t.Fatal("corrupt entry served as a result")
	}
	if got := reg2.Counter("engine.store.corrupt"); got == 0 {
		t.Fatal("corruption not counted")
	}
	// The re-analysis rewrote clean blobs: a third engine warm-starts.
	disk3, _ := store.Open(dir, 0)
	reg3 := metrics.NewRegistry()
	e3 := New(persistConfig(disk3, reg3, nil))
	if st3, err := e3.Analyze(persistSrc); err != nil || st3.Decoded() == nil {
		t.Fatalf("store not repaired after corruption: %v", err)
	}
}

func TestStoreWriteOnly(t *testing.T) {
	dir := t.TempDir()
	disk, _ := store.Open(dir, 0)
	cfg := persistConfig(disk, nil, nil)
	cfg.StoreWriteOnly = true
	e := New(cfg)
	if _, err := e.Analyze(persistSrc); err != nil {
		t.Fatal(err)
	}
	if disk.Len() == 0 {
		t.Fatal("write-only engine did not warm the store")
	}
	// Re-analysis in a fresh write-only engine must not be served a
	// decoded state.
	disk2, _ := store.Open(dir, 0)
	cfg2 := persistConfig(disk2, nil, nil)
	cfg2.StoreWriteOnly = true
	st, err := New(cfg2).Analyze(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded() != nil {
		t.Fatal("write-only engine read from the store")
	}
	if st.SSA == nil {
		t.Fatal("write-only engine returned no live SSA")
	}
	// A reading engine over the same directory gets the warm entry.
	disk3, _ := store.Open(dir, 0)
	st2, err := New(persistConfig(disk3, nil, nil)).Analyze(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Decoded() == nil {
		t.Fatal("reader did not see write-only engine's entries")
	}
}

// TestDecodedMemEntryUpgraded pins the cache.put upgrade: a decoded
// placeholder in the in-memory cache is replaced when a live state for
// the same key arrives (the optimizer path bypasses decoded entries and
// re-runs; its fresh result must take the slot or every later Optimize
// re-runs too).
func TestDecodedMemEntryUpgraded(t *testing.T) {
	dir := t.TempDir()
	disk, _ := store.Open(dir, 0)
	// Warm the disk store.
	if _, err := New(persistConfig(disk, nil, nil)).Analyze(persistSrc); err != nil {
		t.Fatal(err)
	}
	disk2, _ := store.Open(dir, 0)
	cfg := persistConfig(disk2, nil, nil)
	cfg.CacheEntries = 8
	e := New(cfg)
	// First Analyze: decoded state lands in the memory cache.
	st, err := e.Analyze(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded() == nil {
		t.Fatal("expected a decoded state")
	}
	// A live-needing analyze bypasses it and re-runs the pipeline...
	live, err := e.analyze(persistSrc, nil, e.cfg.Limits, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if live.Decoded() != nil || live.SSA == nil {
		t.Fatal("needLive analyze still returned a decoded state")
	}
	// ...and its result replaces the placeholder: the next live call is
	// a cache hit (same pointer), not another cold run.
	live2, err := e.analyze(persistSrc, nil, e.cfg.Limits, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if live2 != live {
		t.Fatal("live state did not take over the cache slot")
	}
}

func TestAliasSharesStructuralEntryAcrossRenames(t *testing.T) {
	// Engine-level α-sharing needs a renameable artifact; the stub
	// builder stores literal-only, so renamed sources must NOT hit (the
	// codec refuses the remap) — pinning that a non-renameable entry
	// never serves a different table.
	dir := t.TempDir()
	disk, _ := store.Open(dir, 0)
	e := New(persistConfig(disk, nil, nil))
	if _, err := e.Analyze(persistSrc); err != nil {
		t.Fatal(err)
	}
	renamed := strings.NewReplacer("s", "t", "i", "j", "n", "m").Replace(persistSrc)
	disk2, _ := store.Open(dir, 0)
	reg := metrics.NewRegistry()
	st, err := New(persistConfig(disk2, reg, nil)).Analyze(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decoded() != nil {
		t.Fatal("literal-only entry served an α-renamed source")
	}
	if got := reg.Counter("engine.store.corrupt"); got != 0 {
		t.Fatalf("incompatible entry counted as corrupt (%d)", got)
	}
}
