package engine

import (
	"crypto/sha256"
	"errors"

	"beyondiv/internal/codec"
	"beyondiv/internal/obs"
)

// Disk-tier key derivation. Two key families share the store, separated
// by domain tags and both mixed with the engine fingerprint (options +
// limits + pass names, length-prefixed):
//
//	alias key = H("biv.alias" ‖ fp ‖ raw source)
//	entry key = H("biv.entry" ‖ fp ‖ structural hash)
//
// An alias record maps one exact source to the structural entry that
// answers it, carrying that source's own name table — the entry may
// have been written for an α-renamed sibling, so the table cannot live
// in the entry. An entry holds the encoded artifact.

func (e *Engine) aliasKey(source string) [32]byte {
	h := sha256.New()
	h.Write([]byte("biv.alias\x00"))
	h.Write([]byte(e.fp))
	h.Write([]byte{0})
	h.Write([]byte(source))
	var k [32]byte
	h.Sum(k[:0])
	return k
}

func (e *Engine) entryKey(structSum [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("biv.entry\x00"))
	h.Write([]byte(e.fp))
	h.Write([]byte{0})
	h.Write(structSum[:])
	var k [32]byte
	h.Sum(k[:0])
	return k
}

// storeCount bumps a disk-tier counter on both telemetry backends.
func (e *Engine) storeCount(rec *obs.Recorder, name string) {
	rec.Count(name)
	if e.ins != nil {
		e.ins.count(name)
	}
}

// aliasGet resolves the exact-source alias for source, then decodes the
// structural entry it points at under the alias's name table. Any
// corrupt blob on the way is counted, deleted and treated as a miss.
func (e *Engine) aliasGet(source string, rec *obs.Recorder) *codec.Artifact {
	ak := e.aliasKey(source)
	data, ok := e.cfg.Store.Get(ak)
	if !ok {
		return nil
	}
	structSum, names, err := codec.DecodeAlias(data)
	if err != nil {
		e.cfg.Store.Delete(ak)
		e.storeCount(rec, "engine.store.corrupt")
		return nil
	}
	return e.entryGet(structSum, names, rec, "engine.store.hit.alias")
}

// entryGet reads and decodes the structural entry for structSum under
// the requester's name table. A corrupt entry is deleted and counted; a
// valid entry that cannot serve this table (not renameable, or a
// remap-invariant violation) is kept for its own sources and reported
// as a miss.
func (e *Engine) entryGet(structSum [32]byte, names []string, rec *obs.Recorder, kind string) *codec.Artifact {
	ek := e.entryKey(structSum)
	data, ok := e.cfg.Store.Get(ek)
	if !ok {
		return nil
	}
	art, err := codec.Decode(data, names)
	if err != nil {
		if errors.Is(err, codec.ErrCorrupt) {
			e.cfg.Store.Delete(ek)
			e.storeCount(rec, "engine.store.corrupt")
		}
		return nil
	}
	e.storeCount(rec, "engine.store.hit")
	e.storeCount(rec, kind)
	return art
}

// diskWrite persists a fresh successful run: the encoded artifact under
// the structural key, plus an alias for the exact source that produced
// it. Serialization or I/O failures only cost persistence — the live
// result has already been computed and is returned regardless.
func (e *Engine) diskWrite(st *State, structSum [32]byte, structNames []string, rec *obs.Recorder) {
	data, err := e.cfg.BuildArtifact(st)
	if err != nil || data == nil {
		return
	}
	evicted, err := e.cfg.Store.Put(e.entryKey(structSum), data)
	if err != nil {
		return
	}
	e.cfg.Store.Put(e.aliasKey(st.Source), codec.EncodeAlias(structSum, structNames))
	e.storeCount(rec, "engine.store.write")
	if evicted > 0 {
		rec.Add("engine.store.evict", int64(evicted))
		if e.ins != nil {
			e.ins.reg.Add("engine.store.evict", int64(evicted))
		}
	}
}
