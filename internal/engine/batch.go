package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
)

// Item is one source's outcome in a batch: its position in the input,
// the analyzed state on success, or the *Error that failed it. A
// failure is always the source's own — one source hitting its guard
// ceiling neither aborts nor skews the rest of the batch.
type Item struct {
	Index  int
	Source string
	State  *State
	Err    error
}

// AnalyzeAll fans the sources out over a bounded worker pool (Config.
// Jobs workers, capped at the batch size) and returns one Item per
// source, in input order. Results are deterministic: each source's
// analysis is independent, so the outcome is byte-identical to running
// Analyze sequentially, whatever the worker count.
//
// Telemetry: each worker records into a fork of the configured
// recorder under a "worker N" span; forks merge back in worker order
// once the batch is done, so counters aggregate exactly and no span
// tree is ever written concurrently. Guarding: every source runs under
// the engine's per-source limits, plus — when Config.BatchSteps is set
// — a pool of steps shared by the whole batch.
func (e *Engine) AnalyzeAll(sources []string) []Item {
	return e.AnalyzeAllContext(context.Background(), sources)
}

// AnalyzeAllContext is AnalyzeAll under a caller's context. When ctx
// is cancelled mid-batch, no further sources are scheduled: in-flight
// sources stop cooperatively (returning a *Error wrapping
// *guard.CancelError that names the phase they were cancelled in), and
// every source that never reached a worker carries a batch-attributed
// cancellation error instead of an analysis. The result slice always
// has one entry per input, in input order.
func (e *Engine) AnalyzeAllContext(ctx context.Context, sources []string) []Item {
	rec := e.cfg.Obs
	span := rec.Phase("analyze-all")
	defer span.End()

	lim := e.cfg.Limits
	lim.Pool = guard.NewPool(e.cfg.BatchSteps)
	lim.Ctx = ctx
	defer e.poolGauges(lim.Pool)

	par := e.batchPar(len(sources))
	items := make([]Item, len(sources))
	e.fanOut(ctx, len(sources), rec, func(i int, wrec *obs.Recorder) {
		st, err := e.analyze(sources[i], wrec, lim, par, false)
		items[i] = Item{Index: i, Source: sources[i], State: st, Err: err}
	}, func(i int, ce *guard.CancelError) {
		items[i] = Item{Index: i, Source: sources[i], Err: &Error{Phase: ce.Phase, Err: ce}}
	})
	return items
}

// batchPar is the oversubscription guard between the two concurrency
// tiers: a batch of n sources runs on up to Config.Jobs workers, and
// each source may itself fan out over Config.Parallel workers, so the
// tiers multiply. An auto (Parallel = 0) width is divided by the
// effective batch worker count — GOMAXPROCS split evenly, never below
// one — while an explicitly configured width is honored as given.
func (e *Engine) batchPar(n int) int {
	if e.cfg.Parallel != 0 {
		return e.par
	}
	jobs := e.cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		return e.par
	}
	par := runtime.GOMAXPROCS(0) / jobs
	if par < 1 {
		par = 1
	}
	return par
}

// fanOut runs n indexed work items over the engine's bounded worker
// pool, the shared scheduling core of AnalyzeAll and OptimizeAll: the
// inline single-worker path keeps the caller's recorder and span shape,
// the concurrent path forks one recorder per worker and absorbs them
// back in worker order. A cancelled ctx stops the dispatcher; every
// index that was never handed to a worker is reported through
// cancelled (with a batch-attributed *guard.CancelError) instead of
// work, so callers always produce one result per input.
func (e *Engine) fanOut(ctx context.Context, n int, rec *obs.Recorder,
	work func(i int, wrec *obs.Recorder), cancelled func(i int, ce *guard.CancelError)) {
	jobs := e.cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if e.ins != nil {
		e.ins.count("engine.batch")
		e.ins.reg.Add("engine.batch.sources", int64(n))
		e.ins.reg.SetGauge("engine.batch.workers", int64(jobs))
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	if jobs <= 1 {
		// Inline: same goroutine, same recorder, same span shape as
		// repeated Analyze calls.
		for i := 0; i < n; i++ {
			if done != nil {
				if ce := (guard.Limits{Ctx: ctx}).Cancelled("batch"); ce != nil {
					cancelled(i, ce)
					continue
				}
			}
			work(i, rec)
		}
		return
	}

	idx := make(chan int)
	recs := make([]*obs.Recorder, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		recs[w] = rec.Fork()
		wg.Add(1)
		go func(w int, wrec *obs.Recorder) {
			defer wg.Done()
			wspan := wrec.Phase(fmt.Sprintf("worker %d", w))
			defer wspan.End()
			for i := range idx {
				work(i, wrec)
			}
		}(w, recs[w])
	}
dispatch:
	for i := 0; i < n; i++ {
		if done == nil {
			idx <- i
			continue
		}
		select {
		case idx <- i:
		case <-done:
			ce := &guard.CancelError{Phase: "batch", Cause: ctx.Err()}
			for j := i; j < n; j++ {
				cancelled(j, ce)
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	for _, wrec := range recs {
		rec.Absorb(wrec)
	}
}

// poolGauges publishes a finished batch's shared-step-pool state —
// how much of the ceiling the batch left unspent.
func (e *Engine) poolGauges(pool *guard.Pool) {
	if e.ins == nil || pool == nil {
		return
	}
	e.ins.reg.SetGauge("guard.pool.limit", pool.Limit())
	e.ins.reg.SetGauge("guard.pool.remaining", pool.Remaining())
}
