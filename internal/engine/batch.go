package engine

import (
	"fmt"
	"runtime"
	"sync"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
)

// Item is one source's outcome in a batch: its position in the input,
// the analyzed state on success, or the *Error that failed it. A
// failure is always the source's own — one source hitting its guard
// ceiling neither aborts nor skews the rest of the batch.
type Item struct {
	Index  int
	Source string
	State  *State
	Err    error
}

// AnalyzeAll fans the sources out over a bounded worker pool (Config.
// Jobs workers, capped at the batch size) and returns one Item per
// source, in input order. Results are deterministic: each source's
// analysis is independent, so the outcome is byte-identical to running
// Analyze sequentially, whatever the worker count.
//
// Telemetry: each worker records into a fork of the configured
// recorder under a "worker N" span; forks merge back in worker order
// once the batch is done, so counters aggregate exactly and no span
// tree is ever written concurrently. Guarding: every source runs under
// the engine's per-source limits, plus — when Config.BatchSteps is set
// — a pool of steps shared by the whole batch.
func (e *Engine) AnalyzeAll(sources []string) []Item {
	rec := e.cfg.Obs
	span := rec.Phase("analyze-all")
	defer span.End()

	lim := e.cfg.Limits
	lim.Pool = guard.NewPool(e.cfg.BatchSteps)

	items := make([]Item, len(sources))
	jobs := e.cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(sources) {
		jobs = len(sources)
	}
	if e.ins != nil {
		e.ins.count("engine.batch")
		e.ins.reg.Add("engine.batch.sources", int64(len(sources)))
		e.ins.reg.SetGauge("engine.batch.workers", int64(jobs))
	}
	defer e.poolGauges(lim.Pool)

	if jobs <= 1 {
		// Inline: same goroutine, same recorder, same span shape as
		// repeated Analyze calls.
		for i, src := range sources {
			st, err := e.analyze(src, rec, lim)
			items[i] = Item{Index: i, Source: src, State: st, Err: err}
		}
		return items
	}

	idx := make(chan int)
	recs := make([]*obs.Recorder, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		recs[w] = rec.Fork()
		wg.Add(1)
		go func(w int, wrec *obs.Recorder) {
			defer wg.Done()
			wspan := wrec.Phase(fmt.Sprintf("worker %d", w))
			defer wspan.End()
			for i := range idx {
				st, err := e.analyze(sources[i], wrec, lim)
				items[i] = Item{Index: i, Source: sources[i], State: st, Err: err}
			}
		}(w, recs[w])
	}
	for i := range sources {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, wrec := range recs {
		rec.Absorb(wrec)
	}
	return items
}

// poolGauges publishes a finished batch's shared-step-pool state —
// how much of the ceiling the batch left unspent.
func (e *Engine) poolGauges(pool *guard.Pool) {
	if e.ins == nil || pool == nil {
		return
	}
	e.ins.reg.SetGauge("guard.pool.limit", pool.Limit())
	e.ins.reg.SetGauge("guard.pool.remaining", pool.Remaining())
}
