package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs/metrics"
)

const cancelSrc = `j = 0
L1: for i = 1 to n {
    j = j + i
    a[j] = a[j - 1]
}`

// TestAnalyzeContextCancelled: a context cancelled before the run
// starts must stop the pipeline at the first pass boundary with a
// structured, phase-attributed cancellation error.
func TestAnalyzeContextCancelled(t *testing.T) {
	e := New(Config{Passes: Frontend()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := e.AnalyzeContext(ctx, cancelSrc)
	if st != nil || err == nil {
		t.Fatalf("cancelled analyze must fail, got st=%v err=%v", st, err)
	}
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	var ce *guard.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want wrapped *guard.CancelError, got %v", err)
	}
	if ee.Phase == "" || ee.Phase != ce.Phase {
		t.Fatalf("phase attribution lost: error %q, cancel %q", ee.Phase, ce.Phase)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause must unwrap to context.Canceled: %v", err)
	}
}

// TestAnalyzeContextDeadlineMidPhase: a deadline expiring while a
// phase is running must surface as a cancellation attributed to that
// phase (the engine's boundary check after the pass the context died
// under). The inject hook stands in for a phase that burns wall-clock
// without consuming budget steps.
func TestAnalyzeContextDeadlineMidPhase(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	reg := metrics.NewRegistry()
	e := New(Config{
		Passes:  Frontend(),
		Metrics: reg,
		Limits: guard.Limits{Inject: func(phase string) {
			if phase == "sccp" {
				<-ctx.Done() // sleep past the deadline inside sccp
			}
		}},
	})
	_, err := e.AnalyzeContext(ctx, cancelSrc)
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatalf("want *Error, got %v", err)
	}
	if ee.Phase != "sccp" {
		t.Fatalf("cancellation must be attributed to the phase it happened in, got %q (%v)", ee.Phase, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause must unwrap to DeadlineExceeded: %v", err)
	}
	if got := reg.Counter("engine.cancel.sccp"); got != 1 {
		t.Fatalf("engine.cancel.sccp counter = %d, want 1", got)
	}
}

// TestAnalyzeContextLive: a live context must not change results.
func TestAnalyzeContextLive(t *testing.T) {
	e := New(Config{Passes: Frontend()})
	st, err := e.AnalyzeContext(context.Background(), cancelSrc)
	if err != nil || st == nil {
		t.Fatalf("live-context analyze failed: %v", err)
	}
	st2, err := e.Analyze(cancelSrc)
	if err != nil {
		t.Fatalf("plain analyze failed: %v", err)
	}
	if len(st.SSA.Func.Blocks) != len(st2.SSA.Func.Blocks) {
		t.Fatalf("context and plain analyze diverge")
	}
}

// TestAnalyzeContextCacheHitSurvivesCancel: a cache hit costs nothing,
// so it is served even when the context is already done — shedding
// cheap work helps nobody.
func TestAnalyzeContextCacheHitSurvivesCancel(t *testing.T) {
	e := New(Config{Passes: Frontend(), CacheEntries: 4})
	if _, err := e.Analyze(cancelSrc); err != nil {
		t.Fatalf("warm-up analyze failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := e.AnalyzeContext(ctx, cancelSrc)
	if err != nil || st == nil {
		t.Fatalf("cache hit must be served under a dead context, got %v", err)
	}
}

// TestAnalyzeAllContextStopsScheduling: cancelling a batch mid-flight
// must stop the dispatcher — queued sources are reported as cancelled
// ("batch" phase) without ever running, while the in-flight sources
// stop cooperatively with their own phase attribution. Every input
// still gets exactly one result.
func TestAnalyzeAllContextStopsScheduling(t *testing.T) {
	const n = 40
	sources := make([]string, n)
	for i := range sources {
		sources[i] = cancelSrc
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, n)
	e := New(Config{
		Passes: Frontend(),
		Jobs:   2,
		Limits: guard.Limits{Inject: func(phase string) {
			if phase == "sccp" {
				started <- struct{}{}
				<-ctx.Done() // hold both workers in-phase until the test cancels
			}
		}},
	})
	go func() {
		<-started
		<-started // both workers are inside sccp; the dispatcher is blocked
		cancel()
	}()
	items := e.AnalyzeAllContext(ctx, sources)
	if len(items) != n {
		t.Fatalf("want %d items, got %d", n, len(items))
	}
	batchCancelled := 0
	for i, it := range items {
		if it.Err == nil {
			t.Fatalf("item %d: cancelled batch must not complete analyses", i)
		}
		var ee *Error
		if !errors.As(it.Err, &ee) {
			t.Fatalf("item %d: want *Error, got %T", i, it.Err)
		}
		if !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("item %d: want context.Canceled cause, got %v", i, it.Err)
		}
		switch ee.Phase {
		case "batch":
			batchCancelled++
		default:
			// An in-flight source, cancelled at its current phase
			// boundary — usually "sccp", where the inject hook held it,
			// but a worker that dequeues one more source after
			// cancellation stops at its first boundary ("parse").
		}
	}
	// Two workers were in flight; everything else must have been shed by
	// the dispatcher without running.
	if batchCancelled < n-3 {
		t.Fatalf("want >= %d batch-cancelled items, got %d", n-3, batchCancelled)
	}
}

// TestOptimizeAllContextCancelled: the optimize batch path shares the
// dispatcher, so a pre-cancelled context sheds every source.
func TestOptimizeAllContextCancelled(t *testing.T) {
	e := New(Config{Passes: Frontend(), Jobs: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := e.OptimizeAllContext(ctx, []string{cancelSrc, cancelSrc, cancelSrc})
	if len(items) != 3 {
		t.Fatalf("want 3 items, got %d", len(items))
	}
	for i, it := range items {
		if it.Err == nil || !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("item %d: want cancellation error, got %v", i, it.Err)
		}
	}
}

// TestOptimizeContextCancelled: cancellation threads through the
// transform pipeline's boundary checks too.
func TestOptimizeContextCancelled(t *testing.T) {
	e := New(Config{Passes: Frontend()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.OptimizeContext(ctx, cancelSrc); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation error, got %v", err)
	}
}
