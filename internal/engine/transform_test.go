// Transform-layer tests: clone-on-transform immutability, fixed-point
// iteration, per-tier re-analysis, panic containment under the
// "xform.<name>" phase, and the translation-validation backstop.
package engine_test

import (
	"errors"
	"strings"
	"testing"

	"beyondiv/internal/ast"
	"beyondiv/internal/engine"
	"beyondiv/internal/ir"
)

// optEngine builds an engine with the frontend and the given transforms.
func optEngine(cfg engine.Config, xforms ...engine.TransformPass) *engine.Engine {
	cfg.Passes = engine.Frontend()
	cfg.Transforms = xforms
	return engine.New(cfg)
}

// noiseConst is a harmless TierSSA rewrite: it plants one dead sentinel
// constant in the entry block unless one is already there, so it
// quiesces after a single rewrite. Dead and unnamed, the constant is
// invisible to the interpreter, so validation must pass. The decision
// reads only the working state — no closure state — so one pass value
// is safe across concurrent OptimizeAll workers.
func noiseConst() engine.TransformPass {
	const sentinel = 123456789
	return engine.TransformPass{Name: "noise", Tier: engine.TierSSA,
		Run: func(st *engine.State) (int, error) {
			entry := st.SSA.Func.Entry
			for _, v := range entry.Values {
				if v.Op == ir.OpConst && v.Const == sentinel {
					return 0, nil
				}
			}
			v := st.SSA.Func.NewValue(entry, ir.OpConst)
			v.Const = sentinel
			return 1, nil
		}}
}

func TestOptimizeNoTransforms(t *testing.T) {
	e := optEngine(engine.Config{})
	res, err := e.Optimize(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != res.Original {
		t.Error("empty pipeline should alias the analyzed state")
	}
	if res.Rounds != 0 || res.Rewrites != 0 || len(res.Stats) != 0 {
		t.Errorf("empty pipeline reported work: %+v", res)
	}
}

// TestOptimizeCloneOnTransform is the cache-mutation hazard regression
// at the engine layer: Analyze first so Optimize hits the cache, run a
// mutating pipeline, and check the cached state — pointer-identical on
// the second Analyze — is byte-identical to what it was before.
func TestOptimizeCloneOnTransform(t *testing.T) {
	e := optEngine(engine.Config{CacheEntries: 4}, noiseConst())
	cached, err := e.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	before := cached.SSA.Func.String()

	res, err := e.Optimize(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Original != cached {
		t.Fatal("Optimize did not analyze through the cache")
	}
	if res.State == cached || res.State.SSA == cached.SSA || res.State.SSA.Func == cached.SSA.Func {
		t.Fatal("transformed state shares IR with the cached analysis")
	}
	if got := cached.SSA.Func.String(); got != before {
		t.Fatalf("optimizing a cache hit mutated the cached program:\n--- before\n%s--- after\n%s", before, got)
	}
	again, err := e.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Fatal("cache entry evicted or replaced by Optimize")
	}
}

func TestOptimizeFixedPoint(t *testing.T) {
	e := optEngine(engine.Config{}, noiseConst())
	res, err := e.Optimize(src)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 rewrites, round 2 observes quiescence and stops.
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
	if res.Rewrites != 1 || len(res.Stats) != 1 {
		t.Fatalf("stats = %+v, want one single-rewrite entry", res.Stats)
	}
	if s := res.Stats[0]; s.Name != "noise" || s.Round != 1 || s.Rewrites != 1 {
		t.Errorf("stat = %+v", s)
	}
	if res.Validations != 1 {
		t.Errorf("validations = %d, want 1", res.Validations)
	}
}

func TestOptimizeMaxRoundsCap(t *testing.T) {
	// A pass that never quiesces must be stopped by the round cap.
	restless := engine.TransformPass{Name: "restless", Tier: engine.TierSSA,
		Run: func(st *engine.State) (int, error) {
			st.SSA.Func.NewValue(st.SSA.Func.Entry, ir.OpConst)
			return 1, nil
		}}
	e := optEngine(engine.Config{MaxRounds: 3}, restless)
	res, err := e.Optimize(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || len(res.Stats) != 3 {
		t.Errorf("rounds = %d, stats = %+v; want the cap of 3", res.Rounds, res.Stats)
	}
}

// TestOptimizeASTTier: an AST rewrite runs on a private clone of the
// file and the whole frontend is rebuilt on it, so the transformed SSA
// carries the new statement while the original file and SSA stay
// untouched.
func TestOptimizeASTTier(t *testing.T) {
	addStmt := func() engine.TransformPass {
		fired := false
		return engine.TransformPass{Name: "addstmt", Tier: engine.TierAST,
			Run: func(st *engine.State) (int, error) {
				if fired {
					return 0, nil
				}
				fired = true
				st.File.Stmts = append(st.File.Stmts, &ast.Assign{
					LHS: &ast.Ident{Name: "zz"},
					RHS: &ast.Num{Value: 7},
				})
				return 1, nil
			}}
	}
	e := optEngine(engine.Config{}, addStmt())
	orig, err := e.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	fileBefore := orig.File.String()

	res, err := e.Optimize(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.File == res.Original.File || res.State.SSA == res.Original.SSA {
		t.Fatal("AST rewrite shares File/SSA with the original")
	}
	if !strings.Contains(res.State.File.String(), "zz = 7") {
		t.Errorf("rewritten file lost the new statement:\n%s", res.State.File)
	}
	if !strings.Contains(res.State.SSA.Func.String(), "zz") {
		t.Error("frontend not rebuilt on the rewritten AST: no zz in SSA")
	}
	if got := res.Original.File.String(); got != fileBefore {
		t.Fatalf("AST rewrite mutated the original file:\n%s", got)
	}
}

func TestOptimizePanicContained(t *testing.T) {
	boom := engine.TransformPass{Name: "boom", Tier: engine.TierSSA,
		Run: func(st *engine.State) (int, error) { panic("kaboom") }}
	_, err := optEngine(engine.Config{}, boom).Optimize(src)
	var ee *engine.Error
	if !errors.As(err, &ee) {
		t.Fatalf("panic not contained as *engine.Error: %v", err)
	}
	if ee.Phase != "xform.boom" || ee.Stack == nil {
		t.Errorf("contained fault misattributed: phase=%q stack=%v", ee.Phase, ee.Stack != nil)
	}
}

func TestOptimizeTransformError(t *testing.T) {
	bad := engine.TransformPass{Name: "bad", Tier: engine.TierSSA,
		Run: func(st *engine.State) (int, error) { return 0, errors.New("no luck") }}
	_, err := optEngine(engine.Config{}, bad).Optimize(src)
	var ee *engine.Error
	if !errors.As(err, &ee) || ee.Phase != "xform.bad" {
		t.Fatalf("transform error not phase-attributed: %v", err)
	}
	if ee != nil && ee.Stack != nil {
		t.Error("plain error should not carry a panic stack")
	}
}

// TestOptimizeValidationCatchesBadRewrite: a pass that changes program
// behaviour — rewriting the constant that initializes j — must be
// rejected by translation validation, attributed to the pass.
func TestOptimizeValidationCatchesBadRewrite(t *testing.T) {
	evil := engine.TransformPass{Name: "evil", Tier: engine.TierSSA,
		Run: func(st *engine.State) (int, error) {
			for _, b := range st.SSA.Func.Blocks {
				for _, v := range b.Values {
					if v.Op == ir.OpConst && v.Const == 0 {
						v.Const = 7
						return 1, nil
					}
				}
			}
			return 0, nil
		}}
	_, err := optEngine(engine.Config{}, evil).Optimize(src)
	if err == nil {
		t.Fatal("behaviour-changing rewrite slipped past validation")
	}
	var ee *engine.Error
	if !errors.As(err, &ee) || ee.Phase != "xform.evil.validate" {
		t.Fatalf("validation failure misattributed: %v", err)
	}

	// With validation off the same pipeline goes through — SkipValidation
	// really is the only gate.
	res, err := optEngine(engine.Config{SkipValidation: true}, evil).Optimize(src)
	if err != nil {
		t.Fatalf("SkipValidation did not bypass validation: %v", err)
	}
	if res.Validations != 0 {
		t.Errorf("validations = %d with validation off", res.Validations)
	}
}

func TestOptimizeAllBatch(t *testing.T) {
	sources := []string{src, "j = )broken(", src, "k = n * 3"}
	e := optEngine(engine.Config{Jobs: 2, CacheEntries: 8}, noiseConst())
	items := e.OptimizeAll(sources)
	if len(items) != len(sources) {
		t.Fatalf("got %d items for %d sources", len(items), len(sources))
	}
	for i, it := range items {
		if it.Index != i || it.Source != sources[i] {
			t.Errorf("item %d out of order: %+v", i, it)
		}
	}
	if items[1].Err == nil {
		t.Error("syntax error not isolated to its item")
	}
	for _, i := range []int{0, 2, 3} {
		if items[i].Err != nil {
			t.Errorf("item %d failed: %v", i, items[i].Err)
		}
	}
}
