package engine_test

import (
	"strings"
	"testing"

	"beyondiv/internal/engine"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
)

// TestMetricsFedByAnalyze: a configured registry receives per-phase
// latency histograms and cache counters; the flight recorder captures
// each run with its span tree.
func TestMetricsFedByAnalyze(t *testing.T) {
	reg := metrics.NewRegistry()
	fl := metrics.NewFlight(16, 4)
	rec := obs.New()
	e := frontend(engine.Config{Obs: rec, Metrics: reg, Flight: fl, CacheEntries: 8})

	if _, err := e.Analyze(src); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(src); err != nil { // cache hit
		t.Fatal(err)
	}

	for _, phase := range []string{"parse", "cfgbuild", "ssa", "loops", "sccp", "analyze"} {
		h := reg.Hist("phase." + phase)
		if h.Count() != 1 {
			t.Errorf("phase.%s histogram count = %d, want 1", phase, h.Count())
		}
		if p99 := h.Percentile(0.99); p99 <= 0 {
			t.Errorf("phase.%s p99 = %d, want > 0", phase, p99)
		}
	}
	if reg.Counter("engine.cache.miss") != 1 || reg.Counter("engine.cache.hit") != 1 {
		t.Errorf("cache counters miss=%d hit=%d, want 1/1",
			reg.Counter("engine.cache.miss"), reg.Counter("engine.cache.hit"))
	}
	// With a recorder active, alloc histograms ride along.
	if reg.Hist("phase.parse.allocs").Count() == 0 {
		t.Error("phase.parse.allocs histogram empty despite active recorder")
	}

	recent, failed := fl.Snapshot()
	if len(recent) != 2 || len(failed) != 0 {
		t.Fatalf("flight = %d recent / %d failed, want 2/0", len(recent), len(failed))
	}
	if recent[0].Cached || !recent[1].Cached {
		t.Errorf("cached flags = %v/%v, want false/true", recent[0].Cached, recent[1].Cached)
	}
	if len(recent[0].Spans) == 0 {
		t.Error("uncached run has no condensed spans")
	}
}

// TestMetricsWithoutRecorder: metrics work with tracing off — latency
// histograms still fill, alloc histograms (which need the recorder's
// memstats reads) stay empty.
func TestMetricsWithoutRecorder(t *testing.T) {
	reg := metrics.NewRegistry()
	e := frontend(engine.Config{Metrics: reg})
	if _, err := e.Analyze(src); err != nil {
		t.Fatal(err)
	}
	if reg.Hist("phase.ssa").Count() != 1 {
		t.Error("phase.ssa histogram empty without recorder")
	}
	if reg.Hist("phase.ssa.allocs").Count() != 0 {
		t.Error("alloc histogram filled without a recorder to measure")
	}
}

// TestMetricsFaultAttribution: a contained panic bumps
// engine.fault.<phase> and lands in the flight recorder's failed ring
// with Fault set and a stack; a guard-limit trip bumps
// guard.trip.<phase>.<resource>.
func TestMetricsFaultAttribution(t *testing.T) {
	reg := metrics.NewRegistry()
	fl := metrics.NewFlight(8, 4)
	e := frontend(engine.Config{
		Metrics: reg, Flight: fl,
		Limits: guard.Limits{Inject: guard.PanicIn("sccp")},
	})
	if _, err := e.Analyze(src); err == nil {
		t.Fatal("injected fault did not fail the run")
	}
	if reg.Counter("engine.fault.sccp") != 1 || reg.Counter("engine.err") != 1 {
		t.Errorf("fault counters = %d/%d, want 1/1",
			reg.Counter("engine.fault.sccp"), reg.Counter("engine.err"))
	}
	_, failed := fl.Snapshot()
	if len(failed) != 1 {
		t.Fatalf("failed ring has %d runs, want 1", len(failed))
	}
	f := failed[0]
	if !f.Fault || f.Phase != "sccp" || f.Stack == "" || !strings.Contains(f.Err, "injected fault") {
		t.Errorf("failed run = %+v", f)
	}

	lim := frontend(engine.Config{
		Metrics: reg,
		Limits:  guard.Limits{MaxPhaseSteps: 5},
	})
	if _, err := lim.Analyze(src); err == nil {
		t.Fatal("step ceiling did not fail the run")
	}
	found := false
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, "guard.trip.") && v > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no guard.trip.* counter recorded: %v", reg.Snapshot().Counters)
	}
}

// TestMetricsBatchAndPool: AnalyzeAll publishes fan-out counters and
// the shared-pool gauges, and concurrent workers feed one registry
// without losing observations.
func TestMetricsBatchAndPool(t *testing.T) {
	reg := metrics.NewRegistry()
	e := frontend(engine.Config{
		Obs: obs.New(), Metrics: reg, Jobs: 4, BatchSteps: 1 << 20,
	})
	sources := make([]string, 8)
	for i := range sources {
		sources[i] = src
	}
	for _, it := range e.AnalyzeAll(sources) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
	}
	if reg.Counter("engine.batch") != 1 || reg.Counter("engine.batch.sources") != 8 {
		t.Errorf("batch counters = %d/%d",
			reg.Counter("engine.batch"), reg.Counter("engine.batch.sources"))
	}
	if reg.Gauge("engine.batch.workers") != 4 {
		t.Errorf("workers gauge = %d, want 4", reg.Gauge("engine.batch.workers"))
	}
	if reg.Hist("phase.analyze").Count() != 8 {
		t.Errorf("phase.analyze count = %d, want 8", reg.Hist("phase.analyze").Count())
	}
	limit, remaining := reg.Gauge("guard.pool.limit"), reg.Gauge("guard.pool.remaining")
	if limit != 1<<20 || remaining <= 0 || remaining >= limit {
		t.Errorf("pool gauges limit=%d remaining=%d", limit, remaining)
	}
}

// TestMetricsOptimize: transform rounds, rewrites and validation
// outcomes reach the registry.
func TestMetricsOptimize(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := engine.Config{
		Passes:  engine.Frontend(),
		Metrics: reg,
		Transforms: []engine.TransformPass{{
			Name: "noop", Tier: engine.TierSSA,
			Run: func(st *engine.State) (int, error) { return 0, nil },
		}},
	}
	if _, err := engine.New(cfg).Optimize(src); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("engine.opt.rounds") != 1 {
		t.Errorf("opt.rounds = %d, want 1", reg.Counter("engine.opt.rounds"))
	}
	if reg.Counter("xform.noop.rewrites") != 0 {
		t.Errorf("noop rewrites = %d", reg.Counter("xform.noop.rewrites"))
	}
	if reg.Hist("phase.xform.noop").Count() != 1 {
		t.Errorf("xform latency count = %d, want 1", reg.Hist("phase.xform.noop").Count())
	}
	if reg.Hist("phase.optimize").Count() != 1 {
		t.Errorf("optimize latency count = %d, want 1", reg.Hist("phase.optimize").Count())
	}
}
