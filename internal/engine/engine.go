// Package engine is the analysis pipeline's execution layer: an
// explicit pass architecture replacing the hard-coded call chains that
// used to live (twice, with different safety properties) in the
// beyondiv facade and iv.AnalyzeProgramWith.
//
// A Pass is one named phase producing a typed artifact into the shared
// State; an Engine executes a pass list under the guard limits, panic
// containment and telemetry threading that every entry point must
// share. The package owns exactly the stages that do not depend on the
// classifier — Frontend() is source → AST → CFG → SSA+dominators →
// loop forest → SCCP lattice — while the classification and dependence
// passes are contributed by their owning packages (iv.ClassifyPass,
// depend.Pass), which import engine; engine imports neither, so
// iv.AnalyzeProgramWith can itself run on the engine without an import
// cycle. Artifacts of contributed passes live in a keyed slot on State
// with typed accessors next to the pass definitions (iv.AnalysisOf,
// depend.ResultOf).
//
// On top of single-shot Analyze the engine adds what the old call
// chains could not express:
//
//   - AnalyzeAll: a bounded worker pool fanning a batch of sources out
//     concurrently, with per-worker forked obs recorders merged back
//     deterministically and an optional shared guard step pool so the
//     batch as a whole has a work ceiling;
//   - a content-addressed result cache (cache.go): an LRU keyed by
//     source hash + options fingerprint, so repeated analysis of hot
//     sources is a hash and a map hit.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/codec"
	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/scratch"
	"beyondiv/internal/ssa"
	"beyondiv/internal/store"
	"beyondiv/internal/token"
	"beyondiv/internal/validate"
)

// State is the artifact store one analysis run threads through its
// passes: each pass reads the slots of its predecessors and fills its
// own. The frontend slots are typed; passes contributed from outside
// the engine (classification, dependence) store under a string key via
// Put and are read back through typed accessors in their own packages.
// A State is immutable once Analyze returns it, so cached states are
// shared freely across goroutines.
type State struct {
	Source string
	File   *ast.File
	CFG    *cfgbuild.Result
	SSA    *ssa.Info
	Forest *loops.Forest
	Consts *sccp.Result

	rec     *obs.Recorder
	lim     guard.Limits
	extra   map[string]any
	scratch *scratch.Arena
	art     *codec.Artifact
	par     int
	reg     *metrics.Registry
}

// Decoded returns the serialized artifact this state was reconstituted
// from, when the run was answered by the disk store instead of the
// pipeline. Such states carry the rendered results (reports, provenance)
// but no live object graphs: SSA, Forest, Consts and the contributed
// pass artifacts are nil. Fresh runs return nil here.
func (s *State) Decoded() *codec.Artifact { return s.art }

// Obs returns the recorder of the run this state belongs to; passes
// thread it into the stages they call. Nil when telemetry is off.
func (s *State) Obs() *obs.Recorder { return s.rec }

// Lim returns the run's normalized guard limits.
func (s *State) Lim() guard.Limits { return s.lim }

// Scratch returns the run's scratch arena, valid only while passes are
// executing: the engine detaches it before the state is cached or
// returned, so passes must never stash it in an artifact. Nil on entry
// paths that run without an engine-owned arena.
func (s *State) Scratch() *scratch.Arena { return s.scratch }

// Par returns the run's intra-run fan-out width: how many workers a
// pass may spread its independent work units over. 1 (or 0, on entry
// paths that never resolved it) means sequential. The engine resolves
// Config.Parallel once per run — dividing it down in batch mode so
// batch workers times intra-run workers never oversubscribes the
// machine.
func (s *State) Par() int { return s.par }

// Metrics returns the engine's process-lifetime registry (nil when no
// metrics backend is configured); parallel passes publish their
// engine.par.* fan-out counters into it.
func (s *State) Metrics() *metrics.Registry { return s.reg }

// Put stores a contributed pass's artifact under key.
func (s *State) Put(key string, artifact any) { s.extra[key] = artifact }

// Artifact returns the artifact stored under key, or nil.
func (s *State) Artifact(key string) any { return s.extra[key] }

// Pass is one named pipeline phase. Run reads its inputs from the
// state and stores its artifact back; an error return or a panic —
// a guard ceiling hit, an injected fault, or a genuine bug — is
// contained by the engine and surfaces as a *Error naming the pass.
type Pass struct {
	// Name is the phase name used for error attribution, telemetry
	// spans and the guard.Inject fault hook.
	Name string
	// OwnInject marks a pass that fires guard inject hooks itself at a
	// finer grain (the parse pass fires "scan" then "parse" inside
	// parse.FileGuarded); the engine then does not fire Name on entry.
	OwnInject bool
	// Run executes the pass.
	Run func(st *State) error
}

// Frontend returns the classifier-independent pipeline prefix: parse →
// cfgbuild → ssa (verified) → loops (labels attached) → sccp. Every
// entry point composes its pipeline by appending to this one
// definition.
func Frontend() []Pass {
	return []Pass{
		{Name: "parse", OwnInject: true, Run: func(st *State) error {
			file, err := parse.FileScratch(st.Source, st.rec, st.lim, st.scratch)
			if err != nil {
				return err
			}
			st.File = file
			return nil
		}},
		{Name: "cfgbuild", Run: func(st *State) error {
			st.CFG = cfgbuild.BuildGuarded(st.File, st.rec, st.lim)
			return nil
		}},
		{Name: "ssa", Run: func(st *State) error {
			st.SSA = ssa.BuildScratch(st.CFG.Func, st.rec, st.lim, st.scratch)
			if errs := ssa.Verify(st.SSA); len(errs) != 0 {
				// Internal invariant; surface every violation.
				return errors.Join(errs...)
			}
			return nil
		}},
		{Name: "loops", Run: func(st *State) error {
			st.Forest = loops.AnalyzeWithObs(st.CFG.Func, st.SSA.Dom, st.rec)
			labels := map[*ir.Block]string{}
			for _, li := range st.CFG.Loops {
				labels[li.Header] = li.Label
			}
			st.Forest.AttachLabels(labels)
			return nil
		}},
		{Name: "sccp", Run: func(st *State) error {
			st.Consts = sccp.RunScratch(st.SSA, st.rec, st.lim, st.scratch)
			return nil
		}},
	}
}

// Config assembles an Engine.
type Config struct {
	// Passes is the pipeline, in execution order; typically
	// engine.Frontend() plus the contributed analysis passes.
	Passes []Pass
	// Obs, when non-nil, records phase spans, counters and provenance
	// for every run (batch workers record into forks merged back).
	Obs *obs.Recorder
	// Metrics, when non-nil, receives the process-lifetime aggregates:
	// per-phase latency and allocation histograms, cache
	// hit/miss/evict, batch fan-out, guard-limit trips, contained
	// faults, and transform/validation outcomes. Unlike Obs — one
	// run's span tree — a registry accumulates across every run of
	// every engine that shares it, and is what debugserv serves.
	Metrics *metrics.Registry
	// Flight, when non-nil, is the flight recorder: each Analyze or
	// Optimize outcome is captured as a condensed metrics.Run, with
	// runs ending in a contained fault kept in a dedicated ring so
	// healthy traffic cannot evict them.
	Flight *metrics.Flight
	// Limits bounds each source's analysis; normalized once at New, so
	// zero fields take guard.Default ceilings on every entry path.
	Limits guard.Limits
	// Jobs is AnalyzeAll's worker count; <= 0 means one worker per
	// available CPU, and the pool never exceeds the batch size.
	Jobs int
	// Parallel is the intra-run fan-out width: how many workers one
	// Analyze may spread its per-loop classification and per-pair
	// dependence tests over. 0 means one worker per available CPU, 1
	// is the sequential path; either way results are bit-identical.
	// In batch mode an auto (0) width is divided by the batch worker
	// count so the two tiers multiply to at most GOMAXPROCS; an
	// explicit width is honored as given. Parallel deliberately stays
	// out of the cache fingerprint.
	Parallel int
	// Cache, when non-nil, memoizes successful runs content-addressed
	// by source hash + fingerprint. A cache may be shared by several
	// engines; differing fingerprints keep their entries apart.
	Cache *Cache
	// CacheEntries, when positive and Cache is nil, gives the engine a
	// private LRU of that capacity.
	CacheEntries int
	// Fingerprint distinguishes option sets that change analysis
	// results (ablation switches, dependence options); it is mixed
	// into every cache key together with the limits and pass names.
	Fingerprint string
	// BatchSteps, when positive, is a shared guard budget for one
	// AnalyzeAll call: every phase step of every source draws from
	// this pool on top of the per-phase budgets.
	BatchSteps int64
	// Store, when non-nil, is the persistent second tier under the
	// in-memory cache: a disk-backed content-addressed store shared
	// across processes. Lookups try an alias record keyed by the exact
	// source first (zero passes on a hit), then — after parsing — the
	// structural entry keyed by the canonical AST hash, so whitespace
	// and comment edits and α-renamed duplicates still hit. Every entry
	// is decoded through the codec's checksum and version gate; a bad
	// blob is deleted and the source re-analyzed.
	Store *store.Store
	// BuildArtifact serializes a fresh successful state into a codec
	// blob for the disk store. The engine cannot build it itself — the
	// artifact includes texts rendered by the classifier and dependence
	// packages, which import engine — so the facade supplies the hook.
	// A nil hook (or an error return) makes the store read-only.
	BuildArtifact func(*State) ([]byte, error)
	// StoreWriteOnly disables disk *reads* while keeping writes: set by
	// callers whose consumers need the live object graphs (SSA dumps,
	// DOT output, the optimizer) and cannot accept a decoded state.
	// Their fresh runs still warm the store for everyone else.
	StoreWriteOnly bool
	// Transforms is the mutating pipeline Optimize runs after analysis,
	// in execution order (AST-tier passes should precede SSA-tier ones;
	// see Tier). Empty makes Optimize equivalent to Analyze. Transform
	// results are never cached, and pass names deliberately stay out of
	// the cache fingerprint, so an Optimize engine shares analysis cache
	// entries with a plain Analyze engine.
	Transforms []TransformPass
	// MaxRounds caps Optimize's fixed-point iteration over the transform
	// pipeline; <= 0 means 10. Convergence normally ends iteration well
	// before the cap (a round in which no pass rewrites anything).
	MaxRounds int
	// SkipValidation disables the per-pass interpreter translation
	// validation (ssa.Verify still runs after every rebuild). Meant for
	// benchmarks; correctness-sensitive callers should leave it off.
	SkipValidation bool
	// Validate tunes the translation-validation grid; the zero value
	// uses the validate package defaults.
	Validate validate.Options
}

// Engine executes one configured pipeline over any number of sources.
// Engines are safe for concurrent use.
type Engine struct {
	cfg   Config
	cache *Cache
	fp    string // full cache-key prefix: caller fingerprint + limits + passes
	ins   *instr // nil unless Metrics or Flight is configured
	par   int    // resolved Config.Parallel: 0 mapped to GOMAXPROCS

	// arenas recycles scratch arenas across runs and workers: each
	// analyze call checks one out for the duration of its pass list
	// (so a batch worker reuses a single arena across its whole source
	// stream), and parallel passes draw extra worker arenas from the
	// same pool via the run arena's Owner backpointer.
	arenas *scratch.Pool
}

// New builds an engine. The configured limits are normalized here —
// engine entry points never run unguarded.
func New(cfg Config) *Engine {
	cfg.Limits = cfg.Limits.Normalize()
	e := &Engine{cfg: cfg, cache: cfg.Cache, ins: newInstr(&cfg), arenas: scratch.NewPool()}
	e.par = cfg.Parallel
	if e.par <= 0 {
		e.par = runtime.GOMAXPROCS(0)
	}
	if e.cache == nil && cfg.CacheEntries > 0 {
		e.cache = NewCache(cfg.CacheEntries)
	}
	l := cfg.Limits
	// Every variable-length component is length-prefixed so no crafted
	// fingerprint or pass name can make two distinct configurations
	// serialize to the same key prefix (e.g. a fingerprint ending in
	// "|limits:..." used to be indistinguishable from the limits field).
	e.fp = fmt.Sprintf("%d:%s|limits:%d,%d,%d,%d,%d|passes:%d", len(cfg.Fingerprint), cfg.Fingerprint,
		l.MaxSourceBytes, l.MaxNestDepth, l.MaxSSAValues, l.MaxLoopDepth, l.MaxPhaseSteps, len(cfg.Passes))
	for _, p := range cfg.Passes {
		e.fp += fmt.Sprintf("|%d:%s", len(p.Name), p.Name)
	}
	return e
}

// Analyze runs the pipeline on one source. On hostile or malformed
// input it never panics and never hangs: every pass runs under the
// engine's limits with panic containment, and any failure — syntax
// error, resource-ceiling hit, or contained internal fault — returns
// as a *Error identifying the pass.
func (e *Engine) Analyze(source string) (*State, error) {
	return e.analyze(source, e.cfg.Obs, e.cfg.Limits, e.par, false)
}

// AnalyzeContext is Analyze under a caller's context: when ctx is
// cancelled or its deadline expires, the run stops cooperatively —
// between passes at the pass boundary, and inside the step-metered
// phases via the guard budget's amortized poll — and returns a *Error
// wrapping a *guard.CancelError that names the phase the run was
// cancelled in. A nil or Background context behaves like Analyze.
func (e *Engine) AnalyzeContext(ctx context.Context, source string) (*State, error) {
	lim := e.cfg.Limits
	lim.Ctx = ctx
	return e.analyze(source, e.cfg.Obs, lim, e.par, false)
}

// analyze is Analyze against an explicit recorder and limits (batch
// workers substitute their forked recorder, the shared-pool limits,
// and a divided-down intra-run width par). needLive marks callers that
// go on to mutate or inspect the object graphs (the optimizer): they
// must not be answered with a decoded disk artifact or a decoded
// in-memory entry.
func (e *Engine) analyze(source string, rec *obs.Recorder, lim guard.Limits, par int, needLive bool) (*State, error) {
	span := rec.Phase("analyze")
	defer span.End()
	var start time.Time
	if e.ins != nil {
		start = time.Now()
	}

	var key cacheKey
	if e.cache != nil {
		key = e.key(source)
		if st := e.cache.get(key); st != nil && !(needLive && st.art != nil) {
			rec.Count("engine.cache.hit")
			if e.ins != nil {
				e.ins.count("engine.cache.hit")
				e.ins.record(source, start, time.Since(start), span, nil, true)
			}
			return st, nil
		}
		rec.Count("engine.cache.miss")
		if e.ins != nil {
			e.ins.count("engine.cache.miss")
		}
	}

	// Disk tier, fast path: an alias record for this exact source and
	// fingerprint resolves straight to an artifact — zero passes run.
	diskRead := e.cfg.Store != nil && !e.cfg.StoreWriteOnly && !needLive
	if diskRead {
		if art := e.aliasGet(source, rec); art != nil {
			st := &State{Source: source, rec: rec, lim: lim, extra: map[string]any{}, art: art}
			if e.cache != nil {
				e.cache.put(key, st)
			}
			if e.ins != nil {
				e.ins.record(source, start, time.Since(start), span, nil, true)
			}
			return st, nil
		}
	}

	ar := e.arenas.Get()
	st := &State{Source: source, rec: rec, lim: lim, extra: map[string]any{}, scratch: ar, par: par}
	if e.ins != nil {
		st.reg = e.ins.reg
	}
	// Chain cumulative time.Since(start) readings across pass
	// boundaries: each pass's duration is the delta to the previous
	// boundary. Since only reads the monotonic clock — measurably
	// cheaper than time.Now's wall+monotonic pair — so the metrics
	// tier costs one monotonic read per pass.
	var mark time.Duration
	if e.ins != nil {
		mark = time.Since(start)
	}
	var structSum [32]byte
	var structNames []string
	haveStruct := false
	for i, p := range e.cfg.Passes {
		err := runPass(lim, p, st)
		if err == nil {
			// Pass-boundary cancellation check: phases that sleep or do
			// unmetered work (no budget steps) still stop at the next
			// boundary, attributed to the pass that was running when the
			// context died. The in-phase poll lives in guard.Budget.
			if ce := lim.Cancelled(p.Name); ce != nil {
				err = &Error{Phase: ce.Phase, Err: ce}
			}
		}
		if e.ins != nil {
			d := time.Since(start)
			e.ins.pass(p.Name, d-mark)
			mark = d
		}
		if err != nil {
			// Scratch tables self-reset on acquisition, so the arena is
			// reusable even after a contained mid-pass fault.
			st.scratch = nil
			e.arenas.Put(ar)
			if e.ins != nil {
				e.ins.fail(err)
				// mark was read just after the failing pass — no extra
				// clock read needed.
				e.ins.record(source, start, mark, span, err, false)
			}
			return nil, err
		}
		// Disk tier, structural path: once the source is parsed its
		// canonical AST hash is known; an entry written for a
		// formatting- or α-variant of this program answers the run at
		// the cost of the parse alone. The hash is computed whenever a
		// store is configured — the write path needs it too.
		if i == 0 && p.Name == "parse" && e.cfg.Store != nil && st.File != nil {
			structSum, structNames = codec.StructuralHash(st.File)
			haveStruct = true
			if diskRead {
				if art := e.entryGet(structSum, structNames, rec, "engine.store.hit.struct"); art != nil {
					// Leave an alias so this exact source skips even the
					// parse from now on.
					e.cfg.Store.Put(e.aliasKey(source), codec.EncodeAlias(structSum, structNames))
					st.art = art
					st.scratch = nil
					e.arenas.Put(ar)
					if e.cache != nil {
						e.cache.put(key, st)
					}
					if e.ins != nil {
						e.ins.record(source, start, mark, span, nil, true)
					}
					return st, nil
				}
				rec.Count("engine.store.miss")
				if e.ins != nil {
					e.ins.count("engine.store.miss")
				}
			}
		}
	}
	// Detach before the state escapes: cached states are shared across
	// goroutines and must not alias a recycled arena.
	st.scratch = nil
	e.arenas.Put(ar)
	if haveStruct && e.cfg.BuildArtifact != nil {
		e.diskWrite(st, structSum, structNames, rec)
	}
	if e.cache != nil {
		if evicted := e.cache.put(key, st); evicted > 0 {
			rec.Add("engine.cache.evict", evicted)
			if e.ins != nil {
				e.ins.reg.Add("engine.cache.evict", evicted)
			}
		}
	}
	if e.ins != nil {
		// mark, read at the last pass boundary, doubles as the run's
		// duration; the cache put and disk write between there and here
		// are noise.
		e.ins.pass("analyze", mark)
		e.ins.allocs(span)
		e.ins.record(source, start, mark, span, nil, false)
	}
	return st, nil
}

// runPass runs one pass with fault containment: any panic — a guard
// ceiling hit, an injected test fault, or a genuine bug — is converted
// into a *Error instead of escaping the engine, and an error return is
// wrapped the same way. Telemetry spans opened inside the pass have
// deferred End calls, which run during panic unwinding, so a contained
// failure still leaves spans and counters recorded up to the fault.
func runPass(lim guard.Limits, p Pass, st *State) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = contained(p.Name, r)
		}
	}()
	if !p.OwnInject {
		lim.Inject.Fire(p.Name)
	}
	if ferr := p.Run(st); ferr != nil {
		return wrapError(p.Name, ferr)
	}
	return nil
}

// Error is the structured failure of one pipeline pass. Every error
// the engine returns is one of these: input diagnostics (scan/parse)
// carry a Pos, resource-ceiling hits wrap a *guard.LimitError, and
// contained panics — internal faults that would otherwise crash the
// caller — carry the panicking goroutine's Stack.
type Error struct {
	Phase string    // pipeline phase that failed: "scan", "parse", ..., "depend"
	Pos   token.Pos // source position, when the failure is an input diagnostic
	Err   error     // underlying cause
	Stack []byte    // stack trace of a contained panic; nil otherwise
}

// Error renders "phase: cause"; input diagnostics keep their
// "line:col: message" form inside the cause.
func (e *Error) Error() string { return fmt.Sprintf("%s: %v", e.Phase, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// contained converts a recovered panic value into a *Error. Typed
// guard payloads carry their own phase attribution (a limit hit deep
// in a shared helper may belong to an earlier-named phase than the one
// whose wrapper caught it).
func contained(phase string, p any) *Error {
	switch v := p.(type) {
	case *guard.LimitError:
		if v.Phase != "" {
			phase = v.Phase
		}
		return &Error{Phase: phase, Err: v}
	case *guard.CancelError:
		if v.Phase != "" {
			phase = v.Phase
		}
		return &Error{Phase: phase, Err: v}
	case *guard.Fault:
		if v.Phase != "" {
			phase = v.Phase
		}
		return &Error{Phase: phase, Err: v, Stack: debug.Stack()}
	case error:
		return &Error{Phase: phase, Err: v, Stack: debug.Stack()}
	default:
		return &Error{Phase: phase, Err: fmt.Errorf("panic: %v", v), Stack: debug.Stack()}
	}
}

// wrapError wraps a pass's error return, lifting structured details:
// the phase a *guard.LimitError names wins over the wrapper's label,
// and the first positioned diagnostic contributes Pos.
func wrapError(phase string, err error) *Error {
	var le *guard.LimitError
	if errors.As(err, &le) && le.Phase != "" {
		phase = le.Phase
	}
	var ce *guard.CancelError
	if errors.As(err, &ce) && ce.Phase != "" {
		phase = ce.Phase
	}
	e := &Error{Phase: phase, Err: err}
	var pe *token.PosError
	if errors.As(err, &pe) {
		e.Pos = pe.Pos
	}
	return e
}
