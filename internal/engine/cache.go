package engine

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// cacheKey content-addresses one analysis: the SHA-256 of the engine's
// fingerprint (caller options + limits + pass names) and the source
// text. Two engines sharing a Cache never collide unless both their
// options and their input agree — in which case sharing the result is
// exactly right.
type cacheKey [sha256.Size]byte

// key hashes one source under this engine's fingerprint.
func (e *Engine) key(source string) cacheKey {
	h := sha256.New()
	h.Write([]byte(e.fp))
	h.Write([]byte{0})
	h.Write([]byte(source))
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// Cache is a concurrency-safe LRU of successful analysis results,
// content-addressed by source hash + options fingerprint. Failed runs
// are never cached (a limit hit under one budget is not a fact about
// the source). States handed out on a hit are shared — they are
// immutable after analysis, so sharing is safe; callers that mutate
// artifacts (e.g. applying transformations to the SSA) should analyze
// without a cache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key cacheKey
	st  *State
}

// NewCache returns an LRU holding up to capacity results; capacity <= 0
// returns nil (no caching), which every method tolerates.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element, capacity),
		order:   list.New(),
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get returns the cached state for key, refreshing its recency, or nil.
func (c *Cache) get(key cacheKey) *State {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).st
}

// put inserts a result, evicting from the cold end past capacity, and
// reports how many entries were evicted.
func (c *Cache) put(key cacheKey, st *State) (evicted int64) {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.st.art != nil && st.art == nil {
			// A live result upgrades a decoded disk placeholder: callers
			// that need the object graphs (the optimizer) bypass decoded
			// entries, and without the swap they would re-run the
			// pipeline on every request for this source.
			ent.st = st
		}
		// Otherwise a concurrent worker won the race to analyze the same
		// source; keep the incumbent so later hits stay pointer-stable.
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, st: st})
	for len(c.entries) > c.cap {
		cold := c.order.Back()
		c.order.Remove(cold)
		delete(c.entries, cold.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}
