package engine

import (
	"errors"
	"time"

	"beyondiv/internal/guard"
	"beyondiv/internal/obs"
	"beyondiv/internal/obs/metrics"
)

// instr bundles the engine's process-lifetime observability backends:
// the metrics registry (per-phase latency and allocation histograms,
// cache/batch/guard/transform counters) and the flight recorder of
// recent runs. A nil *instr is the instrumentation-off value — every
// call site checks the pointer first, so a run without Config.Metrics
// or Config.Flight pays exactly the nil comparisons and keeps the
// hot-path allocation profile untouched.
//
// Where the per-run *obs.Recorder answers "what did this analysis
// do", instr answers "what has this process been doing": the same
// phases and counters, aggregated across every run and every worker.
type instr struct {
	reg *metrics.Registry
	fl  *metrics.Flight
	// phase and alloc map a phase name to its pre-created latency and
	// allocation histograms. Built once at engine construction from
	// the configured pass and transform names and never written
	// again, so the per-pass hot path is a lock-free read-only map
	// hit instead of a string concatenation plus a registry lookup
	// per observation.
	phase map[string]*metrics.Histogram
	alloc map[string]*metrics.Histogram
}

// newInstr returns nil unless at least one backend is configured.
// Both fields are individually nil-safe (the metrics package's types
// no-op on nil receivers), so a partial configuration needs no
// per-site guards.
func newInstr(cfg *Config) *instr {
	if cfg.Metrics == nil && cfg.Flight == nil {
		return nil
	}
	in := &instr{
		reg:   cfg.Metrics,
		fl:    cfg.Flight,
		phase: map[string]*metrics.Histogram{},
		alloc: map[string]*metrics.Histogram{},
	}
	if in.reg != nil {
		names := []string{"analyze", "optimize", "reanalyze", "validate"}
		for _, p := range cfg.Passes {
			names = append(names, p.Name)
		}
		for _, p := range cfg.Transforms {
			names = append(names, "xform."+p.Name)
		}
		for _, n := range names {
			in.phase[n] = in.reg.Hist("phase." + n)
			in.alloc[n] = in.reg.Hist("phase." + n + ".allocs")
		}
	}
	return in
}

// pass records one completed phase into its latency histogram,
// "phase.<name>" in nanoseconds. Failed passes record too — a phase
// that burned 50ms before hitting its ceiling belongs in the tail.
func (in *instr) pass(name string, d time.Duration) {
	if h, ok := in.phase[name]; ok {
		h.Observe(d.Nanoseconds())
		return
	}
	if in.reg == nil {
		return // flight-only: don't pay the concat for a nil registry
	}
	in.reg.ObserveDuration("phase."+name, d)
}

// count increments a registry counter.
func (in *instr) count(name string) {
	in.reg.Inc(name)
}

// allocs feeds the per-phase allocation histograms from a finished
// analyze span's children. The recorder already paid for the memstats
// reads, so this costs nothing extra on runs without telemetry (span
// is nil) and nothing per-pass on runs with it.
func (in *instr) allocs(span *obs.Span) {
	if span == nil || in.reg == nil {
		return
	}
	for _, c := range span.Children {
		if c.Allocs == 0 {
			continue
		}
		if h, ok := in.alloc[c.Name]; ok {
			h.Observe(int64(c.Allocs))
			continue
		}
		in.reg.Observe("phase."+c.Name+".allocs", int64(c.Allocs))
	}
}

// fail attributes one failed run to counters: every failure bumps
// engine.err, a resource-ceiling hit bumps
// guard.trip.<phase>.<resource>, and a contained panic bumps
// engine.fault.<phase>.
func (in *instr) fail(err error) {
	in.reg.Inc("engine.err")
	var ee *Error
	if !errors.As(err, &ee) {
		return
	}
	var le *guard.LimitError
	var ce *guard.CancelError
	switch {
	case errors.As(ee.Err, &le):
		in.reg.Inc("guard.trip." + metrics.Sanitize(ee.Phase) + "." + metrics.Sanitize(le.Resource))
	case errors.As(ee.Err, &ce):
		in.reg.Inc("engine.cancel." + metrics.Sanitize(ee.Phase))
	case ee.Stack != nil:
		in.reg.Inc("engine.fault." + metrics.Sanitize(ee.Phase))
	}
}

// record captures one run in the flight recorder: duration, a source
// preview, the condensed span tree when a recorder was active, and —
// for failures — the error, its phase attribution and (for contained
// panics) the stack.
func (in *instr) record(source string, start time.Time, dur time.Duration, span *obs.Span, err error, cached bool) {
	if in.fl == nil {
		return
	}
	run := metrics.Run{
		Start:  start,
		DurUS:  dur.Microseconds(),
		Source: source,
		Bytes:  len(source),
		Cached: cached,
	}
	if span != nil {
		run.Spans = metrics.Condense(span.Children, 4)
	}
	if err != nil {
		run.Err = err.Error()
		var ee *Error
		if errors.As(err, &ee) {
			run.Phase = ee.Phase
			if ee.Stack != nil {
				run.Fault = true
				run.Stack = string(ee.Stack)
			}
		}
	}
	in.fl.Record(run)
}
