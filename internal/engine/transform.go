// Transformation layer: mutating passes as first-class engine citizens.
//
// Analysis passes fill artifact slots; transform passes rewrite the
// program those artifacts describe. The engine keeps the two honest
// with clone-on-transform: Optimize never mutates the analyzed state it
// starts from (which may be cache-shared across goroutines) — the first
// mutating pass of each tier works on a private deep copy (ast.CloneFile
// for the AST, ssa.Info.Clone — dense-ID-preserving — for the SSA
// program), and every artifact consumed by later passes is recomputed on
// that copy. Each pass declares its tier, which is its invalidation
// contract: after an AST rewrite the engine rebuilds CFG, SSA and all
// analyses; after an SSA rewrite it refreshes dominators and reruns the
// loop, constant and contributed analysis passes. Rounds iterate to a
// fixed point so rewrites compose (a strength-reduced φ is re-classified
// as linear and can seed the next round's rewrites at an outer loop).
//
// Every mutating pass runs under the same regime as analysis passes —
// guard limits, panic containment, obs spans and counters — plus two
// checks analysis never needed: ssa.Verify after every rebuild, and
// translation validation (internal/validate) replaying original vs
// transformed program through the interpreter over a grid of inputs.
package engine

import (
	"context"
	"errors"
	"slices"
	"time"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/obs"
	"beyondiv/internal/scratch"
	"beyondiv/internal/ssa"
	"beyondiv/internal/validate"
)

// Tier says which program representation a TransformPass rewrites, and
// thereby what the engine must rebuild once it reports changes.
type Tier uint8

const (
	// TierAST passes rewrite st.File (normalization, peeling); the
	// engine rebuilds CFG, SSA and every analysis afterwards. List AST
	// passes before SSA passes: an AST rebuild regenerates the IR, so
	// SSA rewrites earlier in the same round would be discarded (the
	// fixed-point rounds redo them, at redundant cost).
	TierAST Tier = iota
	// TierSSA passes rewrite the SSA graph of st.SSA.Func in place
	// (strength reduction, IV substitution, dead-code elimination); the
	// engine refreshes dominators, reverifies SSA and reruns the loop,
	// constant and contributed analysis passes afterwards.
	TierSSA
	// TierMark passes rewrite nothing: they attach annotation artifacts
	// to the state (State.Put) derived from the analyses — the parallel
	// loop marking. Their invalidation contract is empty: no clone, no
	// re-analysis, no per-pass translation validation (there is no new
	// program to validate). Their rewrite count is the annotation delta
	// against the previous round, so the fixed point still converges;
	// annotation-dependent validation (sequential vs parallel execution)
	// runs once, after the fixed point, against the final marks. List
	// them last: marks describe the final program of the round.
	TierMark
)

// TransformPass is one mutating pipeline phase. Run rewrites the
// working program and reports how many rewrites it performed; zero
// means "nothing to do" and skips re-analysis, which is also how the
// fixed point is detected. By the time Run executes, the state it sees
// is a private clone of the analyzed original with analyses recomputed
// on the clone — a pass may freely mutate its tier's representation and
// must never see (or touch) a cache-shared artifact. Errors and panics
// are contained exactly like analysis passes, surfacing as *Error with
// phase "xform.<name>".
type TransformPass struct {
	Name string
	Tier Tier
	Run  func(st *State) (rewrites int, err error)
	// Reorders declares that the pass may legally permute the global
	// store trace (loop interchange, loop distribution) while preserving
	// per-cell write order. Once such a pass has changed the program,
	// translation validation compares traces in validate.PerCellOrder
	// for the rest of the run — exact global order is no longer an
	// invariant the pipeline maintains against the original.
	Reorders bool
}

// ParMarks is the parallel-loop annotation artifact: effective loop
// label (cfgbuild's numbering, see cfgbuild.ForLabels) → provably
// parallel. It is contributed by an annotation pass (xform's parmark)
// under ParMarksKey and consumed by the parallel execution backend and
// the surface layers' reports.
type ParMarks map[string]bool

// ParMarksKey is the State artifact slot ParMarks lives in.
const ParMarksKey = "parmarks"

// ParMarksOf returns the state's parallel-loop marks, or nil.
func ParMarksOf(st *State) ParMarks {
	m, _ := st.Artifact(ParMarksKey).(ParMarks)
	return m
}

// parValidateWorkers is the chunk fan-out width the post-fixed-point
// parallel-execution validation runs at. Fixed above 1 so the chunked
// merge is exercised even on single-CPU hosts (goroutines still
// interleave, and the -race corpus runs catch unsynchronized access).
const parValidateWorkers = 4

// PassStat records one transform pass execution that changed the
// program: which pass, in which fixed-point round, and how many
// rewrites it made.
type PassStat struct {
	Name     string
	Round    int
	Rewrites int
}

// Optimized is the outcome of one Optimize run.
type Optimized struct {
	// Original is the analyzed input state — possibly a shared cache
	// hit, never mutated by the optimizer.
	Original *State
	// State is the transformed program with all analyses recomputed on
	// it; it aliases Original when no pass changed anything.
	State *State
	// Stats lists the pass executions that changed the program, in
	// execution order.
	Stats []PassStat
	// Rounds is the number of fixed-point rounds executed; Rewrites the
	// total across passes.
	Rounds   int
	Rewrites int
	// Validations counts the interp translation-validation replays that
	// guarded this result (0 when validation is disabled or nothing
	// changed).
	Validations int
	// ParallelLoops lists the effective labels of loops the annotation
	// pass proved parallel (sorted; nil when the pipeline has no parmark
	// or nothing was provable). Unless validation was disabled, the
	// parallel execution of exactly these loops was checked
	// byte-identical to sequential execution over the grid.
	ParallelLoops []string
}

// Optimize analyzes one source (through the cache, when configured) and
// runs the engine's transform pipeline over a private clone, iterating
// passes to a fixed point with re-analysis after every change. It has
// the same safety contract as Analyze — guarded, contained, never a
// hang — plus the transform-layer guarantees: the analyzed state stays
// immutable, ssa.Verify holds after every pass, and unless validation
// is disabled, original and transformed programs are interp-equivalent
// over the validation grid.
func (e *Engine) Optimize(source string) (*Optimized, error) {
	return e.optimize(source, e.cfg.Obs, e.cfg.Limits)
}

// OptimizeContext is Optimize under a caller's context, with
// AnalyzeContext's cancellation contract extended over the transform
// pipeline: a cancelled run stops at the next pass boundary or
// in-phase budget poll and returns a *Error naming the phase (analysis
// pass, "xform.<name>", "reanalyze" or "validate") it was cancelled
// in.
func (e *Engine) OptimizeContext(ctx context.Context, source string) (*Optimized, error) {
	lim := e.cfg.Limits
	lim.Ctx = ctx
	return e.optimize(source, e.cfg.Obs, lim)
}

func (e *Engine) optimize(source string, rec *obs.Recorder, lim guard.Limits) (*Optimized, error) {
	span := rec.Phase("optimize")
	defer span.End()
	var start time.Time
	if e.ins != nil {
		start = time.Now()
	}

	orig, err := e.analyze(source, rec, lim, e.par, true)
	if err != nil {
		return nil, err
	}
	if len(e.cfg.Transforms) == 0 {
		return &Optimized{Original: orig, State: orig, Rounds: 0}, nil
	}

	ar := e.arenas.Get()
	extra := make(map[string]any, len(orig.extra))
	for k, v := range orig.extra {
		extra[k] = v
	}
	st := &State{
		Source:  source,
		File:    orig.File,
		CFG:     orig.CFG,
		SSA:     orig.SSA,
		Forest:  orig.Forest,
		Consts:  orig.Consts,
		rec:     rec,
		lim:     lim,
		extra:   extra,
		scratch: ar,
		par:     e.par,
	}
	if e.ins != nil {
		st.reg = e.ins.reg
	}
	r := &optimizer{e: e, orig: orig, st: st}
	out, err := r.run()
	// Detach before the state escapes; the arena is reusable even after
	// a contained fault (tables self-reset on acquisition).
	st.scratch = nil
	e.arenas.Put(ar)
	if e.ins != nil {
		dur := time.Since(start)
		e.ins.pass("optimize", dur)
		if err != nil {
			// The analysis succeeded (it recorded its own run above);
			// this failure is the transform stage's, so the flight
			// recorder gets a second, failed entry for the source.
			e.ins.fail(err)
			e.ins.record(source, start, dur, span, err, false)
		}
	}
	return out, err
}

// optimizer threads one Optimize run's clone-on-transform bookkeeping.
type optimizer struct {
	e    *Engine
	orig *State
	st   *State

	astPrivate bool // st.File no longer aliases orig's
	irPrivate  bool // st.SSA (and CFG/analyses) no longer alias orig's
	annotated  bool // a TierMark pass attached marks (st.extra differs from orig's)
	reordered  bool // a Reorders pass fired; trace validation is per-cell now

	stats       []PassStat
	rewrites    int
	validations int
}

func (r *optimizer) run() (*Optimized, error) {
	maxRounds := r.e.cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10
	}
	rec := r.st.rec
	ins := r.e.ins
	rounds := 0
	for round := 1; round <= maxRounds; round++ {
		rounds = round
		rec.Count("engine.opt.rounds")
		if ins != nil {
			ins.count("engine.opt.rounds")
		}
		changed := false
		for _, p := range r.e.cfg.Transforms {
			// Boundary cancellation check between transform passes; the
			// passes' own budget charges cover cancellation mid-rewrite.
			if ce := r.st.lim.Cancelled("xform." + p.Name); ce != nil {
				return nil, &Error{Phase: ce.Phase, Err: ce}
			}
			if err := r.prepare(p.Tier); err != nil {
				return nil, err
			}
			var t0 time.Time
			if ins != nil {
				t0 = time.Now()
			}
			n, err := runTransform(r.st, p)
			if ins != nil {
				ins.pass("xform."+p.Name, time.Since(t0))
			}
			if err != nil {
				return nil, err
			}
			rec.Add("xform."+p.Name+".rewrites", int64(n))
			if ins != nil {
				ins.reg.Add("xform."+p.Name+".rewrites", int64(n))
			}
			if n == 0 {
				continue
			}
			changed = true
			r.stats = append(r.stats, PassStat{Name: p.Name, Round: round, Rewrites: n})
			r.rewrites += n
			if p.Tier == TierMark {
				// Annotation-only contract: the program did not change,
				// so there is nothing to re-analyze or validate; the
				// marks themselves are validated after the fixed point.
				r.annotated = true
				continue
			}
			if p.Reorders {
				r.reordered = true
			}
			if err := r.reanalyze(p.Tier); err != nil {
				return nil, err
			}
			if err := r.validate(p.Name); err != nil {
				return nil, err
			}
		}
		if !changed {
			break
		}
	}
	out := r.st
	if !r.irPrivate && !r.annotated {
		// Nothing rewrote the IR or annotated the state; hand back the
		// analyzed original so callers see pointer-identical artifacts on
		// a no-op pipeline. (An annotated state still aliases the
		// original's File/SSA — the marks live in its artifact map.)
		out = r.orig
	}
	parallel, err := r.validateMarks(out)
	if err != nil {
		return nil, err
	}
	return &Optimized{
		Original:      r.orig,
		State:         out,
		Stats:         r.stats,
		Rounds:        rounds,
		Rewrites:      r.rewrites,
		Validations:   r.validations,
		ParallelLoops: parallel,
	}, nil
}

// validateMarks checks the final parallel-loop marks by executing the
// transformed program's marked loops chunked across goroutines and
// comparing the outcome byte-for-byte against the sequential
// interpreter over the validation grid. Returns the sorted marked
// labels.
func (r *optimizer) validateMarks(out *State) ([]string, error) {
	marks := ParMarksOf(out)
	if len(marks) == 0 {
		return nil, nil
	}
	labels := make([]string, 0, len(marks))
	for lbl := range marks {
		labels = append(labels, lbl)
	}
	slices.Sort(labels)
	if r.e.cfg.SkipValidation {
		return labels, nil
	}
	span := r.st.rec.Phase("validate")
	defer span.End()
	r.validations++
	r.st.rec.Count("engine.opt.validations")
	ins := r.e.ins
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	err := validate.Parallel(out.SSA, out.File, marks, parValidateWorkers, r.e.cfg.Validate)
	if ins != nil {
		ins.pass("validate", time.Since(t0))
		ins.count("engine.opt.validations")
		if err != nil {
			ins.count("xform.parmark.validate.fail")
		} else {
			ins.count("xform.parmark.validate.pass")
		}
	}
	if err != nil {
		return nil, &Error{Phase: "xform.parmark.validate", Err: err}
	}
	return labels, nil
}

// prepare gives the working state a private copy of the representation
// the pass is about to mutate (clone-on-transform). The AST copy is a
// plain deep clone; the SSA copy is the dense-ID-preserving ir clone
// with analyses recomputed on it, since every existing artifact points
// into the original's values and loops.
func (r *optimizer) prepare(t Tier) error {
	switch t {
	case TierMark:
		// Annotation passes touch only the state's artifact map, which
		// optimize already copied; nothing to clone.
	case TierAST:
		if !r.astPrivate {
			r.st.File = ast.CloneFile(r.st.File)
			r.astPrivate = true
		}
	case TierSSA:
		if !r.irPrivate {
			cs := scratch.Get[ir.CloneScratch](&r.st.scratch.IR)
			r.st.SSA = r.st.SSA.Clone(cs)
			loopsInfo := make([]cfgbuild.LoopInfo, len(r.st.CFG.Loops))
			for i, li := range r.st.CFG.Loops {
				loopsInfo[i] = li
				loopsInfo[i].Header = cs.BlockByID(li.Header.ID)
			}
			r.st.CFG = &cfgbuild.Result{Func: r.st.SSA.Func, Loops: loopsInfo}
			r.irPrivate = true
			r.st.rec.Count("engine.opt.clones")
			if r.e.ins != nil {
				r.e.ins.count("engine.opt.clones")
			}
			return r.reanalyze(TierSSA)
		}
	}
	return nil
}

// reanalyze rebuilds every artifact a tier's rewrite invalidated, by
// re-running the engine's own analysis passes on the working state:
// everything after parse for an AST rewrite, everything after SSA
// construction (plus a dominator refresh and SSA reverification) for an
// SSA rewrite. Contributed passes (classification, dependence) rerun in
// both cases, so transforms always compose against fresh
// classifications — the re-classification between fixed-point rounds.
func (r *optimizer) reanalyze(t Tier) error {
	span := r.st.rec.Phase("reanalyze")
	defer span.End()
	if ins := r.e.ins; ins != nil {
		t0 := time.Now()
		defer func() { ins.pass("reanalyze", time.Since(t0)) }()
	}
	skip := map[string]bool{"parse": true}
	if t == TierSSA {
		skip["cfgbuild"], skip["ssa"] = true, true
		r.st.SSA.RefreshDom()
		if errs := ssa.Verify(r.st.SSA); len(errs) != 0 {
			return &Error{Phase: "reanalyze", Err: errors.Join(errs...)}
		}
	} else {
		// The AST rebuild regenerates the IR from the rewritten File;
		// whatever SSA state existed is replaced wholesale, so the
		// working IR is private from here on.
		r.irPrivate = true
	}
	for _, p := range r.e.cfg.Passes {
		if skip[p.Name] {
			continue
		}
		if err := runPass(r.st.lim, p, r.st); err != nil {
			return err
		}
		if ce := r.st.lim.Cancelled(p.Name); ce != nil {
			return &Error{Phase: ce.Phase, Err: ce}
		}
	}
	return nil
}

// validate replays original vs working program through the interpreter
// over the configured grid (translation validation). Phase attribution
// names the pass whose rewrite is being checked.
func (r *optimizer) validate(pass string) error {
	if r.e.cfg.SkipValidation {
		return nil
	}
	span := r.st.rec.Phase("validate")
	defer span.End()
	r.validations++
	r.st.rec.Count("engine.opt.validations")
	ins := r.e.ins
	var t0 time.Time
	if ins != nil {
		t0 = time.Now()
	}
	opts := r.e.cfg.Validate
	if r.reordered {
		opts.Order = validate.PerCellOrder
	}
	err := validate.Funcs(r.orig.SSA, r.st.SSA, opts)
	if ins != nil {
		ins.pass("validate", time.Since(t0))
		ins.count("engine.opt.validations")
		if err != nil {
			ins.count("xform." + pass + ".validate.fail")
		} else {
			ins.count("xform." + pass + ".validate.pass")
		}
	}
	if err != nil {
		return &Error{Phase: "xform." + pass + ".validate", Err: err}
	}
	return nil
}

// runTransform executes one mutating pass with the analysis passes'
// fault containment, under the phase name "xform.<name>".
func runTransform(st *State, p TransformPass) (n int, err error) {
	phase := "xform." + p.Name
	span := st.rec.Phase(phase)
	defer span.End()
	defer func() {
		if r := recover(); r != nil {
			n, err = 0, contained(phase, r)
		}
	}()
	st.lim.Inject.Fire(phase)
	n, ferr := p.Run(st)
	if ferr != nil {
		return 0, wrapError(phase, ferr)
	}
	return n, nil
}

// OptItem is one source's outcome in an OptimizeAll batch.
type OptItem struct {
	Index  int
	Source string
	Result *Optimized
	Err    error
}

// OptimizeAll is Optimize over the batch worker pool: the same bounded
// fan-out, forked-recorder merging, shared step pool and per-source
// failure isolation as AnalyzeAll, applied to the full
// analyze-transform-validate pipeline.
func (e *Engine) OptimizeAll(sources []string) []OptItem {
	return e.OptimizeAllContext(context.Background(), sources)
}

// OptimizeAllContext is OptimizeAll under a caller's context, with
// AnalyzeAllContext's batch-cancellation contract: a cancelled batch
// stops scheduling queued sources, in-flight sources stop
// cooperatively, and unscheduled sources carry batch-attributed
// cancellation errors.
func (e *Engine) OptimizeAllContext(ctx context.Context, sources []string) []OptItem {
	rec := e.cfg.Obs
	span := rec.Phase("optimize-all")
	defer span.End()

	lim := e.cfg.Limits
	lim.Pool = guard.NewPool(e.cfg.BatchSteps)
	lim.Ctx = ctx
	defer e.poolGauges(lim.Pool)

	items := make([]OptItem, len(sources))
	e.fanOut(ctx, len(sources), rec, func(i int, wrec *obs.Recorder) {
		res, err := e.optimize(sources[i], wrec, lim)
		items[i] = OptItem{Index: i, Source: sources[i], Result: res, Err: err}
	}, func(i int, ce *guard.CancelError) {
		items[i] = OptItem{Index: i, Source: sources[i], Err: &Error{Phase: ce.Phase, Err: ce}}
	})
	return items
}
