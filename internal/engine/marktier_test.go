// Mark-tier contract tests: a TierMark pass annotates without cloning,
// its marks ride on a state that still aliases the original program,
// the analyzed original never sees them, and the final marks are
// validated against the sequential interpreter — a bogus mark is a
// validation failure, not a silent wrong answer.
package engine_test

import (
	"errors"
	"testing"

	"beyondiv/internal/engine"
)

// markPass marks the given label once and then quiesces, the minimal
// well-behaved TierMark citizen.
func markPass(label string) engine.TransformPass {
	return engine.TransformPass{Name: "mark", Tier: engine.TierMark,
		Run: func(st *engine.State) (int, error) {
			if engine.ParMarksOf(st) != nil {
				return 0, nil
			}
			st.Put(engine.ParMarksKey, engine.ParMarks{label: true})
			return 1, nil
		}}
}

const parallelSrc = `
L1: for i = 1 to 8 {
    a[i] = i * 2
}
`

// sequentialSrc carries a scalar recurrence: chunked execution of L1
// would give each chunk a stale copy of s, so marking it parallel is a
// lie the parallel-vs-sequential validation must catch.
const sequentialSrc = `
s = 0
L1: for i = 1 to 8 {
    s = s + i
    a[i] = s
}
`

func TestMarkTierAnnotatesWithoutClone(t *testing.T) {
	e := optEngine(engine.Config{}, markPass("L1"))
	res, err := e.Optimize(parallelSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The contract: a distinct state (it carries the marks), but no
	// clone — File and SSA still alias the analyzed original.
	if res.State == res.Original {
		t.Fatal("annotated run handed back the original state; the marks would be lost or leak into the cache")
	}
	if res.State.File != res.Original.File || res.State.SSA != res.Original.SSA {
		t.Error("mark tier cloned the program; its invalidation contract is empty")
	}
	if m := engine.ParMarksOf(res.State); !m["L1"] {
		t.Errorf("marks missing from result state: %v", m)
	}
	if m := engine.ParMarksOf(res.Original); m != nil {
		t.Errorf("marks leaked into the analyzed original: %v", m)
	}
	if len(res.ParallelLoops) != 1 || res.ParallelLoops[0] != "L1" {
		t.Errorf("ParallelLoops = %v, want [L1]", res.ParallelLoops)
	}
	// One rewrite in round 1 (the annotation delta), quiescent round 2,
	// and exactly one validation: the post-fixed-point marks check (no
	// per-pass translation validation for an annotation).
	if res.Rounds != 2 || res.Rewrites != 1 {
		t.Errorf("rounds/rewrites = %d/%d, want 2/1", res.Rounds, res.Rewrites)
	}
	if res.Validations != 1 {
		t.Errorf("validations = %d, want exactly the marks check", res.Validations)
	}
}

func TestMarkTierBogusMarkFailsValidation(t *testing.T) {
	e := optEngine(engine.Config{}, markPass("L1"))
	_, err := e.Optimize(sequentialSrc)
	if err == nil {
		t.Fatal("marking a scalar recurrence parallel must fail parallel-vs-sequential validation")
	}
	var ee *engine.Error
	if !errors.As(err, &ee) || ee.Phase != "xform.parmark.validate" {
		t.Errorf("error = %v, want phase xform.parmark.validate", err)
	}
}

func TestMarkTierSkipValidationTrustsMarks(t *testing.T) {
	// With validation off the engine reports the marks as requested —
	// the same trust it extends every other pass under SkipValidation.
	e := optEngine(engine.Config{SkipValidation: true}, markPass("L1"))
	res, err := e.Optimize(sequentialSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParallelLoops) != 1 || res.ParallelLoops[0] != "L1" {
		t.Errorf("ParallelLoops = %v, want [L1]", res.ParallelLoops)
	}
	if res.Validations != 0 {
		t.Errorf("validations = %d, want 0 under SkipValidation", res.Validations)
	}
}
