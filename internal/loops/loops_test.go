package loops

import (
	"strings"
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/dom"
	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
)

type built struct {
	f      *ir.Func
	tree   *dom.Tree
	forest *Forest
}

func analyze(t *testing.T, src string) built {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	res := cfgbuild.Build(file)
	tree := dom.New(res.Func)
	forest := Analyze(res.Func, tree)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)
	return built{f: res.Func, tree: tree, forest: forest}
}

func TestNoLoops(t *testing.T) {
	b := analyze(t, "i = 1\nif i > 0 { j = 2 }\n")
	if len(b.forest.Loops) != 0 {
		t.Errorf("found %d loops in loop-free code", len(b.forest.Loops))
	}
}

func TestSingleForLoop(t *testing.T) {
	b := analyze(t, "for i = 1 to n { a[i] = 0 }\n")
	if len(b.forest.Loops) != 1 {
		t.Fatalf("loops = %v", b.forest.Loops)
	}
	l := b.forest.Loops[0]
	if l.Label != "L1" || l.Depth != 1 {
		t.Errorf("loop = %v", l)
	}
	if pre := l.Preheader(); pre == nil {
		t.Error("no preheader")
	}
	if len(l.Latches) != 1 {
		t.Errorf("latches = %v", l.Latches)
	}
	// header + body + latch.
	if len(l.Blocks) != 3 {
		t.Errorf("blocks = %v", l.Blocks)
	}
	if len(l.ExitEdges()) != 1 {
		t.Errorf("exits = %v", l.ExitEdges())
	}
}

func TestNestedNest(t *testing.T) {
	b := analyze(t, `
L17: for i = 1 to n {
    L18: for j = 1 to i {
        a[j] = 0
    }
}
`)
	if len(b.forest.Loops) != 2 {
		t.Fatalf("loops = %v", b.forest.Loops)
	}
	var outer, inner *Loop
	for _, l := range b.forest.Loops {
		switch l.Label {
		case "L17":
			outer = l
		case "L18":
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("labels missing")
	}
	if inner.Parent != outer || outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("nesting wrong: outer=%v inner=%v", outer, inner)
	}
	if !outer.ContainsLoop(inner) || inner.ContainsLoop(outer) {
		t.Error("ContainsLoop wrong")
	}
	order := b.forest.InnerToOuter()
	if order[0] != inner || order[1] != outer {
		t.Errorf("InnerToOuter = %v", order)
	}
	for _, blk := range inner.Blocks {
		if !outer.Contains(blk) {
			t.Errorf("outer missing inner block %s", blk)
		}
		if b.forest.InnermostContaining(blk) != inner {
			t.Errorf("InnermostContaining(%s) wrong", blk)
		}
	}
}

func TestSiblings(t *testing.T) {
	b := analyze(t, `
for i = 1 to n { a[i] = 0 }
for j = 1 to n { b[j] = 0 }
`)
	if len(b.forest.Roots) != 2 {
		t.Fatalf("roots = %v", b.forest.Roots)
	}
	for _, l := range b.forest.Loops {
		if l.Depth != 1 {
			t.Errorf("sibling loop has depth %d", l.Depth)
		}
	}
}

func TestMidExitLoop(t *testing.T) {
	b := analyze(t, `
i = 0
loop {
    i = i + 1
    if i > 10 { exit }
    j = j + i
}
`)
	if len(b.forest.Loops) != 1 {
		t.Fatalf("loops = %v", b.forest.Loops)
	}
	l := b.forest.Loops[0]
	if len(l.ExitEdges()) != 1 {
		t.Errorf("exit edges = %v", l.ExitEdges())
	}
	if l.Preheader() == nil {
		t.Error("no preheader")
	}
}

func TestTripleNest(t *testing.T) {
	b := analyze(t, progen.NestedLoops(3))
	if len(b.forest.Loops) != 3 {
		t.Fatalf("loops = %d", len(b.forest.Loops))
	}
	depths := map[int]int{}
	for _, l := range b.forest.Loops {
		depths[l.Depth]++
	}
	if depths[1] != 1 || depths[2] != 1 || depths[3] != 1 {
		t.Errorf("depths = %v", depths)
	}
}

// TestQuickLoopInvariants checks structural invariants on random
// programs: headers dominate their bodies, bodies are closed under
// predecessors up to the header, members map consistently, and
// InnerToOuter is a valid postorder.
func TestQuickLoopInvariants(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		file, err := parse.File(gen.Program(seed))
		if err != nil {
			return false
		}
		f := cfgbuild.Build(file).Func
		tree := dom.New(f)
		forest := Analyze(f, tree)
		for _, l := range forest.Loops {
			for _, blk := range l.Blocks {
				if !tree.Dominates(l.Header, blk) {
					return false
				}
			}
			for _, latch := range l.Latches {
				if !l.Contains(latch) {
					return false
				}
			}
			// Parent contains all child blocks.
			if l.Parent != nil {
				for _, blk := range l.Blocks {
					if !l.Parent.Contains(blk) {
						return false
					}
				}
				if l.Depth != l.Parent.Depth+1 {
					return false
				}
			}
		}
		// InnerToOuter: children strictly before parents.
		pos := map[*Loop]int{}
		for i, l := range forest.InnerToOuter() {
			pos[l] = i
		}
		for _, l := range forest.Loops {
			if l.Parent != nil && pos[l] > pos[l.Parent] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	file, err := parse.File(progen.NestedLoops(8))
	if err != nil {
		b.Fatal(err)
	}
	f := cfgbuild.Build(file).Func
	tree := dom.New(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(f, tree)
	}
}

func TestStringRenderings(t *testing.T) {
	b := analyze(t, `
L17: for i = 1 to n {
    L18: for j = 1 to i {
        a[j] = 0
    }
}
`)
	s := b.forest.String()
	for _, want := range []string{"L17(header=", "depth=1", "  L18(header=", "depth=2", "blocks="} {
		if !strings.Contains(s, want) {
			t.Errorf("forest rendering missing %q:\n%s", want, s)
		}
	}
	unlabeled := &Loop{Header: b.forest.Loops[0].Header, Depth: 1}
	if !strings.Contains(unlabeled.String(), "loop(header=") {
		t.Errorf("unlabeled loop rendering: %s", unlabeled)
	}
}

func TestByHeaderAndContains(t *testing.T) {
	b := analyze(t, "L1: for i = 1 to n { a[i] = 0 }\n")
	l := b.forest.Loops[0]
	if b.forest.ByHeader(l.Header) != l {
		t.Error("ByHeader misses")
	}
	if b.forest.ByHeader(b.f.Entry) != nil {
		t.Error("entry is not a loop header")
	}
	for _, blk := range l.Blocks {
		for _, v := range blk.Values {
			if !l.ContainsValue(v) {
				t.Errorf("value %s should be in the loop", v)
			}
		}
	}
	for _, v := range b.f.Entry.Values {
		if l.ContainsValue(v) {
			t.Errorf("entry value %s should be outside", v)
		}
	}
}
