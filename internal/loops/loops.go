// Package loops discovers natural loops and the loop-nest tree from the
// CFG and dominator tree: back edges t→h with h dominating t define a
// loop; its body is every block that reaches t without passing h. Loops
// sharing a header are merged. The classifier walks this tree from the
// innermost loops outward (paper §5.3).
package loops

import (
	"fmt"
	"sort"
	"strings"

	"beyondiv/internal/dom"
	"beyondiv/internal/ir"
	"beyondiv/internal/obs"
)

// Loop is one natural loop.
type Loop struct {
	// Header is the unique entry block of the loop.
	Header *ir.Block
	// Latches are the sources of back edges into Header.
	Latches []*ir.Block
	// Blocks is the loop body including Header, in block-ID order.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are the immediately nested loops.
	Children []*Loop
	// Depth is 1 for top-level loops, 2 for their children, and so on.
	Depth int
	// Label is the source name ("L7"); attached by the caller from
	// cfgbuild information, empty if unknown.
	Label string

	member map[*ir.Block]bool
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool { return l.member[b] }

// ContainsValue reports whether v is defined inside the loop. Values
// defined outside are loop-invariant by SSA dominance (paper §5.3:
// "SSA links to code outside the loop are treated as loop invariant").
func (l *Loop) ContainsValue(v *ir.Value) bool { return l.member[v.Block] }

// ContainsLoop reports whether inner is l or nested anywhere within l.
func (l *Loop) ContainsLoop(inner *Loop) bool {
	for q := inner; q != nil; q = q.Parent {
		if q == l {
			return true
		}
	}
	return false
}

// Preheader returns the unique predecessor of the header outside the
// loop, or nil if there is none (the lowering in cfgbuild always makes
// one).
func (l *Loop) Preheader() *ir.Block {
	var pre *ir.Block
	for _, p := range l.Header.Preds {
		if l.member[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}

// ExitEdges returns the (from, to) pairs leaving the loop, in block-ID
// order.
func (l *Loop) ExitEdges() [][2]*ir.Block {
	var out [][2]*ir.Block
	for _, b := range l.Blocks {
		for _, s := range b.Succs {
			if !l.member[s] {
				out = append(out, [2]*ir.Block{b, s})
			}
		}
	}
	return out
}

// String renders "L(header=bN depth=D)".
func (l *Loop) String() string {
	lbl := l.Label
	if lbl == "" {
		lbl = "loop"
	}
	return fmt.Sprintf("%s(header=%s depth=%d)", lbl, l.Header, l.Depth)
}

// Forest is the loop nest of a function.
type Forest struct {
	// Loops lists every loop, ordered outer-before-inner (by depth, then
	// header block ID).
	Loops []*Loop
	// Roots are the top-level loops.
	Roots []*Loop

	loopOf map[*ir.Block]*Loop
}

// InnermostContaining returns the innermost loop containing b, or nil.
func (f *Forest) InnermostContaining(b *ir.Block) *Loop { return f.loopOf[b] }

// ByHeader returns the loop headed at b, or nil.
func (f *Forest) ByHeader(b *ir.Block) *Loop {
	l := f.loopOf[b]
	if l != nil && l.Header == b {
		return l
	}
	return nil
}

// InnerToOuter returns the loops in classification order: every inner
// loop before any loop containing it (postorder over the nest).
func (f *Forest) InnerToOuter() []*Loop {
	out := make([]*Loop, len(f.Loops))
	copy(out, f.Loops)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Depth != out[j].Depth {
			return out[i].Depth > out[j].Depth
		}
		return out[i].Header.ID < out[j].Header.ID
	})
	return out
}

// String renders the nest as an indented tree.
func (f *Forest) String() string {
	var sb strings.Builder
	var walk func(l *Loop)
	walk = func(l *Loop) {
		fmt.Fprintf(&sb, "%s%s blocks=%d\n", strings.Repeat("  ", l.Depth-1), l, len(l.Blocks))
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, r := range f.Roots {
		walk(r)
	}
	return sb.String()
}

// Analyze builds the loop forest of f.
func Analyze(f *ir.Func, tree *dom.Tree) *Forest {
	return AnalyzeWithObs(f, tree, nil)
}

// AnalyzeWithObs is Analyze with telemetry: a "loops" phase span plus a
// loop counter. rec may be nil.
func AnalyzeWithObs(f *ir.Func, tree *dom.Tree, rec *obs.Recorder) *Forest {
	span := rec.Phase("loops")
	defer span.End()
	byHeader := map[*ir.Block]*Loop{}

	// Find back edges and collect loop bodies.
	for _, b := range tree.ReversePostorder() {
		for _, s := range b.Succs {
			if !tree.Dominates(s, b) {
				continue
			}
			// b -> s is a back edge; s is a header.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, member: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b)
			// Backward walk from the latch, stopping at the header.
			if !l.member[b] {
				l.member[b] = true
				stack := []*ir.Block{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range x.Preds {
						if !tree.Reachable(p) || l.member[p] {
							continue
						}
						l.member[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}

	forest := &Forest{loopOf: map[*ir.Block]*Loop{}}
	for _, l := range byHeader {
		for b := range l.member {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].ID < l.Blocks[j].ID })
		forest.Loops = append(forest.Loops, l)
	}
	// Order by body size descending so parents precede children when
	// assigning nesting; ties (equal size) cannot nest in each other.
	sort.Slice(forest.Loops, func(i, j int) bool {
		if len(forest.Loops[i].Blocks) != len(forest.Loops[j].Blocks) {
			return len(forest.Loops[i].Blocks) > len(forest.Loops[j].Blocks)
		}
		return forest.Loops[i].Header.ID < forest.Loops[j].Header.ID
	})

	// Nesting: the innermost loop already assigned to a header's block
	// becomes the parent.
	for _, l := range forest.Loops {
		if p := forest.loopOf[l.Header]; p != nil {
			l.Parent = p
			p.Children = append(p.Children, l)
		}
		for _, b := range l.Blocks {
			forest.loopOf[b] = l
		}
	}
	for _, l := range forest.Loops {
		l.Depth = 1
		for p := l.Parent; p != nil; p = p.Parent {
			l.Depth++
		}
		if l.Parent == nil {
			forest.Roots = append(forest.Roots, l)
		}
	}
	// Deterministic orders.
	sort.SliceStable(forest.Loops, func(i, j int) bool {
		if forest.Loops[i].Depth != forest.Loops[j].Depth {
			return forest.Loops[i].Depth < forest.Loops[j].Depth
		}
		return forest.Loops[i].Header.ID < forest.Loops[j].Header.ID
	})
	sort.Slice(forest.Roots, func(i, j int) bool { return forest.Roots[i].Header.ID < forest.Roots[j].Header.ID })
	for _, l := range forest.Loops {
		sort.Slice(l.Children, func(i, j int) bool { return l.Children[i].Header.ID < l.Children[j].Header.ID })
	}
	rec.Add("loops.found", int64(len(forest.Loops)))
	return forest
}

// AttachLabels copies source labels onto loops by header block.
func (f *Forest) AttachLabels(infos map[*ir.Block]string) {
	for _, l := range f.Loops {
		if lbl, ok := infos[l.Header]; ok {
			l.Label = lbl
		}
	}
}
