package rational

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalization(t *testing.T) {
	cases := []struct {
		num, den int64
		want     string
	}{
		{1, 2, "1/2"},
		{2, 4, "1/2"},
		{-2, 4, "-1/2"},
		{2, -4, "-1/2"},
		{-2, -4, "1/2"},
		{0, 5, "0"},
		{0, -5, "0"},
		{7, 1, "7"},
		{7, 7, "1"},
		{6, 3, "2"},
		{5, 0, "NaR"},
	}
	for _, c := range cases {
		if got := New(c.num, c.den).String(); got != c.want {
			t.Errorf("New(%d,%d) = %s, want %s", c.num, c.den, got, c.want)
		}
	}
}

func TestBasicArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third).String(); got != "5/6" {
		t.Errorf("1/2+1/3 = %s, want 5/6", got)
	}
	if got := half.Sub(third).String(); got != "1/6" {
		t.Errorf("1/2-1/3 = %s, want 1/6", got)
	}
	if got := half.Mul(third).String(); got != "1/6" {
		t.Errorf("1/2*1/3 = %s, want 1/6", got)
	}
	if got := half.Div(third).String(); got != "3/2" {
		t.Errorf("(1/2)/(1/3) = %s, want 3/2", got)
	}
	if got := half.Neg().String(); got != "-1/2" {
		t.Errorf("-(1/2) = %s, want -1/2", got)
	}
	if got := third.Inv().String(); got != "3" {
		t.Errorf("1/(1/3) = %s, want 3", got)
	}
}

func TestDivByZero(t *testing.T) {
	if FromInt(1).Div(FromInt(0)).Valid() {
		t.Error("1/0 should be NaR")
	}
	if FromInt(0).Inv().Valid() {
		t.Error("Inv(0) should be NaR")
	}
}

func TestNaRPropagation(t *testing.T) {
	x := FromInt(3)
	for _, r := range []Rat{
		NaR.Add(x), x.Add(NaR), NaR.Sub(x), x.Sub(NaR),
		NaR.Mul(x), x.Mul(NaR), NaR.Div(x), x.Div(NaR),
		NaR.Neg(), NaR.Inv(), NaR.Pow(2),
	} {
		if r.Valid() {
			t.Errorf("NaR did not propagate: got %s", r)
		}
	}
}

func TestOverflowToNaR(t *testing.T) {
	huge := FromInt(math.MaxInt64)
	if huge.Add(FromInt(1)).Valid() {
		t.Error("MaxInt64+1 should overflow to NaR")
	}
	if huge.Mul(FromInt(2)).Valid() {
		t.Error("MaxInt64*2 should overflow to NaR")
	}
	small := FromInt(math.MinInt64)
	if small.Neg().Valid() {
		t.Error("-MinInt64 should overflow to NaR")
	}
	if small.Sub(FromInt(1)).Valid() {
		t.Error("MinInt64-1 should overflow to NaR")
	}
}

func TestPow(t *testing.T) {
	cases := []struct {
		base Rat
		k    int
		want string
	}{
		{FromInt(2), 0, "1"},
		{FromInt(2), 10, "1024"},
		{FromInt(0), 0, "1"},
		{FromInt(0), 3, "0"},
		{New(1, 2), 3, "1/8"},
		{FromInt(-3), 3, "-27"},
		{FromInt(-3), 2, "9"},
		{FromInt(2), -1, "NaR"},
	}
	for _, c := range cases {
		if got := c.base.Pow(c.k).String(); got != c.want {
			t.Errorf("%s^%d = %s, want %s", c.base, c.k, got, c.want)
		}
	}
}

func TestCmpAndSign(t *testing.T) {
	if New(1, 3).Cmp(New(1, 2)) != -1 {
		t.Error("1/3 should compare less than 1/2")
	}
	if New(-1, 3).Sign() != -1 || FromInt(0).Sign() != 0 || New(2, 5).Sign() != 1 {
		t.Error("Sign wrong")
	}
	if !New(2, 4).Equal(New(1, 2)) {
		t.Error("2/4 should equal 1/2")
	}
	if NaR.Equal(NaR) {
		t.Error("NaR must not equal NaR (like NaN)")
	}
}

func TestIntAccessors(t *testing.T) {
	v, ok := FromInt(42).Int()
	if !ok || v != 42 {
		t.Errorf("Int() = %d,%v want 42,true", v, ok)
	}
	if _, ok := New(1, 2).Int(); ok {
		t.Error("1/2 should not be an integer")
	}
	if !FromInt(0).IsZero() || New(1, 2).IsZero() {
		t.Error("IsZero wrong")
	}
}

// small constrains quick-generated operands so that arithmetic stays in
// range and the field-axiom properties are exact.
type small int16

func ratOf(a, b small) Rat {
	d := int64(b)
	if d == 0 {
		d = 1
	}
	return New(int64(a), d)
}

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	commAdd := func(a1, b1, a2, b2 small) bool {
		x, y := ratOf(a1, b1), ratOf(a2, b2)
		return x.Add(y).Equal(y.Add(x))
	}
	if err := quick.Check(commAdd, cfg); err != nil {
		t.Error("Add not commutative:", err)
	}

	assocAdd := func(a1, b1, a2, b2, a3, b3 small) bool {
		x, y, z := ratOf(a1, b1), ratOf(a2, b2), ratOf(a3, b3)
		return x.Add(y).Add(z).Equal(x.Add(y.Add(z)))
	}
	if err := quick.Check(assocAdd, cfg); err != nil {
		t.Error("Add not associative:", err)
	}

	distrib := func(a1, b1, a2, b2, a3, b3 small) bool {
		x, y, z := ratOf(a1, b1), ratOf(a2, b2), ratOf(a3, b3)
		return x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z)))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Error("Mul does not distribute over Add:", err)
	}

	inverse := func(a, b small) bool {
		x := ratOf(a, b)
		if x.IsZero() {
			return true
		}
		return x.Mul(x.Inv()).Equal(FromInt(1))
	}
	if err := quick.Check(inverse, cfg); err != nil {
		t.Error("x * 1/x != 1:", err)
	}

	negation := func(a, b small) bool {
		x := ratOf(a, b)
		return x.Add(x.Neg()).IsZero()
	}
	if err := quick.Check(negation, cfg); err != nil {
		t.Error("x + (-x) != 0:", err)
	}

	normalized := func(a, b small) bool {
		x := ratOf(a, b)
		if !x.Valid() {
			return false
		}
		if x.Den() <= 0 {
			return false
		}
		return gcd64(abs64(x.Num()), x.Den()) == 1 || x.Num() == 0
	}
	if err := quick.Check(normalized, cfg); err != nil {
		t.Error("result not normalized:", err)
	}
}

func TestQuickSubDivConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	sub := func(a1, b1, a2, b2 small) bool {
		x, y := ratOf(a1, b1), ratOf(a2, b2)
		return x.Sub(y).Add(y).Equal(x)
	}
	if err := quick.Check(sub, cfg); err != nil {
		t.Error("(x-y)+y != x:", err)
	}
	div := func(a1, b1, a2, b2 small) bool {
		x, y := ratOf(a1, b1), ratOf(a2, b2)
		if y.IsZero() {
			return true
		}
		return x.Div(y).Mul(y).Equal(x)
	}
	if err := quick.Check(div, cfg); err != nil {
		t.Error("(x/y)*y != x:", err)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}
