// Package rational implements exact rational arithmetic on 64-bit
// integers with explicit overflow tracking.
//
// The induction-variable classifier (internal/iv) recovers closed-form
// coefficients of polynomial and geometric induction variables by solving
// small Vandermonde systems; the paper (Wolfe, PLDI 1992, §4.3) observes
// that these coefficients are always rational, so an exact rational field
// is the natural substrate. Coefficients in real programs are tiny, so a
// fixed-width representation with a propagating "not a rational" (NaR)
// state — analogous to IEEE NaN — is simpler and faster than arbitrary
// precision, and it can never silently produce a wrong value: any overflow
// collapses to NaR, which every consumer treats as "unknown".
package rational

import (
	"fmt"

	"beyondiv/internal/safemath"
)

// Rat is an exact rational number. The zero value is the rational 0.
//
// Invariants for valid values: den > 0 and gcd(|num|, den) == 1.
// The special NaR (not a rational) state is encoded as den == 0 and
// propagates through all operations.
type Rat struct {
	num int64
	den int64 // > 0 for valid values; 0 means NaR
}

// NaR is the "not a rational" value produced by overflow or division by
// zero. All operations on NaR yield NaR.
var NaR = Rat{0, 0}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// New returns the normalized rational num/den, or NaR if den == 0.
func New(num, den int64) Rat {
	if den == 0 {
		return NaR
	}
	return norm(num, den)
}

// norm normalizes num/den (den != 0) into canonical form.
func norm(num, den int64) Rat {
	if num == 0 {
		return Rat{0, 1}
	}
	if den < 0 {
		// Negating MinInt64 overflows; treat as out of range.
		if num == minI64 || den == minI64 {
			return NaR
		}
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	return Rat{num / g, den / g}
}

const minI64 = -1 << 63

func abs64(x int64) int64 {
	if x < 0 {
		if x == minI64 {
			return minI64 // caller guards; gcd handles via uint path below
		}
		return -x
	}
	return x
}

// gcd64 returns gcd(a, b) for a, b >= 0, not both zero.
func gcd64(a, b int64) int64 {
	ua, ub := uint64(a), uint64(b)
	for ub != 0 {
		ua, ub = ub, ua%ub
	}
	return int64(ua)
}

// Valid reports whether r is a real rational (not NaR).
func (r Rat) Valid() bool { return r.den != 0 }

// IsZero reports whether r is exactly zero.
func (r Rat) IsZero() bool { return r.Valid() && r.num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.den == 1 }

// Int returns the integer value of r and whether r is a (valid) integer.
func (r Rat) Int() (int64, bool) {
	if r.den != 1 {
		return 0, false
	}
	return r.num, true
}

// Num returns the normalized numerator. For NaR it returns 0.
func (r Rat) Num() int64 { return r.num }

// Den returns the normalized denominator (> 0), or 0 for NaR.
func (r Rat) Den() int64 { return r.den }

// Sign returns -1, 0, or +1 according to the sign of r.
// Sign of NaR is 0; check Valid first when it matters.
func (r Rat) Sign() int {
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// mul64 multiplies with overflow detection (internal/safemath holds
// the shared implementation).
func mul64(a, b int64) (int64, bool) { return safemath.Mul(a, b) }

// add64 adds with overflow detection.
func add64(a, b int64) (int64, bool) { return safemath.Add(a, b) }

// Add returns r + s, or NaR on overflow or invalid input.
func (r Rat) Add(s Rat) Rat {
	if !r.Valid() || !s.Valid() {
		return NaR
	}
	// r.num/r.den + s.num/s.den; reduce cross terms by g = gcd(dens).
	g := gcd64(r.den, s.den)
	rd, sd := r.den/g, s.den/g
	a, ok1 := mul64(r.num, sd)
	b, ok2 := mul64(s.num, rd)
	n, ok3 := add64(a, b)
	d, ok4 := mul64(r.den, sd)
	if !(ok1 && ok2 && ok3 && ok4) || d == 0 {
		return NaR
	}
	return norm(n, d)
}

// Sub returns r - s, or NaR on overflow or invalid input.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat {
	if !r.Valid() || r.num == minI64 {
		return NaR
	}
	return Rat{-r.num, r.den}
}

// Mul returns r * s, or NaR on overflow or invalid input.
func (r Rat) Mul(s Rat) Rat {
	if !r.Valid() || !s.Valid() {
		return NaR
	}
	// Cross-reduce before multiplying to keep intermediates small.
	g1 := gcd64(abs64(r.num), s.den)
	g2 := gcd64(abs64(s.num), r.den)
	if g1 == 0 {
		g1 = 1
	}
	if g2 == 0 {
		g2 = 1
	}
	n, ok1 := mul64(r.num/g1, s.num/g2)
	d, ok2 := mul64(r.den/g2, s.den/g1)
	if !ok1 || !ok2 || d == 0 {
		return NaR
	}
	return norm(n, d)
}

// Div returns r / s, or NaR if s is zero, invalid, or on overflow.
func (r Rat) Div(s Rat) Rat {
	if !s.Valid() || s.num == 0 {
		return NaR
	}
	return r.Mul(s.Inv())
}

// Inv returns 1/r, or NaR if r is zero or invalid.
func (r Rat) Inv() Rat {
	if !r.Valid() || r.num == 0 {
		return NaR
	}
	return norm(r.den, r.num)
}

// Cmp compares r and s, returning -1, 0, or +1. Comparing with NaR
// returns 0; callers that care must check Valid first.
func (r Rat) Cmp(s Rat) int {
	if !r.Valid() || !s.Valid() {
		return 0
	}
	return r.Sub(s).Sign()
}

// Equal reports whether r and s are both valid and equal.
func (r Rat) Equal(s Rat) bool {
	return r.Valid() && s.Valid() && r.num == s.num && r.den == s.den
}

// Pow returns r**k for k >= 0 (r**0 == 1, including for r == 0).
func (r Rat) Pow(k int) Rat {
	if !r.Valid() || k < 0 {
		return NaR
	}
	out := FromInt(1)
	base := r
	for k > 0 {
		if k&1 == 1 {
			out = out.Mul(base)
		}
		k >>= 1
		if k > 0 {
			base = base.Mul(base)
		}
	}
	return out
}

// String renders r as "n" for integers, "n/d" otherwise, and "NaR" for
// the invalid value.
func (r Rat) String() string {
	switch {
	case !r.Valid():
		return "NaR"
	case r.den == 1:
		return fmt.Sprintf("%d", r.num)
	default:
		return fmt.Sprintf("%d/%d", r.num, r.den)
	}
}
