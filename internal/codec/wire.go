package codec

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format. Artifact blobs ("BIVC") and alias records ("BIVA") share
// the same envelope: magic, little-endian uint16 schema version, body,
// then the first 8 bytes of a SHA-256 over everything before as a
// self-check. Any envelope violation — wrong magic, unknown version,
// checksum mismatch, truncation, trailing bytes — decodes to ErrCorrupt
// and the caller deletes the entry and re-analyzes; a valid entry whose
// name table cannot be substituted for the requester's decodes to
// ErrIncompatible and the caller keeps the entry but treats the lookup
// as a miss. Neither path can surface a wrong answer.
const (
	// Version is the artifact schema version. Bump it whenever the body
	// layout, the segment model, or the meaning of any stored text
	// changes; old entries then read as corrupt and are re-analyzed.
	Version = 1

	magicArtifact = "BIVC"
	magicAlias    = "BIVA"
	checksumLen   = 8

	flagHasDeps    = 1 << 0
	flagRenameable = 1 << 1
)

// ErrCorrupt reports an undecodable blob: truncated, bit-rotted, or
// written by a different schema version. The store entry is garbage.
var ErrCorrupt = errors.New("codec: corrupt or incompatible-version blob")

// ErrIncompatible reports a valid artifact that cannot serve the
// requester's name table (not renameable, or the table violates a remap
// invariant). The entry is fine for other requesters; treat as a miss.
var ErrIncompatible = errors.New("codec: artifact incompatible with requested name table")

// segment is one piece of a stored text: either literal prose (ref < 0)
// or a reference to name-table slot ref followed by a literal digit
// suffix (SSA version numbers ride along with the name they decorate).
type segment struct {
	ref int
	lit string
}

// ---- encoding ----

type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) uvarint(v int) { e.b = binary.AppendUvarint(e.b, uint64(v)) }
func (e *enc) str(s string)  { e.uvarint(len(s)); e.b = append(e.b, s...) }
func (e *enc) raw(p []byte)  { e.b = append(e.b, p...) }
func (e *enc) names(ns []string) {
	e.uvarint(len(ns))
	for _, n := range ns {
		e.str(n)
	}
}

func (e *enc) segs(ss []segment) {
	e.uvarint(len(ss))
	for _, s := range ss {
		if s.ref < 0 {
			e.u8(0)
			e.str(s.lit)
		} else {
			e.u8(1)
			e.uvarint(s.ref)
			e.str(s.lit)
		}
	}
}

func (e *enc) seal() []byte {
	sum := sha256.Sum256(e.b)
	return append(e.b, sum[:checksumLen]...)
}

// Encode serializes an artifact under its source name table. When twin
// is non-nil it must be the artifact of the α-renamed twin produced by
// RenameTable/RewriteSource; Encode aligns every text of a against the
// twin's to isolate name occurrences into references (the differential
// rename check). If every text aligns, the entry is marked renameable;
// any divergence — reordered output, a name fused into prose, a twin
// that failed to analyze (twin == nil) — falls back to literal-only
// storage, still exact for sources with an identical table.
func Encode(a *Artifact, names []string, twin *Artifact, twinNames []string) []byte {
	type text struct{ a, b string }
	texts := []text{
		{a.Classification, ""},
		{a.Dependences, ""},
		{a.ExplainDeps, ""},
		{a.ReportJSON, ""},
	}
	segTexts := make([][]segment, len(texts))
	renameable := twin != nil && len(twinNames) == len(names)
	if renameable {
		texts[0].b = twin.Classification
		texts[1].b = twin.Dependences
		texts[2].b = twin.ExplainDeps
		texts[3].b = twin.ReportJSON
		if a.HasDeps != twin.HasDeps || len(a.Explains) != len(twin.Explains) {
			renameable = false
		}
	}
	al := newAligner(names, twinNames)
	for i, t := range texts {
		if renameable {
			if ss, ok := al.align(t.a, t.b); ok {
				segTexts[i] = ss
				continue
			}
			renameable = false
		}
		segTexts[i] = []segment{{ref: -1, lit: t.a}}
	}
	// Explain entries align pairwise: buildArtifact derives both sides'
	// keys from the same AST positions in the same order, so entry k of
	// the twin is the renamed counterpart of entry k here — but only
	// before sorting, so Encode is handed them in derivation order and
	// sorts the stored form itself.
	segExpl := make([][2][]segment, len(a.Explains))
	for i, ex := range a.Explains {
		var nameSegs, textSegs []segment
		if renameable {
			tw := twin.Explains[i]
			ns, ok1 := al.align(ex.Name, tw.Name)
			ts, ok2 := al.align(ex.Text, tw.Text)
			if ok1 && ok2 {
				nameSegs, textSegs = ns, ts
			} else {
				renameable = false
			}
		}
		if nameSegs == nil {
			nameSegs = []segment{{ref: -1, lit: ex.Name}}
			textSegs = []segment{{ref: -1, lit: ex.Text}}
		}
		segExpl[i] = [2][]segment{nameSegs, textSegs}
	}
	if !renameable {
		// A failed check late in the walk leaves earlier texts with ref
		// segments; demote everything to literals so the blob's flag and
		// its segments agree.
		for i, t := range texts {
			segTexts[i] = []segment{{ref: -1, lit: t.a}}
		}
		for i, ex := range a.Explains {
			segExpl[i] = [2][]segment{
				{{ref: -1, lit: ex.Name}},
				{{ref: -1, lit: ex.Text}},
			}
		}
	}

	e := &enc{}
	e.raw([]byte(magicArtifact))
	e.u16(Version)
	var flags byte
	if a.HasDeps {
		flags |= flagHasDeps
	}
	if renameable {
		flags |= flagRenameable
	}
	e.u8(flags)
	e.names(names)
	for _, ss := range segTexts {
		e.segs(ss)
	}
	e.uvarint(len(segExpl))
	for _, pair := range segExpl {
		e.segs(pair[0])
		e.segs(pair[1])
	}
	return e.seal()
}

// EncodeAlias serializes an alias record: "this exact source, under this
// options fingerprint, resolves to structural entry structKey via this
// name table". The table rides in the alias — not the entry — because
// the entry may have been written for an α-renamed sibling.
func EncodeAlias(structKey [32]byte, names []string) []byte {
	e := &enc{}
	e.raw([]byte(magicAlias))
	e.u16(Version)
	e.raw(structKey[:])
	e.names(names)
	return e.seal()
}

// ---- decoding ----

type dec struct {
	b   []byte
	off int
	bad bool
}

func (d *dec) fail() { d.bad = true }

func (d *dec) u8() byte {
	if d.bad || d.off >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.bad || d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) uvarint() int {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 || v > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	d.off += n
	return int(v)
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.bad || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) names() []string {
	n := d.uvarint()
	if d.bad {
		return nil
	}
	ns := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ns = append(ns, d.str())
	}
	return ns
}

func (d *dec) segs(nNames int) []segment {
	n := d.uvarint()
	if d.bad {
		return nil
	}
	ss := make([]segment, 0, n)
	for i := 0; i < n; i++ {
		switch d.u8() {
		case 0:
			ss = append(ss, segment{ref: -1, lit: d.str()})
		case 1:
			ref := d.uvarint()
			if ref >= nNames {
				d.fail()
				return nil
			}
			ss = append(ss, segment{ref: ref, lit: d.str()})
		default:
			d.fail()
			return nil
		}
	}
	return ss
}

// open validates the envelope (magic, version, checksum) and returns a
// decoder positioned at the body.
func open(data []byte, magic string) (*dec, error) {
	if len(data) < len(magic)+2+checksumLen {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	want := sha256.Sum256(body)
	if string(sum) != string(want[:checksumLen]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d := &dec{b: body, off: len(magic)}
	if v := d.u16(); v != Version {
		return nil, fmt.Errorf("%w: schema version %d, want %d", ErrCorrupt, v, Version)
	}
	return d, nil
}

// Decode reconstructs an artifact for the requesting source's name
// table. When names matches the stored table byte-for-byte the texts
// are reproduced verbatim. Otherwise the entry must be renameable and
// the new table must satisfy the remap invariants (same length, same
// relative sort order, no digit-ending names); the texts are then
// rebuilt with every name reference substituted. Violations return
// ErrIncompatible; a damaged blob returns ErrCorrupt.
func Decode(data []byte, names []string) (*Artifact, error) {
	d, err := open(data, magicArtifact)
	if err != nil {
		return nil, err
	}
	flags := d.u8()
	stored := d.names()
	nTexts := [4][]segment{}
	for i := range nTexts {
		nTexts[i] = d.segs(len(stored))
	}
	nExpl := d.uvarint()
	if d.bad || nExpl > len(d.b) {
		return nil, fmt.Errorf("%w: malformed body", ErrCorrupt)
	}
	expl := make([][2][]segment, 0, nExpl)
	for i := 0; i < nExpl; i++ {
		ns := d.segs(len(stored))
		ts := d.segs(len(stored))
		expl = append(expl, [2][]segment{ns, ts})
	}
	if d.bad {
		return nil, fmt.Errorf("%w: malformed body", ErrCorrupt)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}

	table := stored
	if !sameTable(stored, names) {
		if flags&flagRenameable == 0 {
			return nil, fmt.Errorf("%w: entry is not renameable", ErrIncompatible)
		}
		if !remapOK(stored, names) {
			return nil, fmt.Errorf("%w: table remap invariants violated", ErrIncompatible)
		}
		table = names
	}

	a := &Artifact{
		HasDeps:        flags&flagHasDeps != 0,
		Renameable:     flags&flagRenameable != 0,
		Classification: render(nTexts[0], table),
		Dependences:    render(nTexts[1], table),
		ExplainDeps:    render(nTexts[2], table),
		ReportJSON:     render(nTexts[3], table),
	}
	a.Explains = make([]ExplainEntry, 0, len(expl))
	for _, pair := range expl {
		a.Explains = append(a.Explains, ExplainEntry{
			Name: render(pair[0], table),
			Text: render(pair[1], table),
		})
	}
	SortExplains(a.Explains)
	return a, nil
}

// DecodeAlias reads an alias record back into its structural key and
// the name table of the source that wrote it.
func DecodeAlias(data []byte) ([32]byte, []string, error) {
	var key [32]byte
	d, err := open(data, magicAlias)
	if err != nil {
		return key, nil, err
	}
	if d.off+32 > len(d.b) {
		return key, nil, fmt.Errorf("%w: truncated key", ErrCorrupt)
	}
	copy(key[:], d.b[d.off:d.off+32])
	d.off += 32
	ns := d.names()
	if d.bad {
		return key, nil, fmt.Errorf("%w: malformed name table", ErrCorrupt)
	}
	if d.off != len(d.b) {
		return key, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b)-d.off)
	}
	return key, ns, nil
}

func render(ss []segment, table []string) string {
	n := 0
	for _, s := range ss {
		if s.ref >= 0 {
			n += len(table[s.ref])
		}
		n += len(s.lit)
	}
	out := make([]byte, 0, n)
	for _, s := range ss {
		if s.ref >= 0 {
			out = append(out, table[s.ref]...)
		}
		out = append(out, s.lit...)
	}
	return string(out)
}

func sameTable(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// remapOK checks the invariants under which substituting new for old in
// the stored texts reproduces, byte for byte, what a fresh analysis of
// the renamed source would render:
//
//   - same table length (guaranteed by matching structural hash, but
//     re-checked — the blob came off a disk we don't trust);
//   - pairwise relative order preserved, because renderers sort by
//     name (φ placement via interned variable order, dependence array
//     listings) and a reordering would reorder their output;
//   - no replaced name ends in a digit, because provenance keys derive
//     a base name by stripping trailing digits and a digit-ending name
//     shifts that derivation in the fresh run. A name the remap leaves
//     unchanged (a variable both sources happen to call the same, or a
//     digit-suffixed original like "i0") is exempt: the fresh run
//     treats it exactly as the stored one did.
func remapOK(old, new []string) bool {
	if len(old) != len(new) {
		return false
	}
	for i, n := range new {
		if n == "" {
			return false
		}
		if n == old[i] {
			continue
		}
		if c := n[len(n)-1]; c >= '0' && c <= '9' {
			return false
		}
	}
	for i := range old {
		for j := i + 1; j < len(old); j++ {
			if (old[i] < old[j]) != (new[i] < new[j]) {
				return false
			}
		}
	}
	return true
}
