package codec

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"beyondiv/internal/parse"
)

const prog = `
s = 0
L1: for i = 1 to n {
    a[i] = a[i] + s
    s = s + 2 * i
}
`

// Same program, reformatted and commented: the structural hash must not
// move and the name table must come out identical.
const progNoisy = `s=0
// running sum
L1: for i = 1 to n { a[i] = a[i] + s; s = s + 2*i }  // body
`

// Same shape, every variable renamed in first-occurrence order
// (s->t, i->j, n->m, a->b). The label stays: labels are part of the
// structure, not the name table.
const progRenamed = `
t = 0
L1: for j = 1 to m {
    b[j] = b[j] + t
    t = t + 2 * j
}
`

func TestStructuralHashIgnoresFormatting(t *testing.T) {
	h1, n1 := StructuralHash(parse.MustParse(prog))
	h2, n2 := StructuralHash(parse.MustParse(progNoisy))
	if h1 != h2 {
		t.Fatalf("formatting changed the structural hash")
	}
	if !sameTable(n1, n2) {
		t.Fatalf("name tables differ: %v vs %v", n1, n2)
	}
	if len(n1) == 0 {
		t.Fatalf("empty name table for %q", prog)
	}
}

func TestStructuralHashAlphaRename(t *testing.T) {
	h1, n1 := StructuralHash(parse.MustParse(prog))
	h2, n2 := StructuralHash(parse.MustParse(progRenamed))
	if h1 != h2 {
		t.Fatalf("alpha-renaming changed the structural hash")
	}
	if sameTable(n1, n2) {
		t.Fatalf("renamed program produced the same name table %v", n1)
	}
	if len(n1) != len(n2) {
		t.Fatalf("table lengths differ: %v vs %v", n1, n2)
	}
}

func TestStructuralHashDistinguishes(t *testing.T) {
	base := parse.MustParse(prog)
	variants := []string{
		"s = 0\nL1: for i = 1 to n {\n a[i] = a[i] + s\n s = s + 3 * i\n}\n",      // literal 2 -> 3
		"s = 0\nL1: for i = 1 to n {\n a[i] = a[i] - s\n s = s + 2 * i\n}\n",      // + -> -
		"s = 0\nL1: for i = 1 to n {\n a[i] = a[i] + s\n}\n",                      // dropped stmt
		"s = 0\nL1: for i = 1 to n by 1 {\n a[i] = a[i] + s\n s = s + 2 * i\n}\n", // explicit step
		"s = 0\nL1: for i = 1 to n {\n a[s] = a[i] + s\n s = s + 2 * i\n}\n",      // different name use
		"s = 0\nL7: for i = 1 to n {\n a[i] = a[i] + s\n s = s + 2 * i\n}\n",      // relabeled loop
	}
	h0, _ := StructuralHash(base)
	for _, v := range variants {
		h, _ := StructuralHash(parse.MustParse(v))
		if h == h0 {
			t.Errorf("variant hashed identically to base:\n%s", v)
		}
	}
}

func TestRenameTable(t *testing.T) {
	names := []string{"s", "L1", "i", "n", "a"}
	twin := RenameTable(names)
	if len(twin) != len(names) {
		t.Fatalf("twin table length %d, want %d", len(twin), len(names))
	}
	seen := map[string]bool{}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if (names[i] < names[j]) != (twin[i] < twin[j]) {
				t.Errorf("sort order not preserved: %q/%q vs %q/%q",
					names[i], names[j], twin[i], twin[j])
			}
		}
		if seen[twin[i]] {
			t.Errorf("duplicate twin name %q", twin[i])
		}
		seen[twin[i]] = true
		if len(twin[i]) != len(twin[0]) {
			t.Errorf("twin names not fixed-width: %v", twin)
		}
	}
	// A table already using the default prefix forces a longer one.
	twin2 := RenameTable([]string{"zqaaa", "x"})
	for _, n := range twin2 {
		if !strings.HasPrefix(n, "zqq") {
			t.Errorf("prefix did not grow past clash: %v", twin2)
		}
	}
}

func TestRewriteSource(t *testing.T) {
	f := parse.MustParse(prog)
	_, names := StructuralHash(f)
	twin := RenameTable(names)
	src := RewriteSource(f.String(), names, twin)
	for _, n := range names {
		// No original name survives as a whole token.
		found := false
		forEachChunk(src, func(tok string, isIdent bool) {
			if isIdent && tok == n {
				found = true
			}
		})
		if found {
			t.Errorf("name %q survived rewriting:\n%s", n, src)
		}
	}
	if _, err := parse.File(src); err != nil {
		t.Fatalf("rewritten source does not parse: %v\n%s", err, src)
	}
	h1, _ := StructuralHash(f)
	h2, _ := StructuralHash(parse.MustParse(src))
	if h1 != h2 {
		t.Fatalf("rewriting changed the structural hash")
	}
}

// fixture builds a hand-rolled renameable artifact pair the way the
// facade would: names {i, n}, twin {zqaaa, zqaab}, texts mentioning i
// and its SSA instance i1.
func fixture() (a *Artifact, names []string, tw *Artifact, twin []string) {
	names = []string{"i", "n"}
	twin = RenameTable(names)
	a = &Artifact{
		Classification: "loop L (depth 1) trip=n\n  i1 = (1, +1, n)\n",
		HasDeps:        true,
		Dependences:    "no dependences involving i\n",
		ExplainDeps:    "i1 strides by 1 up to n\n",
		ReportJSON:     `[{"values":[{"name":"i1"}]}]`,
		Explains: []ExplainEntry{
			{Name: "i", Text: "i1: basic IV\n"},
			{Name: "i1", Text: "i1: basic IV\n"},
		},
	}
	tw = &Artifact{
		Classification: "loop L (depth 1) trip=zqaab\n  zqaaa1 = (1, +1, zqaab)\n",
		HasDeps:        true,
		Dependences:    "no dependences involving zqaaa\n",
		ExplainDeps:    "zqaaa1 strides by 1 up to zqaab\n",
		ReportJSON:     `[{"values":[{"name":"zqaaa1"}]}]`,
		Explains: []ExplainEntry{
			{Name: "zqaaa", Text: "zqaaa1: basic IV\n"},
			{Name: "zqaaa1", Text: "zqaaa1: basic IV\n"},
		},
	}
	return a, names, tw, twin
}

func artifactsEqual(a, b *Artifact) bool {
	if a.Classification != b.Classification || a.HasDeps != b.HasDeps ||
		a.Dependences != b.Dependences || a.ExplainDeps != b.ExplainDeps ||
		a.ReportJSON != b.ReportJSON || len(a.Explains) != len(b.Explains) {
		return false
	}
	for i := range a.Explains {
		if a.Explains[i] != b.Explains[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	a, names, tw, twin := fixture()
	data := Encode(a, names, tw, twin)
	got, err := Decode(data, names)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Renameable {
		t.Fatalf("differential check should have passed for the fixture")
	}
	if !artifactsEqual(a, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, a)
	}
}

func TestDecodeRemap(t *testing.T) {
	a, names, tw, twin := fixture()
	data := Encode(a, names, tw, twin)
	// Order-preserving remap {i,n} -> {j,p}.
	got, err := Decode(data, []string{"j", "p"})
	if err != nil {
		t.Fatalf("Decode remap: %v", err)
	}
	if want := "loop L (depth 1) trip=p\n  j1 = (1, +1, p)\n"; got.Classification != want {
		t.Fatalf("remapped classification:\n got %q\nwant %q", got.Classification, want)
	}
	if txt, ok := got.Explain("j1"); !ok || txt != "j1: basic IV\n" {
		t.Fatalf("remapped explain lookup: %q, %v", txt, ok)
	}
	if _, ok := got.Explain("i1"); ok {
		t.Fatalf("old name still resolves after remap")
	}

	// Order-violating table: {i,n} -> {z,p} flips the relative order.
	if _, err := Decode(data, []string{"z", "p"}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("order-violating remap: got %v, want ErrIncompatible", err)
	}
	// Digit-ending name: base-key derivation would shift.
	if _, err := Decode(data, []string{"j", "p1"}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("digit-ending remap: got %v, want ErrIncompatible", err)
	}
	// Wrong arity.
	if _, err := Decode(data, []string{"j"}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("short table: got %v, want ErrIncompatible", err)
	}
}

func TestDecodeNonRenameable(t *testing.T) {
	a, names, _, _ := fixture()
	data := Encode(a, names, nil, nil) // no twin: literal-only
	got, err := Decode(data, names)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Renameable {
		t.Fatalf("twinless encode must not be renameable")
	}
	if !artifactsEqual(a, got) {
		t.Fatalf("literal round trip mismatch")
	}
	if _, err := Decode(data, []string{"j", "p"}); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("remap of non-renameable entry: got %v, want ErrIncompatible", err)
	}
}

func TestEncodeDivergentTwinFallsBack(t *testing.T) {
	a, names, tw, twin := fixture()
	// Sabotage the twin: prose differs in a way that is not a rename.
	tw.Dependences = "completely different text\n"
	data := Encode(a, names, tw, twin)
	got, err := Decode(data, names)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Renameable {
		t.Fatalf("divergent twin must disable renaming")
	}
	if !artifactsEqual(a, got) {
		t.Fatalf("fallback must still store the original texts exactly")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	a, names, tw, twin := fixture()
	data := Encode(a, names, tw, twin)

	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bitflip", func(b []byte) []byte { b[len(b)/3] ^= 0x40; return b }},
		{"badmagic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"trailing", func(b []byte) []byte { return append(b, 0) }},
		{"version", func(b []byte) []byte {
			b[4] ^= 0xff // version field; checksum now also mismatches
			return b
		}},
	} {
		b := tc.mut(bytes.Clone(data))
		if _, err := Decode(b, names); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func TestAliasRoundTrip(t *testing.T) {
	var key [32]byte
	for i := range key {
		key[i] = byte(i * 7)
	}
	names := []string{"i", "n", "a"}
	data := EncodeAlias(key, names)
	gotKey, gotNames, err := DecodeAlias(data)
	if err != nil {
		t.Fatalf("DecodeAlias: %v", err)
	}
	if gotKey != key || !sameTable(gotNames, names) {
		t.Fatalf("alias round trip mismatch: %x %v", gotKey, gotNames)
	}
	data[10] ^= 0x01
	if _, _, err := DecodeAlias(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted alias: got %v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeAlias(data[:8]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated alias: got %v, want ErrCorrupt", err)
	}
}

// FuzzArtifactCodec exercises both directions: arbitrary artifacts must
// round-trip exactly through Encode/Decode, and arbitrary bytes must
// decode to an error, never a panic or a fabricated artifact.
func FuzzArtifactCodec(f *testing.F) {
	a, names, tw, twin := fixture()
	f.Add(a.Classification, a.Dependences, a.ExplainDeps, a.ReportJSON,
		"i", "i1: basic IV\n", true, Encode(a, names, tw, twin))
	f.Add("", "", "", "", "", "", false, []byte("BIVC junk"))
	f.Fuzz(func(t *testing.T, cls, deps, expl, repJSON, exName, exText string, hasDeps bool, raw []byte) {
		art := &Artifact{
			Classification: cls,
			HasDeps:        hasDeps,
			Dependences:    deps,
			ExplainDeps:    expl,
			ReportJSON:     repJSON,
			Explains:       []ExplainEntry{{Name: exName, Text: exText}},
		}
		data := Encode(art, names, nil, nil)
		got, err := Decode(data, names)
		if err != nil {
			t.Fatalf("decode of fresh encode failed: %v", err)
		}
		if !artifactsEqual(art, got) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, art)
		}
		// Arbitrary bytes: must error or produce a valid artifact,
		// never panic.
		if a2, err := Decode(raw, names); err == nil && a2 == nil {
			t.Fatalf("nil artifact with nil error")
		}
		if _, _, err := DecodeAlias(raw); err == nil && len(raw) == 0 {
			t.Fatalf("empty alias decoded")
		}
	})
}
