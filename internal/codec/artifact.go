package codec

import "sort"

// Artifact is the cacheable subset of an analysis run: every
// deterministic text the facade can serve without live SSA — the
// classification and dependence reports, the structured per-loop report
// JSON, and the per-variable provenance chains. It deliberately excludes
// the object graphs (SSA, CFG, loop forest): those are cheap to rebuild
// and impossible to version stably, while the rendered results are the
// contract the rest of the system consumes.
type Artifact struct {
	Classification string // ClassificationReport text
	HasDeps        bool   // dependence pass ran (Dependences/ExplainDeps meaningful)
	Dependences    string // DependenceReport text
	ExplainDeps    string // ExplainAllDeps text
	ReportJSON     string // json.Marshal of the []iv.LoopReport slice
	Explains       []ExplainEntry

	// Renameable records that the differential rename check passed at
	// encode time: every occurrence of a source identifier in every text
	// was isolated into a name reference, so the entry may be served to
	// α-renamed duplicates by table substitution. Entries that fail the
	// check still serve sources with a byte-identical name table.
	Renameable bool
}

// ExplainEntry is one provenance lookup: Name is any key ExplainVar
// answers non-trivially (an SSA value name, its digit-stripped base, or
// the source variable), Text the full chain it renders.
type ExplainEntry struct {
	Name string
	Text string
}

// SortExplains orders entries for the binary-searched Explain lookup.
// Encode requires sorted entries; Decode re-sorts after a table remap
// (remapped keys need not preserve the stored order).
func SortExplains(es []ExplainEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Name < es[j].Name })
}

// Explain returns the provenance text stored under name. The boolean is
// false when the name matched nothing at analysis time — mirroring
// ExplainVar's empty answer for unknown variables.
func (a *Artifact) Explain(name string) (string, bool) {
	i := sort.Search(len(a.Explains), func(i int) bool { return a.Explains[i].Name >= name })
	if i < len(a.Explains) && a.Explains[i].Name == name {
		return a.Explains[i].Text, true
	}
	return "", false
}
