package codec

import (
	"sort"
	"strings"
)

// The differential rename check: before an entry is marked renameable,
// the encoder re-analyzes an automatically α-renamed twin of the
// program and aligns every rendered text of the original against the
// twin's, token by token. Wherever the two differ, the difference must
// be exactly "original name (plus an optional digit suffix)" versus
// "that name's twin replacement (plus the same suffix)" — that token
// becomes a name reference. Any other divergence means some renderer is
// name-sensitive in a way substitution can't reproduce, and the entry
// is stored literal-only. The check is empirical, so it stays correct
// as renderers evolve: nothing here enumerates renderer vocabulary.

// renameWidth is the fixed code length appended to the twin prefix.
// Fixed width makes the twin side of an alignment uniquely parseable
// into name + digit suffix even when original names are prefixes of
// one another (x vs x1).
const renameWidth = 3

const maxRenameable = 26 * 26 * 26

// RenameTable builds the twin name table: names[i] is replaced by
// prefix + a base-26 letter code of names[i]'s rank in sorted order, so
// the twin table sorts exactly like the original — renderers that order
// output by name order it identically for both. The prefix starts at
// "zq" and grows a "q" until no original name starts with it, keeping
// twin tokens disjoint from original ones. Returns nil when the table
// is too large to code (such programs are stored literal-only).
func RenameTable(names []string) []string {
	if len(names) > maxRenameable {
		return nil
	}
	prefix := "zq"
	for {
		clash := false
		for _, n := range names {
			if strings.HasPrefix(n, prefix) {
				clash = true
				break
			}
		}
		if !clash {
			break
		}
		prefix += "q"
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	rank := make(map[string]int, len(sorted))
	for i, n := range sorted {
		rank[n] = i
	}
	out := make([]string, len(names))
	for i, n := range names {
		r := rank[n]
		out[i] = prefix + string([]byte{
			'a' + byte(r/676),
			'a' + byte(r/26%26),
			'a' + byte(r%26),
		})
	}
	return out
}

// RewriteSource produces the twin program's source: the canonical
// rendering of the original with every identifier token that matches a
// table name replaced by its twin. Keywords can never match (they
// parsed as keywords, not identifiers), and the canonical rendering
// carries no comments, so whole-token replacement is exact.
func RewriteSource(src string, names, twin []string) string {
	repl := make(map[string]string, len(names))
	for i, n := range names {
		repl[n] = twin[i]
	}
	var sb strings.Builder
	sb.Grow(len(src) + len(src)/2)
	forEachChunk(src, func(tok string, isIdent bool) {
		if isIdent {
			if t, ok := repl[tok]; ok {
				sb.WriteString(t)
				return
			}
		}
		sb.WriteString(tok)
	})
	return sb.String()
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// forEachChunk splits s into maximal identifier tokens
// ([A-Za-z_][A-Za-z0-9_]*) and the non-identifier runs between them.
func forEachChunk(s string, fn func(tok string, isIdent bool)) {
	i := 0
	for i < len(s) {
		start := i
		if isIdentStart(s[i]) {
			for i < len(s) && isIdentChar(s[i]) {
				i++
			}
			fn(s[start:i], true)
		} else {
			for i < len(s) && !isIdentStart(s[i]) {
				i++
			}
			fn(s[start:i], false)
		}
	}
}

// aligner matches an original text against its twin's rendering.
type aligner struct {
	names   []string
	nameIdx map[string]int // original name -> table slot
	twinIdx map[string]int // twin name -> table slot
	width   int            // uniform twin-name byte length, 0 if unusable
}

func newAligner(names, twin []string) *aligner {
	a := &aligner{
		names:   names,
		nameIdx: make(map[string]int, len(names)),
		twinIdx: make(map[string]int, len(twin)),
	}
	if len(twin) != len(names) || len(twin) == 0 {
		return a
	}
	a.width = len(twin[0])
	for i := range names {
		a.nameIdx[names[i]] = i
		a.twinIdx[twin[i]] = i
		if len(twin[i]) != a.width {
			a.width = 0
		}
	}
	return a
}

type chunk struct {
	s     string
	ident bool
}

func chunks(s string) []chunk {
	var cs []chunk
	forEachChunk(s, func(tok string, isIdent bool) {
		cs = append(cs, chunk{tok, isIdent})
	})
	return cs
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// align segments a into literals and name references by comparing it
// chunkwise against the twin rendering b. Returns ok=false on any
// divergence the segment model cannot express.
func (al *aligner) align(a, b string) ([]segment, bool) {
	if a == b && !al.mentionsName(a) {
		// Identical and name-free: pure prose.
		return []segment{{ref: -1, lit: a}}, true
	}
	ca, cb := chunks(a), chunks(b)
	if len(ca) != len(cb) {
		return nil, false
	}
	var segs []segment
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			segs = append(segs, segment{ref: -1, lit: lit.String()})
			lit.Reset()
		}
	}
	for i := range ca {
		x, y := ca[i], cb[i]
		if x.ident != y.ident {
			return nil, false
		}
		if !x.ident {
			if x.s != y.s {
				return nil, false
			}
			lit.WriteString(x.s)
			continue
		}
		if x.s == y.s {
			// Same identifier token on both sides. If it is (or starts
			// with) a table name the renderer failed to rename it — the
			// twin should differ here — so substitution would corrupt
			// it. Treat as prose only if it is name-free.
			if al.tokenUsesName(x.s) {
				return nil, false
			}
			lit.WriteString(x.s)
			continue
		}
		// Diverging identifiers: the twin side must parse uniquely as
		// twinName + digits, and the original side must be exactly the
		// corresponding name + the same digits.
		if al.width == 0 || len(y.s) < al.width {
			return nil, false
		}
		k, ok := al.twinIdx[y.s[:al.width]]
		suffix := y.s[al.width:]
		if !ok || !allDigits(suffix) {
			return nil, false
		}
		if x.s != al.names[k]+suffix {
			return nil, false
		}
		flush()
		segs = append(segs, segment{ref: k, lit: suffix})
	}
	flush()
	if segs == nil {
		segs = []segment{{ref: -1, lit: ""}}
	}
	return segs, true
}

// tokenUsesName reports whether an identifier token is a table name or
// a table name with a digit suffix — i.e. something a remap must touch.
func (al *aligner) tokenUsesName(tok string) bool {
	if _, ok := al.nameIdx[tok]; ok {
		return true
	}
	base := strings.TrimRight(tok, "0123456789")
	if base != tok {
		if _, ok := al.nameIdx[base]; ok {
			return true
		}
	}
	return false
}

// mentionsName reports whether any identifier token in s would need
// remapping — the fast path for texts with no name content at all.
func (al *aligner) mentionsName(s string) bool {
	found := false
	forEachChunk(s, func(tok string, isIdent bool) {
		if isIdent && al.tokenUsesName(tok) {
			found = true
		}
	})
	return found
}
