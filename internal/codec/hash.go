// Package codec gives analysis results a durable form: a stable,
// versioned binary encoding of the cacheable subset of an engine run
// (the rendered classification and dependence reports, the structured
// per-loop report data, and the per-variable provenance chains),
// together with the canonical structural hash that content-addresses
// them on disk.
//
// Two properties carry the whole design:
//
//   - StructuralHash hashes the parsed AST with interned identifiers,
//     so whitespace and comment edits — and α-renamings that intern to
//     the same shape — produce the same key.
//   - Every stored text is segmented into name references and literal
//     prose, so an entry written for one source can be served,
//     byte-identically, for an α-renamed duplicate by substituting its
//     name table. Segmentation is derived by a differential rename
//     check (see Encode), never by guessing which tokens are names; an
//     entry that fails the check is simply marked non-renameable and
//     serves only sources with an identical name table.
//
// Decoding validates a schema version and a checksum: any mismatch —
// truncation, corruption, a codec from another release — surfaces as an
// error the engine answers with re-analysis, never a wrong result.
package codec

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"beyondiv/internal/ast"
)

// structHasher accumulates the canonical structure stream: node tags,
// operators and literal values verbatim, identifiers as intern indices.
type structHasher struct {
	h     hash.Hash
	idx   map[string]int
	names []string
	buf   [binary.MaxVarintLen64]byte
}

// StructuralHash content-addresses the program's shape: a SHA-256 over
// the AST with every identifier (scalar or array) replaced by its
// first-occurrence intern index, plus the ordered name table those
// indices refer to. Formatting never reaches the hash, and two
// α-renamed programs hash identically — their difference is exactly
// the returned table.
//
// Loop labels are deliberately hashed literally and kept out of the
// table: a label is the loop's name in every rendered report (the
// paper's "(L1, base, step)" tuples), so programs differing only in
// labels render differently and must not share an entry — and label
// remaps would end in digits, which the suffix-segmented text encoding
// cannot express (see remapOK).
func StructuralHash(f *ast.File) ([32]byte, []string) {
	s := &structHasher{h: sha256.New(), idx: map[string]int{}}
	s.varint(int64(len(f.Stmts)))
	for _, st := range f.Stmts {
		s.stmt(st)
	}
	var sum [32]byte
	s.h.Sum(sum[:0])
	return sum, s.names
}

// Structure-stream tags. These are part of the on-disk key derivation:
// renumbering them orphans every existing store entry (harmlessly — the
// entries just stop being found), so new node kinds must append.
const (
	tagAssign = iota + 1
	tagFor
	tagLoop
	tagWhile
	tagIf
	tagExit
	tagIdent
	tagNum
	tagBin
	tagUnary
	tagIndex
	tagNoLabel
	tagLabel
	tagNoStep
	tagStep
	tagNoElse
	tagElse
)

func (s *structHasher) tag(t byte) { s.h.Write([]byte{t}) }

func (s *structHasher) varint(v int64) {
	n := binary.PutVarint(s.buf[:], v)
	s.h.Write(s.buf[:n])
}

// name interns an identifier and hashes its index.
func (s *structHasher) name(n string) {
	i, ok := s.idx[n]
	if !ok {
		i = len(s.names)
		s.idx[n] = i
		s.names = append(s.names, n)
	}
	s.varint(int64(i))
}

func (s *structHasher) label(l string) {
	if l == "" {
		s.tag(tagNoLabel)
		return
	}
	s.tag(tagLabel)
	s.varint(int64(len(l)))
	s.h.Write([]byte(l))
}

func (s *structHasher) stmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.Assign:
		s.tag(tagAssign)
		s.expr(v.LHS)
		s.expr(v.RHS)
	case *ast.For:
		s.tag(tagFor)
		s.label(v.Label)
		s.name(v.Var.Name)
		s.expr(v.Lo)
		s.expr(v.Hi)
		if v.Step == nil {
			s.tag(tagNoStep)
		} else {
			s.tag(tagStep)
			s.expr(v.Step)
		}
		s.block(v.Body)
	case *ast.Loop:
		s.tag(tagLoop)
		s.label(v.Label)
		s.block(v.Body)
	case *ast.While:
		s.tag(tagWhile)
		s.label(v.Label)
		s.expr(v.Cond)
		s.block(v.Body)
	case *ast.If:
		s.tag(tagIf)
		s.expr(v.Cond)
		s.block(v.Then)
		if v.Else == nil {
			s.tag(tagNoElse)
		} else {
			s.tag(tagElse)
			s.block(v.Else)
		}
	case *ast.Exit:
		s.tag(tagExit)
	case *ast.Block:
		s.block(v)
	}
}

func (s *structHasher) block(b *ast.Block) {
	s.varint(int64(len(b.Stmts)))
	for _, st := range b.Stmts {
		s.stmt(st)
	}
}

func (s *structHasher) expr(e ast.Expr) {
	switch v := e.(type) {
	case *ast.Ident:
		s.tag(tagIdent)
		s.name(v.Name)
	case *ast.Num:
		s.tag(tagNum)
		s.varint(v.Value)
	case *ast.Bin:
		s.tag(tagBin)
		s.varint(int64(v.Op))
		s.expr(v.X)
		s.expr(v.Y)
	case *ast.Unary:
		s.tag(tagUnary)
		s.varint(int64(v.Op))
		s.expr(v.X)
	case *ast.Index:
		s.tag(tagIndex)
		s.name(v.Name)
		s.expr(v.Sub)
	}
}
