package classical

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/iv"
	"beyondiv/internal/loops"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
	"beyondiv/internal/rational"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(cfgbuild.Build(file))
}

func loopByLabel(r *Result, label string) *loops.Loop {
	for _, l := range r.Forest.Loops {
		if l.Label == label {
			return l
		}
	}
	return nil
}

func TestBasicIV(t *testing.T) {
	r := analyzeSrc(t, `
i = 0
L1: loop {
    i = i + 3
    if i > 100 { exit }
}
`)
	l := loopByLabel(r, "L1")
	f := r.Find(l, "i")
	if f == nil || f.Kind != Basic || f.Step != 3 {
		t.Errorf("i = %v, want basic step 3", f)
	}
}

func TestBasicDecrement(t *testing.T) {
	r := analyzeSrc(t, "i = 100\nL1: loop { i = i - 2\nif i < 0 { exit } }")
	f := r.Find(loopByLabel(r, "L1"), "i")
	if f == nil || f.Kind != Basic || f.Step != -2 {
		t.Errorf("i = %v, want basic step -2", f)
	}
}

func TestDerivedChain(t *testing.T) {
	// j derives from z; d derives from j. Since the scan visits names
	// alphabetically, d is examined before j exists and must wait for
	// the second fixpoint round — the iterative cost the paper removes.
	r := analyzeSrc(t, `
L1: for z = 1 to n {
    j = 2 * z + 1
    d = j + 5
    b[d] = 0
}
`)
	l := loopByLabel(r, "L1")
	j := r.Find(l, "j")
	if j == nil || j.Kind != Derived || j.Base != "z" || j.Factor != 2 || j.Offset != 1 {
		t.Errorf("j = %v, want derived 2*z+1", j)
	}
	d := r.Find(l, "d")
	if d == nil || d.Kind != Derived || d.Base != "j" || d.Offset != 5 {
		t.Errorf("d = %v, want derived j+5", d)
	}
	if d.Round <= j.Round {
		t.Errorf("d found in round %d, j in %d: chain should need an extra round", d.Round, j.Round)
	}
	if r.Rounds < 3 {
		t.Errorf("rounds = %d, want >= 3 (two productive + one quiescent)", r.Rounds)
	}
}

func TestWrapAroundPattern(t *testing.T) {
	r := analyzeSrc(t, `
iml = n
L9: for i = 1 to n {
    a[i] = a[iml]
    iml = i
}
`)
	f := r.Find(loopByLabel(r, "L9"), "iml")
	if f == nil || f.Kind != WrapAround || f.Base != "i" {
		t.Errorf("iml = %v, want wrap-around of i", f)
	}
}

func TestFlipFlopPattern(t *testing.T) {
	r := analyzeSrc(t, `
j = 1
L12: for it = 1 to n {
    a[j] = it
    j = 3 - j
}
`)
	f := r.Find(loopByLabel(r, "L12"), "j")
	if f == nil || f.Kind != FlipFlop {
		t.Errorf("j = %v, want flip-flop", f)
	}
}

// TestClassicalMissesWhatSSAFinds documents the baseline's gaps: equal
// conditional increments (Figure 3), mutual pairs (L2), and periodic
// rotations are beyond the pattern matcher but inside the unified
// algorithm.
func TestClassicalMissesWhatSSAFinds(t *testing.T) {
	// Figure 3: two conditional stores; the classical matcher wants one.
	r := analyzeSrc(t, `
i = 1
L8: loop {
    if a[i] > 0 { i = i + 2 } else { i = i + 2 }
    if i > n { exit }
}
`)
	if f := r.Find(loopByLabel(r, "L8"), "i"); f != nil {
		t.Errorf("classical unexpectedly classified conditional i: %v", f)
	}

	// Mutual pair j = i + c / i = j + k: neither is self-incrementing.
	r = analyzeSrc(t, `
j = n
L2: loop {
    i = j + 2
    j = i + 3
    if j > m { exit }
}
`)
	l := loopByLabel(r, "L2")
	if f := r.Find(l, "i"); f != nil && f.Kind == Basic {
		t.Errorf("classical found mutual i as basic: %v", f)
	}
}

// TestAgreementWithUnified: wherever the classical matcher claims a
// basic IV, the SSA classifier's header φ for that variable is linear
// with the same step.
func TestAgreementWithUnified(t *testing.T) {
	srcs := []string{
		"i = 0\nL1: loop { i = i + 3\nif i > 100 { exit } }",
		"i = 100\nL1: loop { i = i - 7\nif i < 0 { exit } }",
		progen.StraightLineLoop(10),
		progen.MixedClasses(2),
	}
	for _, src := range srcs {
		checkAgreement(t, src)
	}
}

func checkAgreement(t *testing.T, src string) {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	cr := Analyze(cfgbuild.Build(file))

	ua, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	for l, list := range cr.ByLoop {
		ul := ua.LoopByLabel(l.Label)
		if ul == nil {
			t.Fatalf("loop %s missing from unified analysis", l.Label)
		}
		for _, f := range list {
			if f.Kind != Basic {
				continue
			}
			phi := headerPhiOf(ua, ul, f.Var)
			if phi == nil {
				continue // variable's φ pruned (dead); nothing to compare
			}
			cls := ua.ClassOf(ul, phi)
			if cls.Kind != iv.Linear {
				t.Errorf("%s in %s: classical basic but unified %s\n%s", f.Var, l.Label, cls, src)
				continue
			}
			if s, ok := cls.Step.ConstVal(); !ok || !s.Equal(rational.FromInt(f.Step)) {
				t.Errorf("%s in %s: classical step %d, unified %s", f.Var, l.Label, f.Step, cls.Step)
			}
		}
	}
}

func headerPhiOf(a *iv.Analysis, l *loops.Loop, name string) *ir.Value {
	for _, v := range l.Header.Values {
		if v.Op == ir.OpPhi && a.SSA.VarOf(v) == name {
			return v
		}
	}
	return nil
}

// TestQuickAgreement runs the agreement check over random programs.
func TestQuickAgreement(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		src := gen.Program(seed)
		file, err := parse.File(src)
		if err != nil {
			return false
		}
		cr := Analyze(cfgbuild.Build(file))
		ua, err := iv.AnalyzeProgram(src)
		if err != nil {
			return false
		}
		for l, list := range cr.ByLoop {
			ul := ua.LoopByLabel(l.Label)
			if ul == nil {
				return false
			}
			for _, f := range list {
				if f.Kind != Basic {
					continue
				}
				phi := headerPhiOf(ua, ul, f.Var)
				if phi == nil {
					continue
				}
				cls := ua.ClassOf(ul, phi)
				if cls.Kind != iv.Linear {
					t.Logf("seed %d: %s basic vs %s\n%s", seed, f.Var, cls, src)
					return false
				}
				if s, ok := cls.Step.ConstVal(); !ok || !s.Equal(rational.FromInt(f.Step)) {
					t.Logf("seed %d: step mismatch for %s\n%s", seed, f.Var, src)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkClassical(b *testing.B) {
	file, err := parse.File(progen.MixedClasses(10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(cfgbuild.Build(file))
	}
}

// TestCoverageComparison pins the paper's qualitative claim (E17a in
// EXPERIMENTS.md): on a workload exercising every behaviour class, the
// unified SSA classifier covers strictly more than the classical
// matcher, which sees only basic/derived/wrap-around/flip-flop shapes.
func TestCoverageComparison(t *testing.T) {
	src := progen.MixedClasses(10)

	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	cr := Analyze(cfgbuild.Build(file))
	classicalFound := 0
	for _, list := range cr.ByLoop {
		classicalFound += len(list)
	}

	ua, err := iv.AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	unifiedKinds := map[iv.Class]int{}
	unifiedFound := 0
	for _, l := range ua.Forest.Loops {
		for v, c := range ua.LoopClassifications(l) {
			if v.Name == "" || c.Kind == iv.Unknown {
				continue
			}
			unifiedFound++
			unifiedKinds[c.Kind]++
		}
	}

	if classicalFound >= unifiedFound {
		t.Errorf("classical found %d, unified %d — unified must cover strictly more",
			classicalFound, unifiedFound)
	}
	// The unified side must include every extended class the workload
	// plants; the classical side cannot see these at all.
	for _, k := range []iv.Class{iv.Polynomial, iv.Geometric, iv.Periodic, iv.Monotonic} {
		if unifiedKinds[k] == 0 {
			t.Errorf("unified analysis missing class %s on the mixed workload", k)
		}
	}
	t.Logf("coverage: classical %d findings; unified %d (%v)", classicalFound, unifiedFound, unifiedKinds)
}
