// Package classical implements the baseline the paper argues against:
// classical induction-variable detection over the pre-SSA CFG, in the
// style of Aho/Sethi/Ullman and Cocke/Kennedy ([ASU86], [CK77]):
//
//  1. basic induction variables found by scanning every store in the
//     loop for the shape v = v ± inv;
//  2. derived induction variables j = c·i ± d found by iterating to a
//     fixpoint (each round may enable the next — the paper's complaint
//     that classical analysis is iterative while the SSA algorithm is a
//     single pass);
//  3. separate ad hoc pattern recognizers for wrap-around variables
//     (v = iv as the only store, used before it) and flip-flop
//     variables (v = inv - v), the "special case analysis" of §7.
//
// The unified-vs-classical benchmark (experiment E17) measures this
// package against internal/iv on identical inputs; the correctness
// tests check that, where both claim a linear IV, the steps agree.
package classical

import (
	"fmt"
	"sort"
	"strings"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/dom"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
)

// Kind is the classical classification of a variable in a loop.
type Kind int

// Kinds.
const (
	None Kind = iota
	Basic
	Derived
	WrapAround
	FlipFlop
)

func (k Kind) String() string {
	switch k {
	case Basic:
		return "basic"
	case Derived:
		return "derived"
	case WrapAround:
		return "wrap-around"
	case FlipFlop:
		return "flip-flop"
	}
	return "none"
}

// IV is one classical finding: variable Var in Loop, with Step set for
// basic IVs and (Factor, Base, Offset) for derived j = Factor·base ± d.
type IV struct {
	Loop *loops.Loop
	Var  string
	Kind Kind
	// Step is the constant per-iteration increment of a basic IV.
	Step int64
	// Base names the IV a derived variable scales (j = Factor·Base + Offset).
	Base           string
	Factor, Offset int64
	// Rounds records in which fixpoint round a derived IV was found
	// (1-based), for the iterative-cost measurements.
	Round int
}

func (v *IV) String() string {
	switch v.Kind {
	case Basic:
		return fmt.Sprintf("%s: basic step %d", v.Var, v.Step)
	case Derived:
		return fmt.Sprintf("%s: derived %d*%s%+d (round %d)", v.Var, v.Factor, v.Base, v.Offset, v.Round)
	case WrapAround:
		return fmt.Sprintf("%s: wrap-around of %s", v.Var, v.Base)
	case FlipFlop:
		return fmt.Sprintf("%s: flip-flop", v.Var)
	}
	return v.Var + ": none"
}

// Result maps each loop to its findings.
type Result struct {
	Forest *loops.Forest
	ByLoop map[*loops.Loop][]*IV
	// Rounds is the total number of fixpoint rounds executed across all
	// loops (≥1 per loop), the paper's iteration-count complaint made
	// measurable.
	Rounds int
}

// Report renders the findings deterministically.
func (r *Result) Report() string {
	var sb strings.Builder
	for _, l := range r.Forest.InnerToOuter() {
		fmt.Fprintf(&sb, "loop %s:\n", l.Label)
		ivs := append([]*IV(nil), r.ByLoop[l]...)
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Var < ivs[j].Var })
		for _, v := range ivs {
			fmt.Fprintf(&sb, "  %s\n", v)
		}
	}
	return sb.String()
}

// Find returns the finding for a variable in a loop, or nil.
func (r *Result) Find(l *loops.Loop, name string) *IV {
	for _, v := range r.ByLoop[l] {
		if v.Var == name {
			return v
		}
	}
	return nil
}

// Analyze runs the baseline over a freshly lowered (pre-SSA) program.
func Analyze(res *cfgbuild.Result) *Result {
	f := res.Func
	tree := dom.New(f)
	forest := loops.Analyze(f, tree)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)

	out := &Result{Forest: forest, ByLoop: map[*loops.Loop][]*IV{}}
	for _, l := range forest.InnerToOuter() {
		out.analyzeLoop(f, tree, l)
	}
	return out
}

// store is one scalar assignment inside the loop.
type store struct {
	val *ir.Value // the StoreVar
	rhs *ir.Value
}

func (r *Result) analyzeLoop(f *ir.Func, tree *dom.Tree, l *loops.Loop) {
	// unconditional reports whether a store runs on every iteration: its
	// block dominates every latch. Classical IV detection requires this
	// (a conditionally executed i = i + 1 is not an induction variable).
	unconditional := func(st store) bool {
		for _, latch := range l.Latches {
			if !tree.Dominates(st.val.Block, latch) {
				return false
			}
		}
		return len(l.Latches) > 0
	}

	// Gather stores per variable; note variables stored in inner loops
	// too (they vary, so they are not invariant here).
	storesOf := map[string][]store{}
	variesInLoop := map[string]bool{}
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpStoreVar {
				variesInLoop[v.Var] = true
				if r.Forest.InnermostContaining(b) == l {
					storesOf[v.Var] = append(storesOf[v.Var], store{val: v, rhs: v.Args[0]})
				} else {
					// Stored in a nested loop: disqualified here.
					storesOf[v.Var] = append(storesOf[v.Var], store{val: v, rhs: nil})
				}
			}
		}
	}
	invariant := func(name string) bool { return !variesInLoop[name] }

	found := map[string]*IV{}

	// Pass 1: basic induction variables — every store is v = v ± const
	// with constant net step per... classically, textbooks require all
	// stores of the form v = v + c; the combined step is their path sum
	// only in straight-line code, so conservatively require exactly one
	// store.
	names := make([]string, 0, len(storesOf))
	for name := range storesOf {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sts := storesOf[name]
		if len(sts) != 1 || sts[0].rhs == nil || !unconditional(sts[0]) {
			continue
		}
		if step, ok := matchSelfIncrement(sts[0].rhs, name, invariant); ok {
			found[name] = &IV{Loop: l, Var: name, Kind: Basic, Step: step}
		}
	}

	// Pass 2: derived IVs to a fixpoint.
	round := 0
	for {
		round++
		r.Rounds++
		changed := false
		for _, name := range names {
			if found[name] != nil {
				continue
			}
			sts := storesOf[name]
			if len(sts) != 1 || sts[0].rhs == nil || !unconditional(sts[0]) {
				continue
			}
			base, factor, offset, ok := matchLinearOf(sts[0].rhs, invariant, func(n string) bool {
				fv := found[n]
				return fv != nil && (fv.Kind == Basic || fv.Kind == Derived)
			})
			if ok && base != name {
				found[name] = &IV{Loop: l, Var: name, Kind: Derived, Base: base, Factor: factor, Offset: offset, Round: round}
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Pass 3 (ad hoc): wrap-around — single store v = iv (a plain copy
	// of an induction variable) with some use of v before the store.
	for _, name := range names {
		if found[name] != nil {
			continue
		}
		sts := storesOf[name]
		if len(sts) != 1 || sts[0].rhs == nil {
			continue
		}
		if src, ok := matchCopyOfIV(sts[0].rhs, found); ok {
			if usedBefore(f, l, name, sts[0].val) {
				found[name] = &IV{Loop: l, Var: name, Kind: WrapAround, Base: src}
			}
		}
	}

	// Pass 4 (ad hoc): flip-flops — single store v = inv - v.
	for _, name := range names {
		if found[name] != nil {
			continue
		}
		sts := storesOf[name]
		if len(sts) != 1 || sts[0].rhs == nil {
			continue
		}
		if matchFlipFlop(sts[0].rhs, name, invariant) {
			found[name] = &IV{Loop: l, Var: name, Kind: FlipFlop}
		}
	}

	for _, name := range names {
		if iv := found[name]; iv != nil {
			r.ByLoop[l] = append(r.ByLoop[l], iv)
		}
	}
}

// matchSelfIncrement matches v = v + c, v = c + v, v = v - c with c a
// constant or invariant-constant expression; returns the constant step.
func matchSelfIncrement(rhs *ir.Value, name string, invariant func(string) bool) (int64, bool) {
	load := func(v *ir.Value) bool { return v.Op == ir.OpLoadVar && v.Var == name }
	switch rhs.Op {
	case ir.OpAdd:
		if load(rhs.Args[0]) {
			if c, ok := constValue(rhs.Args[1]); ok {
				return c, true
			}
		}
		if load(rhs.Args[1]) {
			if c, ok := constValue(rhs.Args[0]); ok {
				return c, true
			}
		}
	case ir.OpSub:
		if load(rhs.Args[0]) {
			if c, ok := constValue(rhs.Args[1]); ok {
				return -c, true
			}
		}
	}
	return 0, false
}

// constValue folds constant expression trees (no loads).
func constValue(v *ir.Value) (int64, bool) {
	switch v.Op {
	case ir.OpConst:
		return v.Const, true
	case ir.OpNeg:
		c, ok := constValue(v.Args[0])
		return -c, ok
	case ir.OpAdd, ir.OpSub, ir.OpMul:
		a, ok1 := constValue(v.Args[0])
		b, ok2 := constValue(v.Args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		switch v.Op {
		case ir.OpAdd:
			return a + b, true
		case ir.OpSub:
			return a - b, true
		default:
			return a * b, true
		}
	}
	return 0, false
}

// matchLinearOf matches rhs = c1*base ± c2 (or base ± c2, c1*base) for
// base an already-found IV; constants only (the classical formulation).
func matchLinearOf(rhs *ir.Value, invariant func(string) bool, isIV func(string) bool) (base string, factor, offset int64, ok bool) {
	// base load
	if rhs.Op == ir.OpLoadVar && isIV(rhs.Var) {
		return rhs.Var, 1, 0, true
	}
	switch rhs.Op {
	case ir.OpMul:
		if rhs.Args[0].Op == ir.OpLoadVar && isIV(rhs.Args[0].Var) {
			if c, okc := constValue(rhs.Args[1]); okc {
				return rhs.Args[0].Var, c, 0, true
			}
		}
		if rhs.Args[1].Op == ir.OpLoadVar && isIV(rhs.Args[1].Var) {
			if c, okc := constValue(rhs.Args[0]); okc {
				return rhs.Args[1].Var, c, 0, true
			}
		}
	case ir.OpAdd, ir.OpSub:
		sign := int64(1)
		if rhs.Op == ir.OpSub {
			sign = -1
		}
		if b, f, o, okl := matchLinearOf(rhs.Args[0], invariant, isIV); okl {
			if c, okc := constValue(rhs.Args[1]); okc {
				return b, f, o + sign*c, true
			}
		}
		if rhs.Op == ir.OpAdd {
			if b, f, o, okl := matchLinearOf(rhs.Args[1], invariant, isIV); okl {
				if c, okc := constValue(rhs.Args[0]); okc {
					return b, f, o + c, true
				}
			}
		}
	}
	return "", 0, 0, false
}

// matchCopyOfIV matches rhs = load(iv).
func matchCopyOfIV(rhs *ir.Value, found map[string]*IV) (string, bool) {
	v := rhs
	for v.Op == ir.OpCopy {
		v = v.Args[0]
	}
	if v.Op == ir.OpLoadVar {
		if fv := found[v.Var]; fv != nil && (fv.Kind == Basic || fv.Kind == Derived || fv.Kind == WrapAround) {
			return v.Var, true
		}
	}
	return "", false
}

// matchFlipFlop matches rhs = c - load(v).
func matchFlipFlop(rhs *ir.Value, name string, invariant func(string) bool) bool {
	if rhs.Op != ir.OpSub {
		return false
	}
	if _, ok := constValue(rhs.Args[0]); !ok {
		return false
	}
	return rhs.Args[1].Op == ir.OpLoadVar && rhs.Args[1].Var == name
}

// usedBefore reports whether variable name is loaded somewhere in the
// loop before the given store in program order (block ID, then value
// position) — the ad hoc "value from the previous iteration observable"
// check of the wrap-around pattern.
func usedBefore(f *ir.Func, l *loops.Loop, name string, st *ir.Value) bool {
	pos := func(v *ir.Value) [2]int {
		return [2]int{v.Block.ID, indexIn(v.Block, v)}
	}
	sp := pos(st)
	for _, b := range l.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpLoadVar && v.Var == name {
				p := pos(v)
				if p[0] < sp[0] || (p[0] == sp[0] && p[1] < sp[1]) {
					return true
				}
			}
		}
	}
	return false
}

func indexIn(b *ir.Block, v *ir.Value) int {
	for i, w := range b.Values {
		if w == v {
			return i
		}
	}
	return -1
}
