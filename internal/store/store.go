// Package store is a disk-backed content-addressed blob store: the
// persistent second tier under the engine's in-memory result cache.
//
// Layout is two-level hash-prefix directories (dir/ab/cdef...) keyed by
// 32-byte content hashes. Writes go through a temp file in the target
// subdirectory followed by an atomic rename, so a crash mid-write
// leaves either the old entry or a stray temp file — never a torn blob
// under a live key; stray temps are swept on Open. The store never
// trusts its contents: readers get raw bytes and decide validity
// themselves (the codec's checksum), and Delete drops entries found
// corrupt. Total size is bounded; exceeding the budget evicts
// least-recently-used entries, with file mtimes as the recency signal
// so recency survives process restarts and is shared between processes.
//
// Concurrency: a Store is safe for concurrent use within a process, and
// the on-disk format is safe across processes — renames are atomic and
// a Get that races an eviction simply misses.
package store

import (
	"container/list"
	"encoding/hex"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultMaxBytes bounds a store whose caller passes no budget: 256 MiB.
const DefaultMaxBytes = 256 << 20

const tmpPrefix = ".tmp-"

// Store is one content-addressed cache directory.
type Store struct {
	dir string
	max int64

	mu    sync.Mutex
	total int64
	lru   *list.List               // front = most recently used
	index map[string]*list.Element // hex key -> element
}

type entry struct {
	key  string // hex
	size int64
}

// Open initialises (creating if needed) a store rooted at dir with a
// total size budget of maxBytes (<= 0 means DefaultMaxBytes). Existing
// entries are indexed by mtime so recency carries across processes;
// leftover temp files from crashed writers are removed; entries beyond
// the budget are evicted oldest-first immediately.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:   dir,
		max:   maxBytes,
		lru:   list.New(),
		index: make(map[string]*list.Element),
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A vanished or unreadable entry is not fatal: skip it.
			return nil
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(path)
			return nil
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return nil
		}
		parts := strings.Split(rel, string(filepath.Separator))
		if len(parts) != 2 || len(parts[0]) != 2 || len(parts[0])+len(parts[1]) != 64 {
			return nil // foreign file; leave it alone
		}
		key := parts[0] + parts[1]
		if _, derr := hex.DecodeString(key); derr != nil {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		found = append(found, scanned{key: key, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found { // oldest first: most recent ends up at the front
		el := s.lru.PushFront(&entry{key: f.key, size: f.size})
		s.index[f.key] = el
		s.total += f.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key[2:])
}

// Get returns the blob stored under key. The read goes to the
// filesystem even when the key is not in this process's index, so
// entries written by other processes (a warm shared store) are visible;
// a hit refreshes both the in-memory LRU position and the file mtime.
func (s *Store) Get(key [32]byte) ([]byte, bool) {
	hk := hex.EncodeToString(key[:])
	data, err := os.ReadFile(s.path(hk))
	if err != nil {
		s.mu.Lock()
		if el, ok := s.index[hk]; ok { // indexed but unreadable: drop
			s.removeLocked(el)
		}
		s.mu.Unlock()
		return nil, false
	}
	now := time.Now()
	os.Chtimes(s.path(hk), now, now)
	s.mu.Lock()
	if el, ok := s.index[hk]; ok {
		el.Value.(*entry).size = int64(len(data))
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{key: hk, size: int64(len(data))})
		s.index[hk] = el
		s.total += int64(len(data))
		s.evictLocked()
	}
	s.mu.Unlock()
	return data, true
}

// Put stores data under key, overwriting any previous blob, and returns
// the number of entries evicted to stay inside the size budget. The
// write is crash-safe: temp file + atomic rename in the same directory.
func (s *Store) Put(key [32]byte, data []byte) (evicted int, err error) {
	hk := hex.EncodeToString(key[:])
	sub := filepath.Join(s.dir, hk[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(sub, tmpPrefix+"*")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	if err := os.Rename(tmpName, s.path(hk)); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	s.mu.Lock()
	if el, ok := s.index[hk]; ok {
		e := el.Value.(*entry)
		s.total += int64(len(data)) - e.size
		e.size = int64(len(data))
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{key: hk, size: int64(len(data))})
		s.index[hk] = el
		s.total += int64(len(data))
	}
	evicted = s.evictLocked()
	s.mu.Unlock()
	return evicted, nil
}

// Delete removes the blob under key (for entries found corrupt).
func (s *Store) Delete(key [32]byte) {
	hk := hex.EncodeToString(key[:])
	s.mu.Lock()
	if el, ok := s.index[hk]; ok {
		s.removeLocked(el)
	} else {
		os.Remove(s.path(hk))
	}
	s.mu.Unlock()
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// TotalBytes returns the indexed payload size.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// evictLocked drops least-recently-used entries until the total fits
// the budget. Caller holds s.mu.
func (s *Store) evictLocked() int {
	n := 0
	for s.total > s.max && s.lru.Len() > 0 {
		s.removeLocked(s.lru.Back())
		n++
	}
	return n
}

// removeLocked unlinks one entry from index, LRU and disk.
func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.lru.Remove(el)
	delete(s.index, e.key)
	s.total -= e.size
	os.Remove(s.path(e.key))
}
