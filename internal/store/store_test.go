package store

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func keyOf(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf("a")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if _, err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("got %q, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Overwrite.
	if _, err := s.Put(k, []byte("p2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(k)
	if string(got) != "p2" {
		t.Fatalf("after overwrite: %q", got)
	}
	if s.TotalBytes() != 2 {
		t.Fatalf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	k := keyOf("shared")
	s1.Put(k, []byte("blob"))

	// A second store over the same directory (a fresh process) sees it
	// via its Open scan...
	s2, _ := Open(dir, 0)
	if got, ok := s2.Get(k); !ok || string(got) != "blob" {
		t.Fatalf("scan-indexed entry invisible: %q %v", got, ok)
	}
	// ...and a write that lands *after* another store's Open is still
	// served, because Get reads through to the filesystem.
	k2 := keyOf("late")
	s1.Put(k2, []byte("late-blob"))
	if got, ok := s2.Get(k2); !ok || string(got) != "late-blob" {
		t.Fatalf("late write invisible to sibling store: %q %v", got, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget for ~3 of the 100-byte blobs.
	s, _ := Open(t.TempDir(), 350)
	payload := bytes.Repeat([]byte("x"), 100)
	keys := [][32]byte{keyOf("1"), keyOf("2"), keyOf("3")}
	for _, k := range keys {
		if _, err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("missing key 1")
	}
	ev, err := s.Put(keyOf("4"), payload)
	if err != nil {
		t.Fatal(err)
	}
	if ev != 1 {
		t.Fatalf("evicted %d entries, want 1", ev)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, k := range [][32]byte{keys[0], keys[2], keyOf("4")} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently used entry evicted")
		}
	}
}

func TestOpenSweepsTempsAndRespectsBudget(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	old, mid, new := keyOf("old"), keyOf("mid"), keyOf("new")
	payload := bytes.Repeat([]byte("y"), 100)
	s1.Put(old, payload)
	s1.Put(mid, payload)
	s1.Put(new, payload)
	// Age the entries so the rescan sees distinct mtimes.
	past := time.Now().Add(-2 * time.Hour)
	os.Chtimes(filepath.Join(dir, pathOf(old)), past, past)
	midT := time.Now().Add(-1 * time.Hour)
	os.Chtimes(filepath.Join(dir, pathOf(mid)), midT, midT)
	// Crashed writer leftovers.
	sub := filepath.Join(dir, "ab")
	os.MkdirAll(sub, 0o755)
	tmp := filepath.Join(sub, tmpPrefix+"crashed")
	os.WriteFile(tmp, []byte("junk"), 0o644)

	// Reopen with a budget for two entries: the oldest goes.
	s2, err := Open(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp file survived Open")
	}
	if _, ok := s2.Get(old); ok {
		t.Fatal("oldest entry survived budget enforcement on Open")
	}
	if _, ok := s2.Get(mid); !ok {
		t.Fatal("mid entry lost")
	}
	if _, ok := s2.Get(new); !ok {
		t.Fatal("newest entry lost")
	}
}

func pathOf(k [32]byte) string {
	hk := hexOf(k)
	return filepath.Join(hk[:2], hk[2:])
}

func hexOf(k [32]byte) string {
	const digits = "0123456789abcdef"
	var sb strings.Builder
	for _, b := range k {
		sb.WriteByte(digits[b>>4])
		sb.WriteByte(digits[b&0xf])
	}
	return sb.String()
}

func TestDeleteAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	k := keyOf("z")
	s.Put(k, []byte("data"))
	s.Delete(k)
	if _, ok := s.Get(k); ok {
		t.Fatal("deleted entry still readable")
	}
	if s.Len() != 0 || s.TotalBytes() != 0 {
		t.Fatalf("accounting after delete: len=%d bytes=%d", s.Len(), s.TotalBytes())
	}
	// A foreign file in the tree must not be indexed or removed.
	foreign := filepath.Join(dir, "README")
	os.WriteFile(foreign, []byte("not a blob"), 0o644)
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 0 {
		t.Fatalf("foreign file indexed: len=%d", s2.Len())
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign file removed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := Open(t.TempDir(), 1<<20)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := keyOf(string(rune('a' + (g+i)%16)))
				s.Put(k, bytes.Repeat([]byte{byte(g)}, 64))
				s.Get(k)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
