package cfgbuild

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/progen"
)

func build(t *testing.T, src string) *Result {
	t.Helper()
	f, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(f)
}

// checkWellFormed verifies CFG invariants: edge symmetry, terminators
// consistent with successor counts, all blocks reachable, and exactly
// one exit block.
func checkWellFormed(t *testing.T, f *ir.Func) {
	t.Helper()
	inBlocks := map[*ir.Block]bool{}
	for _, b := range f.Blocks {
		inBlocks[b] = true
	}
	if !inBlocks[f.Entry] || !inBlocks[f.Exit] {
		t.Fatal("entry or exit missing from block list")
	}
	exits := 0
	for _, b := range f.Blocks {
		switch b.Kind {
		case ir.BlockPlain:
			if len(b.Succs) != 1 {
				t.Errorf("%s (plain) has %d successors", b, len(b.Succs))
			}
		case ir.BlockIf:
			if len(b.Succs) != 2 {
				t.Errorf("%s (if) has %d successors", b, len(b.Succs))
			}
			if b.Control == nil || !b.Control.Op.IsCompare() {
				t.Errorf("%s (if) control is %v", b, b.Control)
			}
		case ir.BlockExit:
			exits++
			if len(b.Succs) != 0 {
				t.Errorf("%s (exit) has successors", b)
			}
		}
		for _, s := range b.Succs {
			if !inBlocks[s] {
				t.Errorf("%s -> pruned block %s", b, s)
			}
			if s.PredIndexOf(b) < 0 {
				t.Errorf("%s -> %s but not in preds", b, s)
			}
		}
		for _, p := range b.Preds {
			if !inBlocks[p] {
				t.Errorf("%s has pruned pred %s", b, p)
			}
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				t.Errorf("%s has pred %s without matching succ", b, p)
			}
		}
		for _, v := range b.Values {
			if v.Block != b {
				t.Errorf("value %s claims block %s but lives in %s", v, v.Block, b)
			}
		}
	}
	if exits != 1 {
		t.Errorf("%d exit blocks, want 1", exits)
	}
	// Every block is reachable, except possibly Exit (an infinite loop
	// keeps Exit in the list with no predecessors).
	minReach := len(f.Blocks)
	if len(f.Exit.Preds) == 0 {
		minReach--
	}
	if got := len(f.Postorder()); got < minReach {
		t.Errorf("unreachable blocks survive: %d reachable of %d", got, len(f.Blocks))
	}
}

func TestStraightLine(t *testing.T) {
	r := build(t, "i = 1\nj = i + 2\n")
	checkWellFormed(t, r.Func)
	if len(r.Loops) != 0 {
		t.Errorf("loops = %v, want none", r.Loops)
	}
	// Entry: Const, StoreVar, LoadVar, Const, Add, StoreVar.
	ops := []ir.Op{}
	for _, v := range r.Func.Entry.Values {
		ops = append(ops, v.Op)
	}
	want := []ir.Op{ir.OpConst, ir.OpStoreVar, ir.OpLoadVar, ir.OpConst, ir.OpAdd, ir.OpStoreVar}
	if len(ops) != len(want) {
		t.Fatalf("entry ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("entry ops = %v, want %v", ops, want)
		}
	}
}

func TestForLoopShape(t *testing.T) {
	r := build(t, "for i = 1 to n { a[i] = 0 }\n")
	checkWellFormed(t, r.Func)
	if len(r.Loops) != 1 {
		t.Fatalf("loops = %v", r.Loops)
	}
	h := r.Loops[0].Header
	if h.Kind != ir.BlockIf {
		t.Fatalf("header kind = %v", h.Kind)
	}
	if h.Control.Op != ir.OpLeq {
		t.Errorf("stay condition = %s, want Leq", h.Control.Op)
	}
	if r.Loops[0].Var != "i" {
		t.Errorf("loop var = %q", r.Loops[0].Var)
	}
	// Header must have two preds: preheader and latch.
	if len(h.Preds) != 2 {
		t.Errorf("header preds = %d, want 2", len(h.Preds))
	}
}

func TestForNegativeStep(t *testing.T) {
	r := build(t, "for i = n to 1 by -2 { a[i] = 0 }\n")
	checkWellFormed(t, r.Func)
	h := r.Loops[0].Header
	if h.Control.Op != ir.OpGeq {
		t.Errorf("stay condition for negative step = %s, want Geq", h.Control.Op)
	}
}

func TestLoopWithExit(t *testing.T) {
	r := build(t, "i = 0\nloop {\n i = i + 1\n if i > 100 { exit }\n}\nj = i\n")
	checkWellFormed(t, r.Func)
	if len(r.Loops) != 1 {
		t.Fatalf("loops = %v", r.Loops)
	}
	h := r.Loops[0].Header
	// Back edge: some block in the loop jumps to the header.
	if len(h.Preds) < 2 {
		t.Errorf("header should have preheader + latch preds, got %d", len(h.Preds))
	}
}

func TestInfiniteLoopPrunesAfter(t *testing.T) {
	// No exit: code after the loop is unreachable and must be pruned.
	r := build(t, "loop { i = i + 1 }\nj = 5\n")
	checkWellFormed(t, r.Func)
	for _, b := range r.Func.Blocks {
		for _, v := range b.Values {
			if v.Op == ir.OpConst && v.Const == 5 {
				t.Error("unreachable statement after infinite loop survived pruning")
			}
		}
	}
}

func TestExitOutsideLoop(t *testing.T) {
	r := build(t, "i = 1\nexit\nj = 2\n")
	checkWellFormed(t, r.Func)
}

func TestIfElseDiamond(t *testing.T) {
	r := build(t, "if x > 0 { k = 1 } else { k = 2 }\nm = k\n")
	checkWellFormed(t, r.Func)
	// Expect a join block with 2 preds.
	found := false
	for _, b := range r.Func.Blocks {
		if b.Comment == "if.join" && len(b.Preds) == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no 2-pred join block found")
	}
}

func TestNestedLoopsBuild(t *testing.T) {
	r := build(t, `
k = 0
L17: loop {
    i = 1
    L18: loop {
        k = k + 2
        if i > 100 { exit }
        i = i + 1
    }
    k = k + 2
    if k > 1000 { exit }
}
`)
	checkWellFormed(t, r.Func)
	if len(r.Loops) != 2 {
		t.Fatalf("loops = %+v", r.Loops)
	}
	if r.Loops[0].Label != "L17" || r.Loops[1].Label != "L18" {
		t.Errorf("labels = %q, %q", r.Loops[0].Label, r.Loops[1].Label)
	}
}

func TestCopyForScalarToScalar(t *testing.T) {
	r := build(t, "j = i\n")
	copies := 0
	for _, v := range r.Func.Entry.Values {
		if v.Op == ir.OpCopy {
			copies++
		}
	}
	if copies != 1 {
		t.Errorf("got %d Copy values, want 1", copies)
	}
}

func TestWhileShape(t *testing.T) {
	r := build(t, "while i < n { i = i * 2 }\n")
	checkWellFormed(t, r.Func)
	if len(r.Loops) != 1 || r.Loops[0].Var != "" {
		t.Fatalf("loops = %+v", r.Loops)
	}
	if r.Loops[0].Header.Kind != ir.BlockIf {
		t.Error("while header should be a conditional block")
	}
}

func TestLabelSynthesis(t *testing.T) {
	r := build(t, "loop { exit }\nwhile i < n { i = i + 1 }\n")
	if r.Loops[0].Label != "L1" || r.Loops[1].Label != "L2" {
		t.Errorf("labels = %q, %q; want L1, L2", r.Loops[0].Label, r.Loops[1].Label)
	}
}

func TestQuickRandomProgramsWellFormed(t *testing.T) {
	gen := progen.New()
	prop := func(seed int64) bool {
		src := gen.Program(seed)
		file, err := parse.File(src)
		if err != nil {
			return false
		}
		r := Build(file)
		// Reuse the checker via a throwaway T is not possible; do the
		// cheap core checks inline.
		inBlocks := map[*ir.Block]bool{}
		for _, b := range r.Func.Blocks {
			inBlocks[b] = true
		}
		for _, b := range r.Func.Blocks {
			switch b.Kind {
			case ir.BlockPlain:
				if len(b.Succs) != 1 {
					return false
				}
			case ir.BlockIf:
				if len(b.Succs) != 2 {
					return false
				}
			case ir.BlockExit:
				if len(b.Succs) != 0 {
					return false
				}
			}
			for _, s := range b.Succs {
				if !inBlocks[s] || s.PredIndexOf(b) < 0 {
					return false
				}
			}
		}
		return len(r.Func.Postorder()) == len(r.Func.Blocks)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	src := progen.StraightLineLoop(200)
	file, err := parse.File(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(file)
	}
}
