// Package cfgbuild lowers the AST into the tuple-instruction CFG of
// internal/ir.
//
// Loop lowering shapes (all loops become top-test natural loops with a
// dedicated preheader, a header that performs the exit test where one
// exists, and a latch holding the induction update for counted loops):
//
//	for v = lo to hi [by s]:
//	    pre:    v = lo                      → header
//	    header: if v <= hi (>= for s < 0)   → body | after
//	    body:   ...                         → latch
//	    latch:  v = v + s                   → header
//
//	while c:  header: if c → body | after;  body → header
//
//	loop:     header: body...; exit jumps to after; last block → header
//
// The `to` bound and `by` step are re-evaluated each iteration (C-style
// semantics); the direction of the termination test is chosen from the
// sign of a constant step and assumed upward for symbolic steps, matching
// the paper's treatment of exit conditions as classified expressions.
//
// Scalar reads lower to LoadVar and writes to StoreVar; both are removed
// by SSA construction. A direct scalar-to-scalar assignment `x = y`
// lowers through an explicit Copy so that x keeps a distinct SSA name —
// the paper's families of variables (e.g. the periodic rotation in
// Figure 5) depend on those names staying visible.
package cfgbuild

import (
	"fmt"

	"beyondiv/internal/ast"
	"beyondiv/internal/guard"
	"beyondiv/internal/ir"
	"beyondiv/internal/obs"
	"beyondiv/internal/token"
)

// LoopInfo records the source loop structure discovered while lowering;
// the loop analysis proper (internal/loops) recomputes structure from
// the CFG, but labels and source order come from here.
type LoopInfo struct {
	Label  string    // source label, or synthesized "L<n>"
	Header *ir.Block // loop header block
	Var    string    // counted-loop variable, "" otherwise
}

// Result is the lowering output.
type Result struct {
	Func  *ir.Func
	Loops []LoopInfo
}

type builder struct {
	f     *ir.Func
	cur   *ir.Block // current insertion block; nil after a terminator
	loops []LoopInfo
	// exitTargets is the stack of after-blocks for enclosing loops.
	exitTargets []*ir.Block
	nextLabel   int
	// maxValues caps how many IR values lowering may create; zero is
	// unchecked. See BuildGuarded.
	maxValues int
}

// checkSize enforces the IR-value ceiling; called per statement and per
// expression node so hostile input is cut off close to the ceiling.
func (b *builder) checkSize() {
	guard.Check("cfgbuild", "IR values", int64(b.f.NumValues()), int64(b.maxValues))
}

// Build lowers a parsed file.
func Build(file *ast.File) *Result { return BuildWithObs(file, nil) }

// BuildWithObs is Build with telemetry: a "cfgbuild" phase span plus
// block and value counters. rec may be nil.
func BuildWithObs(file *ast.File, rec *obs.Recorder) *Result {
	return BuildGuarded(file, rec, guard.Limits{})
}

// BuildGuarded is BuildWithObs under resource limits: lowering stops
// (by panicking with a *guard.LimitError, contained at the facade)
// once the function holds more than lim.MaxSSAValues IR values.
// Recursion depth needs no separate ceiling here — the parser already
// bounds AST depth.
func BuildGuarded(file *ast.File, rec *obs.Recorder, lim guard.Limits) *Result {
	span := rec.Phase("cfgbuild")
	defer span.End()
	b := &builder{f: ir.NewFunc(), maxValues: lim.MaxSSAValues}
	entry := b.f.NewBlock(ir.BlockPlain)
	entry.Comment = "entry"
	b.f.Entry = entry
	b.cur = entry

	b.stmts(file.Stmts)

	exit := b.f.NewBlock(ir.BlockExit)
	exit.Comment = "exit"
	b.f.Exit = exit
	if b.cur != nil {
		b.jump(b.cur, exit)
	}
	b.prune()
	// Drop loops whose headers sat in unreachable code.
	kept := make(map[*ir.Block]bool, len(b.f.Blocks))
	for _, blk := range b.f.Blocks {
		kept[blk] = true
	}
	var liveLoops []LoopInfo
	for _, li := range b.loops {
		if kept[li.Header] {
			liveLoops = append(liveLoops, li)
		}
	}
	if rec != nil {
		values := 0
		for _, blk := range b.f.Blocks {
			values += len(blk.Values)
		}
		rec.Add("cfg.blocks", int64(len(b.f.Blocks)))
		rec.Add("cfg.values", int64(values))
	}
	return &Result{Func: b.f, Loops: liveLoops}
}

func (b *builder) jump(from, to *ir.Block) {
	from.Kind = ir.BlockPlain
	from.AddEdge(to)
}

func (b *builder) branch(from *ir.Block, cond *ir.Value, then, els *ir.Block) {
	from.Kind = ir.BlockIf
	from.Control = cond
	from.AddEdge(then)
	from.AddEdge(els)
}

// block returns the current insertion block, starting an unreachable
// continuation if control already transferred (e.g. code after exit).
func (b *builder) block() *ir.Block {
	if b.cur == nil {
		nb := b.f.NewBlock(ir.BlockPlain)
		nb.Comment = "unreachable"
		b.cur = nb
	}
	return b.cur
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) label(explicit string) string {
	b.nextLabel++
	if explicit != "" {
		return explicit
	}
	return fmt.Sprintf("L%d", b.nextLabel)
}

func (b *builder) stmt(s ast.Stmt) {
	b.checkSize()
	switch v := s.(type) {
	case *ast.Assign:
		b.assign(v)
	case *ast.For:
		b.forStmt(v)
	case *ast.Loop:
		b.loopStmt(v)
	case *ast.While:
		b.whileStmt(v)
	case *ast.If:
		b.ifStmt(v)
	case *ast.Exit:
		if len(b.exitTargets) == 0 {
			// exit outside a loop ends the program; lower as jump to a
			// dangling block that prune connects to Exit.
			b.jump(b.block(), b.f.NewBlock(ir.BlockPlain))
			b.cur = nil
			return
		}
		b.jump(b.block(), b.exitTargets[len(b.exitTargets)-1])
		b.cur = nil
	case *ast.Block:
		b.stmts(v.Stmts)
	default:
		panic(fmt.Sprintf("cfgbuild: unknown statement %T", s))
	}
}

func (b *builder) assign(a *ast.Assign) {
	blk := b.block()
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		rhs := b.expr(a.RHS)
		if _, isIdent := a.RHS.(*ast.Ident); isIdent {
			// Keep x = y as a distinct SSA name (see package comment).
			cp := b.f.NewValue(blk, ir.OpCopy, rhs)
			cp.Pos = a.RHS.Pos()
			rhs = cp
		}
		st := b.f.NewValue(blk, ir.OpStoreVar, rhs)
		st.Var = lhs.Name
		st.Pos = lhs.NamePos
	case *ast.Index:
		idx := b.expr(lhs.Sub)
		rhs := b.expr(a.RHS)
		st := b.f.NewValue(blk, ir.OpStoreElem, idx, rhs)
		st.Var = lhs.Name
		st.Pos = lhs.NamePos
	default:
		panic(fmt.Sprintf("cfgbuild: bad assignment target %T", a.LHS))
	}
}

func (b *builder) expr(e ast.Expr) *ir.Value {
	b.checkSize()
	blk := b.block()
	switch v := e.(type) {
	case *ast.Num:
		c := b.f.NewValue(blk, ir.OpConst)
		c.Const = v.Value
		c.Pos = v.ValPos
		return c
	case *ast.Ident:
		ld := b.f.NewValue(blk, ir.OpLoadVar)
		ld.Var = v.Name
		ld.Pos = v.NamePos
		return ld
	case *ast.Index:
		idx := b.expr(v.Sub)
		ld := b.f.NewValue(b.block(), ir.OpLoadElem, idx)
		ld.Var = v.Name
		ld.Pos = v.NamePos
		return ld
	case *ast.Unary:
		x := b.expr(v.X)
		n := b.f.NewValue(b.block(), ir.OpNeg, x)
		n.Pos = v.OpPos
		return n
	case *ast.Bin:
		x := b.expr(v.X)
		y := b.expr(v.Y)
		op, ok := binOp(v.Op)
		if !ok {
			panic(fmt.Sprintf("cfgbuild: bad binary operator %s", v.Op))
		}
		r := b.f.NewValue(b.block(), op, x, y)
		r.Pos = v.Pos()
		return r
	default:
		panic(fmt.Sprintf("cfgbuild: unknown expression %T", e))
	}
}

func binOp(k token.Kind) (ir.Op, bool) {
	switch k {
	case token.PLUS:
		return ir.OpAdd, true
	case token.MINUS:
		return ir.OpSub, true
	case token.STAR:
		return ir.OpMul, true
	case token.SLASH:
		return ir.OpDiv, true
	case token.POW:
		return ir.OpExp, true
	case token.LT:
		return ir.OpLess, true
	case token.LE:
		return ir.OpLeq, true
	case token.GT:
		return ir.OpGreater, true
	case token.GE:
		return ir.OpGeq, true
	case token.EQ:
		return ir.OpEq, true
	case token.NE:
		return ir.OpNeq, true
	}
	return ir.OpInvalid, false
}

// ConstStepSign extracts the sign of a constant `by` step expression:
// +1 or -1 for constants, 0 when the step is symbolic. A constant zero
// step is treated as upward. The AST interpreter (internal/interp) uses
// the same rule so that semantics match the lowered CFG exactly.
func ConstStepSign(e ast.Expr) int {
	switch v := e.(type) {
	case *ast.Num:
		if v.Value < 0 {
			return -1
		}
		return 1 // zero step: degenerate; treat as upward
	case *ast.Unary:
		return -ConstStepSign(v.X)
	}
	return 0
}

func (b *builder) forStmt(s *ast.For) {
	lbl := b.label(s.Label)
	pre := b.block()
	pre.Comment = lbl + ".preheader"

	// v = lo in the preheader. An identifier bound is wrapped in a Copy
	// so the loop variable keeps its own SSA name (see package comment).
	lo := b.expr(s.Lo)
	if _, isIdent := s.Lo.(*ast.Ident); isIdent {
		cp := b.f.NewValue(pre, ir.OpCopy, lo)
		cp.Pos = s.Lo.Pos()
		lo = cp
	}
	st := b.f.NewValue(pre, ir.OpStoreVar, lo)
	st.Var = s.Var.Name
	st.Pos = s.Var.NamePos

	header := b.f.NewBlock(ir.BlockIf)
	header.Comment = lbl + ".header"
	body := b.f.NewBlock(ir.BlockPlain)
	body.Comment = lbl + ".body"
	latch := b.f.NewBlock(ir.BlockPlain)
	latch.Comment = lbl + ".latch"
	after := b.f.NewBlock(ir.BlockPlain)
	after.Comment = lbl + ".after"

	b.jump(pre, header)

	// Exit test in the header: stay while v <= hi (v >= hi when the
	// step is a negative constant).
	b.cur = header
	ld := b.f.NewValue(header, ir.OpLoadVar)
	ld.Var = s.Var.Name
	ld.Pos = s.Var.NamePos
	hi := b.expr(s.Hi)
	stayOp := ir.OpLeq
	if s.Step != nil && ConstStepSign(s.Step) < 0 {
		stayOp = ir.OpGeq
	}
	cond := b.f.NewValue(header, stayOp, ld, hi)
	cond.Pos = s.KwPos
	b.branch(header, cond, body, after)

	b.loops = append(b.loops, LoopInfo{Label: lbl, Header: header, Var: s.Var.Name})

	// Body.
	b.cur = body
	b.exitTargets = append(b.exitTargets, after)
	b.stmts(s.Body.Stmts)
	b.exitTargets = b.exitTargets[:len(b.exitTargets)-1]
	if b.cur != nil {
		b.jump(b.cur, latch)
	}

	// Latch: v = v + step.
	b.cur = latch
	ld2 := b.f.NewValue(latch, ir.OpLoadVar)
	ld2.Var = s.Var.Name
	ld2.Pos = s.Var.NamePos
	var step *ir.Value
	if s.Step != nil {
		step = b.expr(s.Step)
	} else {
		step = b.f.NewValue(b.block(), ir.OpConst)
		step.Const = 1
	}
	add := b.f.NewValue(b.block(), ir.OpAdd, ld2, step)
	add.Pos = s.KwPos
	st2 := b.f.NewValue(b.block(), ir.OpStoreVar, add)
	st2.Var = s.Var.Name
	st2.Pos = s.Var.NamePos
	b.jump(b.block(), header)

	b.cur = after
}

func (b *builder) loopStmt(s *ast.Loop) {
	lbl := b.label(s.Label)
	pre := b.block()
	pre.Comment = lbl + ".preheader"

	header := b.f.NewBlock(ir.BlockPlain)
	header.Comment = lbl + ".header"
	after := b.f.NewBlock(ir.BlockPlain)
	after.Comment = lbl + ".after"
	b.jump(pre, header)

	b.loops = append(b.loops, LoopInfo{Label: lbl, Header: header})

	b.cur = header
	b.exitTargets = append(b.exitTargets, after)
	b.stmts(s.Body.Stmts)
	b.exitTargets = b.exitTargets[:len(b.exitTargets)-1]
	if b.cur != nil {
		b.jump(b.cur, header) // back edge
	}
	b.cur = after
}

func (b *builder) whileStmt(s *ast.While) {
	lbl := b.label(s.Label)
	pre := b.block()
	pre.Comment = lbl + ".preheader"

	header := b.f.NewBlock(ir.BlockIf)
	header.Comment = lbl + ".header"
	body := b.f.NewBlock(ir.BlockPlain)
	body.Comment = lbl + ".body"
	after := b.f.NewBlock(ir.BlockPlain)
	after.Comment = lbl + ".after"
	b.jump(pre, header)

	b.cur = header
	cond := b.expr(s.Cond)
	b.branch(header, cond, body, after)

	b.loops = append(b.loops, LoopInfo{Label: lbl, Header: header})

	b.cur = body
	b.exitTargets = append(b.exitTargets, after)
	b.stmts(s.Body.Stmts)
	b.exitTargets = b.exitTargets[:len(b.exitTargets)-1]
	if b.cur != nil {
		b.jump(b.cur, header)
	}
	b.cur = after
}

func (b *builder) ifStmt(s *ast.If) {
	cond := b.expr(s.Cond)
	then := b.f.NewBlock(ir.BlockPlain)
	then.Comment = "if.then"
	join := b.f.NewBlock(ir.BlockPlain)
	join.Comment = "if.join"

	els := join
	if s.Else != nil {
		els = b.f.NewBlock(ir.BlockPlain)
		els.Comment = "if.else"
	}
	b.branch(b.block(), cond, then, els)

	b.cur = then
	b.stmts(s.Then.Stmts)
	if b.cur != nil {
		b.jump(b.cur, join)
	}

	if s.Else != nil {
		b.cur = els
		b.stmts(s.Else.Stmts)
		if b.cur != nil {
			b.jump(b.cur, join)
		}
	}
	b.cur = join
}

// prune removes blocks unreachable from Entry and repairs predecessor
// lists; it also redirects dangling plain blocks (no successors) to Exit.
func (b *builder) prune() {
	f := b.f
	for _, blk := range f.Blocks {
		if blk.Kind == ir.BlockPlain && len(blk.Succs) == 0 && blk != f.Exit {
			b.jump(blk, f.Exit)
		}
	}
	reachable := make([]bool, f.NumBlocks())
	var stack []*ir.Block
	stack = append(stack, f.Entry)
	reachable[f.Entry.ID] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reachable[s.ID] {
				reachable[s.ID] = true
				stack = append(stack, s)
			}
		}
	}
	// f.Exit survives even when unreachable (a program that never
	// terminates): consumers rely on its existence.
	reachable[f.Exit.ID] = true
	var kept []*ir.Block
	for _, blk := range f.Blocks {
		if !reachable[blk.ID] {
			continue
		}
		var preds []*ir.Block
		for _, p := range blk.Preds {
			if reachable[p.ID] {
				preds = append(preds, p)
			}
		}
		blk.Preds = preds
		kept = append(kept, blk)
	}
	f.Blocks = kept
}
