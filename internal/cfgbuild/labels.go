package cfgbuild

import (
	"fmt"

	"beyondiv/internal/ast"
)

// ForLabels returns the effective label of every counted for-loop in the
// file: the explicit source label, or the "L<n>" the builder synthesizes.
// The numbering replicates builder.label exactly — every loop statement
// (for, loop, while) bumps the counter, in build (pre-order) order — so
// analysis results keyed by loop label map back onto AST nodes even for
// unlabeled loops. This is the single definition of that correspondence;
// the transform passes and the parallel interpreter both rely on it.
func ForLabels(file *ast.File) map[*ast.For]string {
	byNode := map[*ast.For]string{}
	nextLabel := 0
	assign := func(explicit string) string {
		nextLabel++
		if explicit != "" {
			return explicit
		}
		return fmt.Sprintf("L%d", nextLabel)
	}
	var number func(list []ast.Stmt)
	number = func(list []ast.Stmt) {
		for _, s := range list {
			switch v := s.(type) {
			case *ast.For:
				byNode[v] = assign(v.Label)
				number(v.Body.Stmts)
			case *ast.Loop:
				assign(v.Label)
				number(v.Body.Stmts)
			case *ast.While:
				assign(v.Label)
				number(v.Body.Stmts)
			case *ast.If:
				number(v.Then.Stmts)
				if v.Else != nil {
					number(v.Else.Stmts)
				}
			case *ast.Block:
				number(v.Stmts)
			}
		}
	}
	number(file.Stmts)
	return byNode
}
