// Package par is the intra-run fan-out primitive shared by the
// parallel classification and dependence tiers: a bounded worker pool
// that forks the phase's recorder per worker, dispatches indexed work
// units dynamically, and joins with deterministic telemetry and panic
// semantics.
//
// Determinism contract: work(w, wrec, i) must write only worker-local
// state plus a caller-owned per-index result slot; the caller merges
// results in index order after Run returns, which is what keeps the
// parallel output byte-identical to the sequential path. Guard limit
// hits and cancellations travel as panics inside workers (as they do
// sequentially); Run captures them and re-panics the one with the
// lowest work-unit index on the calling goroutine, so the engine's
// phase containment sees the same failure whichever worker raced
// ahead.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"

	"beyondiv/internal/obs"
)

// Run executes work(w, wrec, i) for every i in [0, n) across workers
// goroutines (capped at n). Each worker records into a fork of rec
// under a "<phase> worker N" span; forks are absorbed in worker order
// after the join. After the first panic no further units are
// dispatched, in-flight units finish (or panic too), and the panic
// from the lowest index is rethrown here.
func Run(phase string, workers, n int, rec *obs.Recorder,
	work func(w int, wrec *obs.Recorder, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(0, rec, i)
		}
		return
	}

	var (
		next   atomic.Int64 // next unit to claim
		failed atomic.Bool  // stop claiming once any worker panicked
		wg     sync.WaitGroup

		mu       sync.Mutex
		panicVal any
		panicIdx int
	)
	recs := make([]*obs.Recorder, workers)
	for w := 0; w < workers; w++ {
		recs[w] = rec.Fork()
		wg.Add(1)
		go func(w int, wrec *obs.Recorder) {
			defer wg.Done()
			wspan := wrec.Phase(fmt.Sprintf("%s worker %d", phase, w))
			defer wspan.End()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							failed.Store(true)
							mu.Lock()
							if panicVal == nil || i < panicIdx {
								panicVal, panicIdx = r, i
							}
							mu.Unlock()
						}
					}()
					work(w, wrec, i)
				}()
			}
		}(w, recs[w])
	}
	wg.Wait()
	for _, wrec := range recs {
		rec.Absorb(wrec)
	}
	if panicVal != nil {
		panic(panicVal)
	}
}
