package safemath

import (
	"math/big"
	"testing"
)

// interesting is the boundary-heavy operand set every binary op is
// crossed against.
var interesting = []int64{
	MinInt64, MinInt64 + 1, MinInt64 / 2,
	-3037000500, // ~ -sqrt(MaxInt64)
	-(1 << 32), -12345, -2, -1, 0, 1, 2, 3, 12345, 1 << 32,
	3037000499, // ~ sqrt(MaxInt64)
	MaxInt64 / 2, MaxInt64 - 1, MaxInt64,
}

func fits(z *big.Int) bool { return z.IsInt64() }

func TestAddSubMulAgainstBig(t *testing.T) {
	for _, a := range interesting {
		for _, b := range interesting {
			ba, bb := big.NewInt(a), big.NewInt(b)
			cases := []struct {
				name string
				got  func() (int64, bool)
				want *big.Int
			}{
				{"Add", func() (int64, bool) { return Add(a, b) }, new(big.Int).Add(ba, bb)},
				{"Sub", func() (int64, bool) { return Sub(a, b) }, new(big.Int).Sub(ba, bb)},
				{"Mul", func() (int64, bool) { return Mul(a, b) }, new(big.Int).Mul(ba, bb)},
			}
			for _, c := range cases {
				got, ok := c.got()
				if ok != fits(c.want) {
					t.Fatalf("%s(%d, %d): ok=%v, want %v", c.name, a, b, ok, fits(c.want))
				}
				if ok && got != c.want.Int64() {
					t.Fatalf("%s(%d, %d) = %d, want %s", c.name, a, b, got, c.want)
				}
			}
		}
	}
}

func TestNegAbs(t *testing.T) {
	for _, a := range interesting {
		want := new(big.Int).Neg(big.NewInt(a))
		got, ok := Neg(a)
		if ok != fits(want) || (ok && got != want.Int64()) {
			t.Fatalf("Neg(%d) = %d, %v", a, got, ok)
		}
		want.Abs(big.NewInt(a))
		got, ok = Abs(a)
		if ok != fits(want) || (ok && got != want.Int64()) {
			t.Fatalf("Abs(%d) = %d, %v", a, got, ok)
		}
	}
}

func TestPowAgainstBig(t *testing.T) {
	bases := []int64{MinInt64, -10, -3, -2, -1, 0, 1, 2, 3, 10, 3037000499, MaxInt64}
	exps := []int64{0, 1, 2, 3, 5, 31, 62, 63, 64, 100, 1 << 20}
	for _, x := range bases {
		for _, k := range exps {
			want := new(big.Int).Exp(big.NewInt(x), big.NewInt(k), nil)
			got, ok := Pow(x, k)
			if ok != fits(want) {
				t.Fatalf("Pow(%d, %d): ok=%v, want representable=%v (%s)", x, k, ok, fits(want), want)
			}
			if ok && got != want.Int64() {
				t.Fatalf("Pow(%d, %d) = %d, want %s", x, k, got, want)
			}
		}
	}
}

func TestPowNegativeExponentFails(t *testing.T) {
	if _, ok := Pow(2, -1); ok {
		t.Fatal("Pow(2, -1) must report failure; semantics belong to the caller")
	}
}

// TestPowHostileExponentTerminates is the regression test for the
// constant-fold denial of service: the naive k-step loop runs 2^63
// iterations on this input.
func TestPowHostileExponentTerminates(t *testing.T) {
	if _, ok := Pow(2, MaxInt64); ok {
		t.Fatal("2**MaxInt64 cannot be representable")
	}
	if v, ok := Pow(1, MaxInt64); !ok || v != 1 {
		t.Fatalf("1**MaxInt64 = %d, %v, want 1", v, ok)
	}
	if v, ok := Pow(-1, MaxInt64); !ok || v != -1 {
		t.Fatalf("(-1)**MaxInt64 = %d, %v, want -1", v, ok)
	}
	if v, ok := Pow(0, MaxInt64); !ok || v != 0 {
		t.Fatalf("0**MaxInt64 = %d, %v, want 0", v, ok)
	}
}
