// Package safemath provides overflow-checked int64 arithmetic for the
// analysis pipeline.
//
// The classifier's soundness contract (Wolfe, PLDI 1992; see also the
// (Un)Solvable Loop Analysis line of work) is that a variable may
// always degrade to "unknown" but must never be misclassified. Raw
// int64 arithmetic silently wraps, which turns a too-large trip count
// or folded constant into a confidently wrong one. Every operation
// here instead reports overflow explicitly, so callers can degrade the
// result: SCCP folds to nonconstant, trip counts to unknown, and the
// dependence tester to "assume dependence".
//
// internal/rational's NaR-propagating arithmetic is built on the same
// primitives; this package is the shared, scalar-level substrate.
package safemath

import "math/bits"

const (
	// MinInt64 and MaxInt64 mirror math.MinInt64/MaxInt64 without the
	// math import.
	MinInt64 = -1 << 63
	MaxInt64 = 1<<63 - 1
)

// Add returns a + b and whether the sum is representable.
func Add(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// Sub returns a - b and whether the difference is representable.
func Sub(a, b int64) (int64, bool) {
	// The subtraction overflowed exactly when the result moved the
	// wrong way: subtracting a positive must shrink, a negative grow.
	d := a - b
	if (b > 0 && d >= a) || (b < 0 && d <= a) {
		return 0, false
	}
	return d, true
}

// Neg returns -a and whether it is representable (-MinInt64 is not).
func Neg(a int64) (int64, bool) {
	if a == MinInt64 {
		return 0, false
	}
	return -a, true
}

// Abs returns |a| and whether it is representable (|MinInt64| is not).
func Abs(a int64) (int64, bool) {
	if a < 0 {
		return Neg(a)
	}
	return a, true
}

// Mul returns a * b and whether the product is representable.
func Mul(a, b int64) (int64, bool) {
	hi, lo := bits.Mul64(absU(a), absU(b))
	if hi != 0 || lo > 1<<63 {
		return 0, false
	}
	neg := (a < 0) != (b < 0)
	if lo == 1<<63 {
		if neg {
			return MinInt64, true
		}
		return 0, false
	}
	v := int64(lo)
	if neg {
		v = -v
	}
	return v, true
}

// Pow returns x**k by overflow-checked square-and-multiply and whether
// the power is representable. k must be nonnegative; negative k reports
// failure (the mini language's x**k semantics for k < 0 are the
// caller's business). x**0 == 1, including 0**0. The loop runs at most
// 63 iterations regardless of k, so Pow is safe to call on hostile
// exponents (the naive k-step loop is a denial of service for
// k ~ 2^63).
func Pow(x, k int64) (int64, bool) {
	if k < 0 {
		return 0, false
	}
	out := int64(1)
	base := x
	for k > 0 {
		if k&1 == 1 {
			var ok bool
			out, ok = Mul(out, base)
			if !ok {
				return 0, false
			}
		}
		k >>= 1
		if k > 0 {
			// Squaring is only needed while exponent bits remain;
			// skipping the last one avoids a spurious overflow. When
			// base² does overflow here, k > 0 guarantees base is used
			// at least once more, so the power overflows too.
			var ok bool
			base, ok = Mul(base, base)
			if !ok {
				return 0, false
			}
		}
	}
	return out, true
}

// absU returns |x| as a uint64, defined for all inputs.
func absU(x int64) uint64 {
	if x < 0 {
		return uint64(-(x + 1)) + 1
	}
	return uint64(x)
}
