// Package token defines the lexical tokens of the mini loop language used
// throughout this repository.
//
// The paper writes its examples in a Fortran-flavoured pseudo-language
// (`for i = 1 to n`, `loop ... endloop`, `A(i)`). The mini language is a
// direct, brace-delimited equivalent: `for`/`loop`/`while` loops with an
// `exit` statement, `if`/`else`, integer scalar assignments, and `a[i]`
// array subscripts. Every loop in the paper (L1–L24, Figures 1–10)
// transliterates one-to-one; see internal/paper.
package token

import "fmt"

// Kind identifies a class of token.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF
	SEMI // statement separator: newline or ';'

	IDENT  // i, n, a
	NUMBER // 42

	// Operators and delimiters.
	ASSIGN // =
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }
	COLON  // :
	COMMA  // ,

	EQ // ==
	NE // !=
	LT // <
	LE // <=
	GT // >
	GE // >=

	// Keywords.
	FOR
	TO
	BY
	LOOP
	WHILE
	IF
	ELSE
	EXIT
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	SEMI:    ";",
	IDENT:   "IDENT",
	NUMBER:  "NUMBER",
	ASSIGN:  "=",
	PLUS:    "+",
	MINUS:   "-",
	STAR:    "*",
	SLASH:   "/",
	POW:     "**",
	LPAREN:  "(",
	RPAREN:  ")",
	LBRACK:  "[",
	RBRACK:  "]",
	LBRACE:  "{",
	RBRACE:  "}",
	COLON:   ":",
	COMMA:   ",",
	EQ:      "==",
	NE:      "!=",
	LT:      "<",
	LE:      "<=",
	GT:      ">",
	GE:      ">=",
	FOR:     "for",
	TO:      "to",
	BY:      "by",
	LOOP:    "loop",
	WHILE:   "while",
	IF:      "if",
	ELSE:    "else",
	EXIT:    "exit",
}

// String returns the printable name of the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"for":   FOR,
	"to":    TO,
	"by":    BY,
	"loop":  LOOP,
	"while": WHILE,
	"if":    IF,
	"else":  ELSE,
	"exit":  EXIT,
}

// IsRelop reports whether k is a relational operator.
func (k Kind) IsRelop() bool {
	switch k {
	case EQ, NE, LT, LE, GT, GE:
		return true
	}
	return false
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsZero reports whether p is the zero (no position) value.
func (p Pos) IsZero() bool { return p == Pos{} }

// PosError is a diagnostic anchored at a source position. The scanner
// and parser produce these so callers (the beyondiv facade, the
// commands) can surface structured positions instead of re-parsing
// rendered strings.
type PosError struct {
	Pos Pos
	Msg string
}

// Error renders "line:col: msg", the format the diagnostics have
// always used.
func (e *PosError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Token is a lexical token with its literal text and position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT and NUMBER
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
