package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF: "EOF", IDENT: "IDENT", NUMBER: "NUMBER",
		ASSIGN: "=", EQ: "==", NE: "!=", LE: "<=", GE: ">=",
		POW: "**", FOR: "for", LOOP: "loop", EXIT: "exit",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k, want)
		}
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind must render something")
	}
}

func TestKeywords(t *testing.T) {
	for spelling, kind := range Keywords {
		if kind.String() != spelling {
			t.Errorf("keyword %q maps to %s", spelling, kind)
		}
	}
	if _, ok := Keywords["func"]; ok {
		t.Error("func must not be a keyword")
	}
}

func TestIsRelop(t *testing.T) {
	for _, k := range []Kind{EQ, NE, LT, LE, GT, GE} {
		if !k.IsRelop() {
			t.Errorf("%s should be a relop", k)
		}
	}
	for _, k := range []Kind{PLUS, ASSIGN, IDENT, FOR} {
		if k.IsRelop() {
			t.Errorf("%s should not be a relop", k)
		}
	}
}

func TestPosAndTokenString(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("pos = %s", p)
	}
	tok := Token{Kind: IDENT, Lit: "abc", Pos: p}
	if tok.String() != `IDENT("abc")` {
		t.Errorf("token = %s", tok)
	}
	if (Token{Kind: PLUS}).String() != "+" {
		t.Error("operator token should print as itself")
	}
}
