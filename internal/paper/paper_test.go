package paper

import (
	"strings"
	"testing"

	"beyondiv/internal/iv"
)

// TestCorpusExpectations verifies every expectation of every corpus
// entry — the end-to-end check that each figure of the paper is
// reproduced.
func TestCorpusExpectations(t *testing.T) {
	ids := map[string]bool{}
	for _, p := range Corpus {
		if ids[p.ID] {
			t.Errorf("duplicate corpus id %s", p.ID)
		}
		ids[p.ID] = true

		a, err := iv.AnalyzeProgram(p.Source)
		if err != nil {
			t.Errorf("%s (%s): %v", p.ID, p.Name, err)
			continue
		}
		for _, e := range p.Expect {
			l := a.LoopByLabel(e.Loop)
			if l == nil {
				t.Errorf("%s: loop %s not found", p.ID, e.Loop)
				continue
			}
			v := a.ValueByName(e.Value)
			if v == nil {
				t.Errorf("%s: value %s not found\n%s", p.ID, e.Value, a.SSA.Func)
				continue
			}
			var got string
			if e.Nested {
				got = a.NestedString(a.ClassOf(l, v))
			} else {
				got = a.ClassOf(l, v).String()
			}
			if e.PrefixOnly {
				if !strings.HasPrefix(got, e.Want) {
					t.Errorf("%s: %s in %s = %q, want prefix %q", p.ID, e.Value, e.Loop, got, e.Want)
				}
			} else if got != e.Want {
				t.Errorf("%s: %s in %s = %q, want %q", p.ID, e.Value, e.Loop, got, e.Want)
			}
		}
		for label, want := range p.TripCounts {
			l := a.LoopByLabel(label)
			if l == nil {
				t.Errorf("%s: loop %s not found", p.ID, label)
				continue
			}
			if got := a.TripCount(l).String(); got != want {
				t.Errorf("%s: trip count of %s = %q, want %q", p.ID, label, got, want)
			}
		}
	}
}

// TestByID exercises the lookup helper.
func TestByID(t *testing.T) {
	if ByID("E6") == nil {
		t.Error("E6 missing")
	}
	if ByID("nope") != nil {
		t.Error("bogus id found")
	}
}
