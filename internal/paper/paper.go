// Package paper carries the complete corpus of loops from "Beyond
// Induction Variables" (Wolfe, PLDI 1992), transliterated 1:1 into the
// mini language, together with the classifications, trip counts,
// closed forms and dependence results the paper reports. The corpus
// drives cmd/paperrepro (which regenerates every figure and table), the
// cross-package integration tests, and the benchmark harness.
package paper

// Expectation is one value's expected classification, by SSA name.
type Expectation struct {
	Loop  string // loop label
	Value string // SSA name, e.g. "j2"
	// Want is the exact String() of the classification, or a prefix
	// when PrefixOnly is set (for entries whose tail depends on
	// symbolic names).
	Want       string
	PrefixOnly bool
	// Nested, when set, checks Analysis.NestedString instead (the
	// outer-to-inner substituted tuple of §5.3).
	Nested bool
}

// Program is one paper example.
type Program struct {
	ID     string // experiment id from DESIGN.md (e.g. "E2")
	Name   string // "Figure 1 (loop L7)"
	Source string
	// What the paper says, reproduced by the classifier.
	Expect []Expectation
	// TripCounts maps loop labels to expected TripCount.String().
	TripCounts map[string]string
	// Notes records OCR re-derivations and deliberate deviations.
	Notes string
}

// Corpus lists every paper example in presentation order.
var Corpus = []Program{
	{
		ID:   "E1a",
		Name: "§2 L1: basic induction variable",
		Source: `i = i0
L1: loop {
    i = i + k
    if i > n { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L1", Value: "i2", Want: "(L1, i01, k1)"},
			{Loop: "L1", Value: "i3", Want: "(L1, i01 + k1, k1)"},
		},
	},
	{
		ID:   "E1b",
		Name: "§2 L2: mutually-defined induction variables",
		Source: `j = n
L2: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L2", Value: "i1", Want: "(L2, n1 + c1, c1 + k1)"},
			{Loop: "L2", Value: "j3", Want: "(L2, n1 + c1 + k1, c1 + k1)"},
			{Loop: "L2", Value: "j2", Want: "(L2, n1, c1 + k1)"},
		},
	},
	{
		ID:   "E1c",
		Name: "§2 L5/L6: multiloop induction variable with nested tuple",
		Source: `i = 0
L5: loop {
    i = i + 2
    j = i
    L6: loop {
        j = j + 1
        a[j] = 0
        if j > m { exit }
    }
    if i > n { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L5", Value: "i3", Want: "(L5, 2, 2)"},
			{Loop: "L6", Value: "j3", Want: "(L6, (L5, 3, 2), 1)", Nested: true},
			{Loop: "L6", Value: "j2", Want: "(L6, (L5, 2, 2), 1)", Nested: true},
		},
		Notes: "the paper prints j = (L6, (L5, 3, 2), 1) after outer-to-inner substitution",
	},
	{
		ID:   "E2",
		Name: "Figure 1/2 (loop L7): SSA form and the family (L7, n, c+k)",
		Source: `j = n
L7: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L7", Value: "j2", Want: "(L7, n1, c1 + k1)"},
			{Loop: "L7", Value: "i1", Want: "(L7, n1 + c1, c1 + k1)"},
			{Loop: "L7", Value: "j3", Want: "(L7, n1 + c1 + k1, c1 + k1)"},
		},
	},
	{
		ID:   "E3",
		Name: "Figure 3 (loop L8): equal conditional increments stay linear",
		Source: `i = 1
L8: loop {
    if a[i] > 0 {
        i = i + 2
    } else {
        i = i + 2
    }
    if i > n { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L8", Value: "i2", Want: "(L8, 1, 2)"},
			{Loop: "L8", Value: "i3", Want: "(L8, 3, 2)"},
			{Loop: "L8", Value: "i4", Want: "(L8, 3, 2)"},
			{Loop: "L8", Value: "i5", Want: "(L8, 3, 2)"},
		},
	},
	{
		ID:   "E4",
		Name: "Figure 4 (loop L10): first- and second-order wrap-arounds",
		Source: `j = n
k = n
i = 1
L10: loop {
    a[k] = a[j] + 1
    k = j
    j = i
    i = i + 1
    if i > m { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L10", Value: "i2", Want: "(L10, 1, 1)"},
			{Loop: "L10", Value: "j2", Want: "wrap-around(L10, order 1, init n1, then (L10, 1, 1))"},
			{Loop: "L10", Value: "k2", Want: "wrap-around(L10, order 2, init n1, then (L10, 1, 1))"},
		},
	},
	{
		ID:   "E4b",
		Name: "§4.1: wrap-around whose initial value fits the sequence",
		Source: `j = 0
i = 1
L10: loop {
    a[j] = i
    j = i
    i = i + 1
    if i > m { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L10", Value: "j2", Want: "(L10, 0, 1)"},
		},
		Notes: "jl = 0 makes j2 the induction variable (L10, 0, 1) directly",
	},
	{
		ID:   "E5a",
		Name: "§4.2 L11: flip-flop by swapping",
		Source: `j = 1
jold = 2
L11: for it = 1 to n {
    a[j] = a[jold]
    jtemp = jold
    jold = j
    j = jtemp
}
`,
		Expect: []Expectation{
			{Loop: "L11", Value: "j2", Want: "periodic(L11, period 2", PrefixOnly: true},
			{Loop: "L11", Value: "jold2", Want: "periodic(L11, period 2", PrefixOnly: true},
		},
	},
	{
		ID:   "E5b",
		Name: "§4.2 L12: flip-flop by j = 3 - j",
		Source: `j = 1
jold = 2
L12: for it = 1 to n {
    a[j] = a[jold]
    j = 3 - j
    jold = 3 - jold
}
`,
		Expect: []Expectation{
			{Loop: "L12", Value: "j2", Want: "periodic(L12, period 2", PrefixOnly: true},
			{Loop: "L12", Value: "jold2", Want: "periodic(L12, period 2", PrefixOnly: true},
		},
		Notes: "also carries the geometric base -1 closed form 3/2 - (1/2)(-1)^h",
	},
	{
		ID:   "E5c",
		Name: "Figure 5 (loop L13): periodic family with period 3",
		Source: `j = 1
k = 2
l = 3
L13: for it = 1 to n {
    t = j
    j = k
    k = l
    l = t
    a[j] = a[k] + a[l]
}
`,
		Expect: []Expectation{
			{Loop: "L13", Value: "j2", Want: "periodic(L13, period 3", PrefixOnly: true},
			{Loop: "L13", Value: "k2", Want: "periodic(L13, period 3", PrefixOnly: true},
			{Loop: "L13", Value: "l2", Want: "periodic(L13, period 3", PrefixOnly: true},
		},
		Notes: "t's header φ is dead and pruned — the paper likewise notes t2 is outside the SCR",
	},
	{
		ID:   "E6",
		Name: "§4.3 L14: polynomial and geometric closed forms",
		Source: `j = 1
k = 1
l = 1
m = 0
L14: for i = 1 to n {
    j = j + i
    k = k + j + 1
    l = l * 2 + 1
    m = 3 * m + 2 * i + 1
}
`,
		Expect: []Expectation{
			{Loop: "L14", Value: "i2", Want: "(L14, 1, 1)"},
			// j: 2,4,7,11 = (h²+3h+4)/2
			{Loop: "L14", Value: "j3", Want: "(L14, 2, 3/2, 1/2)"},
			// k: 4,9,17,29 = (h³+6h²+23h+24)/6 — the worked matrix example
			{Loop: "L14", Value: "k3", Want: "(L14, 4, 23/6, 1, 1/6)"},
			// l: 3,7,15,31 = 2^(h+2) - 1
			{Loop: "L14", Value: "l3", Want: "(L14, base 2: -1 | 4)"},
			// m: 3,14,49 = 2·3^(h+1) - h - 3 (§4.3's m example, from 0)
			{Loop: "L14", Value: "m3", Want: "(L14, base 3: -3, -1 | 6)"},
			{Loop: "L14", Value: "m2", Want: "(L14, base 3: -2, -1 | 2)"},
		},
		TripCounts: map[string]string{"L14": "n1"},
		Notes:      "m = 3m+2i+1 from 0 gives m(h) = 2·3^h - h - 2 with no quadratic term, as §4.3 remarks",
	},
	{
		ID:   "E8a",
		Name: "§4.4 L15: conditionally incremented pack index (monotonic)",
		Source: `k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
    }
}
`,
		Expect: []Expectation{
			{Loop: "L15", Value: "k2", Want: "monotonic(L15, increasing)"},
			{Loop: "L15", Value: "k3", Want: "monotonic(L15, strictly increasing)"},
			{Loop: "L15", Value: "k4", Want: "monotonic(L15, increasing)"},
		},
	},
	{
		ID:   "E8b",
		Name: "Figure 6 (loop L16): strictly monotonic",
		Source: `k = 0
L16: loop {
    if a[k] > 0 {
        k = k + 1
    } else {
        k = k + 2
    }
    if k > n { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L16", Value: "k2", Want: "monotonic(L16, strictly increasing)"},
			{Loop: "L16", Value: "k5", Want: "monotonic(L16, strictly increasing)"},
		},
	},
	{
		ID:   "E10",
		Name: "Figures 7/8 (loops L17/L18): nested IVs and exit values",
		Source: `k = 0
L17: loop {
    i = 1
    L18: loop {
        k = k + 2
        if i > 100 { exit }
        i = i + 1
    }
    k = k + 2
    if k > 100000 { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L18", Value: "k3", Want: "(L18, k2, 2)"},
			{Loop: "L18", Value: "k4", Want: "(L18, 2 + k2, 2)"},
			{Loop: "L18", Value: "i2", Want: "(L18, 1, 1)"},
			{Loop: "L17", Value: "k2", Want: "(L17, 0, 204)"},
			{Loop: "L17", Value: "k5", Want: "(L17, 204, 204)"},
		},
		TripCounts: map[string]string{"L18": "100"},
		Notes:      "exit values k6 = k2 + 101·2 and i4 = i1 + 100·1 as in Figure 8",
	},
	{
		ID:   "E11",
		Name: "Figure 9 (loops L19/L20): triangular nest, quadratic family",
		Source: `j = 0
L19: for i = 1 to n {
    j = j + i
    L20: for k = 1 to i {
        j = j + 1
    }
}
`,
		Expect: []Expectation{
			{Loop: "L19", Value: "i2", Want: "(L19, 1, 1)"},
			{Loop: "L19", Value: "j2", Want: "(L19, 0, 1, 1)"},
			{Loop: "L19", Value: "j3", Want: "(L19, 1, 2, 1)"},
			{Loop: "L20", Value: "j4", Want: "(L20, (L19, 1, 2, 1), 1)", Nested: true},
			{Loop: "L20", Value: "j5", Want: "(L20, (L19, 2, 2, 1), 1)", Nested: true},
		},
		TripCounts: map[string]string{"L19": "n1", "L20": "i2"},
		Notes: "Fig. 9's rational coefficients are unreadable in the scan; re-derived from the " +
			"printed initial values 0, 1, 2 (see DESIGN.md). The pure-triangular variant below " +
			"exercises the 1/2 coefficients.",
	},
	{
		ID:   "E11b",
		Name: "Figure 9 variant: pure triangular sum (half-square closed form)",
		Source: `j = 0
L19: for i = 1 to n {
    L20: for k = 1 to i {
        j = j + 1
    }
}
`,
		Expect: []Expectation{
			{Loop: "L19", Value: "j2", Want: "(L19, 0, 1/2, 1/2)"},
		},
	},
	{
		ID:   "E13",
		Name: "§6 L21: dependence equation from induction expressions",
		Source: `i = 0
j = 3
L21: loop {
    i = i + 1
    a[i] = a[j - 1]
    j = j + 2
    if i > 100 { exit }
}
`,
		Expect: []Expectation{
			{Loop: "L21", Value: "i3", Want: "(L21, 1, 1)"},
			{Loop: "L21", Value: "j2", Want: "(L21, 3, 2)"},
		},
		Notes: "write subscript (L21,1,1), read subscript (L21,2,2): equation 1+h = 2+2h'",
	},
	{
		ID:   "E14",
		Name: "§6 L22: periodic subscripts translate = into ≠",
		Source: `j = 1
k = 2
L22: for it = 1 to n {
    a[2 * j] = a[2 * k]
    temp = j
    j = k
    k = temp
}
`,
		Expect: []Expectation{
			{Loop: "L22", Value: "j2", Want: "periodic(L22, period 2", PrefixOnly: true},
			{Loop: "L22", Value: "k2", Want: "periodic(L22, period 2", PrefixOnly: true},
		},
	},
	{
		ID:   "E12",
		Name: "Figure 10: mixed monotonic and strictly monotonic dependence",
		Source: `k = 0
L15: for i = 1 to n {
    f[k] = a[i]
    if a[i] > 0 {
        c[k] = d[i]
        k = k + 1
        b[k] = a[i]
        e[i] = b[k]
    }
    g[i] = f[k]
}
`,
		Expect: []Expectation{
			{Loop: "L15", Value: "k2", Want: "monotonic(L15, increasing)"},
			{Loop: "L15", Value: "k3", Want: "monotonic(L15, strictly increasing)"},
		},
		Notes: "array b carries direction (=); array f flow (<=) and anti (<); " +
			"c[k2] is inside the conditional and post-dominated by the strict " +
			"increment, so §5.4 removes its output dependence entirely",
	},
	{
		ID:   "E15",
		Name: "§6.1 L23/L24: normalization study",
		Source: `L23: for i = 1 to 9 {
    L24: for j = i + 1 to 9 {
        a[i * 1000 + j] = a[i * 1000 + j - 1000]
    }
}
`,
		TripCounts: map[string]string{"L23": "9"},
		Notes:      "identical dependence results with or without source-level normalization",
	},
	{
		ID:   "E9",
		Name: "§5.2: trip counts from exit conditions",
		Source: `c1 = 0
L30: for i = 3 to 10 { c1 = c1 + 1 }
c2 = 0
L31: for i = 1 to 9 by 2 { c2 = c2 + 1 }
c3 = 0
L32: for i = 10 to 1 by -3 { c3 = c3 + 1 }
i = 1
L33: loop { i = i + 1
if i > 100 { exit } }
`,
		TripCounts: map[string]string{
			"L30": "8", "L31": "5", "L32": "4", "L33": "99",
		},
		Notes: "counts follow the §5.2 convention: number of times the exit test stays; code above the test runs count+1 times",
	},
}

// ByID returns the corpus entry with the given experiment id.
func ByID(id string) *Program {
	for i := range Corpus {
		if Corpus[i].ID == id {
			return &Corpus[i]
		}
	}
	return nil
}
