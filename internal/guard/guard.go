// Package guard is the analysis pipeline's resource-limit and
// fault-containment layer.
//
// The facade (package beyondiv) analyzes untrusted loop programs; a
// hostile input must not be able to crash the process (panic), pin a
// CPU forever (unbounded recursion or folding loops), or exhaust
// memory (unbounded IR growth). guard provides:
//
//   - Limits: explicit ceilings on source size, nesting depth, IR/SSA
//     size, loop-nest depth, and per-phase work, threaded through every
//     pipeline stage as beyondiv.Options.Limits;
//   - Budget: a per-phase step countdown that fails closed by
//     panicking with a typed *LimitError, which the facade's phase
//     wrapper converts into a structured *beyondiv.Error;
//   - Inject: a test-only hook fired on entry to each guarded phase,
//     used by the fault-injection suite to prove that every phase
//     fails closed on both panics and limit hits.
//
// Limit hits deliberately travel as panics rather than error returns:
// the enforcement points sit at the bottom of deep recursions (parser
// descent, SCCP's worklist, the classifier's SCR walk) where threading
// an error through every frame would distort the algorithms the
// repository exists to present. The facade catches them at the phase
// boundary; nothing escapes Analyze.
package guard

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Limits bounds the resources one analysis may consume. The zero value
// of a field means "no limit at this enforcement point"; the facade
// normalizes a caller's zero fields to the Default ceilings first, so
// unlimited analysis must be requested explicitly with Unlimited.
type Limits struct {
	// MaxSourceBytes caps the length of the source text.
	MaxSourceBytes int
	// MaxNestDepth caps expression and statement nesting during
	// parsing (and thereby every later recursion over the AST), so a
	// thousand open parentheses become a diagnostic instead of a stack
	// overflow.
	MaxNestDepth int
	// MaxSSAValues caps IR values across cfgbuild and SSA construction
	// (φ insertion can be quadratic in the source size).
	MaxSSAValues int
	// MaxLoopDepth caps the loop-nest depth the classifier will walk.
	MaxLoopDepth int
	// MaxPhaseSteps is the per-phase work budget: SCCP worklist pops,
	// classifier node visits, dependence pair tests.
	MaxPhaseSteps int64

	// Pool, when non-nil, is a shared step budget drawn down by every
	// Budget built from these Limits in addition to its per-phase
	// countdown. The engine's batch mode uses one Pool across all
	// sources of a batch so the whole batch — not just each source —
	// has a work ceiling. Nil means no shared ceiling.
	Pool *Pool

	// Ctx, when non-nil, carries a caller's cancellation into the
	// pipeline: every Budget built from these Limits polls it (amortized
	// — one non-blocking check per cancelPollEvery steps), so a
	// timed-out or disconnected request stops burning CPU mid-phase
	// instead of running the analysis to completion. A cancellation
	// surfaces as a panicked *CancelError, contained by the engine into
	// a structured error naming the phase that was cancelled. Nil (or a
	// context that cannot be cancelled) costs nothing at enforcement
	// points. Like Inject, the field rides on Limits because the
	// enforcement points sit deep inside phases that only receive
	// Limits; it is per-run plumbing, not configuration, and stays out
	// of every fingerprint.
	Ctx context.Context

	// Inject, when non-nil, is called with the phase name on entry to
	// every guarded phase. It exists for fault-injection tests: the
	// hook may panic (exercising panic containment) or panic with a
	// *LimitError (exercising limit-hit handling). Production callers
	// leave it nil.
	Inject Inject
}

// Unlimited disables a limit explicitly when set on a Limits field
// passed to the facade (which maps it to zero = unchecked).
const Unlimited = -1

// Default returns the production ceilings. They are generous — an
// order of magnitude above anything the paper corpus needs — while
// keeping worst-case work on hostile input bounded to roughly a
// second.
func Default() Limits {
	return Limits{
		MaxSourceBytes: 1 << 20,  // 1 MiB of source
		MaxNestDepth:   4_096,    // parser recursion ceiling
		MaxSSAValues:   1 << 20,  // ~1M IR values
		MaxLoopDepth:   64,       // classifier loop-nest ceiling
		MaxPhaseSteps:  50 << 20, // ~52M units of per-phase work
	}
}

// Normalize fills zero fields from Default and maps negative
// (Unlimited) fields to zero, the "unchecked" value at enforcement
// points. The facade calls this once; enforcement sites then treat
// zero as off and positive as a ceiling.
func (l Limits) Normalize() Limits {
	d := Default()
	norm := func(v, def int) int {
		switch {
		case v < 0:
			return 0
		case v == 0:
			return def
		default:
			return v
		}
	}
	l.MaxSourceBytes = norm(l.MaxSourceBytes, d.MaxSourceBytes)
	l.MaxNestDepth = norm(l.MaxNestDepth, d.MaxNestDepth)
	l.MaxSSAValues = norm(l.MaxSSAValues, d.MaxSSAValues)
	l.MaxLoopDepth = norm(l.MaxLoopDepth, d.MaxLoopDepth)
	switch {
	case l.MaxPhaseSteps < 0:
		l.MaxPhaseSteps = 0
	case l.MaxPhaseSteps == 0:
		l.MaxPhaseSteps = d.MaxPhaseSteps
	}
	return l
}

// LimitError reports one resource ceiling hit. It is the panic payload
// of Budget.Step and Check; the facade converts it into a
// *beyondiv.Error carrying the phase.
type LimitError struct {
	Phase    string // pipeline phase that hit the ceiling
	Resource string // which ceiling, e.g. "nest depth", "phase steps"
	Limit    int64  // the configured ceiling
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s: %s limit exceeded (limit %d)", e.Phase, e.Resource, e.Limit)
}

// CancelError reports a run stopped by its caller's context — a
// deadline expiring or a client disconnecting mid-analysis. Like
// *LimitError it travels as a panic from the enforcement point (the
// amortized poll in Budget.Steps, or the engine's per-pass boundary
// check) and is contained by the engine into a structured error; Phase
// names the pipeline phase the run was cancelled in.
type CancelError struct {
	Phase string // pipeline phase that observed the cancellation
	Cause error  // context.Canceled or context.DeadlineExceeded
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("%s: analysis cancelled: %v", e.Phase, e.Cause)
}

// Unwrap exposes the context error, so errors.Is(err,
// context.DeadlineExceeded) distinguishes timeouts from disconnects
// through every wrapping layer.
func (e *CancelError) Unwrap() error { return e.Cause }

// Cancelled returns a *CancelError attributed to phase when the
// limits' context is done, nil otherwise. The engine calls it at pass
// boundaries; Budget.Steps polls the same context inside passes.
func (l Limits) Cancelled(phase string) *CancelError {
	if l.Ctx == nil {
		return nil
	}
	if err := l.Ctx.Err(); err != nil {
		return &CancelError{Phase: phase, Cause: err}
	}
	return nil
}

// cancelPollEvery is the amortization grain of the in-phase
// cancellation check: Budget.Steps consults the context's done channel
// once per this many steps, keeping the per-step cost of cancellation
// support to a counter decrement.
const cancelPollEvery = 1 << 10

// Check panics with a *LimitError when n exceeds the ceiling. A
// ceiling of zero or less is unchecked.
func Check(phase, resource string, n, limit int64) {
	if limit > 0 && n > limit {
		panic(&LimitError{Phase: phase, Resource: resource, Limit: limit})
	}
}

// Budget is a countdown of one phase's work. A nil Budget, or one with
// no ceiling and no shared pool, is unlimited. Budgets are not safe for
// concurrent use; each phase owns its own. The shared Pool, if any, is.
type Budget struct {
	phase string
	limit int64
	left  int64
	pool  *Pool

	// Cooperative cancellation: done is the context's done channel
	// (nil when the context cannot be cancelled), polled non-blocking
	// every cancelPollEvery steps via the pollIn countdown.
	ctx    context.Context
	done   <-chan struct{}
	pollIn int64
}

// Budget returns a step budget for the named phase from MaxPhaseSteps,
// also drawing down the shared Pool when one is set and polling the
// limits' context for cancellation when it has one.
func (l Limits) Budget(phase string) *Budget {
	b := &Budget{phase: phase, limit: l.MaxPhaseSteps, left: l.MaxPhaseSteps, pool: l.Pool}
	if l.Ctx != nil {
		if done := l.Ctx.Done(); done != nil {
			b.ctx, b.done, b.pollIn = l.Ctx, done, cancelPollEvery
		}
	}
	return b
}

// Step consumes one unit of work, panicking with a *LimitError once
// the budget is exhausted.
func (b *Budget) Step() {
	b.Steps(1)
}

// Steps consumes n units of work at once, panicking with a
// *CancelError when the budget's context has been cancelled (checked
// once per cancelPollEvery steps).
func (b *Budget) Steps(n int64) {
	if b == nil {
		return
	}
	if b.limit > 0 {
		b.left -= n
		if b.left < 0 {
			panic(&LimitError{Phase: b.phase, Resource: "phase steps", Limit: b.limit})
		}
	}
	b.pool.Take(b.phase, n)
	if b.done != nil {
		if b.pollIn -= n; b.pollIn <= 0 {
			b.pollIn = cancelPollEvery
			select {
			case <-b.done:
				panic(&CancelError{Phase: b.phase, Cause: b.ctx.Err()})
			default:
			}
		}
	}
}

// Pool is a concurrency-safe shared work budget: a batch of analyses
// draws every phase step from one pool in addition to the per-phase
// countdowns, bounding the batch's total work. A nil Pool is unlimited.
//
// A pool may chain to a parent pool (NewSubPool): every Take drains
// both, so a phase that fans out across workers can convert its
// sequential per-phase countdown into one concurrency-safe sub-pool
// (see Limits.ShareSteps) while the batch-wide parent ceiling keeps
// holding.
type Pool struct {
	limit    int64
	left     atomic.Int64
	parent   *Pool
	resource string // LimitError resource label; "" = "shared step pool"
}

// NewPool returns a pool of total steps. total <= 0 returns nil (no
// shared ceiling).
func NewPool(total int64) *Pool {
	if total <= 0 {
		return nil
	}
	p := &Pool{limit: total}
	p.left.Store(total)
	return p
}

// NewSubPool returns a pool of total steps chained to parent: Take
// drains both, and exhaustion panics with the given resource label so
// the error text matches whatever sequential countdown the sub-pool
// replaces. total <= 0 returns the parent unchanged.
func NewSubPool(parent *Pool, total int64, resource string) *Pool {
	if total <= 0 {
		return parent
	}
	p := &Pool{limit: total, parent: parent, resource: resource}
	p.left.Store(total)
	return p
}

// Take consumes n steps, panicking with a *LimitError attributed to
// phase once the pool is exhausted. Safe on a nil pool and for
// concurrent use.
func (p *Pool) Take(phase string, n int64) {
	if p == nil {
		return
	}
	if p.left.Add(-n) < 0 {
		res := p.resource
		if res == "" {
			res = "shared step pool"
		}
		panic(&LimitError{Phase: phase, Resource: res, Limit: p.limit})
	}
	p.parent.Take(phase, n)
}

// ShareSteps converts the per-phase step countdown into a
// concurrency-safe shared ceiling: the returned Limits carry a
// sub-pool of MaxPhaseSteps steps (chained to any existing Pool, with
// the "phase steps" resource label so limit errors read the same as
// the sequential path's) and MaxPhaseSteps zeroed. Budgets built from
// the result on separate workers then enforce one phase-wide ceiling
// together instead of giving each worker the full budget.
func (l Limits) ShareSteps() Limits {
	if l.MaxPhaseSteps > 0 {
		l.Pool = NewSubPool(l.Pool, l.MaxPhaseSteps, "phase steps")
		l.MaxPhaseSteps = 0
	}
	return l
}

// Remaining returns the steps left in the pool, never negative (an
// exhausted pool reads zero even though the losing Take drove the
// internal counter below it). Zero on a nil pool.
func (p *Pool) Remaining() int64 {
	if p == nil {
		return 0
	}
	if left := p.left.Load(); left > 0 {
		return left
	}
	return 0
}

// Limit returns the pool's configured total. Zero on a nil pool.
func (p *Pool) Limit() int64 {
	if p == nil {
		return 0
	}
	return p.limit
}

// Inject is the fault-injection hook type: called with each guarded
// phase's name on entry. See Limits.Inject.
type Inject func(phase string)

// Fire invokes the hook if set; safe on a nil hook, so phase code
// calls it unconditionally.
func (i Inject) Fire(phase string) {
	if i != nil {
		i(phase)
	}
}

// Fault is the panic payload of the PanicIn test helper; it carries
// the phase so containment tests can assert attribution even when the
// panic unwinds through an enclosing stage.
type Fault struct {
	Phase string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("injected fault in phase %s", f.Phase)
}

// PanicIn returns an inject hook that panics (with a *Fault) when the
// named phase is entered.
func PanicIn(phase string) Inject {
	return func(p string) {
		if p == phase {
			panic(&Fault{Phase: phase})
		}
	}
}

// LimitIn returns an inject hook that simulates a resource-ceiling hit
// (panics with a *LimitError) when the named phase is entered.
func LimitIn(phase string) Inject {
	return func(p string) {
		if p == phase {
			panic(&LimitError{Phase: phase, Resource: "injected", Limit: 0})
		}
	}
}
