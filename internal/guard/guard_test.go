package guard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNormalizeFillsDefaults(t *testing.T) {
	n := Limits{}.Normalize()
	d := Default()
	if n.MaxSourceBytes != d.MaxSourceBytes || n.MaxNestDepth != d.MaxNestDepth ||
		n.MaxSSAValues != d.MaxSSAValues || n.MaxLoopDepth != d.MaxLoopDepth ||
		n.MaxPhaseSteps != d.MaxPhaseSteps {
		t.Fatalf("zero Limits must normalize to Default(), got %+v", n)
	}
	n = Limits{MaxNestDepth: 7, MaxPhaseSteps: Unlimited}.Normalize()
	if n.MaxNestDepth != 7 {
		t.Fatalf("explicit field must survive, got %d", n.MaxNestDepth)
	}
	if n.MaxPhaseSteps != 0 {
		t.Fatalf("Unlimited must normalize to 0 (unchecked), got %d", n.MaxPhaseSteps)
	}
	if n.MaxSourceBytes != Default().MaxSourceBytes {
		t.Fatalf("unset field must default, got %d", n.MaxSourceBytes)
	}
}

func TestBudgetPanicsWithLimitError(t *testing.T) {
	b := Limits{MaxPhaseSteps: 3}.Budget("sccp")
	b.Step()
	b.Step()
	b.Step()
	defer func() {
		p := recover()
		le, ok := p.(*LimitError)
		if !ok {
			t.Fatalf("want *LimitError panic, got %v", p)
		}
		if le.Phase != "sccp" || le.Resource != "phase steps" || le.Limit != 3 {
			t.Fatalf("wrong LimitError: %+v", le)
		}
	}()
	b.Step()
	t.Fatal("fourth Step must panic")
}

func TestBudgetUnlimited(t *testing.T) {
	var nilB *Budget
	nilB.Step() // must not panic
	b := Limits{}.Budget("x")
	for i := 0; i < 1000; i++ {
		b.Step()
	}
	b.Steps(1 << 40)
}

func TestCheck(t *testing.T) {
	Check("parse", "source bytes", 10, 0)  // unchecked
	Check("parse", "source bytes", 10, 10) // at the ceiling is fine
	defer func() {
		if _, ok := recover().(*LimitError); !ok {
			t.Fatal("Check above the ceiling must panic with *LimitError")
		}
	}()
	Check("parse", "source bytes", 11, 10)
}

func TestLimitErrorMessage(t *testing.T) {
	err := error(&LimitError{Phase: "iv", Resource: "loop depth", Limit: 64})
	if !strings.Contains(err.Error(), "iv") || !strings.Contains(err.Error(), "loop depth") {
		t.Fatalf("uninformative message: %q", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatal("errors.As must find *LimitError")
	}
}

func TestInjectHelpers(t *testing.T) {
	var nilHook Inject
	nilHook.Fire("anything") // no-op

	hook := PanicIn("ssa")
	hook.Fire("parse") // wrong phase: no-op
	func() {
		defer func() {
			f, ok := recover().(*Fault)
			if !ok || f.Phase != "ssa" {
				t.Fatalf("PanicIn must panic with *Fault{ssa}, got %v", f)
			}
		}()
		hook.Fire("ssa")
	}()

	limit := LimitIn("depend")
	limit.Fire("iv")
	func() {
		defer func() {
			le, ok := recover().(*LimitError)
			if !ok || le.Phase != "depend" {
				t.Fatalf("LimitIn must panic with *LimitError{depend}, got %v", le)
			}
		}()
		limit.Fire("depend")
	}()
}

// TestPoolSharedBudget: a pool counts down across budgets built from
// the same Limits and fails closed with a "shared step pool" limit.
func TestPoolSharedBudget(t *testing.T) {
	lim := Limits{MaxPhaseSteps: 100, Pool: NewPool(5)}
	b1 := lim.Budget("sccp")
	b2 := lim.Budget("iv")
	b1.Steps(3)
	b2.Steps(2) // pool exactly drained; per-phase budgets far from done
	defer func() {
		le, ok := recover().(*LimitError)
		if !ok || le.Resource != "shared step pool" || le.Phase != "iv" || le.Limit != 5 {
			t.Fatalf("recover() = %v, want shared step pool limit in iv", le)
		}
	}()
	b2.Step()
	t.Fatal("exhausted pool did not panic")
}

// TestPoolNilAndZero: no pool means no shared ceiling, and NewPool of
// a non-positive total returns nil.
func TestPoolNilAndZero(t *testing.T) {
	if NewPool(0) != nil || NewPool(-7) != nil {
		t.Error("NewPool(<=0) must return nil")
	}
	var p *Pool
	p.Take("iv", 1<<40) // nil pool: unlimited, no panic
	b := Limits{MaxPhaseSteps: 10}.Budget("iv")
	b.Steps(9) // only the per-phase ceiling applies
}

// TestPoolConcurrentTake: concurrent draws never let total consumption
// exceed the pool (run with -race).
func TestPoolConcurrentTake(t *testing.T) {
	const total, workers = 1000, 8
	p := NewPool(total)
	overdrawn := make(chan int, workers)
	for g := 0; g < workers; g++ {
		go func() {
			n := 0
			defer func() {
				if recover() != nil {
					overdrawn <- n
				} else {
					overdrawn <- -1 // never hit the ceiling
				}
			}()
			for {
				p.Take("iv", 1)
				n++
			}
		}()
	}
	granted := 0
	for g := 0; g < workers; g++ {
		if n := <-overdrawn; n >= 0 {
			granted += n
		} else {
			t.Fatal("a worker drew forever from a finite pool")
		}
	}
	if granted > total {
		t.Errorf("pool granted %d steps, ceiling %d", granted, total)
	}
}

func TestBudgetCancellationPoll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Limits{MaxPhaseSteps: Unlimited, Ctx: ctx}.Normalize().Budget("sccp")
	// Live context: arbitrarily many steps pass.
	b.Steps(10 * cancelPollEvery)
	cancel()
	// A cancelled context must surface within one poll interval.
	defer func() {
		ce, ok := recover().(*CancelError)
		if !ok {
			t.Fatalf("want *CancelError panic")
		}
		if ce.Phase != "sccp" {
			t.Fatalf("phase attribution lost: %q", ce.Phase)
		}
		if !errors.Is(ce, context.Canceled) {
			t.Fatalf("cause must unwrap to context.Canceled, got %v", ce.Cause)
		}
	}()
	for i := 0; i <= cancelPollEvery; i++ {
		b.Step()
	}
	t.Fatalf("cancelled budget must panic within cancelPollEvery steps")
}

func TestBudgetWithoutContextIsUnchecked(t *testing.T) {
	b := Limits{MaxPhaseSteps: Unlimited}.Normalize().Budget("iv")
	b.Steps(100 * cancelPollEvery) // must not panic
	// A Background context has no done channel; the poll must stay off.
	b = Limits{MaxPhaseSteps: Unlimited, Ctx: context.Background()}.Normalize().Budget("iv")
	if b.done != nil {
		t.Fatalf("Background context must not arm the cancellation poll")
	}
}

func TestLimitsCancelled(t *testing.T) {
	if ce := (Limits{}).Cancelled("parse"); ce != nil {
		t.Fatalf("nil ctx must report not cancelled, got %v", ce)
	}
	ctx, cancel := context.WithCancel(context.Background())
	l := Limits{Ctx: ctx}
	if ce := l.Cancelled("parse"); ce != nil {
		t.Fatalf("live ctx must report not cancelled, got %v", ce)
	}
	cancel()
	ce := l.Cancelled("parse")
	if ce == nil || ce.Phase != "parse" || !errors.Is(ce, context.Canceled) {
		t.Fatalf("cancelled ctx must yield an attributed *CancelError, got %v", ce)
	}
	if !strings.Contains(ce.Error(), "cancelled") {
		t.Fatalf("error text: %q", ce.Error())
	}
}

func TestBudgetDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	b := Limits{MaxPhaseSteps: Unlimited, Ctx: ctx}.Normalize().Budget("depend")
	defer func() {
		ce, ok := recover().(*CancelError)
		if !ok || !errors.Is(ce, context.DeadlineExceeded) {
			t.Fatalf("want deadline-exceeded *CancelError, got %v", ce)
		}
	}()
	b.Steps(cancelPollEvery)
	t.Fatalf("expired deadline must panic at the first poll")
}
