package guard

import (
	"errors"
	"strings"
	"testing"
)

func TestNormalizeFillsDefaults(t *testing.T) {
	n := Limits{}.Normalize()
	d := Default()
	if n.MaxSourceBytes != d.MaxSourceBytes || n.MaxNestDepth != d.MaxNestDepth ||
		n.MaxSSAValues != d.MaxSSAValues || n.MaxLoopDepth != d.MaxLoopDepth ||
		n.MaxPhaseSteps != d.MaxPhaseSteps {
		t.Fatalf("zero Limits must normalize to Default(), got %+v", n)
	}
	n = Limits{MaxNestDepth: 7, MaxPhaseSteps: Unlimited}.Normalize()
	if n.MaxNestDepth != 7 {
		t.Fatalf("explicit field must survive, got %d", n.MaxNestDepth)
	}
	if n.MaxPhaseSteps != 0 {
		t.Fatalf("Unlimited must normalize to 0 (unchecked), got %d", n.MaxPhaseSteps)
	}
	if n.MaxSourceBytes != Default().MaxSourceBytes {
		t.Fatalf("unset field must default, got %d", n.MaxSourceBytes)
	}
}

func TestBudgetPanicsWithLimitError(t *testing.T) {
	b := Limits{MaxPhaseSteps: 3}.Budget("sccp")
	b.Step()
	b.Step()
	b.Step()
	defer func() {
		p := recover()
		le, ok := p.(*LimitError)
		if !ok {
			t.Fatalf("want *LimitError panic, got %v", p)
		}
		if le.Phase != "sccp" || le.Resource != "phase steps" || le.Limit != 3 {
			t.Fatalf("wrong LimitError: %+v", le)
		}
	}()
	b.Step()
	t.Fatal("fourth Step must panic")
}

func TestBudgetUnlimited(t *testing.T) {
	var nilB *Budget
	nilB.Step() // must not panic
	b := Limits{}.Budget("x")
	for i := 0; i < 1000; i++ {
		b.Step()
	}
	b.Steps(1 << 40)
}

func TestCheck(t *testing.T) {
	Check("parse", "source bytes", 10, 0)  // unchecked
	Check("parse", "source bytes", 10, 10) // at the ceiling is fine
	defer func() {
		if _, ok := recover().(*LimitError); !ok {
			t.Fatal("Check above the ceiling must panic with *LimitError")
		}
	}()
	Check("parse", "source bytes", 11, 10)
}

func TestLimitErrorMessage(t *testing.T) {
	err := error(&LimitError{Phase: "iv", Resource: "loop depth", Limit: 64})
	if !strings.Contains(err.Error(), "iv") || !strings.Contains(err.Error(), "loop depth") {
		t.Fatalf("uninformative message: %q", err)
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatal("errors.As must find *LimitError")
	}
}

func TestInjectHelpers(t *testing.T) {
	var nilHook Inject
	nilHook.Fire("anything") // no-op

	hook := PanicIn("ssa")
	hook.Fire("parse") // wrong phase: no-op
	func() {
		defer func() {
			f, ok := recover().(*Fault)
			if !ok || f.Phase != "ssa" {
				t.Fatalf("PanicIn must panic with *Fault{ssa}, got %v", f)
			}
		}()
		hook.Fire("ssa")
	}()

	limit := LimitIn("depend")
	limit.Fire("iv")
	func() {
		defer func() {
			le, ok := recover().(*LimitError)
			if !ok || le.Phase != "depend" {
				t.Fatalf("LimitIn must panic with *LimitError{depend}, got %v", le)
			}
		}()
		limit.Fire("depend")
	}()
}
