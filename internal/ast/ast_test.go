package ast

import (
	"strings"
	"testing"

	"beyondiv/internal/token"
)

func ident(n string) *Ident { return &Ident{Name: n} }
func num(v int64) *Num      { return &Num{Value: v} }

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{num(42), "42"},
		{ident("x"), "x"},
		{&Bin{Op: token.PLUS, X: ident("a"), Y: num(1)}, "a + 1"},
		// Precedence parentheses.
		{&Bin{Op: token.STAR, X: &Bin{Op: token.PLUS, X: ident("a"), Y: ident("b")}, Y: num(2)}, "(a + b) * 2"},
		{&Bin{Op: token.PLUS, X: ident("a"), Y: &Bin{Op: token.STAR, X: ident("b"), Y: num(2)}}, "a + b * 2"},
		// Left-associativity: a - (b - c) keeps parentheses.
		{&Bin{Op: token.MINUS, X: ident("a"), Y: &Bin{Op: token.MINUS, X: ident("b"), Y: ident("c")}}, "a - (b - c)"},
		{&Bin{Op: token.MINUS, X: &Bin{Op: token.MINUS, X: ident("a"), Y: ident("b")}, Y: ident("c")}, "a - b - c"},
		// Right-associative exponent.
		{&Bin{Op: token.POW, X: num(2), Y: &Bin{Op: token.POW, X: num(3), Y: num(2)}}, "2 ** 3 ** 2"},
		{&Bin{Op: token.POW, X: &Bin{Op: token.POW, X: num(2), Y: num(3)}, Y: num(2)}, "(2 ** 3) ** 2"},
		{&Unary{Op: token.MINUS, X: ident("x")}, "-x"},
		{&Index{Name: "a", Sub: &Bin{Op: token.MINUS, X: ident("i"), Y: num(1)}}, "a[i - 1]"},
		{&Bin{Op: token.LE, X: ident("i"), Y: ident("n")}, "i <= n"},
	}
	for _, c := range cases {
		if got := ExprString(c.e); got != c.want {
			t.Errorf("ExprString = %q, want %q", got, c.want)
		}
	}
}

func TestFileString(t *testing.T) {
	f := &File{Stmts: []Stmt{
		&Assign{LHS: ident("i"), RHS: num(0)},
		&For{
			Label: "L1", Var: ident("i"), Lo: num(1), Hi: ident("n"), Step: num(2),
			Body: &Block{Stmts: []Stmt{
				&If{
					Cond: &Bin{Op: token.GT, X: &Index{Name: "a", Sub: ident("i")}, Y: num(0)},
					Then: &Block{Stmts: []Stmt{&Exit{}}},
					Else: &Block{Stmts: []Stmt{&Assign{LHS: &Index{Name: "b", Sub: ident("i")}, RHS: ident("i")}}},
				},
			}},
		},
		&While{Cond: &Bin{Op: token.LT, X: ident("x"), Y: num(9)}, Body: &Block{Stmts: []Stmt{
			&Assign{LHS: ident("x"), RHS: &Bin{Op: token.STAR, X: ident("x"), Y: num(2)}},
		}}},
		&Loop{Body: &Block{Stmts: []Stmt{&Exit{}}}},
	}}
	got := f.String()
	for _, want := range []string{
		"i = 0", "L1: for i = 1 to n by 2 {", "if a[i] > 0 {", "exit",
		"} else {", "b[i] = i", "while x < 9 {", "x = x * 2", "loop {",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("printed file missing %q:\n%s", want, got)
		}
	}
}

func TestWalkPruning(t *testing.T) {
	f := &File{Stmts: []Stmt{
		&If{
			Cond: &Bin{Op: token.GT, X: ident("x"), Y: num(0)},
			Then: &Block{Stmts: []Stmt{&Assign{LHS: ident("y"), RHS: num(1)}}},
		},
	}}
	// Pruning at the If skips everything under it.
	seen := 0
	Walk(f, func(n Node) bool {
		seen++
		_, isIf := n.(*If)
		return !isIf
	})
	if seen != 2 { // File + If
		t.Errorf("visited %d nodes with pruning, want 2", seen)
	}
	// Without pruning we see the whole tree.
	seen = 0
	Walk(f, func(n Node) bool { seen++; return true })
	if seen < 7 {
		t.Errorf("visited %d nodes, want the full tree", seen)
	}
}

func TestPositions(t *testing.T) {
	p := token.Pos{Line: 2, Col: 5}
	n := &Num{Value: 1, ValPos: p}
	if n.Pos() != p {
		t.Error("Num.Pos wrong")
	}
	b := &Bin{Op: token.PLUS, X: n, Y: num(2)}
	if b.Pos() != p {
		t.Error("Bin.Pos should come from X")
	}
	empty := &File{}
	if empty.Pos().Line != 1 {
		t.Error("empty file position should default to 1:1")
	}
}

func TestWalkNil(t *testing.T) {
	Walk(nil, func(Node) bool { t.Error("fn called for nil"); return true })
}
