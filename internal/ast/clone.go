package ast

import "fmt"

// CloneFile returns a deep copy of the file: no node is shared with the
// original, so AST-level transformations (normalization, peeling) can
// rewrite the copy in place while the original — which may belong to a
// cached analysis shared across goroutines — stays immutable.
func CloneFile(f *File) *File {
	return &File{Stmts: CloneStmts(f.Stmts)}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneStmt deep-copies one statement.
func CloneStmt(s Stmt) Stmt {
	switch v := s.(type) {
	case *Assign:
		return &Assign{LHS: CloneExpr(v.LHS), RHS: CloneExpr(v.RHS)}
	case *For:
		return &For{
			Label: v.Label, Var: &Ident{Name: v.Var.Name, NamePos: v.Var.NamePos},
			Lo: CloneExpr(v.Lo), Hi: CloneExpr(v.Hi), Step: cloneExprOrNil(v.Step),
			Body: &Block{Stmts: CloneStmts(v.Body.Stmts)}, KwPos: v.KwPos,
		}
	case *Loop:
		return &Loop{Label: v.Label, Body: &Block{Stmts: CloneStmts(v.Body.Stmts)}, KwPos: v.KwPos}
	case *While:
		return &While{Label: v.Label, Cond: CloneExpr(v.Cond), Body: &Block{Stmts: CloneStmts(v.Body.Stmts)}, KwPos: v.KwPos}
	case *If:
		out := &If{Cond: CloneExpr(v.Cond), Then: &Block{Stmts: CloneStmts(v.Then.Stmts)}, KwPos: v.KwPos}
		if v.Else != nil {
			out.Else = &Block{Stmts: CloneStmts(v.Else.Stmts)}
		}
		return out
	case *Exit:
		return &Exit{KwPos: v.KwPos}
	case *Block:
		return &Block{Stmts: CloneStmts(v.Stmts), LPos: v.LPos}
	default:
		panic(fmt.Sprintf("ast: cannot clone %T", s))
	}
}

// CloneExpr deep-copies one expression.
func CloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case *Ident:
		return &Ident{Name: v.Name, NamePos: v.NamePos}
	case *Num:
		return &Num{Value: v.Value, ValPos: v.ValPos}
	case *Bin:
		return &Bin{Op: v.Op, X: CloneExpr(v.X), Y: CloneExpr(v.Y)}
	case *Unary:
		return &Unary{Op: v.Op, X: CloneExpr(v.X), OpPos: v.OpPos}
	case *Index:
		return &Index{Name: v.Name, NamePos: v.NamePos, Sub: CloneExpr(v.Sub)}
	default:
		panic(fmt.Sprintf("ast: cannot clone %T", e))
	}
}

func cloneExprOrNil(e Expr) Expr {
	if e == nil {
		return nil
	}
	return CloneExpr(e)
}
