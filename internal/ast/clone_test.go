package ast_test

import (
	"testing"

	"beyondiv/internal/ast"
	"beyondiv/internal/parse"
)

const cloneSrc = `
j = 0
m = -5
L1: for i = 1 to n by 2 {
	if i > 3 {
		a[m] = j / 2
	} else {
		a[i] = -j
	}
	m = j
	j = j + i ** 2
}
while j > 0 {
	j = j - 1
}
loop {
	exit
}
`

func TestCloneFileDeep(t *testing.T) {
	f, err := parse.File(cloneSrc)
	if err != nil {
		t.Fatal(err)
	}
	before := f.String()
	c := ast.CloneFile(f)
	if got := c.String(); got != before {
		t.Fatalf("clone renders differently:\n--- original\n%s--- clone\n%s", before, got)
	}

	// No node may be shared: mutate every ident, number and statement
	// list in the clone, then check the original still renders the same.
	ast.Walk(c, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			v.Name = v.Name + "x"
		case *ast.Num:
			v.Value += 40
		case *ast.For:
			v.Label = "Lx"
			v.Body.Stmts = append(v.Body.Stmts, &ast.Exit{})
		}
		return true
	})
	c.Stmts = append(c.Stmts, &ast.Exit{})
	if got := f.String(); got != before {
		t.Fatalf("mutating the clone changed the original:\n--- before\n%s--- after\n%s", before, got)
	}
}

func TestCloneExprNil(t *testing.T) {
	f, err := parse.File("for i = 1 to n { a[i] = i }")
	if err != nil {
		t.Fatal(err)
	}
	// The for has no Step: clone must preserve nil rather than panic.
	c := ast.CloneFile(f)
	if c.Stmts[0].(*ast.For).Step != nil {
		t.Fatal("nil Step cloned to non-nil")
	}
}
