// Package ast defines the abstract syntax tree of the mini loop language,
// together with a printer and a generic walker.
//
// The tree is deliberately small: integer scalar assignments, array
// element assignments, three loop forms (counted for, unstructured loop
// with exit, while), and if/else. That is exactly the fragment the paper
// analyzes — everything in Figures 1–10 and loops L1–L24 is expressible.
package ast

import (
	"fmt"
	"strings"

	"beyondiv/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---- Expressions ----

// Ident is a scalar variable reference.
type Ident struct {
	Name    string
	NamePos token.Pos
}

// Num is an integer literal.
type Num struct {
	Value  int64
	ValPos token.Pos
}

// Bin is a binary arithmetic expression (+ - * / **) or, in conditions,
// a relational expression (== != < <= > >=).
type Bin struct {
	Op   token.Kind
	X, Y Expr
}

// Unary is unary negation.
type Unary struct {
	Op    token.Kind // MINUS
	X     Expr
	OpPos token.Pos
}

// Index is an array element reference a[sub].
type Index struct {
	Name    string
	NamePos token.Pos
	Sub     Expr
}

func (e *Ident) Pos() token.Pos { return e.NamePos }
func (e *Num) Pos() token.Pos   { return e.ValPos }
func (e *Bin) Pos() token.Pos   { return e.X.Pos() }
func (e *Unary) Pos() token.Pos { return e.OpPos }
func (e *Index) Pos() token.Pos { return e.NamePos }

func (*Ident) exprNode() {}
func (*Num) exprNode()   {}
func (*Bin) exprNode()   {}
func (*Unary) exprNode() {}
func (*Index) exprNode() {}

// ---- Statements ----

// Assign is `lhs = rhs`, where lhs is an Ident or an Index.
type Assign struct {
	LHS Expr // *Ident or *Index
	RHS Expr
}

// For is a counted loop `for v = lo to hi [by step] { body }`.
// Step is nil when `by` is omitted (meaning 1). Label is the optional
// `L:` prefix naming the loop.
type For struct {
	Label  string
	Var    *Ident
	Lo, Hi Expr
	Step   Expr // may be nil
	Body   *Block
	KwPos  token.Pos
}

// Loop is an unstructured loop `loop { body }`, left by an Exit.
type Loop struct {
	Label string
	Body  *Block
	KwPos token.Pos
}

// While is `while cond { body }`.
type While struct {
	Label string
	Cond  Expr
	Body  *Block
	KwPos token.Pos
}

// If is `if cond { then } [else { else }]`; Else may be nil or contain a
// single nested If for `else if` chains.
type If struct {
	Cond  Expr
	Then  *Block
	Else  *Block // nil if absent
	KwPos token.Pos
}

// Exit leaves the innermost enclosing loop.
type Exit struct {
	KwPos token.Pos
}

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
	LPos  token.Pos
}

func (s *Assign) Pos() token.Pos { return s.LHS.Pos() }
func (s *For) Pos() token.Pos    { return s.KwPos }
func (s *Loop) Pos() token.Pos   { return s.KwPos }
func (s *While) Pos() token.Pos  { return s.KwPos }
func (s *If) Pos() token.Pos     { return s.KwPos }
func (s *Exit) Pos() token.Pos   { return s.KwPos }
func (s *Block) Pos() token.Pos  { return s.LPos }

func (*Assign) stmtNode() {}
func (*For) stmtNode()    {}
func (*Loop) stmtNode()   {}
func (*While) stmtNode()  {}
func (*If) stmtNode()     {}
func (*Exit) stmtNode()   {}
func (*Block) stmtNode()  {}

// File is a whole program: a statement list.
type File struct {
	Stmts []Stmt
}

// Pos returns the position of the first statement, or 1:1.
func (f *File) Pos() token.Pos {
	if len(f.Stmts) > 0 {
		return f.Stmts[0].Pos()
	}
	return token.Pos{Line: 1, Col: 1}
}

// ---- Walking ----

// Walk calls fn on n and then on each of n's children, pre-order.
// If fn returns false the children of n are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch v := n.(type) {
	case *File:
		for _, s := range v.Stmts {
			Walk(s, fn)
		}
	case *Block:
		for _, s := range v.Stmts {
			Walk(s, fn)
		}
	case *Assign:
		Walk(v.LHS, fn)
		Walk(v.RHS, fn)
	case *For:
		Walk(v.Var, fn)
		Walk(v.Lo, fn)
		Walk(v.Hi, fn)
		if v.Step != nil {
			Walk(v.Step, fn)
		}
		Walk(v.Body, fn)
	case *Loop:
		Walk(v.Body, fn)
	case *While:
		Walk(v.Cond, fn)
		Walk(v.Body, fn)
	case *If:
		Walk(v.Cond, fn)
		Walk(v.Then, fn)
		if v.Else != nil {
			Walk(v.Else, fn)
		}
	case *Bin:
		Walk(v.X, fn)
		Walk(v.Y, fn)
	case *Unary:
		Walk(v.X, fn)
	case *Index:
		Walk(v.Sub, fn)
	case *Ident, *Num, *Exit:
		// leaves
	default:
		panic(fmt.Sprintf("ast.Walk: unknown node %T", n))
	}
}

// ---- Printing ----

// String renders the program in canonical source form; parsing the
// result yields an equivalent tree.
func (f *File) String() string {
	var sb strings.Builder
	for _, s := range f.Stmts {
		printStmt(&sb, s, 0)
	}
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("    ")
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch v := s.(type) {
	case *Assign:
		fmt.Fprintf(sb, "%s = %s\n", ExprString(v.LHS), ExprString(v.RHS))
	case *For:
		if v.Label != "" {
			fmt.Fprintf(sb, "%s: ", v.Label)
		}
		fmt.Fprintf(sb, "for %s = %s to %s", v.Var.Name, ExprString(v.Lo), ExprString(v.Hi))
		if v.Step != nil {
			fmt.Fprintf(sb, " by %s", ExprString(v.Step))
		}
		sb.WriteString(" {\n")
		for _, st := range v.Body.Stmts {
			printStmt(sb, st, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *Loop:
		if v.Label != "" {
			fmt.Fprintf(sb, "%s: ", v.Label)
		}
		sb.WriteString("loop {\n")
		for _, st := range v.Body.Stmts {
			printStmt(sb, st, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *While:
		if v.Label != "" {
			fmt.Fprintf(sb, "%s: ", v.Label)
		}
		fmt.Fprintf(sb, "while %s {\n", ExprString(v.Cond))
		for _, st := range v.Body.Stmts {
			printStmt(sb, st, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	case *If:
		fmt.Fprintf(sb, "if %s {\n", ExprString(v.Cond))
		for _, st := range v.Then.Stmts {
			printStmt(sb, st, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}")
		if v.Else != nil {
			sb.WriteString(" else {\n")
			for _, st := range v.Else.Stmts {
				printStmt(sb, st, depth+1)
			}
			indent(sb, depth)
			sb.WriteString("}")
		}
		sb.WriteString("\n")
	case *Exit:
		sb.WriteString("exit\n")
	case *Block:
		sb.WriteString("{\n")
		for _, st := range v.Stmts {
			printStmt(sb, st, depth+1)
		}
		indent(sb, depth)
		sb.WriteString("}\n")
	default:
		panic(fmt.Sprintf("ast: unknown statement %T", s))
	}
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e, 0)
	return sb.String()
}

// precedence of binary operators for printing.
func prec(op token.Kind) int {
	switch op {
	case token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE:
		return 1
	case token.PLUS, token.MINUS:
		return 2
	case token.STAR, token.SLASH:
		return 3
	case token.POW:
		return 4
	}
	return 0
}

func printExpr(sb *strings.Builder, e Expr, outer int) {
	switch v := e.(type) {
	case *Ident:
		sb.WriteString(v.Name)
	case *Num:
		fmt.Fprintf(sb, "%d", v.Value)
	case *Index:
		sb.WriteString(v.Name)
		sb.WriteByte('[')
		printExpr(sb, v.Sub, 0)
		sb.WriteByte(']')
	case *Unary:
		sb.WriteByte('-')
		printExpr(sb, v.X, 5)
	case *Bin:
		p := prec(v.Op)
		if p < outer {
			sb.WriteByte('(')
		}
		// Operands on the non-associating side bind one tighter, so
		// a - (b - c) and (2 ** 3) ** 2 keep their parentheses.
		xp, rp := p, p+1
		if v.Op == token.POW { // ** is right-associative
			xp, rp = p+1, p
		}
		printExpr(sb, v.X, xp)
		fmt.Fprintf(sb, " %s ", v.Op)
		printExpr(sb, v.Y, rp)
		if p < outer {
			sb.WriteByte(')')
		}
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", e))
	}
}
