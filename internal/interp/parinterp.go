package interp

import (
	"fmt"
	"maps"
	"runtime"
	"sync"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
)

// Parallel execution backend: marked for-loops run goroutine-per-chunk.
//
// The dependence analysis proves which loops have no loop-carried
// dependence (depend.Parallelizable, surfaced as the engine's parmark
// annotation); this file is the executor that cashes that proof in. A
// marked loop's iteration space [lo, hi] is split into contiguous
// chunks, one goroutine each. Every chunk runs the unmodified loop body
// under a private interpreter whose memory reads fall through to a
// snapshot of the pre-loop state and whose scalar environment starts as
// a copy of the pre-loop environment — chunks never observe each
// other's effects, which is exactly the independence the marking
// proved.
//
// Determinism invariants (what makes the result bit-identical to the
// sequential interpreter, asserted by internal/validate and the -race
// corpus tests):
//
//   - chunks partition the iteration space in order: chunk c executes a
//     contiguous run of iterations, all earlier than chunk c+1's;
//   - the merge is sequential and ordered: chunk store traces append to
//     the shared memory in chunk order, so the global write trace is the
//     concatenation of per-iteration traces in iteration order — the
//     same trace the sequential loop produces;
//   - scalar merges apply each chunk's *written set* in chunk order, so
//     a scalar's final value comes from the last iteration that assigned
//     it, matching sequential last-writer semantics;
//   - the loop counter is set analytically to its sequential exit value
//     (lo + trips·step, wrapping);
//   - step accounting merges as the sum of chunk step counts, checked
//     against the budget after the merge, so budget exhaustion is a
//     deterministic function of the work, not of goroutine scheduling.
//
// The backend is conservative: a marked loop whose runtime shape falls
// outside the chunkable form (ParChunkable, plus a runtime step-sign
// check) silently runs sequentially — never wrong results, just no
// speedup.

// RunASTParallel executes the program like RunAST, but runs every
// marked, chunkable for-loop (marked maps effective loop labels — see
// cfgbuild.ForLabels — to true) across up to workers goroutines.
// workers <= 0 means one per CPU; workers == 1 is exactly RunAST.
func RunASTParallel(file *ast.File, cfg Config, marked map[string]bool, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	par := map[*ast.For]bool{}
	if workers > 1 && len(marked) > 0 {
		labels := cfgbuild.ForLabels(file)
		// Duplicate effective labels make a mark ambiguous; skip them.
		seen := map[string]int{}
		for _, lbl := range labels {
			seen[lbl]++
		}
		for f, lbl := range labels {
			if marked[lbl] && seen[lbl] == 1 && ParChunkable(f) {
				par[f] = true
			}
		}
	}
	in := &astInterp{
		cfg:     cfg,
		env:     map[string]int64{},
		mem:     newMemory(cfg.arrays()),
		limit:   cfg.maxSteps(),
		parFor:  par,
		workers: workers,
	}
	err := in.stmts(file.Stmts)
	if err == errLoopExit {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return &Result{Scalars: in.env, Writes: in.mem.trace}, nil
}

// ParChunkable reports whether a for-loop has the syntactic shape the
// chunked executor handles: bounds and step free of array reads, of the
// loop counter, and of any scalar the body assigns (so they are
// invariant and evaluate once); no assignment to the counter inside the
// body; and no exit at the loop's own level (an exit inside a nested
// loop binds to that loop and is fine). Everything else — nested loops,
// conditionals, scalar temporaries — is allowed; whether running the
// chunks concurrently is *legal* is the dependence analysis's call, not
// this predicate's.
func ParChunkable(f *ast.For) bool {
	if f.Var == nil {
		return false
	}
	assigned := map[string]bool{}
	collectAssigned(f.Body.Stmts, assigned)
	if assigned[f.Var.Name] {
		return false
	}
	for _, e := range []ast.Expr{f.Lo, f.Hi, f.Step} {
		if e == nil {
			continue
		}
		if exprReadsArray(e) {
			return false
		}
		for _, name := range identsIn(e, nil) {
			if name == f.Var.Name || assigned[name] {
				return false
			}
		}
	}
	return !exitsAtLevel(f.Body.Stmts)
}

// collectAssigned records every scalar name assigned anywhere under
// list (including inside nested loops and conditionals, and nested loop
// counters).
func collectAssigned(list []ast.Stmt, out map[string]bool) {
	for _, s := range list {
		switch v := s.(type) {
		case *ast.Assign:
			if id, ok := v.LHS.(*ast.Ident); ok {
				out[id.Name] = true
			}
		case *ast.For:
			out[v.Var.Name] = true
			collectAssigned(v.Body.Stmts, out)
		case *ast.Loop:
			collectAssigned(v.Body.Stmts, out)
		case *ast.While:
			collectAssigned(v.Body.Stmts, out)
		case *ast.If:
			collectAssigned(v.Then.Stmts, out)
			if v.Else != nil {
				collectAssigned(v.Else.Stmts, out)
			}
		case *ast.Block:
			collectAssigned(v.Stmts, out)
		}
	}
}

// exprReadsArray reports whether e contains an array element read.
func exprReadsArray(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Index:
		return true
	case *ast.Unary:
		return exprReadsArray(v.X)
	case *ast.Bin:
		return exprReadsArray(v.X) || exprReadsArray(v.Y)
	}
	return false
}

// identsIn appends every scalar name referenced in e.
func identsIn(e ast.Expr, out []string) []string {
	switch v := e.(type) {
	case *ast.Ident:
		out = append(out, v.Name)
	case *ast.Index:
		out = identsIn(v.Sub, out)
	case *ast.Unary:
		out = identsIn(v.X, out)
	case *ast.Bin:
		out = identsIn(v.X, out)
		out = identsIn(v.Y, out)
	}
	return out
}

// exitsAtLevel reports whether list contains an exit that would unwind
// the *enclosing* loop (exits inside nested loops bind to those).
func exitsAtLevel(list []ast.Stmt) bool {
	for _, s := range list {
		switch v := s.(type) {
		case *ast.Exit:
			return true
		case *ast.If:
			if exitsAtLevel(v.Then.Stmts) {
				return true
			}
			if v.Else != nil && exitsAtLevel(v.Else.Stmts) {
				return true
			}
		case *ast.Block:
			if exitsAtLevel(v.Stmts) {
				return true
			}
		}
	}
	return false
}

// runChunked executes one marked for-loop across chunks. done reports
// whether the loop was handled (on false, with a nil error, the caller
// falls back to the sequential path without any state having changed
// beyond evaluation ticks).
func (in *astInterp) runChunked(v *ast.For) (done bool, err error) {
	lo, err := in.expr(v.Lo)
	if err != nil {
		return true, err
	}
	if err := in.tick(); err != nil {
		return true, err
	}
	hi, err := in.expr(v.Hi)
	if err != nil {
		return true, err
	}
	stayGeq := v.Step != nil && cfgbuild.ConstStepSign(v.Step) < 0

	// Zero-trip exit before the step is ever evaluated, mirroring the
	// sequential interpreter (which only evaluates the step at the end of
	// an executed iteration).
	if (!stayGeq && lo > hi) || (stayGeq && lo < hi) {
		in.setScalar(v.Var.Name, lo)
		return true, nil
	}

	step := int64(1)
	if v.Step != nil {
		step, err = in.expr(v.Step)
		if err != nil {
			return true, err
		}
	}
	// The termination test direction is fixed syntactically
	// (ConstStepSign); a runtime step disagreeing with it walks away from
	// the bound — sequential semantics (wraparound, step-limit) owns that.
	if step == 0 || (stayGeq && step > 0) || (!stayGeq && step < 0) {
		return false, nil
	}

	// Trip count, exact in uint64 (|hi-lo| and |step| both fit).
	var diff, stepMag uint64
	if stayGeq {
		diff, stepMag = uint64(lo)-uint64(hi), uint64(-step)
	} else {
		diff, stepMag = uint64(hi)-uint64(lo), uint64(step)
	}
	trips := diff/stepMag + 1
	remaining := uint64(0)
	if in.limit > in.steps {
		remaining = uint64(in.limit - in.steps)
	}
	if diff/stepMag >= remaining {
		// Each iteration costs at least one tick in every interpreter;
		// this loop cannot complete within the budget.
		return true, ErrStepLimit
	}

	nchunks := uint64(in.workers)
	if nchunks > trips {
		nchunks = trips
	}
	base, rem := trips/nchunks, trips%nchunks
	chunks := make([]*astInterp, nchunks)
	errs := make([]error, nchunks)
	parentMem := in.mem
	var wg sync.WaitGroup
	start := uint64(0)
	for c := uint64(0); c < nchunks; c++ {
		size := base
		if c < rem {
			size++
		}
		ci := &astInterp{
			cfg:     in.cfg,
			env:     maps.Clone(in.env),
			mem:     newMemory(parentMem.load),
			limit:   in.limit - in.steps,
			parFor:  in.parFor,
			workers: 1, // nested marked loops stay sequential in a chunk
			written: map[string]bool{},
		}
		chunks[c] = ci
		wg.Add(1)
		go func(c, start, size uint64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[c] = fmt.Errorf("interp: parallel chunk panic: %v", r)
				}
			}()
			for k := start; k < start+size; k++ {
				if err := ci.tick(); err != nil {
					errs[c] = err
					return
				}
				ci.setScalar(v.Var.Name, iterValue(lo, k, step))
				if err := ci.stmts(v.Body.Stmts); err != nil {
					errs[c] = err
					return
				}
			}
		}(c, start, size)
		start += size
	}
	wg.Wait()

	// Deterministic merge, in chunk (= iteration) order. An error from
	// the lowest-numbered failing chunk wins: it is the error the
	// sequential run would have reached first.
	for c := range chunks {
		if errs[c] != nil {
			return true, errs[c]
		}
	}
	total := in.steps
	for _, ci := range chunks {
		for _, w := range ci.mem.trace {
			in.mem.store(w.Array, w.Index, w.Value)
		}
		for name := range ci.written {
			in.setScalar(name, ci.env[name])
		}
		total += ci.steps
	}
	in.setScalar(v.Var.Name, iterValue(lo, trips, step))
	in.steps = total
	if in.steps > in.limit {
		return true, ErrStepLimit
	}
	return true, nil
}

// iterValue is the counter's value on (0-based) iteration k, with
// int64 wrapping: lo + k·step mod 2^64.
func iterValue(lo int64, k uint64, step int64) int64 {
	return int64(uint64(lo) + k*uint64(step))
}
