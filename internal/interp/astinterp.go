package interp

import (
	"fmt"

	"beyondiv/internal/ast"
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/token"
)

// RunAST executes the program with the reference AST interpreter.
func RunAST(file *ast.File, cfg Config) (*Result, error) {
	in := &astInterp{
		cfg:   cfg,
		env:   map[string]int64{},
		mem:   newMemory(cfg.arrays()),
		limit: cfg.maxSteps(),
	}
	err := in.stmts(file.Stmts)
	if err == errLoopExit {
		// `exit` outside any loop ends the program, matching cfgbuild.
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return &Result{Scalars: in.env, Writes: in.mem.trace}, nil
}

// errLoopExit is the sentinel unwinding an `exit` statement to the
// innermost loop (or the whole program).
var errLoopExit = fmt.Errorf("interp: loop exit")

type astInterp struct {
	cfg   Config
	env   map[string]int64
	mem   *memory
	steps int
	limit int

	// parFor marks for-loops the parallel backend may chunk across
	// goroutines; nil (the RunAST configuration) keeps execution purely
	// sequential. workers is the chunk fan-out width; a chunk interpreter
	// runs with workers == 1 so nested marked loops stay sequential
	// inside their chunk.
	parFor  map[*ast.For]bool
	workers int
	// written records every scalar this interpreter assigned, when
	// non-nil; chunk runs use it so the deterministic merge applies
	// exactly the scalars a chunk wrote (not every key its inherited
	// environment carried).
	written map[string]bool
}

func (in *astInterp) tick() error {
	in.steps++
	if in.steps > in.limit {
		return ErrStepLimit
	}
	return nil
}

// setScalar is the single scalar write point, so chunk runs can track
// their write set for the parallel merge.
func (in *astInterp) setScalar(name string, v int64) {
	in.env[name] = v
	if in.written != nil {
		in.written[name] = true
	}
}

func (in *astInterp) readScalar(name string) int64 {
	if v, ok := in.env[name]; ok {
		return v
	}
	v := in.cfg.Params[name]
	// Materialize so the final environment lists referenced params,
	// mirroring SSA Param values.
	in.setScalar(name, v)
	return v
}

func (in *astInterp) stmts(list []ast.Stmt) error {
	for _, s := range list {
		if err := in.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (in *astInterp) stmt(s ast.Stmt) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch v := s.(type) {
	case *ast.Assign:
		val, err := in.expr(v.RHS)
		if err != nil {
			return err
		}
		switch lhs := v.LHS.(type) {
		case *ast.Ident:
			in.setScalar(lhs.Name, val)
		case *ast.Index:
			idx, err := in.expr(lhs.Sub)
			if err != nil {
				return err
			}
			in.mem.store(lhs.Name, idx, val)
		}
		return nil

	case *ast.For:
		if in.parFor[v] && in.workers > 1 {
			done, err := in.runChunked(v)
			if done || err != nil {
				return err
			}
			// Runtime shape ineligible (step sign mismatch, zero step):
			// fall through to the sequential semantics.
		}
		lo, err := in.expr(v.Lo)
		if err != nil {
			return err
		}
		in.setScalar(v.Var.Name, lo)
		stayGeq := v.Step != nil && cfgbuild.ConstStepSign(v.Step) < 0
		for {
			if err := in.tick(); err != nil {
				return err
			}
			hi, err := in.expr(v.Hi)
			if err != nil {
				return err
			}
			cur := in.readScalar(v.Var.Name)
			stay := cur <= hi
			if stayGeq {
				stay = cur >= hi
			}
			if !stay {
				return nil
			}
			if err := in.stmts(v.Body.Stmts); err != nil {
				if err == errLoopExit {
					return nil
				}
				return err
			}
			step := int64(1)
			if v.Step != nil {
				step, err = in.expr(v.Step)
				if err != nil {
					return err
				}
			}
			in.setScalar(v.Var.Name, in.readScalar(v.Var.Name)+step)
		}

	case *ast.Loop:
		for {
			if err := in.tick(); err != nil {
				return err
			}
			if err := in.stmts(v.Body.Stmts); err != nil {
				if err == errLoopExit {
					return nil
				}
				return err
			}
		}

	case *ast.While:
		for {
			if err := in.tick(); err != nil {
				return err
			}
			c, err := in.expr(v.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.stmts(v.Body.Stmts); err != nil {
				if err == errLoopExit {
					return nil
				}
				return err
			}
		}

	case *ast.If:
		c, err := in.expr(v.Cond)
		if err != nil {
			return err
		}
		if c != 0 {
			return in.stmts(v.Then.Stmts)
		}
		if v.Else != nil {
			return in.stmts(v.Else.Stmts)
		}
		return nil

	case *ast.Exit:
		return errLoopExit

	case *ast.Block:
		return in.stmts(v.Stmts)
	}
	panic(fmt.Sprintf("interp: unknown statement %T", s))
}

func (in *astInterp) expr(e ast.Expr) (int64, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch v := e.(type) {
	case *ast.Num:
		return v.Value, nil
	case *ast.Ident:
		return in.readScalar(v.Name), nil
	case *ast.Index:
		idx, err := in.expr(v.Sub)
		if err != nil {
			return 0, err
		}
		return in.mem.load(v.Name, idx), nil
	case *ast.Unary:
		x, err := in.expr(v.X)
		if err != nil {
			return 0, err
		}
		return -x, nil
	case *ast.Bin:
		x, err := in.expr(v.X)
		if err != nil {
			return 0, err
		}
		y, err := in.expr(v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case token.PLUS:
			return x + y, nil
		case token.MINUS:
			return x - y, nil
		case token.STAR:
			return x * y, nil
		case token.SLASH:
			return evalDiv(x, y), nil
		case token.POW:
			return evalExp(x, y), nil
		case token.LT:
			return compare("<", x, y), nil
		case token.LE:
			return compare("<=", x, y), nil
		case token.GT:
			return compare(">", x, y), nil
		case token.GE:
			return compare(">=", x, y), nil
		case token.EQ:
			return compare("==", x, y), nil
		case token.NE:
			return compare("!=", x, y), nil
		}
	}
	panic(fmt.Sprintf("interp: unknown expression %T", e))
}
