// Package interp provides two interpreters for the mini language: a
// reference interpreter over the AST, and an interpreter over the
// SSA-form CFG. Agreement between the two on random programs is the
// master correctness property for the front half of the pipeline
// (parse → cfgbuild → ssa), and the SSA interpreter doubles as the
// dynamic oracle for induction-variable classification: internal/iv's
// tests compare predicted closed forms against observed value traces.
//
// Shared semantics (both interpreters implement exactly these):
//   - all scalars are int64 with wrapping arithmetic;
//   - x / 0 == 0 (so random programs cannot fault);
//   - x ** k with k < 0 == 0, and x ** 0 == 1;
//   - reading a scalar never written yields Params[name] (default 0);
//   - reading an array cell never written yields Arrays(name, index);
//   - `for` bounds and steps are re-evaluated each iteration, and the
//     termination test direction follows cfgbuild.ConstStepSign.
package interp

import (
	"errors"
	"fmt"
)

// ErrStepLimit is returned when execution exceeds the configured budget
// (a long-running or non-terminating program).
var ErrStepLimit = errors.New("interp: step limit exceeded")

// ArrayWrite records one array store, in execution order.
type ArrayWrite struct {
	Array string
	Index int64
	Value int64
}

// Config parameterizes a run.
type Config struct {
	// Params supplies values for scalars read before written.
	Params map[string]int64
	// Arrays supplies the initial contents of array cells; nil means
	// DefaultArray.
	Arrays func(name string, index int64) int64
	// MaxSteps bounds executed statements/values; 0 means 1e6.
	MaxSteps int
}

// DefaultArray is a deterministic pseudo-random array background, small
// enough that conditionals on array values take both branches.
func DefaultArray(name string, index int64) int64 {
	h := uint64(index) * 0x9E3779B97F4A7C15
	for _, c := range name {
		h = (h ^ uint64(c)) * 0x100000001B3
	}
	return int64(h%7) - 3
}

func (c *Config) arrays() func(string, int64) int64 {
	if c.Arrays != nil {
		return c.Arrays
	}
	return DefaultArray
}

func (c *Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	return 1_000_000
}

// Result is the observable outcome of a run: final scalar values (every
// scalar that was ever assigned, plus referenced params) and the array
// store trace.
type Result struct {
	Scalars map[string]int64
	Writes  []ArrayWrite
}

// memory is the shared mutable array state.
type memory struct {
	cells map[string]map[int64]int64
	base  func(string, int64) int64
	trace []ArrayWrite
}

func newMemory(base func(string, int64) int64) *memory {
	return &memory{cells: map[string]map[int64]int64{}, base: base}
}

func (m *memory) load(name string, idx int64) int64 {
	if row, ok := m.cells[name]; ok {
		if v, ok := row[idx]; ok {
			return v
		}
	}
	return m.base(name, idx)
}

func (m *memory) store(name string, idx, val int64) {
	row, ok := m.cells[name]
	if !ok {
		row = map[int64]int64{}
		m.cells[name] = row
	}
	row[idx] = val
	m.trace = append(m.trace, ArrayWrite{Array: name, Index: idx, Value: val})
}

// evalDiv implements the shared division semantics.
func evalDiv(x, y int64) int64 {
	if y == 0 {
		return 0
	}
	return x / y
}

// evalExp implements the shared exponentiation semantics. Wrapping
// square-and-multiply: multiplication mod 2^64 is associative, so this
// produces bit-for-bit the same result as the naive product loop while
// costing at most 63 iterations for any exponent — a hostile
// `x ** 9e18` terminates immediately instead of spinning for years.
func evalExp(x, k int64) int64 {
	if k < 0 {
		return 0
	}
	out := int64(1)
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			out *= x
		}
		x *= x
	}
	return out
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func compare(op string, x, y int64) int64 {
	switch op {
	case "<":
		return boolToInt(x < y)
	case "<=":
		return boolToInt(x <= y)
	case ">":
		return boolToInt(x > y)
	case ">=":
		return boolToInt(x >= y)
	case "==":
		return boolToInt(x == y)
	case "!=":
		return boolToInt(x != y)
	}
	panic(fmt.Sprintf("interp: bad comparison %q", op))
}
