package interp

import (
	"testing"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/parse"
	"beyondiv/internal/ssa"
)

func runBoth(t *testing.T, src string, params map[string]int64) (*Result, *Result) {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Params: params, MaxSteps: 100_000}
	ra, err := RunAST(file, cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := ssa.Build(cfgbuild.Build(parse.MustParse(src)).Func)
	rs, err := RunSSA(info, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ra, rs
}

func TestArithmeticSemantics(t *testing.T) {
	src := `
a = 7 / 2
b = 7 / (0 - 2)
c = 5 / 0
d = 2 ** 10
e = 2 ** (0 - 1)
f = 0 ** 0
g = -3 ** 2
`
	ra, rs := runBoth(t, src, nil)
	want := map[string]int64{
		"a": 3, "b": -3, "c": 0, "d": 1024, "e": 0, "f": 1, "g": 9,
	}
	for k, v := range want {
		if ra.Scalars[k] != v {
			t.Errorf("AST %s = %d, want %d", k, ra.Scalars[k], v)
		}
		if rs.Scalars[k] != v {
			t.Errorf("SSA %s = %d, want %d", k, rs.Scalars[k], v)
		}
	}
}

func TestParamsAndArrays(t *testing.T) {
	ra, rs := runBoth(t, "x = n * 2\na[x] = x + 1\ny = a[x]\n", map[string]int64{"n": 21})
	for _, r := range []*Result{ra, rs} {
		if r.Scalars["x"] != 42 || r.Scalars["y"] != 43 {
			t.Errorf("scalars = %v", r.Scalars)
		}
		if len(r.Writes) != 1 || r.Writes[0] != (ArrayWrite{Array: "a", Index: 42, Value: 43}) {
			t.Errorf("writes = %v", r.Writes)
		}
	}
}

func TestDefaultArrayDeterministic(t *testing.T) {
	if DefaultArray("a", 5) != DefaultArray("a", 5) {
		t.Error("DefaultArray must be deterministic")
	}
	// Small range so conditionals take both branches.
	for i := int64(0); i < 100; i++ {
		v := DefaultArray("a", i)
		if v < -3 || v > 3 {
			t.Fatalf("DefaultArray out of range: %d", v)
		}
	}
}

func TestStepLimit(t *testing.T) {
	file := parse.MustParse("loop { i = i + 1 }")
	_, err := RunAST(file, Config{MaxSteps: 1000})
	if err != ErrStepLimit {
		t.Errorf("AST err = %v, want step limit", err)
	}
	info := ssa.Build(cfgbuild.Build(parse.MustParse("loop { i = i + 1 }")).Func)
	_, err = RunSSA(info, Config{MaxSteps: 1000})
	if err != ErrStepLimit {
		t.Errorf("SSA err = %v, want step limit", err)
	}
}

func TestExitSemantics(t *testing.T) {
	src := `
i = 0
loop {
    i = i + 1
    if i >= 3 { exit }
}
j = 1
exit
j = 2
`
	ra, rs := runBoth(t, src, nil)
	for _, r := range []*Result{ra, rs} {
		if r.Scalars["i"] != 3 || r.Scalars["j"] != 1 {
			t.Errorf("scalars = %v", r.Scalars)
		}
	}
}

func TestForLoopEdgeCases(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"c = 0\nfor i = 1 to 0 { c = c + 1 }", 0},
		{"c = 0\nfor i = 1 to 1 { c = c + 1 }", 1},
		{"c = 0\nfor i = 5 to 1 by -1 { c = c + 1 }", 5},
		{"c = 0\nfor i = 1 to 10 by 4 { c = c + 1 }", 3},
		// bound re-evaluated each iteration
		{"n = 4\nc = 0\nfor i = 1 to n { n = n - 1\nc = c + 1 }", 2},
	}
	for _, c := range cases {
		ra, rs := runBoth(t, c.src, nil)
		if ra.Scalars["c"] != c.want {
			t.Errorf("AST %q: c = %d, want %d", c.src, ra.Scalars["c"], c.want)
		}
		if rs.Scalars["c"] != c.want {
			t.Errorf("SSA %q: c = %d, want %d", c.src, rs.Scalars["c"], c.want)
		}
	}
}

func TestHooksFire(t *testing.T) {
	info := ssa.Build(cfgbuild.Build(parse.MustParse("s = 0\nfor i = 1 to 3 { s = s + i }")).Func)
	blocks, evals := 0, 0
	_, err := RunSSAHooked(info, Config{}, Hooks{
		OnBlock: func(b *ir.Block) { blocks++ },
		OnEval:  func(v *ir.Value, val int64) { evals++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocks == 0 || evals == 0 {
		t.Errorf("hooks did not fire: blocks=%d evals=%d", blocks, evals)
	}
}

func TestCustomArrayBase(t *testing.T) {
	file := parse.MustParse("x = a[7]\n")
	r, err := RunAST(file, Config{Arrays: func(name string, idx int64) int64 { return idx * 10 }})
	if err != nil {
		t.Fatal(err)
	}
	if r.Scalars["x"] != 70 {
		t.Errorf("x = %d, want 70", r.Scalars["x"])
	}
}

func BenchmarkRunSSA(b *testing.B) {
	info := ssa.Build(cfgbuild.Build(parse.MustParse(`
s = 0
for i = 1 to 1000 {
    s = s + i
    a[i] = s
}
`)).Func)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSSA(info, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
