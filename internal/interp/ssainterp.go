package interp

import (
	"fmt"

	"beyondiv/internal/ir"
	"beyondiv/internal/ssa"
)

// Hooks observe SSA execution; any field may be nil.
type Hooks struct {
	// OnBlock fires when a block begins executing.
	OnBlock func(b *ir.Block)
	// OnEval fires after each value evaluates.
	OnEval func(v *ir.Value, val int64)
}

// RunSSA executes an SSA-form function.
func RunSSA(info *ssa.Info, cfg Config) (*Result, error) {
	return RunSSAHooked(info, cfg, Hooks{})
}

// RunSSAHooked executes an SSA-form function with observation hooks.
func RunSSAHooked(info *ssa.Info, cfg Config, hooks Hooks) (*Result, error) {
	f := info.Func
	mem := newMemory(cfg.arrays())
	vals := make([]int64, f.NumValues())
	scalars := map[string]int64{}
	limit := cfg.maxSteps()
	steps := 0

	// Record the final value of each named definition.
	record := func(v *ir.Value, x int64) {
		vals[v.ID] = x
		if name := info.VarOf(v); name != "" {
			scalars[name] = x
		}
		if hooks.OnEval != nil {
			hooks.OnEval(v, x)
		}
	}

	block := f.Entry
	var prev *ir.Block
	for block != nil {
		if hooks.OnBlock != nil {
			hooks.OnBlock(block)
		}
		// φs read their inputs simultaneously on entry.
		var phiVals []int64
		for _, v := range block.Values {
			if v.Op != ir.OpPhi {
				break
			}
			slot := block.PredIndexOf(prev)
			if slot < 0 {
				return nil, fmt.Errorf("interp: φ %s executed with unknown predecessor %v", v, prev)
			}
			phiVals = append(phiVals, vals[v.Args[slot].ID])
		}
		phiIdx := 0
		for _, v := range block.Values {
			steps++
			if steps > limit {
				return nil, ErrStepLimit
			}
			switch v.Op {
			case ir.OpPhi:
				record(v, phiVals[phiIdx])
				phiIdx++
			case ir.OpConst:
				record(v, v.Const)
			case ir.OpParam:
				record(v, cfg.Params[v.Var])
			case ir.OpCopy:
				record(v, vals[v.Args[0].ID])
			case ir.OpAdd:
				record(v, vals[v.Args[0].ID]+vals[v.Args[1].ID])
			case ir.OpSub:
				record(v, vals[v.Args[0].ID]-vals[v.Args[1].ID])
			case ir.OpMul:
				record(v, vals[v.Args[0].ID]*vals[v.Args[1].ID])
			case ir.OpDiv:
				record(v, evalDiv(vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpExp:
				record(v, evalExp(vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpNeg:
				record(v, -vals[v.Args[0].ID])
			case ir.OpLoadElem:
				record(v, mem.load(v.Var, vals[v.Args[0].ID]))
			case ir.OpStoreElem:
				x := vals[v.Args[1].ID]
				mem.store(v.Var, vals[v.Args[0].ID], x)
				record(v, x)
			case ir.OpLess:
				record(v, compare("<", vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpLeq:
				record(v, compare("<=", vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpGreater:
				record(v, compare(">", vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpGeq:
				record(v, compare(">=", vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpEq:
				record(v, compare("==", vals[v.Args[0].ID], vals[v.Args[1].ID]))
			case ir.OpNeq:
				record(v, compare("!=", vals[v.Args[0].ID], vals[v.Args[1].ID]))
			default:
				return nil, fmt.Errorf("interp: cannot execute %s", v.LongString())
			}
		}
		prev = block
		switch block.Kind {
		case ir.BlockPlain:
			block = block.Succs[0]
		case ir.BlockIf:
			if vals[block.Control.ID] != 0 {
				block = block.Succs[0]
			} else {
				block = block.Succs[1]
			}
		case ir.BlockExit:
			block = nil
		}
	}
	return &Result{Scalars: scalars, Writes: mem.trace}, nil
}
