package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"time"
)

// poisonKey is the content address of one poisonable unit of work: the
// endpoint, the analyzer's options fingerprint, and the source text,
// all length-separated. The source alone is not enough — a source that
// faults only under the transform pipeline must poison /v1/optimize
// without also condemning /v1/analyze for the same text, and two
// servers with different analysis options do not share faults.
type poisonKey [sha256.Size]byte

func keyOf(endpoint, optFP, source string) poisonKey {
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write([]byte(optFP))
	h.Write([]byte{0})
	h.Write([]byte(source))
	var k poisonKey
	h.Sum(k[:0])
	return k
}

// poisonEntry remembers one source that made the engine fault (a
// contained panic — an analyzer bug, not an input diagnostic).
type poisonEntry struct {
	key   poisonKey
	phase string
	msg   string
	at    time.Time
}

// poison is the circuit-style cache of recently-faulting inputs: a
// source whose analysis panicked (contained) is remembered by hash, so
// an adversary replaying the same crasher gets a cheap cached 500
// instead of a fresh panic-unwind through the pipeline each time. It
// deliberately stores only contained faults — input diagnostics and
// limit hits are already cheap to re-produce and may be fixed by a
// changed limit, and cancellations are the client's own doing. A
// bounded LRU: new faults evict the least-recently-hit entry, so the
// cache cannot grow without bound however many distinct crashers an
// adversary finds.
type poison struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently hit
	entries map[poisonKey]*list.Element
}

// newPoison returns a poison cache of the given capacity; cap <= 0
// returns nil, the valid "off" value (every method no-ops).
func newPoison(capacity int) *poison {
	if capacity <= 0 {
		return nil
	}
	return &poison{cap: capacity, order: list.New(), entries: make(map[poisonKey]*list.Element)}
}

// lookup reports whether the source is poisoned, bumping its recency.
func (p *poison) lookup(key poisonKey) (poisonEntry, bool) {
	if p == nil {
		return poisonEntry{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.entries[key]
	if !ok {
		return poisonEntry{}, false
	}
	p.order.MoveToFront(el)
	return el.Value.(poisonEntry), true
}

// add records a faulting source, evicting the least-recently-hit entry
// when the cache is full.
func (p *poison) add(key poisonKey, phase, msg string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.entries[key]; ok {
		el.Value = poisonEntry{key: key, phase: phase, msg: msg, at: time.Now()}
		p.order.MoveToFront(el)
		return
	}
	for p.order.Len() >= p.cap {
		oldest := p.order.Back()
		p.order.Remove(oldest)
		delete(p.entries, oldest.Value.(poisonEntry).key)
	}
	p.entries[key] = p.order.PushFront(poisonEntry{key: key, phase: phase, msg: msg, at: time.Now()})
}

// len returns the number of poisoned sources currently remembered.
func (p *poison) len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}
