package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"beyondiv/internal/obs/metrics"
	"beyondiv/internal/progen"
)

// LoadConfig drives one chaos run against a live bivd. The mix is the
// point: alongside well-formed traffic it sends everything a hostile or
// merely unlucky network can — crashers, limit-trippers, slow-loris
// bodies, mid-request hangups — and the report says how the server
// degraded.
type LoadConfig struct {
	// Addr is the server's host:port (no scheme).
	Addr string
	// Duration bounds the run; <= 0 means 2s.
	Duration time.Duration
	// Concurrency is the number of client workers; <= 0 means 8.
	Concurrency int
	// Inject, when non-empty, adds a fault-injection request class: the
	// named phase panics server-side (needs bivd -inject). The panic is
	// contained and answered as a structured 500 — an uncontained one
	// would kill the server and fail the run.
	Inject string
	// TimeoutMS is the per-request deadline the well-formed classes ask
	// for; <= 0 means 2000.
	TimeoutMS int64
	// Seed makes the traffic mix reproducible; 0 means 1.
	Seed int64
}

// LoadReport is the outcome of one chaos run: latency percentiles,
// throughput, shed rate, and the full error taxonomy (by HTTP status
// and by the structured "kind" in error bodies). Unexplained counts
// 5xx responses whose body carried no recognised kind — the chaos run's
// failure signal, since every error bivd produces on purpose is
// attributed.
type LoadReport struct {
	DurationMS  int64            `json:"duration_ms"`
	Requests    int64            `json:"requests"`
	OK          int64            `json:"ok"`
	Shed        int64            `json:"shed"`
	ShedRate    float64          `json:"shed_rate"`
	Throughput  float64          `json:"throughput_rps"`
	P50US       int64            `json:"p50_us"`
	P99US       int64            `json:"p99_us"`
	ByClass     map[string]int64 `json:"by_class"`
	ByStatus    map[string]int64 `json:"by_status"`
	ByKind      map[string]int64 `json:"by_kind"`
	ClientErrs  int64            `json:"client_errors"`
	Unexplained int64            `json:"unexplained_5xx"`
}

// loadState is the shared scoreboard the workers write into.
type loadState struct {
	cfg    LoadConfig
	client *http.Client
	reg    *metrics.Registry // load.latency histogram
	mu     sync.Mutex
	report LoadReport

	requests    atomic.Int64
	ok          atomic.Int64
	shed        atomic.Int64
	clientErrs  atomic.Int64
	unexplained atomic.Int64
}

func (ls *loadState) count(m map[string]int64, key string) {
	ls.mu.Lock()
	m[key]++
	ls.mu.Unlock()
}

// RunLoad fires the chaos mix at cfg.Addr until the duration elapses
// and returns the aggregated report. The request classes, weighted
// toward plausible traffic with a steady trickle of abuse:
//
//	hot        the same small program every time — server cache hits
//	cold       a fresh progen program per request — cache misses
//	batch      several fresh programs through /v1/batch
//	explain    a provenance query on the hot program
//	optimize   the transformation pipeline on the hot program
//	badinput   a parse-error program → 422 input
//	guardtrip  a loop nest past the depth ceiling → 422 limit
//	tinyto     timeout_ms:1 on real work → 503 deadline (usually)
//	inject     server-side contained fault → 500 fault (when enabled)
//	slowloris  a trickled, never-finished body → server read deadline
//	cancel     client hangs up mid-request → server stops the run
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.TimeoutMS <= 0 {
		cfg.TimeoutMS = 2000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	ls := &loadState{
		cfg:    cfg,
		client: &http.Client{Timeout: 30 * time.Second},
		reg:    metrics.NewRegistry(),
		report: LoadReport{
			ByClass:  make(map[string]int64),
			ByStatus: make(map[string]int64),
			ByKind:   make(map[string]int64),
		},
	}
	// Probe once so a wrong address fails fast instead of producing a
	// report full of client errors.
	if resp, err := ls.client.Get("http://" + cfg.Addr + "/healthz"); err != nil {
		return nil, fmt.Errorf("loadgen: server not reachable at %s: %w", cfg.Addr, err)
	} else {
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			gen := progen.New()
			for ctx.Err() == nil {
				ls.one(ctx, rng, gen, w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := &ls.report
	r.DurationMS = elapsed.Milliseconds()
	r.Requests = ls.requests.Load()
	r.OK = ls.ok.Load()
	r.Shed = ls.shed.Load()
	r.ClientErrs = ls.clientErrs.Load()
	r.Unexplained = ls.unexplained.Load()
	if r.Requests > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
		r.Throughput = float64(r.Requests) / elapsed.Seconds()
	}
	if h, ok := ls.reg.Snapshot().Hists["load.latency"]; ok {
		r.P50US = h.P50 / 1000
		r.P99US = h.P99 / 1000
	}
	return r, nil
}

// WriteJSON renders the report, indented, to w.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the BENCH_serve.json artifact).
func (r *LoadReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// hotSource is the request every "hot" class iteration sends — the
// server's result cache absorbs all but the first.
var hotSource = progen.StraightLineLoop(8)

// one issues a single request of a randomly chosen class.
func (ls *loadState) one(ctx context.Context, rng *rand.Rand, gen *progen.Gen, worker int) {
	type class struct {
		name   string
		weight int
		run    func()
	}
	to := ls.cfg.TimeoutMS
	classes := []class{
		{"hot", 30, func() { ls.post(ctx, "/v1/analyze", &request{Source: hotSource, TimeoutMS: to}) }},
		{"cold", 20, func() { ls.post(ctx, "/v1/analyze", &request{Source: gen.Program(rng.Int63()), TimeoutMS: to}) }},
		{"batch", 6, func() {
			srcs := make([]string, 3)
			for i := range srcs {
				srcs[i] = gen.Program(rng.Int63())
			}
			ls.post(ctx, "/v1/batch", &request{Sources: srcs, TimeoutMS: to})
		}},
		{"explain", 6, func() { ls.post(ctx, "/v1/explain", &request{Source: hotSource, Var: "i", Deps: true, TimeoutMS: to}) }},
		{"optimize", 6, func() { ls.post(ctx, "/v1/optimize", &request{Source: hotSource, TimeoutMS: to}) }},
		{"badinput", 8, func() { ls.post(ctx, "/v1/analyze", &request{Source: "for { this is not a program", TimeoutMS: to}) }},
		{"guardtrip", 8, func() { ls.post(ctx, "/v1/analyze", &request{Source: progen.NestedLoops(80), TimeoutMS: to}) }},
		{"tinyto", 6, func() {
			// Unique suffix keeps the source out of the server's result
			// cache — a cache hit is served free even under a dead
			// deadline, so only cold work can trip timeout_ms: 1.
			src := fmt.Sprintf("%s\n// cold %d", progen.MutualChain(400), rng.Int63())
			ls.post(ctx, "/v1/analyze", &request{Source: src, TimeoutMS: 1})
		}},
		{"slowloris", 5, func() { ls.slowloris(ctx) }},
		{"cancel", 5, func() { ls.cancelled(ctx, gen.Program(rng.Int63())) }},
	}
	if ls.cfg.Inject != "" {
		classes = append(classes, class{"inject", 6, func() {
			ls.post(ctx, "/v1/analyze", &request{Source: gen.Program(rng.Int63()), Inject: ls.cfg.Inject, TimeoutMS: to})
		}})
	}
	total := 0
	for _, c := range classes {
		total += c.weight
	}
	pick := rng.Intn(total)
	for _, c := range classes {
		if pick -= c.weight; pick < 0 {
			ls.count(ls.report.ByClass, c.name)
			c.run()
			return
		}
	}
}

// post sends one JSON request and scores the response: status and —
// for errors — the structured kind from the body. A 5xx without a
// recognised kind counts as unexplained.
func (ls *loadState) post(ctx context.Context, path string, req *request) {
	body, _ := json.Marshal(req)
	start := time.Now()
	hreq, err := http.NewRequestWithContext(ctx, "POST", "http://"+ls.cfg.Addr+path, bytes.NewReader(body))
	if err != nil {
		ls.clientErrs.Add(1)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	ls.requests.Add(1)
	resp, err := ls.client.Do(hreq)
	if err != nil {
		// Run-deadline cancellations of in-flight requests land here;
		// they are the harness stopping, not a server failure.
		ls.clientErrs.Add(1)
		return
	}
	defer resp.Body.Close()
	ls.reg.ObserveDuration("load.latency", time.Since(start))
	ls.count(ls.report.ByStatus, fmt.Sprintf("%d", resp.StatusCode))
	if resp.StatusCode == http.StatusOK {
		ls.ok.Add(1)
		io.Copy(io.Discard, resp.Body)
		return
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		ls.shed.Add(1)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Kind == "" {
		ls.count(ls.report.ByKind, "undecodable")
		if resp.StatusCode >= 500 {
			ls.unexplained.Add(1)
		}
		return
	}
	ls.count(ls.report.ByKind, eb.Kind)
	if resp.StatusCode >= 500 {
		switch eb.Kind {
		case "fault", "canceled", "deadline", "draining":
			// Attributed — the server said why.
		default:
			ls.unexplained.Add(1)
		}
	}
}

// slowloris opens a raw connection, sends headers promising a large
// body, trickles a few bytes, and abandons the request. The server's
// read deadline (debugserv Options.ReadTimeout, bivd -read-timeout)
// must reap the connection rather than let it pin resources; the class
// asserts nothing per-request — its damage shows up, if at all, as
// other classes shedding.
func (ls *loadState) slowloris(ctx context.Context) {
	d := net.Dialer{Timeout: 2 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", ls.cfg.Addr)
	if err != nil {
		ls.clientErrs.Add(1)
		return
	}
	defer conn.Close()
	ls.requests.Add(1)
	fmt.Fprintf(conn, "POST /v1/analyze HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n", ls.cfg.Addr)
	for i := 0; i < 5; i++ {
		if _, err := conn.Write([]byte("{")); err != nil {
			return // server cut us off — the defense working
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// cancelled starts a real request and hangs up a few milliseconds in,
// exercising the server's cooperative cancellation mid-analysis.
func (ls *loadState) cancelled(ctx context.Context, source string) {
	cctx, cancel := context.WithTimeout(ctx, time.Duration(1+rand.Intn(4))*time.Millisecond)
	defer cancel()
	body, _ := json.Marshal(&request{Source: source})
	hreq, err := http.NewRequestWithContext(cctx, "POST", "http://"+ls.cfg.Addr+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		ls.clientErrs.Add(1)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	ls.requests.Add(1)
	resp, err := ls.client.Do(hreq)
	if err != nil {
		return // expected: we hung up
	}
	// The race went the response's way — score it normally.
	defer resp.Body.Close()
	ls.count(ls.report.ByStatus, fmt.Sprintf("%d", resp.StatusCode))
	if resp.StatusCode == http.StatusOK {
		ls.ok.Add(1)
	}
	io.Copy(io.Discard, resp.Body)
}
