package serve

import "testing"

func TestPoisonLRUEviction(t *testing.T) {
	p := newPoison(2)
	a, b, c := keyOf("analyze", "fp", "A"), keyOf("analyze", "fp", "B"), keyOf("analyze", "fp", "C")
	p.add(a, "iv", "boom")
	p.add(b, "iv", "boom")
	if _, ok := p.lookup(b); !ok { // bump B
		t.Fatal("B missing")
	}
	p.add(c, "iv", "boom") // must evict A, the least recently hit
	if p.len() != 2 {
		t.Fatalf("len = %d, want 2", p.len())
	}
	if _, ok := p.lookup(a); ok {
		t.Error("A survived eviction")
	}
	for name, k := range map[string]poisonKey{"B": b, "C": c} {
		if _, ok := p.lookup(k); !ok {
			t.Errorf("%s evicted, want kept", name)
		}
	}
}

func TestPoisonRefreshAndOff(t *testing.T) {
	p := newPoison(1)
	k := keyOf("analyze", "fp", "X")
	p.add(k, "iv", "first")
	p.add(k, "sccp", "second") // refresh in place, no growth
	if e, ok := p.lookup(k); !ok || e.phase != "sccp" || p.len() != 1 {
		t.Fatalf("refresh: %+v ok=%v len=%d", e, ok, p.len())
	}

	var off *poison = newPoison(0) // off-value: every method no-ops
	off.add(k, "iv", "boom")
	if _, ok := off.lookup(k); ok || off.len() != 0 {
		t.Error("disabled poison cache stored something")
	}
}
