package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"beyondiv"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs/debugserv"
	"beyondiv/internal/progen"
)

const testSrc = `j = 0
L1: for i = 1 to n {
    j = j + i
    a[j] = a[j - 1]
}`

// startServer runs a Server behind a real debugserv listener — tests
// exercise the full HTTP stack, mux patterns included.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ds, err := debugserv.ServeWith("127.0.0.1:0", srv.Registry(), nil, debugserv.Options{
		Health: srv.Health,
		Routes: srv.Register,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return srv, "http://" + ds.Addr()
}

// post sends one request and decodes the response body into out.
func post(t *testing.T, base, path string, req *request, out any) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestEndpointsHappyPath(t *testing.T) {
	srv, base := startServer(t, Config{Options: beyondiv.Options{CacheEntries: 16}})

	var ar analyzeResponse
	if code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc}, &ar); code != 200 {
		t.Fatalf("analyze status = %d", code)
	}
	if !strings.Contains(ar.Classification, "loop L1") || !strings.Contains(ar.Classification, "j") {
		t.Errorf("classification report missing loop findings:\n%s", ar.Classification)
	}

	var or optimizeResponse
	if code, _ := post(t, base, "/v1/optimize", &request{Source: testSrc}, &or); code != 200 {
		t.Fatalf("optimize status = %d", code)
	}
	if or.Rounds < 1 {
		t.Errorf("optimize rounds = %d, want >= 1", or.Rounds)
	}

	var er explainResponse
	if code, _ := post(t, base, "/v1/explain", &request{Source: testSrc, Var: "j", Deps: true}, &er); code != 200 {
		t.Fatalf("explain status = %d", code)
	}
	if er.Explain == "" || er.Deps == "" {
		t.Errorf("explain = %+v, want both provenance sections", er)
	}

	var br batchResponse
	if code, _ := post(t, base, "/v1/batch", &request{Sources: []string{testSrc, testSrc}}, &br); code != 200 {
		t.Fatalf("batch status = %d", code)
	}
	if len(br.Results) != 2 || br.Errors != 0 {
		t.Fatalf("batch = %+v", br)
	}

	reg := srv.Registry()
	if reg.Counter("serve.ok") != 4 || reg.Counter("serve.req") != 4 {
		t.Errorf("counters: ok=%d req=%d, want 4/4", reg.Counter("serve.ok"), reg.Counter("serve.req"))
	}
}

// TestErrorTaxonomy: every failure class maps to its documented status
// and structured kind, and everything that reached the engine carries
// phase attribution.
func TestErrorTaxonomy(t *testing.T) {
	_, base := startServer(t, Config{})

	cases := []struct {
		name      string
		path      string
		req       *request
		status    int
		kind      string
		wantPhase bool
	}{
		{"missing source", "/v1/analyze", &request{}, 400, "bad_request", false},
		{"source on batch", "/v1/batch", &request{Source: testSrc}, 400, "bad_request", false},
		{"empty batch", "/v1/batch", &request{}, 400, "bad_request", false},
		{"explain without query", "/v1/explain", &request{Source: testSrc}, 400, "bad_request", false},
		{"inject not enabled", "/v1/analyze", &request{Source: testSrc, Inject: "sccp"}, 400, "bad_request", false},
		{"parse error", "/v1/analyze", &request{Source: "for { nonsense"}, 422, "input", true},
		{"guard trip", "/v1/analyze", &request{Source: progen.NestedLoops(80)}, 422, "limit", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var eb errorBody
			code, _ := post(t, base, tc.path, tc.req, &eb)
			if code != tc.status || eb.Kind != tc.kind {
				t.Fatalf("got %d/%q, want %d/%q (%+v)", code, eb.Kind, tc.status, tc.kind, eb)
			}
			if tc.wantPhase && eb.Phase == "" {
				t.Errorf("error lost phase attribution: %+v", eb)
			}
		})
	}

	// Unknown body fields are rejected, not silently dropped.
	resp, err := http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"source": "x = 1", "bogus": true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field status = %d, want 400", resp.StatusCode)
	}

	// Wrong method never reaches a handler.
	if resp, err = http.Get(base + "/v1/analyze"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestInjectedFault: with AllowInject on, the named phase panics, the
// panic is contained into a structured 500 naming the phase — and the
// injected fault does NOT poison the source for legitimate traffic.
func TestInjectedFault(t *testing.T) {
	srv, base := startServer(t, Config{AllowInject: true, Options: beyondiv.Options{CacheEntries: 16}})

	var eb errorBody
	code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc, Inject: "sccp"}, &eb)
	if code != 500 || eb.Kind != "fault" || eb.Phase != "sccp" {
		t.Fatalf("injected fault = %d %+v, want 500/fault/sccp", code, eb)
	}
	if srv.poison.len() != 0 {
		t.Fatalf("injected fault poisoned the source for legitimate traffic")
	}
	// The same source analyzes fine without injection.
	if code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc}, nil); code != 200 {
		t.Fatalf("post-inject analyze status = %d, want 200", code)
	}
}

// TestPoisonCacheAndEviction: a genuinely faulting source is remembered
// by hash — the replay is answered from the poison cache (same status,
// same phase, poisoned: true, no analysis) — and the LRU evicts the
// least-recently-hit crasher at capacity.
func TestPoisonCacheAndEviction(t *testing.T) {
	// Every analysis on this server faults in iv: the shared limits
	// carry a PanicIn hook, standing in for an analyzer bug.
	srv, base := startServer(t, Config{
		PoisonCapacity: 2,
		Options:        beyondiv.Options{Limits: guard.Limits{Inject: guard.PanicIn("iv")}},
	})

	srcs := []string{testSrc + "\n// A", testSrc + "\n// B", testSrc + "\n// C"}
	for i, src := range srcs[:2] {
		var eb errorBody
		code, _ := post(t, base, "/v1/analyze", &request{Source: src}, &eb)
		if code != 500 || eb.Kind != "fault" || eb.Poisoned {
			t.Fatalf("fresh fault %d = %d %+v", i, code, eb)
		}
	}
	// Replay of B: served from the poison cache with the phase intact.
	var replay errorBody
	code, _ := post(t, base, "/v1/analyze", &request{Source: srcs[1]}, &replay)
	if code != 500 || !replay.Poisoned || replay.Phase != "iv" {
		t.Fatalf("replay = %d %+v, want poisoned 500 with phase iv", code, replay)
	}
	if srv.Registry().Counter("serve.poison.hit") != 1 {
		t.Errorf("serve.poison.hit = %d, want 1", srv.Registry().Counter("serve.poison.hit"))
	}
	// C faults; the cache is full, so A (least recently hit) is evicted.
	post(t, base, "/v1/analyze", &request{Source: srcs[2]}, &errorBody{})
	if srv.poison.len() != 2 {
		t.Fatalf("poison len = %d, want 2", srv.poison.len())
	}
	var fresh errorBody
	code, _ = post(t, base, "/v1/analyze", &request{Source: srcs[0]}, &fresh)
	if code != 500 || fresh.Poisoned {
		t.Fatalf("evicted source must re-analyze (fresh fault), got %d %+v", code, fresh)
	}
	// A's re-fault re-poisoned it, evicting B in turn: the cache now
	// holds the two most recently faulting sources, A and C.
	if srv.poison.len() != 2 {
		t.Fatalf("poison len after re-fault = %d, want 2", srv.poison.len())
	}
	for _, src := range []string{srcs[0], srcs[2]} {
		if _, ok := srv.poison.lookup(keyOf("analyze", srv.optFP, src)); !ok {
			t.Errorf("source %q fell out of the poison cache", src[len(src)-1:])
		}
	}
}

// TestPoisonScopedToEndpoint: poison keys bind the endpoint (and the
// analyzer options fingerprint), so a source that faults only under
// the transform pipeline poisons /v1/optimize without condemning
// /v1/analyze for the same text. Regression test: keys used to be
// sha256(source) alone, and one optimize fault made every endpoint
// serve the source a cached 500.
func TestPoisonScopedToEndpoint(t *testing.T) {
	// Shared limits fault in the dce transform pass: optimize crashes,
	// plain analysis never reaches the phase.
	srv, base := startServer(t, Config{
		Options: beyondiv.Options{Limits: guard.Limits{Inject: guard.PanicIn("xform.dce")}},
	})

	var eb errorBody
	code, _ := post(t, base, "/v1/optimize", &request{Source: testSrc}, &eb)
	if code != 500 || eb.Kind != "fault" || eb.Poisoned {
		t.Fatalf("optimize fault = %d %+v, want fresh 500 fault", code, eb)
	}
	// The same source must still analyze: the fault belongs to the
	// optimize key, not to the source text.
	var ar analyzeResponse
	if code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc}, &ar); code != 200 {
		t.Fatalf("analyze after optimize fault = %d, want 200", code)
	}
	if ar.Classification == "" {
		t.Fatal("analyze after optimize fault returned no classification")
	}
	// Replayed optimize is served from the poison cache.
	var replay errorBody
	code, _ = post(t, base, "/v1/optimize", &request{Source: testSrc}, &replay)
	if code != 500 || !replay.Poisoned || replay.Phase != "xform.dce" {
		t.Fatalf("optimize replay = %d %+v, want poisoned 500 in xform.dce", code, replay)
	}
	if got := srv.Registry().Counter("serve.poison.hit"); got != 1 {
		t.Errorf("serve.poison.hit = %d, want 1", got)
	}
}

// TestAdmissionShed: with every worker slot held and the queue full,
// the next request is shed immediately — 429, Retry-After, kind shed —
// instead of waiting on a backlog it would never clear.
func TestAdmissionShed(t *testing.T) {
	gate := make(chan struct{})
	srv, base := startServer(t, Config{
		MaxInFlight: 1,
		MaxQueue:    1,
		Options: beyondiv.Options{Limits: guard.Limits{Inject: func(phase string) {
			if phase == "sccp" {
				<-gate // hold the worker in-phase
			}
		}}},
	})

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc}, nil)
			done <- code
		}()
	}
	waitFor(t, func() bool {
		return srv.adm.inflight.Load() == 1 && srv.adm.queued.Load() == 1
	}, "one in flight, one queued")

	var eb errorBody
	code, hdr := post(t, base, "/v1/analyze", &request{Source: testSrc}, &eb)
	if code != 429 || eb.Kind != "shed" || hdr.Get("Retry-After") == "" {
		t.Fatalf("overload = %d %+v (Retry-After %q), want 429/shed", code, eb, hdr.Get("Retry-After"))
	}
	if srv.Registry().Counter("serve.shed") != 1 {
		t.Errorf("serve.shed = %d, want 1", srv.Registry().Counter("serve.shed"))
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if code := <-done; code != 200 {
			t.Errorf("held request %d finished with %d, want 200", i, code)
		}
	}
}

// TestDrainWhileInFlight: SIGTERM semantics end to end — draining
// rejects new work and queued waiters with 503, /healthz flips to 503
// draining, the in-flight request still completes with 200 (no dropped
// responses), Drain reports clean, and no goroutines leak.
func TestDrainWhileInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	gate := make(chan struct{})
	srv, base := startServer(t, Config{
		MaxInFlight: 1,
		MaxQueue:    2,
		Options: beyondiv.Options{Limits: guard.Limits{Inject: func(phase string) {
			if phase == "sccp" {
				<-gate
			}
		}}},
	})

	// Admit the first request before sending the second, so their roles
	// (in-flight vs queued) are deterministic.
	inflight := make(chan int, 1)
	go func() {
		code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc}, nil)
		inflight <- code
	}()
	waitFor(t, func() bool { return srv.adm.inflight.Load() == 1 }, "one in flight")
	queued := make(chan errorBody, 1)
	go func() {
		var eb errorBody
		post(t, base, "/v1/analyze", &request{Source: testSrc}, &eb)
		queued <- eb
	}()
	waitFor(t, func() bool { return srv.adm.queued.Load() == 1 }, "one queued")

	drained := make(chan bool, 1)
	go func() { drained <- srv.Drain(5 * time.Second) }()
	waitFor(t, srv.Draining, "draining flag")

	// The queued waiter is turned away so drain cannot starve.
	if eb := <-queued; eb.Kind != "draining" {
		t.Fatalf("queued request during drain = %+v, want kind draining", eb)
	}
	// New work is rejected at the door...
	var eb errorBody
	if code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc}, &eb); code != 503 || eb.Kind != "draining" {
		t.Fatalf("new request during drain = %d %+v", code, eb)
	}
	// ...and /healthz tells the load balancer.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h debugserv.Health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != 503 || h.State != "draining" {
		t.Fatalf("/healthz during drain = %d %+v", resp.StatusCode, h)
	}

	close(gate)
	if code := <-inflight; code != 200 {
		t.Fatalf("in-flight request dropped during drain: status %d", code)
	}
	if !<-drained {
		t.Fatal("Drain() = false, want clean drain")
	}

	// Goroutine hygiene: after the drain settles, nothing we started is
	// still running (a few HTTP keep-alive handlers may linger briefly).
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+3 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		t.Errorf("goroutines: %d before, %d after drain — leak", before, n)
	}
}

// TestDeadlineMidPhase: a request whose deadline expires while a phase
// runs comes back 503 kind deadline with that phase named — the engine's
// cooperative cancellation surfacing through the full HTTP stack.
func TestDeadlineMidPhase(t *testing.T) {
	_, base := startServer(t, Config{
		Options: beyondiv.Options{Limits: guard.Limits{Inject: func(phase string) {
			if phase == "sccp" {
				time.Sleep(80 * time.Millisecond) // outlive the request deadline in-phase
			}
		}}},
	})
	var eb errorBody
	code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc, TimeoutMS: 15}, &eb)
	if code != 503 || eb.Kind != "deadline" || eb.Phase != "sccp" {
		t.Fatalf("mid-phase deadline = %d %+v, want 503/deadline/sccp", code, eb)
	}
}

// TestBatchPartialFailure: one bad source inside a batch fails alone,
// with its own kind and phase; the rest of the batch completes.
func TestBatchPartialFailure(t *testing.T) {
	_, base := startServer(t, Config{})
	var br batchResponse
	code, _ := post(t, base, "/v1/batch", &request{Sources: []string{testSrc, "for { broken"}}, &br)
	if code != 200 || br.Errors != 1 {
		t.Fatalf("batch = %d %+v", code, br)
	}
	if br.Results[0].Error != "" || br.Results[0].Classification == "" {
		t.Errorf("good source = %+v", br.Results[0])
	}
	if bad := br.Results[1]; bad.Kind != "input" || bad.Phase == "" {
		t.Errorf("bad source = %+v, want kind input with phase", bad)
	}
}

// TestTimeoutCap: a body asking for an hour is capped at MaxTimeout.
func TestTimeoutCap(t *testing.T) {
	_, base := startServer(t, Config{
		MaxTimeout: 20 * time.Millisecond,
		Options: beyondiv.Options{Limits: guard.Limits{Inject: func(phase string) {
			if phase == "sccp" {
				time.Sleep(100 * time.Millisecond)
			}
		}}},
	})
	var eb errorBody
	code, _ := post(t, base, "/v1/analyze", &request{Source: testSrc, TimeoutMS: 3_600_000}, &eb)
	if code != 503 || eb.Kind != "deadline" {
		t.Fatalf("capped timeout = %d %+v, want 503/deadline", code, eb)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosLoadBenchArtifact is the in-process chaos run: a real server
// under the full hostile mix — injected faults included — must keep
// answering (successes > 0), attribute every 5xx, shed rather than
// wedge, and drain clean afterwards with no goroutine leak. With
// BENCH_JSON set it writes the run's report (the BENCH_serve.json
// artifact `make bench-serve` collects).
func TestChaosLoadBenchArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short")
	}
	before := runtime.NumGoroutine()
	srv := New(Config{
		MaxInFlight: 4,
		MaxQueue:    8,
		AllowInject: true,
		Options:     beyondiv.Options{CacheEntries: 256, Jobs: 2},
	})
	ds, err := debugserv.ServeWith("127.0.0.1:0", srv.Registry(), nil, debugserv.Options{
		Health:      srv.Health,
		Routes:      srv.Register,
		ReadTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	dur := 1500 * time.Millisecond
	if os.Getenv("BENCH_JSON") == "" {
		dur = 600 * time.Millisecond
	}
	report, err := RunLoad(LoadConfig{
		Addr:        ds.Addr(),
		Duration:    dur,
		Concurrency: 8,
		Inject:      "sccp",
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: %d requests (%.0f/s), %d ok, %d shed, p50 %dus p99 %dus, kinds %v",
		report.Requests, report.Throughput, report.OK, report.Shed,
		report.P50US, report.P99US, report.ByKind)

	if report.OK == 0 {
		t.Fatalf("no successful requests under chaos: %+v", report)
	}
	if report.Unexplained > 0 {
		t.Fatalf("%d unexplained 5xx responses: %+v", report.Unexplained, report)
	}
	if report.ByKind["fault"] == 0 {
		t.Errorf("injected faults never surfaced as attributed 500s: %v", report.ByKind)
	}

	// Clean shutdown after the storm: drain, close, no leaked goroutines.
	if !srv.Drain(5 * time.Second) {
		t.Error("server failed to drain clean after chaos run")
	}
	ds.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+4 {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+4 {
		t.Errorf("goroutines: %d before chaos, %d after drain — leak", before, n)
	}

	if path := os.Getenv("BENCH_JSON"); path != "" {
		if err := report.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("report written to %s", path)
	}
}
