// Package serve is the analysis service layer behind cmd/bivd: HTTP/
// JSON endpoints over a shared analyzer, designed robustness-first for
// a long-running daemon taking untrusted traffic.
//
//	POST /v1/analyze   {"source": "...", "timeout_ms": 500}
//	POST /v1/optimize  {"source": "..."}
//	POST /v1/explain   {"source": "...", "var": "j"} or {"source": ..., "deps": true}
//	POST /v1/batch     {"sources": ["...", ...]}
//
// Four mechanisms keep an overloaded or attacked process answering:
//
//   - Admission control: a semaphore of worker slots with a bounded
//     wait queue in front. When both are full the request is shed at
//     once with 429 + Retry-After — the server degrades by refusing
//     cheaply, never by queueing unboundedly.
//   - Per-request deadlines: every request runs under a context
//     (default or body-requested timeout, capped), threaded through
//     the engine's cooperative cancellation, so a timed-out or
//     disconnected client stops burning CPU mid-phase; the 503 body
//     names the phase the run was cancelled in.
//   - Fault isolation: the engine's per-pass panic containment maps to
//     structured JSON — 422 for input/limit errors, 500 for contained
//     internal faults — always with phase attribution, and a poison
//     cache remembers recently-faulting source hashes so a replayed
//     crasher is rejected from the cache instead of re-panicking the
//     pipeline.
//   - Graceful drain: Drain stops admission (healthz flips to
//     draining, waiters get 503), waits for in-flight requests up to a
//     deadline, and reports whether the drain was clean.
//
// The handlers mount on the debugserv mux (Register + Health), so one
// port serves the API, /metrics, /healthz, /lastruns and pprof.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"beyondiv"
	"beyondiv/internal/guard"
	"beyondiv/internal/obs/debugserv"
	"beyondiv/internal/obs/metrics"
)

// Config assembles a Server.
type Config struct {
	// Options configure the shared analyzer: cache, guard limits,
	// batch worker count (Jobs bounds the fan-out *inside* one /v1/batch
	// request; MaxInFlight bounds requests — total engine concurrency
	// is at most MaxInFlight × Jobs). Options.Parallel is both the
	// default intra-run width and the cap on the request body's
	// "parallel" field (0 caps at GOMAXPROCS); a daemon already running
	// MaxInFlight requests concurrently usually wants it at 1.
	// Metrics/Flight set here are also used for the server's own serve.*
	// counters and gauges.
	Options beyondiv.Options
	// MaxInFlight is the number of requests analyzed concurrently
	// (worker slots); <= 0 means 4.
	MaxInFlight int
	// MaxQueue bounds the wait queue in front of the worker slots;
	// <= 0 means 4 × MaxInFlight. A request arriving to a full queue is
	// shed with 429.
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the body names
	// none; <= 0 means 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps body-requested timeouts; <= 0 means 60s.
	MaxTimeout time.Duration
	// MaxBodyBytes caps the request body; <= 0 means 4 MiB.
	MaxBodyBytes int64
	// PoisonCapacity is the poison cache's entry count (recently
	// faulting source hashes rejected without re-analysis); 0 means
	// 128, negative disables the cache.
	PoisonCapacity int
	// AllowInject, when true, honors the request body's "inject" field:
	// the named pipeline phase panics with a contained fault for that
	// request. It exists for the chaos load harness and must stay off
	// outside tests (bivd arms it with -inject).
	AllowInject bool
}

// Server is the analysis service: one shared analyzer, admission
// control, per-request deadlines, poison cache and drain state. Safe
// for concurrent use; create with New.
type Server struct {
	cfg    Config
	an     *beyondiv.Analyzer
	reg    *metrics.Registry
	adm    *admission
	poison *poison
	// optFP is the analyzer options' fingerprint, part of every poison
	// key: faults are remembered per endpoint and option set, never
	// shared across them.
	optFP string
	// byPar memoizes width-specific sibling analyzers for requests
	// whose "parallel" differs from the configured default. Siblings
	// share the default analyzer's cache, metrics and flight recorder
	// (Parallel stays out of the cache fingerprint — results are
	// bit-identical at every width).
	mu    sync.Mutex
	byPar map[int]*beyondiv.Analyzer

	draining atomic.Bool
	drainCh  chan struct{} // closed when draining starts
}

// New builds a server from cfg, normalizing zero fields to defaults.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.PoisonCapacity == 0 {
		cfg.PoisonCapacity = 128
	}
	if cfg.Options.Metrics == nil {
		cfg.Options.Metrics = metrics.NewRegistry()
	}
	// Materialize a requested private cache so width-specific sibling
	// analyzers (per-request "parallel") share it instead of each
	// building their own.
	if cfg.Options.Cache == nil && cfg.Options.CacheEntries > 0 {
		cfg.Options.Cache = beyondiv.NewCache(cfg.Options.CacheEntries)
		cfg.Options.CacheEntries = 0
	}
	s := &Server{
		cfg:     cfg,
		an:      beyondiv.NewAnalyzer(cfg.Options),
		reg:     cfg.Options.Metrics,
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		poison:  newPoison(cfg.PoisonCapacity),
		optFP:   cfg.Options.Fingerprint(),
		byPar:   map[int]*beyondiv.Analyzer{},
		drainCh: make(chan struct{}),
	}
	return s
}

// Registry returns the metrics registry the server records into.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Register mounts the /v1 API on mux — typically the debugserv mux,
// so the service and its debug surface share one port.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		s.handle("analyze", w, r, s.doAnalyze)
	})
	mux.HandleFunc("POST /v1/optimize", func(w http.ResponseWriter, r *http.Request) {
		s.handle("optimize", w, r, s.doOptimize)
	})
	mux.HandleFunc("POST /v1/explain", func(w http.ResponseWriter, r *http.Request) {
		s.handle("explain", w, r, s.doExplain)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		s.handle("batch", w, r, s.doBatch)
	})
}

// Health reports the server's live state for /healthz: draining once
// Drain has been called, plus admission-pipeline depths.
func (s *Server) Health() debugserv.Health {
	state := "ok"
	if s.draining.Load() {
		state = "draining"
	}
	return debugserv.Health{
		State:    state,
		InFlight: s.adm.inflight.Load(),
		Queued:   s.adm.queued.Load(),
	}
}

// Drain flips the server into draining mode — /healthz answers 503,
// new requests and queued waiters are rejected with kind "draining" —
// and waits up to timeout for in-flight requests to finish. It returns
// true when the drain was clean (nothing in flight at return), false
// when the deadline expired with requests still running. Idempotent;
// concurrent calls all wait.
func (s *Server) Drain(timeout time.Duration) bool {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.adm.idle() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return s.adm.idle()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// request is every /v1 endpoint's body. Single-source endpoints use
// Source; /v1/batch uses Sources; /v1/explain needs Var or Deps.
type request struct {
	Source  string   `json:"source,omitempty"`
	Sources []string `json:"sources,omitempty"`
	// Var names the variable whose classification provenance
	// /v1/explain renders; Deps asks for every dependence edge's
	// provenance instead (both may be set).
	Var  string `json:"var,omitempty"`
	Deps bool   `json:"deps,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallel overrides the server's default intra-run fan-out width
	// for this request, capped at the server's own configured width
	// (Config.Options.Parallel; GOMAXPROCS when that is 0). <= 0 keeps
	// the default. Results are identical at every width.
	Parallel int `json:"parallel,omitempty"`
	// Inject (test traffic only; requires Config.AllowInject) makes the
	// named pipeline phase fail with a contained fault.
	Inject string `json:"inject,omitempty"`
}

// errorBody is every non-200 response: the rendered error, a stable
// machine-readable kind, and — for anything that reached the engine —
// the pipeline phase the failure is attributed to.
//
// Kinds by status: 400 bad_request; 422 input, limit; 429 shed;
// 500 fault (poisoned=true when served from the poison cache);
// 503 canceled, deadline, draining.
type errorBody struct {
	Error        string `json:"error"`
	Kind         string `json:"kind"`
	Phase        string `json:"phase,omitempty"`
	Poisoned     bool   `json:"poisoned,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// handle is the shared request path: count → drain gate → decode →
// deadline → poison gate → admission → run → respond. fn runs with the
// request's context and returns the endpoint's response value or an
// analysis error.
func (s *Server) handle(endpoint string, w http.ResponseWriter, r *http.Request,
	fn func(ctx context.Context, req *request) (any, error)) {
	start := time.Now()
	s.reg.Inc("serve.req")
	s.reg.Inc("serve.req." + endpoint)

	if s.draining.Load() {
		s.reg.Inc("serve.rejected.draining")
		s.reply(w, endpoint, start, http.StatusServiceUnavailable,
			errorBody{Error: "server is draining", Kind: "draining", RetryAfterMS: 1000})
		return
	}

	req, errb := s.decode(w, r)
	if errb != nil {
		s.reply(w, endpoint, start, http.StatusBadRequest, *errb)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Poison gate: a source that recently crashed the analyzer is
	// answered from the cache — same status and phase, none of the
	// work. Injected test faults bypass the cache in both directions
	// (they would poison legitimate sources).
	if req.Inject == "" && req.Source != "" {
		if entry, ok := s.poison.lookup(keyOf(endpoint, s.optFP, req.Source)); ok {
			s.reg.Inc("serve.poison.hit")
			s.reply(w, endpoint, start, http.StatusInternalServerError,
				errorBody{Error: entry.msg, Kind: "fault", Phase: entry.phase, Poisoned: true})
			return
		}
	}

	switch s.adm.acquire(ctx, s.drainCh) {
	case shed:
		s.reg.Inc("serve.shed")
		w.Header().Set("Retry-After", "1")
		s.reply(w, endpoint, start, http.StatusTooManyRequests,
			errorBody{Error: "server at capacity: worker slots and wait queue full", Kind: "shed", RetryAfterMS: 1000})
		return
	case cancelled:
		s.reply(w, endpoint, start, http.StatusServiceUnavailable,
			errorBody{Error: "request " + cancelKind(ctx.Err()) + " while queued for admission", Kind: cancelKind(ctx.Err()), Phase: "admission"})
		return
	case draining:
		s.reg.Inc("serve.rejected.draining")
		s.reply(w, endpoint, start, http.StatusServiceUnavailable,
			errorBody{Error: "server began draining while request was queued", Kind: "draining", RetryAfterMS: 1000})
		return
	}
	defer s.adm.release()
	s.gauges()

	out, err := fn(ctx, req)
	if err != nil {
		status, body := s.classify(endpoint, req, err)
		s.reply(w, endpoint, start, status, body)
		return
	}
	s.reply(w, endpoint, start, http.StatusOK, out)
}

// decode parses and validates the request body. It returns a non-nil
// errorBody for malformed or invalid requests (always kind
// "bad_request" — the request never reached the engine).
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (*request, *errorBody) {
	var req request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &errorBody{Error: "bad request body: " + err.Error(), Kind: "bad_request"}
	}
	isBatch := r.URL.Path == "/v1/batch"
	switch {
	case isBatch && len(req.Sources) == 0:
		return nil, &errorBody{Error: `"sources" must name at least one program`, Kind: "bad_request"}
	case isBatch && req.Source != "":
		return nil, &errorBody{Error: `batch takes "sources", not "source"`, Kind: "bad_request"}
	case !isBatch && req.Source == "":
		return nil, &errorBody{Error: `"source" is required`, Kind: "bad_request"}
	case !isBatch && len(req.Sources) != 0:
		return nil, &errorBody{Error: `"sources" is only valid on /v1/batch`, Kind: "bad_request"}
	case req.Inject != "" && !s.cfg.AllowInject:
		return nil, &errorBody{Error: `"inject" requires the server to run with fault injection enabled`, Kind: "bad_request"}
	case r.URL.Path == "/v1/explain" && req.Var == "" && !req.Deps:
		return nil, &errorBody{Error: `explain needs "var" and/or "deps": true`, Kind: "bad_request"}
	}
	return &req, nil
}

// classify maps an analysis error to its HTTP status and body, and
// feeds the poison cache on contained faults, keyed by the endpoint
// the fault happened on.
func (s *Server) classify(endpoint string, req *request, err error) (int, errorBody) {
	var ee *beyondiv.Error
	phase := ""
	if errors.As(err, &ee) {
		phase = ee.Phase
	}
	var ce *guard.CancelError
	if errors.As(err, &ce) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		kind := cancelKind(err)
		s.reg.Inc("serve.err." + kind)
		return http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: kind, Phase: phase}
	}
	if ee != nil && ee.Stack != nil {
		// Contained panic: an analyzer bug, not an input diagnostic.
		// Remember the source so replays are rejected from the cache.
		s.reg.Inc("serve.err.fault")
		if req.Inject == "" && req.Source != "" {
			s.poison.add(keyOf(endpoint, s.optFP, req.Source), ee.Phase, err.Error())
			s.reg.Inc("serve.poison.add")
		}
		return http.StatusInternalServerError, errorBody{Error: err.Error(), Kind: "fault", Phase: phase}
	}
	kind := "input"
	var le *guard.LimitError
	if errors.As(err, &le) {
		kind = "limit"
	}
	s.reg.Inc("serve.err." + kind)
	return http.StatusUnprocessableEntity, errorBody{Error: err.Error(), Kind: kind, Phase: phase}
}

// cancelKind distinguishes a deadline expiry from a client cancel.
func cancelKind(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	return "canceled"
}

// reply writes one JSON response and records the request's metrics:
// per-endpoint latency histogram and per-status counters.
func (s *Server) reply(w http.ResponseWriter, endpoint string, start time.Time, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
	s.reg.ObserveDuration("serve.latency."+endpoint, time.Since(start))
	s.reg.Inc("serve.http." + strconv.Itoa(status))
	if status == http.StatusOK {
		s.reg.Inc("serve.ok")
	}
	s.gauges()
}

// gauges publishes the admission pipeline's current depths.
func (s *Server) gauges() {
	s.reg.SetGauge("serve.inflight", s.adm.inflight.Load())
	s.reg.SetGauge("serve.queue.depth", s.adm.queued.Load())
}

// analyzer returns the analyzer a request runs on: the shared one, a
// memoized width-specific sibling when the body asks for a different
// "parallel", or — for injected test faults — a private uncached
// analyzer whose named phase panics.
func (s *Server) analyzer(req *request) *beyondiv.Analyzer {
	if req.Inject != "" {
		opts := s.cfg.Options
		// Faults must not be masked (or cached) — by the in-memory cache or
		// by the persistent store, either of which could serve a decoded
		// result without ever reaching the injected phase.
		opts.Cache, opts.CacheEntries, opts.CacheDir = nil, 0, ""
		opts.Limits.Inject = guard.PanicIn(req.Inject)
		opts.Parallel = s.effectiveParallel(req)
		return beyondiv.NewAnalyzer(opts)
	}
	p := s.effectiveParallel(req)
	if p == s.cfg.Options.Parallel {
		return s.an
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	an, ok := s.byPar[p]
	if !ok {
		opts := s.cfg.Options
		opts.Parallel = p
		an = beyondiv.NewAnalyzer(opts)
		s.byPar[p] = an
	}
	return an
}

// effectiveParallel resolves a request's intra-run fan-out width:
// absent or non-positive keeps the server's configured default, and an
// explicit ask is capped at the server's own width — a client cannot
// widen the fan-out past what the operator provisioned, mirroring the
// timeout_ms cap against MaxTimeout.
func (s *Server) effectiveParallel(req *request) int {
	if req.Parallel <= 0 {
		return s.cfg.Options.Parallel
	}
	limit := s.cfg.Options.Parallel
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return min(req.Parallel, limit)
}

// analyzeResponse is /v1/analyze's 200 body (and the per-source shape
// inside /v1/batch results).
type analyzeResponse struct {
	Classification string `json:"classification"`
	Dependences    string `json:"dependences,omitempty"`
	ElapsedUS      int64  `json:"elapsed_us"`
}

func (s *Server) doAnalyze(ctx context.Context, req *request) (any, error) {
	start := time.Now()
	prog, err := s.analyzer(req).AnalyzeContext(ctx, req.Source)
	if err != nil {
		return nil, err
	}
	return &analyzeResponse{
		Classification: prog.ClassificationReport(),
		Dependences:    prog.DependenceReport(),
		ElapsedUS:      time.Since(start).Microseconds(),
	}, nil
}

// optimizeResponse is /v1/optimize's 200 body: the transformed
// program's reports plus the pass statistics.
type optimizeResponse struct {
	analyzeResponse
	Rounds      int        `json:"rounds"`
	Rewrites    int        `json:"rewrites"`
	Validations int        `json:"validations"`
	Passes      []passStat `json:"passes,omitempty"`
	// ParallelLoops lists the loops parmark proved parallel, by
	// effective label, after chunked-vs-sequential validation.
	ParallelLoops []string `json:"parallel_loops,omitempty"`
}

type passStat struct {
	Name     string `json:"name"`
	Round    int    `json:"round"`
	Rewrites int    `json:"rewrites"`
}

func (s *Server) doOptimize(ctx context.Context, req *request) (any, error) {
	start := time.Now()
	res, err := s.analyzer(req).OptimizeContext(ctx, req.Source)
	if err != nil {
		return nil, err
	}
	out := &optimizeResponse{
		analyzeResponse: analyzeResponse{
			Classification: res.Program.ClassificationReport(),
			Dependences:    res.Program.DependenceReport(),
			ElapsedUS:      time.Since(start).Microseconds(),
		},
		Rounds:        res.Rounds,
		Rewrites:      res.Rewrites,
		Validations:   res.Validations,
		ParallelLoops: res.ParallelLoops,
	}
	for _, st := range res.Stats {
		out.Passes = append(out.Passes, passStat{Name: st.Name, Round: st.Round, Rewrites: st.Rewrites})
	}
	return out, nil
}

// explainResponse is /v1/explain's 200 body: provenance, not just
// verdicts — which paper rule classified the variable, through which
// feeding classifications, and/or each dependence edge's decision
// procedure.
type explainResponse struct {
	Explain string `json:"explain,omitempty"`
	Deps    string `json:"deps,omitempty"`
}

func (s *Server) doExplain(ctx context.Context, req *request) (any, error) {
	prog, err := s.analyzer(req).AnalyzeContext(ctx, req.Source)
	if err != nil {
		return nil, err
	}
	out := &explainResponse{}
	if req.Var != "" {
		out.Explain = prog.Explain(req.Var)
		if out.Explain == "" {
			out.Explain = fmt.Sprintf("no loop defines a variable %q", req.Var)
		}
	}
	if req.Deps {
		out.Deps = prog.ExplainAllDeps()
	}
	return out, nil
}

// batchResponse is /v1/batch's 200 body: one entry per source, in
// input order. Per-source failures are isolated — each entry carries
// either reports or its own error/kind/phase — and a cancelled batch
// marks never-scheduled sources with kind canceled/deadline, phase
// "batch".
type batchResponse struct {
	Results []batchEntry `json:"results"`
	Errors  int          `json:"errors"`
}

type batchEntry struct {
	Index          int    `json:"index"`
	Classification string `json:"classification,omitempty"`
	Dependences    string `json:"dependences,omitempty"`
	Error          string `json:"error,omitempty"`
	Kind           string `json:"kind,omitempty"`
	Phase          string `json:"phase,omitempty"`
}

func (s *Server) doBatch(ctx context.Context, req *request) (any, error) {
	out := &batchResponse{Results: make([]batchEntry, len(req.Sources))}
	// Per-source poison gate: the handle-level gate only sees "source",
	// so remembered batch crashers are filtered here — answered from the
	// cache without re-entering the pipeline or failing their batch.
	run := make([]string, 0, len(req.Sources))
	runIdx := make([]int, 0, len(req.Sources))
	for i, src := range req.Sources {
		if req.Inject == "" {
			if entry, ok := s.poison.lookup(keyOf("batch", s.optFP, src)); ok {
				s.reg.Inc("serve.poison.hit")
				out.Errors++
				out.Results[i] = batchEntry{Index: i, Error: entry.msg, Kind: "fault", Phase: entry.phase}
				continue
			}
		}
		run = append(run, src)
		runIdx = append(runIdx, i)
	}
	for j, r := range s.analyzer(req).AnalyzeAllContext(ctx, run) {
		entry := batchEntry{Index: runIdx[j]}
		if r.Err != nil {
			out.Errors++
			_, body := s.classify("batch", &request{Source: r.Source, Inject: req.Inject}, r.Err)
			entry.Error, entry.Kind, entry.Phase = body.Error, body.Kind, body.Phase
		} else {
			entry.Classification = r.Program.ClassificationReport()
			entry.Dependences = r.Program.DependenceReport()
		}
		out.Results[runIdx[j]] = entry
	}
	return out, nil
}
