package serve

import (
	"context"
	"sync/atomic"
)

// verdict is the outcome of one admission attempt.
type verdict int

const (
	// admitted: the request holds a worker slot; it must release().
	admitted verdict = iota
	// shed: worker slots and the wait queue are both full — the caller
	// answers 429 with a Retry-After hint and does no work.
	shed
	// cancelled: the request's context died while it waited in the
	// queue (deadline expired, or the client hung up) — the caller
	// answers 503 without running the analysis.
	cancelled
	// draining: the server began shutting down while the request
	// waited — the caller answers 503 so the client retries elsewhere.
	draining
)

// admission is the server's concurrency gate: a semaphore of worker
// slots plus a bounded wait queue in front of it. A request first
// tries to take a slot outright; if none is free it joins the queue —
// unless the queue is full, in which case it is shed immediately
// (admission control fails fast rather than building an unbounded
// backlog of doomed waiters). Queued requests leave early when their
// context dies or the server starts draining, so the queue never holds
// work nobody is waiting for.
type admission struct {
	slots    chan struct{} // buffered; one token per concurrent request
	queueCap int64
	queued   atomic.Int64 // current waiters (includes the fast path briefly)
	inflight atomic.Int64 // requests holding a slot
}

func newAdmission(workers, queue int) *admission {
	return &admission{slots: make(chan struct{}, workers), queueCap: int64(queue)}
}

// acquire attempts to admit one request. drain is closed when the
// server stops admitting; ctx is the request's own deadline/cancel.
func (a *admission) acquire(ctx context.Context, drain <-chan struct{}) verdict {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return admitted
	default:
	}
	// Queue, bounded: the Add is the reservation, so concurrent
	// arrivals over the cap shed without ever blocking.
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		return shed
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return admitted
	case <-ctx.Done():
		return cancelled
	case <-drain:
		return draining
	}
}

// release returns the caller's slot. Must be called exactly once per
// admitted verdict.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}

// idle reports whether no request holds a slot and nobody waits.
func (a *admission) idle() bool {
	return a.inflight.Load() == 0 && a.queued.Load() == 0
}
