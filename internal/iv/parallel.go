package iv

import (
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/obs"
	"beyondiv/internal/par"
	"beyondiv/internal/scratch"
)

// parMinLoops is the work-size threshold of the parallel classifier:
// below this many loops the per-worker setup (arenas, recorder forks,
// goroutines) costs more than the classification itself, so small
// programs always take the sequential path.
const parMinLoops = 4

// classifyParallel classifies sibling root subtrees of the loop forest
// concurrently, returning false (nothing done) when the fan-out is off
// or not worth it. The unit of work is one root subtree: every fact a
// loop's classification reads lives in its own subtree (inner loops'
// classifications, trip counts and exit values) or in shared immutable
// state (SSA, the forest, SCCP constants, the name indexes), so
// subtrees never observe each other and per-worker result maps merge
// back disjointly — making the outcome bit-identical to the
// sequential inner-to-outer walk.
//
// Machinery threaded through: each worker draws a scratch arena from
// the run arena's pool, charges a shared step sub-pool (ShareSteps)
// so the phase ceiling holds across workers, records into a recorder
// fork merged back in worker order, and polls cancellation at subtree
// boundaries.
func (a *Analysis) classifyParallel() bool {
	workers := a.opts.Workers
	roots := a.Forest.Roots
	if workers <= 1 || len(roots) < 2 || len(a.Forest.Loops) < parMinLoops {
		return false
	}
	if workers > len(roots) {
		workers = len(roots)
	}

	// Bucket the classification order by root subtree, keeping each
	// bucket's internal inner-to-outer order: one flat slice carved by
	// counted offsets, so bucketing stays O(workers) allocations.
	order := a.Forest.InnerToOuter()
	rootIdx := func(l *loops.Loop) int {
		for l.Parent != nil {
			l = l.Parent
		}
		for i, r := range roots {
			if r == l {
				return i
			}
		}
		return 0
	}
	offs := make([]int, len(roots)+1)
	for _, l := range order {
		offs[rootIdx(l)+1]++
	}
	for i := 1; i <= len(roots); i++ {
		offs[i] += offs[i-1]
	}
	flat := make([]*loops.Loop, len(order))
	fill := make([]int, len(roots))
	copy(fill, offs[:len(roots)])
	for _, l := range order {
		r := rootIdx(l)
		flat[fill[r]] = l
		fill[r]++
	}

	// Per-worker shims: shared immutable inputs and indexes, private
	// result maps, a budget drawing the shared phase sub-pool, and a
	// private classifier scratch. Worker 0 reuses the run's own arena
	// (idle while the fan-out runs); the rest check extra arenas out of
	// the engine pool and return them, in worker order, when the
	// fan-out joins — panic or not.
	lim := a.opts.Limits.ShareSteps()
	pool := a.opts.Scratch.Owner()
	was := make([]*Analysis, workers)
	extra := make([]*scratch.Arena, workers)
	defer func() {
		for _, ar := range extra {
			pool.Put(ar)
		}
	}()
	for w := range was {
		ar := a.opts.Scratch
		if w > 0 || ar == nil {
			ar = pool.Get() // nil pool yields a free-standing arena
			if pool != nil {
				extra[w] = ar
			}
		}
		wopts := a.opts
		wopts.Limits = lim
		wopts.Scratch = nil
		wa := &Analysis{
			SSA:     a.SSA,
			Forest:  a.Forest,
			Consts:  a.Consts,
			opts:    wopts,
			byLoop:  map[*loops.Loop]map[*ir.Value]*Classification{},
			trips:   map[*loops.Loop]*TripCount{},
			exits:   map[*ir.Value]exitInfo{},
			byName:  a.byName,
			byLabel: a.byLabel,
		}
		wa.budget = lim.Budget("iv")
		wa.scr = scratch.Get[classifyScratch](&ar.IV)
		was[w] = wa
	}

	reg := a.opts.Metrics
	reg.Inc("engine.par.classify.runs")
	reg.Add("engine.par.classify.units", int64(len(roots)))
	reg.SetGauge("engine.par.workers", int64(workers))

	par.Run("iv", workers, len(roots), a.opts.Obs, func(w int, wrec *obs.Recorder, i int) {
		wa := was[w]
		wa.opts.Obs = wrec
		if ce := lim.Cancelled("iv"); ce != nil {
			panic(ce)
		}
		for _, l := range flat[offs[i]:offs[i+1]] {
			wa.classifyLoop(l)
		}
	})

	// Merge the per-worker maps back. Subtrees are disjoint, so this
	// is a pure union; worker order makes the merge deterministic even
	// though it could never conflict.
	for _, wa := range was {
		wa.scr = nil
		for l, m := range wa.byLoop {
			a.byLoop[l] = m
		}
		for l, tc := range wa.trips {
			a.trips[l] = tc
		}
		for v, e := range wa.exits {
			a.exits[v] = e
		}
	}
	return true
}
