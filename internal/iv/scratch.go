package iv

import (
	"beyondiv/internal/ir"
	"beyondiv/internal/matrix"
	"beyondiv/internal/rational"
	"beyondiv/internal/scc"
	"beyondiv/internal/scratch"
)

// classifyScratch is the classifier's slot in the per-run scratch
// arena: every working table the per-loop SSA-graph classification
// needs, dense-indexed by value id or graph-node id, reused across
// loops within a run and across runs on the same arena. All tables are
// sized and reset on acquisition (or stamped), so a recycled arena —
// even one abandoned mid-run by a contained panic — can never leak
// state into a later classification.
type classifyScratch struct {
	scc scc.Scratch

	// Value-id-indexed node lookup (the old idx/exitI maps): an entry
	// is live only when its gen stamp matches, so switching loops is a
	// counter bump instead of a table clear.
	idx      []int32
	idxGen   []uint32
	exitI    []int32
	exitIGen []uint32
	gen      uint32

	nodes []node
	edges []int       // shared succ backing, carved full-cap per node
	terms []*ir.Value // sort buffer for wiring and exprClsLocal
	cls   []*Classification

	exitOK []int8 // guard-check memo: 0 unseen, 1 proven, 2 refuted

	// SCR membership stamps (classifySCR) and the linear-family side
	// tables (tryLinearFamily); entries are reset per component.
	sccStamp   []int
	curStamp   int
	headers    []int
	famOffsets []*Expr
	famState   []uint8

	// Per-SCR working tables, node-indexed, reset per component by
	// their consumers: tryPeriodic (next/phase/phaseSet), tryCumulative
	// (symVals/symState, series), tryMonotonic (ranges/rngState),
	// tryMonotonicGrowth (growths/grState).
	next     []int
	phase    []int
	phaseSet []bool
	symVals  []*symVal
	symState []uint8
	series   [][]rational.Rat
	ranges   []*valRange
	rngState []uint8
	growths  []growth
	grState  []uint8

	// inverses memoizes the solved Vandermonde-style systems of
	// solveClosedForm, keyed by their full shape. The inverse of a given
	// system is a pure function of the key, so entries never need
	// invalidation and persist across loops and runs on the same arena;
	// a nil entry remembers a singular system. Closed-form fits repeat
	// the same few shapes constantly, so this turns the per-member
	// build-invert cycle (~6 allocations) into one vector multiply.
	inverses map[invKey]*matrix.Matrix
}

// invKey identifies one closed-form system: sample count, geometric
// base (0 for pure polynomial fits), and which family builds it.
type invKey struct {
	n    int
	base int64
	geo  bool
}

// inverseOf returns the memoized inverse for key, computing it with
// build on first use. Singular systems memoize as nil.
func (s *classifyScratch) inverseOf(key invKey, build func() *matrix.Matrix) *matrix.Matrix {
	if inv, ok := s.inverses[key]; ok {
		return inv
	}
	inv, err := build().Inverse()
	if err != nil {
		inv = nil
	}
	if s.inverses == nil {
		s.inverses = make(map[invKey]*matrix.Matrix)
	}
	s.inverses[key] = inv
	return inv
}

// sizeValueTables readies the value-id-indexed lookup for one loop:
// grows the four arrays to the function's value-id bound and bumps the
// generation, invalidating the previous loop's entries in O(1).
func (s *classifyScratch) sizeValueTables(nv int) {
	if cap(s.idxGen) < nv {
		s.idx = make([]int32, nv)
		s.idxGen = make([]uint32, nv)
		s.exitI = make([]int32, nv)
		s.exitIGen = make([]uint32, nv)
	} else {
		s.idx = s.idx[:nv]
		s.idxGen = s.idxGen[:nv]
		s.exitI = s.exitI[:nv]
		s.exitIGen = s.exitIGen[:nv]
	}
	s.gen++
}

// sizeNodeTables readies every node-indexed table for a loop with n
// graph nodes. Tables whose consumers reset per component only need
// length here; cls and exitOK carry per-loop state and are zeroed.
func (s *classifyScratch) sizeNodeTables(n int) {
	s.cls = scratch.Grow(s.cls, n)
	s.exitOK = scratch.Grow(s.exitOK, n)
	s.series = scratch.GrowReuse(s.series, n)
	if cap(s.next) >= n {
		s.next = s.next[:n]
		s.phase = s.phase[:n]
		s.phaseSet = s.phaseSet[:n]
		s.symVals = s.symVals[:n]
		s.symState = s.symState[:n]
		s.ranges = s.ranges[:n]
		s.rngState = s.rngState[:n]
		s.growths = s.growths[:n]
		s.grState = s.grState[:n]
		s.famOffsets = s.famOffsets[:n]
		s.famState = s.famState[:n]
		s.sccStamp = s.sccStamp[:n]
		return
	}
	s.next = make([]int, n)
	s.phase = make([]int, n)
	s.phaseSet = make([]bool, n)
	s.symVals = make([]*symVal, n)
	s.symState = make([]uint8, n)
	s.ranges = make([]*valRange, n)
	s.rngState = make([]uint8, n)
	s.growths = make([]growth, n)
	s.grState = make([]uint8, n)
	s.famOffsets = make([]*Expr, n)
	s.famState = make([]uint8, n)
	s.sccStamp = make([]int, n)
}

// idxOf returns the graph-node index of a direct loop member.
func (ctx *loopCtx) idxOf(v *ir.Value) (int, bool) {
	s := ctx.scr
	if v.ID < len(s.idxGen) && s.idxGen[v.ID] == s.gen {
		return int(s.idx[v.ID]), true
	}
	return 0, false
}

func (ctx *loopCtx) setIdx(v *ir.Value, id int) {
	s := ctx.scr
	s.idx[v.ID] = int32(id)
	s.idxGen[v.ID] = s.gen
}

// exitNodeOf returns the synthetic exit node standing for an inner-loop
// value, when one has been created.
func (ctx *loopCtx) exitNodeOf(v *ir.Value) (int, bool) {
	s := ctx.scr
	if v.ID < len(s.exitIGen) && s.exitIGen[v.ID] == s.gen {
		return int(s.exitI[v.ID]), true
	}
	return 0, false
}

func (ctx *loopCtx) setExitNode(v *ir.Value, id int) {
	s := ctx.scr
	s.exitI[v.ID] = int32(id)
	s.exitIGen[v.ID] = s.gen
}

// nodeOf resolves a value to its graph node, direct member or exit
// node — the combined lookup every SCR rule uses on operands.
func (ctx *loopCtx) nodeOf(v *ir.Value) (int, bool) {
	if id, ok := ctx.idxOf(v); ok {
		return id, true
	}
	return ctx.exitNodeOf(v)
}
