package iv

import (
	"testing"

	"beyondiv/internal/rational"
)

// TestMultiloopNestedTuple reproduces §2's L5/L6 example: i = (L5, 2, 2)
// and j = (L6, (L5, 3, 2), 1) via outer-to-inner substitution.
func TestMultiloopNestedTuple(t *testing.T) {
	a := analyze(t, `
i = 0
L5: loop {
    i = i + 2
    j = i
    L6: loop {
        j = j + 1
        a[j] = 0
        if j > m { exit }
    }
    if i > n { exit }
}
`)
	wantString(t, classOf(t, a, "L5", "i3"), "(L5, 2, 2)")
	// j3 in L6 has init j1+1 where j1 copies i3; substituting the outer
	// tuple gives the paper's nested form.
	j3 := classOf(t, a, "L6", "j3")
	if got := a.NestedString(j3); got != "(L6, (L5, 3, 2), 1)" {
		t.Errorf("nested form of j3 = %s, want (L6, (L5, 3, 2), 1)", got)
	}
	j2 := classOf(t, a, "L6", "j2")
	if got := a.NestedString(j2); got != "(L6, (L5, 2, 2), 1)" {
		t.Errorf("nested form of j2 = %s, want (L6, (L5, 2, 2), 1)", got)
	}
}

// TestFigure9NestedTuples: the triangular inner members substitute the
// outer quadratic family: j4 = (L20, (L19, 1, 2, 1), 1).
func TestFigure9NestedTuples(t *testing.T) {
	a := analyze(t, `
j = 0
L19: for i = 1 to n {
    j = j + i
    L20: for k = 1 to i {
        j = j + 1
    }
}
`)
	j4 := classOf(t, a, "L20", "j4")
	if got := a.NestedString(j4); got != "(L20, (L19, 1, 2, 1), 1)" {
		t.Errorf("nested j4 = %s, want (L20, (L19, 1, 2, 1), 1)", got)
	}
	// j5 = j4+1 starts at j3+1 = 2+2h+h² in the outer space. (The
	// paper's j6 = (L19, 2, 3, 1) is the exit value j3 + i, one i
	// later; the OCR of Fig. 9's coefficients is unreadable, so both
	// are re-derived — see DESIGN.md.)
	j5 := classOf(t, a, "L20", "j5")
	if got := a.NestedString(j5); got != "(L20, (L19, 2, 2, 1), 1)" {
		t.Errorf("nested j5 = %s, want (L20, (L19, 2, 2, 1), 1)", got)
	}
}

// TestIterFormSimple: subscripts of a rectangular nest expand to affine
// forms over (h_L23, h_L24).
func TestIterFormSimple(t *testing.T) {
	a := analyze(t, `
L23: for i = 1 to n {
    L24: for j = 1 to n {
        a[i] = a[j] + 1
    }
}
`)
	l23, l24 := a.LoopByLabel("L23"), a.LoopByLabel("L24")
	i2 := a.ValueByName("i2")
	f := a.IterFormOf(l24, i2)
	if f == nil {
		t.Fatal("no iter form for i2")
	}
	if !f.Const.Equal(rational.FromInt(1)) || !f.Coeff(l23).Equal(rational.FromInt(1)) || !f.Coeff(l24).IsZero() {
		t.Errorf("iter form of i2 = %s, want 1 + h(L23)", f)
	}
	j2 := a.ValueByName("j2")
	g := a.IterFormOf(l24, j2)
	if g == nil || !g.Coeff(l24).Equal(rational.FromInt(1)) || !g.Coeff(l23).IsZero() {
		t.Errorf("iter form of j2 = %s, want 1 + h(L24)", g)
	}
}

// TestIterFormNormalization reproduces §6.1: the subscripts of
// A(i,j)=A(i-1,j) have the same iteration form whether or not the inner
// loop is "normalized" — the lower bound lands in the form, not in the
// analysis quality.
func TestIterFormNormalization(t *testing.T) {
	plain := `
L23: for i = 1 to n {
    L24: for j = i + 1 to n {
        a[j] = a[j] + i
    }
}
`
	normalized := `
L23: for i = 1 to n {
    L24: for j = 1 to n - i {
        a[j + i] = a[j + i] + i
    }
}
`
	for _, src := range []string{plain, normalized} {
		a := analyze(t, src)
		l24 := a.LoopByLabel("L24")
		// Find the store's subscript value.
		var form *IterForm
		for _, b := range a.SSA.Func.Blocks {
			for _, v := range b.Values {
				if v.Op.String() == "StoreElem" {
					form = a.IterFormOf(l24, v.Args[0])
				}
			}
		}
		if form == nil {
			t.Fatalf("no subscript form for\n%s", src)
		}
		// Both shapes: subscript = 1 + h(L23) + h(L24) + ... : exactly
		// equal coefficients of both counters.
		if !form.Coeff(a.LoopByLabel("L23")).Equal(rational.FromInt(1)) ||
			!form.Coeff(l24).Equal(rational.FromInt(1)) {
			t.Errorf("subscript form = %s, want 1·h(L23) + 1·h(L24) + const", form)
		}
	}
}

// TestIterFormSymbolicBound keeps parameters symbolic.
func TestIterFormSymbolicBound(t *testing.T) {
	a := analyze(t, `
L1: for i = c to n {
    a[i] = 0
}
`)
	l1 := a.LoopByLabel("L1")
	f := a.IterFormOf(l1, a.ValueByName("i2"))
	if f == nil {
		t.Fatal("no form")
	}
	if len(f.Syms) != 1 || !f.Coeff(l1).Equal(rational.FromInt(1)) {
		t.Errorf("form = %s, want c1 + h(L1)", f)
	}
}

// TestIterFormRejectsNonAffine: polynomial IVs and symbolic-step
// multiloop IVs have no affine iteration form.
func TestIterFormRejectsNonAffine(t *testing.T) {
	a := analyze(t, `
j = 0
L19: for i = 1 to n {
    j = j + i
    a[j] = 0
}
`)
	if f := a.IterFormOf(a.LoopByLabel("L19"), a.ValueByName("j2")); f != nil {
		t.Errorf("quadratic j2 got iter form %s", f)
	}

	a = analyze(t, `
i = 0
L3: loop {
    i = i + 1
    j = i
    L4: loop {
        j = j + i
        a[j] = 0
        if j > m { exit }
    }
    if i > n { exit }
}
`)
	if f := a.IterFormOf(a.LoopByLabel("L4"), a.ValueByName("j3")); f != nil {
		t.Errorf("symbolic-step j3 got iter form %s", f)
	}
}
