// Package iv implements the paper's unified induction-variable
// classification: Tarjan's strongly-connected-region algorithm over the
// SSA graph, classifying every integer scalar in every loop as linear,
// polynomial, or geometric induction variable, wrap-around, periodic,
// monotonic, invariant, or unknown — in a single non-iterative pass per
// loop, processed from the innermost loop outward (Wolfe, PLDI 1992).
package iv

import (
	"fmt"
	"slices"
	"strings"

	"beyondiv/internal/ir"
	"beyondiv/internal/rational"
)

// Expr is a symbolic affine expression over SSA values:
// Const + Σ Coeff·value. Initial values, steps, trip counts and exit
// values are all Exprs; a nil *Expr means "not representable".
type Expr struct {
	Const rational.Rat
	Terms map[*ir.Value]rational.Rat
}

// ConstExpr returns the constant expression c.
func ConstExpr(c rational.Rat) *Expr { return &Expr{Const: c} }

// IntExpr returns the constant expression n.
func IntExpr(n int64) *Expr { return ConstExpr(rational.FromInt(n)) }

// VarExpr returns the expression 1·v.
func VarExpr(v *ir.Value) *Expr {
	return &Expr{Const: rational.FromInt(0), Terms: map[*ir.Value]rational.Rat{v: rational.FromInt(1)}}
}

// IsConst reports whether e is a pure constant (no symbolic terms).
func (e *Expr) IsConst() bool { return e != nil && len(e.Terms) == 0 }

// ConstVal returns the constant value of e, if e is a pure constant.
func (e *Expr) ConstVal() (rational.Rat, bool) {
	if !e.IsConst() {
		return rational.NaR, false
	}
	return e.Const, true
}

// IsZero reports whether e is the constant 0.
func (e *Expr) IsZero() bool { return e.IsConst() && e.Const.IsZero() }

// SingleTerm returns (v, true) when e is exactly 1·v with no constant.
func (e *Expr) SingleTerm() (*ir.Value, bool) {
	if e == nil || len(e.Terms) != 1 || !e.Const.IsZero() {
		return nil, false
	}
	for v, c := range e.Terms {
		if c.Equal(rational.FromInt(1)) {
			return v, true
		}
	}
	return nil, false
}

// Clone returns a deep copy.
func (e *Expr) Clone() *Expr {
	if e == nil {
		return nil
	}
	out := &Expr{Const: e.Const}
	if len(e.Terms) > 0 {
		out.Terms = make(map[*ir.Value]rational.Rat, len(e.Terms))
		for v, c := range e.Terms {
			out.Terms[v] = c
		}
	}
	return out
}

// normalize drops zero coefficients and returns nil when any coefficient
// overflowed.
func (e *Expr) normalize() *Expr {
	if e == nil || !e.Const.Valid() {
		return nil
	}
	for v, c := range e.Terms {
		if !c.Valid() {
			return nil
		}
		if c.IsZero() {
			delete(e.Terms, v)
		}
	}
	if len(e.Terms) == 0 {
		e.Terms = nil
	}
	return e
}

// AddExpr returns a+b, or nil if either is nil.
func AddExpr(a, b *Expr) *Expr {
	if a == nil || b == nil {
		return nil
	}
	out := a.Clone()
	out.Const = out.Const.Add(b.Const)
	for v, c := range b.Terms {
		if out.Terms == nil {
			out.Terms = map[*ir.Value]rational.Rat{}
		}
		// Note: the zero value of rational.Rat is NaR, so a missing key
		// must be treated as an explicit zero.
		if cur, ok := out.Terms[v]; ok {
			out.Terms[v] = cur.Add(c)
		} else {
			out.Terms[v] = c
		}
	}
	return out.normalize()
}

// SubExpr returns a-b.
func SubExpr(a, b *Expr) *Expr { return AddExpr(a, ScaleExpr(b, rational.FromInt(-1))) }

// ScaleExpr returns k·e.
func ScaleExpr(e *Expr, k rational.Rat) *Expr {
	if e == nil || !k.Valid() {
		return nil
	}
	out := e.Clone()
	out.Const = out.Const.Mul(k)
	for v, c := range out.Terms {
		out.Terms[v] = c.Mul(k)
	}
	return out.normalize()
}

// AddConst returns e + c.
func AddConst(e *Expr, c rational.Rat) *Expr { return AddExpr(e, ConstExpr(c)) }

// MulExpr returns a·b when at least one side is constant, else nil
// (the product would not be affine).
func MulExpr(a, b *Expr) *Expr {
	if a == nil || b == nil {
		return nil
	}
	if c, ok := a.ConstVal(); ok {
		return ScaleExpr(b, c)
	}
	if c, ok := b.ConstVal(); ok {
		return ScaleExpr(a, c)
	}
	return nil
}

// Equal reports structural equality of two expressions (nil equals nil).
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	if !e.Const.Equal(o.Const) || len(e.Terms) != len(o.Terms) {
		return false
	}
	for v, c := range e.Terms {
		oc, ok := o.Terms[v]
		if !ok || !c.Equal(oc) {
			return false
		}
	}
	return true
}

// Eval substitutes concrete values for the symbolic terms; get returns
// the runtime value of an SSA value. The result is exact rational.
func (e *Expr) Eval(get func(*ir.Value) (int64, bool)) (rational.Rat, bool) {
	if e == nil {
		return rational.NaR, false
	}
	out := e.Const
	for v, c := range e.Terms {
		x, ok := get(v)
		if !ok {
			return rational.NaR, false
		}
		out = out.Add(c.Mul(rational.FromInt(x)))
	}
	if !out.Valid() {
		return rational.NaR, false
	}
	return out, true
}

// String renders the expression deterministically, e.g. "3 + 2*i2 - n1".
func (e *Expr) String() string {
	if e == nil {
		return "?"
	}
	type term struct {
		v *ir.Value
		c rational.Rat
	}
	terms := make([]term, 0, len(e.Terms))
	for v, c := range e.Terms {
		terms = append(terms, term{v, c})
	}
	slices.SortFunc(terms, func(a, b term) int { return ir.ByID(a.v, b.v) })

	var sb strings.Builder
	wrote := false
	if !e.Const.IsZero() || len(terms) == 0 {
		sb.WriteString(e.Const.String())
		wrote = true
	}
	one := rational.FromInt(1)
	for _, t := range terms {
		c := t.c
		neg := c.Sign() < 0
		if wrote {
			if neg {
				sb.WriteString(" - ")
				c = c.Neg()
			} else {
				sb.WriteString(" + ")
			}
		} else if neg {
			sb.WriteString("-")
			c = c.Neg()
		}
		if !c.Equal(one) {
			fmt.Fprintf(&sb, "%s*", c)
		}
		sb.WriteString(t.v.String())
		wrote = true
	}
	return sb.String()
}
