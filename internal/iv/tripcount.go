package iv

import (
	"fmt"

	"beyondiv/internal/dom"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
)

// TripState says what is known about a loop's iteration count.
type TripState int

// Trip states.
const (
	TripUnknown TripState = iota
	TripFinite
	TripInfinite
)

// TripCount is the §5.2 analysis result for one loop. For TripFinite,
// the count is ⌈Numer/Div⌉ with Numer an affine Expr and Div a positive
// integer; Expr is the affine simplification when Div divides exactly
// (always when Div == 1), nil otherwise. Counts follow the paper's
// convention: the symbolic form assumes the loop executes at least once
// being nonnegative (a symbolic ⌈n/1⌉ with n < 0 at runtime means zero
// iterations; callers comparing against runtime must clamp at zero).
type TripCount struct {
	State TripState
	Expr  *Expr // affine count; nil unless exactly representable
	Numer *Expr // ⌈Numer/Div⌉ form for Finite counts
	Div   int64
	// Exit is the block whose conditional branch leaves the loop (the
	// source of the counted exit edge); nil unless State is TripFinite.
	Exit *ir.Block
	// Guard, when non-nil, is an expression that must be nonnegative
	// for Expr to equal the executed iteration count (symbolic counts
	// implicitly clamp at zero; exit values are only propagated once a
	// consumer proves the guard, see loopCtx.checkedExit).
	Guard *Expr
	// MaxConst, when HasMax, bounds the iteration count from above even
	// when the exact count is unknown — §5.2's multi-exit case ("it may
	// be able to find a maximum trip count; this information is useful
	// for dependence testing, to place bounds on the solution space").
	MaxConst int64
	HasMax   bool
}

// Const returns the constant trip count, if known.
func (tc *TripCount) Const() (int64, bool) {
	if tc == nil || tc.State != TripFinite || tc.Expr == nil {
		return 0, false
	}
	c, ok := tc.Expr.ConstVal()
	if !ok {
		return 0, false
	}
	return c.Num(), c.IsInt()
}

// String renders the trip count.
func (tc *TripCount) String() string {
	switch {
	case tc == nil || tc.State == TripUnknown:
		return "unknown"
	case tc.State == TripInfinite:
		return "infinite"
	case tc.Expr != nil:
		return tc.Expr.String()
	default:
		return fmt.Sprintf("ceil((%s)/%d)", tc.Numer, tc.Div)
	}
}

// computeTripCount implements §5.2: canonicalize each exit condition to
// "stay while d > 0", classify d as a linear sequence (L, i, s), and
// read the count off the tuple. Single-exit loops whose test runs every
// iteration get an exact count; multi-exit loops get the minimum of the
// constant per-exit counts as an upper bound ("maximum trip count").
func (a *Analysis) computeTripCount(l *loops.Loop) *TripCount {
	exits := l.ExitEdges()
	if len(exits) == 0 {
		return &TripCount{State: TripInfinite}
	}
	// An exit count is meaningful only when its test executes on every
	// iteration (the test block dominates every latch); a test hidden
	// under a conditional can be skipped, so its sequence says nothing
	// about when the loop actually leaves.
	everyIteration := func(b *ir.Block) bool {
		return dominatesAll(a.SSA.Dom, b, l.Latches)
	}

	if len(exits) == 1 {
		e := exits[0]
		if !everyIteration(e[0]) {
			return &TripCount{State: TripUnknown}
		}
		tc := a.exitTripCount(l, e[0], e[1])
		if tc == nil {
			return &TripCount{State: TripUnknown}
		}
		if c, ok := tc.Const(); ok && tc.State == TripFinite {
			tc.MaxConst, tc.HasMax = c, true
		}
		return tc
	}

	// Multi-exit: each always-executed finite test bounds the count from
	// above; the loop leaves at the first one that fires.
	out := &TripCount{State: TripUnknown}
	for _, e := range exits {
		if !everyIteration(e[0]) {
			continue
		}
		tc := a.exitTripCount(l, e[0], e[1])
		if tc == nil || tc.State != TripFinite {
			continue
		}
		if c, ok := tc.Const(); ok {
			if !out.HasMax || c < out.MaxConst {
				out.MaxConst, out.HasMax = c, true
			}
		}
	}
	return out
}

// exitTripCount analyzes one exit edge (from exitBlock to target) in
// isolation: the count of iterations before this test, were it the only
// exit, would fire.
func (a *Analysis) exitTripCount(l *loops.Loop, exitBlock, target *ir.Block) *TripCount {
	if exitBlock.Kind != ir.BlockIf || exitBlock.Control == nil {
		return nil
	}
	cond := exitBlock.Control
	exitOnTrue := target == exitBlock.Succs[0]

	// Equality exits need divisibility reasoning rather than the
	// stay-positive canonical form.
	op := cond.Op
	if !exitOnTrue {
		op = negateCompare(op)
	}
	if op == ir.OpEq {
		return a.equalityTripCount(l, cond, exitBlock)
	}
	if op == ir.OpNeq {
		return nil // exit-while-unequal: no useful linear form
	}

	d := a.stayPositive(l, cond, exitOnTrue)
	if d == nil || d.Kind == Unknown {
		return nil
	}

	switch d.Kind {
	case Invariant:
		if c, ok := d.Expr.ConstVal(); ok {
			if c.Sign() <= 0 {
				return &TripCount{State: TripFinite, Expr: IntExpr(0), Numer: IntExpr(0), Div: 1, Exit: exitBlock}
			}
			return &TripCount{State: TripInfinite}
		}
		return nil
	case Linear:
		s, sOK := d.Step.ConstVal()
		if !sOK {
			return nil
		}
		i, iOK := d.Init.ConstVal()
		switch {
		case s.Sign() >= 0:
			// Never shrinks: infinite if it starts positive.
			if iOK && i.Sign() <= 0 {
				return &TripCount{State: TripFinite, Expr: IntExpr(0), Numer: IntExpr(0), Div: 1, Exit: exitBlock}
			}
			if iOK {
				return &TripCount{State: TripInfinite}
			}
			return nil
		default:
			neg := s.Neg()
			div, ok := neg.Int()
			if !ok {
				return nil
			}
			tc := &TripCount{State: TripFinite, Numer: d.Init, Div: div, Exit: exitBlock}
			if iOK {
				// Constant count: max(0, ceil(i/div)).
				n, ok := ceilDivRat(i, div)
				if !ok {
					// i/div left exact arithmetic (NaR): no count claim.
					if rec := a.opts.Obs; rec != nil {
						rec.Count("iv.tripcount.overflow")
					}
					return nil
				}
				if n < 0 {
					n = 0
				}
				tc.Expr = IntExpr(n)
				tc.Numer = IntExpr(n)
				tc.Div = 1
			} else if div == 1 {
				tc.Expr = d.Init
				tc.Guard = d.Init // symbolic: exact only when ≥ 0
			}
			return tc
		}
	}
	return nil
}

// equalityTripCount handles `exit when a == b` (§5.2's remaining
// integer comparison): with d = a - b a linear sequence (i, s), the
// loop exits at the first h with i + s·h = 0 — which exists only when
// s divides i exactly and the quotient lands at h ≥ 0; otherwise the
// test never fires and this exit contributes infinity.
func (a *Analysis) equalityTripCount(l *loops.Loop, cond *ir.Value, exitBlock *ir.Block) *TripCount {
	x := a.ClassOf(l, cond.Args[0])
	y := a.ClassOf(l, cond.Args[1])
	d := subCls(l, x, y)
	switch d.Kind {
	case Invariant:
		if c, ok := d.Expr.ConstVal(); ok {
			if c.IsZero() {
				return &TripCount{State: TripFinite, Expr: IntExpr(0), Numer: IntExpr(0), Div: 1, Exit: exitBlock}
			}
			return &TripCount{State: TripInfinite}
		}
	case Linear:
		i, s, ok := d.LinearConst()
		if !ok {
			return nil
		}
		if s.IsZero() {
			if i.IsZero() {
				return &TripCount{State: TripFinite, Expr: IntExpr(0), Numer: IntExpr(0), Div: 1, Exit: exitBlock}
			}
			return &TripCount{State: TripInfinite}
		}
		h := i.Neg().Div(s)
		if hv, isInt := h.Int(); isInt && hv >= 0 {
			return &TripCount{State: TripFinite, Expr: IntExpr(hv), Numer: IntExpr(hv), Div: 1, Exit: exitBlock}
		}
		// Steps over the target without hitting it.
		return &TripCount{State: TripInfinite}
	}
	return nil
}

// ceilDivRat computes ceil(x / d) for integer d > 0. It reports
// ok=false when x is NaR or the division overflows into NaR — dividing
// by Den() without the check would be a divide-by-zero panic.
func ceilDivRat(x rational.Rat, d int64) (int64, bool) {
	q := x.Div(rational.FromInt(d))
	if !q.Valid() {
		return 0, false
	}
	// ceil of a rational p/q.
	n, den := q.Num(), q.Den()
	out := n / den
	if n%den != 0 && n > 0 {
		out++
	}
	return out, true
}

// stayPositive builds the classification of the §5.2 canonical
// expression d with "stay in the loop while d > 0".
func (a *Analysis) stayPositive(l *loops.Loop, cond *ir.Value, exitOnTrue bool) *Classification {
	x := a.ClassOf(l, cond.Args[0])
	y := a.ClassOf(l, cond.Args[1])
	if x.Kind == Unknown || y.Kind == Unknown {
		return nil
	}
	// Normalize to the exit-taken comparison.
	op := cond.Op
	if !exitOnTrue {
		op = negateCompare(op)
	}
	// d per the conversion table: integers let us fold ≤ into < ± 1.
	one := invariant(l, IntExpr(1))
	switch op {
	case ir.OpLess: // exit when x < y: stay while x - y >= 0
		return addCls(l, subCls(l, x, y), one)
	case ir.OpLeq: // exit when x <= y: stay while x - y > 0
		return subCls(l, x, y)
	case ir.OpGreater: // exit when x > y: stay while y - x >= 0
		return addCls(l, subCls(l, y, x), one)
	case ir.OpGeq: // exit when x >= y: stay while y - x > 0
		return subCls(l, y, x)
	default:
		// Equality exits need divisibility reasoning (§5.2 notes only
		// inequalities); unknown.
		return nil
	}
}

func negateCompare(op ir.Op) ir.Op {
	switch op {
	case ir.OpLess:
		return ir.OpGeq
	case ir.OpLeq:
		return ir.OpGreater
	case ir.OpGreater:
		return ir.OpLeq
	case ir.OpGeq:
		return ir.OpLess
	case ir.OpEq:
		return ir.OpNeq
	case ir.OpNeq:
		return ir.OpEq
	}
	return ir.OpInvalid
}

// exitInfo pairs an exit-value expression with the guards (expressions
// that must be nonnegative at runtime) under which it is exact.
type exitInfo struct {
	expr   *Expr
	guards []*Expr
}

// exitValue computes the value of v (defined in some loop) after that
// loop exits, as an affine Expr over values external to the loop
// (paper §5.3: init + tc·step, plus one extra step for code above the
// exit test). The guards carry symbolic trip-count nonnegativity
// obligations; consumers must prove them (loopCtx.checkedExit) before
// relying on the expression. Results are cached.
func (a *Analysis) exitValue(v *ir.Value) exitInfo {
	if a.opts.DisableExitValues {
		return exitInfo{}
	}
	if e, ok := a.exits[v]; ok {
		return e
	}
	a.exits[v] = exitInfo{} // cut recursion
	e := a.computeExitValue(v)
	a.exits[v] = e
	return e
}

func (a *Analysis) computeExitValue(v *ir.Value) exitInfo {
	l := a.Forest.InnermostContaining(v.Block)
	if l == nil {
		return exitInfo{expr: VarExpr(v)}
	}
	cls := a.byLoop[l][v]
	if cls == nil {
		return exitInfo{}
	}
	switch cls.Kind {
	case Invariant:
		return exitInfo{expr: cls.Expr} // nil when not affine: unknown
	case Linear:
		tc := a.trips[l]
		if tc == nil || tc.State != TripFinite || tc.Expr == nil || tc.Exit == nil {
			return exitInfo{}
		}
		if cls.Init == nil || cls.Step == nil {
			return exitInfo{}
		}
		// Executions: tc+1 when v runs before the exit test fires
		// (v's block dominates the exit block), tc when v runs on
		// every complete iteration (dominates all latches).
		dom := a.SSA.Dom
		var execsMinus1 *Expr
		switch {
		case dom.Dominates(v.Block, tc.Exit):
			execsMinus1 = tc.Expr
		case dominatesAll(dom, v.Block, l.Latches):
			execsMinus1 = AddConst(tc.Expr, rational.FromInt(-1))
		default:
			return exitInfo{}
		}
		out := exitInfo{expr: AddExpr(cls.Init, MulExpr(execsMinus1, cls.Step))}
		if tc.Guard != nil {
			out.guards = append(out.guards, tc.Guard)
		}
		return out
	default:
		return exitInfo{}
	}
}

func dominatesAll(t *dom.Tree, b *ir.Block, list []*ir.Block) bool {
	for _, x := range list {
		if !t.Dominates(b, x) {
			return false
		}
	}
	return len(list) > 0
}
