package iv

import (
	"fmt"
	"slices"
	"strings"

	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
)

// Rule identifies the classification rule that produced a
// Classification, for provenance reporting ("why was j linear?"). The
// zero value means the producing site did not annotate; Explain then
// derives a rule from the Kind alone.
type Rule uint8

// Rules, named after the paper sections that define them.
const (
	RuleNone Rule = iota
	// RuleInvariantLeaf: the value is defined outside the loop.
	RuleInvariantLeaf
	// RuleInvariantConst: constant propagation (Wegman–Zadeck) proved a
	// single value.
	RuleInvariantConst
	// RuleInvariantLoad: §5.1's invariant-address load from an array the
	// loop never stores to.
	RuleInvariantLoad
	// RuleAlgebra: §5.1's algebra of types and operators over already
	// classified operands.
	RuleAlgebra
	// RuleJoinMerge: a non-header φ whose incoming classifications agree.
	RuleJoinMerge
	// RuleWrapAround: §4.1's wrap-around rule at a loop-header φ whose
	// carried value is classified outside the φ's own cycle.
	RuleWrapAround
	// RuleLinearFamily: §3.1's equal-offset linear family (Figure 3).
	RuleLinearFamily
	// RuleLinearCumulative: the §4.3 cumulative effect degenerating to
	// X' = X + invariant.
	RuleLinearCumulative
	// RulePeriodicRing: §4.2's rotation ring of header φs and copies.
	RulePeriodicRing
	// RuleFlipFlop: §4.2's flip-flop recurrence X' = c − X.
	RuleFlipFlop
	// RulePolynomial: §4.3's cumulative effect X' = X + β with β an
	// induction variable.
	RulePolynomial
	// RuleGeometric: §4.3's cumulative effect X' = a·X + β with |a| ≥ 2.
	RuleGeometric
	// RuleMonotonicRange: §4.4's same-signed conditional increments.
	RuleMonotonicRange
	// RuleMonotonicGrowth: §4.4's extension admitting multiplications
	// ("such as 2*i+i, as long as the initial value of i is known").
	RuleMonotonicGrowth
	// RuleExitValue: §5.3's exit-value propagation out of an inner loop.
	RuleExitValue
	// RuleUnclassified: the SCR matched no rule.
	RuleUnclassified
)

var ruleNames = map[Rule]string{
	RuleNone:             "unannotated",
	RuleInvariantLeaf:    "loop-external definition (invariant)",
	RuleInvariantConst:   "constant propagation (Wegman–Zadeck SCCP)",
	RuleInvariantLoad:    "§5.1 invariant load (array never stored in loop)",
	RuleAlgebra:          "§5.1 operator algebra over classified operands",
	RuleJoinMerge:        "join φ with agreeing incoming classifications",
	RuleWrapAround:       "§4.1 wrap-around header φ",
	RuleLinearFamily:     "§3.1 linear induction family (Figure 3, equal offsets)",
	RuleLinearCumulative: "§4.3 cumulative effect, degenerate X' = X + invariant",
	RulePeriodicRing:     "§4.2 periodic rotation ring",
	RuleFlipFlop:         "§4.2 flip-flop X' = c − X (periodic, period 2)",
	RulePolynomial:       "§4.3 polynomial via cumulative effect X' = X + β",
	RuleGeometric:        "§4.3 geometric via cumulative effect X' = a·X + β",
	RuleMonotonicRange:   "§4.4 monotonic (same-signed increments)",
	RuleMonotonicGrowth:  "§4.4 monotonic growth (adds and multiplies, known start)",
	RuleExitValue:        "§5.3 exit value of an inner loop",
	RuleUnclassified:     "no classification rule matched the SCR",
}

// String names the rule in paper terms.
func (r Rule) String() string {
	if s, ok := ruleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// ruleOf returns the classification's recorded rule, falling back to a
// kind-derived rule when the producing site did not annotate.
func ruleOf(c *Classification) Rule {
	if c.Rule != RuleNone {
		return c.Rule
	}
	switch c.Kind {
	case Invariant:
		return RuleInvariantLeaf
	case Linear:
		return RuleLinearFamily
	case Polynomial:
		return RulePolynomial
	case Geometric:
		return RuleGeometric
	case WrapAround:
		return RuleWrapAround
	case Periodic:
		return RulePeriodicRing
	case Monotonic:
		return RuleMonotonicRange
	default:
		return RuleUnclassified
	}
}

// ruleDetail renders the kind-specific provenance line: what the rule
// computed, with enough structure to re-derive the tuple.
func ruleDetail(c *Classification) string {
	switch c.Kind {
	case Invariant:
		if c.Expr != nil {
			return fmt.Sprintf("value is %s on every iteration", c.Expr)
		}
		return "value does not change within the loop (not affine)"
	case Linear:
		return fmt.Sprintf("value(h) = %s + %s·h", c.Init, c.Step)
	case Polynomial:
		if c.Coeffs != nil {
			return fmt.Sprintf("order %d, coefficients solved from %d simulated samples via Vandermonde inversion",
				c.Order, len(c.Coeffs))
		}
		return fmt.Sprintf("order %d, order-only (symbolic initial value blocks the Vandermonde solve)", c.Order)
	case Geometric:
		if c.Coeffs != nil {
			return fmt.Sprintf("base %d, coefficients solved via geometric Vandermonde inversion", c.Base)
		}
		return fmt.Sprintf("base %d, base-only (symbolic initial value blocks the Vandermonde solve)", c.Base)
	case WrapAround:
		return fmt.Sprintf("holds init %s for the first %d iteration(s), then follows the carried classification delayed by %d",
			c.Init, c.Order, c.Order)
	case Periodic:
		if len(c.Initials) == c.Period {
			parts := make([]string, len(c.Initials))
			for i, e := range c.Initials {
				parts[i] = e.String()
			}
			return fmt.Sprintf("period %d, phase %d, ring (%s)", c.Period, c.Phase, strings.Join(parts, ", "))
		}
		return fmt.Sprintf("period %d, phase %d", c.Period, c.Phase)
	case Monotonic:
		dir := "non-decreasing"
		if c.Dir < 0 {
			dir = "non-increasing"
		}
		if c.Strict {
			if c.Dir > 0 {
				dir = "strictly increasing"
			} else {
				dir = "strictly decreasing"
			}
		}
		return fmt.Sprintf("value is %s across iterations", dir)
	default:
		return "operands escape every rule of §3–§5"
	}
}

// scrMembers lists the values of loop l classified into the same family
// as c (same anchoring header φ), sorted by SSA id.
func (a *Analysis) scrMembers(c *Classification) []*ir.Value {
	if c.HeadPhi == nil || c.Loop == nil {
		return nil
	}
	m := a.byLoop[c.Loop]
	var out []*ir.Value
	for v, vc := range m {
		if vc != nil && vc.HeadPhi == c.HeadPhi {
			out = append(out, v)
		}
	}
	slices.SortFunc(out, ir.ByID)
	return out
}

// Explain renders the provenance chain of v's classification in loop l:
// the rule that fired (by paper section), its detail, the SCR members
// the rule consumed, and the feeding classifications, recursively.
func (a *Analysis) Explain(l *loops.Loop, v *ir.Value) string {
	var sb strings.Builder
	c := a.ClassOf(l, v)
	label := "?"
	if l != nil {
		label = l.Label
	}
	fmt.Fprintf(&sb, "%s in loop %s: %s\n", v, label, c)
	a.explainChain(&sb, c, 1)
	return sb.String()
}

func (a *Analysis) explainChain(sb *strings.Builder, c *Classification, depth int) {
	if c == nil || depth > 6 {
		return
	}
	pad := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%srule: %s\n", pad, ruleOf(c))
	fmt.Fprintf(sb, "%s      %s\n", pad, ruleDetail(c))
	if members := a.scrMembers(c); len(members) > 0 {
		names := make([]string, len(members))
		for i, m := range members {
			s := m.String()
			if m.Op == ir.OpPhi {
				s = "φ " + s
			}
			names[i] = s
		}
		fmt.Fprintf(sb, "%s      SCR {%s}\n", pad, strings.Join(names, ", "))
	}
	if c.Kind == WrapAround && c.Inner != nil {
		fmt.Fprintf(sb, "%sfed by carried value: %s\n", pad, c.Inner)
		a.explainChain(sb, c.Inner, depth+1)
	}
	if c.Beta != nil {
		fmt.Fprintf(sb, "%sfed by recurrence step β = %s\n", pad, c.Beta)
		a.explainChain(sb, c.Beta, depth+1)
	}
}

// ExplainVar renders the provenance chains for every classified value
// whose SSA name or source variable matches name, across all loops
// (innermost first). An empty result means no such variable exists.
func (a *Analysis) ExplainVar(name string) string {
	var sb strings.Builder
	for _, l := range a.Forest.InnerToOuter() {
		m := a.byLoop[l]
		vals := make([]*ir.Value, 0, len(m))
		for v := range m {
			if a.varMatches(v, name) {
				vals = append(vals, v)
			}
		}
		slices.SortFunc(vals, ir.ByID)
		for _, v := range vals {
			sb.WriteString(a.Explain(l, v))
		}
	}
	return sb.String()
}

// ExplainKeys enumerates every name ExplainVar has an answer for: for
// each classified value (loops innermost first, values by SSA id) its
// SSA name, that name with the version suffix stripped, and the
// renamer's source-variable record — exactly the names varMatches
// accepts, first occurrence only. The order is structural: two
// α-renamed programs yield tables of the same length whose entries
// correspond position by position, which is what lets the codec align
// per-key provenance texts between a program and its rename twin.
func (a *Analysis) ExplainKeys() []string {
	var keys []string
	seen := map[string]bool{}
	add := func(k string) {
		if k != "" && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, l := range a.Forest.InnerToOuter() {
		m := a.byLoop[l]
		vals := make([]*ir.Value, 0, len(m))
		for v := range m {
			if v.Name != "" {
				vals = append(vals, v)
			}
		}
		slices.SortFunc(vals, ir.ByID)
		for _, v := range vals {
			add(v.Name)
			add(strings.TrimRight(v.Name, "0123456789"))
			if a.SSA != nil {
				add(a.SSA.VarOf(v))
			}
		}
	}
	return keys
}

// varMatches reports whether v is a version of the named variable: an
// exact SSA-name match ("j2"), the renamer's source-variable record, or
// the SSA name with its version suffix stripped ("j").
func (a *Analysis) varMatches(v *ir.Value, name string) bool {
	if v.Name == "" {
		return false
	}
	if v.Name == name {
		return true
	}
	if a.SSA != nil && a.SSA.VarOf(v) == name {
		return true
	}
	base := strings.TrimRight(v.Name, "0123456789")
	return base == name
}
