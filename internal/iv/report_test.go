package iv

import (
	"encoding/json"
	"testing"
)

func TestReportData(t *testing.T) {
	a := analyze(t, `
iml = n
j = 1
k = 2
L9: for i = 1 to 10 {
    a[i] = a[iml]
    iml = i
    t = j
    j = k
    k = t
    if a[i] > 0 { m = m + 1 }
}
`)
	data := a.ReportData()
	if len(data) != 1 {
		t.Fatalf("got %d loop reports", len(data))
	}
	lr := data[0]
	if lr.Label != "L9" || lr.TripCount != "10" {
		t.Errorf("loop header = %+v", lr)
	}
	if lr.MaxTrip == nil || *lr.MaxTrip != 10 {
		t.Errorf("max trip = %v", lr.MaxTrip)
	}
	byName := map[string]ValueReport{}
	for _, v := range lr.Values {
		byName[v.Name] = v
	}
	if v := byName["iml2"]; v.Class != "wrap-around" || v.WrapOrder != 1 {
		t.Errorf("iml2 = %+v", v)
	}
	if v := byName["j2"]; v.Class != "periodic" || v.Period != 2 || v.Phase == nil {
		t.Errorf("j2 = %+v", v)
	}
	if v := byName["m2"]; v.Class != "monotonic" || v.Direction != "increasing" || v.Strict {
		t.Errorf("m2 = %+v", v)
	}
	if v := byName["i2"]; v.Class != "linear" || v.Tuple != "(L9, 1, 1)" {
		t.Errorf("i2 = %+v", v)
	}

	// The structure must round-trip through JSON.
	blob, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	var back []LoopReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(data) || len(back[0].Values) != len(data[0].Values) {
		t.Error("JSON round trip lost entries")
	}
}

func TestReportNestedField(t *testing.T) {
	a := analyze(t, `
i = 0
L5: loop {
    i = i + 2
    j = i
    L6: loop {
        j = j + 1
        a[j] = 0
        if j > m { exit }
    }
    if i > n { exit }
}
`)
	var nested string
	for _, lr := range a.ReportData() {
		for _, v := range lr.Values {
			if v.Name == "j3" {
				nested = v.Nested
			}
		}
	}
	if nested != "(L6, (L5, 3, 2), 1)" {
		t.Errorf("nested field = %q", nested)
	}
}

func TestFamilies(t *testing.T) {
	a := analyze(t, `
j = n
L7: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`)
	l := a.LoopByLabel("L7")
	fams := a.Families(l)
	if len(fams) != 1 {
		t.Fatalf("families = %d, want 1", len(fams))
	}
	for head, members := range fams {
		if head.Name != "j2" {
			t.Errorf("family head = %s, want j2", head)
		}
		if len(members) != 3 { // j2, i1, j3
			t.Errorf("members = %v, want 3", members)
		}
	}
}
