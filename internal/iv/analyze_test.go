package iv

import (
	"fmt"
	"strings"
	"testing"

	"beyondiv/internal/ir"
	"beyondiv/internal/progen"
	"beyondiv/internal/rational"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	a, err := AnalyzeProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// classOf fetches the classification of a named SSA value in a labeled
// loop.
func classOf(t *testing.T, a *Analysis, loop, val string) *Classification {
	t.Helper()
	l := a.LoopByLabel(loop)
	if l == nil {
		t.Fatalf("loop %s not found", loop)
	}
	v := a.ValueByName(val)
	if v == nil {
		t.Fatalf("value %s not found in\n%s", val, a.SSA.Func)
	}
	return a.ClassOf(l, v)
}

func wantString(t *testing.T, got interface{ String() string }, want string) {
	t.Helper()
	if got.String() != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestPaperSection2 covers the introductory examples L1, L2, L3/L4.
func TestPaperSection2(t *testing.T) {
	// L1: a basic induction variable i = (L1, i0+k, k).
	a := analyze(t, `
i = i0
L1: loop {
    i = i + k
    if i > n { exit }
}
`)
	wantString(t, classOf(t, a, "L1", "i2"), "(L1, i01, k1)")
	wantString(t, classOf(t, a, "L1", "i3"), "(L1, i01 + k1, k1)")

	// L2: mutually-defined induction variables i = j+c, j = i+k.
	a = analyze(t, `
j = n
L2: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`)
	wantString(t, classOf(t, a, "L2", "i1"), "(L2, n1 + c1, c1 + k1)")
	// (j's preheader copy of n is chased to n1, as in Figure 1.)
	wantString(t, classOf(t, a, "L2", "j3"), "(L2, n1 + c1 + k1, c1 + k1)")

	// L3/L4: a multiloop induction variable; j's step in L4 is the
	// outer IV i, and its initial value references i as a symbol.
	a = analyze(t, `
i = 0
L3: loop {
    i = i + 1
    j = i
    L4: loop {
        j = j + i
        if j > m { exit }
    }
    if i > n { exit }
}
`)
	j := classOf(t, a, "L4", "j3")
	if j.Kind != Linear {
		t.Fatalf("j3 in L4 = %s, want linear", j)
	}
	if _, ok := j.Step.SingleTerm(); !ok {
		t.Errorf("j3 step = %s, want the single outer value i3", j.Step)
	}
	// i itself is linear in the outer loop.
	wantString(t, classOf(t, a, "L3", "i3"), "(L3, 1, 1)")
}

// TestFigure1 reproduces Figure 1/2: the family j2 = (L7, j1, c+k).
func TestFigure1(t *testing.T) {
	a := analyze(t, `
j = n
L7: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`)
	// Copy chains are chased: the initial value prints as n1, exactly
	// the paper's (L7, n1, c1+k1).
	wantString(t, classOf(t, a, "L7", "j2"), "(L7, n1, c1 + k1)")
	wantString(t, classOf(t, a, "L7", "i1"), "(L7, n1 + c1, c1 + k1)")
	wantString(t, classOf(t, a, "L7", "j3"), "(L7, n1 + c1 + k1, c1 + k1)")
	// All three share one family anchor.
	head := classOf(t, a, "L7", "j2").HeadPhi
	if head == nil || classOf(t, a, "L7", "i1").HeadPhi != head || classOf(t, a, "L7", "j3").HeadPhi != head {
		t.Error("family members must share the header φ")
	}
}

// TestFigure3 reproduces Figure 3: equal increments on both branches of
// a conditional keep the family linear: i2 = (L8, 1, 2), the branch
// values and the join φ all (L8, 3, 2).
func TestFigure3(t *testing.T) {
	a := analyze(t, `
i = 1
L8: loop {
    if a[i] > 0 {
        i = i + 2
    } else {
        i = i + 2
    }
    if i > n { exit }
}
`)
	wantString(t, classOf(t, a, "L8", "i2"), "(L8, 1, 2)")
	wantString(t, classOf(t, a, "L8", "i3"), "(L8, 3, 2)")
	wantString(t, classOf(t, a, "L8", "i4"), "(L8, 3, 2)")
	wantString(t, classOf(t, a, "L8", "i5"), "(L8, 3, 2)")
}

// TestFigure3Unequal is the contrast case: different increments on the
// two branches make the variable monotonic, not linear (Figure 6).
func TestFigure3Unequal(t *testing.T) {
	a := analyze(t, `
k = 0
L16: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
    } else {
        k = k + 2
    }
}
`)
	k2 := classOf(t, a, "L16", "k2")
	if k2.Kind != Monotonic || k2.Dir != 1 || !k2.Strict {
		t.Errorf("k2 = %s, want strictly increasing monotonic", k2)
	}
}

// TestFigure4 reproduces Figure 4: j2 is a first-order wrap-around of
// the IV i, and k2 (one more φ away) is second-order.
func TestFigure4(t *testing.T) {
	a := analyze(t, `
j = n
k = n
i = 1
L10: loop {
    a[k] = a[j] + 1
    k = j
    j = i
    i = i + 1
    if i > m { exit }
}
`)
	j2 := classOf(t, a, "L10", "j2")
	if j2.Kind != WrapAround || j2.Order != 1 {
		t.Fatalf("j2 = %s, want order-1 wrap-around", j2)
	}
	if j2.Inner.Kind != Linear {
		t.Errorf("j2 inner = %s, want linear", j2.Inner)
	}
	k2 := classOf(t, a, "L10", "k2")
	if k2.Kind != WrapAround || k2.Order != 2 {
		t.Fatalf("k2 = %s, want order-2 wrap-around", k2)
	}
}

// TestWrapAroundBecomesIV reproduces §4.1's refinement: when the initial
// value fits the induction sequence (j1 = 0 before a loop carrying
// j = i with i = (L, 1, 1)), the wrap-around is exactly the IV
// (L10, 0, 1).
func TestWrapAroundBecomesIV(t *testing.T) {
	a := analyze(t, `
j = 0
i = 1
L10: loop {
    a[j] = i
    j = i
    i = i + 1
    if i > m { exit }
}
`)
	wantString(t, classOf(t, a, "L10", "j2"), "(L10, 0, 1)")
}

// TestFigure5 reproduces Figure 5: the rotation t=j, j=k, k=l, l=t is a
// periodic family with period 3 (t is a copy inside the ring; its
// header φ is dead and pruned, exactly the "t2 not in the SCR" remark).
func TestFigure5(t *testing.T) {
	a := analyze(t, `
j = 1
k = 2
l = 3
L13: for it = 1 to n {
    t = j
    j = k
    k = l
    l = t
    a[j] = a[k] + a[l]
}
`)
	for _, name := range []string{"j2", "k2", "l2"} {
		c := classOf(t, a, "L13", name)
		if c.Kind != Periodic || c.Period != 3 {
			t.Errorf("%s = %s, want periodic period 3", name, c)
		}
	}
	// Distinct phases for the three header φs.
	phases := map[int]bool{}
	for _, name := range []string{"j2", "k2", "l2"} {
		phases[classOf(t, a, "L13", name).Phase] = true
	}
	if len(phases) != 3 {
		t.Errorf("phases not distinct: %v", phases)
	}
	// The ring's initial values are the three entry values.
	c := classOf(t, a, "L13", "j2")
	if len(c.Initials) != 3 {
		t.Fatalf("initials = %v", c.Initials)
	}
	got := map[string]bool{}
	for _, e := range c.Initials {
		got[e.String()] = true
	}
	if !got["1"] || !got["2"] || !got["3"] {
		t.Errorf("initials = %v, want {1,2,3}", c.Initials)
	}
}

// TestFlipFlopSwap reproduces L11: a two-variable swap is periodic with
// period 2.
func TestFlipFlopSwap(t *testing.T) {
	a := analyze(t, `
j = 1
jold = 2
L11: for it = 1 to n {
    a[j] = a[jold]
    jtemp = jold
    jold = j
    j = jtemp
}
`)
	j2 := classOf(t, a, "L11", "j2")
	if j2.Kind != Periodic || j2.Period != 2 {
		t.Errorf("j2 = %s, want periodic period 2", j2)
	}
	jo := classOf(t, a, "L11", "jold2")
	if jo.Kind != Periodic || jo.Period != 2 || jo.Phase == j2.Phase {
		t.Errorf("jold2 = %s, want the other phase of the pair", jo)
	}
}

// TestFlipFlopArithmetic reproduces L12: j = 3 - j is a flip-flop,
// classified periodic period 2 with closed form 3/2 + (init-3/2)(-1)^h.
func TestFlipFlopArithmetic(t *testing.T) {
	a := analyze(t, `
j = 1
jold = 2
L12: for it = 1 to n {
    a[j] = a[jold]
    j = 3 - j
    jold = 3 - jold
}
`)
	j2 := classOf(t, a, "L12", "j2")
	if j2.Kind != Periodic || j2.Period != 2 {
		t.Fatalf("j2 = %s, want periodic period 2", j2)
	}
	// Closed form: base -1 with coefficients 3/2 and geo part -1/2.
	if j2.Base != -1 || j2.Coeffs == nil {
		t.Fatalf("j2 closed form missing: %s", j2)
	}
	if v, ok := j2.PolyEval(0); !ok || !v.Equal(rational.FromInt(1)) {
		t.Errorf("j2(0) = %s, want 1", v)
	}
	if v, ok := j2.PolyEval(1); !ok || !v.Equal(rational.FromInt(2)) {
		t.Errorf("j2(1) = %s, want 2", v)
	}
	if v, ok := j2.PolyEval(2); !ok || !v.Equal(rational.FromInt(1)) {
		t.Errorf("j2(2) = %s, want 1", v)
	}
}

// TestL14ClosedForms reproduces the §4.3 table: with j=k=l=1, m=0 and
// i = (L14, 1, 1):
//
//	j (stored value) : 2, 4, 7, 11  = (h² + 3h + 4)/2
//	k (stored value) : 4, 9, 17, 29 = (h³ + 6h² + 23h + 24)/6
//	l (stored value) : 3, 7, 15, 31 = 2^(h+2) - 1
//	m (stored value) : 3, 14, 49    = 2·3^(h+1) - h - 3
func TestL14ClosedForms(t *testing.T) {
	a := analyze(t, `
j = 1
k = 1
l = 1
m = 0
L14: for i = 1 to n {
    j = j + i
    k = k + j + 1
    l = l * 2 + 1
    m = 3 * m + 2 * i + 1
}
`)
	wantString(t, classOf(t, a, "L14", "i2"), "(L14, 1, 1)")
	// j3 = (h² + 3h + 4)/2 -> coefficients (2, 3/2, 1/2).
	wantString(t, classOf(t, a, "L14", "j3"), "(L14, 2, 3/2, 1/2)")
	// k3 = (h³ + 6h² + 23h + 24)/6 -> (4, 23/6, 1, 1/6); this is the
	// exact matrix-inversion example worked in the paper.
	wantString(t, classOf(t, a, "L14", "k3"), "(L14, 4, 23/6, 1, 1/6)")
	// l3 = 2^(h+2) - 1 -> base 2, poly part -1, geo coefficient 4.
	wantString(t, classOf(t, a, "L14", "l3"), "(L14, base 2: -1 | 4)")
	// m3 = 2·3^(h+1) - h - 3 -> base 3, poly part (-3, -1), geo 6.
	wantString(t, classOf(t, a, "L14", "m3"), "(L14, base 3: -3, -1 | 6)")
	// And the φ values, one iteration earlier.
	wantString(t, classOf(t, a, "L14", "j2"), "(L14, 1, 1/2, 1/2)")
	wantString(t, classOf(t, a, "L14", "m2"), "(L14, base 3: -2, -1 | 2)")

	// Verify each closed form against the recurrence for 8 iterations.
	j, k, l, m := int64(1), int64(1), int64(1), int64(0)
	for h := int64(0); h < 8; h++ {
		i := h + 1
		j, k, l, m = j+i, k+(j+i)+1, l*2+1, 3*m+2*i+1
		for name, want := range map[string]int64{"j3": j, "k3": k, "l3": l, "m3": m} {
			got, ok := classOf(t, a, "L14", name).PolyEval(h)
			if !ok || !got.Equal(rational.FromInt(want)) {
				t.Errorf("%s(%d) = %s, want %d", name, h, got, want)
			}
		}
	}
}

// TestGeometricM is the §4.3 worked example m = 3*m + 2*i + 1 from 0:
// first values 0, 3, 14, 49 and no quadratic term.
func TestGeometricM(t *testing.T) {
	a := analyze(t, `
m = 0
L14: for i = 1 to n {
    m = 3 * m + 2 * i + 1
}
`)
	m2 := classOf(t, a, "L14", "m2")
	if m2.Kind != Geometric || m2.Base != 3 {
		t.Fatalf("m2 = %s, want geometric base 3", m2)
	}
	// m(h) = 2·3^h - h - 2: coefficients (-2, -1), geo 2; the quadratic
	// term vanishes, as the paper notes.
	wantString(t, m2, "(L14, base 3: -2, -1 | 2)")
	for h, want := range []int64{0, 3, 14, 49, 156} {
		got, ok := m2.PolyEval(int64(h))
		if !ok || !got.Equal(rational.FromInt(want)) {
			t.Errorf("m2(%d) = %s, want %d", h, got, want)
		}
	}
}

// TestFigure6 reproduces Figure 6: increments of 1 or 2 every iteration
// give strict monotonicity for every member.
func TestFigure6(t *testing.T) {
	a := analyze(t, `
k = 0
L16: loop {
    if a[k] > 0 {
        k = k + 1
    } else {
        k = k + 2
    }
    if k > n { exit }
}
`)
	for _, name := range []string{"k2", "k3", "k4", "k5"} {
		c := classOf(t, a, "L16", name)
		if c.Kind != Monotonic || c.Dir != 1 || !c.Strict {
			t.Errorf("%s = %s, want strictly increasing", name, c)
		}
	}
}

// TestMonotonicPack reproduces the L15 pack loop (§4.4 and Figure 10):
// the conditionally incremented k is monotonic; the incremented member
// k3 is strictly monotonic; the merge φ and header φ are not strict.
func TestMonotonicPack(t *testing.T) {
	a := analyze(t, `
k = 0
L15: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
        b[k] = a[i]
    }
}
`)
	k2 := classOf(t, a, "L15", "k2")
	if k2.Kind != Monotonic || k2.Dir != 1 || k2.Strict {
		t.Errorf("k2 = %s, want non-strict increasing", k2)
	}
	k3 := classOf(t, a, "L15", "k3")
	if k3.Kind != Monotonic || !k3.Strict {
		t.Errorf("k3 = %s, want strictly increasing (paper Figure 10)", k3)
	}
	k4 := classOf(t, a, "L15", "k4")
	if k4.Kind != Monotonic || k4.Strict {
		t.Errorf("k4 = %s, want non-strict increasing", k4)
	}
}

// TestMonotonicDecreasing covers the symmetric direction.
func TestMonotonicDecreasing(t *testing.T) {
	a := analyze(t, `
k = 1000
L1: for i = 1 to n {
    if a[i] > 0 {
        k = k - 3
    } else {
        k = k - 1
    }
}
`)
	k2 := classOf(t, a, "L1", "k2")
	if k2.Kind != Monotonic || k2.Dir != -1 || !k2.Strict {
		t.Errorf("k2 = %s, want strictly decreasing", k2)
	}
}

// TestMonotonicByIV: k += i with i ≥ 1 is polynomial on the
// unconditional path, but monotonic when conditional.
func TestMonotonicByIV(t *testing.T) {
	a := analyze(t, `
k = 0
L1: for i = 1 to n {
    if a[i] > 0 {
        k = k + i
    }
}
`)
	k2 := classOf(t, a, "L1", "k2")
	if k2.Kind != Monotonic || k2.Dir != 1 || k2.Strict {
		t.Errorf("k2 = %s, want non-strict increasing", k2)
	}
}

// TestMixedDirectionsNotMonotonic: +1 on one branch, -1 on the other is
// not classifiable.
func TestMixedDirectionsNotMonotonic(t *testing.T) {
	a := analyze(t, `
k = 0
L1: for i = 1 to n {
    if a[i] > 0 {
        k = k + 1
    } else {
        k = k - 1
    }
}
`)
	if c := classOf(t, a, "L1", "k2"); c.Kind != Unknown {
		t.Errorf("k2 = %s, want unknown", c)
	}
}

// TestFigures7and8 reproduces the nested example: inner trip count 100,
// inner family k3 = (L18, k2, 2), k4 = (L18, k2+2, 2), and after exit
// values (k6 = k2 + 101·2, i4 = i1 + 100·1) the outer family
// k2 = (L17, 0, 204).
func TestFigures7and8(t *testing.T) {
	a := analyze(t, `
k = 0
L17: loop {
    i = 1
    L18: loop {
        k = k + 2
        if i > 100 { exit }
        i = i + 1
    }
    k = k + 2
    if k > 100000 { exit }
}
`)
	// Inner loop.
	if tc, ok := a.TripCount(a.LoopByLabel("L18")).Const(); !ok || tc != 100 {
		t.Fatalf("L18 trip count = %v, want 100", a.TripCount(a.LoopByLabel("L18")))
	}
	inner := classOf(t, a, "L18", "k3")
	if inner.Kind != Linear || inner.Step.String() != "2" {
		t.Errorf("k3 = %s, want (L18, k2, 2)", inner)
	}
	// Exit values (paper Figure 8): k4's exit value is k2 + 202 and
	// i3's is 101.
	k4 := a.ValueByName("k4")
	if e := a.exitValue(k4); e.expr == nil || e.expr.String() != "202 + k2" {
		t.Errorf("exit value of k4 = %s, want 202 + k2", e.expr)
	}
	i3 := a.ValueByName("i3")
	if e := a.exitValue(i3); e.expr == nil || e.expr.String() != "101" {
		t.Errorf("exit value of i3 = %s, want 101", e.expr)
	}
	// Outer loop: k2 = (L17, 0, 204).
	wantString(t, classOf(t, a, "L17", "k2"), "(L17, 0, 204)")
	wantString(t, classOf(t, a, "L17", "k5"), "(L17, 204, 204)")
}

// TestFigure9Triangular reproduces the triangular nest (the [EHLP92]
// case §5.3 calls "found to be so difficult"): the outer family is
// quadratic. Deriving from the printed initial values 0, 1, 2 (see
// DESIGN.md): j2 = (L19, 0, 1, 1), j3 = (L19, 1, 2, 1).
func TestFigure9Triangular(t *testing.T) {
	a := analyze(t, `
j = 0
L19: for i = 1 to n {
    j = j + i
    L20: for k = 1 to i {
        j = j + 1
    }
}
`)
	// Inner loop: j4 = (L20, j3, 1) with symbolic trip count i.
	tc := a.TripCount(a.LoopByLabel("L20"))
	if tc.State != TripFinite || tc.Expr == nil {
		t.Fatalf("L20 trip count = %s, want symbolic i", tc)
	}
	if _, ok := tc.Expr.SingleTerm(); !ok {
		t.Errorf("L20 trip count = %s, want a single symbolic term", tc)
	}
	j4 := classOf(t, a, "L20", "j4")
	if j4.Kind != Linear || j4.Step.String() != "1" {
		t.Errorf("j4 = %s, want (L20, j3, 1)", j4)
	}
	// Outer loop: the quadratic family.
	wantString(t, classOf(t, a, "L19", "j2"), "(L19, 0, 1, 1)")
	wantString(t, classOf(t, a, "L19", "j3"), "(L19, 1, 2, 1)")
	// Cross-check dynamically: j2(h) = h + h².
	j := int64(0)
	for h := int64(0); h < 6; h++ {
		got, ok := classOf(t, a, "L19", "j2").PolyEval(h)
		if !ok || !got.Equal(rational.FromInt(j)) {
			t.Errorf("j2(%d) = %s, want %d", h, got, j)
		}
		i := h + 1
		j = j + i + i // explicit increment plus i inner iterations
	}
}

// TestPureTriangular is the variant without the explicit j = j + i,
// whose header φ is the half-square (L19, 0, 1/2, 1/2).
func TestPureTriangular(t *testing.T) {
	a := analyze(t, `
j = 0
L19: for i = 1 to n {
    L20: for k = 1 to i {
        j = j + 1
    }
}
`)
	wantString(t, classOf(t, a, "L19", "j2"), "(L19, 0, 1/2, 1/2)")
}

// TestTripCountTable reproduces the §5.2 conversion table: each
// comparison direction and polarity, plus the zero/infinite cases.
func TestTripCountTable(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		// for-loop: hi - lo + 1 iterations.
		{"L1: for i = 1 to 10 { a[i] = 0 }", "10"},
		{"L1: for i = 3 to 10 { a[i] = 0 }", "8"},
		{"L1: for i = 1 to 10 by 2 { a[i] = 0 }", "5"},
		{"L1: for i = 1 to 9 by 2 { a[i] = 0 }", "5"},
		{"L1: for i = 10 to 1 by -3 { a[i] = 0 }", "4"},
		// exit with > (true branch exits). The count is the number of
		// times the test chooses to stay (§5.2): the increment above
		// the test runs count+1 times.
		{"i = 1\nL1: loop { i = i + 1\nif i > 100 { exit } }", "99"},
		// exit with >=.
		{"i = 1\nL1: loop { i = i + 1\nif i >= 100 { exit } }", "98"},
		// exit with < on a decreasing variable.
		{"i = 100\nL1: loop { i = i - 2\nif i < 0 { exit } }", "50"},
		// exit with <=.
		{"i = 100\nL1: loop { i = i - 2\nif i <= 0 { exit } }", "49"},
		// zero-trip for loop.
		{"L1: for i = 5 to 1 { a[i] = 0 }", "0"},
		// no exit at all.
		{"L1: loop { i = i + 1 }", "infinite"},
		// growing away from the bound.
		{"i = 1\nL1: loop { i = i + 1\nif i < 0 { exit } }", "infinite"},
		// symbolic bound.
		{"L1: for i = 1 to n { a[i] = 0 }", "n1"},
		// symbolic with division.
		{"L1: for i = 1 to n by 2 { a[i] = 0 }", "ceil((n1)/2)"},
	}
	for _, c := range cases {
		a := analyze(t, c.src)
		tc := a.TripCount(a.LoopByLabel("L1"))
		if tc.String() != c.want {
			t.Errorf("trip count of\n%s\n= %s, want %s", c.src, tc, c.want)
		}
	}
}

// TestTripCountRuntime checks constant trip counts against actual
// executed iterations for a grid of loop shapes.
func TestTripCountRuntime(t *testing.T) {
	for lo := int64(-3); lo <= 3; lo++ {
		for hi := int64(-3); hi <= 6; hi++ {
			for _, by := range []int64{1, 2, 3, -1, -2} {
				src := ""
				if by == 1 {
					src = sprintf("c = 0\nL1: for i = %d to %d { c = c + 1 }", lo, hi)
				} else {
					src = sprintf("c = 0\nL1: for i = %d to %d by %d { c = c + 1 }", lo, hi, by)
				}
				a := analyze(t, src)
				tc, ok := a.TripCount(a.LoopByLabel("L1")).Const()
				if !ok {
					t.Fatalf("non-constant trip count for %s", src)
				}
				want := int64(0)
				if by > 0 {
					for i := lo; i <= hi; i += by {
						want++
					}
				} else {
					for i := lo; i >= hi; i += by {
						want++
					}
				}
				if tc != want {
					t.Errorf("%s: trip = %d, want %d", src, tc, want)
				}
			}
		}
	}
}

// TestInvariantThroughLoop: a value never modified in the loop is
// invariant even with a (pruned or surviving) φ.
func TestInvariantThroughLoop(t *testing.T) {
	a := analyze(t, `
x = n + 5
L1: for i = 1 to n {
    a[i] = x
}
`)
	l := a.LoopByLabel("L1")
	x1 := a.ValueByName("x1")
	c := a.ClassOf(l, x1)
	if c.Kind != Invariant {
		t.Errorf("x1 = %s, want invariant", c)
	}
}

// TestConditionalResetUnknown: reassigning from a constant on one branch
// breaks every classification.
func TestConditionalResetUnknown(t *testing.T) {
	a := analyze(t, `
k = 0
L1: for i = 1 to n {
    k = k + 1
    if a[i] > 0 {
        k = 0
    }
}
`)
	if c := classOf(t, a, "L1", "k2"); c.Kind != Unknown {
		t.Errorf("k2 = %s, want unknown", c)
	}
}

// TestDoubling: i = i + i is geometric with base 2.
func TestDoubling(t *testing.T) {
	a := analyze(t, `
i = 1
L1: loop {
    i = i + i
    if i > n { exit }
}
`)
	i2 := classOf(t, a, "L1", "i2")
	if i2.Kind != Geometric || i2.Base != 2 {
		t.Fatalf("i2 = %s, want geometric base 2", i2)
	}
	wantString(t, i2, "(L1, base 2: 0 | 1)") // exactly 2^h
}

// TestSymbolicInitPolynomial: a polynomial whose initial value is a
// parameter keeps its order even without coefficients.
func TestSymbolicInitPolynomial(t *testing.T) {
	a := analyze(t, `
j = n
L1: for i = 1 to 10 {
    j = j + i
}
`)
	j2 := classOf(t, a, "L1", "j2")
	if j2.Kind != Polynomial || j2.Order != 2 {
		t.Fatalf("j2 = %s, want order-2 polynomial", j2)
	}
	if j2.Coeffs != nil {
		t.Error("coefficients should be unknown for a symbolic start")
	}
}

// TestProductOfIVs: x = i*i outside any cycle is a quadratic via the
// operator algebra.
func TestProductOfIVs(t *testing.T) {
	a := analyze(t, `
L1: for i = 1 to n {
    x = i * i
    a[x] = 0
}
`)
	x1 := classOf(t, a, "L1", "x1")
	// i = (L1,1,1), so i*i = 1 + 2h + h².
	wantString(t, x1, "(L1, 1, 2, 1)")
}

// TestCopyChainsShareFamily: copies join the family of their source.
func TestCopyChainsShareFamily(t *testing.T) {
	a := analyze(t, `
L1: for i = 1 to n {
    j = i
    k = j
    a[k] = 0
}
`)
	wantString(t, classOf(t, a, "L1", "j1"), "(L1, 1, 1)")
	wantString(t, classOf(t, a, "L1", "k1"), "(L1, 1, 1)")
}

// TestReportStable: the report contains one entry per named value and
// mentions each loop.
func TestReportStable(t *testing.T) {
	a := analyze(t, `
k = 0
L17: for i = 1 to n {
    L18: for j = 1 to i {
        k = k + 1
    }
}
`)
	rep := a.Report()
	for _, want := range []string{"loop L17", "loop L18", "k2", "i2", "j2"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// TestDeepNestStress: classification over deep nests stays correct and
// tractable (the shared counter of an n-deep triangular nest is an
// order-n polynomial at the top level).
func TestDeepNestStress(t *testing.T) {
	for depth := 2; depth <= 6; depth++ {
		a, err := AnalyzeProgram(progenNested(depth))
		if err != nil {
			t.Fatal(err)
		}
		// Every loop's counter is linear; the innermost counter of the
		// deepest loop still classifies.
		for _, l := range a.Forest.Loops {
			var phi *ir.Value
			for _, v := range l.Header.Values {
				if v.Op == ir.OpPhi && a.SSA.VarOf(v) == "i"+itoa(l.Depth-1) {
					phi = v
				}
			}
			if phi == nil {
				continue
			}
			if c := a.ClassOf(l, phi); c.Kind != Linear {
				t.Errorf("depth %d loop %s counter = %s, want linear", depth, l.Label, c)
			}
		}
	}
}

func progenNested(depth int) string { return progen.NestedLoops(depth) }

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// TestInvariantLoad implements §5.1's invariant-address load rule: a
// load from an array the loop never writes, at an invariant subscript,
// is loop-invariant — and can serve as an IV step.
func TestInvariantLoad(t *testing.T) {
	a := analyze(t, `
k = 0
L1: for i = 1 to n {
    s = w[5]
    k = k + s
    b[k] = i
}
`)
	l := a.LoopByLabel("L1")
	s1 := a.ValueByName("s1")
	if c := a.ClassOf(l, s1); c.Kind != Invariant {
		t.Fatalf("s1 = %s, want invariant (§5.1)", c)
	}
	// k increments by the invariant load: a linear IV with that step.
	k2 := classOf(t, a, "L1", "k2")
	if k2.Kind != Linear {
		t.Errorf("k2 = %s, want linear with the loaded step", k2)
	}

	// A store to w anywhere in the loop kills the rule.
	a = analyze(t, `
k = 0
L1: for i = 1 to n {
    s = w[5]
    w[i] = i
    k = k + s
}
`)
	l = a.LoopByLabel("L1")
	if c := a.ClassOf(l, a.ValueByName("s1")); c.Kind != Unknown {
		t.Errorf("s1 with aliasing store = %s, want unknown", c)
	}

	// A varying subscript also kills it.
	a = analyze(t, `
k = 0
L1: for i = 1 to n {
    s = w[i]
    k = k + s
}
`)
	l = a.LoopByLabel("L1")
	if c := a.ClassOf(l, a.ValueByName("s1")); c.Kind != Unknown {
		t.Errorf("s1 with varying subscript = %s, want unknown", c)
	}

	// Stores in a nested loop count too.
	a = analyze(t, `
k = 0
L1: for i = 1 to n {
    s = w[5]
    L2: for j = 1 to 3 {
        w[j] = j
    }
    k = k + s
}
`)
	l = a.LoopByLabel("L1")
	if c := a.ClassOf(l, a.ValueByName("s1")); c.Kind != Unknown {
		t.Errorf("s1 with nested store = %s, want unknown", c)
	}
}

// TestWrapAroundOfPeriodic exercises §4.1's generalization ("any of the
// other known classes could also be wrapped around"): a header φ whose
// carried value is a periodic member classifies as a wrap-around of the
// periodic class — the situation of Figure 5's t2.
func TestWrapAroundOfPeriodic(t *testing.T) {
	a := analyze(t, `
x = 9
j = 1
k = 2
L13: for i = 1 to n {
    a[x] = i
    t = j
    j = k
    k = t
    x = j
}
`)
	x2 := classOf(t, a, "L13", "x2")
	if x2.Kind != WrapAround || x2.Order != 1 {
		t.Fatalf("x2 = %s, want order-1 wrap-around", x2)
	}
	if x2.Inner == nil || x2.Inner.Kind != Periodic || x2.Inner.Period != 2 {
		t.Errorf("x2 inner = %s, want periodic period 2", x2.Inner)
	}
}
