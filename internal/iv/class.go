package iv

import (
	"fmt"
	"strings"

	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
)

// Class is the top-level kind of a scalar's behaviour within one loop.
type Class int

// Classes, from least to most structured.
const (
	Unknown Class = iota
	// Invariant values do not change within the loop.
	Invariant
	// Linear induction variables follow Init + Step·h (paper §3.1).
	Linear
	// Polynomial induction variables of order ≥ 2 (paper §4.3).
	Polynomial
	// Geometric induction variables with an exponential term (§4.3).
	Geometric
	// WrapAround variables take their initial value for the first
	// Order iterations and then follow Inner (§4.1).
	WrapAround
	// Periodic variables cycle through Period distinct values (§4.2);
	// Period == 2 is the paper's flip-flop.
	Periodic
	// Monotonic variables never decrease (Dir > 0) or never increase
	// (Dir < 0); Strict means every iteration changes the value (§4.4).
	Monotonic
)

var classNames = map[Class]string{
	Unknown:    "unknown",
	Invariant:  "invariant",
	Linear:     "linear",
	Polynomial: "polynomial",
	Geometric:  "geometric",
	WrapAround: "wrap-around",
	Periodic:   "periodic",
	Monotonic:  "monotonic",
}

// String returns the class name.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classification describes one SSA value's behaviour in one loop. The
// meaning of the fields depends on Kind; unset fields are zero.
type Classification struct {
	Kind Class
	Loop *loops.Loop

	// Invariant: Expr is the affine form over loop-external values, or
	// nil when the value is invariant but not affine.
	// Linear: value(h) = Init + Step·h, both affine Exprs (Step may be
	// symbolic, e.g. the outer loop's IV, as in the paper's L4).
	Init *Expr
	Step *Expr
	Expr *Expr

	// Polynomial: value(h) = Σ Coeffs[k]·h^k; Coeffs is nil when the
	// order is known but the rational coefficients are not (symbolic
	// initial values). Order is always set.
	// Geometric: value(h) = Σ Coeffs[k]·h^k + GeoCoeff·Base^h.
	Order    int
	Coeffs   []rational.Rat
	Base     int64
	GeoCoeff rational.Rat

	// WrapAround: the value equals Init for the first Order iterations
	// (Order ≥ 1), then follows Inner delayed by Order iterations:
	// value(h) = Inner(h-Order) for h ≥ Order.
	Inner *Classification

	// Periodic: Period ≥ 2; Phase distinguishes members of one family;
	// Initials lists the family's initial-value Exprs (for the
	// distinctness precondition in dependence testing, §4.2).
	Period   int
	Phase    int
	Initials []*Expr

	// Monotonic: Dir is +1 (non-decreasing) or -1 (non-increasing).
	Dir    int
	Strict bool

	// HeadPhi is the loop-header φ anchoring the family this value
	// belongs to (linear, polynomial, geometric, periodic, monotonic
	// families); nil for invariants and unknowns.
	HeadPhi *ir.Value

	// Rule records which classification rule produced this result, for
	// provenance reporting (see Explain). RuleNone means the rule is
	// derived from Kind alone.
	Rule Rule
	// Beta, for Polynomial/Geometric classes produced by the §4.3
	// cumulative-effect analysis, is the classification of the β term of
	// the recurrence X' = a·X + β — the feeding classification the
	// provenance chain reports. Nil otherwise.
	Beta *Classification
}

// IsIV reports whether the classification is some induction variable
// (linear, polynomial, or geometric) — the classes dependence testing
// can read coefficients from.
func (c *Classification) IsIV() bool {
	switch c.Kind {
	case Linear, Polynomial, Geometric:
		return true
	}
	return false
}

// LinearConst returns (init, step, true) when the value is a linear IV
// with constant rational init and step.
func (c *Classification) LinearConst() (init, step rational.Rat, ok bool) {
	if c.Kind != Linear {
		return rational.NaR, rational.NaR, false
	}
	i, ok1 := c.Init.ConstVal()
	s, ok2 := c.Step.ConstVal()
	if !ok1 || !ok2 {
		return rational.NaR, rational.NaR, false
	}
	return i, s, true
}

// String renders the classification in the paper's tuple style:
// linear "(L7, n1, c1 + k1)", polynomial "(L14, 4, 23/6, 1, 1/6)",
// geometric "(L14, base 2: -1, 0 | 2)", and descriptive forms for the
// other classes.
func (c *Classification) String() string {
	if c == nil {
		return "<nil>"
	}
	label := "?"
	if c.Loop != nil {
		label = c.Loop.Label
	}
	switch c.Kind {
	case Invariant:
		if c.Expr != nil {
			return fmt.Sprintf("invariant %s", c.Expr)
		}
		return "invariant"
	case Linear:
		return fmt.Sprintf("(%s, %s, %s)", label, c.Init, c.Step)
	case Polynomial:
		if c.Coeffs == nil {
			return fmt.Sprintf("polynomial(%s, order %d)", label, c.Order)
		}
		parts := make([]string, len(c.Coeffs))
		for i, r := range c.Coeffs {
			parts[i] = r.String()
		}
		return fmt.Sprintf("(%s, %s)", label, strings.Join(parts, ", "))
	case Geometric:
		if c.Coeffs == nil {
			return fmt.Sprintf("geometric(%s, base %d)", label, c.Base)
		}
		parts := make([]string, len(c.Coeffs))
		for i, r := range c.Coeffs {
			parts[i] = r.String()
		}
		poly := strings.Join(parts, ", ")
		if poly == "" {
			poly = "0"
		}
		return fmt.Sprintf("(%s, base %d: %s | %s)", label, c.Base, poly, c.GeoCoeff)
	case WrapAround:
		return fmt.Sprintf("wrap-around(%s, order %d, init %s, then %s)", label, c.Order, c.Init, c.Inner)
	case Periodic:
		return fmt.Sprintf("periodic(%s, period %d, phase %d)", label, c.Period, c.Phase)
	case Monotonic:
		dir := "increasing"
		if c.Dir < 0 {
			dir = "decreasing"
		}
		if c.Strict {
			return fmt.Sprintf("monotonic(%s, strictly %s)", label, dir)
		}
		return fmt.Sprintf("monotonic(%s, %s)", label, dir)
	default:
		return "unknown"
	}
}

// PolyEval evaluates the closed form at iteration h for classes with
// numeric closed forms (Linear with constant init/step, Polynomial and
// Geometric with coefficients).
func (c *Classification) PolyEval(h int64) (rational.Rat, bool) {
	switch c.Kind {
	case Linear:
		init, step, ok := c.LinearConst()
		if !ok {
			return rational.NaR, false
		}
		return init.Add(step.Mul(rational.FromInt(h))), true
	case Polynomial, Geometric, Periodic:
		// Periodic carries a base -1 closed form when the flip-flop was
		// numeric (§4.2).
		if c.Coeffs == nil {
			return rational.NaR, false
		}
		out := rational.FromInt(0)
		for k, coef := range c.Coeffs {
			out = out.Add(coef.Mul(rational.FromInt(h).Pow(k)))
		}
		if c.Kind == Geometric || c.Kind == Periodic {
			if h > 62 {
				return rational.NaR, false // base^h would overflow
			}
			out = out.Add(c.GeoCoeff.Mul(rational.FromInt(c.Base).Pow(int(h))))
		}
		if !out.Valid() {
			return rational.NaR, false
		}
		return out, true
	case Invariant:
		if v, ok := c.Expr.ConstVal(); ok {
			return v, true
		}
	}
	return rational.NaR, false
}
