package iv

import (
	"testing"

	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
)

func analyzeOpts(t *testing.T, src string, opts Options) *Analysis {
	t.Helper()
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	res := cfgbuild.Build(file)
	info := ssa.Build(res.Func)
	forest := loops.Analyze(res.Func, info.Dom)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)
	return AnalyzeWithOptions(info, forest, sccp.Run(info), opts)
}

const l14Src = `
j = 1
m = 0
L14: for i = 1 to n {
    j = j + i
    m = 3 * m + 2 * i + 1
}
`

// TestAblationClosedForms: without the §4.3 machinery, kinds and orders
// survive but coefficients disappear.
func TestAblationClosedForms(t *testing.T) {
	a := analyzeOpts(t, l14Src, Options{DisableClosedForms: true})
	l := a.LoopByLabel("L14")
	j2 := a.ClassOf(l, a.ValueByName("j2"))
	if j2.Kind != Polynomial || j2.Order != 2 {
		t.Fatalf("j2 = %s, want order-2 polynomial", j2)
	}
	if j2.Coeffs != nil {
		t.Error("coefficients should be ablated away")
	}
	m2 := a.ClassOf(l, a.ValueByName("m2"))
	if m2.Kind != Geometric || m2.Base != 3 || m2.Coeffs != nil {
		t.Errorf("m2 = %s, want coefficient-free geometric base 3", m2)
	}
	// Control: full analysis has them.
	full := analyzeOpts(t, l14Src, Options{})
	if full.ClassOf(full.LoopByLabel("L14"), full.ValueByName("j2")).Coeffs == nil {
		t.Error("full analysis lost its coefficients")
	}
}

const fig7Src = `
k = 0
L17: loop {
    i = 1
    L18: loop {
        k = k + 2
        if i > 100 { exit }
        i = i + 1
    }
    k = k + 2
    if k > 100000 { exit }
}
`

// TestAblationExitValues: without §5.3, the outer nested family
// disappears while the inner one survives.
func TestAblationExitValues(t *testing.T) {
	a := analyzeOpts(t, fig7Src, Options{DisableExitValues: true})
	inner := a.ClassOf(a.LoopByLabel("L18"), a.ValueByName("k3"))
	if inner.Kind != Linear {
		t.Errorf("inner k3 = %s, should survive the ablation", inner)
	}
	outer := a.ClassOf(a.LoopByLabel("L17"), a.ValueByName("k2"))
	if outer.Kind != Unknown {
		t.Errorf("outer k2 = %s, want unknown without exit values", outer)
	}
	full := analyzeOpts(t, fig7Src, Options{})
	if full.ClassOf(full.LoopByLabel("L17"), full.ValueByName("k2")).Kind != Linear {
		t.Error("full analysis should classify the outer family")
	}
}

// TestAblationNoSCCP: without constant propagation, closed forms with
// propagated starts degrade to symbolic.
func TestAblationNoSCCP(t *testing.T) {
	// The start flows through arithmetic, so only constant propagation
	// can prove it (a bare copy would be folded by leafExpr already).
	src := `
start = 1
j = start + 1
L1: for i = 1 to n {
    j = j + i
}
`
	file, err := parse.File(src)
	if err != nil {
		t.Fatal(err)
	}
	res := cfgbuild.Build(file)
	info := ssa.Build(res.Func)
	forest := loops.Analyze(res.Func, info.Dom)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)

	bare := Analyze(info, forest, nil) // no sccp
	l := bare.Forest.Loops[0]
	j2 := bare.ClassOf(l, bare.ValueByName("j2"))
	if j2.Kind != Polynomial || j2.Coeffs != nil {
		t.Errorf("without sccp j2 = %s, want coefficient-free polynomial", j2)
	}

	full := analyzeOpts(t, src, Options{})
	fj2 := full.ClassOf(full.LoopByLabel("L1"), full.ValueByName("j2"))
	if fj2.Coeffs == nil {
		t.Errorf("with sccp j2 = %s, want exact coefficients", fj2)
	}
}
