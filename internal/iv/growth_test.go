package iv

import (
	"testing"

	"beyondiv/internal/rational"
)

// TestMonotonicGrowth covers §4.4's multiplication extension: SCRs that
// mix adds and multiplies with a known nonnegative start are monotonic
// even when conditionals defeat the geometric path.
func TestMonotonicGrowth(t *testing.T) {
	// 2*i + i under a conditional: the paper's own example shape.
	a := analyze(t, `
i = 1
L1: for it = 1 to n {
    if a[it] > 0 {
        i = 2 * i + i
    }
}
`)
	i2 := classOf(t, a, "L1", "i2")
	if i2.Kind != Monotonic || i2.Dir != 1 {
		t.Errorf("i2 = %s, want monotonic increasing", i2)
	}
	if i2.Strict {
		t.Error("conditional growth must not be strict (the skip path repeats the value)")
	}

	// Unconditional mixed growth: strict since every pass multiplies by
	// 2 from a start ≥ 1... via the geometric path when pure; with a
	// conditional choosing between two growth rates it's monotonic.
	a = analyze(t, `
i = 1
L1: for it = 1 to n {
    if a[it] > 0 {
        i = 2 * i
    } else {
        i = 3 * i + 1
    }
}
`)
	i2 = classOf(t, a, "L1", "i2")
	if i2.Kind != Monotonic || i2.Dir != 1 || !i2.Strict {
		t.Errorf("i2 = %s, want strictly increasing", i2)
	}
}

// TestMonotonicGrowthNeedsKnownInit: without a known nonnegative start,
// multiplication can flip signs and nothing is classified.
func TestMonotonicGrowthNeedsKnownInit(t *testing.T) {
	a := analyze(t, `
i = n
L1: for it = 1 to m {
    if a[it] > 0 {
        i = 2 * i
    } else {
        i = 3 * i
    }
}
`)
	if c := classOf(t, a, "L1", "i2"); c.Kind != Unknown {
		t.Errorf("i2 = %s, want unknown for symbolic start (2·(-1) < -1)", c)
	}
}

// TestMonotonicGrowthMergedMembersUnknown: members behind merges of
// different multiplicative paths are not monotonic (x vs 3x interleave).
func TestMonotonicGrowthMergedMembersUnknown(t *testing.T) {
	a := analyze(t, `
i = 1
L1: for it = 1 to n {
    if a[it] > 0 {
        i = 2 * i
    } else {
        i = 3 * i + 1
    }
    b[i] = it
}
`)
	// The join φ (i4) feeds b[i]; its own sequence is monotone, but the
	// branch values (i2*2 vs 3*i2+1) are pure chains and stay monotonic.
	i2 := classOf(t, a, "L1", "i2")
	if i2.Kind != Monotonic {
		t.Fatalf("i2 = %s", i2)
	}
	// Pure-chain member: 2*i2.
	v := a.ValueByName("i3")
	if v != nil {
		if c := a.ClassOf(a.LoopByLabel("L1"), v); c.Kind != Monotonic {
			t.Errorf("i3 = %s, want monotonic (pure chain)", c)
		}
	}
}

// TestMonotonicGrowthProductOfMembers: i = i * i from 2 is monotonic
// (strictly), the paper's factorial-flavoured remark taken literally.
func TestMonotonicGrowthProductOfMembers(t *testing.T) {
	a := analyze(t, `
i = 2
L1: for it = 1 to n {
    if a[it] > 0 {
        i = i * i
    } else {
        i = i + 1
    }
}
`)
	i2 := classOf(t, a, "L1", "i2")
	if i2.Kind != Monotonic || i2.Dir != 1 || !i2.Strict {
		t.Errorf("i2 = %s, want strictly increasing", i2)
	}
	// From 1, squaring can stall at 1: not strict.
	a = analyze(t, `
i = 1
L1: for it = 1 to n {
    if a[it] > 0 {
        i = i * i
    } else {
        i = i + 1
    }
}
`)
	i2 = classOf(t, a, "L1", "i2")
	if i2.Kind != Monotonic || i2.Strict {
		t.Errorf("i2 = %s, want non-strict monotonic", i2)
	}
}

// TestGrowthSubtractionOfNonpositive: i - c with c ≤ 0 is growth.
func TestGrowthSubtractionOfNonpositive(t *testing.T) {
	a := analyze(t, `
i = 0
L1: for it = 1 to n {
    if a[it] > 0 {
        i = 2 * i - (0 - 3)
    }
}
`)
	i2 := classOf(t, a, "L1", "i2")
	if i2.Kind != Monotonic || i2.Dir != 1 {
		t.Errorf("i2 = %s, want monotonic increasing", i2)
	}
}

// TestExponentGeometric: x = 2 ** i as a geometric sequence via the
// operator algebra.
func TestExponentGeometric(t *testing.T) {
	a := analyze(t, `
L1: for i = 0 to n {
    x = 2 ** i
    a[x] = i
}
`)
	x1 := classOf(t, a, "L1", "x1")
	if x1.Kind != Geometric || x1.Base != 2 {
		t.Fatalf("x1 = %s, want geometric base 2", x1)
	}
	for h, want := range []int64{1, 2, 4, 8, 16} {
		v, ok := x1.PolyEval(int64(h))
		if !ok || !v.Equal(rational.FromInt(want)) {
			t.Errorf("x1(%d) = %s, want %d", h, v, want)
		}
	}

	// Stride-2 exponent: 3 ** (2h+1) = 3·9^h.
	a = analyze(t, `
L1: for i = 1 to n by 2 {
    y = 3 ** i
    a[y] = i
}
`)
	y1 := classOf(t, a, "L1", "y1")
	if y1.Kind != Geometric || y1.Base != 9 || !y1.GeoCoeff.Equal(rational.FromInt(3)) {
		t.Errorf("y1 = %s, want 3·9^h", y1)
	}

	// Step 0 exponent degenerates to an invariant.
	a = analyze(t, `
L1: for i = 1 to n {
    z = 2 ** 5
    a[z] = i
}
`)
	z1 := classOf(t, a, "L1", "z1")
	if z1.Kind != Invariant {
		t.Errorf("z1 = %s, want invariant", z1)
	}
}
