package iv

import (
	"slices"

	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
)

// LoopReport is the structured (JSON-friendly) form of one loop's
// classification results.
type LoopReport struct {
	Label     string        `json:"label"`
	Depth     int           `json:"depth"`
	TripCount string        `json:"tripCount"`
	MaxTrip   *int64        `json:"maxTrip,omitempty"`
	Values    []ValueReport `json:"values"`
}

// ValueReport is one classified SSA value.
type ValueReport struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// Tuple is the paper-style rendering, e.g. "(L7, n1, c1 + k1)".
	Tuple string `json:"tuple"`
	// Nested is the outer-to-inner substituted form when it differs
	// from Tuple (§5.3), e.g. "(L6, (L5, 3, 2), 1)".
	Nested string `json:"nested,omitempty"`
	// Order/Period/WrapOrder carry the class-specific scalar facts.
	Order     int    `json:"order,omitempty"`
	Period    int    `json:"period,omitempty"`
	Phase     *int   `json:"phase,omitempty"`
	WrapOrder int    `json:"wrapOrder,omitempty"`
	Direction string `json:"direction,omitempty"` // monotonic: "increasing"...
	Strict    bool   `json:"strict,omitempty"`
}

// ReportData builds the structured report, loops innermost first,
// values in SSA-name order.
func (a *Analysis) ReportData() []LoopReport {
	var out []LoopReport
	for _, l := range a.Forest.InnerToOuter() {
		lr := LoopReport{
			Label:     l.Label,
			Depth:     l.Depth,
			TripCount: a.TripCount(l).String(),
		}
		if tc := a.TripCount(l); tc != nil && tc.HasMax {
			m := tc.MaxConst
			lr.MaxTrip = &m
		}
		m := a.LoopClassifications(l)
		vals := make([]*ir.Value, 0, len(m))
		for v := range m {
			if v.Name != "" {
				vals = append(vals, v)
			}
		}
		slices.SortFunc(vals, ir.ByID)
		for _, v := range vals {
			c := m[v]
			vr := ValueReport{
				Name:  v.Name,
				Class: c.Kind.String(),
				Tuple: c.String(),
			}
			if nested := a.NestedString(c); nested != vr.Tuple {
				vr.Nested = nested
			}
			switch c.Kind {
			case Polynomial, Geometric:
				vr.Order = c.Order
			case Periodic:
				vr.Period = c.Period
				ph := c.Phase
				vr.Phase = &ph
			case WrapAround:
				vr.WrapOrder = c.Order
			case Monotonic:
				if c.Dir > 0 {
					vr.Direction = "increasing"
				} else {
					vr.Direction = "decreasing"
				}
				vr.Strict = c.Strict
			}
			lr.Values = append(lr.Values, vr)
		}
		out = append(out, lr)
	}
	return out
}

// Families groups loop l's classified values by the header φ anchoring
// their family (§3.1: "a family of basic linear induction variables"),
// keyed by the φ and listing members in SSA-name order. Values without
// an anchor (invariants, unknowns) are omitted.
func (a *Analysis) Families(l *loops.Loop) map[*ir.Value][]*ir.Value {
	out := map[*ir.Value][]*ir.Value{}
	for v, c := range a.LoopClassifications(l) {
		if c.HeadPhi == nil || v.Name == "" {
			continue
		}
		out[c.HeadPhi] = append(out[c.HeadPhi], v)
	}
	for _, members := range out {
		slices.SortFunc(members, ir.ByID)
	}
	return out
}
