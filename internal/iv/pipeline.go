package iv

import (
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
)

// AnalyzeProgram runs the full pipeline on mini-language source:
// parse → CFG → SSA → loop nest → constants → classification.
func AnalyzeProgram(src string) (*Analysis, error) {
	return AnalyzeProgramWith(src, Options{})
}

// AnalyzeProgramWith is AnalyzeProgram with classifier options; a
// non-nil opts.Obs records every stage's phase span and counters.
func AnalyzeProgramWith(src string, opts Options) (*Analysis, error) {
	rec := opts.Obs
	file, err := parse.FileWithObs(src, rec)
	if err != nil {
		return nil, err
	}
	res := cfgbuild.BuildWithObs(file, rec)
	info := ssa.BuildWithObs(res.Func, rec)
	forest := loops.AnalyzeWithObs(res.Func, info.Dom, rec)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)
	consts := sccp.RunWithObs(info, rec)
	return AnalyzeWithOptions(info, forest, consts, opts), nil
}

// ValueByName finds the SSA value with the given name ("i2"), or nil.
func (a *Analysis) ValueByName(name string) *ir.Value {
	for _, b := range a.SSA.Func.Blocks {
		for _, v := range b.Values {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

// LoopByLabel finds the loop labeled name ("L7"), or nil.
func (a *Analysis) LoopByLabel(label string) *loops.Loop {
	for _, l := range a.Forest.Loops {
		if l.Label == label {
			return l
		}
	}
	return nil
}
