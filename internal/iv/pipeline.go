package iv

import (
	"beyondiv/internal/cfgbuild"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/parse"
	"beyondiv/internal/sccp"
	"beyondiv/internal/ssa"
)

// AnalyzeProgram runs the full pipeline on mini-language source:
// parse → CFG → SSA → loop nest → constants → classification.
func AnalyzeProgram(src string) (*Analysis, error) {
	file, err := parse.File(src)
	if err != nil {
		return nil, err
	}
	res := cfgbuild.Build(file)
	info := ssa.Build(res.Func)
	forest := loops.Analyze(res.Func, info.Dom)
	labels := map[*ir.Block]string{}
	for _, li := range res.Loops {
		labels[li.Header] = li.Label
	}
	forest.AttachLabels(labels)
	consts := sccp.Run(info)
	return Analyze(info, forest, consts), nil
}

// ValueByName finds the SSA value with the given name ("i2"), or nil.
func (a *Analysis) ValueByName(name string) *ir.Value {
	for _, b := range a.SSA.Func.Blocks {
		for _, v := range b.Values {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

// LoopByLabel finds the loop labeled name ("L7"), or nil.
func (a *Analysis) LoopByLabel(label string) *loops.Loop {
	for _, l := range a.Forest.Loops {
		if l.Label == label {
			return l
		}
	}
	return nil
}
