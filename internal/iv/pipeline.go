package iv

import (
	"beyondiv/internal/engine"
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
)

// ArtifactKey is the engine State slot ClassifyPass fills; read it
// back with AnalysisOf.
const ArtifactKey = "iv"

// AnalyzeProgram runs the full pipeline on mini-language source:
// parse → CFG → SSA → loop nest → constants → classification.
func AnalyzeProgram(src string) (*Analysis, error) {
	return AnalyzeProgramWith(src, Options{})
}

// AnalyzeProgramWith is AnalyzeProgram with classifier options; a
// non-nil opts.Obs records every stage's phase span and counters.
//
// The pipeline executes on the analysis engine, so this entry point
// has the same safety contract as the beyondiv facade: every phase
// runs under opts.Limits (zero fields take the guard.Default
// ceilings) with panic containment, and any failure returns as a
// *engine.Error naming the phase — hostile input cannot hang or crash
// the caller here any more than it can through the facade.
func AnalyzeProgramWith(src string, opts Options) (*Analysis, error) {
	eng := engine.New(engine.Config{
		Passes:  Passes(opts),
		Obs:     opts.Obs,
		Metrics: opts.Metrics,
		Flight:  opts.Flight,
		Limits:  opts.Limits,
	})
	st, err := eng.Analyze(src)
	if err != nil {
		return nil, err
	}
	return AnalysisOf(st), nil
}

// Passes is the classification pipeline: the engine frontend plus the
// classifier pass.
func Passes(opts Options) []engine.Pass {
	return append(engine.Frontend(), ClassifyPass(opts))
}

// ClassifyPass contributes the induction-variable classification to an
// engine pipeline, storing the *Analysis under ArtifactKey. The pass
// rethreads the run's recorder, limits, and scratch arena, so batch
// workers and the facade configure telemetry, guards, and table reuse
// in exactly one place.
func ClassifyPass(opts Options) engine.Pass {
	return engine.Pass{Name: "iv", Run: func(st *engine.State) error {
		o := opts
		o.Obs = st.Obs()
		o.Limits = st.Lim()
		o.Scratch = st.Scratch()
		o.Workers = st.Par()
		o.Metrics = st.Metrics()
		st.Put(ArtifactKey, AnalyzeWithOptions(st.SSA, st.Forest, st.Consts, o))
		return nil
	}}
}

// AnalysisOf returns the classification a ClassifyPass stored in st,
// or nil when the pass has not run.
func AnalysisOf(st *engine.State) *Analysis {
	a, _ := st.Artifact(ArtifactKey).(*Analysis)
	return a
}

// ValueByName finds the SSA value with the given name ("i2"), or nil.
// Lookups hit an index built at analysis construction; values created
// by later transformations (e.g. strength reduction) fall back to a
// scan.
func (a *Analysis) ValueByName(name string) *ir.Value {
	if v, ok := a.byName[name]; ok {
		return v
	}
	for _, b := range a.SSA.Func.Blocks {
		for _, v := range b.Values {
			if v.Name == name {
				return v
			}
		}
	}
	return nil
}

// LoopByLabel finds the loop labeled name ("L7"), or nil.
func (a *Analysis) LoopByLabel(label string) *loops.Loop {
	return a.byLabel[label]
}
