// Regression tests for the AnalyzeProgramWith safety contract. Before
// the engine refactor this entry point ran the phases unguarded — no
// limit normalization, no panic containment — so a hostile input that
// the beyondiv facade would reject could crash or hang a caller who
// came in through iv directly. These tests pin the fixed behavior:
// every phase fails closed through this path exactly as it does
// through the facade.
package iv

import (
	"errors"
	"strings"
	"testing"

	"beyondiv/internal/engine"
	"beyondiv/internal/guard"
)

const pipelineSrc = `
j = 0
L1: for i = 1 to 10 {
    j = j + i
    a[j] = a[j - 1]
}
L2: for k = 1 to 5 {
    b[k] = b[k] + 1
}
`

// pipelinePhases is every guarded phase AnalyzeProgramWith runs.
var pipelinePhases = []string{"scan", "parse", "cfgbuild", "ssa", "loops", "sccp", "iv"}

// TestAnalyzeProgramWithContainsInjectedPanics: a panic injected via
// guard.Inject into any phase comes back as a structured *engine.Error
// naming the phase and carrying the containment stack — never as an
// uncontained panic.
func TestAnalyzeProgramWithContainsInjectedPanics(t *testing.T) {
	for _, phase := range pipelinePhases {
		t.Run(phase, func(t *testing.T) {
			_, err := AnalyzeProgramWith(pipelineSrc, Options{
				Limits: guard.Limits{Inject: guard.PanicIn(phase)},
			})
			var e *engine.Error
			if !errors.As(err, &e) {
				t.Fatalf("err = %v (%T), want *engine.Error", err, err)
			}
			if e.Phase != phase {
				t.Errorf("fault attributed to phase %q, want %q", e.Phase, phase)
			}
			if len(e.Stack) == 0 {
				t.Error("contained panic lost its stack")
			}
			var f *guard.Fault
			if !errors.As(err, &f) {
				t.Errorf("error chain lost the injected fault: %v", err)
			}
		})
	}
}

// TestAnalyzeProgramWithReportsInjectedLimits: a simulated
// resource-ceiling hit in any phase surfaces as a *guard.LimitError
// inside a phase-attributed *engine.Error, without a panic stack (a
// limit hit is the guard working, not a bug).
func TestAnalyzeProgramWithReportsInjectedLimits(t *testing.T) {
	for _, phase := range pipelinePhases {
		t.Run(phase, func(t *testing.T) {
			_, err := AnalyzeProgramWith(pipelineSrc, Options{
				Limits: guard.Limits{Inject: guard.LimitIn(phase)},
			})
			var e *engine.Error
			if !errors.As(err, &e) || e.Phase != phase {
				t.Fatalf("err = %v, want *engine.Error in phase %q", err, phase)
			}
			var le *guard.LimitError
			if !errors.As(err, &le) || le.Phase != phase {
				t.Errorf("error chain lost the limit error: %v", err)
			}
			if e.Stack != nil {
				t.Error("limit hit carries a containment stack; it should not")
			}
		})
	}
}

// TestAnalyzeProgramWithDefaultCeilings: zero-valued Options enforce
// the guard.Default ceilings — the exact gap the engine refactor
// closed. Deeply nested parentheses must be rejected, not recursed
// into.
func TestAnalyzeProgramWithDefaultCeilings(t *testing.T) {
	hostile := "j = " + strings.Repeat("(", 100_000) + "1" + strings.Repeat(")", 100_000) + "\n"
	_, err := AnalyzeProgramWith(hostile, Options{})
	var le *guard.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("hostile input error = %v, want a limit hit under default ceilings", err)
	}
	if le.Resource != "nesting depth" {
		t.Errorf("limit resource = %q, want nesting depth", le.Resource)
	}
}

// TestAnalyzeProgramWithCustomLimit: an explicit caller ceiling is
// honored on this path.
func TestAnalyzeProgramWithCustomLimit(t *testing.T) {
	_, err := AnalyzeProgramWith(pipelineSrc, Options{Limits: guard.Limits{MaxSourceBytes: 8}})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Resource != "source bytes" {
		t.Fatalf("err = %v, want source bytes limit", err)
	}
}

// TestValueByNameIndex: the construction-time index answers name
// lookups for every value in the function, agreeing with a full scan,
// and misses return nil.
func TestValueByNameIndex(t *testing.T) {
	a, err := AnalyzeProgram(pipelineSrc)
	if err != nil {
		t.Fatal(err)
	}
	names := 0
	for _, b := range a.SSA.Func.Blocks {
		for _, v := range b.Values {
			if v.Name == "" {
				continue
			}
			names++
			if got := a.ValueByName(v.Name); got == nil {
				t.Errorf("ValueByName(%q) = nil", v.Name)
			} else if got.Name != v.Name {
				t.Errorf("ValueByName(%q) returned %q", v.Name, got.Name)
			}
		}
	}
	if names == 0 {
		t.Fatal("program produced no named values")
	}
	if a.ValueByName("no_such_value") != nil {
		t.Error("lookup of an unknown name is non-nil")
	}
}

// TestLoopByLabelIndex: labeled loops resolve through the index; an
// unknown label is nil.
func TestLoopByLabelIndex(t *testing.T) {
	a, err := AnalyzeProgram(pipelineSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"L1", "L2"} {
		l := a.LoopByLabel(label)
		if l == nil {
			t.Fatalf("LoopByLabel(%q) = nil", label)
		}
		if l.Label != label {
			t.Errorf("LoopByLabel(%q) returned loop %q", label, l.Label)
		}
	}
	if a.LoopByLabel("L99") != nil {
		t.Error("unknown label resolved to a loop")
	}
}
