package iv

import (
	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
	"beyondiv/internal/safemath"
)

// This file implements the "algebra of types and operators" of §5.1:
// how classifications combine under the IR's operators. It is used both
// for trivial SSA-graph nodes (non-cyclic values) and for evaluating the
// cumulative effect of a strongly connected region.

func unknown() *Classification { return &Classification{Kind: Unknown} }

func invariant(l *loops.Loop, e *Expr) *Classification {
	return &Classification{Kind: Invariant, Loop: l, Expr: e}
}

// numPoly views a classification as a numeric polynomial coefficient
// vector over h (index k = coefficient of h^k), when possible.
func numPoly(c *Classification) ([]rational.Rat, bool) {
	switch c.Kind {
	case Invariant:
		if v, ok := c.Expr.ConstVal(); ok {
			return []rational.Rat{v}, true
		}
	case Linear:
		if i, s, ok := c.LinearConst(); ok {
			return []rational.Rat{i, s}, true
		}
	case Polynomial:
		if c.Coeffs != nil {
			return c.Coeffs, true
		}
	}
	return nil, false
}

// canonPoly builds the canonical classification for a numeric polynomial
// coefficient vector: invariant for degree 0, linear for degree 1, and
// Polynomial above.
func canonPoly(l *loops.Loop, coeffs []rational.Rat) *Classification {
	// Trim trailing zeros.
	n := len(coeffs)
	for n > 0 && coeffs[n-1].IsZero() {
		n--
	}
	coeffs = coeffs[:n]
	switch n {
	case 0:
		return invariant(l, IntExpr(0))
	case 1:
		return invariant(l, ConstExpr(coeffs[0]))
	case 2:
		return &Classification{Kind: Linear, Loop: l, Init: ConstExpr(coeffs[0]), Step: ConstExpr(coeffs[1])}
	default:
		cp := append([]rational.Rat(nil), coeffs...)
		return &Classification{Kind: Polynomial, Loop: l, Order: n - 1, Coeffs: cp}
	}
}

func addPolyVec(a, b []rational.Rat) []rational.Rat {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]rational.Rat, n)
	zero := rational.FromInt(0)
	for i := range out {
		x, y := zero, zero
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = x.Add(y)
	}
	return out
}

func mulPolyVec(a, b []rational.Rat) []rational.Rat {
	out := make([]rational.Rat, len(a)+len(b)-1)
	zero := rational.FromInt(0)
	for i := range out {
		out[i] = zero
	}
	for i, x := range a {
		for j, y := range b {
			out[i+j] = out[i+j].Add(x.Mul(y))
		}
	}
	return out
}

func polyVecValid(a []rational.Rat) bool {
	for _, r := range a {
		if !r.Valid() {
			return false
		}
	}
	return true
}

// addCls implements classification addition.
func addCls(l *loops.Loop, x, y *Classification) *Classification {
	if x.Kind == Unknown || y.Kind == Unknown {
		return unknown()
	}
	// Numeric closed forms add exactly.
	if px, okx := numPoly(x); okx {
		if py, oky := numPoly(y); oky {
			sum := addPolyVec(px, py)
			if polyVecValid(sum) {
				return canonPoly(l, sum)
			}
			return unknown()
		}
	}
	// Geometric + polynomial-like (numeric).
	if x.Kind == Geometric || y.Kind == Geometric {
		return addGeometric(l, x, y)
	}
	switch {
	case x.Kind == Invariant && y.Kind == Invariant:
		return invariant(l, AddExpr(x.Expr, y.Expr))
	case x.Kind == Linear && y.Kind == Invariant:
		return &Classification{Kind: Linear, Loop: l, Init: AddExpr(x.Init, y.Expr), Step: x.Step}
	case x.Kind == Invariant && y.Kind == Linear:
		return addCls(l, y, x)
	case x.Kind == Linear && y.Kind == Linear:
		init, step := AddExpr(x.Init, y.Init), AddExpr(x.Step, y.Step)
		if init == nil || step == nil {
			return unknown()
		}
		return &Classification{Kind: Linear, Loop: l, Init: init, Step: step}
	case x.Kind == Polynomial && (y.Kind == Invariant || y.Kind == Linear || y.Kind == Polynomial):
		ord := x.Order
		if y.Kind == Polynomial && y.Order > ord {
			ord = y.Order
		}
		return &Classification{Kind: Polynomial, Loop: l, Order: ord}
	case y.Kind == Polynomial:
		return addCls(l, y, x)
	case x.Kind == WrapAround && y.Kind == Invariant:
		inner := addCls(l, x.Inner, y)
		if inner.Kind == Unknown {
			return unknown()
		}
		return &Classification{Kind: WrapAround, Loop: l, Order: x.Order, Init: AddExpr(x.Init, y.Expr), Inner: inner}
	case x.Kind == Invariant && y.Kind == WrapAround:
		return addCls(l, y, x)
	case x.Kind == Monotonic && y.Kind == Invariant:
		return &Classification{Kind: Monotonic, Loop: l, Dir: x.Dir, Strict: x.Strict, HeadPhi: x.HeadPhi}
	case x.Kind == Invariant && y.Kind == Monotonic:
		return addCls(l, y, x)
	case x.Kind == Monotonic && y.Kind == Monotonic && x.Dir == y.Dir:
		return &Classification{Kind: Monotonic, Loop: l, Dir: x.Dir, Strict: x.Strict || y.Strict}
	case x.Kind == Monotonic && y.Kind == Linear:
		// monotonic + IV stays monotonic when the IV moves the same way.
		if s, ok := y.Step.ConstVal(); ok {
			if s.IsZero() {
				return &Classification{Kind: Monotonic, Loop: l, Dir: x.Dir, Strict: x.Strict, HeadPhi: x.HeadPhi}
			}
			if (s.Sign() > 0) == (x.Dir > 0) {
				return &Classification{Kind: Monotonic, Loop: l, Dir: x.Dir, Strict: true, HeadPhi: x.HeadPhi}
			}
		}
		return unknown()
	case x.Kind == Linear && y.Kind == Monotonic:
		return addCls(l, y, x)
	case x.Kind == Periodic && y.Kind == Invariant:
		out := &Classification{Kind: Periodic, Loop: l, Period: x.Period, Phase: x.Phase, HeadPhi: x.HeadPhi}
		for _, in := range x.Initials {
			out.Initials = append(out.Initials, AddExpr(in, y.Expr))
		}
		return out
	case x.Kind == Invariant && y.Kind == Periodic:
		return addCls(l, y, x)
	}
	return unknown()
}

// addGeometric adds when at least one side is a numeric geometric form.
func addGeometric(l *loops.Loop, x, y *Classification) *Classification {
	gx, gy := x, y
	if gx.Kind != Geometric {
		gx, gy = gy, gx
	}
	if gx.Coeffs == nil {
		// Order-only geometric: class is preserved by adding
		// polynomial-like values.
		if gy.Kind == Invariant || gy.Kind == Linear || gy.Kind == Polynomial ||
			(gy.Kind == Geometric && gy.Base == gx.Base) {
			return &Classification{Kind: Geometric, Loop: l, Base: gx.Base}
		}
		return unknown()
	}
	if gy.Kind == Geometric {
		if gy.Base != gx.Base || gy.Coeffs == nil {
			return unknown()
		}
		sum := addPolyVec(gx.Coeffs, gy.Coeffs)
		gc := gx.GeoCoeff.Add(gy.GeoCoeff)
		if !polyVecValid(sum) || !gc.Valid() {
			return unknown()
		}
		if gc.IsZero() {
			return canonPoly(l, sum)
		}
		return &Classification{Kind: Geometric, Loop: l, Base: gx.Base, Coeffs: sum, GeoCoeff: gc}
	}
	py, ok := numPoly(gy)
	if !ok {
		return unknown()
	}
	sum := addPolyVec(gx.Coeffs, py)
	if !polyVecValid(sum) {
		return unknown()
	}
	return &Classification{Kind: Geometric, Loop: l, Base: gx.Base, Coeffs: sum, GeoCoeff: gx.GeoCoeff}
}

// negCls negates a classification.
func negCls(l *loops.Loop, x *Classification) *Classification {
	minusOne := rational.FromInt(-1)
	switch x.Kind {
	case Invariant:
		return invariant(l, ScaleExpr(x.Expr, minusOne))
	case Linear:
		init, step := ScaleExpr(x.Init, minusOne), ScaleExpr(x.Step, minusOne)
		if init == nil || step == nil {
			return unknown()
		}
		return &Classification{Kind: Linear, Loop: l, Init: init, Step: step}
	case Polynomial:
		out := &Classification{Kind: Polynomial, Loop: l, Order: x.Order}
		if x.Coeffs != nil {
			out.Coeffs = make([]rational.Rat, len(x.Coeffs))
			for i, c := range x.Coeffs {
				out.Coeffs[i] = c.Neg()
			}
		}
		return out
	case Geometric:
		out := &Classification{Kind: Geometric, Loop: l, Base: x.Base}
		if x.Coeffs != nil {
			out.Coeffs = make([]rational.Rat, len(x.Coeffs))
			for i, c := range x.Coeffs {
				out.Coeffs[i] = c.Neg()
			}
			out.GeoCoeff = x.GeoCoeff.Neg()
		}
		return out
	case Monotonic:
		return &Classification{Kind: Monotonic, Loop: l, Dir: -x.Dir, Strict: x.Strict, HeadPhi: x.HeadPhi}
	case WrapAround:
		inner := negCls(l, x.Inner)
		if inner.Kind == Unknown {
			return unknown()
		}
		return &Classification{Kind: WrapAround, Loop: l, Order: x.Order, Init: ScaleExpr(x.Init, minusOne), Inner: inner}
	case Periodic:
		out := &Classification{Kind: Periodic, Loop: l, Period: x.Period, Phase: x.Phase, HeadPhi: x.HeadPhi}
		for _, in := range x.Initials {
			out.Initials = append(out.Initials, ScaleExpr(in, minusOne))
		}
		return out
	}
	return unknown()
}

// subCls implements x - y.
func subCls(l *loops.Loop, x, y *Classification) *Classification {
	return addCls(l, x, negCls(l, y))
}

// mulCls implements multiplication.
func mulCls(l *loops.Loop, x, y *Classification) *Classification {
	if x.Kind == Unknown || y.Kind == Unknown {
		return unknown()
	}
	// Exact polynomial product when both sides are numeric.
	if px, okx := numPoly(x); okx {
		if py, oky := numPoly(y); oky {
			prod := mulPolyVec(px, py)
			if polyVecValid(prod) {
				return canonPoly(l, prod)
			}
			return unknown()
		}
	}
	// Constant scaling.
	if c, ok := constOf(x); ok {
		return scaleCls(l, y, c)
	}
	if c, ok := constOf(y); ok {
		return scaleCls(l, x, c)
	}
	if x.Kind == Invariant && y.Kind == Invariant {
		return invariant(l, MulExpr(x.Expr, y.Expr)) // nil Expr when not affine
	}
	return unknown()
}

func constOf(x *Classification) (rational.Rat, bool) {
	if x.Kind != Invariant {
		return rational.NaR, false
	}
	return x.Expr.ConstVal()
}

// scaleCls multiplies a classification by a rational constant.
func scaleCls(l *loops.Loop, x *Classification, c rational.Rat) *Classification {
	if c.IsZero() {
		return invariant(l, IntExpr(0))
	}
	if c.Equal(rational.FromInt(1)) {
		return x
	}
	switch x.Kind {
	case Invariant:
		return invariant(l, ScaleExpr(x.Expr, c))
	case Linear:
		init, step := ScaleExpr(x.Init, c), ScaleExpr(x.Step, c)
		if init == nil || step == nil {
			return unknown()
		}
		return &Classification{Kind: Linear, Loop: l, Init: init, Step: step}
	case Polynomial:
		out := &Classification{Kind: Polynomial, Loop: l, Order: x.Order}
		if x.Coeffs != nil {
			out.Coeffs = make([]rational.Rat, len(x.Coeffs))
			for i, k := range x.Coeffs {
				out.Coeffs[i] = k.Mul(c)
			}
		}
		return out
	case Geometric:
		out := &Classification{Kind: Geometric, Loop: l, Base: x.Base}
		if x.Coeffs != nil {
			out.Coeffs = make([]rational.Rat, len(x.Coeffs))
			for i, k := range x.Coeffs {
				out.Coeffs[i] = k.Mul(c)
			}
			out.GeoCoeff = x.GeoCoeff.Mul(c)
		}
		return out
	case Monotonic:
		dir := x.Dir
		if c.Sign() < 0 {
			dir = -dir
		}
		return &Classification{Kind: Monotonic, Loop: l, Dir: dir, Strict: x.Strict, HeadPhi: x.HeadPhi}
	case Periodic:
		out := &Classification{Kind: Periodic, Loop: l, Period: x.Period, Phase: x.Phase, HeadPhi: x.HeadPhi}
		for _, in := range x.Initials {
			out.Initials = append(out.Initials, ScaleExpr(in, c))
		}
		return out
	}
	return unknown()
}

// divCls implements truncated integer division: only constant folding
// and invariant/invariant are safe (dividing an IV truncates
// differently at each iteration).
func divCls(l *loops.Loop, x, y *Classification) *Classification {
	cx, okx := constOf(x)
	cy, oky := constOf(y)
	if okx && oky {
		xi, ok1 := cx.Int()
		yi, ok2 := cy.Int()
		if ok1 && ok2 {
			if yi == 0 {
				return invariant(l, IntExpr(0))
			}
			if xi == safemath.MinInt64 && yi == -1 {
				return invariant(l, nil) // the one quotient that overflows
			}
			return invariant(l, IntExpr(xi/yi))
		}
	}
	if x.Kind == Invariant && y.Kind == Invariant {
		return invariant(l, nil)
	}
	return unknown()
}

// expCls implements exponentiation: constant folding,
// invariant-to-invariant, and the geometric case b ** iv — e.g.
// x = 2 ** i with i = (L, i0, s) is the geometric sequence
// 2^i0 · (2^s)^h.
func expCls(l *loops.Loop, x, y *Classification) *Classification {
	cx, okx := constOf(x)
	cy, oky := constOf(y)
	if okx && oky {
		xi, ok1 := cx.Int()
		yi, ok2 := cy.Int()
		if ok1 && ok2 {
			if yi < 0 {
				return invariant(l, IntExpr(0))
			}
			// Overflow-checked: an exact power that does not fit in
			// int64 (or a hostile 9e18 exponent) degrades to an
			// anonymous invariant rather than folding a wrapped value
			// into the classification.
			if out, ok := safemath.Pow(xi, yi); ok {
				return invariant(l, IntExpr(out))
			}
			return invariant(l, nil)
		}
	}
	if okx && y.Kind == Linear {
		if base, isInt := cx.Int(); isInt && base >= 1 {
			if i0, s, ok := y.LinearConst(); ok {
				i0v, okI := i0.Int()
				sv, okS := s.Int()
				// Keep the exponents in safe integer territory.
				if okI && okS && i0v >= 0 && i0v <= 40 && sv >= 0 && sv <= 40 {
					newBase := rational.FromInt(base).Pow(int(sv))
					coeff := rational.FromInt(base).Pow(int(i0v))
					nb, okB := newBase.Int()
					if okB && coeff.Valid() {
						if nb == 1 {
							return invariant(l, ConstExpr(coeff))
						}
						return &Classification{
							Kind: Geometric, Loop: l, Base: nb,
							Coeffs: []rational.Rat{rational.FromInt(0)}, GeoCoeff: coeff,
						}
					}
				}
			}
		}
	}
	if x.Kind == Invariant && y.Kind == Invariant {
		return invariant(l, nil)
	}
	return unknown()
}

// combine dispatches a binary operator over two classifications.
func combine(l *loops.Loop, op ir.Op, x, y *Classification) *Classification {
	switch op {
	case ir.OpAdd:
		return addCls(l, x, y)
	case ir.OpSub:
		return subCls(l, x, y)
	case ir.OpMul:
		return mulCls(l, x, y)
	case ir.OpDiv:
		return divCls(l, x, y)
	case ir.OpExp:
		return expCls(l, x, y)
	case ir.OpLess, ir.OpLeq, ir.OpGreater, ir.OpGeq, ir.OpEq, ir.OpNeq:
		if x.Kind == Invariant && y.Kind == Invariant {
			return invariant(l, nil)
		}
		return unknown()
	}
	return unknown()
}

// sameClassification reports whether two classifications are
// interchangeable (used when merging at non-header φs).
func sameClassification(x, y *Classification) bool {
	if x.Kind != y.Kind {
		return false
	}
	switch x.Kind {
	case Invariant:
		return x.Expr != nil && x.Expr.Equal(y.Expr)
	case Linear:
		return x.Init.Equal(y.Init) && x.Step.Equal(y.Step)
	default:
		return false
	}
}

// boundsOf returns known constant lower and upper bounds of a
// classification's value over all iterations h ≥ 0; hasLo/hasHi report
// whether each bound exists. Used by the monotonic SCR rules to bound
// conditional increments (paper §4.4).
func boundsOf(c *Classification) (lo, hi rational.Rat, hasLo, hasHi bool) {
	switch c.Kind {
	case Invariant:
		if v, ok := c.Expr.ConstVal(); ok {
			return v, v, true, true
		}
	case Linear:
		init, step, ok := c.LinearConst()
		if !ok {
			return lo, hi, false, false
		}
		switch step.Sign() {
		case 0:
			return init, init, true, true
		case 1:
			return init, rational.NaR, true, false
		default:
			return rational.NaR, init, false, true
		}
	}
	return lo, hi, false, false
}
