package iv

import (
	"testing"
	"testing/quick"

	"beyondiv/internal/ir"
	"beyondiv/internal/rational"
)

func mkVals(n int) []*ir.Value {
	f := ir.NewFunc()
	b := f.NewBlock(ir.BlockPlain)
	out := make([]*ir.Value, n)
	for i := range out {
		v := f.NewValue(b, ir.OpParam)
		v.Name = string(rune('a'+i)) + "1"
		out[i] = v
	}
	return out
}

func TestExprBasics(t *testing.T) {
	vs := mkVals(2)
	x, y := vs[0], vs[1]

	e := AddExpr(VarExpr(x), IntExpr(3))
	if e.String() != "3 + a1" {
		t.Errorf("e = %s", e)
	}
	e2 := AddExpr(e, ScaleExpr(VarExpr(y), rational.New(1, 2)))
	if e2.String() != "3 + a1 + 1/2*b1" {
		t.Errorf("e2 = %s", e2)
	}
	if d := SubExpr(e2, e2); !d.IsZero() {
		t.Errorf("x - x = %s", d)
	}
	if SubExpr(e2, VarExpr(x)).String() != "3 + 1/2*b1" {
		t.Errorf("cancel = %s", SubExpr(e2, VarExpr(x)))
	}
}

func TestExprConstAccessors(t *testing.T) {
	if v, ok := IntExpr(7).ConstVal(); !ok || !v.Equal(rational.FromInt(7)) {
		t.Error("ConstVal on IntExpr")
	}
	vs := mkVals(1)
	if _, ok := VarExpr(vs[0]).ConstVal(); ok {
		t.Error("VarExpr is not constant")
	}
	if v, ok := VarExpr(vs[0]).SingleTerm(); !ok || v != vs[0] {
		t.Error("SingleTerm")
	}
	if _, ok := AddExpr(VarExpr(vs[0]), IntExpr(1)).SingleTerm(); ok {
		t.Error("with a constant it is no longer a single term")
	}
}

func TestExprMul(t *testing.T) {
	vs := mkVals(2)
	x, y := VarExpr(vs[0]), VarExpr(vs[1])
	if MulExpr(x, y) != nil {
		t.Error("var*var must not be affine")
	}
	if MulExpr(x, IntExpr(3)).String() != "3*a1" {
		t.Errorf("scale = %s", MulExpr(x, IntExpr(3)))
	}
	if MulExpr(IntExpr(0), x).String() != "0" {
		t.Errorf("zero = %s", MulExpr(IntExpr(0), x))
	}
}

func TestExprNilPropagation(t *testing.T) {
	vs := mkVals(1)
	x := VarExpr(vs[0])
	for i, e := range []*Expr{
		AddExpr(nil, x), AddExpr(x, nil), SubExpr(nil, x),
		ScaleExpr(nil, rational.FromInt(2)), MulExpr(nil, x),
		ScaleExpr(x, rational.NaR),
	} {
		if e != nil {
			t.Errorf("case %d: nil did not propagate: %s", i, e)
		}
	}
	var nilExpr *Expr
	if nilExpr.String() != "?" {
		t.Error("nil rendering")
	}
	if !nilExpr.Equal(nil) || nilExpr.Equal(x) {
		t.Error("nil equality")
	}
}

func TestExprEval(t *testing.T) {
	vs := mkVals(2)
	e := AddExpr(AddExpr(ScaleExpr(VarExpr(vs[0]), rational.FromInt(3)), VarExpr(vs[1])), IntExpr(5))
	env := map[*ir.Value]int64{vs[0]: 10, vs[1]: -2}
	got, ok := e.Eval(func(v *ir.Value) (int64, bool) { x, ok := env[v]; return x, ok })
	if !ok || !got.Equal(rational.FromInt(33)) {
		t.Errorf("eval = %s (%v)", got, ok)
	}
	if _, ok := e.Eval(func(*ir.Value) (int64, bool) { return 0, false }); ok {
		t.Error("eval with missing atoms must fail")
	}
}

// TestQuickExprLinearity: evaluation commutes with the algebra.
func TestQuickExprLinearity(t *testing.T) {
	vs := mkVals(3)
	env := func(a, b, c int64) func(*ir.Value) (int64, bool) {
		m := map[*ir.Value]int64{vs[0]: a, vs[1]: b, vs[2]: c}
		return func(v *ir.Value) (int64, bool) { x, ok := m[v]; return x, ok }
	}
	mk := func(c0, c1, c2, c3 int8) *Expr {
		e := IntExpr(int64(c0))
		e = AddExpr(e, ScaleExpr(VarExpr(vs[0]), rational.FromInt(int64(c1))))
		e = AddExpr(e, ScaleExpr(VarExpr(vs[1]), rational.FromInt(int64(c2))))
		e = AddExpr(e, ScaleExpr(VarExpr(vs[2]), rational.FromInt(int64(c3))))
		return e
	}
	prop := func(c0, c1, c2, c3, d0, d1, d2, d3 int8, a, b, c int8) bool {
		e1, e2 := mk(c0, c1, c2, c3), mk(d0, d1, d2, d3)
		get := env(int64(a), int64(b), int64(c))
		v1, ok1 := e1.Eval(get)
		v2, ok2 := e2.Eval(get)
		if !ok1 || !ok2 {
			return false
		}
		sum, ok3 := AddExpr(e1, e2).Eval(get)
		if !ok3 || !sum.Equal(v1.Add(v2)) {
			return false
		}
		diff, ok4 := SubExpr(e1, e2).Eval(get)
		if !ok4 || !diff.Equal(v1.Sub(v2)) {
			return false
		}
		scaled, ok5 := ScaleExpr(e1, rational.FromInt(3)).Eval(get)
		return ok5 && scaled.Equal(v1.Mul(rational.FromInt(3)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExprStringDeterministic(t *testing.T) {
	vs := mkVals(3)
	e := AddExpr(AddExpr(VarExpr(vs[2]), VarExpr(vs[0])), ScaleExpr(VarExpr(vs[1]), rational.FromInt(-1)))
	// Sorted by value ID regardless of construction order.
	if e.String() != "a1 - b1 + c1" {
		t.Errorf("rendering = %q", e.String())
	}
}
