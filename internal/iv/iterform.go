package iv

import (
	"fmt"
	"slices"
	"strings"

	"beyondiv/internal/ir"
	"beyondiv/internal/loops"
	"beyondiv/internal/rational"
)

// IterForm is a value expressed over the iteration space of a loop nest:
//
//	Const + Σ Coeffs[L]·h_L + Σ Syms[v]·v
//
// where h_L is loop L's 0-based iteration number and the Syms are
// loop-independent symbols (program parameters). This is the "linear
// combination of induction variables in the enclosing loops" that
// dependence testing consumes (§6); the paper's remark that the
// representation implicitly normalizes every loop (§6.1) is visible
// here — h_L always starts at 0 with step 1, whatever the source loop
// bounds were.
type IterForm struct {
	Const  rational.Rat
	Coeffs map[*loops.Loop]rational.Rat
	Syms   map[*ir.Value]rational.Rat
	// Per carries periodic contributions (§4.2 selectors mixed into an
	// otherwise affine subscript, like plane[cur*64 + i]): each term is
	// Coeff · ring[(Phase - h_Loop) mod Period].
	Per []PerTerm
}

// PerTerm is one periodic contribution to an IterForm.
type PerTerm struct {
	Cls   *Classification // Periodic classification (carries ring/phase/loop)
	Coeff rational.Rat
}

func newIterForm() *IterForm {
	return &IterForm{
		Const:  rational.FromInt(0),
		Coeffs: map[*loops.Loop]rational.Rat{},
		Syms:   map[*ir.Value]rational.Rat{},
	}
}

// add accumulates k·f into g.
func (g *IterForm) add(f *IterForm, k rational.Rat) *IterForm {
	if g == nil || f == nil {
		return nil
	}
	g.Const = g.Const.Add(f.Const.Mul(k))
	for l, c := range f.Coeffs {
		if cur, ok := g.Coeffs[l]; ok {
			g.Coeffs[l] = cur.Add(c.Mul(k))
		} else {
			g.Coeffs[l] = c.Mul(k)
		}
	}
	for v, c := range f.Syms {
		if cur, ok := g.Syms[v]; ok {
			g.Syms[v] = cur.Add(c.Mul(k))
		} else {
			g.Syms[v] = c.Mul(k)
		}
	}
	for _, p := range f.Per {
		g.Per = append(g.Per, PerTerm{Cls: p.Cls, Coeff: p.Coeff.Mul(k)})
	}
	return g.normalize()
}

func (g *IterForm) normalize() *IterForm {
	if !g.Const.Valid() {
		return nil
	}
	for l, c := range g.Coeffs {
		if !c.Valid() {
			return nil
		}
		if c.IsZero() {
			delete(g.Coeffs, l)
		}
	}
	for v, c := range g.Syms {
		if !c.Valid() {
			return nil
		}
		if c.IsZero() {
			delete(g.Syms, v)
		}
	}
	per := g.Per[:0]
	for _, p := range g.Per {
		if !p.Coeff.Valid() {
			return nil
		}
		if !p.Coeff.IsZero() {
			per = append(per, p)
		}
	}
	g.Per = per
	return g
}

// Coeff returns the coefficient of loop l (zero when absent).
func (g *IterForm) Coeff(l *loops.Loop) rational.Rat {
	if c, ok := g.Coeffs[l]; ok {
		return c
	}
	return rational.FromInt(0)
}

// HasSyms reports whether symbolic (non-iteration) terms remain.
func (g *IterForm) HasSyms() bool { return len(g.Syms) > 0 }

// Loops returns the loops with nonzero coefficients, outermost first.
func (g *IterForm) Loops() []*loops.Loop {
	out := make([]*loops.Loop, 0, len(g.Coeffs))
	for l := range g.Coeffs {
		out = append(out, l)
	}
	slices.SortFunc(out, func(a, b *loops.Loop) int {
		if a.Depth != b.Depth {
			return a.Depth - b.Depth
		}
		return a.Header.ID - b.Header.ID
	})
	return out
}

// String renders e.g. "3 + 2*h(L5) + h(L6) + n1".
func (g *IterForm) String() string {
	if g == nil {
		return "?"
	}
	var sb strings.Builder
	sb.WriteString(g.Const.String())
	one := rational.FromInt(1)
	for _, l := range g.Loops() {
		c := g.Coeffs[l]
		writeTerm(&sb, c, fmt.Sprintf("h(%s)", l.Label), one)
	}
	syms := make([]*ir.Value, 0, len(g.Syms))
	for v := range g.Syms {
		syms = append(syms, v)
	}
	slices.SortFunc(syms, ir.ByID)
	for _, v := range syms {
		writeTerm(&sb, g.Syms[v], v.String(), one)
	}
	return sb.String()
}

func writeTerm(sb *strings.Builder, c rational.Rat, name string, one rational.Rat) {
	if c.Sign() < 0 {
		sb.WriteString(" - ")
		c = c.Neg()
	} else {
		sb.WriteString(" + ")
	}
	if !c.Equal(one) {
		fmt.Fprintf(sb, "%s*", c)
	}
	sb.WriteString(name)
}

// IterFormOf expands the value v, used within loop l (or nil for code
// outside all loops), into the iteration space of the enclosing nest.
// Returns nil when v is not affine in the loop counters — e.g.
// polynomial IVs, or linear IVs whose step varies in an outer loop (the
// paper's multiloop case with symbolic step produces h·h cross terms).
func (a *Analysis) IterFormOf(l *loops.Loop, v *ir.Value) *IterForm {
	return a.iterExpand(l, v, 0)
}

const maxIterDepth = 64

func (a *Analysis) iterExpand(l *loops.Loop, v *ir.Value, depth int) *IterForm {
	if depth > maxIterDepth {
		return nil
	}
	if l == nil {
		// Outside all loops: constants and symbols only.
		return a.iterExpandExpr(nil, a.leafExpr(v), depth)
	}
	return a.iterExpandClass(l, a.ClassOf(l, v), depth)
}

// IterFormOfClass expands an explicit classification in loop l's
// iteration space (used by dependence testing to shift wrap-around
// subscripts onto their post-warm-up induction sequence).
func (a *Analysis) IterFormOfClass(l *loops.Loop, cls *Classification) *IterForm {
	return a.iterExpandClass(l, cls, 0)
}

func (a *Analysis) iterExpandClass(l *loops.Loop, cls *Classification, depth int) *IterForm {
	if depth > maxIterDepth || cls == nil {
		return nil
	}
	switch cls.Kind {
	case Invariant:
		e := cls.Expr
		if e == nil {
			return nil
		}
		return a.iterExpandExpr(l.Parent, e, depth)
	case Linear:
		step, ok := cls.Step.ConstVal()
		if !ok {
			return nil // symbolic step: h_outer·h_l cross term
		}
		base := a.iterExpandExpr(l.Parent, cls.Init, depth)
		if base == nil {
			return nil
		}
		if cur, ok := base.Coeffs[l]; ok {
			base.Coeffs[l] = cur.Add(step)
		} else {
			base.Coeffs[l] = step
		}
		return base.normalize()
	case Periodic:
		// A selector with a fully constant ring contributes a periodic
		// term; the dependence tester resolves it by slot enumeration.
		if len(cls.Initials) != cls.Period || cls.Period < 2 {
			return nil
		}
		for _, e := range cls.Initials {
			if e == nil {
				return nil
			}
			if _, ok := e.ConstVal(); !ok {
				return nil
			}
		}
		out := newIterForm()
		out.Per = append(out.Per, PerTerm{Cls: cls, Coeff: rational.FromInt(1)})
		return out
	default:
		return nil
	}
}

// iterExpandExpr expands an affine Expr whose atoms live at or outside
// loop l (nil = outermost).
func (a *Analysis) iterExpandExpr(l *loops.Loop, e *Expr, depth int) *IterForm {
	if e == nil {
		return nil
	}
	out := newIterForm()
	out.Const = e.Const
	for v, c := range e.Terms {
		lv := a.Forest.InnermostContaining(v.Block)
		switch {
		case lv == nil:
			// A parameter or pre-loop computation: symbolic atom.
			if cur, ok := out.Syms[v]; ok {
				out.Syms[v] = cur.Add(c)
			} else {
				out.Syms[v] = c
			}
		case isAncestorOrSelf(lv, l):
			sub := a.iterExpand(lv, v, depth+1)
			if sub == nil {
				return nil
			}
			out.add(sub, c)
		default:
			// Defined in an unrelated loop (e.g. an earlier sibling):
			// its value varies with the common ancestors' iterations in
			// ways we do not model.
			return nil
		}
	}
	return out.normalize()
}

// isAncestorOrSelf reports whether anc encloses l (or is l). anc must
// not be nil.
func isAncestorOrSelf(anc, l *loops.Loop) bool {
	for q := l; q != nil; q = q.Parent {
		if q == anc {
			return true
		}
	}
	return false
}

// NestedString renders a classification with the paper's outer-to-inner
// substitution: initial values that are themselves induction variables
// of enclosing loops print as nested tuples, e.g. (L6, (L5, 3, 2), 1)
// and (L20, (L19, 1, 2, 1), 1).
func (a *Analysis) NestedString(c *Classification) string {
	if c == nil {
		return "<nil>"
	}
	switch c.Kind {
	case Linear:
		label := "?"
		if c.Loop != nil {
			label = c.Loop.Label
		}
		return fmt.Sprintf("(%s, %s, %s)", label, a.nestedExpr(c.Loop, c.Init), a.nestedExpr(c.Loop, c.Step))
	default:
		return c.String()
	}
}

// nestedExpr renders an affine Expr, replacing it wholesale with an
// enclosing loop's tuple when it classifies as an IV there.
func (a *Analysis) nestedExpr(l *loops.Loop, e *Expr) string {
	if e == nil {
		return "?"
	}
	if e.IsConst() {
		return e.Const.String()
	}
	if l != nil && l.Parent != nil {
		outer := a.exprClass(l.Parent, e)
		switch outer.Kind {
		case Linear, Polynomial, Geometric:
			return a.NestedString(outer)
		}
	}
	return e.String()
}
