package iv_test

import (
	"fmt"

	"beyondiv/internal/iv"
)

// The paper's Figure 1: mutually-defined induction variables form one
// family anchored at the loop-header φ.
func ExampleAnalyzeProgram() {
	a, err := iv.AnalyzeProgram(`
j = n
L7: loop {
    i = j + c
    j = i + k
    if j > m { exit }
}
`)
	if err != nil {
		panic(err)
	}
	l := a.LoopByLabel("L7")
	for _, name := range []string{"j2", "i1", "j3"} {
		fmt.Printf("%s = %s\n", name, a.ClassOf(l, a.ValueByName(name)))
	}
	// Output:
	// j2 = (L7, n1, c1 + k1)
	// i1 = (L7, n1 + c1, c1 + k1)
	// j3 = (L7, n1 + c1 + k1, c1 + k1)
}

// The §4.3 closed forms: the worked cubic from loop L14.
func ExampleAnalysis_ClassOf() {
	a, err := iv.AnalyzeProgram(`
j = 1
k = 1
L14: for i = 1 to n {
    j = j + i
    k = k + j + 1
}
`)
	if err != nil {
		panic(err)
	}
	l := a.LoopByLabel("L14")
	k3 := a.ClassOf(l, a.ValueByName("k3"))
	fmt.Println(k3)
	v, _ := k3.PolyEval(3)
	fmt.Printf("k(3) = %s\n", v)
	// Output:
	// (L14, 4, 23/6, 1, 1/6)
	// k(3) = 29
}

// Trip counts follow §5.2: the count is the number of times the exit
// test stays in the loop.
func ExampleAnalysis_TripCount() {
	a, err := iv.AnalyzeProgram(`
L30: for i = 3 to 10 { a[i] = 0 }
L31: for i = 1 to n by 2 { b[i] = 0 }
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(a.TripCount(a.LoopByLabel("L30")))
	fmt.Println(a.TripCount(a.LoopByLabel("L31")))
	// Output:
	// 8
	// ceil((n1)/2)
}

// NestedString performs the §5.3 outer-to-inner substitution.
func ExampleAnalysis_NestedString() {
	a, err := iv.AnalyzeProgram(`
i = 0
L5: loop {
    i = i + 2
    j = i
    L6: loop {
        j = j + 1
        a[j] = 0
        if j > m { exit }
    }
    if i > n { exit }
}
`)
	if err != nil {
		panic(err)
	}
	l6 := a.LoopByLabel("L6")
	fmt.Println(a.NestedString(a.ClassOf(l6, a.ValueByName("j3"))))
	// Output:
	// (L6, (L5, 3, 2), 1)
}
