package iv

import (
	"beyondiv/internal/ir"
	"beyondiv/internal/matrix"
	"beyondiv/internal/rational"
)

// This file classifies nontrivial strongly connected regions of the SSA
// graph, in the order the paper presents them:
//
//	§4.2 periodic   — ≥2 header φs, only φs and copies;
//	§3.1 linear     — one header φ, add/sub by invariants, equal offsets
//	                  at every inner φ (Figure 3);
//	§4.3 nonlinear  — one header φ, single path: the cumulative effect
//	                  maps X to a·X + β, giving polynomial (a=1, β an IV),
//	                  geometric (|a|≥2), or flip-flop (a=-1, β invariant);
//	§4.4 monotonic  — one header φ, unequal but same-signed increments.

func (ctx *loopCtx) classifySCR(comp []int) {
	// Membership via a reusable stamp array: profiling shows per-SCC
	// map allocation dominates large loops otherwise.
	scr := ctx.scr
	scr.curStamp++
	for _, id := range comp {
		scr.sccStamp[id] = scr.curStamp
	}
	inSCC := func(id int) bool { return scr.sccStamp[id] == scr.curStamp }
	headers := scr.headers[:0]
	otherPhis := 0
	for _, id := range comp {
		n := ctx.nodes[id]
		if n.exit {
			continue
		}
		if n.v.Op == ir.OpPhi {
			if ctx.isHeaderPhi(id) {
				headers = append(headers, id)
			} else {
				otherPhis++
			}
		}
	}
	scr.headers = headers

	if len(headers) >= 2 && otherPhis == 0 && ctx.tryPeriodic(comp, inSCC, headers) {
		ctx.recordSCR(headers[0])
		return
	}
	if len(headers) == 1 {
		if ctx.tryLinearFamily(comp, inSCC, headers[0]) {
			ctx.recordSCR(headers[0])
			return
		}
		if otherPhis == 0 && ctx.tryCumulative(comp, inSCC, headers[0]) {
			ctx.recordSCR(headers[0])
			return
		}
		if ctx.tryMonotonic(comp, inSCC, headers[0]) {
			ctx.recordSCR(headers[0])
			return
		}
		if ctx.tryMonotonicGrowth(comp, inSCC, headers[0]) {
			ctx.recordSCR(headers[0])
			return
		}
	}
	for _, id := range comp {
		u := unknown()
		u.Rule = RuleUnclassified
		ctx.cls[id] = u
	}
	if len(headers) > 0 {
		ctx.recordSCR(headers[0])
	} else {
		ctx.a.opts.Obs.Count("iv.scr.unknown")
	}
}

// recordSCR emits the SCR-kind counter and the provenance decision for
// a just-classified component, keyed by its (first) header φ.
func (ctx *loopCtx) recordSCR(headID int) {
	rec := ctx.a.opts.Obs
	if rec == nil {
		return
	}
	c := ctx.cls[headID]
	if c == nil {
		return
	}
	var kind string
	switch c.Kind {
	case Linear:
		kind = "iv.scr.linear"
	case Periodic:
		if ruleOf(c) == RuleFlipFlop {
			kind = "iv.scr.flip_flop"
		} else {
			kind = "iv.scr.periodic"
		}
	case Polynomial:
		kind = "iv.scr.polynomial"
	case Geometric:
		kind = "iv.scr.geometric"
	case Monotonic:
		kind = "iv.scr.monotonic"
	case Invariant:
		kind = "iv.scr.invariant"
	default:
		kind = "iv.scr.unknown"
	}
	rec.Count(kind)
	rec.Decide(ctx.nodes[headID].v.String(), ruleOf(c).String(), c.String())
}

// headPhiArgs splits the single header φ's arguments; the initial value
// must come from outside the SCC (and outside the loop).
func (ctx *loopCtx) headPhiArgs(headID int) (init *ir.Value, carried []*ir.Value) {
	return splitPhiArgs(ctx.l, ctx.nodes[headID].v)
}

// ---- periodic (§4.2) ----

// tryPeriodic classifies a rotation ring: the SCC is a simple cycle of
// header φs and copies. Each φ delays the ring by one iteration.
func (ctx *loopCtx) tryPeriodic(comp []int, inSCC func(int) bool, headers []int) bool {
	period := len(headers)
	scr := ctx.scr
	// Verify shape: every node is a φ (header) or Copy with exactly one
	// in-SCC operand. next[id] is the unique in-SCC operand; every comp
	// id is assigned below before the walk reads it, so the reused
	// table needs no reset.
	next := scr.next
	for _, id := range comp {
		n := ctx.nodes[id]
		if n.exit {
			return false
		}
		inOp, inCount := 0, 0
		switch n.v.Op {
		case ir.OpPhi:
			if !ctx.isHeaderPhi(id) {
				return false
			}
			_, carried := splitPhiArgs(ctx.l, n.v)
			for _, c := range carried {
				if cid, ok := ctx.idxOf(c); ok && inSCC(cid) {
					inOp, inCount = cid, inCount+1
				}
			}
		case ir.OpCopy:
			if cid, ok := ctx.idxOf(n.v.Args[0]); ok && inSCC(cid) {
				inOp, inCount = cid, 1
			}
		default:
			return false
		}
		if inCount != 1 {
			return false
		}
		next[id] = inOp
	}

	// Walk the cycle assigning phases: a φ shifts phase by one. The
	// assigned counter replaces the old map-length check for "the walk
	// visited every component member exactly once".
	head := headers[0]
	phase := scr.phase
	for _, id := range comp {
		scr.phaseSet[id] = false
	}
	assigned := 0
	id, ph := head, 0
	for range comp {
		if !scr.phaseSet[id] {
			scr.phaseSet[id] = true
			assigned++
		}
		phase[id] = ((ph % period) + period) % period
		if ctx.isHeaderPhi(id) {
			ph = phase[id] - 1 // operand is one iteration "ahead"
		} else {
			ph = phase[id]
		}
		id = next[id]
	}
	if id != head || assigned != len(comp) {
		return false // not a single simple cycle
	}

	// Ring of initial values, indexed by phase of each header φ.
	initials := make([]*Expr, period)
	for _, h := range headers {
		initArg, _ := splitPhiArgs(ctx.l, ctx.nodes[h].v)
		if initArg == nil {
			return false
		}
		initials[phase[h]] = ctx.a.leafExpr(initArg)
	}

	headV := ctx.nodes[head].v
	for _, id := range comp {
		ctx.cls[id] = &Classification{
			Kind: Periodic, Loop: ctx.l,
			Period: period, Phase: phase[id],
			Initials: initials, HeadPhi: headV,
			Rule: RulePeriodicRing,
		}
	}
	return true
}

// ---- linear families (§3.1, Figure 3) ----

// tryLinearFamily computes each member's invariant offset from the
// header φ; inner φs must merge equal offsets. The family step is the
// offset of the loop-carried value.
func (ctx *loopCtx) tryLinearFamily(comp []int, inSCC func(int) bool, headID int) bool {
	// Dense side tables, reused across SCCs (allocating per-SCC would be
	// quadratic over thousands of small components): this is the hottest
	// classification path, and per-SCC maps showed up in the profile.
	offsets := ctx.scr.famOffsets
	state := ctx.scr.famState
	for _, id := range comp {
		offsets[id] = nil
		state[id] = 0 // 0 unseen, 1 visiting, 2 done
	}

	var offset func(id int) *Expr
	offset = func(id int) *Expr {
		switch state[id] {
		case 2:
			return offsets[id]
		case 1:
			return nil // cycle avoiding the header: malformed
		}
		state[id] = 1
		defer func() { state[id] = 2 }()
		if id == headID {
			offsets[id] = IntExpr(0)
			return offsets[id]
		}
		n := ctx.nodes[id]
		var e *Expr
		if n.exit {
			e = ctx.exitOffset(ctx.checkedExit(id), inSCC, offset)
		} else {
			e = ctx.valueOffset(n.v, inSCC, offset)
		}
		offsets[id] = e
		return e
	}

	for _, id := range comp {
		if offset(id) == nil {
			return false
		}
	}

	// The step is the carried value's offset; with several latches all
	// carried offsets must agree.
	initArg, carried := ctx.headPhiArgs(headID)
	if initArg == nil || len(carried) == 0 {
		return false
	}
	var step *Expr
	for _, c := range carried {
		cid, ok := ctx.idxOf(c)
		if !ok || !inSCC(cid) {
			return false
		}
		o := offsets[cid]
		if step == nil {
			step = o
		} else if !step.Equal(o) {
			return false
		}
	}
	if step == nil {
		return false
	}
	init := ctx.a.leafExpr(initArg)
	headV := ctx.nodes[headID].v
	for _, id := range comp {
		ctx.cls[id] = &Classification{
			Kind: Linear, Loop: ctx.l,
			Init: AddExpr(init, offsets[id]), Step: step,
			HeadPhi: headV,
			Rule:    RuleLinearFamily,
		}
	}
	return true
}

// valueOffset computes a value node's offset from the header φ, or nil
// when the node breaks the linear-family rules.
func (ctx *loopCtx) valueOffset(v *ir.Value, inSCC func(int) bool, offset func(int) *Expr) *Expr {
	inOp := func(arg *ir.Value) (int, bool) {
		id, ok := ctx.nodeOf(arg)
		if !ok || !inSCC(id) {
			return 0, false
		}
		return id, true
	}
	switch v.Op {
	case ir.OpPhi:
		// Inner φ: every argument in the SCC with equal offsets
		// (Figure 3: same increment on each path).
		var e *Expr
		for _, arg := range v.Args {
			id, ok := inOp(arg)
			if !ok {
				return nil
			}
			o := offset(id)
			if o == nil {
				return nil
			}
			if e == nil {
				e = o
			} else if !e.Equal(o) {
				return nil
			}
		}
		return e
	case ir.OpCopy:
		id, ok := inOp(v.Args[0])
		if !ok {
			return nil
		}
		return offset(id)
	case ir.OpAdd:
		a, aIn := inOp(v.Args[0])
		b, bIn := inOp(v.Args[1])
		switch {
		case aIn && !bIn:
			inc := ctx.operandExprInvariant(v.Args[1])
			return AddExpr(offset(a), inc)
		case bIn && !aIn:
			inc := ctx.operandExprInvariant(v.Args[0])
			return AddExpr(offset(b), inc)
		default:
			return nil
		}
	case ir.OpSub:
		// Only i = i - invariant is linear; n - i is a flip-flop
		// (handled by the cumulative path).
		a, aIn := inOp(v.Args[0])
		_, bIn := inOp(v.Args[1])
		if aIn && !bIn {
			dec := ctx.operandExprInvariant(v.Args[1])
			return SubExpr(offset(a), dec)
		}
		return nil
	default:
		return nil
	}
}

// exitOffset folds an exit-value node e = Σ cᵢ·tᵢ + c₀ into the offset
// discipline: exactly one in-SCC term with coefficient 1, all other
// terms invariant.
func (ctx *loopCtx) exitOffset(expr *Expr, inSCC func(int) bool, offset func(int) *Expr) *Expr {
	if expr == nil {
		return nil
	}
	var base *Expr
	rest := ConstExpr(expr.Const)
	for t, c := range expr.Terms {
		id, ok := ctx.nodeOf(t)
		if ok && inSCC(id) {
			if base != nil || !c.Equal(rational.FromInt(1)) {
				return nil
			}
			base = offset(id)
			if base == nil {
				return nil
			}
			continue
		}
		inv := ctx.operandExprInvariant(t)
		rest = AddExpr(rest, ScaleExpr(inv, c))
		if rest == nil {
			return nil
		}
	}
	if base == nil {
		return nil
	}
	return AddExpr(base, rest)
}

// ---- cumulative effect: polynomial / geometric / flip-flop (§4.3) ----

// symVal is the symbolic value a·X + β, where X is the header φ's value
// in the current iteration and β is a classified expression.
type symVal struct {
	a rational.Rat
	b *Classification
}

// tryCumulative requires a single path (no inner φs) and classifies the
// recurrence X' = a·X + β.
func (ctx *loopCtx) tryCumulative(comp []int, inSCC func(int) bool, headID int) bool {
	initArg, carried := ctx.headPhiArgs(headID)
	if initArg == nil || len(carried) != 1 {
		return false
	}
	carriedID, ok := ctx.nodeOf(carried[0])
	if !ok || !inSCC(carriedID) {
		return false
	}

	// Dense memo: symState 0 = unseen, 1 = visiting (cycle guard),
	// 2 = done — symVals[id] is meaningful (possibly nil) only at 2.
	scr := ctx.scr
	for _, id := range comp {
		scr.symState[id] = 0
	}
	var eval func(id int) *symVal
	eval = func(id int) *symVal {
		switch scr.symState[id] {
		case 2:
			return scr.symVals[id]
		case 1:
			return nil
		}
		scr.symState[id] = 1
		var sv *symVal
		if id == headID {
			sv = &symVal{a: rational.FromInt(1), b: invariant(ctx.l, IntExpr(0))}
		} else if ctx.nodes[id].exit {
			sv = ctx.symExit(ctx.checkedExit(id), inSCC, eval)
		} else {
			sv = ctx.symValue(ctx.nodes[id].v, inSCC, eval)
		}
		scr.symVals[id] = sv
		scr.symState[id] = 2
		return sv
	}

	for _, id := range comp {
		if eval(id) == nil {
			return false
		}
	}
	cv := scr.symVals[carriedID]
	a, beta := cv.a, cv.b
	if !a.Valid() || beta.Kind == Unknown {
		return false
	}
	ai, isInt := a.Int()
	if !isInt {
		return false
	}

	init := ctx.a.leafExpr(initArg)
	headV := ctx.nodes[headID].v

	var headCls *Classification
	switch {
	case ai == 1 && beta.Kind == Invariant:
		// Degenerate linear that the family path refused (e.g. an
		// increment that is invariant but only via algebra).
		step := beta.Expr
		if step == nil {
			return false
		}
		headCls = &Classification{Kind: Linear, Loop: ctx.l, Init: init, Step: step, HeadPhi: headV, Rule: RuleLinearCumulative}
	case ai == 1 && (beta.Kind == Linear || beta.Kind == Polynomial):
		ord := 2
		if beta.Kind == Polynomial {
			ord = beta.Order + 1
		}
		headCls = &Classification{Kind: Polynomial, Loop: ctx.l, Order: ord, HeadPhi: headV, Rule: RulePolynomial}
	case ai == 1 && beta.Kind == Geometric:
		headCls = &Classification{Kind: Geometric, Loop: ctx.l, Base: beta.Base, HeadPhi: headV, Rule: RuleGeometric}
	case ai == -1 && beta.Kind == Invariant:
		// Flip-flop: j = c - j (§4.2), periodic with period two.
		headCls = &Classification{Kind: Periodic, Loop: ctx.l, Period: 2, Phase: 0, HeadPhi: headV, Rule: RuleFlipFlop}
		if c := invariantExprOf(beta, nil); c != nil {
			headCls.Initials = []*Expr{init, SubExpr(c, init)}
		}
	case (ai <= -2 || ai >= 2) && (beta.Kind == Invariant || beta.Kind == Linear || beta.Kind == Polynomial):
		headCls = &Classification{Kind: Geometric, Loop: ctx.l, Base: ai, HeadPhi: headV, Rule: RuleGeometric}
	default:
		return false
	}
	headCls.Beta = beta

	// Closed forms by simulation + Vandermonde solve (§4.3), when the
	// initial value and β are numeric.
	haveSeries := ctx.simulate(init, a, beta, comp)
	for _, id := range comp {
		sv := scr.symVals[id]
		var cls *Classification
		if sv.a.IsZero() {
			cls = sv.b // does not depend on the recurrence at all
		} else if haveSeries {
			cls = ctx.solveClosedForm(headCls, scr.series[id])
		}
		if cls == nil {
			cls = ctx.classOnlyMember(headCls, sv)
		}
		// Provenance: annotate fresh member classifications only — the
		// sv.b branch shares a classification other values own.
		if cls != sv.b && cls.Kind != Unknown && cls.Rule == RuleNone {
			switch cls.Kind {
			case Linear, Invariant:
				cls.Rule = RuleLinearCumulative
			default:
				cls.Rule = headCls.Rule
			}
			cls.Beta = headCls.Beta
		}
		ctx.cls[id] = cls
	}
	return true
}

// symValue evaluates one operation over symVals.
func (ctx *loopCtx) symValue(v *ir.Value, inSCC func(int) bool, eval func(int) *symVal) *symVal {
	arg := func(w *ir.Value) *symVal {
		id, ok := ctx.nodeOf(w)
		if ok && inSCC(id) {
			return eval(id)
		}
		c := ctx.operandCls(w)
		if c.Kind == Unknown {
			return nil
		}
		if c.Kind == Invariant && c.Expr == nil {
			c = invariant(ctx.l, VarExpr(w))
		}
		return &symVal{a: rational.FromInt(0), b: c}
	}
	l := ctx.l
	switch v.Op {
	case ir.OpCopy:
		return arg(v.Args[0])
	case ir.OpNeg:
		x := arg(v.Args[0])
		if x == nil {
			return nil
		}
		return &symVal{a: x.a.Neg(), b: negCls(l, x.b)}
	case ir.OpAdd, ir.OpSub:
		x, y := arg(v.Args[0]), arg(v.Args[1])
		if x == nil || y == nil {
			return nil
		}
		if v.Op == ir.OpSub {
			y = &symVal{a: y.a.Neg(), b: negCls(l, y.b)}
		}
		b := addCls(l, x.b, y.b)
		if b.Kind == Unknown {
			return nil
		}
		return &symVal{a: x.a.Add(y.a), b: b}
	case ir.OpMul:
		x, y := arg(v.Args[0]), arg(v.Args[1])
		if x == nil || y == nil {
			return nil
		}
		// One side must be independent of X and constant.
		if x.a.IsZero() {
			x, y = y, x
		}
		if !y.a.IsZero() {
			return nil // X * X: not classified (paper §5.1)
		}
		k, ok := constOf(y.b)
		if !ok {
			return nil
		}
		b := scaleCls(l, x.b, k)
		if b.Kind == Unknown {
			return nil
		}
		return &symVal{a: x.a.Mul(k), b: b}
	default:
		return nil
	}
}

// symExit evaluates an exit-value node over symVals.
func (ctx *loopCtx) symExit(expr *Expr, inSCC func(int) bool, eval func(int) *symVal) *symVal {
	if expr == nil {
		return nil
	}
	a := rational.FromInt(0)
	b := invariant(ctx.l, ConstExpr(expr.Const))
	for t, c := range expr.Terms {
		id, ok := ctx.nodeOf(t)
		if ok && inSCC(id) {
			sv := eval(id)
			if sv == nil {
				return nil
			}
			a = a.Add(c.Mul(sv.a))
			b = addCls(ctx.l, b, scaleCls(ctx.l, sv.b, c))
		} else {
			cls := ctx.operandCls(t)
			if cls.Kind == Invariant && cls.Expr == nil {
				cls = invariant(ctx.l, VarExpr(t))
			}
			b = addCls(ctx.l, b, scaleCls(ctx.l, cls, c))
		}
		if b.Kind == Unknown || !a.Valid() {
			return nil
		}
	}
	return &symVal{a: a, b: b}
}

// simulate runs the recurrence numerically and records each member's
// value series into the scratch series table, reporting false when the
// pieces are not numeric. The series slices are only read before the
// next component is classified (the matrix solver copies what it
// keeps), so their backing arrays are reused freely.
func (ctx *loopCtx) simulate(init *Expr, a rational.Rat, beta *Classification, comp []int) bool {
	if ctx.a.opts.DisableClosedForms {
		return false
	}
	x0, ok := init.ConstVal()
	if !ok {
		return false
	}
	steps := ctx.seriesLength(a, beta)
	if steps == 0 {
		return false
	}
	scr := ctx.scr
	for _, id := range comp {
		scr.series[id] = scr.series[id][:0]
	}
	x := x0
	for h := int64(0); h < int64(steps); h++ {
		for _, id := range comp {
			sv := scr.symVals[id]
			bv, ok := betaEval(sv.b, h)
			if !ok {
				return false
			}
			mv := sv.a.Mul(x).Add(bv)
			if !mv.Valid() {
				return false
			}
			scr.series[id] = append(scr.series[id], mv)
		}
		bv, ok := betaEval(beta, h)
		if !ok {
			return false
		}
		x = a.Mul(x).Add(bv)
		if !x.Valid() {
			return false
		}
	}
	return true
}

// betaEval evaluates a numeric classification at iteration h.
func betaEval(c *Classification, h int64) (rational.Rat, bool) {
	if c.Kind == Invariant {
		return c.Expr.ConstVal()
	}
	return c.PolyEval(h)
}

// seriesLength returns the number of sample points needed to determine
// the closed form (#unknown coefficients), or 0 when no numeric closed
// form applies.
func (ctx *loopCtx) seriesLength(a rational.Rat, beta *Classification) int {
	ai, _ := a.Int()
	betaDeg := -1
	switch beta.Kind {
	case Invariant:
		if _, ok := beta.Expr.ConstVal(); ok {
			betaDeg = 0
		}
	case Linear:
		if _, _, ok := beta.LinearConst(); ok {
			betaDeg = 1
		}
	case Polynomial:
		if beta.Coeffs != nil {
			betaDeg = beta.Order
		}
	case Geometric:
		if beta.Coeffs != nil && ai == 1 && beta.Base != 1 {
			// x' = x + poly + g·b^h: poly degree rises by one, plus one
			// geometric coefficient.
			return (len(beta.Coeffs) - 1 + 1) + 1 + 1 + 1
		}
		return 0
	default:
		return 0
	}
	if betaDeg < 0 {
		return 0
	}
	if ai == 1 {
		// Pure polynomial of degree betaDeg+1.
		return betaDeg + 2
	}
	// Geometric: particular polynomial of degree betaDeg plus the
	// homogeneous a^h term.
	return betaDeg + 2
}

// solveClosedForm fits a member's sampled series to the head's class
// shape (polynomial or geometric) and cross-checks the fit on the last
// sample.
func (ctx *loopCtx) solveClosedForm(head *Classification, series []rational.Rat) *Classification {
	if len(series) == 0 {
		return nil
	}
	n := len(series)
	var build func() *matrix.Matrix
	geoBase := int64(0)
	switch head.Kind {
	case Polynomial, Linear:
		build = func() *matrix.Matrix { return matrix.Vandermonde(n - 1) }
	case Geometric:
		geoBase = head.Base
		build = func() *matrix.Matrix { return matrix.GeometricVandermonde(n, geoBase) }
	case Periodic: // flip-flop: base -1 closed form
		geoBase = -1
		build = func() *matrix.Matrix { return matrix.GeometricVandermonde(n, -1) }
	default:
		return nil
	}
	ctx.a.opts.Obs.Count("iv.matrix.solves")
	inv := ctx.scr.inverseOf(invKey{n: n, base: geoBase, geo: geoBase != 0}, build)
	if inv == nil {
		return nil
	}
	coeffs, err := inv.MulVec(series)
	if err != nil {
		return nil
	}
	out := &Classification{Loop: ctx.l, Kind: head.Kind, HeadPhi: head.HeadPhi}
	switch head.Kind {
	case Polynomial, Linear:
		c := canonPoly(ctx.l, coeffs)
		c.HeadPhi = head.HeadPhi
		if c.Kind == Polynomial || head.Kind != Polynomial {
			return c
		}
		// Member of a polynomial family that degenerates to linear or
		// invariant: keep the simpler class.
		return c
	case Geometric, Periodic:
		out.Base = geoBase
		out.GeoCoeff = coeffs[n-1]
		out.Coeffs = trimPoly(coeffs[:n-1])
		if out.GeoCoeff.IsZero() {
			c := canonPoly(ctx.l, coeffs[:n-1])
			c.HeadPhi = head.HeadPhi
			return c
		}
		if head.Kind == Periodic {
			out.Kind = Periodic
			out.Period = 2
			out.Phase = 0
			// The member's own two-value ring, from its closed form.
			v0, ok0 := out.PolyEval(0)
			v1, ok1 := out.PolyEval(1)
			if ok0 && ok1 {
				out.Initials = []*Expr{ConstExpr(v0), ConstExpr(v1)}
			}
		}
		return out
	}
	return nil
}

func trimPoly(c []rational.Rat) []rational.Rat {
	n := len(c)
	for n > 0 && c[n-1].IsZero() {
		n--
	}
	out := make([]rational.Rat, n)
	copy(out, c[:n])
	return out
}

// classOnlyMember labels a member when coefficients cannot be computed:
// the kind and order are still known.
func (ctx *loopCtx) classOnlyMember(head *Classification, sv *symVal) *Classification {
	out := &Classification{Loop: ctx.l, Kind: head.Kind, HeadPhi: head.HeadPhi}
	switch head.Kind {
	case Linear:
		// a·(init + h·step) + b: linear again when b is invariant.
		if b, ok := sv.b.Expr, sv.b.Kind == Invariant; ok && head.Init != nil && head.Step != nil {
			init := AddExpr(ScaleExpr(head.Init, sv.a), b)
			step := ScaleExpr(head.Step, sv.a)
			if init != nil && step != nil {
				return &Classification{Kind: Linear, Loop: ctx.l, Init: init, Step: step, HeadPhi: head.HeadPhi}
			}
		}
		return unknown()
	case Polynomial:
		out.Order = head.Order
	case Geometric:
		out.Base = head.Base
	case Periodic:
		out.Period = head.Period
		out.Phase = 0
		// Member ring m(h) = a·head(h) + b from the head's ring.
		if b, isInv := sv.b.Expr, sv.b.Kind == Invariant; isInv && b != nil && len(head.Initials) == head.Period {
			ring := make([]*Expr, 0, head.Period)
			complete := true
			for off := 0; off < head.Period; off++ {
				idx := ((head.Phase-off)%head.Period + head.Period) % head.Period
				hv := head.Initials[idx]
				mv := AddExpr(ScaleExpr(hv, sv.a), b)
				if mv == nil {
					complete = false
					break
				}
				ring = append(ring, mv)
			}
			if complete {
				// ring[off] is the member's value at iteration off;
				// store as Initials with phase 0: Initials[(0-h) mod p].
				out.Initials = make([]*Expr, head.Period)
				for off, mv := range ring {
					out.Initials[((0-off)%head.Period+head.Period)%head.Period] = mv
				}
			}
		}
	}
	return out
}

// ---- monotonic (§4.4) ----

// bound is a rational with explicit infinities.
type bound struct {
	val rational.Rat
	inf bool // true: unbounded in this direction
}

type valRange struct{ lo, hi bound }

func addBound(a, b bound) bound {
	if a.inf || b.inf {
		return bound{inf: true}
	}
	v := a.val.Add(b.val)
	if !v.Valid() {
		return bound{inf: true}
	}
	return bound{val: v}
}

func minBound(a, b bound) bound {
	if a.inf || b.inf {
		return bound{inf: true}
	}
	if a.val.Cmp(b.val) <= 0 {
		return a
	}
	return b
}

func maxBound(a, b bound) bound {
	if a.inf || b.inf {
		return bound{inf: true}
	}
	if a.val.Cmp(b.val) >= 0 {
		return a
	}
	return b
}

// clsRange bounds a classification's value over all iterations.
func clsRange(c *Classification) valRange {
	lo, hi, hasLo, hasHi := boundsOf(c)
	r := valRange{lo: bound{inf: true}, hi: bound{inf: true}}
	if hasLo {
		r.lo = bound{val: lo}
	}
	if hasHi {
		r.hi = bound{val: hi}
	}
	return r
}

func scaleRange(r valRange, c rational.Rat) valRange {
	s := func(b bound) bound {
		if b.inf {
			return b
		}
		v := b.val.Mul(c)
		if !v.Valid() {
			return bound{inf: true}
		}
		return bound{val: v}
	}
	lo, hi := s(r.lo), s(r.hi)
	if c.Sign() < 0 {
		lo, hi = hi, lo
	}
	return valRange{lo: lo, hi: hi}
}

func addRange(a, b valRange) valRange {
	return valRange{lo: addBound(a.lo, b.lo), hi: addBound(a.hi, b.hi)}
}

// tryMonotonic computes per-member offset ranges from the header φ.
// Sound when every individual increment has a consistent sign; see the
// derivation in the tests.
func (ctx *loopCtx) tryMonotonic(comp []int, inSCC func(int) bool, headID int) bool {
	initArg, carried := ctx.headPhiArgs(headID)
	if initArg == nil || len(carried) == 0 {
		return false
	}

	// Dense memo: rngState 0 = unseen, 1 = visiting, 2 = done —
	// ranges[id] is meaningful (possibly nil) only at 2.
	scr := ctx.scr
	for _, id := range comp {
		scr.rngState[id] = 0
	}
	allNonNeg, allNonPos := true, true

	recordInc := func(r valRange) {
		if r.lo.inf || r.lo.val.Sign() < 0 {
			allNonNeg = false
		}
		if r.hi.inf || r.hi.val.Sign() > 0 {
			allNonPos = false
		}
	}

	inOp := func(w *ir.Value) (int, bool) {
		id, ok := ctx.nodeOf(w)
		if !ok || !inSCC(id) {
			return 0, false
		}
		return id, true
	}

	var rng func(id int) *valRange
	rng = func(id int) *valRange {
		switch scr.rngState[id] {
		case 2:
			return scr.ranges[id]
		case 1:
			return nil
		}
		scr.rngState[id] = 1
		var out *valRange
		if id == headID {
			out = &valRange{lo: bound{val: rational.FromInt(0)}, hi: bound{val: rational.FromInt(0)}}
		} else {
			n := ctx.nodes[id]
			if n.exit {
				out = ctx.exitRange(ctx.checkedExit(id), inSCC, rng, recordInc)
			} else {
				out = ctx.valueRange(n.v, inOp, rng, recordInc)
			}
		}
		scr.ranges[id] = out
		scr.rngState[id] = 2
		return out
	}

	for _, id := range comp {
		if rng(id) == nil {
			return false
		}
	}

	// Step range: union over carried values.
	step := valRange{lo: bound{inf: true}, hi: bound{inf: true}}
	first := true
	for _, c := range carried {
		cid, ok := inOp(c)
		if !ok {
			return false
		}
		r := scr.ranges[cid]
		if first {
			step = *r
			first = false
		} else {
			step = valRange{lo: minBound(step.lo, r.lo), hi: maxBound(step.hi, r.hi)}
		}
	}

	var dir int
	switch {
	case allNonNeg && !step.lo.inf && step.lo.val.Sign() >= 0:
		dir = 1
	case allNonPos && !step.hi.inf && step.hi.val.Sign() <= 0:
		dir = -1
	default:
		return false
	}
	stepStrict := (dir > 0 && !step.lo.inf && step.lo.val.Sign() > 0) ||
		(dir < 0 && !step.hi.inf && step.hi.val.Sign() < 0)

	headV := ctx.nodes[headID].v
	for _, id := range comp {
		r := scr.ranges[id]
		strict := stepStrict ||
			(dir > 0 && !r.lo.inf && r.lo.val.Sign() > 0) ||
			(dir < 0 && !r.hi.inf && r.hi.val.Sign() < 0)
		ctx.cls[id] = &Classification{Kind: Monotonic, Loop: ctx.l, Dir: dir, Strict: strict, HeadPhi: headV, Rule: RuleMonotonicRange}
	}
	return true
}

// valueRange computes a node's offset range.
func (ctx *loopCtx) valueRange(v *ir.Value, inOp func(*ir.Value) (int, bool), rng func(int) *valRange, recordInc func(valRange)) *valRange {
	switch v.Op {
	case ir.OpPhi:
		// Union over all arguments (all must be in the SCC).
		var out *valRange
		for _, arg := range v.Args {
			id, ok := inOp(arg)
			if !ok {
				return nil
			}
			r := rng(id)
			if r == nil {
				return nil
			}
			if out == nil {
				cp := *r
				out = &cp
			} else {
				out = &valRange{lo: minBound(out.lo, r.lo), hi: maxBound(out.hi, r.hi)}
			}
		}
		return out
	case ir.OpCopy:
		id, ok := inOp(v.Args[0])
		if !ok {
			return nil
		}
		return rng(id)
	case ir.OpAdd, ir.OpSub:
		aID, aIn := inOp(v.Args[0])
		bID, bIn := inOp(v.Args[1])
		if aIn && bIn || (!aIn && !bIn) {
			return nil
		}
		if v.Op == ir.OpSub && bIn {
			return nil // c - x flips direction
		}
		var baseID int
		var incVal *ir.Value
		if aIn {
			baseID, incVal = aID, v.Args[1]
		} else {
			baseID, incVal = bID, v.Args[0]
		}
		base := rng(baseID)
		if base == nil {
			return nil
		}
		inc := clsRange(ctx.operandCls(incVal))
		if v.Op == ir.OpSub {
			inc = scaleRange(inc, rational.FromInt(-1))
		}
		recordInc(inc)
		out := addRange(*base, inc)
		return &out
	default:
		return nil
	}
}

// exitRange folds an exit node: one in-SCC coefficient-1 term plus
// bounded invariant contributions.
func (ctx *loopCtx) exitRange(expr *Expr, inSCC func(int) bool, rng func(int) *valRange, recordInc func(valRange)) *valRange {
	if expr == nil {
		return nil
	}
	var base *valRange
	inc := valRange{lo: bound{val: expr.Const}, hi: bound{val: expr.Const}}
	for t, c := range expr.Terms {
		id, ok := ctx.nodeOf(t)
		if ok && inSCC(id) {
			if base != nil || !c.Equal(rational.FromInt(1)) {
				return nil
			}
			base = rng(id)
			if base == nil {
				return nil
			}
			continue
		}
		inc = addRange(inc, scaleRange(clsRange(ctx.operandCls(t)), c))
	}
	if base == nil {
		return nil
	}
	recordInc(inc)
	out := addRange(*base, inc)
	return &out
}

// ---- monotonic growth with multiplications (§4.4's extension) ----

// growth is tryMonotonicGrowth's per-node verdict, memoized in the
// scratch growths table.
type growth struct {
	ok       bool
	strict   bool // strictly greater than the header value each pass
	innerPhi bool // reached through a non-header φ
}

// tryMonotonicGrowth handles SCRs that mix additions and
// multiplications ("Multiply operations can also be allowed, such as
// 2*i+i, as long as the initial value of i is known"). With a constant
// nonnegative start, every addition of a provably nonnegative value and
// every multiplication by a constant ≥ 1 keeps the sequence
// nondecreasing; values are ≥ the header value inductively, so the
// carried value never shrinks.
//
// Member classification is restricted to nodes whose operand chain back
// to the header φ passes through no inner φ: such a node is a fixed
// strictly-monotone composition g of the header value, so it inherits
// the header's monotonicity. Nodes behind merges of different
// multiplicative paths are NOT monotonic in general (branches x and 3x
// can interleave non-monotonically) and stay unknown.
func (ctx *loopCtx) tryMonotonicGrowth(comp []int, inSCC func(int) bool, headID int) bool {
	initArg, carried := ctx.headPhiArgs(headID)
	if initArg == nil || len(carried) == 0 {
		return false
	}
	init, ok := ctx.a.leafExpr(initArg).ConstVal()
	if !ok || init.Sign() < 0 {
		return false
	}
	one := rational.FromInt(1)
	initGE1 := init.Cmp(one) >= 0

	// Dense memo: grState 0 = unseen, 1 = visiting, 2 = done —
	// growths[id] is the node's memoized verdict only at 2.
	scr := ctx.scr
	for _, id := range comp {
		scr.grState[id] = 0
	}

	inOp := func(w *ir.Value) (int, bool) {
		id, found := ctx.nodeOf(w)
		if !found || !inSCC(id) {
			return 0, false
		}
		return id, true
	}
	// nonnegLB / lowerBound of an out-of-SCC operand.
	outLB := func(w *ir.Value) (rational.Rat, bool) {
		lo, _, hasLo, _ := boundsOf(ctx.operandCls(w))
		return lo, hasLo
	}

	var eval func(id int) *growth
	eval = func(id int) *growth {
		switch scr.grState[id] {
		case 2:
			return &scr.growths[id]
		case 1:
			return &growth{} // malformed cycle
		}
		scr.grState[id] = 1
		scr.growths[id] = growth{}
		g := &scr.growths[id]
		defer func() { scr.grState[id] = 2 }()
		if id == headID {
			g.ok = true
			return g
		}
		n := ctx.nodes[id]
		if n.exit {
			return g
		}
		switch n.v.Op {
		case ir.OpPhi:
			if ctx.isHeaderPhi(id) {
				return g // second header φ: not this shape
			}
			g.ok, g.strict, g.innerPhi = true, true, true
			for _, arg := range n.v.Args {
				aid, in := inOp(arg)
				if !in {
					g.ok = false
					return g
				}
				ag := eval(aid)
				if !ag.ok {
					g.ok = false
					return g
				}
				g.strict = g.strict && ag.strict
			}
			return g
		case ir.OpCopy:
			aid, in := inOp(n.v.Args[0])
			if !in {
				return g
			}
			*g = *eval(aid)
			return g
		case ir.OpAdd, ir.OpSub:
			aID, aIn := inOp(n.v.Args[0])
			bID, bIn := inOp(n.v.Args[1])
			if n.v.Op == ir.OpSub && bIn {
				return g // c - x reverses direction
			}
			switch {
			case aIn && bIn: // x + y, both ≥ head ≥ 0
				ga, gb := eval(aID), eval(bID)
				if !ga.ok || !gb.ok {
					return g
				}
				g.ok = true
				g.strict = ga.strict || gb.strict || initGE1
				g.innerPhi = ga.innerPhi || gb.innerPhi
				return g
			case aIn || bIn:
				var base *growth
				var other *ir.Value
				if aIn {
					base, other = eval(aID), n.v.Args[1]
				} else {
					base, other = eval(bID), n.v.Args[0]
				}
				if !base.ok {
					return g
				}
				lb, hasLB := outLB(other)
				if n.v.Op == ir.OpSub {
					// x - c with c ≤ 0 is an addition of -c ≥ 0.
					_, hi, _, hasHi := boundsOf(ctx.operandCls(other))
					if !hasHi || hi.Sign() > 0 {
						return g
					}
					lb, hasLB = hi.Neg(), true
				}
				if !hasLB || lb.Sign() < 0 {
					return g
				}
				g.ok = true
				g.strict = base.strict || lb.Cmp(one) >= 0
				g.innerPhi = base.innerPhi
				return g
			default:
				return g
			}
		case ir.OpMul:
			aID, aIn := inOp(n.v.Args[0])
			bID, bIn := inOp(n.v.Args[1])
			switch {
			case aIn && bIn: // x·y, both ≥ head: needs head ≥ 1
				ga, gb := eval(aID), eval(bID)
				if !ga.ok || !gb.ok || !initGE1 {
					return g
				}
				g.ok = true
				g.strict = init.Cmp(rational.FromInt(2)) >= 0
				g.innerPhi = ga.innerPhi || gb.innerPhi
				return g
			case aIn || bIn:
				var base *growth
				var other *ir.Value
				if aIn {
					base, other = eval(aID), n.v.Args[1]
				} else {
					base, other = eval(bID), n.v.Args[0]
				}
				if !base.ok {
					return g
				}
				c, isConst := constOf(ctx.operandCls(other))
				if !isConst || c.Cmp(one) < 0 {
					return g
				}
				g.ok = true
				g.strict = base.strict || (c.Cmp(rational.FromInt(2)) >= 0 && initGE1)
				g.innerPhi = base.innerPhi
				return g
			default:
				return g
			}
		default:
			return g
		}
	}

	// All carried values must grow; family strictness needs every one.
	strictAll := true
	for _, c := range carried {
		cid, in := inOp(c)
		if !in {
			return false
		}
		cg := eval(cid)
		if !cg.ok {
			return false
		}
		strictAll = strictAll && cg.strict
	}

	headV := ctx.nodes[headID].v
	for _, id := range comp {
		if id == headID {
			ctx.cls[id] = &Classification{Kind: Monotonic, Loop: ctx.l, Dir: 1, Strict: strictAll, HeadPhi: headV, Rule: RuleMonotonicGrowth}
			continue
		}
		g := eval(id)
		if g.ok && !g.innerPhi {
			// A fixed strictly-monotone composition of the header.
			ctx.cls[id] = &Classification{Kind: Monotonic, Loop: ctx.l, Dir: 1, Strict: strictAll, HeadPhi: headV, Rule: RuleMonotonicGrowth}
		} else {
			ctx.cls[id] = unknown()
		}
	}
	return true
}
